// Conformance suite for the kernel-compiled map fast path: for every scalar
// operator, a map built around it must produce bit-identical results under
// the kernel VM and the general interpreter (parameterized sweep), including
// i64 index arithmetic, gathers, select chains and accumulator updates.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "opt/flatten.hpp"
#include "opt/fuse.hpp"
#include "runtime/interp.hpp"
#include "support/rng.hpp"

namespace {

using namespace npad;
using namespace npad::ir;
using rt::Value;

// The tier-1 container may expose a single core, which would make every
// fan-out path silently degrade to the sequential one. Force a multi-worker
// pool before its first lazy construction so the privatized and atomic hist
// strategies — and the chunked reduce/scan paths — actually execute. An
// explicitly set NPAD_NUM_THREADS wins (overwrite = 0).
[[maybe_unused]] const int kForcePoolWidth = [] {
  setenv("NPAD_NUM_THREADS", "4", /*overwrite=*/0);
  return 0;
}();

struct OpCase {
  const char* name;
  std::function<Var(Builder&, Var, Var)> build;  // scalar f64 body
};

class KernelBinOp : public ::testing::TestWithParam<int> {};

const OpCase kCases[] = {
    {"add", [](Builder& c, Var a, Var b) { return c.add(a, b); }},
    {"sub", [](Builder& c, Var a, Var b) { return c.sub(a, b); }},
    {"mul", [](Builder& c, Var a, Var b) { return c.mul(a, b); }},
    {"div", [](Builder& c, Var a, Var b) { return c.div(a, Atom(c.add(b, cf64(3.0)))); }},
    {"min", [](Builder& c, Var a, Var b) { return c.min(a, b); }},
    {"max", [](Builder& c, Var a, Var b) { return c.max(a, b); }},
    {"pow", [](Builder& c, Var a, Var b) { return c.pow(Atom(c.abs(a)), b); }},
    {"exp", [](Builder& c, Var a, Var) { return c.exp(a); }},
    {"log", [](Builder& c, Var a, Var) { return c.log(Atom(c.add(c.abs(a), cf64(0.1)))); }},
    {"sqrt", [](Builder& c, Var a, Var) { return c.sqrt(Atom(c.abs(a))); }},
    {"sin", [](Builder& c, Var a, Var) { return c.sin(a); }},
    {"cos", [](Builder& c, Var a, Var) { return c.cos(a); }},
    {"tanh", [](Builder& c, Var a, Var) { return c.tanh(a); }},
    {"abs", [](Builder& c, Var a, Var) { return c.abs(a); }},
    {"neg", [](Builder& c, Var a, Var) { return c.neg(a); }},
    {"lgamma", [](Builder& c, Var a, Var) { return c.lgamma(Atom(c.add(c.abs(a), cf64(0.5)))); }},
    {"select",
     [](Builder& c, Var a, Var b) { return c.select(Atom(c.lt(a, b)), Atom(c.mul(a, b)), a); }},
    {"cmp_chain",
     [](Builder& c, Var a, Var b) {
       Var g = c.logical_and(Atom(c.gt(a, cf64(0.0))), Atom(c.le(b, cf64(0.5))));
       return c.select(Atom(g), cf64(1.0), cf64(-1.0));
     }},
};

TEST_P(KernelBinOp, KernelMatchesInterpreter) {
  const OpCase& oc = kCases[static_cast<size_t>(GetParam())];
  support::Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  ProgBuilder pb("k");
  Var xs = pb.param("xs", arr_f64(1));
  Var ys = pb.param("ys", arr_f64(1));
  Builder& b = pb.body();
  LambdaPtr f = b.lam({f64(), f64()}, [&](Builder& c, const std::vector<Var>& p) {
    return std::vector<Atom>{Atom(oc.build(c, p[0], p[1]))};
  });
  Var out = b.map1(std::move(f), {xs, ys});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  // 67 is deliberately not a multiple of the lane width: the batched machine
  // must agree through both its full batches and its scalar tail loop.
  std::vector<Value> args = {rt::make_f64_array(rng.normal_vec(67), {67}),
                             rt::make_f64_array(rng.normal_vec(67), {67})};
  rt::Interp slow({.parallel = false, .use_kernels = false});
  auto ref = rt::to_f64_vec(rt::as_array(slow.run(p, args)[0]));
  for (int lanes : {1, 8}) {
    rt::Interp fast({.parallel = false, .use_kernels = true, .kernel_lanes = lanes});
    auto r1 = rt::to_f64_vec(rt::as_array(fast.run(p, args)[0]));
    ASSERT_EQ(r1.size(), ref.size()) << oc.name;
    for (size_t i = 0; i < r1.size(); ++i) {
      EXPECT_EQ(r1[i], ref[i]) << oc.name << " W=" << lanes << " at " << i;  // bit-identical
    }
    EXPECT_EQ(fast.stats().kernel_maps.load(), 1u) << oc.name << " did not kernelize";
    EXPECT_EQ(fast.stats().batched_launches.load(), lanes > 1 ? 1u : 0u) << oc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, KernelBinOp,
                         ::testing::Range(0, static_cast<int>(std::size(kCases))));

TEST(KernelConformance, IndexArithmeticAndGather) {
  // Strided gather with i64 div/mod arithmetic — the HAND regression case.
  ProgBuilder pb("g");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var is = b.iota(ci64(30));
  Var out = b.map1(b.lam({i64()},
                         [&](Builder& c, const std::vector<Var>& p) {
                           Var r = c.div(p[0], ci64(3));
                           Var q = c.mod(p[0], ci64(3));
                           Var idx = c.add(Atom(c.mul(r, ci64(3))), Atom(q));
                           return std::vector<Atom>{Atom(c.index(xs, {Atom(idx)}))};
                         }),
                   {is});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  support::Rng rng(5);
  std::vector<Value> args = {rt::make_f64_array(rng.normal_vec(30), {30})};
  rt::Interp fast({.parallel = false, .use_kernels = true});
  rt::Interp slow({.parallel = false, .use_kernels = false});
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(fast.run(p, args)[0])),
            rt::to_f64_vec(rt::as_array(slow.run(p, args)[0])));
  EXPECT_EQ(fast.stats().kernel_maps.load(), 1u);
}

TEST(KernelConformance, MultiDimGather) {
  ProgBuilder pb("g2");
  Var m = pb.param("m", arr_f64(2));
  Builder& b = pb.body();
  Var is = b.iota(ci64(12));
  Var out = b.map1(b.lam({i64()},
                         [&](Builder& c, const std::vector<Var>& p) {
                           Var r = c.div(p[0], ci64(4));
                           Var q = c.mod(p[0], ci64(4));
                           return std::vector<Atom>{Atom(c.index(m, {Atom(r), Atom(q)}))};
                         }),
                   {is});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  support::Rng rng(6);
  std::vector<Value> args = {rt::make_f64_array(rng.normal_vec(12), {3, 4})};
  rt::Interp fast({.parallel = false, .use_kernels = true});
  rt::Interp slow({.parallel = false, .use_kernels = false});
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(fast.run(p, args)[0])),
            rt::to_f64_vec(rt::as_array(slow.run(p, args)[0])));
}

TEST(KernelConformance, AccumulatorUpdatesMatch) {
  ProgBuilder pb("acc");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var vs = pb.param("vs", arr_f64(1));
  Builder& b = pb.body();
  auto outs = b.withacc({dest}, [&](Builder& c, const std::vector<Var>& accs) {
    LambdaPtr f = c.lam({i64(), f64(), acc_of(arr_f64(1))},
                        [](Builder& cc, const std::vector<Var>& p) {
                          Var v2 = cc.mul(p[1], p[1]);
                          Var a2 = cc.upd_acc(p[2], {Atom(p[0])}, Atom(v2));
                          return std::vector<Atom>{Atom(a2)};
                        });
    return std::vector<Atom>{Atom(c.map(f, {is, vs, accs[0]})[0])};
  });
  Prog p = pb.finish({Atom(outs[0])});
  typecheck(p);
  support::Rng rng(7);
  const int64_t n = 200, m = 16;
  auto mk_args = [&] {
    return std::vector<Value>{
        rt::make_f64_array(std::vector<double>(static_cast<size_t>(m), 0.0), {m}),
        rt::make_i64_array(rng.index_vec(static_cast<size_t>(n), m), {n}),
        rt::make_f64_array(rng.normal_vec(static_cast<size_t>(n)), {n})};
  };
  auto args = mk_args();
  rt::Interp slow({.parallel = false, .use_kernels = false});
  auto r2 = rt::to_f64_vec(rt::as_array(slow.run(p, args)[0]));
  for (int lanes : {1, 8}) {
    rt::Interp fast({.parallel = false, .use_kernels = true, .kernel_lanes = lanes});
    auto r1 = rt::to_f64_vec(rt::as_array(fast.run(p, args)[0]));
    for (size_t i = 0; i < r1.size(); ++i) EXPECT_NEAR(r1[i], r2[i], 1e-12) << "W=" << lanes;
    EXPECT_EQ(fast.stats().kernel_maps.load(), 1u);
  }
}

// The batched machine must agree with the scalar machine across extents that
// exercise zero batches, exactly one batch, and every tail length.
TEST(KernelConformance, BatchedMatchesScalarAcrossSizes) {
  for (int64_t n : {0, 1, 3, 7, 8, 9, 15, 16, 17, 64, 65, 100}) {
    support::Rng rng(static_cast<uint64_t>(200 + n));
    ProgBuilder pb("bt");
    Var xs = pb.param("xs", arr_f64(1));
    Var ys = pb.param("ys", arr_f64(1));
    Builder& b = pb.body();
    Var out = b.map1(b.lam({f64(), f64()},
                           [](Builder& c, const std::vector<Var>& p) {
                             Var t = c.mul(Atom(c.tanh(p[0])), Atom(c.exp(p[1])));
                             Var u = c.select(Atom(c.gt(t, cf64(0.0))), Atom(c.sqrt(c.abs(t))),
                                              Atom(c.neg(t)));
                             return std::vector<Atom>{Atom(c.add(u, Atom(c.mul(p[0], p[1]))))};
                           }),
                     {xs, ys});
    Prog p = pb.finish({Atom(out)});
    typecheck(p);
    std::vector<Value> args = {
        rt::make_f64_array(rng.normal_vec(static_cast<size_t>(n)), {n}),
        rt::make_f64_array(rng.normal_vec(static_cast<size_t>(n)), {n})};
    rt::Interp w1({.parallel = false, .use_kernels = true, .kernel_lanes = 1});
    rt::Interp w8({.parallel = false, .use_kernels = true, .kernel_lanes = 8});
    auto r1 = rt::to_f64_vec(rt::as_array(w1.run(p, args)[0]));
    auto r8 = rt::to_f64_vec(rt::as_array(w8.run(p, args)[0]));
    ASSERT_EQ(r1.size(), r8.size()) << n;
    for (size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i], r8[i]) << "n=" << n << " i=" << i;
  }
}

// Launch buffers must recycle through the buffer pool: after a warm-up run
// the same program's intermediates come from the pool, not the heap.
TEST(KernelConformance, BufferPoolReusesLaunchBuffers) {
  ProgBuilder pb("pool");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var a = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         return std::vector<Atom>{Atom(c.mul(p[0], cf64(2.0)))};
                       }),
                 {xs});
  Var c2 = b.map1(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.add(p[0], cf64(1.0)))};
                        }),
                  {a});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {c2});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  support::Rng rng(11);
  std::vector<Value> args = {rt::make_f64_array(rng.normal_vec(512), {512})};
  rt::Interp in({.parallel = false, .use_kernels = true});
  const double first = rt::as_f64(in.run(p, args)[0]);
  // The first run's intermediates have been released back to the pool; the
  // second run must recycle them.
  const uint64_t hits_before = in.stats().pool_hits.load();
  const double second = rt::as_f64(in.run(p, args)[0]);
  EXPECT_EQ(first, second);
  EXPECT_GT(in.stats().pool_hits.load(), hits_before);
}

// Regression: maps over empty arrays (zero outer extent) must produce empty
// results through both execution paths, and row_elems() of an empty array
// reports zero rather than a bogus nonzero row extent.
TEST(KernelConformance, EmptyMapLaunch) {
  rt::ArrayVal empty2d = rt::ArrayVal::alloc(ScalarType::F64, {0, 3});
  EXPECT_EQ(empty2d.row_elems(), 0);
  EXPECT_EQ(empty2d.outer(), 0);

  ProgBuilder pb("empty");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({f64()},
                         [](Builder& c, const std::vector<Var>& p) {
                           return std::vector<Atom>{Atom(c.exp(p[0]))};
                         }),
                   {xs});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  std::vector<Value> args = {rt::make_f64_array({}, {0})};
  for (bool kernels : {false, true}) {
    rt::Interp in({.parallel = false, .use_kernels = kernels});
    auto r = in.run(p, args);
    EXPECT_EQ(rt::as_array(r[0]).outer(), 0) << "kernels=" << kernels;
    EXPECT_EQ(rt::to_f64_vec(rt::as_array(r[0])).size(), 0u);
  }
}

// Parallel runtime: parallel and sequential execution must agree for
// reductions and scans across a size sweep (chunked combine correctness).
class ParallelAgree : public ::testing::TestWithParam<int64_t> {};

TEST_P(ParallelAgree, ReduceAndScan) {
  const int64_t n = GetParam();
  support::Rng rng(static_cast<uint64_t>(n));
  ProgBuilder pb("rs");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var s = b.reduce1(b.add_op(), cf64(0.0), {xs});
  Var mx = b.reduce1(b.max_op(), cf64(-1e300), {xs});
  Var sc = b.scan1(b.add_op(), cf64(0.0), {xs});
  Prog p = pb.finish({Atom(s), Atom(mx), Atom(sc)});
  typecheck(p);
  std::vector<Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n})};
  rt::Interp par({.parallel = true, .use_kernels = true, .grain = 64});
  rt::Interp seq({.parallel = false, .use_kernels = true, .grain = 64});
  auto r1 = par.run(p, args);
  auto r2 = seq.run(p, args);
  EXPECT_NEAR(rt::as_f64(r1[0]), rt::as_f64(r2[0]), 1e-9 * static_cast<double>(n));
  EXPECT_EQ(rt::as_f64(r1[1]), rt::as_f64(r2[1]));
  auto s1 = rt::to_f64_vec(rt::as_array(r1[2]));
  auto s2 = rt::to_f64_vec(rt::as_array(r2[2]));
  for (size_t i = 0; i < s1.size(); ++i) EXPECT_NEAR(s1[i], s2[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelAgree,
                         ::testing::Values<int64_t>(0, 1, 7, 63, 64, 65, 1000, 4096));

// ------------------------------------------- reduce/scan kernel conformance
//
// The compiled reduction path must agree with the general interpreter across
// {fused, unfused} x {lanes 1, 8} x {empty, tail-sized, large} extents. The
// fold bodies are deliberately not single recognized binops, so the old
// hand-rolled fast path cannot mask the kernel — but they must still be
// associative (the reduce/scan contract): lane partials and chunk partials
// recombine through the fold body itself, exactly like the existing chunked
// general path. Non-associative element work belongs in the redomap
// pre-lambda, where the fused cases put it. Lane partials reorder float
// adds, so agreement is to tolerance, not bitwise.

// Addition written as two statements — associative, kernelizable, and not
// recognize_binop, so it exercises the register machine, not the hand loop.
LambdaPtr slow_add_op(Builder& b) {
  return b.lam({f64(), f64()}, [](Builder& c, const std::vector<Var>& p) {
    Var t = c.add(p[0], p[1]);
    return std::vector<Atom>{Atom(c.mul(t, cf64(1.0)))};
  });
}

Prog redomap_prog(bool with_map) {
  ProgBuilder pb("rk");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  auto affine = [&](Builder& c) {
    return c.lam({f64()}, [](Builder& cc, const std::vector<Var>& p) {
      Var t = cc.mul(p[0], cf64(1.3));
      return std::vector<Atom>{Atom(cc.add(t, cf64(0.2)))};
    });
  };
  // Separate producers for the reduce and the scan: a producer with two
  // consumers is (correctly) not fusable.
  Var rin = xs, sin = xs;
  if (with_map) {
    rin = b.map1(affine(b), {xs});
    sin = b.map1(affine(b), {xs});
  }
  Var r = b.reduce1(slow_add_op(b), cf64(0.0), {rin});
  Var sc = b.scan1(slow_add_op(b), cf64(0.0), {sin});
  Prog p = pb.finish({Atom(r), Atom(sc)});
  typecheck(p);
  return p;
}

struct RedomapCase {
  bool fused;
  int lanes;
  int64_t n;
};

class RedomapConformance : public ::testing::TestWithParam<RedomapCase> {};

TEST_P(RedomapConformance, KernelMatchesGeneral) {
  const auto [fused, lanes, n] = GetParam();
  support::Rng rng(static_cast<uint64_t>(n) * 7 + (fused ? 1 : 0));
  Prog p = redomap_prog(/*with_map=*/true);
  Prog run = p;
  if (fused) {
    opt::FuseStats fs;
    run = opt::fuse_maps(p, &fs);
    typecheck(run);
    ASSERT_EQ(fs.fused_redomaps, 2);  // the producer folds into reduce AND scan
  }
  std::vector<Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n})};
  rt::Interp slow({.parallel = false, .use_kernels = false});
  auto ref = slow.run(p, args);
  rt::Interp fast({.parallel = false, .use_kernels = true, .kernel_lanes = lanes});
  auto got = fast.run(run, args);
  EXPECT_EQ(fast.stats().kernel_reduces.load(), 1u);
  EXPECT_EQ(fast.stats().kernel_scans.load(), 1u);
  EXPECT_EQ(fast.stats().general_reduces.load(), 0u);
  EXPECT_EQ(fast.stats().general_scans.load(), 0u);
  if (fused) {
    EXPECT_EQ(fast.stats().fused_reduces.load(), 1u);
    EXPECT_EQ(fast.stats().fused_scans.load(), 1u);
    // The mapped intermediate is gone: no launch requests a pooled buffer
    // for it. Only the scan's own output buffer remains.
    EXPECT_LE(fast.stats().pool_hits.load() + fast.stats().pool_misses.load(), 1u);
  }
  const double tol = 1e-12 * std::max<double>(1, static_cast<double>(n));
  EXPECT_NEAR(rt::as_f64(got[0]), rt::as_f64(ref[0]), tol);
  auto sref = rt::to_f64_vec(rt::as_array(ref[1]));
  auto sgot = rt::to_f64_vec(rt::as_array(got[1]));
  ASSERT_EQ(sgot.size(), sref.size());
  for (size_t i = 0; i < sgot.size(); ++i) EXPECT_NEAR(sgot[i], sref[i], tol) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RedomapConformance,
    ::testing::Values(RedomapCase{false, 1, 0}, RedomapCase{false, 1, 5},
                      RedomapCase{false, 1, 5000}, RedomapCase{false, 8, 0},
                      RedomapCase{false, 8, 5}, RedomapCase{false, 8, 67},
                      RedomapCase{false, 8, 5000}, RedomapCase{true, 1, 0},
                      RedomapCase{true, 1, 5}, RedomapCase{true, 1, 5000},
                      RedomapCase{true, 8, 0}, RedomapCase{true, 8, 5},
                      RedomapCase{true, 8, 67}, RedomapCase{true, 8, 5000}));

TEST(RedomapConformance, ParallelChunkedReduceAgrees) {
  // Chunked kernel reduces tree-merge their partials through the fold
  // subprogram; sequential and parallel execution must agree to tolerance.
  support::Rng rng(91);
  Prog p = redomap_prog(/*with_map=*/true);
  opt::FuseStats fs;
  Prog q = opt::fuse_maps(p, &fs);
  const int64_t n = 50000;
  std::vector<Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n})};
  rt::Interp par({.parallel = true, .use_kernels = true, .grain = 512});
  rt::Interp seq({.parallel = false, .use_kernels = true, .grain = 512});
  auto r1 = par.run(q, args);
  auto r2 = seq.run(q, args);
  EXPECT_NEAR(rt::as_f64(r1[0]), rt::as_f64(r2[0]), 1e-9);
  auto s1 = rt::to_f64_vec(rt::as_array(r1[1]));
  auto s2 = rt::to_f64_vec(rt::as_array(r2[1]));
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) EXPECT_NEAR(s1[i], s2[i], 1e-9) << i;
}

TEST(RedomapConformance, TwoInputDotProductFuses) {
  // reduce(custom fold, map2(*, xs, ys)): the fused pre-lambda keeps both
  // element inputs.
  ProgBuilder pb("dot");
  Var xs = pb.param("xs", arr_f64(1));
  Var ys = pb.param("ys", arr_f64(1));
  Builder& b = pb.body();
  Var prods = b.map(b.lam({f64(), f64()},
                          [](Builder& c, const std::vector<Var>& p) {
                            return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                          }),
                    {xs, ys})[0];
  Var r = b.reduce1(slow_add_op(b), cf64(0.0), {prods});
  Prog p = pb.finish({Atom(r)});
  typecheck(p);
  opt::FuseStats fs;
  Prog q = opt::fuse_maps(p, &fs);
  typecheck(q);
  EXPECT_EQ(fs.fused_redomaps, 1);
  support::Rng rng(17);
  const int64_t n = 999;
  std::vector<Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n}),
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n})};
  rt::Interp slow({.parallel = false, .use_kernels = false});
  rt::Interp fast({.parallel = false, .use_kernels = true, .kernel_lanes = 8});
  EXPECT_NEAR(rt::as_f64(fast.run(q, args)[0]), rt::as_f64(slow.run(p, args)[0]), 1e-10);
  EXPECT_EQ(fast.stats().kernel_reduces.load(), 1u);
  EXPECT_EQ(fast.stats().fused_reduces.load(), 1u);
}

TEST(RedomapConformance, LogSumExpFoldKernelizes) {
  // log-sum-exp pieces: an associative multi-instruction fold —
  // op(a, b) = max(a,b) + log(exp(a-max) + exp(b-max)) — with neutral
  // -inf-ish. Exactly the fold shape the GMM tables lean on.
  ProgBuilder pb("lse");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  LambdaPtr lse = b.lam({f64(), f64()}, [](Builder& c, const std::vector<Var>& p) {
    Var m = c.max(p[0], p[1]);
    Var ea = c.exp(Atom(c.sub(p[0], m)));
    Var eb = c.exp(Atom(c.sub(p[1], m)));
    Var r = c.add(m, Atom(c.log(Atom(c.add(ea, eb)))));
    return std::vector<Atom>{Atom(r)};
  });
  Var r = b.reduce1(std::move(lse), cf64(-1e300), {xs});
  Prog p = pb.finish({Atom(r)});
  typecheck(p);
  support::Rng rng(3);
  const int64_t n = 1777;
  std::vector<Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -3.0, 3.0), {n})};
  rt::Interp slow({.parallel = false, .use_kernels = false});
  const double ref = rt::as_f64(slow.run(p, args)[0]);
  for (int lanes : {1, 8}) {
    rt::Interp fast({.parallel = false, .use_kernels = true, .kernel_lanes = lanes});
    EXPECT_NEAR(rt::as_f64(fast.run(p, args)[0]), ref, 1e-10) << "W=" << lanes;
    EXPECT_EQ(fast.stats().kernel_reduces.load(), 1u) << "W=" << lanes;
  }
}

TEST(RedomapConformance, NonCommutativeAssociativeFoldPreservesOrder) {
  // Linear-recurrence fold op((a1,b1),(a2,b2)) = (a1*a2, b1*a2 + b2):
  // associative (affine-map composition) but NOT commutative, neutral
  // (1, 0). Lanes and chunks are contiguous blocks combined in order, so
  // the multi-result kernel must match the sequential general fold — a
  // strided lane decomposition (which silently requires commutativity)
  // would diverge structurally, not just by rounding.
  ProgBuilder pb("linrec");
  Var as = pb.param("as", arr_f64(1));
  Var bs = pb.param("bs", arr_f64(1));
  Builder& b = pb.body();
  LambdaPtr op = b.lam({f64(), f64(), f64(), f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         Var a = c.mul(p[0], p[2]);
                         Var t = c.mul(p[1], p[2]);
                         Var bb = c.add(t, p[3]);
                         return std::vector<Atom>{Atom(a), Atom(bb)};
                       });
  auto rs = b.reduce(std::move(op), {cf64(1.0), cf64(0.0)}, {as, bs});
  Prog p = pb.finish({Atom(rs[0]), Atom(rs[1])});
  typecheck(p);
  support::Rng rng(7);
  for (int64_t n : {int64_t{0}, int64_t{9}, int64_t{4000}}) {
    // Multipliers near 1 keep the product well-conditioned.
    std::vector<double> av = rng.uniform_vec(static_cast<size_t>(n), 0.999, 1.001);
    std::vector<double> bv = rng.uniform_vec(static_cast<size_t>(n), -0.01, 0.01);
    std::vector<Value> args = {rt::make_f64_array(av, {n}), rt::make_f64_array(bv, {n})};
    rt::Interp slow({.parallel = false, .use_kernels = false});
    auto ref = slow.run(p, args);
    for (int lanes : {1, 8}) {
      rt::Interp fast({.parallel = false, .use_kernels = true, .kernel_lanes = lanes});
      auto got = fast.run(p, args);
      EXPECT_EQ(fast.stats().kernel_reduces.load(), 1u) << "n=" << n << " W=" << lanes;
      EXPECT_NEAR(rt::as_f64(got[0]), rt::as_f64(ref[0]), 1e-10) << "n=" << n << " W=" << lanes;
      EXPECT_NEAR(rt::as_f64(got[1]), rt::as_f64(ref[1]), 1e-10) << "n=" << n << " W=" << lanes;
    }
    // Parallel chunked execution must preserve order too.
    rt::Interp par({.parallel = true, .use_kernels = true, .grain = 256});
    auto gpar = par.run(p, args);
    EXPECT_NEAR(rt::as_f64(gpar[0]), rt::as_f64(ref[0]), 1e-10) << "n=" << n;
    EXPECT_NEAR(rt::as_f64(gpar[1]), rt::as_f64(ref[1]), 1e-10) << "n=" << n;
  }
}

TEST(RedomapConformance, TinyGrainBlockedScanEmptyTrailingChunk) {
  // Regression: with a tiny grain the blocked scan can produce empty
  // trailing chunks (lo == n); the phase-1 loop must not touch in[n].
  support::Rng rng(13);
  const int64_t n = 10;
  ProgBuilder pb("tg");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var sc = b.scan1(b.add_op(), cf64(0.0), {xs});
  Prog p = pb.finish({Atom(sc)});
  typecheck(p);
  std::vector<Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n})};
  rt::Interp par({.parallel = true, .use_kernels = true, .grain = 1});
  rt::Interp seq({.parallel = false, .use_kernels = true, .grain = 1});
  auto s1 = rt::to_f64_vec(rt::as_array(par.run(p, args)[0]));
  auto s2 = rt::to_f64_vec(rt::as_array(seq.run(p, args)[0]));
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) EXPECT_NEAR(s1[i], s2[i], 1e-12) << i;
}

TEST(RedomapConformance, EmptyRank2ScanKeepsInnerExtent) {
  // Regression: a general scan over an empty rank-2 array must keep the
  // argument's inner extent in its (empty) result shape.
  ProgBuilder pb("e2");
  Var xs = pb.param("xs", arr_f64(2));
  Builder& b = pb.body();
  LambdaPtr op = b.lam({arr_f64(1), arr_f64(1)},
                       [](Builder& c, const std::vector<Var>& p) {
                         Var r = c.map(c.lam({f64(), f64()},
                                             [](Builder& cc, const std::vector<Var>& q) {
                                               return std::vector<Atom>{
                                                   Atom(cc.add(q[0], q[1]))};
                                             }),
                                       {p[0], p[1]})[0];
                         return std::vector<Atom>{Atom(r)};
                       });
  Var ne = b.replicate(ci64(3), cf64(0.0));
  Var sc = b.scan(std::move(op), {Atom(ne)}, {xs})[0];
  Prog p = pb.finish({Atom(sc)});
  typecheck(p);
  std::vector<Value> args = {rt::ArrayVal::alloc(ScalarType::F64, {0, 3})};
  auto r = rt::run_prog(p, args, {.parallel = false});
  const auto& a = rt::as_array(r[0]);
  ASSERT_EQ(a.rank(), 2);
  EXPECT_EQ(a.shape[0], 0);
  EXPECT_EQ(a.shape[1], 3);
}

// ------------------------------------------------------ hist conformance
//
// The parallel privatized/atomic/kernel hist strategies must agree with the
// strictly sequential general path across {fused, unfused} x {sequential,
// privatized, atomic} x input shapes {empty inds, out-of-range inds,
// all-same-bin contention, uniform}. Combinable binops (+, min) exercise
// the hand-rolled tier; a two-statement add and an LSE fold exercise the
// compiled-kernel tier (where the "atomic" strategy legitimately runs the
// sequential kernel loop — arbitrary folds have no atomic fallback). Merged
// subhistograms regroup float adds, so agreement is to tolerance; min is
// exact.

enum class HistStrategy { Sequential, Privatized, Atomic };
enum class HistOp { Add, Min, SlowAdd, Lse };

struct HistCase {
  bool fused;
  HistStrategy strategy;
  HistOp op;
};

LambdaPtr hist_op(Builder& b, HistOp op) {
  switch (op) {
    case HistOp::Add: return b.add_op();
    case HistOp::Min: return b.min_op();
    case HistOp::SlowAdd: return slow_add_op(b);
    case HistOp::Lse:
      return b.lam({f64(), f64()}, [](Builder& c, const std::vector<Var>& p) {
        Var m = c.max(p[0], p[1]);
        Var ea = c.exp(Atom(c.sub(p[0], m)));
        Var eb = c.exp(Atom(c.sub(p[1], m)));
        return std::vector<Atom>{Atom(c.add(m, Atom(c.log(Atom(c.add(ea, eb))))))};
      });
  }
  return nullptr;
}

Atom hist_neutral(HistOp op) {
  switch (op) {
    case HistOp::Min: return cf64(1e300);
    case HistOp::Lse: return cf64(-1e300);
    default: return cf64(0.0);
  }
}

Prog hist_prog(HistOp op, bool with_map) {
  ProgBuilder pb("h");
  Var dest = pb.param("dest", arr_f64(1));
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var vs = vals;
  if (with_map) {
    vs = b.map1(b.lam({f64()},
                      [](Builder& c, const std::vector<Var>& p) {
                        Var t = c.mul(p[0], cf64(1.3));
                        return std::vector<Atom>{Atom(c.add(t, cf64(0.2)))};
                      }),
                {vals});
  }
  Var h = b.hist(hist_op(b, op), hist_neutral(op), dest, inds, vs);
  Prog p = pb.finish({Atom(h)});
  typecheck(p);
  return p;
}

class HistConformance : public ::testing::TestWithParam<HistCase> {};

TEST_P(HistConformance, StrategiesMatchGeneralPath) {
  const auto [fused, strategy, op] = GetParam();
  const bool kernel_op = op == HistOp::SlowAdd || op == HistOp::Lse;
  Prog p = hist_prog(op, /*with_map=*/true);
  Prog run = p;
  if (fused) {
    opt::FuseStats fs;
    run = opt::fuse_maps(p, &fs);
    typecheck(run);
    ASSERT_EQ(fs.fused_hists, 1);
  }
  rt::InterpOptions opts{.parallel = strategy != HistStrategy::Sequential,
                         .use_kernels = true,
                         .grain = 16,
                         .privatize_min_iters = 1};
  if (strategy == HistStrategy::Atomic) opts.privatize_budget = 0;

  struct Shape {
    const char* name;
    int64_t n;
    int64_t lo, hi;  // index range (may exceed [0, m))
  };
  const int64_t m = 32;
  const Shape shapes[] = {
      {"empty", 0, 0, 1},
      {"uniform", 500, 0, m},
      {"out-of-range", 500, -5, m + 5},
      {"same-bin", 500, 3, 4},
  };
  for (const auto& sh : shapes) {
    support::Rng rng(static_cast<uint64_t>(sh.n) + static_cast<uint64_t>(op) * 13 +
                     (fused ? 7 : 0));
    std::vector<int64_t> iv(static_cast<size_t>(sh.n));
    for (auto& x : iv) x = sh.lo + rng.uniform_int(sh.hi - sh.lo);
    std::vector<Value> args = {
        rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(m), -1.0, 1.0), {m}),
        rt::make_i64_array(iv, {sh.n}),
        rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(sh.n), -1.0, 1.0), {sh.n})};
    rt::Interp slow({.parallel = false, .use_kernels = false});
    auto ref = rt::to_f64_vec(rt::as_array(slow.run(p, args)[0]));
    rt::Interp fast(opts);
    auto got = rt::to_f64_vec(rt::as_array(fast.run(run, args)[0]));
    ASSERT_EQ(got.size(), ref.size()) << sh.name;
    const double tol = op == HistOp::Min ? 0.0 : 1e-10;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], ref[i], tol) << sh.name << " bin " << i;
    }
    if (kernel_op || fused) {
      EXPECT_GE(fast.stats().kernel_hists.load(), 1u) << sh.name;
    } else {
      EXPECT_GE(fast.stats().general_hists.load(), 1u) << sh.name;
    }
    if (fused) {
      EXPECT_GE(fast.stats().fused_hists.load(), 1u) << sh.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HistConformance,
    ::testing::Values(
        HistCase{false, HistStrategy::Sequential, HistOp::Add},
        HistCase{false, HistStrategy::Privatized, HistOp::Add},
        HistCase{false, HistStrategy::Atomic, HistOp::Add},
        HistCase{false, HistStrategy::Sequential, HistOp::Min},
        HistCase{false, HistStrategy::Privatized, HistOp::Min},
        HistCase{false, HistStrategy::Atomic, HistOp::Min},
        HistCase{false, HistStrategy::Sequential, HistOp::SlowAdd},
        HistCase{false, HistStrategy::Privatized, HistOp::SlowAdd},
        HistCase{false, HistStrategy::Atomic, HistOp::SlowAdd},
        HistCase{false, HistStrategy::Sequential, HistOp::Lse},
        HistCase{false, HistStrategy::Privatized, HistOp::Lse},
        HistCase{false, HistStrategy::Atomic, HistOp::Lse},
        HistCase{true, HistStrategy::Sequential, HistOp::Add},
        HistCase{true, HistStrategy::Privatized, HistOp::Add},
        HistCase{true, HistStrategy::Atomic, HistOp::Add},
        HistCase{true, HistStrategy::Sequential, HistOp::Lse},
        HistCase{true, HistStrategy::Privatized, HistOp::Lse},
        HistCase{true, HistStrategy::Atomic, HistOp::Lse}));

TEST(HistConformance, StrategyCountersReportTheTakenPath) {
  // The privatized strategy must report non-atomic updates, the atomic
  // fallback must report atomic updates, and the hand tier must not touch
  // the kernel counters.
  Prog p = hist_prog(HistOp::Add, /*with_map=*/false);
  support::Rng rng(41);
  const int64_t n = 4096, m = 64;
  std::vector<int64_t> iv(static_cast<size_t>(n));
  for (auto& x : iv) x = rng.uniform_int(m);
  std::vector<Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(m), -1.0, 1.0), {m}),
      rt::make_i64_array(iv, {n}),
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n})};

  rt::Interp priv({.parallel = true, .grain = 64, .privatize_min_iters = 1});
  priv.run(p, args);
  EXPECT_EQ(priv.stats().privatized_hist_updates.load(), static_cast<uint64_t>(n));
  EXPECT_EQ(priv.stats().atomic_hist_updates.load(), 0u);
  EXPECT_EQ(priv.stats().kernel_hists.load(), 0u);
  EXPECT_EQ(priv.stats().general_hists.load(), 1u);

  rt::Interp atom({.parallel = true, .grain = 64, .privatize_budget = 0});
  atom.run(p, args);
  EXPECT_EQ(atom.stats().atomic_hist_updates.load(), static_cast<uint64_t>(n));
  EXPECT_EQ(atom.stats().privatized_hist_updates.load(), 0u);

  Prog lse = hist_prog(HistOp::Lse, /*with_map=*/false);
  rt::Interp kern({.parallel = false});
  kern.run(lse, args);
  EXPECT_EQ(kern.stats().kernel_hists.load(), 1u);
  EXPECT_EQ(kern.stats().general_hists.load(), 0u);
}

TEST(HistConformance, ParallelOffTakesSequentialPathBitExactly) {
  // Regression for the old fast path ignoring opts_.parallel: with the
  // parallel runtime disabled, hist must run the strictly sequential loop —
  // bit-identical to a hand fold in element order (float adds are not
  // reassociated) — and must not perform a single atomic update.
  Prog p = hist_prog(HistOp::Add, /*with_map=*/false);
  support::Rng rng(43);
  const int64_t n = 10000, m = 16;
  // Adversarial magnitudes: reassociating these adds changes the result,
  // so a privatized or atomic execution could not pass the bitwise check.
  std::vector<double> vv(static_cast<size_t>(n));
  for (size_t i = 0; i < vv.size(); ++i) {
    vv[i] = (i % 3 == 0 ? 1e16 : 1.0) * (i % 2 == 0 ? 1.0 : -1.0) + rng.uniform(0.0, 1.0);
  }
  std::vector<int64_t> iv(static_cast<size_t>(n));
  for (auto& x : iv) x = rng.uniform_int(m);
  std::vector<double> dv = rng.uniform_vec(static_cast<size_t>(m), -1.0, 1.0);
  std::vector<Value> args = {rt::make_f64_array(dv, {m}), rt::make_i64_array(iv, {n}),
                             rt::make_f64_array(vv, {n})};
  std::vector<double> expect = dv;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t b = iv[static_cast<size_t>(i)];
    expect[static_cast<size_t>(b)] += vv[static_cast<size_t>(i)];
  }
  rt::Interp seq({.parallel = false});
  auto got = rt::to_f64_vec(rt::as_array(seq.run(p, args)[0]));
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], expect[i]) << i;  // bit-identical
  EXPECT_EQ(seq.stats().atomic_hist_updates.load(), 0u);
  EXPECT_EQ(seq.stats().privatized_hist_updates.load(), static_cast<uint64_t>(n));
}

TEST(HistConformance, Rank2RowBinsStaySequentialGeneral) {
  // Vector bins (rank-2 destination, the op combines rows element-wise) take
  // the strictly sequential general path under every configuration.
  ProgBuilder pb("h2");
  Var dest = pb.param("dest", arr_f64(2));
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(2));
  Builder& b = pb.body();
  LambdaPtr op = b.lam({arr_f64(1), arr_f64(1)},
                       [](Builder& c, const std::vector<Var>& p) {
                         Var r = c.map(c.lam({f64(), f64()},
                                             [](Builder& cc, const std::vector<Var>& q) {
                                               return std::vector<Atom>{
                                                   Atom(cc.add(q[0], q[1]))};
                                             }),
                                       {p[0], p[1]})[0];
                         return std::vector<Atom>{Atom(r)};
                       });
  Var ne = b.replicate(ci64(3), cf64(0.0));
  Var h = b.hist(std::move(op), Atom(ne), dest, inds, vals);
  Prog p = pb.finish({Atom(h)});
  typecheck(p);
  support::Rng rng(44);
  const int64_t n = 200, m = 8;
  std::vector<int64_t> iv(static_cast<size_t>(n));
  for (auto& x : iv) x = rng.uniform_int(m + 2) - 1;  // includes out-of-range
  std::vector<Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(m * 3), -1.0, 1.0), {m, 3}),
      rt::make_i64_array(iv, {n}),
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n * 3), -1.0, 1.0), {n, 3})};
  rt::Interp slow({.parallel = false, .use_kernels = false});
  auto ref = rt::to_f64_vec(rt::as_array(slow.run(p, args)[0]));
  rt::Interp par({.parallel = true, .use_kernels = true, .grain = 16});
  auto got = rt::to_f64_vec(rt::as_array(par.run(p, args)[0]));
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], ref[i]) << i;
  EXPECT_EQ(par.stats().general_hists.load(), 1u);
  EXPECT_EQ(par.stats().atomic_hist_updates.load(), 0u);
}

TEST(RedomapConformance, GeneralFallbackHandlesRedomap) {
  // With kernels disabled the general interpreter must still execute the
  // redomap form (pre applied per element before the fold).
  support::Rng rng(5);
  Prog p = redomap_prog(/*with_map=*/true);
  opt::FuseStats fs;
  Prog q = opt::fuse_maps(p, &fs);
  ASSERT_GE(fs.fused_redomaps, 1);
  const int64_t n = 333;
  std::vector<Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n})};
  rt::Interp slow({.parallel = false, .use_kernels = false});
  auto ref = slow.run(p, args);
  rt::Interp gen({.parallel = false, .use_kernels = false});
  auto got = gen.run(q, args);
  EXPECT_EQ(gen.stats().general_reduces.load(), 1u);
  EXPECT_EQ(gen.stats().general_scans.load(), 1u);
  EXPECT_NEAR(rt::as_f64(got[0]), rt::as_f64(ref[0]), 1e-12);
  auto sref = rt::to_f64_vec(rt::as_array(ref[1]));
  auto sgot = rt::to_f64_vec(rt::as_array(got[1]));
  ASSERT_EQ(sgot.size(), sref.size());
  for (size_t i = 0; i < sgot.size(); ++i) EXPECT_NEAR(sgot[i], sref[i], 1e-12) << i;
}

// ------------------------------------------------- flattened nested nests
//
// The flattening annotations (opt/flatten.cpp) must execute bit-identically
// to the general nested path under the same interpreter options with
// parallel off: the collapsed map kernel is element-wise pure (batch
// boundaries straddling rows cannot change anything), the hand segmented
// reduce mirrors eval_reduce's tier-1 loop per segment, and
// run_segred_chunk replicates run_reduce's lane blocking per segment. The
// grid covers {collapsed, segmented-hand, segmented-kernel(LSE),
// segmented-fused-dot} x {W=1,8} x {empty outer, empty inner row, odd,
// larger} shapes; segments are independent, so even parallel execution of
// a flattened nest is bit-exact and one grid point asserts that too.

// map(λrow. map(g, row)) — rank-2 in, rank-2 out, affine+tanh scalar body.
Prog nested_map_prog() {
  ProgBuilder pb("nm");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(
      b.lam({arr_f64(1)},
            [](Builder& c, const std::vector<Var>& row) {
              return std::vector<Atom>{Atom(c.map1(
                  c.lam({f64()},
                        [](Builder& cc, const std::vector<Var>& p) {
                          Var t = cc.mul(p[0], cf64(1.3));
                          return std::vector<Atom>{Atom(cc.tanh(Atom(cc.add(t, cf64(0.2)))))};
                        }),
                  {row[0]}))};
            }),
      {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  return p;
}

// map(λrow. reduce(+, 0, row)) — the hand-tier segmented reduction.
Prog nested_sum_prog() {
  ProgBuilder pb("ns");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           return std::vector<Atom>{
                               Atom(c.reduce1(c.add_op(), cf64(0.0), {row[0]}))};
                         }),
                   {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  return p;
}

// map(λrow. reduce(lse, -inf, row)) — a multi-statement kernel-tier fold.
Prog nested_lse_prog() {
  ProgBuilder pb("nl");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(
      b.lam({arr_f64(1)},
            [](Builder& c, const std::vector<Var>& row) {
              LambdaPtr op = c.lam({f64(), f64()}, [](Builder& cc, const std::vector<Var>& p) {
                Var m = cc.max(p[0], p[1]);
                Var ea = cc.exp(Atom(cc.sub(p[0], m)));
                Var eb = cc.exp(Atom(cc.sub(p[1], m)));
                return std::vector<Atom>{Atom(cc.add(m, Atom(cc.log(Atom(cc.add(ea, eb))))))};
              });
              return std::vector<Atom>{
                  Atom(c.reduce1(std::move(op), cf64(-1e300), {row[0]}))};
            }),
      {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  return p;
}

// map(λra,rb. reduce(+, 0, map(*, ra, rb))) — fuses to a redomap nest, the
// row-wise-dot shape of kmeans/GMM inner loops.
Prog nested_dot_prog() {
  ProgBuilder pb("nd");
  Var as = pb.param("as", arr_f64(2));
  Var bs = pb.param("bs", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(
      b.lam({arr_f64(1), arr_f64(1)},
            [](Builder& c, const std::vector<Var>& rows) {
              Var prods = c.map1(c.lam({f64(), f64()},
                                       [](Builder& cc, const std::vector<Var>& p) {
                                         return std::vector<Atom>{Atom(cc.mul(p[0], p[1]))};
                                       }),
                                 {rows[0], rows[1]});
              return std::vector<Atom>{Atom(c.reduce1(c.add_op(), cf64(0.0), {prods}))};
            }),
      {as, bs});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  return p;
}

enum class FlatKind { Collapsed, SegHand, SegLse, SegDot };

struct FlatCase {
  FlatKind kind;
  int lanes;
  int64_t n, m;
  bool parallel;
};

class FlattenConformance : public ::testing::TestWithParam<FlatCase> {};

TEST_P(FlattenConformance, FlatMatchesGeneralNested) {
  const auto [kind, lanes, n, m, parallel] = GetParam();
  support::Rng rng(static_cast<uint64_t>(n * 31 + m * 7 + lanes));
  Prog p = kind == FlatKind::Collapsed ? nested_map_prog()
           : kind == FlatKind::SegHand ? nested_sum_prog()
           : kind == FlatKind::SegLse  ? nested_lse_prog()
                                       : nested_dot_prog();
  if (kind == FlatKind::SegDot) {
    opt::FuseStats fs;
    p = opt::fuse_maps(p, &fs);
    typecheck(p);
    ASSERT_EQ(fs.fused_redomaps, 1);
  }
  opt::FlattenStats st;
  Prog q = opt::flatten_nested(p, &st);
  typecheck(q);
  if (kind == FlatKind::Collapsed) {
    ASSERT_EQ(st.flattened_maps, 1);
  } else {
    ASSERT_EQ(st.flattened_redomaps, 1);
  }

  std::vector<Value> args;
  const auto elems = static_cast<size_t>(n * m);
  args.push_back(rt::make_f64_array(rng.uniform_vec(elems, -1.0, 1.0), {n, m}));
  if (kind == FlatKind::SegDot) {
    args.push_back(rt::make_f64_array(rng.uniform_vec(elems, -1.0, 1.0), {n, m}));
  }

  // Reference: the general nested path (unannotated program), parallel off,
  // same kernel options — the bit-exactness contract's baseline.
  rt::Interp ref_in({.parallel = false, .use_kernels = true, .kernel_lanes = lanes});
  auto ref = rt::to_f64_vec(rt::as_array(ref_in.run(p, args)[0]));
  EXPECT_EQ(ref_in.stats().flattened_maps.load(), 0u);
  EXPECT_EQ(ref_in.stats().segred_launches.load(), 0u);

  rt::Interp flat_in({.parallel = parallel, .use_kernels = true, .kernel_lanes = lanes,
                      .grain = 8});
  auto out = flat_in.run(q, args)[0];
  auto got = rt::to_f64_vec(rt::as_array(out));
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], ref[i]) << i;  // bit-identical

  // Strategy counters: the flat drivers run whenever the outer extent is
  // nonzero (an empty outer falls back so result shapes keep matching the
  // general path's shape discovery).
  const auto& s = flat_in.stats();
  if (kind == FlatKind::Collapsed) {
    EXPECT_EQ(s.flattened_maps.load(), n > 0 ? 1u : 0u);
    if (n > 0) {
      ASSERT_EQ(rt::as_array(out).shape, (std::vector<int64_t>{n, m}));
    }
  } else {
    EXPECT_EQ(s.segred_launches.load(), n > 0 ? 1u : 0u);
    EXPECT_EQ(s.segred_segments.load(), n > 0 ? static_cast<uint64_t>(n) : 0u);
    // Flattened segments never route through the per-row reduce tiers.
    if (n > 0) {
      EXPECT_EQ(s.hand_reduces.load(), 0u);
      EXPECT_EQ(s.kernel_reduces.load(), 0u);
      EXPECT_EQ(s.general_reduces.load(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlattenConformance,
    ::testing::Values(
        // {collapsed, segmented-hand, segmented-kernel, segmented-fused}
        //   x {W=1, 8} x {empty outer, empty inner row, odd, larger}.
        FlatCase{FlatKind::Collapsed, 1, 7, 13, false},
        FlatCase{FlatKind::Collapsed, 8, 7, 13, false},
        FlatCase{FlatKind::Collapsed, 8, 64, 8, false},
        FlatCase{FlatKind::Collapsed, 8, 0, 5, false},
        FlatCase{FlatKind::Collapsed, 8, 4, 0, false},
        FlatCase{FlatKind::Collapsed, 8, 37, 11, true},
        FlatCase{FlatKind::SegHand, 1, 7, 13, false},
        FlatCase{FlatKind::SegHand, 8, 7, 13, false},
        FlatCase{FlatKind::SegHand, 8, 64, 8, false},
        FlatCase{FlatKind::SegHand, 8, 0, 5, false},
        FlatCase{FlatKind::SegHand, 8, 4, 0, false},
        FlatCase{FlatKind::SegHand, 8, 37, 11, true},
        FlatCase{FlatKind::SegLse, 1, 7, 13, false},
        FlatCase{FlatKind::SegLse, 8, 7, 13, false},
        FlatCase{FlatKind::SegLse, 8, 64, 8, false},
        FlatCase{FlatKind::SegLse, 8, 0, 5, false},
        FlatCase{FlatKind::SegLse, 8, 4, 0, false},
        FlatCase{FlatKind::SegLse, 8, 37, 11, true},
        FlatCase{FlatKind::SegDot, 1, 7, 13, false},
        FlatCase{FlatKind::SegDot, 8, 7, 13, false},
        FlatCase{FlatKind::SegDot, 8, 64, 8, false},
        FlatCase{FlatKind::SegDot, 8, 0, 5, false},
        FlatCase{FlatKind::SegDot, 8, 4, 0, false},
        FlatCase{FlatKind::SegDot, 8, 37, 11, true}));

TEST(FlattenConformance, NonKernelizableInnerFallsBack) {
  // An `if` inside the inner lambda is scalar-typed (so the annotation is
  // structurally valid) but not kernel-compilable: the runtime must fall
  // back to the general nested path and still agree exactly.
  ProgBuilder pb("nf");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(
      b.lam({arr_f64(1)},
            [](Builder& c, const std::vector<Var>& row) {
              return std::vector<Atom>{Atom(c.map1(
                  c.lam({f64()},
                        [](Builder& cc, const std::vector<Var>& p) {
                          Var cond = cc.gt(p[0], cf64(0.0));
                          Var r = cc.if1(
                              Atom(cond),
                              [&](Builder& tb) {
                                return std::vector<Atom>{Atom(tb.mul(p[0], cf64(2.0)))};
                              },
                              [&](Builder& fb) {
                                return std::vector<Atom>{Atom(fb.neg(p[0]))};
                              });
                          return std::vector<Atom>{Atom(r)};
                        }),
                  {row[0]}))};
            }),
      {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  opt::FlattenStats st;
  Prog q = opt::flatten_nested(p, &st);
  typecheck(q);
  ASSERT_EQ(st.flattened_maps, 1);  // annotated: the *structure* qualifies
  support::Rng rng(77);
  std::vector<Value> args = {rt::make_f64_array(rng.uniform_vec(5 * 9, -1.0, 1.0), {5, 9})};
  rt::Interp ref_in({.parallel = false, .use_kernels = true});
  auto ref = rt::to_f64_vec(rt::as_array(ref_in.run(p, args)[0]));
  rt::Interp flat_in({.parallel = false, .use_kernels = true});
  auto got = rt::to_f64_vec(rt::as_array(flat_in.run(q, args)[0]));
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], ref[i]) << i;
  EXPECT_EQ(flat_in.stats().flattened_maps.load(), 0u);  // fell back
  EXPECT_GE(flat_in.stats().general_maps.load(), 1u);
}

TEST(FlattenConformance, RowViewInputStaysFlat) {
  // A rank-2 row view of a rank-3 array (nonzero buffer offset) is still a
  // dense view: the collapsed launch must accept it and agree bit-exactly.
  Prog p = nested_sum_prog();
  opt::FlattenStats st;
  Prog q = opt::flatten_nested(p, &st);
  ASSERT_EQ(st.flattened_redomaps, 1);
  support::Rng rng(78);
  rt::ArrayVal cube = rt::make_f64_array(rng.uniform_vec(3 * 6 * 5, -1.0, 1.0), {3, 6, 5});
  std::vector<Value> args = {rt::row_view(cube, 2)};  // shape {6,5}, offset 60
  rt::Interp ref_in({.parallel = false, .use_kernels = true});
  auto ref = rt::to_f64_vec(rt::as_array(ref_in.run(p, args)[0]));
  rt::Interp flat_in({.parallel = false, .use_kernels = true});
  auto got = rt::to_f64_vec(rt::as_array(flat_in.run(q, args)[0]));
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], ref[i]) << i;
  EXPECT_EQ(flat_in.stats().segred_launches.load(), 1u);
}

// ------------------------------------------------- vexec conformance grid --

// The vectorized execution tier (runtime/vexec.hpp) must be bit-exact
// against the scalar register machine on every launch shape it can take
// over: {vexec on, off} x {map, fused redomap, segred, hist, scalar block,
// inline loop} x {empty, tail-only, large}, plus a forced-portable row
// (AVX2 hosts exercising the auto-vectorized handler build).

enum class VexKind { Map, Redomap, Segred, Hist, ScalarBlock, InlineLoop };

struct VexCase {
  VexKind kind;
  int64_t n;  // driving extent: 0 = empty, 3 = tail-only (< lane width), 4096 = large
};

// map(λx. Σ_i ws[i]*x) over a virtual iota domain: after fusion the inner
// redomap compiles to an InlineLoop inside the outer map's kernel — the
// shape the vexec tier lowers to its whole-loop micro-kernels.
Prog inline_loop_prog() {
  ProgBuilder pb("il");
  Var xs = pb.param("xs", arr_f64(1));
  Var ws = pb.param("ws", arr_f64(1));
  Builder& b = pb.body();
  Var out = b.map1(
      b.lam({f64()},
            [&](Builder& c, const std::vector<Var>& p) {
              Var is = c.iota(Atom(c.length(ws)));
              Var prods = c.map1(c.lam({i64()},
                                       [&](Builder& cc, const std::vector<Var>& q) {
                                         Var w = cc.index(ws, {Atom(q[0])});
                                         return std::vector<Atom>{Atom(cc.mul(w, p[0]))};
                                       }),
                                 {is});
              return std::vector<Atom>{Atom(c.reduce1(c.add_op(), cf64(0.0), {prods}))};
            }),
      {xs});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  opt::FuseStats fs;
  p = opt::fuse_maps(p, &fs);
  typecheck(p);
  return p;
}

// A scalar-only body: with plans on this lowers to one Scalars step, which
// the vexec tier executes through its width-1 program (run_scalar).
Prog scalar_block_prog() {
  ProgBuilder pb("sb");
  Var x = pb.param("x", f64());
  Var y = pb.param("y", f64());
  Builder& b = pb.body();
  Var t = b.mul(x, y);
  Var u = b.tanh(Atom(b.add(t, Atom(b.sin(x)))));
  Var v = b.max(u, Atom(b.mul(t, cf64(0.5))));
  Prog p = pb.finish({Atom(v)});
  typecheck(p);
  return p;
}

// Flattens every output (arrays element-wise, scalars directly) so one
// comparison loop covers all workload shapes. EXPECT_EQ on doubles is the
// bit-exactness check (no NaNs in these workloads).
std::vector<double> flatten_outputs(const std::vector<Value>& vs) {
  std::vector<double> out;
  for (const auto& v : vs) {
    if (rt::is_array(v)) {
      const auto& a = rt::as_array(v);
      for (int64_t i = 0; i < a.elems(); ++i) out.push_back(a.get_f64(i));
    } else {
      out.push_back(rt::as_f64(v));
    }
  }
  return out;
}

class VexecConformance : public ::testing::TestWithParam<VexCase> {};

TEST_P(VexecConformance, BitExactAgainstRegisterMachine) {
  const auto [kind, n] = GetParam();
  support::Rng rng(static_cast<uint64_t>(n) * 13 + static_cast<uint64_t>(kind) + 3);

  Prog p = [&] {
    switch (kind) {
      case VexKind::Map: {
        ProgBuilder pb("vm");
        Var xs = pb.param("xs", arr_f64(1));
        Builder& b = pb.body();
        Var out = b.map1(b.lam({f64()},
                               [](Builder& c, const std::vector<Var>& q) {
                                 Var t = c.mul(q[0], cf64(1.3));
                                 return std::vector<Atom>{Atom(c.tanh(Atom(c.add(t, cf64(0.2)))))};
                               }),
                         {xs});
        Prog r = pb.finish({Atom(out)});
        typecheck(r);
        return r;
      }
      case VexKind::Redomap: {
        Prog r = redomap_prog(/*with_map=*/true);
        opt::FuseStats fs;
        r = opt::fuse_maps(r, &fs);
        typecheck(r);
        return r;
      }
      case VexKind::Segred: {
        // LSE fold: a multi-statement op keeps the segmented launch off the
        // hand tier and on run_segred_chunk, the entry vexec takes over.
        Prog r = nested_lse_prog();
        opt::FlattenStats st;
        r = opt::flatten_nested(r, &st);
        typecheck(r);
        return r;
      }
      case VexKind::Hist: {
        Prog r = hist_prog(HistOp::SlowAdd, /*with_map=*/true);
        opt::FuseStats fs;
        r = opt::fuse_maps(r, &fs);
        typecheck(r);
        return r;
      }
      case VexKind::ScalarBlock: return scalar_block_prog();
      case VexKind::InlineLoop: return inline_loop_prog();
    }
    return scalar_block_prog();
  }();

  std::vector<Value> args;
  switch (kind) {
    case VexKind::Map:
    case VexKind::Redomap:
      args.push_back(rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n}));
      break;
    case VexKind::Segred:
      args.push_back(
          rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n * 7), -1.0, 1.0), {n, 7}));
      break;
    case VexKind::Hist: {
      args.push_back(rt::make_f64_array(rng.uniform_vec(8, -1.0, 1.0), {8}));  // dest
      std::vector<int64_t> inds(static_cast<size_t>(n));
      for (size_t i = 0; i < inds.size(); ++i) inds[i] = static_cast<int64_t>(i) % 8;
      args.push_back(rt::make_i64_array(std::move(inds), {n}));
      args.push_back(rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n}));
      break;
    }
    case VexKind::ScalarBlock:
      args.emplace_back(0.37 + 0.01 * static_cast<double>(n));
      args.emplace_back(-1.21);
      break;
    case VexKind::InlineLoop:
      args.push_back(rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n}));
      args.push_back(rt::make_f64_array(rng.uniform_vec(9, -1.0, 1.0), {9}));
      break;
  }

  rt::InterpOptions base{.parallel = false, .use_kernels = true, .kernel_lanes = 8};
  // Pinned on: the ScalarBlock rows dispatch vexec through plan steps, so
  // this grid must not depend on the NPAD_USE_PLANS environment default.
  base.use_plans = true;
  base.use_vexec = false;
  rt::Interp off{base};
  const auto ref = flatten_outputs(off.run(p, args));
  EXPECT_EQ(off.stats().vexec_launches.load(), 0u);

  for (bool portable : {false, true}) {
    rt::InterpOptions vo = base;
    vo.use_vexec = true;
    vo.vexec_portable = portable;
    rt::Interp on{vo};
    const auto got = flatten_outputs(on.run(p, args));
    ASSERT_EQ(got.size(), ref.size()) << "portable=" << portable;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], ref[i]) << "portable=" << portable << " at " << i;  // bit-identical
    }
    // Counter movement: the large rows (and the scalar block, whose plan
    // step always dispatches) must actually route through the tier; empty
    // and tail-only rows may legitimately skip it (no launch at all).
    if (n >= 4096 || kind == VexKind::ScalarBlock) {
      EXPECT_GT(on.stats().vexec_launches.load(), 0u) << "portable=" << portable;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VexecConformance,
    ::testing::Values(VexCase{VexKind::Map, 0}, VexCase{VexKind::Map, 3},
                      VexCase{VexKind::Map, 4096}, VexCase{VexKind::Redomap, 0},
                      VexCase{VexKind::Redomap, 3}, VexCase{VexKind::Redomap, 4096},
                      VexCase{VexKind::Segred, 0}, VexCase{VexKind::Segred, 3},
                      VexCase{VexKind::Segred, 4096}, VexCase{VexKind::Hist, 0},
                      VexCase{VexKind::Hist, 3}, VexCase{VexKind::Hist, 4096},
                      VexCase{VexKind::ScalarBlock, 0}, VexCase{VexKind::ScalarBlock, 3},
                      VexCase{VexKind::ScalarBlock, 4096}, VexCase{VexKind::InlineLoop, 0},
                      VexCase{VexKind::InlineLoop, 3}, VexCase{VexKind::InlineLoop, 4096}));

} // namespace
