// Conformance suite for the kernel-compiled map fast path: for every scalar
// operator, a map built around it must produce bit-identical results under
// the kernel VM and the general interpreter (parameterized sweep), including
// i64 index arithmetic, gathers, select chains and accumulator updates.

#include <gtest/gtest.h>

#include <cmath>

#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"
#include "support/rng.hpp"

namespace {

using namespace npad;
using namespace npad::ir;
using rt::Value;

struct OpCase {
  const char* name;
  std::function<Var(Builder&, Var, Var)> build;  // scalar f64 body
};

class KernelBinOp : public ::testing::TestWithParam<int> {};

const OpCase kCases[] = {
    {"add", [](Builder& c, Var a, Var b) { return c.add(a, b); }},
    {"sub", [](Builder& c, Var a, Var b) { return c.sub(a, b); }},
    {"mul", [](Builder& c, Var a, Var b) { return c.mul(a, b); }},
    {"div", [](Builder& c, Var a, Var b) { return c.div(a, Atom(c.add(b, cf64(3.0)))); }},
    {"min", [](Builder& c, Var a, Var b) { return c.min(a, b); }},
    {"max", [](Builder& c, Var a, Var b) { return c.max(a, b); }},
    {"pow", [](Builder& c, Var a, Var b) { return c.pow(Atom(c.abs(a)), b); }},
    {"exp", [](Builder& c, Var a, Var) { return c.exp(a); }},
    {"log", [](Builder& c, Var a, Var) { return c.log(Atom(c.add(c.abs(a), cf64(0.1)))); }},
    {"sqrt", [](Builder& c, Var a, Var) { return c.sqrt(Atom(c.abs(a))); }},
    {"sin", [](Builder& c, Var a, Var) { return c.sin(a); }},
    {"cos", [](Builder& c, Var a, Var) { return c.cos(a); }},
    {"tanh", [](Builder& c, Var a, Var) { return c.tanh(a); }},
    {"abs", [](Builder& c, Var a, Var) { return c.abs(a); }},
    {"neg", [](Builder& c, Var a, Var) { return c.neg(a); }},
    {"lgamma", [](Builder& c, Var a, Var) { return c.lgamma(Atom(c.add(c.abs(a), cf64(0.5)))); }},
    {"select",
     [](Builder& c, Var a, Var b) { return c.select(Atom(c.lt(a, b)), Atom(c.mul(a, b)), a); }},
    {"cmp_chain",
     [](Builder& c, Var a, Var b) {
       Var g = c.logical_and(Atom(c.gt(a, cf64(0.0))), Atom(c.le(b, cf64(0.5))));
       return c.select(Atom(g), cf64(1.0), cf64(-1.0));
     }},
};

TEST_P(KernelBinOp, KernelMatchesInterpreter) {
  const OpCase& oc = kCases[static_cast<size_t>(GetParam())];
  support::Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  ProgBuilder pb("k");
  Var xs = pb.param("xs", arr_f64(1));
  Var ys = pb.param("ys", arr_f64(1));
  Builder& b = pb.body();
  LambdaPtr f = b.lam({f64(), f64()}, [&](Builder& c, const std::vector<Var>& p) {
    return std::vector<Atom>{Atom(oc.build(c, p[0], p[1]))};
  });
  Var out = b.map1(std::move(f), {xs, ys});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  // 67 is deliberately not a multiple of the lane width: the batched machine
  // must agree through both its full batches and its scalar tail loop.
  std::vector<Value> args = {rt::make_f64_array(rng.normal_vec(67), {67}),
                             rt::make_f64_array(rng.normal_vec(67), {67})};
  rt::Interp slow({.parallel = false, .use_kernels = false});
  auto ref = rt::to_f64_vec(rt::as_array(slow.run(p, args)[0]));
  for (int lanes : {1, 8}) {
    rt::Interp fast({.parallel = false, .use_kernels = true, .kernel_lanes = lanes});
    auto r1 = rt::to_f64_vec(rt::as_array(fast.run(p, args)[0]));
    ASSERT_EQ(r1.size(), ref.size()) << oc.name;
    for (size_t i = 0; i < r1.size(); ++i) {
      EXPECT_EQ(r1[i], ref[i]) << oc.name << " W=" << lanes << " at " << i;  // bit-identical
    }
    EXPECT_EQ(fast.stats().kernel_maps.load(), 1u) << oc.name << " did not kernelize";
    EXPECT_EQ(fast.stats().batched_launches.load(), lanes > 1 ? 1u : 0u) << oc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, KernelBinOp,
                         ::testing::Range(0, static_cast<int>(std::size(kCases))));

TEST(KernelConformance, IndexArithmeticAndGather) {
  // Strided gather with i64 div/mod arithmetic — the HAND regression case.
  ProgBuilder pb("g");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var is = b.iota(ci64(30));
  Var out = b.map1(b.lam({i64()},
                         [&](Builder& c, const std::vector<Var>& p) {
                           Var r = c.div(p[0], ci64(3));
                           Var q = c.mod(p[0], ci64(3));
                           Var idx = c.add(Atom(c.mul(r, ci64(3))), Atom(q));
                           return std::vector<Atom>{Atom(c.index(xs, {Atom(idx)}))};
                         }),
                   {is});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  support::Rng rng(5);
  std::vector<Value> args = {rt::make_f64_array(rng.normal_vec(30), {30})};
  rt::Interp fast({.parallel = false, .use_kernels = true});
  rt::Interp slow({.parallel = false, .use_kernels = false});
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(fast.run(p, args)[0])),
            rt::to_f64_vec(rt::as_array(slow.run(p, args)[0])));
  EXPECT_EQ(fast.stats().kernel_maps.load(), 1u);
}

TEST(KernelConformance, MultiDimGather) {
  ProgBuilder pb("g2");
  Var m = pb.param("m", arr_f64(2));
  Builder& b = pb.body();
  Var is = b.iota(ci64(12));
  Var out = b.map1(b.lam({i64()},
                         [&](Builder& c, const std::vector<Var>& p) {
                           Var r = c.div(p[0], ci64(4));
                           Var q = c.mod(p[0], ci64(4));
                           return std::vector<Atom>{Atom(c.index(m, {Atom(r), Atom(q)}))};
                         }),
                   {is});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  support::Rng rng(6);
  std::vector<Value> args = {rt::make_f64_array(rng.normal_vec(12), {3, 4})};
  rt::Interp fast({.parallel = false, .use_kernels = true});
  rt::Interp slow({.parallel = false, .use_kernels = false});
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(fast.run(p, args)[0])),
            rt::to_f64_vec(rt::as_array(slow.run(p, args)[0])));
}

TEST(KernelConformance, AccumulatorUpdatesMatch) {
  ProgBuilder pb("acc");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var vs = pb.param("vs", arr_f64(1));
  Builder& b = pb.body();
  auto outs = b.withacc({dest}, [&](Builder& c, const std::vector<Var>& accs) {
    LambdaPtr f = c.lam({i64(), f64(), acc_of(arr_f64(1))},
                        [](Builder& cc, const std::vector<Var>& p) {
                          Var v2 = cc.mul(p[1], p[1]);
                          Var a2 = cc.upd_acc(p[2], {Atom(p[0])}, Atom(v2));
                          return std::vector<Atom>{Atom(a2)};
                        });
    return std::vector<Atom>{Atom(c.map(f, {is, vs, accs[0]})[0])};
  });
  Prog p = pb.finish({Atom(outs[0])});
  typecheck(p);
  support::Rng rng(7);
  const int64_t n = 200, m = 16;
  auto mk_args = [&] {
    return std::vector<Value>{
        rt::make_f64_array(std::vector<double>(static_cast<size_t>(m), 0.0), {m}),
        rt::make_i64_array(rng.index_vec(static_cast<size_t>(n), m), {n}),
        rt::make_f64_array(rng.normal_vec(static_cast<size_t>(n)), {n})};
  };
  auto args = mk_args();
  rt::Interp slow({.parallel = false, .use_kernels = false});
  auto r2 = rt::to_f64_vec(rt::as_array(slow.run(p, args)[0]));
  for (int lanes : {1, 8}) {
    rt::Interp fast({.parallel = false, .use_kernels = true, .kernel_lanes = lanes});
    auto r1 = rt::to_f64_vec(rt::as_array(fast.run(p, args)[0]));
    for (size_t i = 0; i < r1.size(); ++i) EXPECT_NEAR(r1[i], r2[i], 1e-12) << "W=" << lanes;
    EXPECT_EQ(fast.stats().kernel_maps.load(), 1u);
  }
}

// The batched machine must agree with the scalar machine across extents that
// exercise zero batches, exactly one batch, and every tail length.
TEST(KernelConformance, BatchedMatchesScalarAcrossSizes) {
  for (int64_t n : {0, 1, 3, 7, 8, 9, 15, 16, 17, 64, 65, 100}) {
    support::Rng rng(static_cast<uint64_t>(200 + n));
    ProgBuilder pb("bt");
    Var xs = pb.param("xs", arr_f64(1));
    Var ys = pb.param("ys", arr_f64(1));
    Builder& b = pb.body();
    Var out = b.map1(b.lam({f64(), f64()},
                           [](Builder& c, const std::vector<Var>& p) {
                             Var t = c.mul(Atom(c.tanh(p[0])), Atom(c.exp(p[1])));
                             Var u = c.select(Atom(c.gt(t, cf64(0.0))), Atom(c.sqrt(c.abs(t))),
                                              Atom(c.neg(t)));
                             return std::vector<Atom>{Atom(c.add(u, Atom(c.mul(p[0], p[1]))))};
                           }),
                     {xs, ys});
    Prog p = pb.finish({Atom(out)});
    typecheck(p);
    std::vector<Value> args = {
        rt::make_f64_array(rng.normal_vec(static_cast<size_t>(n)), {n}),
        rt::make_f64_array(rng.normal_vec(static_cast<size_t>(n)), {n})};
    rt::Interp w1({.parallel = false, .use_kernels = true, .kernel_lanes = 1});
    rt::Interp w8({.parallel = false, .use_kernels = true, .kernel_lanes = 8});
    auto r1 = rt::to_f64_vec(rt::as_array(w1.run(p, args)[0]));
    auto r8 = rt::to_f64_vec(rt::as_array(w8.run(p, args)[0]));
    ASSERT_EQ(r1.size(), r8.size()) << n;
    for (size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i], r8[i]) << "n=" << n << " i=" << i;
  }
}

// Launch buffers must recycle through the buffer pool: after a warm-up run
// the same program's intermediates come from the pool, not the heap.
TEST(KernelConformance, BufferPoolReusesLaunchBuffers) {
  ProgBuilder pb("pool");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var a = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         return std::vector<Atom>{Atom(c.mul(p[0], cf64(2.0)))};
                       }),
                 {xs});
  Var c2 = b.map1(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.add(p[0], cf64(1.0)))};
                        }),
                  {a});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {c2});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  support::Rng rng(11);
  std::vector<Value> args = {rt::make_f64_array(rng.normal_vec(512), {512})};
  rt::Interp in({.parallel = false, .use_kernels = true});
  const double first = rt::as_f64(in.run(p, args)[0]);
  // The first run's intermediates have been released back to the pool; the
  // second run must recycle them.
  const uint64_t hits_before = in.stats().pool_hits.load();
  const double second = rt::as_f64(in.run(p, args)[0]);
  EXPECT_EQ(first, second);
  EXPECT_GT(in.stats().pool_hits.load(), hits_before);
}

// Regression: maps over empty arrays (zero outer extent) must produce empty
// results through both execution paths, and row_elems() of an empty array
// reports zero rather than a bogus nonzero row extent.
TEST(KernelConformance, EmptyMapLaunch) {
  rt::ArrayVal empty2d = rt::ArrayVal::alloc(ScalarType::F64, {0, 3});
  EXPECT_EQ(empty2d.row_elems(), 0);
  EXPECT_EQ(empty2d.outer(), 0);

  ProgBuilder pb("empty");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({f64()},
                         [](Builder& c, const std::vector<Var>& p) {
                           return std::vector<Atom>{Atom(c.exp(p[0]))};
                         }),
                   {xs});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  std::vector<Value> args = {rt::make_f64_array({}, {0})};
  for (bool kernels : {false, true}) {
    rt::Interp in({.parallel = false, .use_kernels = kernels});
    auto r = in.run(p, args);
    EXPECT_EQ(rt::as_array(r[0]).outer(), 0) << "kernels=" << kernels;
    EXPECT_EQ(rt::to_f64_vec(rt::as_array(r[0])).size(), 0u);
  }
}

// Parallel runtime: parallel and sequential execution must agree for
// reductions and scans across a size sweep (chunked combine correctness).
class ParallelAgree : public ::testing::TestWithParam<int64_t> {};

TEST_P(ParallelAgree, ReduceAndScan) {
  const int64_t n = GetParam();
  support::Rng rng(static_cast<uint64_t>(n));
  ProgBuilder pb("rs");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var s = b.reduce1(b.add_op(), cf64(0.0), {xs});
  Var mx = b.reduce1(b.max_op(), cf64(-1e300), {xs});
  Var sc = b.scan1(b.add_op(), cf64(0.0), {xs});
  Prog p = pb.finish({Atom(s), Atom(mx), Atom(sc)});
  typecheck(p);
  std::vector<Value> args = {
      rt::make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), {n})};
  rt::Interp par({.parallel = true, .use_kernels = true, .grain = 64});
  rt::Interp seq({.parallel = false, .use_kernels = true, .grain = 64});
  auto r1 = par.run(p, args);
  auto r2 = seq.run(p, args);
  EXPECT_NEAR(rt::as_f64(r1[0]), rt::as_f64(r2[0]), 1e-9 * static_cast<double>(n));
  EXPECT_EQ(rt::as_f64(r1[1]), rt::as_f64(r2[1]));
  auto s1 = rt::to_f64_vec(rt::as_array(r1[2]));
  auto s2 = rt::to_f64_vec(rt::as_array(r2[2]));
  for (size_t i = 0; i < s1.size(); ++i) EXPECT_NEAR(s1[i], s2[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelAgree,
                         ::testing::Values<int64_t>(0, 1, 7, 63, 64, 65, 1000, 4096));

} // namespace
