// Concurrency and fault-injection coverage for the serving layer.
//
// Part 1: M client threads hammer a running batcher in a closed loop and
// every response must be bit-exact against a sequential reference run —
// batching across racing clients is an execution strategy, not a semantic
// change.
//
// Part 2: the test_fault.cpp sweep pattern extended to the serving layer's
// own fault sites (serve.enqueue at submission, serve.batch_exec in the
// per-request de-stacking loop). The serving robustness contract is stronger
// than the runtime one: an armed fault must surface as a typed error on the
// Response of exactly the request whose crossing fired — its batchmates
// still succeed bit-exact — the buffer pool's live footprint is restored,
// and an unarmed retry reproduces the baseline bit-exact. A runtime fault
// inside the stacked launch itself (pool.acquire) must instead trigger the
// per-request fallback, after which every request succeeds.
//
// test_fault.cpp and its >=20-distinct-sites assertion are untouched; this
// file owns the serving sites.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "runtime/buffer_pool.hpp"
#include "runtime/interp.hpp"
#include "serve/batcher.hpp"
#include "serve/registry.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

namespace {

using namespace npad;
using namespace npad::serve;
using npad::support::FaultInjector;
using npad::support::FaultKind;
using rt::Value;

const SizeMap kGmmSize = {{"n", 16}, {"d", 2}, {"k", 3}};

uint64_t bits_of(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::vector<uint64_t> fingerprint(const std::vector<Value>& vals) {
  std::vector<uint64_t> fp;
  for (const auto& v : vals) {
    if (std::holds_alternative<double>(v)) {
      fp.push_back(bits_of(std::get<double>(v)));
    } else if (std::holds_alternative<int64_t>(v)) {
      fp.push_back(static_cast<uint64_t>(std::get<int64_t>(v)));
    } else if (std::holds_alternative<bool>(v)) {
      fp.push_back(std::get<bool>(v) ? 1 : 0);
    } else if (rt::is_array(v)) {
      const rt::ArrayVal& a = rt::as_array(v);
      for (int64_t s : a.shape) fp.push_back(static_cast<uint64_t>(s));
      const int64_t ne = a.elems();
      for (int64_t i = 0; i < ne; ++i) {
        if (a.elem == ir::ScalarType::F64) {
          fp.push_back(bits_of(a.get_f64(i)));
        } else {
          fp.push_back(static_cast<uint64_t>(a.get_i64(i)));
        }
      }
    }
  }
  return fp;
}

class ServeConcurrent : public ::testing::Test {
protected:
  static void SetUpTestSuite() { register_builtin_programs(); }
};

// ------------------------------------------------------ concurrent hammer --

TEST_F(ServeConcurrent, RacingClientsGetTheirOwnBitExactResults) {
  auto entry = Registry::global().find("gmm");
  ASSERT_NE(entry, nullptr);

  BatcherOptions o;
  o.max_batch = 8;
  o.window_us = 200;
  o.workers = 2;
  o.interp.parallel = false;

  constexpr int kThreads = 6;
  constexpr int kPerThread = 20;
  struct Outcome {
    Mode mode;
    uint64_t seed;
    bool ok = false;
    std::string error;
    std::vector<uint64_t> fp;
    int batch_size = 0;
  };
  std::vector<std::vector<Outcome>> per_thread(kThreads);

  {
    Batcher b(o);
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        auto& outs = per_thread[static_cast<size_t>(t)];
        outs.reserve(kPerThread);
        for (int j = 0; j < kPerThread; ++j) {
          Outcome oc;
          // ~3:1 objective:jacobian mix; unique seed per (thread, request).
          oc.mode = (j % 4 == 3) ? Mode::Jacobian : Mode::Objective;
          oc.seed = static_cast<uint64_t>(t) * 100 + static_cast<uint64_t>(j);
          Response resp =
              b.execute({"gmm", oc.mode, entry->make_args(oc.mode, oc.seed, kGmmSize)});
          oc.ok = resp.ok();
          oc.error = resp.error;
          oc.fp = fingerprint(resp.results);
          oc.batch_size = resp.batch_size;
          outs.push_back(std::move(oc));
        }
      });
    }
    for (auto& c : clients) c.join();

    const auto& st = b.stats();
    EXPECT_EQ(st.requests.load(), static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(st.responses_ok.load(), static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(st.responses_error.load(), 0u);
    // Every request rode some executed group, stacked or single.
    EXPECT_EQ(st.stacked_requests.load() + st.single_requests.load(),
              static_cast<uint64_t>(kThreads * kPerThread));
  }

  // Sequential reference: same interpreter options, same deterministic args.
  rt::Interp ref(o.interp);
  for (int t = 0; t < kThreads; ++t) {
    for (const Outcome& oc : per_thread[static_cast<size_t>(t)]) {
      ASSERT_TRUE(oc.ok) << "thread " << t << " seed " << oc.seed << ": " << oc.error;
      EXPECT_GE(oc.batch_size, 1);
      const auto args = entry->make_args(oc.mode, oc.seed, kGmmSize);
      EXPECT_EQ(oc.fp, fingerprint(ref.run(entry->prog(oc.mode), args)))
          << "thread " << t << " seed " << oc.seed << " mode " << mode_name(oc.mode);
    }
  }
}

// --------------------------------------------------------- the fault sweep --

struct ReqOutcome {
  bool ok = false;
  std::string error_kind;
  std::string error;
  std::vector<uint64_t> fp;
};

struct WorkloadResult {
  std::vector<ReqOutcome> outs;
  std::map<std::string, uint64_t> serve_counters;
};

constexpr int kSweepK = 6;

// The sweep workload: K same-shape gmm objective requests through a paused
// single-worker batcher (deterministic grouping: one stacked batch of K).
// Values never escape — only fingerprints — so the pool-footprint check
// outside sees the fully unwound state.
WorkloadResult run_sweep_workload() {
  auto entry = Registry::global().find("gmm");
  BatcherOptions o;
  o.max_batch = kSweepK;
  o.window_us = 5000;
  o.workers = 1;
  o.start = false;
  o.interp.parallel = false;

  WorkloadResult wr;
  Batcher b(o);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < kSweepK; ++i) {
    futs.push_back(b.submit(
        {"gmm", Mode::Objective,
         entry->make_args(Mode::Objective, static_cast<uint64_t>(i), kGmmSize)}));
  }
  b.start();
  for (auto& f : futs) {
    Response resp = f.get();
    ReqOutcome oc;
    oc.ok = resp.ok();
    oc.error_kind = resp.error_kind;
    oc.error = resp.error;
    oc.fp = fingerprint(resp.results);
    wr.outs.push_back(std::move(oc));
  }
  b.stop();
  wr.serve_counters = b.stats().counters();
  return wr;
}

int site_index(const std::string& name) {
  auto& fi = FaultInjector::global();
  for (int s = 0; s < fi.num_sites(); ++s) {
    if (fi.site_name(s) == name) return s;
  }
  return -1;
}

TEST_F(ServeConcurrent, FaultSweepServingSites) {
  auto& fi = FaultInjector::global();
  auto& pool = rt::BufferPool::global();
  fi.stop();

  // Warm every cache (batched program, kernels, plans) and pin the baseline.
  const WorkloadResult b1 = run_sweep_workload();
  const WorkloadResult b2 = run_sweep_workload();
  ASSERT_EQ(b1.outs.size(), static_cast<size_t>(kSweepK));
  for (int i = 0; i < kSweepK; ++i) {
    ASSERT_TRUE(b1.outs[i].ok) << "baseline req " << i << ": " << b1.outs[i].error;
    ASSERT_EQ(b1.outs[i].fp, b2.outs[i].fp) << "baseline is not deterministic, req " << i;
  }
  ASSERT_EQ(b1.serve_counters.at("serve_stacked_batches"), 1u);

  // Count crossings: both serving sites must be crossed exactly once per
  // request (submission and de-stacking are per-request events).
  fi.start_counting();
  run_sweep_workload();
  fi.stop();
  const int enq_site = site_index("serve.enqueue");
  const int exec_site = site_index("serve.batch_exec");
  ASSERT_GE(enq_site, 0) << "serve.enqueue never crossed";
  ASSERT_GE(exec_site, 0) << "serve.batch_exec never crossed";
  EXPECT_EQ(fi.crossings(enq_site), static_cast<uint64_t>(kSweepK));
  EXPECT_EQ(fi.crossings(exec_site), static_cast<uint64_t>(kSweepK));

  struct SiteCase {
    int idx;
    const char* name;
    const char* want_kind;
  };
  for (const SiteCase& sc : {SiteCase{enq_site, "serve.enqueue", "ResourceError"},
                             SiteCase{exec_site, "serve.batch_exec", "KernelError"}}) {
    for (uint64_t occ : {uint64_t{0}, uint64_t{kSweepK - 1}}) {
      SCOPED_TRACE(std::string(sc.name) + "#" + std::to_string(occ));
      const size_t pre_buffers = pool.outstanding_buffers();
      fi.arm(sc.idx, occ);
      const WorkloadResult wr = run_sweep_workload();
      fi.stop();

      // The typed error landed on exactly the request whose crossing fired;
      // occurrences are in submit order, so occurrence i is request i.
      ASSERT_EQ(wr.outs.size(), static_cast<size_t>(kSweepK));
      for (int i = 0; i < kSweepK; ++i) {
        if (static_cast<uint64_t>(i) == occ) {
          EXPECT_FALSE(wr.outs[i].ok) << "armed fault did not surface on its request";
          EXPECT_EQ(wr.outs[i].error_kind, sc.want_kind) << wr.outs[i].error;
          EXPECT_NE(wr.outs[i].error.find("injected fault"), std::string::npos)
              << wr.outs[i].error;
        } else {
          ASSERT_TRUE(wr.outs[i].ok)
              << "batchmate " << i << " was poisoned: " << wr.outs[i].error;
          EXPECT_EQ(wr.outs[i].fp, b1.outs[i].fp) << "batchmate " << i << " diverged";
        }
      }
      EXPECT_EQ(wr.serve_counters.at("serve_responses_error"), 1u);
      EXPECT_EQ(wr.serve_counters.at("serve_responses_ok"),
                static_cast<uint64_t>(kSweepK - 1));
      // Zero-leak unwind.
      EXPECT_EQ(pool.outstanding_buffers(), pre_buffers) << "buffers leaked";
      // Bit-exact unarmed retry.
      const WorkloadResult retry = run_sweep_workload();
      for (int i = 0; i < kSweepK; ++i) {
        ASSERT_TRUE(retry.outs[i].ok) << retry.outs[i].error;
        EXPECT_EQ(retry.outs[i].fp, b1.outs[i].fp) << "retry diverged, req " << i;
      }
    }
  }
}

// A runtime fault *inside* the stacked launch (first pool allocation after
// submission) cannot be attributed to one request, so the batcher must fall
// back to per-request execution — after which every request succeeds
// bit-exact, because the armed fault already fired.
TEST_F(ServeConcurrent, RuntimeFaultInStackedLaunchFallsBackGracefully) {
  auto& fi = FaultInjector::global();
  fi.stop();
  const WorkloadResult base = run_sweep_workload();  // warm caches
  for (const auto& oc : base.outs) ASSERT_TRUE(oc.ok) << oc.error;

  // Occurrences of pool.acquire before submission (argument generation) must
  // be skipped so the fault fires inside the stacked execution: count the
  // prep-only allocations, then the full workload's.
  auto entry = Registry::global().find("gmm");
  fi.start_counting();
  for (int i = 0; i < kSweepK; ++i) {
    auto args = entry->make_args(Mode::Objective, static_cast<uint64_t>(i), kGmmSize);
  }
  fi.stop();
  const int pool_site = site_index("pool.acquire");
  ASSERT_GE(pool_site, 0);
  const uint64_t prep_allocs = fi.crossings(pool_site);

  fi.start_counting();
  run_sweep_workload();
  fi.stop();
  const uint64_t total_allocs = fi.crossings(pool_site);
  ASSERT_GT(total_allocs, prep_allocs)
      << "stacked execution performed no pool allocations";

  const uint64_t fired_before = fi.faults_fired();
  fi.arm(pool_site, prep_allocs);  // first allocation after argument prep
  const WorkloadResult wr = run_sweep_workload();
  fi.stop();
  ASSERT_EQ(fi.faults_fired(), fired_before + 1) << "armed pool fault did not fire";
  for (int i = 0; i < kSweepK; ++i) {
    ASSERT_TRUE(wr.outs[i].ok)
        << "request " << i << " failed instead of falling back: " << wr.outs[i].error;
    EXPECT_EQ(wr.outs[i].fp, base.outs[i].fp) << "fallback diverged, req " << i;
  }
  EXPECT_EQ(wr.serve_counters.at("serve_fallback_requests"),
            static_cast<uint64_t>(kSweepK));
  EXPECT_EQ(wr.serve_counters.at("serve_stacked_batches"), 0u);
  EXPECT_EQ(wr.serve_counters.at("serve_responses_ok"), static_cast<uint64_t>(kSweepK));
}

} // namespace
