// Optimization pass tests: DCE removes the redundant forward sweeps of
// perfect nests (Fig. 2 property), strip-mining preserves semantics and
// gradients (Fig. 4), accumulator specialization (§6.1) preserves gradients
// while eliminating withacc constructs.

#include <gtest/gtest.h>

#include "core/ad.hpp"
#include "core/gradcheck.hpp"
#include "ir/builder.hpp"
#include "ir/patterns.hpp"
#include "ir/print.hpp"
#include "ir/typecheck.hpp"
#include "ir/visit.hpp"
#include "opt/accopt.hpp"
#include "opt/fuse.hpp"
#include "opt/loopopt.hpp"
#include "opt/pipeline.hpp"
#include "opt/simplify.hpp"
#include "runtime/interp.hpp"
#include "support/rng.hpp"

namespace {

using namespace npad;
using namespace npad::ir;
using rt::Value;
using rt::make_f64_array;
using rt::make_i64_array;

// Drops the primal outputs of a vjp program, keeping only the gradients
// (the Fig. 2 setting where the caller does not need the original result).
Prog gradient_only(const Prog& vjp_prog, size_t primal_rets) {
  Prog out = vjp_prog;
  out.fn.body.result.erase(out.fn.body.result.begin(),
                           out.fn.body.result.begin() + static_cast<long>(primal_rets));
  out.fn.rets.erase(out.fn.rets.begin(), out.fn.rets.begin() + static_cast<long>(primal_rets));
  return out;
}

size_t count_maps(const Body& b);
size_t count_maps_exp(const Exp& e) {
  size_t n = std::holds_alternative<OpMap>(e) ? 1 : 0;
  for_each_nested(e, [&](const NestedScope& s) { n += count_maps(*s.body); });
  return n;
}
size_t count_maps(const Body& b) {
  size_t n = 0;
  for (const auto& s : b.stms) n += count_maps_exp(s.e);
  return n;
}

TEST(Simplify, DceDropsDeadStatements) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var used = b.mul(x, x);
  Var dead1 = b.exp(x);
  Var dead2 = b.add(dead1, cf64(1.0));
  (void)dead2;
  Prog p = pb.finish({Atom(used)});
  Prog q = opt::dead_code_elim(p);
  EXPECT_EQ(count_stms(q.fn.body), 1u);
  EXPECT_DOUBLE_EQ(rt::as_f64(rt::run_prog(q, {3.0})[0]), 9.0);
}

TEST(Simplify, ConstantFoldingAndIdentities) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var a = b.add(x, cf64(0.0));     // x
  Var m = b.mul(a, cf64(1.0));     // x
  Var z = b.mul(m, cf64(0.0));     // 0
  Var c = b.add(b.mul(cf64(2.0), cf64(3.0)), z);  // 6
  Var r = b.add(m, c);
  Prog p = pb.finish({Atom(r)});
  Prog q = opt::simplify(p);
  typecheck(q);
  EXPECT_DOUBLE_EQ(rt::as_f64(rt::run_prog(q, {5.0})[0]), 11.0);
  // After folding, only the final add of x and 6 should survive.
  EXPECT_LE(count_stms(q.fn.body), 2u);
}

TEST(Redundancy, PerfectNestHasNoReexecutionAfterDce) {
  // The Fig. 2 program: map (\c as -> if c then as else map (\a -> a*a) as).
  ProgBuilder pb("fig2");
  Var cs = pb.param("cs", arr(ScalarType::Bool, 1));
  Var ass = pb.param("ass", arr_f64(2));
  Builder& b = pb.body();
  Var xss = b.map(b.lam({boolean(), arr_f64(1)},
                        [](Builder& c, const std::vector<Var>& p) {
                          auto r = c.if_(
                              Atom(p[0]),
                              [&](Builder& tb) {
                                return std::vector<Atom>{Atom(tb.copy(p[1]))};
                              },
                              [&](Builder& fb) {
                                Var sq = fb.map1(
                                    fb.lam({f64()},
                                           [](Builder& cc, const std::vector<Var>& q) {
                                             return std::vector<Atom>{
                                                 Atom(cc.mul(q[0], q[0]))};
                                           }),
                                    {p[1]});
                                return std::vector<Atom>{Atom(sq)};
                              });
                          return std::vector<Atom>{Atom(r[0])};
                        }),
                  {cs, ass})[0];
  Prog p = pb.finish({Atom(xss)});
  typecheck(p);
  Prog g = ad::vjp(p);
  typecheck(g);
  Prog gonly = gradient_only(g, 1);
  Prog opt1 = opt::simplify(gonly);
  typecheck(opt1);
  // The differentiated-and-optimized program must not re-execute the
  // forward sweep: the primal output map (and the re-executed inner maps
  // producing dead primal values) are gone. What remains is the single
  // reverse map nest: outer rev-map + inner rev-map + (zeros init maps and
  // elementwise-add maps from adjoint plumbing are value-producing, not
  // re-execution). We assert the statement count shrinks substantially and
  // that no *primal* square map survives by running both and comparing
  // gradients.
  const size_t before = count_stms(g.fn.body);
  const size_t after = count_stms(opt1.fn.body);
  EXPECT_LT(after, before);
  // Check gradients agree between unoptimized and optimized programs.
  std::vector<Value> args = {
      [] {
        rt::ArrayVal a = rt::ArrayVal::alloc(ScalarType::Bool, {2});
        a.set_b8(0, true);
        a.set_b8(1, false);
        return a;
      }(),
      make_f64_array({1, 2, 3, 4, 5, 6}, {2, 3}),
      make_f64_array({1, 1, 1, 1, 1, 1}, {2, 3})};  // seed
  auto r1 = rt::run_prog(g, args);
  auto r2 = rt::run_prog(opt1, args);
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r1.back())), rt::to_f64_vec(rt::as_array(r2.back())));
  // Gradient: row 0 passes through (1s), row 1 is 2*a.
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r2.back())),
            (std::vector<double>{1, 1, 1, 8, 10, 12}));
}

TEST(Stripmine, PreservesSemanticsAndGradients) {
  auto build = [](int factor) {
    ProgBuilder pb("f");
    Var x0 = pb.param("x0", f64());
    Builder& b = pb.body();
    auto outs = b.loop_for(
        {Atom(x0)}, ci64(10),
        [](Builder& c, Var, const std::vector<Var>& ps) {
          Var t = c.mul(ps[0], cf64(1.1));
          return std::vector<Atom>{Atom(c.add(t, Atom(c.mul(ps[0], ps[0]))))};
        },
        factor);
    return pb.finish({Atom(outs[0])});
  };
  Prog plain = build(0);
  Prog annotated = build(4);
  Prog mined = opt::apply_stripmining(annotated);
  typecheck(mined);
  const double x0 = 0.05;
  EXPECT_NEAR(rt::as_f64(rt::run_prog(plain, {x0})[0]),
              rt::as_f64(rt::run_prog(mined, {x0})[0]), 1e-13);
  auto g1 = ad::reverse_gradients(plain, {x0});
  auto g2 = ad::reverse_gradients(mined, {x0});
  EXPECT_NEAR(g1[0][0], g2[0][0], 1e-10);
}

TEST(Stripmine, NonDivisibleCount) {
  auto build = [](int factor) {
    ProgBuilder pb("f");
    Var x0 = pb.param("x0", f64());
    Var n = pb.param("n", i64());
    Builder& b = pb.body();
    auto outs = b.loop_for(
        {Atom(x0)}, Atom(n),
        [](Builder& c, Var i, const std::vector<Var>& ps) {
          Var fi = c.to_f64(Atom(i));
          return std::vector<Atom>{Atom(c.add(ps[0], Atom(c.mul(fi, cf64(0.5)))))};
        },
        factor);
    return pb.finish({Atom(outs[0])});
  };
  Prog mined = opt::apply_stripmining(build(3));
  typecheck(mined);
  for (int64_t n : {0, 1, 5, 7, 9}) {
    EXPECT_NEAR(rt::as_f64(rt::run_prog(build(0), {2.0, n})[0]),
                rt::as_f64(rt::run_prog(mined, {2.0, n})[0]), 1e-13)
        << n;
  }
}

// -------------------------------------------------------------- accopt -----

TEST(AccOpt, HistogramRuleFiresAndPreservesGradient) {
  // f(xs, inds) = sum(hist-like accumulation): the vjp of a gather produces
  // the withacc+upd_acc pattern Rule H rewrites to reduce_by_index.
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({i64()},
                       [&](Builder& c, const std::vector<Var>& p) {
                         Var v = c.index(xs, {Atom(p[0])});
                         return std::vector<Atom>{Atom(c.mul(v, v))};
                       }),
                 {is});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {e});
  Prog p = pb.finish({Atom(s)});
  Prog g = ad::vjp(p);
  typecheck(g);
  opt::AccOptStats stats;
  Prog go = opt::optimize_accumulators(g, &stats);
  typecheck(go);
  EXPECT_GE(stats.to_histogram, 1);
  std::vector<Value> args = {make_f64_array({1, 2, 3}, {3}),
                             make_i64_array({0, 2, 0, 1, 0}, {5}), 1.0};
  auto r1 = rt::run_prog(g, args);
  auto r2 = rt::run_prog(go, args);
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r1.back())), rt::to_f64_vec(rt::as_array(r2.back())));
}

TEST(AccOpt, InvariantRuleFiresAndPreservesGradient) {
  // All iterations accumulate into the same cell -> Rule R (map-reduce).
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var w = pb.param("w", arr_f64(1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({f64()},
                       [&](Builder& c, const std::vector<Var>& p) {
                         Var v = c.index(w, {ci64(0)});
                         return std::vector<Atom>{Atom(c.mul(v, p[0]))};
                       }),
                 {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {e});
  Prog p = pb.finish({Atom(s)});
  Prog g = ad::vjp(p);
  opt::AccOptStats stats;
  Prog go = opt::optimize_accumulators(g, &stats);
  typecheck(go);
  EXPECT_GE(stats.to_reduction, 1);
  std::vector<Value> args = {make_f64_array({1, 2, 3}, {3}), make_f64_array({0.5, 9}, {2}), 1.0};
  auto r1 = rt::run_prog(g, args);
  auto r2 = rt::run_prog(go, args);
  // w adjoint: dw0 = sum(xs) = 6, dw1 = 0.
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r1.back())), (std::vector<double>{6, 0}));
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r2.back())), (std::vector<double>{6, 0}));
}

// ---------------------------------------------------------------- fusion ---

LambdaPtr scalar_map(Builder& b, double mulc, double addc) {
  return b.lam({f64()}, [&](Builder& c, const std::vector<Var>& p) {
    return std::vector<Atom>{Atom(c.add(Atom(c.mul(p[0], cf64(mulc))), cf64(addc)))};
  });
}

TEST(Fusion, ChainFusesToSingleMap) {
  ProgBuilder pb("chain");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var a = b.map1(scalar_map(b, 2.0, 1.0), {xs});
  Var c = b.map1(scalar_map(b, 3.0, -0.5), {a});
  Var d = b.map1(scalar_map(b, 0.25, 2.0), {c});
  Prog p = pb.finish({Atom(d)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_maps, 2);
  EXPECT_EQ(count_maps(q.fn.body), 1u);
  std::vector<Value> args = {make_f64_array({1, 2, 3, 4}, {4})};
  rt::Interp in({.parallel = false});
  auto r1 = rt::to_f64_vec(rt::as_array(rt::run_prog(p, args)[0]));
  auto r2 = rt::to_f64_vec(rt::as_array(in.run(q, args)[0]));
  EXPECT_EQ(r1, r2);
  // The runtime reports the eliminated producers via the fused annotation.
  EXPECT_EQ(in.stats().fused_maps.load(), 2u);
}

TEST(Fusion, MultiInputConsumerFusesAndKeepsOtherArgs) {
  // ys = map f xs; zs = map (\y w -> y*w) ys ws — fused map must take xs, ws.
  ProgBuilder pb("mi");
  Var xs = pb.param("xs", arr_f64(1));
  Var ws = pb.param("ws", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, 2.0, 0.0), {xs});
  Var zs = b.map1(b.lam({f64(), f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                        }),
                  {ys, ws});
  Prog p = pb.finish({Atom(zs)});
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_maps, 1);
  EXPECT_EQ(count_maps(q.fn.body), 1u);
  std::vector<Value> args = {make_f64_array({1, 2, 3}, {3}), make_f64_array({4, 5, 6}, {3})};
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(rt::run_prog(p, args)[0])),
            rt::to_f64_vec(rt::as_array(rt::run_prog(q, args)[0])));
}

TEST(Fusion, NonElementwiseConsumerNotFused) {
  // The producer result is gathered at arbitrary indices (free in the
  // consumer lambda, not an element argument): fusion must not fire.
  ProgBuilder pb("gather");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, 2.0, 0.0), {xs});
  Var is = b.iota(ci64(4));
  Var zs = b.map1(b.lam({i64()},
                        [&](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.index(ys, {Atom(p[0])}))};
                        }),
                  {is});
  Prog p = pb.finish({Atom(zs)});
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_maps, 0);
  EXPECT_EQ(count_maps(q.fn.body), 2u);
}

TEST(Fusion, ResultUsedTwiceNotFused) {
  // ys feeds a map AND the body result: the intermediate must stay.
  ProgBuilder pb("twice");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, 2.0, 0.0), {xs});
  Var zs = b.map1(scalar_map(b, 3.0, 0.0), {ys});
  Prog p = pb.finish({Atom(ys), Atom(zs)});
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  EXPECT_EQ(stats.fused_maps, 0);
  EXPECT_EQ(count_maps(q.fn.body), 2u);
}

TEST(Fusion, InPlaceConsumptionInGapBlocksFusion) {
  // Regression: the producer gathers from X, a later statement consumes X
  // via update (mutating the buffer in place when uniquely owned), and the
  // consumer map follows. Fusing would defer the X[0] read past the update
  // and observe 100.0 instead of the original value.
  ProgBuilder pb("gapupd");
  Var bigx = pb.param("X", arr_f64(1));
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(b.lam({f64()},
                        [&](Builder& c, const std::vector<Var>& p) {
                          Var x0 = c.index(bigx, {ci64(0)});
                          return std::vector<Atom>{Atom(c.mul(p[0], Atom(x0)))};
                        }),
                  {xs});
  Var x2 = b.update(bigx, {ci64(0)}, cf64(100.0));
  Var zs = b.map1(b.lam({f64()},
                        [&](Builder& c, const std::vector<Var>& p) {
                          Var v = c.index(x2, {ci64(0)});
                          return std::vector<Atom>{Atom(c.add(p[0], Atom(v)))};
                        }),
                  {ys});
  Prog p = pb.finish({Atom(zs)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_maps, 0);
  std::vector<Value> args = {make_f64_array({5.0}, {1}), make_f64_array({1, 2, 3}, {3})};
  auto r1 = rt::to_f64_vec(rt::as_array(rt::run_prog(p, args)[0]));
  auto r2 = rt::to_f64_vec(rt::as_array(rt::run_prog(q, args)[0]));
  EXPECT_EQ(r1, (std::vector<double>{105, 110, 115}));
  EXPECT_EQ(r1, r2);
}

TEST(Fusion, ProducerArgConsumedInGapBlocksFusion) {
  // Same hazard on the producer's element argument: xs is consumed by an
  // update between producer and consumer.
  ProgBuilder pb("gapargs");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, 2.0, 0.0), {xs});
  Var xs2 = b.update(xs, {ci64(0)}, cf64(-1.0));
  Var zs = b.map1(scalar_map(b, 3.0, 0.0), {ys});
  Var s2 = b.reduce1(b.add_op(), cf64(0.0), {xs2});
  Prog p = pb.finish({Atom(zs), Atom(s2)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  EXPECT_EQ(stats.fused_maps, 0);
  std::vector<Value> args = {make_f64_array({1, 2, 3}, {3})};
  auto r1 = rt::run_prog(p, args);
  auto r2 = rt::run_prog(q, args);
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r1[0])), rt::to_f64_vec(rt::as_array(r2[0])));
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r1[0])), (std::vector<double>{6, 12, 18}));
}

TEST(Fusion, AccumulatorThreadingPreserved) {
  // The consumer threads an accumulator; fusing its producer must keep the
  // acc updates (and their values) intact.
  ProgBuilder pb("accfuse");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var vs = pb.param("vs", arr_f64(1));
  Builder& b = pb.body();
  auto outs = b.withacc({dest}, [&](Builder& c, const std::vector<Var>& accs) {
    Var doubled = c.map1(c.lam({f64()},
                               [](Builder& cc, const std::vector<Var>& p) {
                                 return std::vector<Atom>{Atom(cc.mul(p[0], cf64(2.0)))};
                               }),
                         {vs});
    LambdaPtr f = c.lam({i64(), f64(), acc_of(arr_f64(1))},
                        [](Builder& cc, const std::vector<Var>& p) {
                          Var a2 = cc.upd_acc(p[2], {Atom(p[0])}, Atom(p[1]));
                          return std::vector<Atom>{Atom(a2)};
                        });
    return std::vector<Atom>{Atom(c.map(f, {is, doubled, accs[0]})[0])};
  });
  Prog p = pb.finish({Atom(outs[0])});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_maps, 1);
  std::vector<Value> args = {make_f64_array({0, 0, 0}, {3}),
                             make_i64_array({0, 2, 0, 1}, {4}),
                             make_f64_array({1, 2, 3, 4}, {4})};
  auto r1 = rt::to_f64_vec(rt::as_array(rt::run_prog(p, args)[0]));
  auto r2 = rt::to_f64_vec(rt::as_array(rt::run_prog(q, args)[0]));
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r2, (std::vector<double>{8, 8, 4}));
}

TEST(Fusion, PipelinetogglesFusion) {
  ProgBuilder pb("pl");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var a = b.map1(scalar_map(b, 2.0, 1.0), {xs});
  Var c = b.map1(scalar_map(b, 3.0, 0.0), {a});
  Prog p = pb.finish({Atom(c)});
  opt::PipelineStats st_on, st_off;
  Prog fused = opt::optimize(p, {.fuse_maps = true}, &st_on);
  Prog unfused = opt::optimize(p, {.fuse_maps = false}, &st_off);
  EXPECT_EQ(st_on.fuse.fused_maps, 1);
  EXPECT_EQ(st_off.fuse.fused_maps, 0);
  EXPECT_EQ(count_maps(fused.fn.body), 1u);
  EXPECT_EQ(count_maps(unfused.fn.body), 2u);
  std::vector<Value> args = {make_f64_array({1, 2}, {2})};
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(rt::run_prog(fused, args)[0])),
            rt::to_f64_vec(rt::as_array(rt::run_prog(unfused, args)[0])));
}

TEST(Fusion, VjpAdjointChainFuses) {
  // Reverse AD of an element-wise chain emits map-of-adjoint chains; after
  // simplify they must fuse and the gradient must be unchanged.
  ProgBuilder pb("vchain");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var a = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         return std::vector<Atom>{Atom(c.tanh(p[0]))};
                       }),
                 {xs});
  Var c2 = b.map1(scalar_map(b, 1.5, 0.25), {a});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {c2});
  Prog p = pb.finish({Atom(s)});
  Prog g = ad::vjp(p);
  typecheck(g);
  Prog gs = opt::simplify(g);
  opt::FuseStats stats;
  Prog gf = opt::fuse_maps(gs, &stats);
  typecheck(gf);
  EXPECT_GE(stats.fused_maps, 1);
  EXPECT_LT(count_maps(gf.fn.body), count_maps(gs.fn.body));
  std::vector<Value> args = {make_f64_array({0.3, -0.7, 1.2}, {3}), 1.0};
  auto r1 = rt::to_f64_vec(rt::as_array(rt::run_prog(g, args).back()));
  auto r2 = rt::to_f64_vec(rt::as_array(rt::run_prog(gf, args).back()));
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) EXPECT_NEAR(r1[i], r2[i], 1e-14);
}

// ------------------------------------------------------ redomap fusion ----

size_t count_redomaps(const Body& b);
size_t count_redomaps_exp(const Exp& e) {
  size_t n = 0;
  if (const auto* r = std::get_if<OpReduce>(&e); r && r->pre) ++n;
  if (const auto* sc = std::get_if<OpScan>(&e); sc && sc->pre) ++n;
  for_each_nested(e, [&](const NestedScope& s) { n += count_redomaps(*s.body); });
  return n;
}
size_t count_redomaps(const Body& b) {
  size_t n = 0;
  for (const auto& s : b.stms) n += count_redomaps_exp(s.e);
  return n;
}

TEST(RedomapFusion, MapIntoReduceFuses) {
  ProgBuilder pb("mr");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, 2.0, 1.0), {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {ys});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_redomaps, 1);
  EXPECT_EQ(count_maps(q.fn.body), 0u);  // the intermediate map is gone
  EXPECT_EQ(count_redomaps(q.fn.body), 1u);
  // The rewritten reduce folds over xs directly with fused annotation 1.
  const auto* red = std::get_if<OpReduce>(&q.fn.body.stms.back().e);
  ASSERT_NE(red, nullptr);
  ASSERT_TRUE(red->pre);
  EXPECT_EQ(red->fused, 1u);
  ASSERT_EQ(red->args.size(), 1u);
  EXPECT_EQ(red->args[0], xs);
  std::vector<Value> args = {make_f64_array({1, 2, 3, 4, 5}, {5})};
  rt::Interp in({.parallel = false});
  EXPECT_DOUBLE_EQ(rt::as_f64(rt::run_prog(p, args)[0]), rt::as_f64(in.run(q, args)[0]));
  EXPECT_EQ(in.stats().fused_reduces.load(), 1u);
}

TEST(RedomapFusion, ChainIntoReduceFusesTransitively) {
  // map→map→reduce collapses to one redomap carrying both producers.
  ProgBuilder pb("chain-red");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var a = b.map1(scalar_map(b, 2.0, 1.0), {xs});
  Var c = b.map1(scalar_map(b, 3.0, -0.5), {a});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {c});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_maps + stats.fused_redomaps, 2);
  EXPECT_EQ(count_maps(q.fn.body), 0u);
  const auto* red = std::get_if<OpReduce>(&q.fn.body.stms.back().e);
  ASSERT_NE(red, nullptr);
  EXPECT_EQ(red->fused, 2u);
  std::vector<Value> args = {make_f64_array({0.5, -1.5, 2.0}, {3})};
  EXPECT_NEAR(rt::as_f64(rt::run_prog(p, args)[0]), rt::as_f64(rt::run_prog(q, args)[0]),
              1e-12);
}

TEST(RedomapFusion, MapIntoScanFuses) {
  ProgBuilder pb("ms");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, -1.0, 0.25), {xs});
  Var sc = b.scan1(b.add_op(), cf64(0.0), {ys});
  Prog p = pb.finish({Atom(sc)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_redomaps, 1);
  EXPECT_EQ(count_maps(q.fn.body), 0u);
  const auto* scn = std::get_if<OpScan>(&q.fn.body.stms.back().e);
  ASSERT_NE(scn, nullptr);
  ASSERT_TRUE(scn->pre);
  EXPECT_EQ(scn->fused, 1u);
  std::vector<Value> args = {make_f64_array({1, 2, 3, 4}, {4})};
  rt::Interp in({.parallel = false});
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(rt::run_prog(p, args)[0])),
            rt::to_f64_vec(rt::as_array(in.run(q, args)[0])));
  EXPECT_EQ(in.stats().fused_scans.load(), 1u);
}

TEST(RedomapFusion, MeasuredChainIntoReduceFullyFuses) {
  // The vjp shape: a map chain feeding a reduce whose rule also measures
  // the (chain's) result via length. The length redirect must chase the
  // chain to its root so every intermediate fuses away.
  ProgBuilder pb("mlen");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var a = b.map1(scalar_map(b, 2.0, 1.0), {xs});
  Var ys = b.map1(scalar_map(b, 3.0, -0.5), {a});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {ys});
  Var l = b.length(ys);
  Prog p = pb.finish({Atom(s), Atom(l)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_maps + stats.fused_redomaps, 2);
  EXPECT_EQ(count_maps(q.fn.body), 0u);
  std::vector<Value> args = {make_f64_array({1, 2, 3}, {3})};
  auto r1 = rt::run_prog(p, args);
  auto r2 = rt::run_prog(q, args);
  EXPECT_NEAR(rt::as_f64(r1[0]), rt::as_f64(r2[0]), 1e-12);
  EXPECT_EQ(rt::as_i64(r1[1]), rt::as_i64(r2[1]));
  EXPECT_EQ(rt::as_i64(r2[1]), 3);
}

TEST(RedomapFusion, ResultUsedBesidesReduceNotFused) {
  // ys feeds the reduce AND the body result: the intermediate must stay.
  ProgBuilder pb("keep");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, 2.0, 0.0), {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {ys});
  Prog p = pb.finish({Atom(ys), Atom(s)});
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  EXPECT_EQ(stats.fused_redomaps, 0);
  EXPECT_EQ(count_maps(q.fn.body), 1u);
}

TEST(RedomapFusion, ResultFreeInFoldOpNotFused) {
  // The fold body gathers from ys (free in the op lambda): not element-wise
  // consumption, so fusion must not fire.
  ProgBuilder pb("freeop");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, 2.0, 0.0), {xs});
  Var s = b.reduce1(b.lam({f64(), f64()},
                          [&](Builder& c, const std::vector<Var>& p) {
                            Var y0 = c.index(ys, {ci64(0)});
                            Var t = c.add(p[0], p[1]);
                            return std::vector<Atom>{Atom(c.add(t, Atom(y0)))};
                          }),
                    cf64(0.0), {ys});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_redomaps, 0);
  EXPECT_EQ(count_maps(q.fn.body), 1u);
}

TEST(RedomapFusion, PipelineFusesVjpAdjointChainIntoReduce) {
  // vjp of sum(f(xs)) style programs emits adjoint map chains contracting
  // into reductions; the standard pipeline must collapse them into redomap
  // form transitively and keep the gradient.
  ProgBuilder pb("vred");
  Var xs = pb.param("xs", arr_f64(1));
  Var ws = pb.param("ws", arr_f64(1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         return std::vector<Atom>{Atom(c.exp(Atom(c.mul(p[0], cf64(0.5)))))};
                       }),
                 {xs});
  Var prods = b.map(b.lam({f64(), f64()},
                          [](Builder& c, const std::vector<Var>& p) {
                            return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                          }),
                    {e, ws})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {prods});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  opt::PipelineStats st;
  Prog q = opt::optimize(p, {}, &st);
  typecheck(q);
  EXPECT_GE(st.fuse.fused_redomaps, 1);
  EXPECT_EQ(count_maps(q.fn.body), 0u);  // primal chain fully in the redomap
  Prog g = ad::vjp(p);
  typecheck(g);
  opt::PipelineStats gst;
  Prog gf = opt::optimize(g, {}, &gst);
  typecheck(gf);
  std::vector<Value> args = {make_f64_array({0.2, -0.4, 0.6}, {3}),
                             make_f64_array({1.5, -2.0, 0.5}, {3}), 1.0};
  auto r1 = rt::run_prog(g, args);
  auto r2 = rt::run_prog(gf, args);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = r1.size() - 2; i < r1.size(); ++i) {
    auto v1 = rt::to_f64_vec(rt::as_array(r1[i]));
    auto v2 = rt::to_f64_vec(rt::as_array(r2[i]));
    ASSERT_EQ(v1.size(), v2.size());
    for (size_t j = 0; j < v1.size(); ++j) EXPECT_NEAR(v1[j], v2[j], 1e-13);
  }
}

TEST(HistFusion, MapIntoHistFuses) {
  // hist(op, dest, is, map(f, vs)) — the producer folds into the hist's
  // pre-lambda (histomap form) and the mapped intermediate disappears.
  ProgBuilder pb("mh");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var vs = pb.param("vs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, 2.0, 1.0), {vs});
  Var h = b.hist(b.add_op(), cf64(0.0), dest, is, ys);
  Prog p = pb.finish({Atom(h)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_hists, 1);
  EXPECT_EQ(count_maps(q.fn.body), 0u);
  const auto* hist = std::get_if<OpHist>(&q.fn.body.stms.back().e);
  ASSERT_NE(hist, nullptr);
  ASSERT_TRUE(hist->pre);
  EXPECT_EQ(hist->fused, 1u);
  EXPECT_EQ(hist->vals, vs);  // scatters straight from the producer's input
  std::vector<Value> args = {make_f64_array({0, 0, 0}, {3}),
                             make_i64_array({0, 2, 1, 2, -1, 9}, {6}),
                             make_f64_array({1, 2, 3, 4, 5, 6}, {6})};
  rt::Interp in({.parallel = false});
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(rt::run_prog(p, args)[0])),
            rt::to_f64_vec(rt::as_array(in.run(q, args)[0])));
  EXPECT_EQ(in.stats().fused_hists.load(), 1u);
  EXPECT_EQ(in.stats().kernel_hists.load(), 1u);
}

TEST(HistFusion, ChainIntoHistFusesTransitively) {
  // map→map→hist collapses into one histomap carrying both producers.
  ProgBuilder pb("chain-h");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var vs = pb.param("vs", arr_f64(1));
  Builder& b = pb.body();
  Var a = b.map1(scalar_map(b, 2.0, 1.0), {vs});
  Var c = b.map1(scalar_map(b, 3.0, -0.5), {a});
  Var h = b.hist(b.add_op(), cf64(0.0), dest, is, c);
  Prog p = pb.finish({Atom(h)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_maps + stats.fused_hists, 2);
  EXPECT_EQ(count_maps(q.fn.body), 0u);
  const auto* hist = std::get_if<OpHist>(&q.fn.body.stms.back().e);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->fused, 2u);
  std::vector<Value> args = {make_f64_array({0.5, -1.0}, {2}), make_i64_array({1, 0, 1}, {3}),
                             make_f64_array({1, 2, 3}, {3})};
  auto r1 = rt::to_f64_vec(rt::as_array(rt::run_prog(p, args)[0]));
  auto r2 = rt::to_f64_vec(rt::as_array(rt::run_prog(q, args)[0]));
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) EXPECT_NEAR(r1[i], r2[i], 1e-12) << i;
}

TEST(HistFusion, ValsUsedBesidesHistNotFused) {
  // ys feeds the hist AND the body result: the intermediate must stay.
  ProgBuilder pb("keep-h");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var vs = pb.param("vs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, 2.0, 0.0), {vs});
  Var h = b.hist(b.add_op(), cf64(0.0), dest, is, ys);
  Prog p = pb.finish({Atom(ys), Atom(h)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  EXPECT_EQ(stats.fused_hists, 0);
  EXPECT_EQ(count_maps(q.fn.body), 1u);
}

TEST(HistFusion, IndsProducerNotFused) {
  // A map feeding the *index* stream is not element-wise value consumption;
  // it must stay a separate map.
  ProgBuilder pb("inds-h");
  Var dest = pb.param("dest", arr_f64(1));
  Var vs = pb.param("vs", arr_f64(1));
  Builder& b = pb.body();
  Var n = b.length(vs);
  Var iot = b.iota(Atom(n));
  Var is = b.map1(b.lam({i64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mod(p[0], ci64(3)))};
                        }),
                  {iot});
  Var h = b.hist(b.add_op(), cf64(0.0), dest, is, vs);
  Prog p = pb.finish({Atom(h)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_hists, 0);
  std::vector<Value> args = {make_f64_array({0, 0, 0, 0}, {4}),
                             make_f64_array({1, 2, 3, 4, 5}, {5})};
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(rt::run_prog(p, args)[0])),
            rt::to_f64_vec(rt::as_array(rt::run_prog(q, args)[0])));
}

TEST(HistFusion, MultiInputProducerNotFused) {
  // OpHist has a single vals slot: a two-input producer cannot fold in.
  ProgBuilder pb("mi-h");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var xs = pb.param("xs", arr_f64(1));
  Var ws = pb.param("ws", arr_f64(1));
  Builder& b = pb.body();
  Var prods = b.map(b.lam({f64(), f64()},
                          [](Builder& c, const std::vector<Var>& p) {
                            return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                          }),
                    {xs, ws})[0];
  Var h = b.hist(b.add_op(), cf64(0.0), dest, is, prods);
  Prog p = pb.finish({Atom(h)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_hists, 0);
  EXPECT_EQ(count_maps(q.fn.body), 1u);
}

TEST(HistFusion, ProducerReadingDestNotFused) {
  // ys = map f dest; h = hist(op, dest, is, ys): the hist mutates dest in
  // place, so deferring the producer's reads of dest into the hist would
  // observe bins earlier iterations already updated. Fusion must not fire,
  // and fused/unfused programs must agree.
  ProgBuilder pb("alias-h");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, 2.0, 1.0), {dest});
  Var h = b.hist(b.add_op(), cf64(0.0), dest, is, ys);
  Prog p = pb.finish({Atom(h)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  EXPECT_EQ(stats.fused_hists, 0);
  EXPECT_EQ(count_maps(q.fn.body), 1u);
  std::vector<Value> args = {make_f64_array({1, 2, 3}, {3}), make_i64_array({0, 1, 0}, {3})};
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(rt::run_prog(p, args)[0])),
            rt::to_f64_vec(rt::as_array(rt::run_prog(q, args)[0])));
}

TEST(HistFusion, InPlaceDestConsumptionInGapBlocksFusion) {
  // A hist between producer and consumer that mutates one of the producer's
  // inputs in place must block deferring the producer past it.
  ProgBuilder pb("gap-h");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var vs = pb.param("vs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(scalar_map(b, 2.0, 0.0), {vs});
  // Mutates vs (the producer's argument) before the consumer hist runs.
  Var clobber = b.hist(b.add_op(), cf64(0.0), vs, is, ys);
  Var h = b.hist(b.add_op(), cf64(0.0), dest, is, ys);
  (void)clobber;
  Prog p = pb.finish({Atom(clobber), Atom(h)});
  typecheck(p);
  opt::FuseStats stats;
  Prog q = opt::fuse_maps(p, &stats);
  typecheck(q);
  // ys has two consumers anyway; the point is the pass neither crashes nor
  // reorders reads across the in-place hist.
  EXPECT_EQ(stats.fused_hists, 0);
  std::vector<Value> args = {make_f64_array({0, 0}, {2}), make_i64_array({0, 1, 1}, {3}),
                             make_f64_array({1, 2, 3}, {3})};
  auto r1 = rt::run_prog(p, args);
  auto r2 = rt::run_prog(q, args);
  for (size_t k = 0; k < r1.size(); ++k) {
    EXPECT_EQ(rt::to_f64_vec(rt::as_array(r1[k])), rt::to_f64_vec(rt::as_array(r2[k]))) << k;
  }
}

TEST(AccOpt, LeavesNonMatchingProgramsUntouched) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var s = b.reduce1(b.add_op(), cf64(0.0), {xs});
  Prog p = pb.finish({Atom(s)});
  opt::AccOptStats stats;
  Prog q = opt::optimize_accumulators(p, &stats);
  EXPECT_EQ(stats.to_histogram + stats.to_reduction, 0);
  EXPECT_DOUBLE_EQ(rt::as_f64(rt::run_prog(q, {make_f64_array({1, 2}, {2})})[0]), 3.0);
}

TEST(Simplify, CopyPropDoesNotCaptureShadowedAliasTarget) {
  // AD passes re-install forward sweeps re-using variable ids, so the same
  // id can be re-bound (shadowed). An alias x -> a recorded before a
  // re-binding of `a` must not substitute x afterwards — that would capture
  // the new binding. Built by hand: the Builder always freshens ids.
  auto mod = std::make_shared<Module>();
  Var a = mod->fresh("a"), b = mod->fresh("b"), x = mod->fresh("x"), r = mod->fresh("r");
  Function fn;
  fn.name = "cap";
  fn.params = {Param{a, f64()}, Param{b, f64()}};
  fn.rets = {f64()};
  fn.body.stms = {
      stm1(x, f64(), OpAtom{Atom(a)}),                 // alias x -> a
      stm1(a, f64(), OpBin{BinOp::Add, Atom(b), Atom(b)}),  // re-binds id `a`
      stm1(r, f64(), OpBin{BinOp::Add, Atom(x), Atom(a)}),
  };
  fn.body.result = {Atom(r)};
  Prog p{mod, std::move(fn)};
  typecheck(p);
  Prog q = opt::simplify(p);
  typecheck(q);
  std::vector<Value> args = {2.0, 3.0};
  // x must keep the ORIGINAL a: r = 2 + (3+3) = 8, not (3+3)+(3+3) = 12.
  EXPECT_DOUBLE_EQ(rt::as_f64(rt::run_prog(p, args)[0]), 8.0);
  EXPECT_DOUBLE_EQ(rt::as_f64(rt::run_prog(q, args)[0]), 8.0);
}

TEST(Simplify, DceKeepsZeroResultAccEffectStatements) {
  // The vjp adjoint sweeps emit zero-result maps whose lambdas upd_acc free
  // accumulators — observable mutations a binding-based liveness walk never
  // sees. DCE must keep them (and the dead-threaded upd_acc bindings inside
  // their lambdas).
  ProgBuilder pb("f");
  Var d = pb.param("d", arr_f64(1));
  Builder& b = pb.body();
  auto res = b.withacc({d}, [&](Builder& c, const std::vector<Var>& accs) {
    Var is = c.iota(ci64(3));
    c.map(c.lam({i64()},
                [&](Builder& cc, const std::vector<Var>& p) {
                  cc.upd_acc(accs[0], {Atom(p[0])}, cf64(1.0));
                  return std::vector<Atom>{};  // zero results: pure side effect
                }),
          {is});
    return std::vector<Atom>{Atom(accs[0])};
  });
  Prog p = pb.finish({Atom(res[0])});
  typecheck(p);
  Prog q = opt::simplify(p);
  typecheck(q);
  std::vector<Value> args = {make_f64_array({0, 0, 0}, {3})};
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(rt::run_prog(q, args)[0])),
            (std::vector<double>{1, 1, 1}));
}

TEST(AccOpt, MixedWithaccPeelsNothingCleanly) {
  // A withacc mixing a rule-R accumulator with one that does NOT match any
  // rule (two updates) must be left entirely alone — the pass used to emit
  // the half-built peel map before noticing, leaving uses of the withacc's
  // acc params out of scope.
  ProgBuilder pb("f");
  Var d0 = pb.param("d0", arr_f64(1));
  Var d1 = pb.param("d1", arr_f64(1));
  Builder& b = pb.body();
  Type accT = acc_of(arr_f64(1));
  Var is = b.iota(ci64(4));
  auto outs = b.withacc({d0, d1}, [&](Builder& c, const std::vector<Var>& accs) {
    auto mres = c.map(
        c.lam({i64(), accT, accT},
              [&](Builder& cc, const std::vector<Var>& p) {
                Var a0 = cc.upd_acc(p[1], {ci64(0)}, cf64(1.0));   // rule R
                Var a1 = cc.upd_acc(p[2], {Atom(p[0])}, cf64(1.0));
                Var a1b = cc.upd_acc(a1, {Atom(p[0])}, cf64(2.0)); // 2nd update
                return std::vector<Atom>{Atom(a0), Atom(a1b)};
              }),
        {is, accs[0], accs[1]});
    return std::vector<Atom>{Atom(mres[0]), Atom(mres[1])};
  });
  Prog p = pb.finish({Atom(outs[0]), Atom(outs[1])});
  typecheck(p);
  opt::AccOptStats stats;
  Prog q = opt::optimize_accumulators(p, &stats);
  typecheck(q);  // used to fail: out-of-scope acc params in the peel map
  EXPECT_EQ(stats.to_histogram + stats.to_reduction, 0);
  std::vector<Value> args = {make_f64_array({0, 0}, {2}), make_f64_array({0, 0, 0, 0}, {4})};
  auto r0 = rt::run_prog(p, args);
  auto r1 = rt::run_prog(q, args);
  for (size_t k = 0; k < r0.size(); ++k) {
    EXPECT_EQ(rt::to_f64_vec(rt::as_array(r0[k])), rt::to_f64_vec(rt::as_array(r1[k]))) << k;
  }
}

// ------------------------------------------------------------- flattening

// First top-level map statement of the program.
const OpMap* first_map(const Prog& p) {
  for (const auto& st : p.fn.body.stms) {
    if (const auto* m = std::get_if<OpMap>(&st.e)) return m;
  }
  return nullptr;
}

TEST(Flatten, AnnotatesMapOfMap) {
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           return std::vector<Atom>{Atom(c.map1(
                               c.lam({f64()},
                                     [](Builder& cc, const std::vector<Var>& p) {
                                       return std::vector<Atom>{Atom(cc.mul(p[0], p[0]))};
                                     }),
                               {row[0]}))};
                         }),
                   {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  opt::FlattenStats st;
  Prog q = opt::flatten_nested(p, &st);
  typecheck(q);
  EXPECT_EQ(st.flattened_maps, 1);
  ASSERT_NE(first_map(q), nullptr);
  EXPECT_EQ(first_map(q)->flat, FlatForm::Inner);
  // Idempotent: a second run re-derives the same annotation.
  Prog q2 = opt::flatten_nested(q);
  typecheck(q2);
  EXPECT_EQ(first_map(q2)->flat, FlatForm::Inner);
}

TEST(Flatten, AnnotatesMapOfReduce) {
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           return std::vector<Atom>{
                               Atom(c.reduce1(c.max_op(), cf64(-1e300), {row[0]}))};
                         }),
                   {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  opt::FlattenStats st;
  Prog q = opt::flatten_nested(p, &st);
  typecheck(q);
  EXPECT_EQ(st.flattened_redomaps, 1);
  EXPECT_EQ(first_map(q)->flat, FlatForm::SegRed);
}

TEST(Flatten, PipelineFusesThenFlattensMapOfRedomap) {
  // map(λrow. reduce(+, map(h, row))) — fusion must first collapse the
  // lambda body to one redomap statement, after which the flattener (last
  // in the pipeline) annotates the nest @segred.
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(
      b.lam({arr_f64(1)},
            [](Builder& c, const std::vector<Var>& row) {
              Var sq = c.map1(c.lam({f64()},
                                    [](Builder& cc, const std::vector<Var>& p) {
                                      return std::vector<Atom>{Atom(cc.mul(p[0], p[0]))};
                                    }),
                              {row[0]});
              return std::vector<Atom>{Atom(c.reduce1(c.add_op(), cf64(0.0), {sq}))};
            }),
      {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  opt::PipelineStats st;
  Prog q = opt::optimize(p, {}, &st);
  typecheck(q);
  EXPECT_EQ(st.fuse.fused_redomaps, 1);
  EXPECT_EQ(st.flatten.flattened_redomaps, 1);
  ASSERT_NE(first_map(q), nullptr);
  EXPECT_EQ(first_map(q)->flat, FlatForm::SegRed);
  const auto* red = std::get_if<OpReduce>(&first_map(q)->f->body.stms[0].e);
  ASSERT_NE(red, nullptr);
  EXPECT_NE(red->pre, nullptr);  // the redomap form survived into the nest
}

TEST(Flatten, MultiStatementBodyNotAnnotated) {
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           Var s = c.reduce1(c.add_op(), cf64(0.0), {row[0]});
                           return std::vector<Atom>{Atom(c.mul(s, cf64(2.0)))};
                         }),
                   {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  opt::FlattenStats st;
  Prog q = opt::flatten_nested(p, &st);
  EXPECT_EQ(st.flattened_maps + st.flattened_redomaps, 0);
  EXPECT_EQ(first_map(q)->flat, FlatForm::None);
}

TEST(Flatten, InnerOverFreeArrayNotAnnotated) {
  // The inner map runs over a free rank-1 array, not the row param: the
  // nest is irregular (same inner input every row) and must stay general.
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Var ys = pb.param("ys", arr_f64(1));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [&](Builder& c, const std::vector<Var>& row) {
                           (void)row;
                           return std::vector<Atom>{Atom(c.map1(
                               c.lam({f64()},
                                     [](Builder& cc, const std::vector<Var>& p) {
                                       return std::vector<Atom>{Atom(cc.neg(p[0]))};
                                     }),
                               {ys}))};
                         }),
                   {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  opt::FlattenStats st;
  Prog q = opt::flatten_nested(p, &st);
  EXPECT_EQ(st.flattened_maps + st.flattened_redomaps, 0);
  EXPECT_EQ(first_map(q)->flat, FlatForm::None);
}

TEST(Flatten, RowFreeInInnerLambdaNotAnnotated) {
  // g gathers from the row besides its element argument: the collapsed
  // launch has no row binding, so the nest must stay general.
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           Var r0 = row[0];
                           return std::vector<Atom>{Atom(c.map1(
                               c.lam({f64()},
                                     [r0](Builder& cc, const std::vector<Var>& p) {
                                       Var head = cc.index(r0, {ci64(0)});
                                       return std::vector<Atom>{Atom(cc.add(p[0], head))};
                                     }),
                               {r0}))};
                         }),
                   {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  opt::FlattenStats st;
  Prog q = opt::flatten_nested(p, &st);
  EXPECT_EQ(st.flattened_maps + st.flattened_redomaps, 0);
  EXPECT_EQ(first_map(q)->flat, FlatForm::None);
}

TEST(Flatten, ReduceNeutralReadingRowNotAnnotated) {
  // The reduce's neutral element depends on the row: the collapsed launch
  // evaluates neutrals once in the enclosing scope, so this stays general.
  // (With the neutral bound by a preceding statement the multi-statement
  // gate already rejects; this exercises the neutral-atom check directly.)
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           Var ne = c.index(row[0], {ci64(0)});
                           return std::vector<Atom>{
                               Atom(c.reduce1(c.max_op(), Atom(ne), {row[0]}))};
                         }),
                   {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  opt::FlattenStats st;
  Prog q = opt::flatten_nested(p, &st);
  EXPECT_EQ(st.flattened_maps + st.flattened_redomaps, 0);
  EXPECT_EQ(first_map(q)->flat, FlatForm::None);

  // Direct single-statement variant: neutral IS the row param (ill-typed,
  // so no typecheck — the matcher must still refuse on its own).
  OpMap direct = *first_map(q);
  auto* red = std::get_if<OpReduce>(&direct.f->body.stms[0].e);
  (void)red;
  Lambda lam2;
  lam2.params = direct.f->params;
  Var rowv = lam2.params[0].var;
  Var res = pb.module().fresh("r");
  Module& mod = pb.module();
  LambdaPtr maxop = [&] {
    Var a = mod.fresh("a"), bb = mod.fresh("b"), r = mod.fresh("m");
    Lambda l;
    l.params = {Param{a, f64()}, Param{bb, f64()}};
    l.body.stms.push_back(stm1(r, f64(), OpBin{BinOp::Max, Atom(a), Atom(bb)}));
    l.body.result = {Atom(r)};
    l.rets = {f64()};
    return make_lambda(std::move(l));
  }();
  lam2.body.stms.push_back(
      stm1(res, f64(), OpReduce{maxop, {Atom(rowv)}, {rowv}, nullptr, 0}));
  lam2.body.result = {Atom(res)};
  lam2.rets = {f64()};
  OpMap bad{make_lambda(std::move(lam2)), direct.args, 0, FlatForm::None};
  EXPECT_EQ(flatten_form(bad), FlatForm::None);
}

TEST(Flatten, StaleAnnotationRejectedByTypecheck) {
  // Manually corrupting the annotation must be caught loudly, not silently
  // mis-executed or ignored.
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           return std::vector<Atom>{
                               Atom(c.reduce1(c.add_op(), cf64(0.0), {row[0]}))};
                         }),
                   {xss});
  Prog p = pb.finish({Atom(out)});
  typecheck(p);
  for (auto& st : p.fn.body.stms) {
    if (auto* m = std::get_if<OpMap>(&st.e)) m->flat = FlatForm::Inner;  // wrong form
  }
  EXPECT_THROW(typecheck(p), TypeError);
}

} // namespace
