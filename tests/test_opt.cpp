// Optimization pass tests: DCE removes the redundant forward sweeps of
// perfect nests (Fig. 2 property), strip-mining preserves semantics and
// gradients (Fig. 4), accumulator specialization (§6.1) preserves gradients
// while eliminating withacc constructs.

#include <gtest/gtest.h>

#include "core/ad.hpp"
#include "core/gradcheck.hpp"
#include "ir/builder.hpp"
#include "ir/print.hpp"
#include "ir/typecheck.hpp"
#include "ir/visit.hpp"
#include "opt/accopt.hpp"
#include "opt/loopopt.hpp"
#include "opt/simplify.hpp"
#include "runtime/interp.hpp"
#include "support/rng.hpp"

namespace {

using namespace npad;
using namespace npad::ir;
using rt::Value;
using rt::make_f64_array;
using rt::make_i64_array;

// Drops the primal outputs of a vjp program, keeping only the gradients
// (the Fig. 2 setting where the caller does not need the original result).
Prog gradient_only(const Prog& vjp_prog, size_t primal_rets) {
  Prog out = vjp_prog;
  out.fn.body.result.erase(out.fn.body.result.begin(),
                           out.fn.body.result.begin() + static_cast<long>(primal_rets));
  out.fn.rets.erase(out.fn.rets.begin(), out.fn.rets.begin() + static_cast<long>(primal_rets));
  return out;
}

size_t count_maps(const Body& b);
size_t count_maps_exp(const Exp& e) {
  size_t n = std::holds_alternative<OpMap>(e) ? 1 : 0;
  for_each_nested(e, [&](const NestedScope& s) { n += count_maps(*s.body); });
  return n;
}
size_t count_maps(const Body& b) {
  size_t n = 0;
  for (const auto& s : b.stms) n += count_maps_exp(s.e);
  return n;
}

TEST(Simplify, DceDropsDeadStatements) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var used = b.mul(x, x);
  Var dead1 = b.exp(x);
  Var dead2 = b.add(dead1, cf64(1.0));
  (void)dead2;
  Prog p = pb.finish({Atom(used)});
  Prog q = opt::dead_code_elim(p);
  EXPECT_EQ(count_stms(q.fn.body), 1u);
  EXPECT_DOUBLE_EQ(rt::as_f64(rt::run_prog(q, {3.0})[0]), 9.0);
}

TEST(Simplify, ConstantFoldingAndIdentities) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var a = b.add(x, cf64(0.0));     // x
  Var m = b.mul(a, cf64(1.0));     // x
  Var z = b.mul(m, cf64(0.0));     // 0
  Var c = b.add(b.mul(cf64(2.0), cf64(3.0)), z);  // 6
  Var r = b.add(m, c);
  Prog p = pb.finish({Atom(r)});
  Prog q = opt::simplify(p);
  typecheck(q);
  EXPECT_DOUBLE_EQ(rt::as_f64(rt::run_prog(q, {5.0})[0]), 11.0);
  // After folding, only the final add of x and 6 should survive.
  EXPECT_LE(count_stms(q.fn.body), 2u);
}

TEST(Redundancy, PerfectNestHasNoReexecutionAfterDce) {
  // The Fig. 2 program: map (\c as -> if c then as else map (\a -> a*a) as).
  ProgBuilder pb("fig2");
  Var cs = pb.param("cs", arr(ScalarType::Bool, 1));
  Var ass = pb.param("ass", arr_f64(2));
  Builder& b = pb.body();
  Var xss = b.map(b.lam({boolean(), arr_f64(1)},
                        [](Builder& c, const std::vector<Var>& p) {
                          auto r = c.if_(
                              Atom(p[0]),
                              [&](Builder& tb) {
                                return std::vector<Atom>{Atom(tb.copy(p[1]))};
                              },
                              [&](Builder& fb) {
                                Var sq = fb.map1(
                                    fb.lam({f64()},
                                           [](Builder& cc, const std::vector<Var>& q) {
                                             return std::vector<Atom>{
                                                 Atom(cc.mul(q[0], q[0]))};
                                           }),
                                    {p[1]});
                                return std::vector<Atom>{Atom(sq)};
                              });
                          return std::vector<Atom>{Atom(r[0])};
                        }),
                  {cs, ass})[0];
  Prog p = pb.finish({Atom(xss)});
  typecheck(p);
  Prog g = ad::vjp(p);
  typecheck(g);
  Prog gonly = gradient_only(g, 1);
  Prog opt1 = opt::simplify(gonly);
  typecheck(opt1);
  // The differentiated-and-optimized program must not re-execute the
  // forward sweep: the primal output map (and the re-executed inner maps
  // producing dead primal values) are gone. What remains is the single
  // reverse map nest: outer rev-map + inner rev-map + (zeros init maps and
  // elementwise-add maps from adjoint plumbing are value-producing, not
  // re-execution). We assert the statement count shrinks substantially and
  // that no *primal* square map survives by running both and comparing
  // gradients.
  const size_t before = count_stms(g.fn.body);
  const size_t after = count_stms(opt1.fn.body);
  EXPECT_LT(after, before);
  // Check gradients agree between unoptimized and optimized programs.
  std::vector<Value> args = {
      [] {
        rt::ArrayVal a = rt::ArrayVal::alloc(ScalarType::Bool, {2});
        a.set_b8(0, true);
        a.set_b8(1, false);
        return a;
      }(),
      make_f64_array({1, 2, 3, 4, 5, 6}, {2, 3}),
      make_f64_array({1, 1, 1, 1, 1, 1}, {2, 3})};  // seed
  auto r1 = rt::run_prog(g, args);
  auto r2 = rt::run_prog(opt1, args);
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r1.back())), rt::to_f64_vec(rt::as_array(r2.back())));
  // Gradient: row 0 passes through (1s), row 1 is 2*a.
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r2.back())),
            (std::vector<double>{1, 1, 1, 8, 10, 12}));
}

TEST(Stripmine, PreservesSemanticsAndGradients) {
  auto build = [](int factor) {
    ProgBuilder pb("f");
    Var x0 = pb.param("x0", f64());
    Builder& b = pb.body();
    auto outs = b.loop_for(
        {Atom(x0)}, ci64(10),
        [](Builder& c, Var, const std::vector<Var>& ps) {
          Var t = c.mul(ps[0], cf64(1.1));
          return std::vector<Atom>{Atom(c.add(t, Atom(c.mul(ps[0], ps[0]))))};
        },
        factor);
    return pb.finish({Atom(outs[0])});
  };
  Prog plain = build(0);
  Prog annotated = build(4);
  Prog mined = opt::apply_stripmining(annotated);
  typecheck(mined);
  const double x0 = 0.05;
  EXPECT_NEAR(rt::as_f64(rt::run_prog(plain, {x0})[0]),
              rt::as_f64(rt::run_prog(mined, {x0})[0]), 1e-13);
  auto g1 = ad::reverse_gradients(plain, {x0});
  auto g2 = ad::reverse_gradients(mined, {x0});
  EXPECT_NEAR(g1[0][0], g2[0][0], 1e-10);
}

TEST(Stripmine, NonDivisibleCount) {
  auto build = [](int factor) {
    ProgBuilder pb("f");
    Var x0 = pb.param("x0", f64());
    Var n = pb.param("n", i64());
    Builder& b = pb.body();
    auto outs = b.loop_for(
        {Atom(x0)}, Atom(n),
        [](Builder& c, Var i, const std::vector<Var>& ps) {
          Var fi = c.to_f64(Atom(i));
          return std::vector<Atom>{Atom(c.add(ps[0], Atom(c.mul(fi, cf64(0.5)))))};
        },
        factor);
    return pb.finish({Atom(outs[0])});
  };
  Prog mined = opt::apply_stripmining(build(3));
  typecheck(mined);
  for (int64_t n : {0, 1, 5, 7, 9}) {
    EXPECT_NEAR(rt::as_f64(rt::run_prog(build(0), {2.0, n})[0]),
                rt::as_f64(rt::run_prog(mined, {2.0, n})[0]), 1e-13)
        << n;
  }
}

// -------------------------------------------------------------- accopt -----

TEST(AccOpt, HistogramRuleFiresAndPreservesGradient) {
  // f(xs, inds) = sum(hist-like accumulation): the vjp of a gather produces
  // the withacc+upd_acc pattern Rule H rewrites to reduce_by_index.
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({i64()},
                       [&](Builder& c, const std::vector<Var>& p) {
                         Var v = c.index(xs, {Atom(p[0])});
                         return std::vector<Atom>{Atom(c.mul(v, v))};
                       }),
                 {is});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {e});
  Prog p = pb.finish({Atom(s)});
  Prog g = ad::vjp(p);
  typecheck(g);
  opt::AccOptStats stats;
  Prog go = opt::optimize_accumulators(g, &stats);
  typecheck(go);
  EXPECT_GE(stats.to_histogram, 1);
  std::vector<Value> args = {make_f64_array({1, 2, 3}, {3}),
                             make_i64_array({0, 2, 0, 1, 0}, {5}), 1.0};
  auto r1 = rt::run_prog(g, args);
  auto r2 = rt::run_prog(go, args);
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r1.back())), rt::to_f64_vec(rt::as_array(r2.back())));
}

TEST(AccOpt, InvariantRuleFiresAndPreservesGradient) {
  // All iterations accumulate into the same cell -> Rule R (map-reduce).
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var w = pb.param("w", arr_f64(1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({f64()},
                       [&](Builder& c, const std::vector<Var>& p) {
                         Var v = c.index(w, {ci64(0)});
                         return std::vector<Atom>{Atom(c.mul(v, p[0]))};
                       }),
                 {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {e});
  Prog p = pb.finish({Atom(s)});
  Prog g = ad::vjp(p);
  opt::AccOptStats stats;
  Prog go = opt::optimize_accumulators(g, &stats);
  typecheck(go);
  EXPECT_GE(stats.to_reduction, 1);
  std::vector<Value> args = {make_f64_array({1, 2, 3}, {3}), make_f64_array({0.5, 9}, {2}), 1.0};
  auto r1 = rt::run_prog(g, args);
  auto r2 = rt::run_prog(go, args);
  // w adjoint: dw0 = sum(xs) = 6, dw1 = 0.
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r1.back())), (std::vector<double>{6, 0}));
  EXPECT_EQ(rt::to_f64_vec(rt::as_array(r2.back())), (std::vector<double>{6, 0}));
}

TEST(AccOpt, LeavesNonMatchingProgramsUntouched) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var s = b.reduce1(b.add_op(), cf64(0.0), {xs});
  Prog p = pb.finish({Atom(s)});
  opt::AccOptStats stats;
  Prog q = opt::optimize_accumulators(p, &stats);
  EXPECT_EQ(stats.to_histogram + stats.to_reduction, 0);
  EXPECT_DOUBLE_EQ(rt::as_f64(rt::run_prog(q, {make_f64_array({1, 2}, {2})})[0]), 3.0);
}

} // namespace
