// Core AD tests: Fig. 1 reproduction, per-combinator vjp rules vs finite
// differences, jvp-vs-vjp agreement, loop checkpointing, and jvp∘vjp
// composition (Hessians).

#include <gtest/gtest.h>

#include <cmath>

#include "core/ad.hpp"
#include "core/gradcheck.hpp"
#include "ir/builder.hpp"
#include "ir/print.hpp"
#include "ir/typecheck.hpp"
#include "opt/loopopt.hpp"
#include "runtime/interp.hpp"
#include "support/rng.hpp"

namespace {

using namespace npad;
using namespace npad::ir;
using rt::ArrayVal;
using rt::Value;
using rt::make_f64_array;
using rt::make_i64_array;

std::vector<Value> run(const Prog& p, const std::vector<Value>& args) {
  typecheck(p);
  return rt::run_prog(p, args);
}

void expect_gradcheck(const Prog& p, const std::vector<Value>& args, double tol = 1e-4) {
  typecheck(p);
  Prog g = ad::vjp(p);
  typecheck(g);
  auto r = ad::check_gradients(p, args, 1e-6, tol);
  EXPECT_TRUE(r.ok) << "max_abs=" << r.max_abs_err << " max_rel=" << r.max_rel_err;
}

// ------------------------------------------------------------- Figure 1 ----

Prog fig1_prog() {
  // f(x0, x1) = (x1 * sin x0, x0 * x1)
  ProgBuilder pb("P");
  Var x0 = pb.param("x0", f64());
  Var x1 = pb.param("x1", f64());
  Builder& b = pb.body();
  Var t0 = b.sin(x0);
  Var t1 = b.mul(x1, t0);
  Var t2 = b.mul(x0, x1);
  return pb.finish({Atom(t1), Atom(t2)});
}

TEST(Vjp, Figure1ReverseMode) {
  Prog p = fig1_prog();
  Prog g = ad::vjp(p);
  typecheck(g);
  const double x0 = 0.7, x1 = -1.3;
  // Seed (1, 0): gradient of the first output.
  auto r1 = run(g, {x0, x1, 1.0, 0.0});
  ASSERT_EQ(r1.size(), 4u);  // 2 primal results + 2 adjoints
  EXPECT_NEAR(rt::as_f64(r1[0]), x1 * std::sin(x0), 1e-12);
  EXPECT_NEAR(rt::as_f64(r1[2]), x1 * std::cos(x0), 1e-12);
  EXPECT_NEAR(rt::as_f64(r1[3]), std::sin(x0), 1e-12);
  // Seed (0, 1): gradient of the second output.
  auto r2 = run(g, {x0, x1, 0.0, 1.0});
  EXPECT_NEAR(rt::as_f64(r2[2]), x1, 1e-12);
  EXPECT_NEAR(rt::as_f64(r2[3]), x0, 1e-12);
  // Combined seed accumulates both contributions into x1's adjoint.
  auto r3 = run(g, {x0, x1, 1.0, 1.0});
  EXPECT_NEAR(rt::as_f64(r3[3]), std::sin(x0) + x0, 1e-12);
}

TEST(Jvp, Figure1ForwardMode) {
  Prog p = fig1_prog();
  Prog j = ad::jvp(p);
  typecheck(j);
  const double x0 = 0.4, x1 = 2.0;
  auto r = run(j, {x0, x1, 1.0, 0.0});
  ASSERT_EQ(r.size(), 4u);
  EXPECT_NEAR(rt::as_f64(r[2]), x1 * std::cos(x0), 1e-12);
  EXPECT_NEAR(rt::as_f64(r[3]), x1, 1e-12);
}

// -------------------------------------------------------- scalar programs --

TEST(Vjp, ScalarChain) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var y = b.mul(b.exp(b.sin(x)), b.log(b.add(x, cf64(2.0))));
  Prog p = pb.finish({Atom(y)});
  expect_gradcheck(p, {0.8});
}

TEST(Vjp, MinMaxAbsSelect) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Var y = pb.param("y", f64());
  Builder& b = pb.body();
  Var m = b.max(b.abs(x), b.mul(y, y));
  Var c = b.lt(x, y);
  Var s = b.select(c, b.mul(m, cf64(3.0)), m);
  Prog p = pb.finish({Atom(s)});
  expect_gradcheck(p, {1.5, -2.0});
  expect_gradcheck(p, {-3.0, 0.5});
}

TEST(Vjp, PowAndDiv) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Var y = pb.param("y", f64());
  Builder& b = pb.body();
  Var r = b.div(b.pow(x, y), b.add(x, y));
  Prog p = pb.finish({Atom(r)});
  expect_gradcheck(p, {1.7, 2.3});
}

// -------------------------------------------------------------- map rules --

TEST(Vjp, MapSquareSum) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var sq = b.map1(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mul(p[0], p[0]))};
                        }),
                  {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {sq});
  Prog p = pb.finish({Atom(s)});
  Prog g = ad::vjp(p);
  typecheck(g);
  auto grads = ad::reverse_gradients(p, {make_f64_array({1, 2, 3}, {3})});
  EXPECT_EQ(grads[0], (std::vector<double>{2, 4, 6}));
}

TEST(Vjp, MapWithFreeScalar) {
  // f(xs, k) = sum(k * xs_i^2): free scalar adjoint needs a partial-sum
  // reduction across map iterations.
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var k = pb.param("k", f64());
  Builder& b = pb.body();
  Var sq = b.map1(b.lam({f64()},
                        [&](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mul(k, c.mul(p[0], p[0])))};
                        }),
                  {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {sq});
  Prog p = pb.finish({Atom(s)});
  expect_gradcheck(p, {make_f64_array({1, -2, 3}, {3}), 0.5});
}

TEST(Vjp, MapWithFreeArrayGather) {
  // f(xs) = sum over j of xs[is[j]]^2: reads become accumulations (§5.4).
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({i64()},
                       [&](Builder& c, const std::vector<Var>& p) {
                         Var v = c.index(xs, {Atom(p[0])});
                         return std::vector<Atom>{Atom(c.mul(v, v))};
                       }),
                 {is});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {e});
  Prog p = pb.finish({Atom(s)});
  // Repeated indices: adjoints must accumulate atomically.
  expect_gradcheck(p, {make_f64_array({1, 2, 3}, {3}), make_i64_array({0, 2, 0, 1, 0}, {5})});
}

TEST(Vjp, NestedMapMatrixScale) {
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var yss = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           Var r = c.map1(c.lam({f64()},
                                                [](Builder& cc, const std::vector<Var>& p) {
                                                  Var e = cc.exp(p[0]);
                                                  return std::vector<Atom>{
                                                      Atom(cc.mul(e, p[0]))};
                                                }),
                                          {row[0]});
                           return std::vector<Atom>{Atom(r)};
                         }),
                   {xss});
  Var rows = b.map1(b.lam({arr_f64(1)},
                          [&](Builder& c, const std::vector<Var>& row) {
                            return std::vector<Atom>{
                                Atom(c.reduce1(c.add_op(), cf64(0.0), {row[0]}))};
                          }),
                    {yss});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {rows});
  Prog p = pb.finish({Atom(s)});
  expect_gradcheck(p, {make_f64_array({0.1, 0.2, 0.3, 0.4, 0.5, 0.6}, {2, 3})});
}

TEST(Vjp, MatrixMultiplyAdjoint) {
  // The Section 6.1 motivating example: c[i,j] = sum_k a[i,k]*b[k,j].
  const int64_t m = 3, q = 4, n = 2;
  ProgBuilder pb("matmul");
  Var a = pb.param("a", arr_f64(2));
  Var bmat = pb.param("b", arr_f64(2));
  Builder& b = pb.body();
  Var im = b.iota(ci64(m));
  Var c = b.map1(
      b.lam({i64()},
            [&](Builder& c1, const std::vector<Var>& pi) {
              Var in = c1.iota(ci64(n));
              Var row = c1.map1(
                  c1.lam({i64()},
                         [&](Builder& c2, const std::vector<Var>& pj) {
                           Var iq = c2.iota(ci64(q));
                           Var prods = c2.map1(
                               c2.lam({i64()},
                                      [&](Builder& c3, const std::vector<Var>& pk) {
                                        Var av = c3.index(a, {Atom(pi[0]), Atom(pk[0])});
                                        Var bv = c3.index(bmat, {Atom(pk[0]), Atom(pj[0])});
                                        return std::vector<Atom>{Atom(c3.mul(av, bv))};
                                      }),
                               {iq});
                           return std::vector<Atom>{
                               Atom(c2.reduce1(c2.add_op(), cf64(0.0), {prods}))};
                         }),
                  {in});
              return std::vector<Atom>{Atom(row)};
            }),
      {im});
  // Scalar objective: sum of all entries squared.
  Var rows = b.map1(b.lam({arr_f64(1)},
                          [&](Builder& cb, const std::vector<Var>& row) {
                            Var sq = cb.map1(cb.lam({f64()},
                                                    [](Builder& cc, const std::vector<Var>& p) {
                                                      return std::vector<Atom>{
                                                          Atom(cc.mul(p[0], p[0]))};
                                                    }),
                                             {row[0]});
                            return std::vector<Atom>{
                                Atom(cb.reduce1(cb.add_op(), cf64(0.0), {sq}))};
                          }),
                    {c});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {rows});
  Prog p = pb.finish({Atom(s)});
  support::Rng rng(7);
  expect_gradcheck(p, {make_f64_array(rng.normal_vec(m * q), {m, q}),
                       make_f64_array(rng.normal_vec(q * n), {q, n})});
}

// ------------------------------------------------------------ reduce rules --

Prog reduce_prog(BinOp op, double neutral) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var r = b.reduce1(b.binop_lam(op), cf64(neutral), {xs});
  return pb.finish({Atom(r)});
}

TEST(Vjp, ReduceSum) { expect_gradcheck(reduce_prog(BinOp::Add, 0.0), {make_f64_array({1, 2, 3, 4}, {4})}); }

TEST(Vjp, ReduceMulNoZeros) {
  expect_gradcheck(reduce_prog(BinOp::Mul, 1.0), {make_f64_array({1.5, 2.0, -0.5, 3.0}, {4})});
}

TEST(Vjp, ReduceMulOneZero) {
  Prog p = reduce_prog(BinOp::Mul, 1.0);
  auto grads = ad::reverse_gradients(p, {make_f64_array({2.0, 0.0, 3.0}, {3})});
  // Only the zero element has nonzero adjoint = product of nonzeros.
  EXPECT_EQ(grads[0], (std::vector<double>{0, 6, 0}));
}

TEST(Vjp, ReduceMulTwoZeros) {
  Prog p = reduce_prog(BinOp::Mul, 1.0);
  auto grads = ad::reverse_gradients(p, {make_f64_array({2.0, 0.0, 0.0}, {3})});
  EXPECT_EQ(grads[0], (std::vector<double>{0, 0, 0}));
}

TEST(Vjp, ReduceMinMax) {
  Prog pmin = reduce_prog(BinOp::Min, 1e300);
  auto gmin = ad::reverse_gradients(pmin, {make_f64_array({3, 1, 4, 1}, {4})});
  // First minimal element receives the full adjoint.
  EXPECT_EQ(gmin[0], (std::vector<double>{0, 1, 0, 0}));
  Prog pmax = reduce_prog(BinOp::Max, -1e300);
  auto gmax = ad::reverse_gradients(pmax, {make_f64_array({3, 1, 4, 1}, {4})});
  EXPECT_EQ(gmax[0], (std::vector<double>{0, 0, 1, 0}));
}

TEST(Vjp, ReduceGeneralOperator) {
  // Non-recognized associative operator: a ⊙ b = a + b + a*b.
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  LambdaPtr op = b.lam({f64(), f64()}, [](Builder& c, const std::vector<Var>& p) {
    Var s = c.add(p[0], p[1]);
    return std::vector<Atom>{Atom(c.add(s, c.mul(p[0], p[1])))};
  });
  Var r = b.reduce1(std::move(op), cf64(0.0), {xs});
  Prog p = pb.finish({Atom(r)});
  expect_gradcheck(p, {make_f64_array({0.1, 0.3, -0.2, 0.5}, {4})});
}

// -------------------------------------------------------------- scan rules --

TEST(Vjp, ScanSum) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var sc = b.scan1(b.add_op(), cf64(0.0), {xs});
  // Weighted sum of prefix sums so every prefix matters differently.
  Var ws = pb.param("ws", arr_f64(1));
  Var prods = b.map(b.lam({f64(), f64()},
                          [](Builder& c, const std::vector<Var>& p) {
                            return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                          }),
                    {sc, ws})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {prods});
  Prog p = pb.finish({Atom(s)});
  expect_gradcheck(p, {make_f64_array({1, 2, 3, 4}, {4}), make_f64_array({2, -1, 3, 0.5}, {4})});
}

TEST(Vjp, ScanGeneralOperatorMul) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var ws = pb.param("ws", arr_f64(1));
  Builder& b = pb.body();
  Var sc = b.scan1(b.mul_op(), cf64(1.0), {xs});
  Var prods = b.map(b.lam({f64(), f64()},
                          [](Builder& c, const std::vector<Var>& p) {
                            return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                          }),
                    {sc, ws})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {prods});
  Prog p = pb.finish({Atom(s)});
  expect_gradcheck(
      p, {make_f64_array({1.2, 0.8, 1.5, 0.9}, {4}), make_f64_array({1, 2, -1, 0.5}, {4})});
}

// -------------------------------------------------------- hist and scatter --

TEST(Vjp, HistAdd) {
  ProgBuilder pb("f");
  Var dest = pb.param("dest", arr_f64(1));
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Var ws = pb.param("ws", arr_f64(1));
  Builder& b = pb.body();
  Var h = b.hist(b.add_op(), cf64(0.0), dest, inds, vals);
  Var prods = b.map(b.lam({f64(), f64()},
                          [](Builder& c, const std::vector<Var>& p) {
                            return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                          }),
                    {h, ws})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {prods});
  Prog p = pb.finish({Atom(s)});
  expect_gradcheck(p, {make_f64_array({1, 2}, {2}), make_i64_array({0, 1, 0, 5}, {4}),
                       make_f64_array({3, 4, 5, 9}, {4}), make_f64_array({2, -1}, {2})});
}

TEST(Vjp, HistMul) {
  ProgBuilder pb("f");
  Var dest = pb.param("dest", arr_f64(1));
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var h = b.hist(b.mul_op(), cf64(1.0), dest, inds, vals);
  Var s = b.reduce1(b.add_op(), cf64(0.0), {h});
  Prog p = pb.finish({Atom(s)});
  expect_gradcheck(p, {make_f64_array({2, 3}, {2}), make_i64_array({0, 1, 0}, {3}),
                       make_f64_array({1.5, -2.0, 0.5}, {3})});
  // With a zero value in a bin.
  auto g = ad::reverse_gradients(p, {make_f64_array({2, 3}, {2}),
                                     make_i64_array({0, 1, 0}, {3}),
                                     make_f64_array({0.0, -2.0, 0.5}, {3})});
  // Bin 0: 2 * 0 * 0.5 -> only the zero element gets adjoint 2*0.5 = 1.
  EXPECT_NEAR(g[1][0], 1.0, 1e-12);
  EXPECT_NEAR(g[1][2], 0.0, 1e-12);
}

TEST(Vjp, HistMin) {
  ProgBuilder pb("f");
  Var dest = pb.param("dest", arr_f64(1));
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var h = b.hist(b.min_op(), cf64(1e300), dest, inds, vals);
  Var s = b.reduce1(b.add_op(), cf64(0.0), {h});
  Prog p = pb.finish({Atom(s)});
  auto g = ad::reverse_gradients(p, {make_f64_array({10, 0.5}, {2}),
                                     make_i64_array({0, 0, 1}, {3}),
                                     make_f64_array({3.0, 2.0, 4.0}, {3})});
  // Bin 0: min(10, 3, 2) = 2 -> vals[1]; bin 1: min(0.5, 4) = 0.5 -> dest[1].
  EXPECT_EQ(g[1], (std::vector<double>{0, 1, 0}));
  EXPECT_EQ(g[0], (std::vector<double>{0, 1}));
}

TEST(Vjp, Scatter) {
  ProgBuilder pb("f");
  Var dest = pb.param("dest", arr_f64(1));
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Var ws = pb.param("ws", arr_f64(1));
  Builder& b = pb.body();
  Var sc = b.scatter(dest, inds, vals);
  Var prods = b.map(b.lam({f64(), f64()},
                          [](Builder& c, const std::vector<Var>& p) {
                            return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                          }),
                    {sc, ws})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {prods});
  Prog p = pb.finish({Atom(s)});
  expect_gradcheck(p, {make_f64_array({1, 2, 3}, {3}), make_i64_array({2, 0}, {2}),
                       make_f64_array({5, 6}, {2}), make_f64_array({1, -2, 0.5}, {3})});
}

// --------------------------------------------------------------- indexing --

TEST(Vjp, IndexAndUpdate) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var e1 = b.index(xs, {ci64(1)});
  Var xs2 = b.update(xs, {ci64(0)}, Atom(b.mul(e1, e1)));
  Var s = b.reduce1(b.add_op(), cf64(0.0), {xs2});
  Prog p = pb.finish({Atom(s)});
  expect_gradcheck(p, {make_f64_array({1, 3, 5}, {3})});
}

// ------------------------------------------------------------------ loops --

TEST(Vjp, ForLoopScalarRecurrence) {
  // x_{i+1} = x_i * x_i * 0.5 + c
  ProgBuilder pb("f");
  Var x0 = pb.param("x0", f64());
  Var c = pb.param("c", f64());
  Builder& b = pb.body();
  auto outs = b.loop_for({Atom(x0)}, ci64(5), [&](Builder& lb, Var, const std::vector<Var>& ps) {
    Var t = lb.mul(lb.mul(ps[0], ps[0]), cf64(0.5));
    return std::vector<Atom>{Atom(lb.add(t, c))};
  });
  Prog p = pb.finish({Atom(outs[0])});
  expect_gradcheck(p, {0.9, 0.3});
}

TEST(Vjp, ForLoopArrayCheckpointing) {
  // Loop mutates an array in place; per-iteration checkpointing must restore
  // the right values on the return sweep.
  ProgBuilder pb("f");
  Var xs0 = pb.param("xs0", arr_f64(1));
  Builder& b = pb.body();
  Var n = b.length(xs0);
  auto outs =
      b.loop_for({Atom(xs0)}, Atom(b.sub(Atom(n), ci64(1))),
                 [&](Builder& lb, Var i, const std::vector<Var>& ps) {
                   Var prev = lb.index(ps[0], {Atom(i)});
                   Var ip1 = lb.add(Atom(i), ci64(1));
                   Var curv = lb.index(ps[0], {Atom(ip1)});
                   Var nv = lb.add(Atom(curv), Atom(lb.mul(prev, prev)));
                   return std::vector<Atom>{Atom(lb.update(ps[0], {Atom(ip1)}, Atom(nv)))};
                 });
  Var s = b.reduce1(b.add_op(), cf64(0.0), {outs[0]});
  Prog p = pb.finish({Atom(s)});
  expect_gradcheck(p, {make_f64_array({0.5, 0.2, 0.1, 0.4}, {4})});
}

TEST(Vjp, LoopWithFreeArray) {
  // Loop accumulates from a free array; its adjoint threads through the
  // reversed loop.
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var n = b.length(xs);
  auto outs = b.loop_for({cf64(0.0)}, Atom(n),
                         [&](Builder& lb, Var i, const std::vector<Var>& ps) {
                           Var e = lb.index(xs, {Atom(i)});
                           Var t = lb.mul(e, e);
                           return std::vector<Atom>{Atom(lb.add(ps[0], t))};
                         });
  Prog p = pb.finish({Atom(outs[0])});
  auto g = ad::reverse_gradients(p, {make_f64_array({1, 2, 3}, {3})});
  EXPECT_EQ(g[0], (std::vector<double>{2, 4, 6}));
}

TEST(Vjp, NestedLoops) {
  ProgBuilder pb("f");
  Var x0 = pb.param("x0", f64());
  Builder& b = pb.body();
  auto outs = b.loop_for(
      {Atom(x0)}, ci64(3), [&](Builder& lb, Var, const std::vector<Var>& ps) {
        auto inner =
            lb.loop_for({Atom(ps[0])}, ci64(2), [&](Builder& ib, Var, const std::vector<Var>& qs) {
              return std::vector<Atom>{Atom(ib.add(qs[0], Atom(ib.mul(qs[0], cf64(0.1)))))};
            });
        return std::vector<Atom>{Atom(inner[0])};
      });
  Prog p = pb.finish({Atom(outs[0])});
  expect_gradcheck(p, {1.3});
}

TEST(Vjp, WhileLoopViaInspector) {
  ProgBuilder pb("f");
  Var x0 = pb.param("x0", f64());
  Builder& b = pb.body();
  auto outs = b.loop_while(
      {Atom(x0)},
      [](Builder& c, const std::vector<Var>& ps) {
        return std::vector<Atom>{Atom(c.lt(ps[0], cf64(10.0)))};
      },
      [](Builder& c, Var, const std::vector<Var>& ps) {
        return std::vector<Atom>{Atom(c.mul(ps[0], cf64(1.7)))};
      });
  Prog p = pb.finish({Atom(outs[0])});
  typecheck(p);
  Prog bounded = opt::prepare_for_ad(p);
  typecheck(bounded);
  // Same primal semantics.
  EXPECT_NEAR(rt::as_f64(run(bounded, {1.0})[0]), rt::as_f64(run(p, {1.0})[0]), 1e-12);
  // Differentiable: d out/d x0 = 1.7^k.
  auto g = ad::reverse_gradients(bounded, {1.0});
  const double expected = std::pow(1.7, std::ceil(std::log(10.0) / std::log(1.7)));
  EXPECT_NEAR(g[0][0], expected, 1e-9);
}

TEST(Vjp, WhileLoopWithBoundAnnotation) {
  ProgBuilder pb("f");
  Var x0 = pb.param("x0", f64());
  Builder& b = pb.body();
  auto outs = b.loop_while(
      {Atom(x0)},
      [](Builder& c, const std::vector<Var>& ps) {
        return std::vector<Atom>{Atom(c.lt(ps[0], cf64(10.0)))};
      },
      [](Builder& c, Var, const std::vector<Var>& ps) {
        return std::vector<Atom>{Atom(c.mul(ps[0], cf64(1.7)))};
      },
      std::optional<Atom>(ci64(64)));
  Prog p = pb.finish({Atom(outs[0])});
  Prog bounded = opt::prepare_for_ad(p);
  typecheck(bounded);
  EXPECT_NEAR(rt::as_f64(run(bounded, {1.0})[0]), rt::as_f64(run(p, {1.0})[0]), 1e-12);
  auto g = ad::reverse_gradients(bounded, {1.0});
  const double expected = std::pow(1.7, std::ceil(std::log(10.0) / std::log(1.7)));
  EXPECT_NEAR(g[0][0], expected, 1e-9);
}

// ----------------------------------------------------------------- branches --

TEST(Vjp, IfBranches) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Var y = pb.param("y", f64());
  Builder& b = pb.body();
  Var c = b.lt(x, cf64(0.0));
  auto r = b.if_(
      Atom(c),
      [&](Builder& tb) {
        return std::vector<Atom>{Atom(tb.mul(x, y))};
      },
      [&](Builder& fb) {
        return std::vector<Atom>{Atom(fb.add(fb.mul(x, x), y))};
      });
  Prog p = pb.finish({Atom(r[0])});
  expect_gradcheck(p, {-2.0, 3.0});
  expect_gradcheck(p, {2.0, 3.0});
}

// ------------------------------------------------ fwd/rev agreement, Hessian --

TEST(AdCompose, ForwardReverseAgree) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         Var t = c.tanh(p[0]);
                         return std::vector<Atom>{Atom(c.mul(t, p[0]))};
                       }),
                 {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {e});
  Prog p = pb.finish({Atom(s)});
  std::vector<Value> args = {make_f64_array({0.3, -0.8, 1.2}, {3})};
  auto fw = ad::forward_gradients(p, args);
  auto rv = ad::reverse_gradients(p, args);
  auto cmp = ad::compare_gradients(fw, rv, 1e-10);
  EXPECT_TRUE(cmp.ok) << cmp.max_rel_err;
}

TEST(AdCompose, HessianDiagonalViaJvpOfVjp) {
  // f(x) = sum(x_i^3); Hessian diagonal = 6 x_i, computed as jvp(vjp(f)).
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         return std::vector<Atom>{Atom(c.mul(p[0], c.mul(p[0], p[0])))};
                       }),
                 {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {e});
  Prog p = pb.finish({Atom(s)});
  Prog g = ad::vjp(p);  // (xs, seed) -> (f, grad)
  typecheck(g);
  Prog h = ad::jvp(g);  // (xs, seed, xs_tan, seed_tan) -> (f, grad, f_tan, grad_tan)
  typecheck(h);
  ArrayVal x = make_f64_array({1.0, 2.0, -1.5}, {3});
  // Direction e_1: grad_tan = H e_1; diagonal entry = 6 * x_1.
  ArrayVal dir = make_f64_array({0, 1, 0}, {3});
  auto out = rt::run_prog(h, {x, 1.0, dir, 0.0});
  ASSERT_EQ(out.size(), 4u);
  auto hv = rt::to_f64_vec(rt::as_array(out[3]));
  EXPECT_NEAR(hv[0], 0.0, 1e-10);
  EXPECT_NEAR(hv[1], 12.0, 1e-10);
  EXPECT_NEAR(hv[2], 0.0, 1e-10);
}

// ----------------------------------------------------- property-style sweep --

class RandomChainGrad : public ::testing::TestWithParam<int> {};

TEST_P(RandomChainGrad, MatchesFiniteDifferences) {
  // A randomized composite: maps, reduces, scans and scalar chains whose
  // structure is driven by the seed.
  support::Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const int64_t n = 3 + static_cast<int64_t>(rng.uniform_int(5));
  ProgBuilder pb("rand");
  Var xs = pb.param("xs", arr_f64(1));
  Var k = pb.param("k", f64());
  Builder& b = pb.body();
  const int which = static_cast<int>(rng.uniform_int(4));
  Var arrv = xs;
  // Stage 1: an elementwise map with a random unary chain.
  arrv = b.map1(b.lam({f64()},
                      [&](Builder& c, const std::vector<Var>& p) {
                        Var t = p[0];
                        switch (which) {
                          case 0: t = c.tanh(t); break;
                          case 1: t = c.sin(t); break;
                          case 2: t = c.mul(t, c.exp(c.neg(c.mul(t, t)))); break;
                          default: t = c.mul(t, k); break;
                        }
                        return std::vector<Atom>{Atom(t)};
                      }),
                {arrv});
  // Stage 2: scan then weighted reduce.
  Var sc = b.scan1(b.add_op(), cf64(0.0), {arrv});
  Var wgt = b.map(b.lam({f64(), f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                        }),
                  {sc, arrv})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {wgt});
  Prog p = pb.finish({Atom(s)});
  std::vector<Value> args = {make_f64_array(rng.normal_vec(static_cast<size_t>(n)), {n}),
                             rng.uniform(0.5, 2.0)};
  auto r = ad::check_gradients(p, args, 1e-6, 2e-4);
  EXPECT_TRUE(r.ok) << "seed=" << GetParam() << " max_rel=" << r.max_rel_err;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainGrad, ::testing::Range(0, 12));

} // namespace
