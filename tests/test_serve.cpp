// Differential batching suite for the serving layer (src/serve/).
//
// The batcher's contract is that batching is an *execution strategy*, not a
// semantic change: with parallelism off, a batch of K heterogeneous requests
// executed through the stacked outer-map launch must be bit-exact against
// the same K requests run sequentially one-at-a-time on a plain interpreter.
// The suite checks that for every registered program, in both modes, across
// the batch-size edge cases K in {1, N-1, N, 2N+3}, plus mixed
// objective/jacobian batches, the empty-window pass-through path, per-request
// error isolation, and the batch-size/launch counters.
//
// Pattern: construct the batcher paused (start=false) with a single worker,
// submit all K requests, then start() — the worker drains the queue into
// groups of up to max_batch, so the grouping is deterministic and the
// counters can be asserted exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"
#include "serve/batcher.hpp"
#include "serve/http.hpp"
#include "serve/json.hpp"
#include "serve/registry.hpp"
#include "support/error.hpp"

namespace {

using namespace npad;
using namespace npad::serve;
using rt::Value;

// Small workload dimensions so the full program x mode x K sweep stays fast
// (the batching semantics do not depend on the array extents).
SizeMap small_size(const std::string& name) {
  if (name == "gmm") return {{"n", 16}, {"d", 2}, {"k", 3}};
  if (name == "lstm") return {{"bs", 1}, {"n", 2}, {"d", 4}, {"h", 4}};
  if (name == "kmeans") return {{"n", 32}, {"d", 2}, {"k", 4}};
  if (name == "ba") return {{"cams", 2}, {"pts", 8}, {"obs", 8}};
  if (name == "hand") return {{"bones", 3}, {"verts", 8}};
  if (name == "mc_transport") return {{"nuclides", 2}, {"grid", 8}, {"lookups", 16}};
  return {};
}

uint64_t bits_of(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Bit-exact fingerprint of a result set: scalars as raw bits, arrays as
// shape + per-element bits (same idiom as test_fault.cpp).
std::vector<uint64_t> fingerprint(const std::vector<Value>& vals) {
  std::vector<uint64_t> fp;
  for (const auto& v : vals) {
    if (std::holds_alternative<double>(v)) {
      fp.push_back(bits_of(std::get<double>(v)));
    } else if (std::holds_alternative<int64_t>(v)) {
      fp.push_back(static_cast<uint64_t>(std::get<int64_t>(v)));
    } else if (std::holds_alternative<bool>(v)) {
      fp.push_back(std::get<bool>(v) ? 1 : 0);
    } else if (rt::is_array(v)) {
      const rt::ArrayVal& a = rt::as_array(v);
      for (int64_t s : a.shape) fp.push_back(static_cast<uint64_t>(s));
      const int64_t ne = a.elems();
      for (int64_t i = 0; i < ne; ++i) {
        if (a.elem == ir::ScalarType::F64) {
          fp.push_back(bits_of(a.get_f64(i)));
        } else {
          fp.push_back(static_cast<uint64_t>(a.get_i64(i)));
        }
      }
    }
  }
  return fp;
}

BatcherOptions test_opts(int max_batch, int64_t window_us) {
  BatcherOptions o;
  o.max_batch = max_batch;
  o.window_us = window_us;
  o.workers = 1;
  o.stack = true;
  o.start = false;
  o.interp.parallel = false;  // bit-exactness is asserted with parallelism off
  return o;
}

// Runs K same-(program, mode, size) requests with distinct seeds through a
// paused batcher, compares each response bit-exact against a sequential
// interpreter with identical options, and returns the responses.
std::vector<Response> run_differential(const std::string& program, Mode mode, int K,
                                       const BatcherOptions& opts) {
  auto entry = Registry::global().find(program);
  if (entry == nullptr) {
    ADD_FAILURE() << "program not registered: " << program;
    return {};
  }
  const SizeMap size = small_size(program);

  Batcher batcher(opts);
  std::vector<std::future<Response>> futs;
  futs.reserve(static_cast<size_t>(K));
  for (int i = 0; i < K; ++i) {
    Request r;
    r.program = program;
    r.mode = mode;
    r.args = entry->make_args(mode, 1000 + static_cast<uint64_t>(i), size);
    futs.push_back(batcher.submit(std::move(r)));
  }
  batcher.start();

  rt::Interp ref(opts.interp);
  std::vector<Response> resps;
  for (int i = 0; i < K; ++i) {
    Response resp = futs[static_cast<size_t>(i)].get();
    EXPECT_TRUE(resp.ok()) << program << "/" << mode_name(mode) << " req " << i << ": "
                           << resp.error_kind << ": " << resp.error;
    // make_args is deterministic in (mode, seed, size): regenerate the same
    // request arguments for the sequential reference run.
    const auto args = entry->make_args(mode, 1000 + static_cast<uint64_t>(i), size);
    const auto expect = ref.run(entry->prog(mode), args);
    EXPECT_EQ(fingerprint(resp.results), fingerprint(expect))
        << program << "/" << mode_name(mode) << " req " << i
        << ": batched result diverged from the sequential run (K=" << K << ")";
    resps.push_back(std::move(resp));
  }
  return resps;
}

// ------------------------------------------------- the differential sweep --

class ServeDifferential : public ::testing::Test {
protected:
  static void SetUpTestSuite() { register_builtin_programs(); }
};

// Every registered program, both modes, K in {1, N-1, N, 2N+3} with N=4.
TEST_F(ServeDifferential, EveryProgramEveryModeEveryEdgeK) {
  constexpr int N = 4;
  for (const auto& name : Registry::global().names()) {
    for (Mode mode : {Mode::Objective, Mode::Jacobian}) {
      for (int K : {1, N - 1, N, 2 * N + 3}) {
        SCOPED_TRACE(name + "/" + mode_name(mode) + " K=" + std::to_string(K));
        run_differential(name, mode, K, test_opts(N, /*window_us=*/5000));
      }
    }
  }
}

// Batch-size and launch counters, asserted exactly on the deterministic
// paused-submit grouping (single worker drains the queue in FIFO order, so
// K=11 with N=4 must group as 4, 4, 3).
TEST_F(ServeDifferential, CountersSingleRequest) {
  BatcherOptions o = test_opts(4, 5000);
  Batcher b(o);
  auto entry = Registry::global().find("gmm");
  ASSERT_NE(entry, nullptr);
  Request r{"gmm", Mode::Objective, entry->make_args(Mode::Objective, 7, small_size("gmm"))};
  auto fut = b.submit(std::move(r));
  b.start();
  Response resp = fut.get();
  ASSERT_TRUE(resp.ok()) << resp.error;
  EXPECT_EQ(resp.batch_size, 1);
  EXPECT_EQ(b.stats().single_requests.load(), 1u);
  EXPECT_EQ(b.stats().stacked_batches.load(), 0u);
  EXPECT_EQ(b.stats().batches.load(), 1u);
  EXPECT_EQ(b.interp().stats().batched_prog_runs.load(), 0u);
}

TEST_F(ServeDifferential, CountersPartialAndFullAndSpillBatches) {
  struct Case {
    int K;
    std::vector<int> group_sizes;
  };
  for (const Case& c : {Case{3, {3}}, Case{4, {4}}, Case{11, {4, 4, 3}}}) {
    SCOPED_TRACE("K=" + std::to_string(c.K));
    BatcherOptions o = test_opts(4, 5000);
    Batcher b(o);
    auto entry = Registry::global().find("gmm");
    ASSERT_NE(entry, nullptr);
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < c.K; ++i) {
      Request r{"gmm", Mode::Objective,
                entry->make_args(Mode::Objective, static_cast<uint64_t>(i), small_size("gmm"))};
      futs.push_back(b.submit(std::move(r)));
    }
    b.start();
    std::vector<int> batch_sizes;
    for (auto& f : futs) {
      Response resp = f.get();
      ASSERT_TRUE(resp.ok()) << resp.error;
      batch_sizes.push_back(resp.batch_size);
    }
    // FIFO grouping: the first group_sizes[0] responses rode the first batch, etc.
    size_t at = 0;
    for (int gs : c.group_sizes) {
      for (int i = 0; i < gs; ++i, ++at) {
        EXPECT_EQ(batch_sizes[at], gs) << "response " << at;
      }
    }
    const auto& st = b.stats();
    EXPECT_EQ(st.requests.load(), static_cast<uint64_t>(c.K));
    EXPECT_EQ(st.responses_ok.load(), static_cast<uint64_t>(c.K));
    EXPECT_EQ(st.batches.load(), c.group_sizes.size());
    EXPECT_EQ(st.stacked_batches.load(), c.group_sizes.size());
    EXPECT_EQ(st.stacked_requests.load(), static_cast<uint64_t>(c.K));
    EXPECT_EQ(st.single_requests.load(), 0u);
    EXPECT_EQ(st.fallback_requests.load(), 0u);
    EXPECT_EQ(st.max_batch.load(),
              static_cast<uint64_t>(*std::max_element(c.group_sizes.begin(),
                                                      c.group_sizes.end())));
    // One run_batched launch per stacked group.
    EXPECT_EQ(b.interp().stats().batched_prog_runs.load(), c.group_sizes.size());
    EXPECT_EQ(b.interp().stats().batched_prog_requests.load(),
              static_cast<uint64_t>(c.K));
  }
}

// Mixed objective/jacobian submissions group by (program, mode) key: each
// mode forms its own stacked batch and both stay bit-exact.
TEST_F(ServeDifferential, MixedModeBatchesGroupSeparately) {
  BatcherOptions o = test_opts(8, 5000);
  Batcher b(o);
  auto entry = Registry::global().find("gmm");
  ASSERT_NE(entry, nullptr);
  const SizeMap size = small_size("gmm");
  std::vector<std::future<Response>> futs;
  std::vector<Mode> modes;
  for (int i = 0; i < 6; ++i) {
    const Mode m = (i % 2 == 0) ? Mode::Objective : Mode::Jacobian;
    modes.push_back(m);
    Request r{"gmm", m, entry->make_args(m, static_cast<uint64_t>(i), size)};
    futs.push_back(b.submit(std::move(r)));
  }
  b.start();
  rt::Interp ref(o.interp);
  for (size_t i = 0; i < futs.size(); ++i) {
    Response resp = futs[i].get();
    ASSERT_TRUE(resp.ok()) << "req " << i << ": " << resp.error;
    EXPECT_EQ(resp.batch_size, 3) << "req " << i;
    const auto args = entry->make_args(modes[i], static_cast<uint64_t>(i), size);
    EXPECT_EQ(fingerprint(resp.results), fingerprint(ref.run(entry->prog(modes[i]), args)))
        << "req " << i;
  }
  EXPECT_EQ(b.stats().stacked_batches.load(), 2u);
  EXPECT_EQ(b.stats().stacked_requests.load(), 6u);
}

// window_us=0 disables collection: a lone request passes straight through as
// a single execution without waiting for batchmates.
TEST_F(ServeDifferential, EmptyWindowSingleRequestPassThrough) {
  BatcherOptions o = test_opts(16, /*window_us=*/0);
  o.start = true;
  Batcher b(o);
  auto entry = Registry::global().find("kmeans");
  ASSERT_NE(entry, nullptr);
  const SizeMap size = small_size("kmeans");
  for (int i = 0; i < 3; ++i) {
    Response resp = b.execute(
        {"kmeans", Mode::Objective, entry->make_args(Mode::Objective, 50u + i, size)});
    ASSERT_TRUE(resp.ok()) << resp.error;
    EXPECT_EQ(resp.batch_size, 1);
    rt::Interp ref(o.interp);
    const auto args = entry->make_args(Mode::Objective, 50u + i, size);
    EXPECT_EQ(fingerprint(resp.results),
              fingerprint(ref.run(entry->prog(Mode::Objective), args)));
  }
  EXPECT_EQ(b.stats().single_requests.load(), 3u);
  EXPECT_EQ(b.stats().stacked_batches.load(), 0u);
}

// Unknown programs and arity/shape mismatches are rejected at submit with a
// typed error Response (the future still resolves; nothing is enqueued).
TEST_F(ServeDifferential, ValidationRejectsBadRequests) {
  BatcherOptions o = test_opts(4, 0);
  o.start = true;
  Batcher b(o);
  Response r1 = b.execute({"no_such_program", Mode::Objective, {}});
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.error_kind, "TypeError");

  auto entry = Registry::global().find("gmm");
  ASSERT_NE(entry, nullptr);
  auto args = entry->make_args(Mode::Objective, 1, small_size("gmm"));
  args.pop_back();  // wrong arity
  Response r2 = b.execute({"gmm", Mode::Objective, std::move(args)});
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.error_kind, "TypeError");
  EXPECT_EQ(b.stats().rejected.load(), 2u);
}

// ------------------------------------------------------- error isolation --
//
// A custom program whose failure is data-dependent: xs[i] with a per-request
// index argument. One poisoned request in a stacked batch must get the typed
// ShapeError while its batchmates still succeed bit-exact (the batcher falls
// back to per-request execution when the stacked launch fails).

void register_index_probe_once() {
  static const bool done = [] {
    ir::ProgBuilder pb("serve_index_probe");
    ir::Var xs = pb.param("xs", ir::arr_f64(1));
    ir::Var i = pb.param("i", ir::i64());
    ir::Builder& bb = pb.body();
    ir::Var elt = bb.index(xs, {ir::Atom(i)});
    ir::Prog p = pb.finish({ir::Atom(elt)});
    ir::typecheck(p);
    ProgramEntry e;
    e.name = "serve_index_probe";
    e.objective = p;
    e.jacobian = p;  // unused by this suite; any valid program will do
    e.default_size = {{"n", 4}};
    e.make_args = [](Mode, uint64_t seed, const SizeMap&) {
      std::vector<Value> args;
      args.push_back(rt::make_f64_array({0.5, 1.5, 2.5, 3.5}, {4}));
      args.push_back(static_cast<int64_t>(seed % 4));
      return args;
    };
    Registry::global().add(std::move(e));
    return true;
  }();
  (void)done;
}

TEST_F(ServeDifferential, StackedErrorIsolatedToTheFaultyRequest) {
  register_index_probe_once();
  BatcherOptions o = test_opts(4, 5000);
  Batcher b(o);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 4; ++i) {
    Request r;
    r.program = "serve_index_probe";
    r.args.push_back(rt::make_f64_array({0.5, 1.5, 2.5, 3.5}, {4}));
    // Request 2 indexes out of bounds; the others are valid.
    r.args.push_back(static_cast<int64_t>(i == 2 ? 99 : i));
    futs.push_back(b.submit(std::move(r)));
  }
  b.start();
  for (int i = 0; i < 4; ++i) {
    Response resp = futs[static_cast<size_t>(i)].get();
    if (i == 2) {
      EXPECT_FALSE(resp.ok());
      EXPECT_EQ(resp.error_kind, "ShapeError") << resp.error;
      EXPECT_NE(resp.error.find("out of bounds"), std::string::npos) << resp.error;
    } else {
      ASSERT_TRUE(resp.ok()) << "req " << i << ": " << resp.error;
      ASSERT_EQ(resp.results.size(), 1u);
      EXPECT_EQ(std::get<double>(resp.results[0]), 0.5 + i);
    }
  }
  const auto& st = b.stats();
  EXPECT_EQ(st.fallback_requests.load(), 4u);  // whole group re-ran individually
  EXPECT_EQ(st.stacked_batches.load(), 0u);    // the stacked launch did not succeed
  EXPECT_EQ(st.responses_ok.load(), 3u);
  EXPECT_EQ(st.responses_error.load(), 1u);
}

// ------------------------------------------------------- HTTP round-trip --

TEST_F(ServeDifferential, HttpRoundTripMatchesSequentialRun) {
  register_index_probe_once();
  BatcherOptions bo = test_opts(4, 0);
  bo.start = true;
  Batcher b(bo);
  HttpOptions ho;
  ho.port = 0;  // ephemeral
  HttpServer server(b, ho);
  server.start();
  ASSERT_GT(server.port(), 0);

  HttpClient client("127.0.0.1", server.port());
  std::string body;
  EXPECT_EQ(client.get("/healthz", &body), 200);
  EXPECT_NE(body.find("\"ok\":true"), std::string::npos) << body;

  EXPECT_EQ(client.get("/v1/programs", &body), 200);
  EXPECT_NE(body.find("\"gmm\""), std::string::npos) << body;

  // Server-side synthesized args (seed path): the objective value must match
  // a local sequential run on the same deterministic arguments bit-exact
  // (the %.17g encoding round-trips doubles exactly).
  EXPECT_EQ(client.post("/v1/run",
                        "{\"program\":\"gmm\",\"seed\":42,"
                        "\"size\":{\"n\":16,\"d\":2,\"k\":3}}",
                        &body),
            200);
  Json resp = Json::parse(body);
  ASSERT_NE(resp.get("ok"), nullptr) << body;
  EXPECT_TRUE(resp.get("ok")->b) << body;
  ASSERT_NE(resp.get("results"), nullptr) << body;
  ASSERT_EQ(resp.get("results")->arr.size(), 1u);
  auto entry = Registry::global().find("gmm");
  rt::Interp ref(bo.interp);
  const auto args = entry->make_args(Mode::Objective, 42, small_size("gmm"));
  const auto expect = ref.run(entry->prog(Mode::Objective), args);
  EXPECT_EQ(bits_of(resp.get("results")->arr[0].num),
            bits_of(std::get<double>(expect[0])));

  // Inline args round-trip through the JSON value encoding.
  EXPECT_EQ(client.post("/v1/run",
                        "{\"program\":\"serve_index_probe\",\"args\":["
                        "{\"shape\":[4],\"data\":[0.5,1.5,2.5,3.5]},"
                        "{\"elem\":\"i64\",\"value\":3}]}",
                        &body),
            200);
  Json r2 = Json::parse(body);
  ASSERT_NE(r2.get("results"), nullptr) << body;
  EXPECT_EQ(r2.get("results")->arr[0].num, 3.5);

  // Bad requests surface as HTTP 400 with the typed error kind.
  EXPECT_EQ(client.post("/v1/run", "{\"program\":\"no_such\"}", &body), 400);
  EXPECT_NE(body.find("TypeError"), std::string::npos) << body;
  EXPECT_EQ(client.post("/v1/run", "not json", &body), 400);

  EXPECT_EQ(client.get("/v1/stats", &body), 200);
  EXPECT_NE(body.find("serve_requests"), std::string::npos) << body;

  server.stop();
  b.stop();
}

} // namespace
