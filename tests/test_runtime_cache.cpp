// Tests for the runtime hot-path machinery: the process-wide kernel cache
// (structural-hash keying, free-scalar rebinding, nested-map lifetime), the
// privatized-accumulator launches, and the slot-resolved environments
// (shadowing, nested scopes, loop frame reuse).

#include <gtest/gtest.h>

#include <cmath>

#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"
#include "runtime/kernel_cache.hpp"
#include "runtime/resolve.hpp"
#include "support/rng.hpp"

namespace {

using namespace npad;
using namespace npad::ir;
using namespace npad::rt;

// map (\x -> x*c + sin(c) + 7.25) xs — c stays a free scalar of the kernel,
// so one cached kernel must serve launches with different bindings of c.
Prog scaled_map_prog() {
  ProgBuilder pb("scaled_map");
  Var c = pb.param("c", f64());
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(b.lam({f64()},
                        [&](Builder& k, const std::vector<Var>& p) {
                          Var t = k.add(k.mul(p[0], c), k.add(k.sin(c), cf64(7.25)));
                          return std::vector<Atom>{Atom(t)};
                        }),
                  {xs});
  return pb.finish({Atom(ys)});
}

TEST(KernelCache, HitServesDifferentFreeScalarBindings) {
  Prog p = scaled_map_prog();
  typecheck(p);
  ArrayVal xs = make_f64_array({1.0, 2.0, 3.0, 4.0}, {4});

  // Plans pre-bind the kernel pointer at plan-compile time and never consult
  // the cache per launch; disable them to exercise the per-launch hit path.
  InterpOptions opts;
  opts.use_plans = false;
  Interp in(opts);
  auto r1 = in.run(p, {2.0, xs});
  auto r2 = in.run(p, {-3.5, xs});

  for (int64_t i = 0; i < 4; ++i) {
    const double x = 1.0 + static_cast<double>(i);
    EXPECT_DOUBLE_EQ(as_array(r1[0]).get_f64(i), x * 2.0 + std::sin(2.0) + 7.25);
    EXPECT_DOUBLE_EQ(as_array(r2[0]).get_f64(i), x * -3.5 + std::sin(-3.5) + 7.25);
  }
  // Both launches took the kernel path; the second reused the cached kernel.
  EXPECT_EQ(in.stats().kernel_maps.load(), 2u);
  EXPECT_GE(in.stats().kernel_cache_hits.load(), 1u);
}

TEST(KernelCache, StructurallyIdenticalProgsShareResolution) {
  Prog p1 = scaled_map_prog();
  Prog p2 = scaled_map_prog();  // fresh module, same structure
  typecheck(p1);
  typecheck(p2);
  ArrayVal xs = make_f64_array({0.5, 1.5}, {2});

  Interp in;
  auto r1 = in.run(p1, {4.0, xs});
  const size_t progs_before = ProgCache::global().size();
  const size_t kernels_before = KernelCache::global().size();
  auto r2 = in.run(p2, {4.0, xs});
  EXPECT_EQ(ProgCache::global().size(), progs_before);
  EXPECT_EQ(KernelCache::global().size(), kernels_before);
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(as_array(r1[0]).get_f64(i), as_array(r2[0]).get_f64(i));
  }
}

// Regression for the pre-cache lifetime hazard: a nested kernel launch used
// to clear the thread-local vector keeping the outer launch's kernel alive.
// Outer map is general-path (rank-1 rows), inner maps are kernel-compiled.
TEST(KernelCache, NestedMapsKeepKernelsAlive) {
  for (bool use_cache : {true, false}) {
    ProgBuilder pb("nested");
    Var c = pb.param("c", f64());
    Var m = pb.param("m", arr_f64(2));
    Builder& b = pb.body();
    Var rows = b.map1(b.lam({arr_f64(1)},
                            [&](Builder& outer, const std::vector<Var>& rp) {
                              Var sq = outer.map1(
                                  outer.lam({f64()},
                                            [&](Builder& inner, const std::vector<Var>& ip) {
                                              Var t = inner.mul(inner.mul(ip[0], ip[0]), c);
                                              return std::vector<Atom>{Atom(t)};
                                            }),
                                  {rp[0]});
                              Var s = outer.reduce1(outer.add_op(), cf64(0.0), {sq});
                              return std::vector<Atom>{Atom(s)};
                            }),
                      {m});
    Prog p = pb.finish({Atom(rows)});
    typecheck(p);

    ArrayVal mat = make_f64_array({1, 2, 3, 4, 5, 6}, {2, 3});
    InterpOptions opts;
    opts.use_kernel_cache = use_cache;
    auto r = run_prog(p, {2.0, mat}, opts);
    const ArrayVal& out = as_array(r[0]);
    EXPECT_DOUBLE_EQ(out.get_f64(0), (1.0 + 4.0 + 9.0) * 2.0);
    EXPECT_DOUBLE_EQ(out.get_f64(1), (16.0 + 25.0 + 36.0) * 2.0);
  }
}

// f(xs, is) = sum_j xs[is_j]^2; its vjp accumulates 2*xs[i]*seed into the
// xs adjoint through an accumulator — the contended-histogram pattern.
Prog gather_sq_prog() {
  ProgBuilder pb("gather_sq");
  Var xs = pb.param("xs", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({i64()},
                       [&](Builder& c, const std::vector<Var>& p) {
                         Var v = c.index(xs, {Atom(p[0])});
                         return std::vector<Atom>{Atom(c.mul(v, v))};
                       }),
                 {is});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {e});
  return pb.finish({Atom(s)});
}

TEST(PrivatizedAccumulators, MatchAtomicGradientsOnVjpHistogram) {
  Prog p = gather_sq_prog();
  typecheck(p);
  Prog grad = ad::vjp(p);
  typecheck(grad);

  const int64_t n = 100000, m = 64;
  support::Rng rng(7);
  std::vector<Value> args = {make_f64_array(rng.normal_vec(static_cast<size_t>(m)), {m}),
                             make_i64_array(rng.index_vec(static_cast<size_t>(n), m), {n}), 1.0};

  InterpOptions atomic_opts;
  atomic_opts.privatize_accs = false;
  atomic_opts.grain = 512;  // force fan-out on multi-core machines
  InterpOptions priv_opts = atomic_opts;
  priv_opts.privatize_accs = true;
  priv_opts.privatize_min_iters = 1024;

  Interp atomic_in(atomic_opts);
  Interp priv_in(priv_opts);
  auto ra = atomic_in.run(grad, args);
  auto rp = priv_in.run(grad, args);

  ASSERT_EQ(ra.size(), rp.size());
  const ArrayVal& ga = as_array(ra[1]);
  const ArrayVal& gp = as_array(rp[1]);
  ASSERT_EQ(ga.elems(), m);
  ASSERT_EQ(gp.elems(), m);
  for (int64_t i = 0; i < m; ++i) {
    EXPECT_NEAR(ga.get_f64(i), gp.get_f64(i), 1e-12 * std::max(1.0, std::fabs(ga.get_f64(i))));
  }
  EXPECT_GT(priv_in.stats().privatized_updates.load(), 0u);
  EXPECT_GT(atomic_in.stats().atomic_updates.load(), 0u);
  EXPECT_EQ(atomic_in.stats().privatized_updates.load(), 0u);
}

// Zero-extent maps must still thread accumulators through (regression: the
// n==0 branch used to drop acc results, crashing the enclosing withacc).
TEST(PrivatizedAccumulators, EmptyMapThreadsAccumulatorThrough) {
  Prog p = gather_sq_prog();
  typecheck(p);
  Prog grad = ad::vjp(p);
  std::vector<Value> args = {make_f64_array({1.0, 2.0, 3.0}, {3}), make_i64_array({}, {0}), 1.0};
  auto r = run_prog(grad, args);
  const ArrayVal& g = as_array(r[1]);
  ASSERT_EQ(g.elems(), 3);
  for (int64_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(g.get_f64(i), 0.0);
}

// ------------------------------------------------------ slot environments ---

// Shadowing in a straight-line body: a re-bound id must shadow for later
// uses while earlier uses keep the outer value.
TEST(SlotEnv, ShadowingInStraightLineBody) {
  auto mod = std::make_shared<Module>();
  Var x = mod->fresh("x");
  Var a = mod->fresh("a");
  Var r = mod->fresh("r");
  Function fn;
  fn.name = "shadow";
  fn.params = {Param{x, f64()}};
  fn.rets = {f64()};
  Body b;
  b.stms.push_back(stm1(a, f64(), OpBin{BinOp::Add, Atom(x), cf64(1.0)}));   // a = x + 1
  b.stms.push_back(stm1(x, f64(), OpBin{BinOp::Mul, Atom(a), cf64(10.0)}));  // x = a * 10
  b.stms.push_back(stm1(r, f64(), OpBin{BinOp::Add, Atom(x), Atom(a)}));     // r = x + a
  b.result = {Atom(r)};
  fn.body = std::move(b);
  Prog p{mod, std::move(fn)};

  auto out = run_prog(p, {2.0});
  EXPECT_DOUBLE_EQ(as_f64(out[0]), 33.0);  // a=3, x'=30, r=33
}

// A lambda that re-binds an enclosing id: the inner binding must be visible
// only inside the lambda, exactly as the old hash-map Env chain behaved.
TEST(SlotEnv, LambdaRebindingDoesNotLeak) {
  auto mod = std::make_shared<Module>();
  Var x = mod->fresh("x");
  Var xs = mod->fresh("xs");
  Var y = mod->fresh("y");
  Var e = mod->fresh("e");
  Var z = mod->fresh("z");
  Var w = mod->fresh("w");

  Function fn;
  fn.name = "leak";
  fn.params = {Param{x, f64()}, Param{xs, arr_f64(1)}};
  fn.rets = {arr_f64(1), f64()};

  Lambda lam;
  lam.params = {Param{e, f64()}};
  lam.rets = {f64()};
  Body lb;
  // Re-binds the *outer* y inside the lambda.
  lb.stms.push_back(stm1(y, f64(), OpBin{BinOp::Add, Atom(e), cf64(100.0)}));
  lb.result = {Atom(y)};
  lam.body = std::move(lb);

  Body b;
  b.stms.push_back(stm1(y, f64(), OpBin{BinOp::Mul, Atom(x), cf64(2.0)}));  // y = 2x
  b.stms.push_back(stm1(z, arr_f64(1), OpMap{make_lambda(std::move(lam)), {xs}}));
  b.stms.push_back(stm1(w, f64(), OpBin{BinOp::Add, Atom(y), cf64(0.0)}));  // outer y survives
  b.result = {Atom(z), Atom(w)};
  fn.body = std::move(b);
  Prog p{mod, std::move(fn)};

  ArrayVal arr = make_f64_array({1.0, 2.0, 3.0}, {3});
  auto out = run_prog(p, {2.0, arr});
  const ArrayVal& z_out = as_array(out[0]);
  EXPECT_DOUBLE_EQ(z_out.get_f64(0), 101.0);
  EXPECT_DOUBLE_EQ(z_out.get_f64(1), 102.0);
  EXPECT_DOUBLE_EQ(z_out.get_f64(2), 103.0);
  EXPECT_DOUBLE_EQ(as_f64(out[1]), 4.0);
}

TEST(SlotEnv, LoopFrameReuseForAndWhile) {
  // for-loop: sum of squares 0..9 through a loop-carried param.
  {
    ProgBuilder pb("sumsq");
    Var n = pb.param("n", i64());
    Builder& b = pb.body();
    auto outs = b.loop_for({cf64(0.0)}, Atom(n), [&](Builder& c, Var i, const std::vector<Var>& ps) {
      Var fi = c.to_f64(i);
      Var acc = c.add(ps[0], c.mul(fi, fi));
      return std::vector<Atom>{Atom(acc)};
    });
    Prog p = pb.finish({Atom(outs[0])});
    typecheck(p);
    auto out = run_prog(p, {int64_t{10}});
    EXPECT_DOUBLE_EQ(as_f64(out[0]), 285.0);
  }
  // while-loop: double until >= 1000.
  {
    ProgBuilder pb("dbl");
    Var x0 = pb.param("x0", f64());
    Builder& b = pb.body();
    auto outs = b.loop_while(
        {Atom(x0)},
        [&](Builder& c, const std::vector<Var>& ps) {
          return std::vector<Atom>{Atom(c.lt(ps[0], cf64(1000.0)))};
        },
        [&](Builder& c, Var, const std::vector<Var>& ps) {
          return std::vector<Atom>{Atom(c.mul(ps[0], cf64(2.0)))};
        });
    Prog p = pb.finish({Atom(outs[0])});
    typecheck(p);
    auto out = run_prog(p, {3.0});
    EXPECT_DOUBLE_EQ(as_f64(out[0]), 1536.0);
  }
}

// Branch-local bindings live in the enclosing frame; both branches must
// compute correctly and the general map path must agree with kernels off.
TEST(SlotEnv, IfBranchBindingsShareEnclosingFrame) {
  ProgBuilder pb("branches");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var c = b.lt(x, cf64(0.0));
  Var r = b.if1(
      c,
      [&](Builder& t) {
        Var u = t.mul(x, cf64(-3.0));
        Var v = t.add(u, cf64(1.0));
        return std::vector<Atom>{Atom(v)};
      },
      [&](Builder& e) {
        Var u = e.mul(x, cf64(5.0));
        Var v = e.sub(u, cf64(2.0));
        return std::vector<Atom>{Atom(v)};
      });
  Prog p = pb.finish({Atom(r)});
  typecheck(p);
  EXPECT_DOUBLE_EQ(as_f64(run_prog(p, {-2.0})[0]), 7.0);
  EXPECT_DOUBLE_EQ(as_f64(run_prog(p, {2.0})[0]), 8.0);
}

} // namespace
