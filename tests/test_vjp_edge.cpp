// Additional reverse-mode edge cases: structural array ops (reverse,
// transpose, replicate of rows, copy), prefix-index updates, the §6.2
// checkpoint-at-entry annotation, maps nested in loops, loops nested in
// maps, and agreement between the specialized and general reduce rules.

#include <gtest/gtest.h>

#include "core/ad.hpp"
#include "core/gradcheck.hpp"
#include "opt/pipeline.hpp"
#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "ir/visit.hpp"
#include "runtime/interp.hpp"
#include "support/rng.hpp"

namespace {

using namespace npad;
using namespace npad::ir;
using rt::Value;
using rt::make_f64_array;
using rt::make_i64_array;

void expect_gradcheck(const Prog& p, const std::vector<Value>& args, double tol = 2e-4) {
  typecheck(p);
  Prog g = ad::vjp(p);
  typecheck(g);
  auto r = ad::check_gradients(p, args, 1e-6, tol);
  EXPECT_TRUE(r.ok) << "max_rel=" << r.max_rel_err;
}

TEST(VjpEdge, ReverseTransposeChain) {
  ProgBuilder pb("f");
  Var m = pb.param("m", arr_f64(2));
  Var w = pb.param("w", arr_f64(2));
  Builder& b = pb.body();
  Var t = b.transpose(m);
  Var rows = b.map(b.lam({arr_f64(1), arr_f64(1)},
                         [&](Builder& c, const std::vector<Var>& p) {
                           Var prods = c.map(c.lam({f64(), f64()},
                                                   [](Builder& cc, const std::vector<Var>& q) {
                                                     return std::vector<Atom>{
                                                         Atom(cc.mul(q[0], q[1]))};
                                                   }),
                                             {p[0], p[1]})[0];
                           return std::vector<Atom>{
                               Atom(c.reduce1(c.add_op(), cf64(0.0), {prods}))};
                         }),
                   {t, w})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {rows});
  Prog p = pb.finish({Atom(s)});
  support::Rng rng(1);
  expect_gradcheck(p, {make_f64_array(rng.normal_vec(6), {2, 3}),
                       make_f64_array(rng.normal_vec(6), {3, 2})});
}

TEST(VjpEdge, ReverseArrayAdjoint) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var ws = pb.param("ws", arr_f64(1));
  Builder& b = pb.body();
  Var r = b.reverse(xs);
  Var prods = b.map(b.lam({f64(), f64()},
                          [](Builder& c, const std::vector<Var>& q) {
                            return std::vector<Atom>{Atom(c.mul(q[0], q[1]))};
                          }),
                    {r, ws})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {prods});
  Prog p = pb.finish({Atom(s)});
  auto g = ad::reverse_gradients(p, {make_f64_array({1, 2, 3}, {3}),
                                     make_f64_array({10, 20, 30}, {3})});
  EXPECT_EQ(g[0], (std::vector<double>{30, 20, 10}));
}

TEST(VjpEdge, ReplicateRowAdjointSumsOverCopies) {
  ProgBuilder pb("f");
  Var row = pb.param("row", arr_f64(1));
  Builder& b = pb.body();
  Var tiled = b.replicate(ci64(4), Atom(row));  // [4][n]
  Var rows = b.map(b.lam({arr_f64(1)},
                         [&](Builder& c, const std::vector<Var>& p) {
                           Var sq = c.map1(c.lam({f64()},
                                                 [](Builder& cc, const std::vector<Var>& q) {
                                                   return std::vector<Atom>{
                                                       Atom(cc.mul(q[0], q[0]))};
                                                 }),
                                           {p[0]});
                           return std::vector<Atom>{
                               Atom(c.reduce1(c.add_op(), cf64(0.0), {sq}))};
                         }),
                   {tiled})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {rows});
  Prog p = pb.finish({Atom(s)});
  auto g = ad::reverse_gradients(p, {make_f64_array({1, 2}, {2})});
  EXPECT_EQ(g[0], (std::vector<double>{8, 16}));  // 4 * 2x
}

TEST(VjpEdge, PrefixUpdateRowAdjoint) {
  // Writing a whole row into a matrix; gradients must flow to the row and
  // around the overwritten region.
  ProgBuilder pb("f");
  Var m = pb.param("m", arr_f64(2));
  Var row = pb.param("row", arr_f64(1));
  Builder& b = pb.body();
  Var m2 = b.update(m, {ci64(1)}, Atom(row));
  Var rows = b.map(b.lam({arr_f64(1)},
                         [&](Builder& c, const std::vector<Var>& p) {
                           Var sq = c.map1(c.lam({f64()},
                                                 [](Builder& cc, const std::vector<Var>& q) {
                                                   return std::vector<Atom>{
                                                       Atom(cc.mul(q[0], q[0]))};
                                                 }),
                                           {p[0]});
                           return std::vector<Atom>{
                               Atom(c.reduce1(c.add_op(), cf64(0.0), {sq}))};
                         }),
                   {m2})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {rows});
  Prog p = pb.finish({Atom(s)});
  auto g = ad::reverse_gradients(
      p, {make_f64_array({1, 2, 3, 4, 5, 6}, {3, 2}), make_f64_array({7, 8}, {2})});
  // Row 1 is overwritten: its adjoint is zero; the written row gets 2*row.
  EXPECT_EQ(g[0], (std::vector<double>{2, 4, 0, 0, 10, 12}));
  EXPECT_EQ(g[1], (std::vector<double>{14, 16}));
}

TEST(VjpEdge, CheckpointEntryAnnotationMatchesDefault) {
  // A no-false-dependency loop (each cell written once, reads only earlier
  // cells): the §6.2 annotation must produce the same gradient as full
  // per-iteration checkpointing.
  auto build = [](bool entry) {
    ProgBuilder pb("f");
    Var xs0 = pb.param("xs0", arr_f64(1));
    Builder& b = pb.body();
    Var n = b.length(xs0);
    auto outs = b.loop_for(
        {Atom(xs0)}, Atom(b.sub(Atom(n), ci64(1))),
        [&](Builder& lb, Var i, const std::vector<Var>& ps) {
          Var prev = lb.index(ps[0], {Atom(i)});
          Var ip1 = lb.add(Atom(i), ci64(1));
          Var cur = lb.index(ps[0], {Atom(ip1)});
          Var nv = lb.add(Atom(cur), Atom(lb.mul(prev, cf64(0.5))));
          return std::vector<Atom>{Atom(lb.update(ps[0], {Atom(ip1)}, Atom(nv)))};
        },
        /*stripmine=*/0, /*checkpoint_entry=*/entry);
    Var s = b.reduce1(b.add_op(), cf64(0.0), {outs[0]});
    return pb.finish({Atom(s)});
  };
  std::vector<Value> args = {make_f64_array({0.5, 0.25, 0.75, 0.1}, {4})};
  auto g_full = ad::reverse_gradients(build(false), args);
  auto g_entry = ad::reverse_gradients(build(true), args);
  ASSERT_EQ(g_full[0].size(), g_entry[0].size());
  for (size_t i = 0; i < g_full[0].size(); ++i) {
    EXPECT_NEAR(g_full[0][i], g_entry[0][i], 1e-12) << i;
  }
  auto r = ad::check_gradients(build(true), args, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

TEST(VjpEdge, MapInsideLoop) {
  // Sequential loop whose body maps over an array carried through the loop.
  ProgBuilder pb("f");
  Var xs0 = pb.param("xs0", arr_f64(1));
  Builder& b = pb.body();
  auto outs = b.loop_for({Atom(xs0)}, ci64(3),
                         [&](Builder& lb, Var, const std::vector<Var>& ps) {
                           Var nxt = lb.map1(
                               lb.lam({f64()},
                                      [](Builder& c, const std::vector<Var>& p) {
                                        Var t = c.tanh(p[0]);
                                        return std::vector<Atom>{
                                            Atom(c.add(t, Atom(c.mul(p[0], cf64(0.1)))))};
                                      }),
                               {ps[0]});
                           return std::vector<Atom>{Atom(nxt)};
                         });
  Var sq = b.map1(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mul(p[0], p[0]))};
                        }),
                  {outs[0]});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {sq});
  Prog p = pb.finish({Atom(s)});
  support::Rng rng(3);
  expect_gradcheck(p, {make_f64_array(rng.normal_vec(5), {5})});
}

TEST(VjpEdge, LoopInsideMap) {
  // Parallel map whose lambda runs a sequential recurrence — the nested
  // sequential-in-parallel shape (checkpointing inside a reverse map).
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({f64()},
                         [](Builder& c, const std::vector<Var>& p) {
                           auto acc = c.loop_for(
                               {Atom(p[0])}, ci64(4),
                               [](Builder& lb, Var, const std::vector<Var>& ps) {
                                 Var t = lb.mul(ps[0], ps[0]);
                                 return std::vector<Atom>{
                                     Atom(lb.add(Atom(lb.mul(t, cf64(0.3))), cf64(0.2)))};
                               });
                           return std::vector<Atom>{Atom(acc[0])};
                         }),
                   {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {out});
  Prog p = pb.finish({Atom(s)});
  support::Rng rng(4);
  expect_gradcheck(p, {make_f64_array(rng.normal_vec(6), {6})});
}

// Property sweep: the specialized reduce rules must agree with the general
// rule. We phrase the same objective with a recognized operator (special
// path) and with an eta-expanded equivalent the recognizer rejects (general
// path), and compare gradients.
class ReduceRuleAgree : public ::testing::TestWithParam<int> {};

TEST_P(ReduceRuleAgree, SpecialVsGeneral) {
  support::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  const int64_t n = 4 + rng.uniform_int(6);
  std::vector<double> data = rng.uniform_vec(static_cast<size_t>(n), 0.2, 1.5);
  auto build = [&](bool obfuscate) {
    ProgBuilder pb("f");
    Var xs = pb.param("xs", arr_f64(1));
    Builder& b = pb.body();
    LambdaPtr op;
    if (obfuscate) {
      // a*b written as a statement chain the pattern recognizer rejects.
      op = b.lam({f64(), f64()}, [](Builder& c, const std::vector<Var>& p) {
        Var t = c.mul(p[0], p[1]);
        return std::vector<Atom>{Atom(c.add(t, cf64(0.0)))};
      });
    } else {
      op = b.mul_op();
    }
    Var r = b.reduce1(std::move(op), cf64(1.0), {xs});
    return pb.finish({Atom(r)});
  };
  auto g1 = ad::reverse_gradients(build(false), {make_f64_array(data, {n})});
  auto g2 = ad::reverse_gradients(build(true), {make_f64_array(data, {n})});
  ASSERT_EQ(g1[0].size(), g2[0].size());
  for (size_t i = 0; i < g1[0].size(); ++i) {
    EXPECT_NEAR(g1[0][i], g2[0][i], 1e-10) << "seed=" << GetParam() << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReduceRuleAgree, ::testing::Range(0, 8));

// ------------------------------------------------- fused-pipeline grads ----
// Differentiated programs pushed through the full optimization pipeline
// (simplify → accopt → map fusion) must keep their gradients: the fused vjp
// program is checked against central finite differences of the primal.

void expect_fused_gradcheck(const Prog& p, const std::vector<Value>& args,
                            double tol = 2e-4) {
  typecheck(p);
  Prog g = ad::vjp(p);
  opt::PipelineStats stats;
  Prog gf = opt::optimize(g, {.fuse_maps = true}, &stats);
  typecheck(gf);
  // Run the fused reverse program: args + seed 1.0 for the scalar result.
  std::vector<Value> gargs = args;
  gargs.emplace_back(1.0);
  auto res = rt::run_prog(gf, gargs);
  auto num = ad::numeric_gradients(p, args);
  // Gradients are the trailing results, one per differentiable parameter.
  size_t gi = res.size() - num.size();
  for (size_t k = 0; k < num.size(); ++k, ++gi) {
    std::vector<double> got = rt::is_array(res[gi])
                                  ? rt::to_f64_vec(rt::as_array(res[gi]))
                                  : std::vector<double>{rt::as_f64(res[gi])};
    ASSERT_EQ(got.size(), num[k].size());
    for (size_t i = 0; i < got.size(); ++i) {
      const double denom = std::max(1.0, std::abs(num[k][i]));
      EXPECT_NEAR(got[i] / denom, num[k][i] / denom, tol) << "param " << k << " elt " << i;
    }
  }
}

TEST(FusedPipeline, ElementwiseChainGradients) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var a = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         return std::vector<Atom>{Atom(c.tanh(p[0]))};
                       }),
                 {xs});
  Var c2 = b.map1(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          Var t = c.mul(p[0], cf64(1.7));
                          return std::vector<Atom>{Atom(c.add(t, cf64(0.3)))};
                        }),
                  {a});
  Var d = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         return std::vector<Atom>{Atom(c.mul(p[0], p[0]))};
                       }),
                 {c2});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {d});
  Prog p = pb.finish({Atom(s)});
  support::Rng rng(21);
  expect_fused_gradcheck(p, {make_f64_array(rng.uniform_vec(9, -1.0, 1.0), {9})});
}

TEST(FusedPipeline, TwoInputChainGradients) {
  // Chain where the fused consumer keeps a second element input.
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var ws = pb.param("ws", arr_f64(1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         return std::vector<Atom>{Atom(c.exp(Atom(c.mul(p[0], cf64(0.5)))))};
                       }),
                 {xs});
  Var prods = b.map(b.lam({f64(), f64()},
                          [](Builder& c, const std::vector<Var>& p) {
                            return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                          }),
                    {e, ws})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {prods});
  Prog p = pb.finish({Atom(s)});
  support::Rng rng(22);
  expect_fused_gradcheck(p, {make_f64_array(rng.uniform_vec(7, -1.0, 1.0), {7}),
                             make_f64_array(rng.uniform_vec(7, -1.0, 1.0), {7})});
}

TEST(FusedPipeline, FusedVjpMatchesUnfusedExactly) {
  // The fused and unfused reverse programs compute the same sums in the same
  // per-element order, so gradients should agree to the last ulp per element.
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var a = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         return std::vector<Atom>{Atom(c.sin(p[0]))};
                       }),
                 {xs});
  Var c2 = b.map1(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mul(p[0], cf64(2.0)))};
                        }),
                  {a});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {c2});
  Prog p = pb.finish({Atom(s)});
  Prog g = ad::vjp(p);
  opt::PipelineStats stats;
  Prog gf = opt::optimize(g, {.fuse_maps = true}, &stats);
  Prog gu = opt::optimize(g, {.fuse_maps = false});
  support::Rng rng(23);
  std::vector<Value> gargs = {make_f64_array(rng.uniform_vec(33, -2.0, 2.0), {33}), 1.0};
  auto rf = rt::to_f64_vec(rt::as_array(rt::run_prog(gf, gargs).back()));
  auto ru = rt::to_f64_vec(rt::as_array(rt::run_prog(gu, gargs).back()));
  EXPECT_GE(stats.fuse.fused_maps, 1);
  ASSERT_EQ(rf.size(), ru.size());
  for (size_t i = 0; i < rf.size(); ++i) EXPECT_NEAR(rf[i], ru[i], 1e-13) << i;
}

// ---------------------------------------------- fused redomap adjoints ----
// The pipeline now folds producer maps into reduce/scan consumers (redomap).
// Differentiated programs whose adjoints contract gradients through
// reductions must gradcheck after that rewrite, and the rewrite must
// actually fire.

TEST(FusedRedomap, WeightedSumGradients) {
  // s = sum(exp(x/2) * w): the primal fuses into one redomap; the vjp
  // emits adjoint map chains that fuse among themselves.
  ProgBuilder pb("wsum");
  Var xs = pb.param("xs", arr_f64(1));
  Var ws = pb.param("ws", arr_f64(1));
  Builder& b = pb.body();
  Var e = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         return std::vector<Atom>{Atom(c.exp(Atom(c.mul(p[0], cf64(0.5)))))};
                       }),
                 {xs});
  Var prods = b.map(b.lam({f64(), f64()},
                          [](Builder& c, const std::vector<Var>& p) {
                            return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                          }),
                    {e, ws})[0];
  Var s = b.reduce1(b.add_op(), cf64(0.0), {prods});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  Prog g = ad::vjp(p);
  opt::PipelineStats stats;
  Prog gf = opt::optimize(g, {}, &stats);
  typecheck(gf);
  // The re-emitted primal sum inside the vjp program fuses into a redomap.
  EXPECT_GE(stats.fuse.fused_redomaps, 1);
  support::Rng rng(31);
  expect_fused_gradcheck(p, {make_f64_array(rng.uniform_vec(11, -1.0, 1.0), {11}),
                             make_f64_array(rng.uniform_vec(11, -1.0, 1.0), {11})});
}

TEST(FusedRedomap, SumOfSquaresGradients) {
  // The issue's canonical shape: reduce(+, map(\x -> x*x, xs)).
  ProgBuilder pb("ssq");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var sq = b.map1(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mul(p[0], p[0]))};
                        }),
                  {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {sq});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  support::Rng rng(32);
  expect_fused_gradcheck(p, {make_f64_array(rng.uniform_vec(17, -2.0, 2.0), {17})});
}

TEST(FusedRedomap, FusedVjpKernelMatchesGeneralPath) {
  // The optimized vjp program executed on the kernel runtime (W=8) must
  // agree with the same program on the general interpreter: fused redomap
  // adjoints take the compiled path end to end.
  ProgBuilder pb("vk");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var t = b.map1(b.lam({f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         Var u = c.tanh(p[0]);
                         return std::vector<Atom>{Atom(c.mul(u, cf64(1.25)))};
                       }),
                 {xs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {t});
  Prog p = pb.finish({Atom(s)});
  Prog gf = opt::optimize(ad::vjp(p), {});
  typecheck(gf);
  support::Rng rng(33);
  std::vector<Value> gargs = {make_f64_array(rng.uniform_vec(41, -1.5, 1.5), {41}), 1.0};
  rt::Interp fast({.parallel = false, .use_kernels = true, .kernel_lanes = 8});
  rt::Interp slow({.parallel = false, .use_kernels = false});
  auto rf = fast.run(gf, gargs);
  auto rs = slow.run(gf, gargs);
  EXPECT_GE(fast.stats().kernel_reduces.load() + fast.stats().fused_reduces.load(), 1u);
  auto vf = rt::to_f64_vec(rt::as_array(rf.back()));
  auto vs = rt::to_f64_vec(rt::as_array(rs.back()));
  ASSERT_EQ(vf.size(), vs.size());
  for (size_t i = 0; i < vf.size(); ++i) EXPECT_NEAR(vf[i], vs[i], 1e-12) << i;
  EXPECT_NEAR(rt::as_f64(rf[0]), rt::as_f64(rs[0]), 1e-10);
}

// ------------------------------------------------- fused hist adjoints ----
// The pipeline now folds producer maps into hist consumers (histomap).
// Differentiated programs whose primal or adjoint scatters through
// reduce_by_index must gradcheck after that rewrite, and the rewrite must
// actually fire.

TEST(FusedHist, AddHistGradients) {
  // hist(+, dest, is, map(f, vals)) then sum: the producer map folds into
  // the re-emitted primal hist inside the vjp program.
  ProgBuilder pb("fh");
  Var dest = pb.param("dest", arr_f64(1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var n = b.length(vals);
  Var iot = b.iota(Atom(n));
  Var is = b.map1(b.lam({i64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mod(p[0], ci64(5)))};
                        }),
                  {iot});
  Var vs2 = b.map1(b.lam({f64()},
                         [](Builder& c, const std::vector<Var>& p) {
                           Var sq = c.mul(p[0], p[0]);
                           Var h = c.mul(sq, cf64(0.5));
                           return std::vector<Atom>{Atom(c.add(h, Atom(c.mul(p[0], cf64(0.25)))))};
                         }),
                   {vals});
  Var h = b.hist(b.add_op(), cf64(0.0), dest, is, vs2);
  Var s = b.reduce1(b.add_op(), cf64(0.0), {h});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  Prog g = ad::vjp(p);
  opt::PipelineStats stats;
  Prog gf = opt::optimize(g, {}, &stats);
  typecheck(gf);
  EXPECT_GE(stats.fuse.fused_hists, 1);
  support::Rng rng(51);
  expect_fused_gradcheck(p, {make_f64_array(rng.uniform_vec(5, -1.0, 1.0), {5}),
                             make_f64_array(rng.uniform_vec(13, -1.0, 1.0), {13})});
}

TEST(FusedHist, MulHistAdjointChainsFuse) {
  // The vjp of a multiplicative hist emits its own hist chains with map
  // producers (zero-mask and masked-value maps feeding reduce_by_index);
  // the pipeline must fold those into histomaps and keep the gradient.
  ProgBuilder pb("fhm");
  Var dest = pb.param("dest", arr_f64(1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var n = b.length(vals);
  Var iot = b.iota(Atom(n));
  Var is = b.map1(b.lam({i64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mod(p[0], ci64(4)))};
                        }),
                  {iot});
  Var h = b.hist(b.mul_op(), cf64(1.0), dest, is, vals);
  Var s = b.reduce1(b.add_op(), cf64(0.0), {h});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  Prog g = ad::vjp(p);
  opt::PipelineStats stats;
  Prog gf = opt::optimize(g, {}, &stats);
  typecheck(gf);
  EXPECT_GE(stats.fuse.fused_hists, 1);
  support::Rng rng(52);
  // Values bounded away from zero: the zero-aware product rule is exact but
  // finite differences near a zero crossing are not.
  expect_fused_gradcheck(p, {make_f64_array(rng.uniform_vec(4, 0.6, 1.4), {4}),
                             make_f64_array(rng.uniform_vec(11, 0.5, 1.5), {11})});
}

TEST(FusedHist, FusedVjpKernelMatchesGeneralPath) {
  // The optimized vjp program of an additive hist executed on the kernel
  // runtime must agree with the same program on the general interpreter.
  ProgBuilder pb("fhk");
  Var dest = pb.param("dest", arr_f64(1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var n = b.length(vals);
  Var iot = b.iota(Atom(n));
  Var is = b.map1(b.lam({i64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mod(p[0], ci64(6)))};
                        }),
                  {iot});
  Var vs2 = b.map1(b.lam({f64()},
                         [](Builder& c, const std::vector<Var>& p) {
                           return std::vector<Atom>{Atom(c.tanh(p[0]))};
                         }),
                   {vals});
  Var h = b.hist(b.add_op(), cf64(0.0), dest, is, vs2);
  Var s = b.reduce1(b.add_op(), cf64(0.0), {h});
  Prog p = pb.finish({Atom(s)});
  Prog gf = opt::optimize(ad::vjp(p), {});
  typecheck(gf);
  support::Rng rng(53);
  std::vector<Value> gargs = {make_f64_array(rng.uniform_vec(6, -1.0, 1.0), {6}),
                              make_f64_array(rng.uniform_vec(29, -1.5, 1.5), {29}), 1.0};
  rt::Interp fast({.parallel = false, .use_kernels = true, .kernel_lanes = 8});
  rt::Interp slow({.parallel = false, .use_kernels = false});
  auto rf = fast.run(gf, gargs);
  auto rs = slow.run(gf, gargs);
  EXPECT_GE(fast.stats().kernel_hists.load() + fast.stats().fused_hists.load(), 1u);
  ASSERT_EQ(rf.size(), rs.size());
  // Gradients are the last two results (dest, vals).
  for (size_t k = rf.size() - 2; k < rf.size(); ++k) {
    auto vf = rt::to_f64_vec(rt::as_array(rf[k]));
    auto vs = rt::to_f64_vec(rt::as_array(rs[k]));
    ASSERT_EQ(vf.size(), vs.size()) << k;
    for (size_t i = 0; i < vf.size(); ++i) EXPECT_NEAR(vf[i], vs[i], 1e-12) << k << ":" << i;
  }
}

// --------------------------------------------------------------- flattening
//
// vjp-then-flatten pipelines: differentiate first, then run the full
// pipeline (fusion + flattening, both on by default) over the reverse
// program, and check the gradients against central differences. The AD
// passes themselves must refuse already-flattened programs.

size_t count_flat_annotations(const Body& b);
size_t count_flat_exp(const Exp& e) {
  size_t n = 0;
  if (const auto* m = std::get_if<OpMap>(&e)) {
    if (m->flat != FlatForm::None) ++n;
  }
  for_each_nested(e, [&](const NestedScope& s) { n += count_flat_annotations(*s.body); });
  return n;
}
size_t count_flat_annotations(const Body& b) {
  size_t n = 0;
  for (const auto& s : b.stms) n += count_flat_exp(s.e);
  return n;
}

// Per-row weighted sum-of-squares, then a total over rows — the nested
// shape of the GMM/kmeans inner loops.
Prog nested_objective_prog() {
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var per_row = b.map1(
      b.lam({arr_f64(1)},
            [](Builder& c, const std::vector<Var>& row) {
              Var sq = c.map1(c.lam({f64()},
                                    [](Builder& cc, const std::vector<Var>& p) {
                                      Var t = cc.mul(p[0], p[0]);
                                      return std::vector<Atom>{Atom(cc.mul(t, cf64(0.5)))};
                                    }),
                              {row[0]});
              return std::vector<Atom>{Atom(c.reduce1(c.add_op(), cf64(0.0), {sq}))};
            }),
      {xss});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {per_row});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  return p;
}

TEST(FlattenedPipeline, NestedObjectiveGradients) {
  Prog p = nested_objective_prog();
  Prog g = ad::vjp(p);
  opt::PipelineStats stats;
  Prog gf = opt::optimize(g, {}, &stats);
  typecheck(gf);
  // The optimized reverse program carries at least one flattening
  // annotation (forward sweep nests re-emitted by vjp), so the gradcheck
  // below actually exercises the flat drivers.
  EXPECT_GE(count_flat_annotations(gf.fn.body), 1u);
  support::Rng rng(61);
  std::vector<Value> args = {make_f64_array(rng.uniform_vec(6 * 9, -1.0, 1.0), {6, 9})};
  std::vector<Value> gargs = args;
  gargs.emplace_back(1.0);
  rt::Interp flat_in({.parallel = false, .use_kernels = true, .kernel_lanes = 8});
  auto res = flat_in.run(gf, gargs);
  EXPECT_GE(flat_in.stats().flattened_maps.load() + flat_in.stats().segred_launches.load(), 1u);
  auto num = ad::numeric_gradients(p, args);
  ASSERT_EQ(num.size(), 1u);
  auto got = rt::to_f64_vec(rt::as_array(res[res.size() - 1]));
  ASSERT_EQ(got.size(), num[0].size());
  for (size_t i = 0; i < got.size(); ++i) {
    const double denom = std::max(1.0, std::abs(num[0][i]));
    EXPECT_NEAR(got[i] / denom, num[0][i] / denom, 2e-4) << i;
  }
}

TEST(FlattenedPipeline, TwoInputDotGradients) {
  // Row-wise dots: both inputs receive gradients through the flattened
  // segmented redomap.
  ProgBuilder pb("f");
  Var as = pb.param("as", arr_f64(2));
  Var bs = pb.param("bs", arr_f64(2));
  Builder& b = pb.body();
  Var dots = b.map1(
      b.lam({arr_f64(1), arr_f64(1)},
            [](Builder& c, const std::vector<Var>& rows) {
              Var prods = c.map1(c.lam({f64(), f64()},
                                       [](Builder& cc, const std::vector<Var>& p) {
                                         return std::vector<Atom>{Atom(cc.mul(p[0], p[1]))};
                                       }),
                                 {rows[0], rows[1]});
              return std::vector<Atom>{Atom(c.reduce1(c.add_op(), cf64(0.0), {prods}))};
            }),
      {as, bs});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {dots});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  Prog g = ad::vjp(p);
  Prog gf = opt::optimize(g);
  typecheck(gf);
  support::Rng rng(62);
  std::vector<Value> args = {make_f64_array(rng.uniform_vec(5 * 7, -1.0, 1.0), {5, 7}),
                             make_f64_array(rng.uniform_vec(5 * 7, -1.0, 1.0), {5, 7})};
  std::vector<Value> gargs = args;
  gargs.emplace_back(1.0);
  auto res = rt::run_prog(gf, gargs, {.parallel = false});
  auto num = ad::numeric_gradients(p, args);
  ASSERT_EQ(num.size(), 2u);
  size_t gi = res.size() - 2;
  for (size_t k = 0; k < 2; ++k, ++gi) {
    auto got = rt::to_f64_vec(rt::as_array(res[gi]));
    ASSERT_EQ(got.size(), num[k].size());
    for (size_t i = 0; i < got.size(); ++i) {
      const double denom = std::max(1.0, std::abs(num[k][i]));
      EXPECT_NEAR(got[i] / denom, num[k][i] / denom, 2e-4) << k << ":" << i;
    }
  }
}

TEST(FlattenedPipeline, AdRefusesFlattenedPrograms) {
  // A flattened map-of-map (no redomap involved, so the @flat guard itself
  // is what fires): differentiate before flattening.
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           return std::vector<Atom>{Atom(c.map1(
                               c.lam({f64()},
                                     [](Builder& cc, const std::vector<Var>& p) {
                                       return std::vector<Atom>{Atom(cc.mul(p[0], p[0]))};
                                     }),
                               {row[0]}))};
                         }),
                   {xss});
  Var s = b.reduce1(b.add_op(), cf64(0.0),
                    {b.map1(b.lam({arr_f64(1)},
                                  [](Builder& c, const std::vector<Var>& row) {
                                    return std::vector<Atom>{Atom(
                                        c.reduce1(c.add_op(), cf64(0.0), {row[0]}))};
                                  }),
                            {out})});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  opt::FlattenStats st;
  Prog q = opt::flatten_nested(p, &st);
  typecheck(q);
  ASSERT_GE(st.flattened_maps, 1);
  EXPECT_THROW(ad::vjp(q), ad::ADError);
  EXPECT_THROW(ad::jvp(q), ad::ADError);
}

} // namespace
