// Structured-error tests: the typed npad::Error taxonomy, IR context frames
// accumulated during unwind, exception-safe parallel_for, and resource
// governance (buffer-pool byte budget, eval recursion-depth limit).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>

#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/interp.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace npad::ir;
using namespace npad::rt;

// Fix the pool size before the global pool is constructed so chunk counts
// (and hence which chunks exist to throw from) are stable across machines.
[[maybe_unused]] const int force_threads = [] {
  setenv("NPAD_NUM_THREADS", "4", /*overwrite=*/0);
  return 0;
}();

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

// --------------------------------------------------------- error objects --

TEST(Errors, WhatComposesKindMessageAndContext) {
  npad::ShapeError err("extent mismatch");
  EXPECT_STREQ(err.kind(), "ShapeError");
  EXPECT_EQ(err.message(), "extent mismatch");
  err.add_context("in map launch (extent 4)");
  err.add_context("in index binding %ys_3");
  const std::string w = err.what();
  EXPECT_TRUE(contains(w, "ShapeError: extent mismatch")) << w;
  EXPECT_TRUE(contains(w, "\n  in map launch (extent 4)")) << w;
  EXPECT_TRUE(contains(w, "\n  in index binding %ys_3")) << w;
  ASSERT_EQ(err.context().size(), 2u);
}

TEST(Errors, ContextIsCapped) {
  npad::KernelError err("boom");
  for (int i = 0; i < 100; ++i) err.add_context("frame " + std::to_string(i));
  // Capped well below 100, with an explicit truncation marker.
  EXPECT_LE(err.context().size(), 33u);
  EXPECT_TRUE(contains(err.what(), "truncated")) << err.what();
}

TEST(Errors, SubclassesAreCatchableAsBaseAndRuntimeError) {
  try {
    throw npad::ResourceError("over budget");
  } catch (const npad::Error& e) {
    EXPECT_STREQ(e.kind(), "ResourceError");
  }
  try {
    throw npad::TypeError("bad type");
  } catch (const std::runtime_error& e) {  // legacy catch sites keep working
    EXPECT_TRUE(contains(e.what(), "bad type"));
  }
}

// ----------------------------------------------------------- thread pool --

TEST(Errors, ParallelForPropagatesFirstExceptionOnce) {
  auto& pool = npad::support::ThreadPool::global();
  int64_t caught = 0;
  try {
    pool.parallel_for(100000, 1000, [](int64_t lo, int64_t hi) {
      if (lo <= 31337 && 31337 < hi) throw npad::KernelError("chunk failed");
      // Other chunks run (or are cancelled) without incident.
    });
  } catch (const npad::Error& e) {
    ++caught;
    EXPECT_STREQ(e.kind(), "KernelError");
    EXPECT_TRUE(contains(e.what(), "chunk failed"));
  }
  EXPECT_EQ(caught, 1);
  EXPECT_FALSE(npad::support::ThreadPool::in_parallel_region());
}

TEST(Errors, ParallelForPropagatesNonNpadExceptions) {
  auto& pool = npad::support::ThreadPool::global();
  EXPECT_THROW(
      pool.parallel_for(10000, 100, [](int64_t lo, int64_t) {
        if (lo == 0) throw std::logic_error("plain std exception");
      }),
      std::logic_error);
}

TEST(Errors, PoolIsReusableAfterFailedLaunch) {
  auto& pool = npad::support::ThreadPool::global();
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.parallel_for(
                     100000, 1000,
                     [](int64_t, int64_t) { throw npad::KernelError("every chunk throws"); }),
                 npad::KernelError);
    // A healthy launch right after the failed one still computes correctly.
    std::atomic<int64_t> sum{0};
    pool.parallel_for(100000, 1000, [&](int64_t lo, int64_t hi) {
      int64_t local = 0;
      for (int64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), int64_t{100000} * 99999 / 2);
    EXPECT_FALSE(npad::support::ThreadPool::in_parallel_region());
  }
}

// ------------------------------------------------------- interpreter errors --

TEST(Errors, MapOfUnequalLengthsIsShapeError) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var ys = pb.param("ys", arr_f64(1));
  Builder& b = pb.body();
  Var zs = b.map(b.lam({f64(), f64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         return std::vector<Atom>{Atom(c.add(p[0], p[1]))};
                       }),
                 {xs, ys})[0];
  Prog p = pb.finish({Atom(zs)});
  typecheck(p);
  try {
    run_prog(p, {make_f64_array({1, 2, 3, 4}, {4}), make_f64_array({1, 2, 3}, {3})});
    FAIL() << "expected ShapeError";
  } catch (const npad::ShapeError& e) {
    const std::string w = e.what();
    EXPECT_TRUE(contains(w, "unequal length")) << w;
    EXPECT_TRUE(contains(w, "ys")) << w;      // names the offending binding
    EXPECT_TRUE(contains(w, "3")) << w;       // its extent
    EXPECT_TRUE(contains(w, "4")) << w;       // the expected extent
  }
}

TEST(Errors, IndexOutOfBoundsIsShapeErrorWithBindingContext) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var e = b.index(xs, {ci64(10)});
  Prog p = pb.finish({Atom(e)});
  typecheck(p);
  try {
    run_prog(p, {make_f64_array({1, 2, 3}, {3})});
    FAIL() << "expected ShapeError";
  } catch (const npad::ShapeError& err) {
    const std::string w = err.what();
    EXPECT_TRUE(contains(w, "ShapeError:")) << w;
    EXPECT_TRUE(contains(w, "index 10 out of bounds")) << w;
    EXPECT_TRUE(contains(w, "extent 3")) << w;
    EXPECT_TRUE(contains(w, "in index binding")) << w;  // exec_stm frame
  }
}

TEST(Errors, ErrorInsideMapCarriesLaunchContext) {
  // The OOB index is inside a map lambda: the unwind should record both the
  // failing binding and the enclosing launch with its extent.
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var ws = pb.param("ws", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(b.lam({f64()},
                        [&](Builder& c, const std::vector<Var>& p) {
                          Var w = c.index(ws, {ci64(5)});  // ws has extent 2
                          return std::vector<Atom>{Atom(c.add(p[0], w))};
                        }),
                  {xs});
  Prog p = pb.finish({Atom(ys)});
  typecheck(p);
  InterpOptions opts;
  opts.use_kernels = false;  // general path evaluates the body via exec_stm
  try {
    run_prog(p, {make_f64_array({1, 2, 3, 4}, {4}), make_f64_array({9, 9}, {2})}, opts);
    FAIL() << "expected ShapeError";
  } catch (const npad::ShapeError& err) {
    const std::string w = err.what();
    EXPECT_TRUE(contains(w, "index 5 out of bounds")) << w;
    EXPECT_TRUE(contains(w, "in map launch (extent 4)")) << w;
  }
}

TEST(Errors, TypecheckThrowsTypedTypeError) {
  ProgBuilder pb("bad");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var y = b.mul(x, x);
  Prog p = pb.finish({Atom(y)});
  Var ghost = p.mod->fresh("ghost");
  p.fn.body.result[0] = Atom(ghost);
  p.fn.rets[0] = f64();
  try {
    typecheck(p);
    FAIL() << "expected TypeError";
  } catch (const npad::Error& e) {
    EXPECT_STREQ(e.kind(), "TypeError");
  }
}

TEST(Errors, WrongArgumentCountIsTypeError) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Prog p = pb.finish({Atom(b.add(x, x))});
  typecheck(p);
  try {
    run_prog(p, {1.0, 2.0});
    FAIL() << "expected TypeError";
  } catch (const npad::TypeError& e) {
    EXPECT_TRUE(contains(e.what(), "expects 1 argument")) << e.what();
  }
}

TEST(Errors, AdErrorsJoinTheTaxonomy) {
  // withacc is not reverse-differentiable: vjp throws ad::ADError, which is
  // an npad::Error subclass and catchable as such.
  ProgBuilder pb("f");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var vs = pb.param("vs", arr_f64(1));
  Builder& b = pb.body();
  auto outs = b.withacc({dest}, [&](Builder& c, const std::vector<Var>& accs) {
    LambdaPtr f = c.lam({i64(), f64(), acc_of(arr_f64(1))},
                        [](Builder& cc, const std::vector<Var>& p) {
                          Var a2 = cc.upd_acc(p[2], {Atom(p[0])}, Atom(p[1]));
                          return std::vector<Atom>{Atom(a2)};
                        });
    Var acc2 = c.map(f, {is, vs, accs[0]})[0];
    return std::vector<Atom>{Atom(acc2)};
  });
  Var s = b.reduce1(b.add_op(), cf64(0.0), {outs[0]});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  try {
    npad::ad::vjp(p);
    FAIL() << "expected ADError";
  } catch (const npad::Error& e) {
    EXPECT_STREQ(e.kind(), "ADError");
    EXPECT_TRUE(contains(e.what(), "withacc")) << e.what();
  }
}

// ----------------------------------------------------- resource governance --

TEST(Errors, PoolBudgetRejectsWithResourceError) {
  auto& pool = BufferPool::global();
  const size_t saved_budget = pool.budget_bytes();
  const uint64_t pre_rejections = pool.stats().budget_rejections;
  const size_t pre_buffers = pool.outstanding_buffers();

  // Budget barely above the current live footprint: an 8 MB replicate must
  // be refused before any allocation happens.
  pool.set_budget_bytes(pool.outstanding_bytes() + 1024);
  ProgBuilder pb("f");
  Var n = pb.param("n", i64());
  Builder& b = pb.body();
  Var big = b.replicate(n, cf64(1.0));
  Prog p = pb.finish({Atom(big)});
  typecheck(p);
  try {
    run_prog(p, {int64_t{1} << 20});
    pool.set_budget_bytes(saved_budget);
    FAIL() << "expected ResourceError";
  } catch (const npad::ResourceError& e) {
    EXPECT_TRUE(contains(e.what(), "budget")) << e.what();
  }
  pool.set_budget_bytes(saved_budget);
  EXPECT_GT(pool.stats().budget_rejections, pre_rejections);
  // The refused run leaked nothing.
  EXPECT_EQ(pool.outstanding_buffers(), pre_buffers);

  // With the budget lifted, the same program runs.
  auto r = run_prog(p, {int64_t{1} << 20});
  EXPECT_EQ(as_array(r[0]).outer(), int64_t{1} << 20);
}

TEST(Errors, EvalDepthLimitIsResourceError) {
  // Nested rank-2 map: the inner lambda applies at depth 2, so a limit of 1
  // trips the guard; a flat map at depth 1 is fine under the same limit.
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var yss = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           Var inner = c.map1(
                               c.lam({f64()},
                                     [](Builder& cc, const std::vector<Var>& p) {
                                       return std::vector<Atom>{Atom(cc.mul(p[0], p[0]))};
                                     }),
                               {row[0]});
                           return std::vector<Atom>{Atom(inner)};
                         }),
                   {xss});
  Prog p = pb.finish({Atom(yss)});
  typecheck(p);
  ArrayVal in = make_f64_array({1, 2, 3, 4, 5, 6}, {2, 3});

  InterpOptions tight;
  tight.use_kernels = false;
  tight.max_eval_depth = 1;
  try {
    run_prog(p, {in}, tight);
    FAIL() << "expected ResourceError";
  } catch (const npad::ResourceError& e) {
    EXPECT_TRUE(contains(e.what(), "depth")) << e.what();
  }

  InterpOptions ok = tight;
  ok.max_eval_depth = 8;
  auto r = run_prog(p, {in}, ok);
  EXPECT_EQ(to_f64_vec(as_array(r[0])), (std::vector<double>{1, 4, 9, 16, 25, 36}));
}

} // namespace
