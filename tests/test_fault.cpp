// Deterministic fault-injection sweep (the robustness acceptance harness).
//
// For each workload: run twice fault-free and assert bit-exact determinism
// (the baseline), count the crossings of every instrumented fault site, then
// arm each crossed (site, occurrence) pair in turn — first and last crossing
// — and assert the robustness contract:
//
//   1. the failure surfaces as a typed npad::Error (never an abort),
//   2. the buffer pool's live footprint returns to its pre-call value
//      (nothing leaked during the unwind), and
//   3. an immediate retry reproduces the baseline bit-exact.
//
// The final test asserts the sweep exercised at least 20 distinct sites
// across the workloads (pool allocations, thread-pool chunks, every SOAC
// tier, merges/rescales, loop iterations, withacc bodies).
//
// Workload design notes: destinations of in-place SOACs (hist/scatter/
// withacc) are created *inside* the program (replicate), never passed as
// arguments, so a run can never corrupt the shared argument values; hist
// extents keep the privatized tier (chunk-ordered merges are bit-exact,
// unlike the atomic tier's reordered float adds); scatter indices are a
// permutation so parallel writes never race on an element.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "apps/gmm.hpp"
#include "apps/lstm.hpp"
#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "opt/flatten.hpp"
#include "opt/fuse.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/interp.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace {

using namespace npad::ir;
using namespace npad::rt;
using npad::support::FaultInjector;
using npad::support::FaultKind;

// Chunk counts (and so crossing counts of per-chunk sites) depend on the
// pool size; pin it before the global pool is constructed.
[[maybe_unused]] const int force_threads = [] {
  setenv("NPAD_NUM_THREADS", "4", /*overwrite=*/0);
  return 0;
}();

using Runner = std::function<std::vector<Value>()>;

// Distinct site names that fired (typed error observed) across all sweeps.
std::set<std::string>& swept_sites() {
  static std::set<std::string> s;
  return s;
}

uint64_t bits_of(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Bit-exact fingerprint of a result set: scalars as raw bits, arrays as
// shape + per-element bits.
std::vector<uint64_t> fingerprint(const std::vector<Value>& vals) {
  std::vector<uint64_t> fp;
  for (const auto& v : vals) {
    if (std::holds_alternative<double>(v)) {
      fp.push_back(bits_of(std::get<double>(v)));
    } else if (std::holds_alternative<int64_t>(v)) {
      fp.push_back(static_cast<uint64_t>(std::get<int64_t>(v)));
    } else if (std::holds_alternative<bool>(v)) {
      fp.push_back(std::get<bool>(v) ? 1 : 0);
    } else if (is_array(v)) {
      const ArrayVal& a = as_array(v);
      for (int64_t s : a.shape) fp.push_back(static_cast<uint64_t>(s));
      const int64_t ne = a.elems();
      for (int64_t i = 0; i < ne; ++i) {
        if (a.elem == ScalarType::F64) {
          fp.push_back(bits_of(a.get_f64(i)));
        } else {
          fp.push_back(static_cast<uint64_t>(a.get_i64(i)));
        }
      }
    }
  }
  return fp;
}

// The sweep driver described in the file comment.
void sweep_case(const std::string& cname, const Runner& run_case) {
  auto& fi = FaultInjector::global();
  auto& pool = BufferPool::global();
  fi.stop();

  const auto base1 = fingerprint(run_case());
  const auto base2 = fingerprint(run_case());
  ASSERT_EQ(base1, base2) << cname << ": fault-free baseline is not deterministic";

  fi.start_counting();
  run_case();
  fi.stop();

  struct SiteCount {
    int idx;
    std::string name;
    FaultKind kind;
    uint64_t count;
  };
  std::vector<SiteCount> crossed;
  for (int s = 0; s < fi.num_sites(); ++s) {
    if (fi.crossings(s) > 0) crossed.push_back({s, fi.site_name(s), fi.site_kind(s), fi.crossings(s)});
  }
  ASSERT_FALSE(crossed.empty()) << cname << ": no instrumented site crossed";

  for (const auto& sc : crossed) {
    std::vector<uint64_t> occs{0};
    if (sc.count > 1) occs.push_back(sc.count - 1);
    for (uint64_t occ : occs) {
      const size_t pre_buffers = pool.outstanding_buffers();
      fi.arm(sc.idx, occ);
      bool threw_typed = false;
      try {
        run_case();
      } catch (const npad::Error& e) {
        threw_typed = true;
        const std::string w = e.what();
        EXPECT_NE(w.find("injected fault"), std::string::npos)
            << cname << " site " << sc.name << "#" << occ << ": " << w;
        const char* want = sc.kind == FaultKind::Alloc ? "ResourceError" : "KernelError";
        EXPECT_STREQ(e.kind(), want) << cname << " site " << sc.name << "#" << occ;
      } catch (const std::exception& e) {
        ADD_FAILURE() << cname << " site " << sc.name << "#" << occ
                      << ": untyped exception escaped: " << e.what();
      }
      fi.stop();
      EXPECT_TRUE(threw_typed) << cname << " site " << sc.name << "#" << occ
                               << ": armed fault did not surface";
      // Zero-leak unwind: the pool's live footprint is restored.
      EXPECT_EQ(pool.outstanding_buffers(), pre_buffers)
          << cname << " site " << sc.name << "#" << occ << ": buffers leaked by the unwind";
      // Bit-exact retry.
      EXPECT_EQ(fingerprint(run_case()), base1)
          << cname << " site " << sc.name << "#" << occ << ": retry diverged from baseline";
      if (threw_typed) swept_sites().insert(sc.name);
    }
  }
}

// ------------------------------------------------------------ IR helpers --

LambdaPtr square_lam(Builder& b) {
  return b.lam({f64()}, [](Builder& c, const std::vector<Var>& p) {
    return std::vector<Atom>{Atom(c.mul(p[0], p[0]))};
  });
}

// Log-sum-exp fold: kernelizable but not a recognized plain binop, so it
// forces the kernel tier of reduce/scan past the hand tier.
LambdaPtr lse_op(Builder& b) {
  return b.lam({f64(), f64()}, [](Builder& cc, const std::vector<Var>& p) {
    Var m = cc.max(p[0], p[1]);
    Var ea = cc.exp(Atom(cc.sub(p[0], m)));
    Var eb = cc.exp(Atom(cc.sub(p[1], m)));
    return std::vector<Atom>{Atom(cc.add(m, Atom(cc.log(Atom(cc.add(ea, eb))))))};
  });
}

Prog map_of_map_prog() {
  ProgBuilder pb("mm");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           return std::vector<Atom>{Atom(c.map1(
                               c.lam({f64()},
                                     [](Builder& cc, const std::vector<Var>& p) {
                                       Var t = cc.mul(p[0], cf64(1.3));
                                       return std::vector<Atom>{Atom(cc.add(t, cf64(0.2)))};
                                     }),
                               {row[0]}))};
                         }),
                   {xss});
  return pb.finish({Atom(out)});
}

Prog map_of_sum_prog() {
  ProgBuilder pb("ms");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           return std::vector<Atom>{
                               Atom(c.reduce1(c.add_op(), cf64(0.0), {row[0]}))};
                         }),
                   {xss});
  return pb.finish({Atom(out)});
}

Prog map_of_dot_prog() {
  ProgBuilder pb("md");
  Var as = pb.param("as", arr_f64(2));
  Var bs = pb.param("bs", arr_f64(2));
  Builder& b = pb.body();
  Var out = b.map1(
      b.lam({arr_f64(1), arr_f64(1)},
            [](Builder& c, const std::vector<Var>& rows) {
              Var prods = c.map1(c.lam({f64(), f64()},
                                       [](Builder& cc, const std::vector<Var>& p) {
                                         return std::vector<Atom>{Atom(cc.mul(p[0], p[1]))};
                                       }),
                                 {rows[0], rows[1]});
              return std::vector<Atom>{Atom(c.reduce1(c.add_op(), cf64(0.0), {prods}))};
            }),
      {as, bs});
  return pb.finish({Atom(out)});
}

Prog flatten_prep(Prog p, bool fuse_first) {
  typecheck(p);
  if (fuse_first) {
    npad::opt::FuseStats fs;
    p = npad::opt::fuse_maps(p, &fs);
    typecheck(p);
  }
  npad::opt::FlattenStats st;
  Prog q = npad::opt::flatten_nested(p, &st);
  typecheck(q);
  return q;
}

ArrayVal rand_f64(npad::support::Rng& rng, std::vector<int64_t> shape) {
  int64_t n = 1;
  for (int64_t s : shape) n *= s;
  return make_f64_array(rng.uniform_vec(static_cast<size_t>(n), -1.0, 1.0), std::move(shape));
}

Runner prog_runner(Prog p, std::vector<Value> args, InterpOptions opts = {}) {
  typecheck(p);
  return [p = std::move(p), args = std::move(args), opts] { return run_prog(p, args, opts); };
}

// ------------------------------------------------------------- the sweep --

TEST(FaultSweep, KernelMap) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(square_lam(b), {xs});
  Prog p = pb.finish({Atom(ys)});
  npad::support::Rng rng(11);
  sweep_case("kernel_map", prog_runner(std::move(p), {rand_f64(rng, {8192})}));
}

TEST(FaultSweep, GeneralMapOfSum) {
  // Array-typed lambda params keep the outer map on the general path.
  npad::support::Rng rng(12);
  Prog p = map_of_sum_prog();
  sweep_case("general_map_of_sum", prog_runner(std::move(p), {rand_f64(rng, {4096, 8})}));
}

TEST(FaultSweep, FlattenedMapOfMap) {
  npad::support::Rng rng(13);
  Prog q = flatten_prep(map_of_map_prog(), false);
  sweep_case("flattened_map_of_map", prog_runner(std::move(q), {rand_f64(rng, {512, 64})}));
}

TEST(FaultSweep, SegmentedHandReduction) {
  npad::support::Rng rng(14);
  Prog q = flatten_prep(map_of_sum_prog(), false);
  sweep_case("segred_hand", prog_runner(std::move(q), {rand_f64(rng, {4096, 8})}));
}

TEST(FaultSweep, SegmentedKernelReduction) {
  npad::support::Rng rng(15);
  Prog q = flatten_prep(map_of_dot_prog(), true);
  ArrayVal a = rand_f64(rng, {4096, 8}), b = rand_f64(rng, {4096, 8});
  sweep_case("segred_kernel", prog_runner(std::move(q), {a, b}));
}

TEST(FaultSweep, HandReduce) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var s = b.reduce1(b.add_op(), cf64(0.0), {xs});
  Prog p = pb.finish({Atom(s)});
  npad::support::Rng rng(16);
  sweep_case("hand_reduce", prog_runner(std::move(p), {rand_f64(rng, {8192})}));
}

TEST(FaultSweep, KernelReduce) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var s = b.reduce1(lse_op(b), cf64(-1e300), {xs});
  Prog p = pb.finish({Atom(s)});
  npad::support::Rng rng(17);
  sweep_case("kernel_reduce", prog_runner(std::move(p), {rand_f64(rng, {8192})}));
}

TEST(FaultSweep, HandScan) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.scan1(b.add_op(), cf64(0.0), {xs});
  Prog p = pb.finish({Atom(ys)});
  npad::support::Rng rng(18);
  sweep_case("hand_scan", prog_runner(std::move(p), {rand_f64(rng, {16384})}));
}

TEST(FaultSweep, KernelScan) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.scan1(lse_op(b), cf64(-1e300), {xs});
  Prog p = pb.finish({Atom(ys)});
  npad::support::Rng rng(19);
  sweep_case("kernel_scan", prog_runner(std::move(p), {rand_f64(rng, {16384})}));
}

TEST(FaultSweep, GeneralScan) {
  // Rank-2 scan (running elementwise sum of rows): array accumulator, so
  // only the general tier applies.
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var zrow = b.replicate(ci64(4), cf64(0.0));
  LambdaPtr op = b.lam({arr_f64(1), arr_f64(1)},
                       [](Builder& c, const std::vector<Var>& p) {
                         Var s = c.map1(c.lam({f64(), f64()},
                                              [](Builder& cc, const std::vector<Var>& q) {
                                                return std::vector<Atom>{
                                                    Atom(cc.add(q[0], q[1]))};
                                              }),
                                        {p[0], p[1]});
                         return std::vector<Atom>{Atom(s)};
                       });
  Var ys = b.scan1(std::move(op), Atom(zrow), {xss});
  Prog p = pb.finish({Atom(ys)});
  npad::support::Rng rng(20);
  sweep_case("general_scan", prog_runner(std::move(p), {rand_f64(rng, {64, 4})}));
}

TEST(FaultSweep, HandHist) {
  // f64 + over 16 bins at n=8192: privatized hand tier (chunk-ordered merge
  // keeps float sums bit-exact).
  ProgBuilder pb("f");
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var dest = b.replicate(ci64(16), cf64(0.0));
  Var h = b.hist(b.add_op(), cf64(0.0), dest, inds, vals);
  Prog p = pb.finish({Atom(h)});
  npad::support::Rng rng(21);
  std::vector<int64_t> iv(8192);
  for (size_t i = 0; i < iv.size(); ++i) iv[i] = static_cast<int64_t>((i * 7) % 16);
  sweep_case("hand_hist",
             prog_runner(std::move(p),
                         {make_i64_array(iv, {8192}), rand_f64(rng, {8192})}));
}

TEST(FaultSweep, KernelHist) {
  // Fold a + v*v is kernelizable but not a plain binop: kernel tier.
  ProgBuilder pb("f");
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var dest = b.replicate(ci64(16), cf64(0.0));
  LambdaPtr op = b.lam({f64(), f64()}, [](Builder& c, const std::vector<Var>& p) {
    return std::vector<Atom>{Atom(c.add(p[0], Atom(c.mul(p[1], p[1]))))};
  });
  Var h = b.hist(std::move(op), cf64(0.0), dest, inds, vals);
  Prog p = pb.finish({Atom(h)});
  npad::support::Rng rng(22);
  std::vector<int64_t> iv(8192);
  for (size_t i = 0; i < iv.size(); ++i) iv[i] = static_cast<int64_t>((i * 5) % 16);
  sweep_case("kernel_hist",
             prog_runner(std::move(p),
                         {make_i64_array(iv, {8192}), rand_f64(rng, {8192})}));
}

TEST(FaultSweep, GeneralHist) {
  // i64 bins: neither the hand nor the kernel tier applies.
  ProgBuilder pb("f");
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr(ScalarType::I64, 1));
  Builder& b = pb.body();
  Var dest = b.replicate(ci64(8), ci64(0));
  LambdaPtr op = b.lam({i64(), i64()}, [](Builder& c, const std::vector<Var>& p) {
    return std::vector<Atom>{Atom(c.add(p[0], p[1]))};
  });
  Var h = b.hist(std::move(op), ci64(0), dest, inds, vals);
  Prog p = pb.finish({Atom(h)});
  std::vector<int64_t> iv(1024), vv(1024);
  for (size_t i = 0; i < iv.size(); ++i) {
    iv[i] = static_cast<int64_t>((i * 3) % 8);
    vv[i] = static_cast<int64_t>(i % 11);
  }
  sweep_case("general_hist",
             prog_runner(std::move(p),
                         {make_i64_array(iv, {1024}), make_i64_array(vv, {1024})}));
}

TEST(FaultSweep, Scatter) {
  ProgBuilder pb("f");
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var dest = b.replicate(ci64(8192), cf64(0.0));
  Var s = b.scatter(dest, inds, vals);
  Prog p = pb.finish({Atom(s)});
  npad::support::Rng rng(23);
  std::vector<int64_t> perm(8192);  // permutation: no racing duplicate writes
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int64_t>(perm.size() - 1 - i);
  sweep_case("scatter",
             prog_runner(std::move(p),
                         {make_i64_array(perm, {8192}), rand_f64(rng, {8192})}));
}

Prog withacc_prog() {
  ProgBuilder pb("f");
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var vs = pb.param("vs", arr_f64(1));
  Builder& b = pb.body();
  Var dest = b.replicate(ci64(8), cf64(0.0));
  auto outs = b.withacc({dest}, [&](Builder& c, const std::vector<Var>& accs) {
    LambdaPtr f = c.lam({i64(), f64(), acc_of(arr_f64(1))},
                        [](Builder& cc, const std::vector<Var>& p) {
                          Var a2 = cc.upd_acc(p[2], {Atom(p[0])}, Atom(p[1]));
                          return std::vector<Atom>{Atom(a2)};
                        });
    Var acc2 = c.map(f, {is, vs, accs[0]})[0];
    return std::vector<Atom>{Atom(acc2)};
  });
  return pb.finish({Atom(outs[0])});
}

std::vector<Value> withacc_args() {
  npad::support::Rng rng(24);
  std::vector<int64_t> iv(8192);
  for (size_t i = 0; i < iv.size(); ++i) iv[i] = static_cast<int64_t>((i * 13) % 8);
  return {make_i64_array(iv, {8192}), rand_f64(rng, {8192})};
}

TEST(FaultSweep, WithAccPrivatized) {
  // n=8192 >= privatize_min_iters: per-chunk private accumulators + merge.
  sweep_case("withacc", prog_runner(withacc_prog(), withacc_args()));
}

TEST(FaultSweep, WithAccGeneralPath) {
  InterpOptions opts;
  opts.use_kernels = false;
  sweep_case("withacc_general", prog_runner(withacc_prog(), withacc_args(), opts));
}

TEST(FaultSweep, LoopFor) {
  // 50 sequential iterations, each a map launch: exercises loop.iter.
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  auto outs = b.loop_for(
      {Atom(xs)}, ci64(50),
      [](Builder& c, Var, const std::vector<Var>& st) {
        Var next = c.map1(c.lam({f64()},
                                [](Builder& cc, const std::vector<Var>& p) {
                                  Var t = cc.mul(p[0], cf64(0.999));
                                  return std::vector<Atom>{Atom(cc.add(t, cf64(0.001)))};
                                }),
                          {st[0]});
        return std::vector<Atom>{Atom(next)};
      });
  Prog p = pb.finish({Atom(outs[0])});
  npad::support::Rng rng(25);
  sweep_case("loop_for", prog_runner(std::move(p), {rand_f64(rng, {4096})}));
}

TEST(FaultSweep, PlannedLoop) {
  // A loop the plan compiler accepts in full: scalar-glue run (Scalars step),
  // kernelizable rank-1 map (MapLaunch step) and an invariant-extent carry
  // (hoisted loop-buffer ring). Exercises plan.compile / plan.step /
  // plan.loop_iter, and checks the ring's unwind restores the pool footprint.
  ProgBuilder pb("pl");
  Var x = pb.param("x", f64());
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  auto outs = b.loop_for(
      {Atom(xs)}, ci64(20),
      [&](Builder& c, Var, const std::vector<Var>& st) {
        Var s1 = c.mul(x, cf64(0.25));
        Var s2 = c.add(s1, cf64(0.001));
        Var next = c.map1(c.lam({f64()},
                                [&](Builder& cc, const std::vector<Var>& p) {
                                  Var t = cc.mul(p[0], cf64(0.999));
                                  return std::vector<Atom>{Atom(cc.add(t, Atom(s2)))};
                                }),
                          {st[0]});
        return std::vector<Atom>{Atom(next)};
      });
  Prog p = pb.finish({Atom(outs[0])});
  npad::support::Rng rng(28);
  InterpOptions opts;
  opts.use_plans = true;  // pinned: swept on the NPAD_USE_PLANS=0 CI leg too
  sweep_case("planned_loop", prog_runner(std::move(p), {Value(0.5), rand_f64(rng, {4096})}, opts));
}

TEST(FaultSweep, PlannedBranchesAndLambdas) {
  // The plan layer's branch/lambda/arena control flow: a planned for-loop
  // whose body is an OpIf with kernelizable arms (plan.if_arm inside
  // plan.loop_iter), a general-path outer map whose lambda body carries its
  // own tabled plan (plan.apply_body), and launch arenas recycling
  // sole-owner intermediates (plan.arena_acquire). Plans pinned on so these
  // sites sweep on every CI leg.
  ProgBuilder pb("pb");
  Var x = pb.param("x", f64());
  Var xs = pb.param("xs", arr_f64(1));
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  auto outs = b.loop_for(
      {Atom(xs)}, ci64(6),
      [](Builder& lb, Var i, const std::vector<Var>& st) {
        Var even = lb.eq(Atom(lb.mod(i, ci64(2))), ci64(0));
        std::vector<Var> picked = lb.if_(
            Atom(even),
            [&](Builder& tb) {
              Var nx = tb.map1(tb.lam({f64()},
                                      [](Builder& cc, const std::vector<Var>& p) {
                                        return std::vector<Atom>{Atom(cc.mul(p[0], cf64(1.01)))};
                                      }),
                               {st[0]});
              return std::vector<Atom>{Atom(nx)};
            },
            [&](Builder& eb) {
              Var nx = eb.map1(eb.lam({f64()},
                                      [](Builder& cc, const std::vector<Var>& p) {
                                        return std::vector<Atom>{Atom(cc.add(p[0], cf64(0.01)))};
                                      }),
                               {st[0]});
              return std::vector<Atom>{Atom(nx)};
            });
        return std::vector<Atom>{Atom(picked[0])};
      });
  // Top-level OpIf with kernelizable arms: compiles to an If plan step.
  Var cnd = b.gt(x, cf64(0.0));
  std::vector<Var> branched = b.if_(
      Atom(cnd),
      [&](Builder& tb) {
        Var m = tb.map1(tb.lam({f64()},
                               [](Builder& cc, const std::vector<Var>& p) {
                                 return std::vector<Atom>{Atom(cc.mul(p[0], cf64(2.0)))};
                               }),
                        {xs});
        return std::vector<Atom>{Atom(m)};
      },
      [&](Builder& eb) {
        Var m = eb.map1(eb.lam({f64()},
                               [](Builder& cc, const std::vector<Var>& p) {
                                 return std::vector<Atom>{Atom(cc.add(p[0], cf64(2.0)))};
                               }),
                        {xs});
        return std::vector<Atom>{Atom(m)};
      });
  Var sums = b.map1(
      b.lam({arr_f64(1)},
            [](Builder& c, const std::vector<Var>& row) {
              Var scaled = c.map1(c.lam({f64()},
                                        [](Builder& cc, const std::vector<Var>& p) {
                                          Var t = cc.mul(p[0], cf64(0.5));
                                          return std::vector<Atom>{Atom(cc.add(t, cf64(1.0)))};
                                        }),
                                  {row[0]});
              Var s = c.reduce1(c.add_op(), cf64(0.0), {scaled});
              // The OpIf keeps this body off the kernel tier (row streams
              // would otherwise compile the whole lambda), so the map stays
              // general and every element crosses plan.apply_body.
              std::vector<Var> clamped = c.if_(
                  Atom(c.gt(s, cf64(1e300))),
                  [&](Builder& tb) { return std::vector<Atom>{Atom(tb.mul(s, cf64(0.5)))}; },
                  [&](Builder& eb) { return std::vector<Atom>{Atom(eb.add(s, cf64(0.0)))}; });
              return std::vector<Atom>{Atom(clamped[0])};
            }),
      {xss});
  Var t = b.reduce1(b.add_op(), cf64(0.0), {sums});
  Var u = b.reduce1(b.add_op(), cf64(0.0), {outs[0]});
  Var w = b.reduce1(b.add_op(), cf64(0.0), {branched[0]});
  Var y = b.mul(t, x);
  Var z = b.add(y, Atom(b.add(u, w)));
  Prog p = pb.finish({Atom(z)});
  npad::support::Rng rng(29);
  InterpOptions opts;
  opts.use_plans = true;
  sweep_case("planned_branches",
             prog_runner(std::move(p),
                         {Value(0.8), rand_f64(rng, {512}), rand_f64(rng, {4096, 8})}, opts));
}

TEST(FaultSweep, GmmObjectiveAndGradient) {
  npad::support::Rng rng(26);
  auto g = npad::apps::gmm_gen(rng, 64, 4, 5);
  Prog p = npad::apps::gmm_ir_objective();
  typecheck(p);
  auto args = npad::apps::gmm_ir_args(g);
  sweep_case("gmm_objective", prog_runner(p, args));

  Prog grad = npad::ad::vjp(p);
  typecheck(grad);
  auto gargs = args;
  gargs.emplace_back(1.0);  // seed for the scalar objective
  sweep_case("gmm_gradient", prog_runner(std::move(grad), std::move(gargs)));
}

TEST(FaultSweep, LstmObjective) {
  npad::support::Rng rng(27);
  auto L = npad::apps::lstm_gen(rng, 2, 4, 6, 8);
  Prog p = npad::apps::lstm_ir_objective();
  typecheck(p);
  sweep_case("lstm_objective", prog_runner(std::move(p), npad::apps::lstm_ir_args(L)));
}

// Must run after every sweep above (gtest preserves in-file declaration
// order): the acceptance floor from the issue.
TEST(FaultSweep, AtLeastTwentyDistinctSitesExercised) {
  const auto& sites = swept_sites();
  std::string all;
  for (const auto& s : sites) all += s + " ";
  EXPECT_GE(sites.size(), 20u) << "sites swept: " << all;
  // Anchor a few sites the contract names explicitly.
  EXPECT_TRUE(sites.count("pool.acquire")) << all;
  EXPECT_TRUE(sites.count("threadpool.chunk")) << all;
  EXPECT_TRUE(sites.count("loop.iter")) << all;
  // The execution-plan layer: cache acquisition, step execution, the
  // per-iteration site inside planned loops, planned lambda bodies and OpIf
  // arms, and arena buffer handout. The PlannedLoop / PlannedBranchesAndLambdas
  // sweeps pin use_plans on, so these hold on the NPAD_USE_PLANS=0 CI leg too.
  EXPECT_TRUE(sites.count("plan.compile")) << all;
  EXPECT_TRUE(sites.count("plan.step")) << all;
  EXPECT_TRUE(sites.count("plan.loop_iter")) << all;
  EXPECT_TRUE(sites.count("plan.apply_body")) << all;
  EXPECT_TRUE(sites.count("plan.if_arm")) << all;
  EXPECT_TRUE(sites.count("plan.arena_acquire")) << all;
  // The vectorized execution tier: when vexec is on (the default; the
  // NPAD_VEXEC=0 CI leg disables it), the sweeps above dispatch through the
  // gate in front of the SIMD schedules, so that site must have been crossed
  // (and survived arming) by at least one vectorized launch.
  if (default_use_vexec()) {
    EXPECT_TRUE(sites.count("vexec.dispatch")) << all;
  }
}

} // namespace
