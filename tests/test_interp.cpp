// Interpreter tests: scalar ops, SOAC semantics (map/reduce/scan/hist/
// scatter), loops, accumulators, kernel fast path vs general path agreement.

#include <gtest/gtest.h>

#include <cmath>

#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "runtime/interp.hpp"

namespace {

using namespace npad::ir;
using namespace npad::rt;

std::vector<Value> run(const Prog& p, const std::vector<Value>& args, bool kernels = true) {
  typecheck(p);
  InterpOptions opts;
  opts.use_kernels = kernels;
  return run_prog(p, args, opts);
}

TEST(Interp, ScalarArithmetic) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Var y = pb.param("y", f64());
  Builder& b = pb.body();
  Var s = b.add(x, b.mul(y, cf64(2.0)));
  Var t = b.sub(s, b.div(x, y));
  Prog p = pb.finish({Atom(t)});
  auto r = run(p, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(as_f64(r[0]), 3.0 + 8.0 - 0.75);
}

TEST(Interp, TranscendentalOps) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var r = b.add(b.sin(x), b.add(b.exp(x), b.sqrt(x)));
  Prog p = pb.finish({Atom(r)});
  auto out = run(p, {2.0});
  EXPECT_NEAR(as_f64(out[0]), std::sin(2.0) + std::exp(2.0) + std::sqrt(2.0), 1e-12);
}

TEST(Interp, SelectAndCompare) {
  ProgBuilder pb("f");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var c = b.lt(x, cf64(0.0));
  Var r = b.select(c, b.neg(x), x);  // |x|
  Prog p = pb.finish({Atom(r)});
  EXPECT_DOUBLE_EQ(as_f64(run(p, {-5.0})[0]), 5.0);
  EXPECT_DOUBLE_EQ(as_f64(run(p, {7.0})[0]), 7.0);
}

TEST(Interp, MapSquaresKernelAndGeneralAgree) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.mul(p[0], p[0]))};
                        }),
                  {xs});
  Prog p = pb.finish({Atom(ys)});
  ArrayVal in = make_f64_array({1, 2, 3, 4}, {4});
  auto rk = run(p, {in}, true);
  auto rg = run(p, {in}, false);
  EXPECT_EQ(to_f64_vec(as_array(rk[0])), (std::vector<double>{1, 4, 9, 16}));
  EXPECT_EQ(to_f64_vec(as_array(rg[0])), (std::vector<double>{1, 4, 9, 16}));
}

TEST(Interp, MapWithFreeScalarAndGather) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var k = pb.param("k", f64());
  Builder& b = pb.body();
  // ys[j] = k * xs[is[j]]  — gather via free array + free scalar.
  Var ys = b.map1(b.lam({i64()},
                        [&](Builder& c, const std::vector<Var>& p) {
                          Var e = c.index(xs, {Atom(p[0])});
                          return std::vector<Atom>{Atom(c.mul(e, k))};
                        }),
                  {is});
  Prog p = pb.finish({Atom(ys)});
  ArrayVal xv = make_f64_array({10, 20, 30}, {3});
  ArrayVal iv = make_i64_array({2, 0, 1, 2}, {4});
  auto r = run(p, {xv, iv, 2.0});
  EXPECT_EQ(to_f64_vec(as_array(r[0])), (std::vector<double>{60, 20, 40, 60}));
}

TEST(Interp, MultiOutputMap) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  auto ys = b.map(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.add(p[0], cf64(1.0))),
                                                   Atom(c.mul(p[0], cf64(2.0)))};
                        }),
                  {xs});
  Prog p = pb.finish({Atom(ys[0]), Atom(ys[1])});
  auto r = run(p, {make_f64_array({1, 2}, {2})});
  EXPECT_EQ(to_f64_vec(as_array(r[0])), (std::vector<double>{2, 3}));
  EXPECT_EQ(to_f64_vec(as_array(r[1])), (std::vector<double>{2, 4}));
}

TEST(Interp, NestedMapRankTwo) {
  ProgBuilder pb("f");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var yss = b.map1(b.lam({arr_f64(1)},
                         [](Builder& c, const std::vector<Var>& row) {
                           Var r = c.map1(c.lam({f64()},
                                                [](Builder& cc, const std::vector<Var>& p) {
                                                  return std::vector<Atom>{
                                                      Atom(cc.mul(p[0], p[0]))};
                                                }),
                                          {row[0]});
                           return std::vector<Atom>{Atom(r)};
                         }),
                   {xss});
  Prog p = pb.finish({Atom(yss)});
  ArrayVal in = make_f64_array({1, 2, 3, 4, 5, 6}, {2, 3});
  auto r = run(p, {in});
  EXPECT_EQ(to_f64_vec(as_array(r[0])), (std::vector<double>{1, 4, 9, 16, 25, 36}));
  EXPECT_EQ(as_array(r[0]).shape, (std::vector<int64_t>{2, 3}));
}

TEST(Interp, ReduceSumAndMax) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var s = b.reduce1(b.add_op(), cf64(0.0), {xs});
  Var m = b.reduce1(b.max_op(), cf64(-1e300), {xs});
  Prog p = pb.finish({Atom(s), Atom(m)});
  auto r = run(p, {make_f64_array({3, 1, 4, 1, 5}, {5})});
  EXPECT_DOUBLE_EQ(as_f64(r[0]), 14.0);
  EXPECT_DOUBLE_EQ(as_f64(r[1]), 5.0);
}

TEST(Interp, ReduceMultiValueArgmin) {
  // argmin via reduce over (value, index) pairs.
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var is = b.iota(b.length(xs));
  LambdaPtr op = b.lam({f64(), i64(), f64(), i64()},
                       [](Builder& c, const std::vector<Var>& p) {
                         Var take_a = c.le(p[0], p[2]);
                         Var v = c.select(take_a, p[0], p[2]);
                         Var i = c.select(take_a, p[1], p[3]);
                         return std::vector<Atom>{Atom(v), Atom(i)};
                       });
  auto mins = b.reduce(op, {cf64(1e300), ci64(-1)}, {xs, is});
  Prog p = pb.finish({Atom(mins[0]), Atom(mins[1])});
  auto r = run(p, {make_f64_array({3, 1, 4, 1, 5}, {5})});
  EXPECT_DOUBLE_EQ(as_f64(r[0]), 1.0);
  EXPECT_EQ(as_i64(r[1]), 1);
}

TEST(Interp, ScanInclusive) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var s = b.scan1(b.add_op(), cf64(0.0), {xs});
  Prog p = pb.finish({Atom(s)});
  auto r = run(p, {make_f64_array({1, 2, 3, 4}, {4})});
  EXPECT_EQ(to_f64_vec(as_array(r[0])), (std::vector<double>{1, 3, 6, 10}));
}

TEST(Interp, ScanGeneralOperatorLinearCompose) {
  // scan with (d,c) linear-function composition, as used by the vjp scan rule.
  ProgBuilder pb("f");
  Var ds = pb.param("ds", arr_f64(1));
  Var cs = pb.param("cs", arr_f64(1));
  Builder& b = pb.body();
  LambdaPtr lin = b.lam({f64(), f64(), f64(), f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          // (d1,c1) o (d2,c2) = (d2 + c2*d1, c2*c1)
                          Var d = c.add(p[2], c.mul(p[3], p[0]));
                          Var cc = c.mul(p[3], p[1]);
                          return std::vector<Atom>{Atom(d), Atom(cc)};
                        });
  auto outs = b.scan(lin, {cf64(0.0), cf64(1.0)}, {ds, cs});
  Prog p = pb.finish({Atom(outs[0]), Atom(outs[1])});
  auto r = run(p, {make_f64_array({1, 1, 1}, {3}), make_f64_array({2, 2, 2}, {3})});
  // d: 1, 1+2*1=3, 1+2*3=7 ; c: 2, 4, 8
  EXPECT_EQ(to_f64_vec(as_array(r[0])), (std::vector<double>{1, 3, 7}));
  EXPECT_EQ(to_f64_vec(as_array(r[1])), (std::vector<double>{2, 4, 8}));
}

TEST(Interp, HistogramAddAndMax) {
  ProgBuilder pb("f");
  Var dest = pb.param("dest", arr_f64(1));
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var h = b.hist(b.add_op(), cf64(0.0), dest, inds, vals);
  Prog p = pb.finish({Atom(h)});
  auto r = run(p, {make_f64_array({0, 0, 0}, {3}), make_i64_array({0, 1, 0, 5, -1}, {5}),
                   make_f64_array({1, 2, 3, 9, 9}, {5})});
  // Bin 5 and -1 are out of range and ignored.
  EXPECT_EQ(to_f64_vec(as_array(r[0])), (std::vector<double>{4, 2, 0}));
}

TEST(Interp, ScatterWritesRows) {
  ProgBuilder pb("f");
  Var dest = pb.param("dest", arr_f64(2));
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(2));
  Builder& b = pb.body();
  Var s = b.scatter(dest, inds, vals);
  Prog p = pb.finish({Atom(s)});
  auto r = run(p, {make_f64_array({0, 0, 0, 0, 0, 0}, {3, 2}),
                   make_i64_array({2, 0}, {2}), make_f64_array({1, 2, 3, 4}, {2, 2})});
  EXPECT_EQ(to_f64_vec(as_array(r[0])), (std::vector<double>{3, 4, 0, 0, 1, 2}));
}

TEST(Interp, ForLoopGeometric) {
  ProgBuilder pb("f");
  Var x0 = pb.param("x0", f64());
  Var n = pb.param("n", i64());
  Builder& b = pb.body();
  auto outs = b.loop_for({Atom(x0)}, Atom(n), [](Builder& c, Var, const std::vector<Var>& ps) {
    return std::vector<Atom>{Atom(c.mul(ps[0], cf64(2.0)))};
  });
  Prog p = pb.finish({Atom(outs[0])});
  EXPECT_DOUBLE_EQ(as_f64(run(p, {1.5, int64_t{4}})[0]), 1.5 * 16);
}

TEST(Interp, WhileLoopRunsUntilCondFails) {
  ProgBuilder pb("f");
  Var x0 = pb.param("x0", f64());
  Builder& b = pb.body();
  auto outs = b.loop_while(
      {Atom(x0)},
      [](Builder& c, const std::vector<Var>& ps) {
        return std::vector<Atom>{Atom(c.lt(ps[0], cf64(100.0)))};
      },
      [](Builder& c, Var, const std::vector<Var>& ps) {
        return std::vector<Atom>{Atom(c.mul(ps[0], cf64(3.0)))};
      });
  Prog p = pb.finish({Atom(outs[0])});
  EXPECT_DOUBLE_EQ(as_f64(run(p, {1.0})[0]), 243.0);
}

TEST(Interp, UpdateInPlaceAndIndex) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var xs2 = b.update(xs, {ci64(1)}, cf64(42.0));
  Var e = b.index(xs2, {ci64(1)});
  Prog p = pb.finish({Atom(xs2), Atom(e)});
  auto r = run(p, {make_f64_array({1, 2, 3}, {3})});
  EXPECT_EQ(to_f64_vec(as_array(r[0])), (std::vector<double>{1, 42, 3}));
  EXPECT_DOUBLE_EQ(as_f64(r[1]), 42.0);
}

TEST(Interp, WithAccAccumulatesAtomically) {
  ProgBuilder pb("f");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Var vs = pb.param("vs", arr_f64(1));
  Builder& b = pb.body();
  auto outs = b.withacc({dest}, [&](Builder& c, const std::vector<Var>& accs) {
    LambdaPtr f = c.lam({i64(), f64(), acc_of(arr_f64(1))},
                        [](Builder& cc, const std::vector<Var>& p) {
                          Var a2 = cc.upd_acc(p[2], {Atom(p[0])}, Atom(p[1]));
                          return std::vector<Atom>{Atom(a2)};
                        });
    Var acc2 = c.map(f, {is, vs, accs[0]})[0];
    return std::vector<Atom>{Atom(acc2)};
  });
  Prog p = pb.finish({Atom(outs[0])});
  auto r = run(p, {make_f64_array({0, 0}, {2}), make_i64_array({0, 1, 0, 1, 0}, {5}),
                   make_f64_array({1, 2, 3, 4, 5}, {5})});
  EXPECT_EQ(to_f64_vec(as_array(r[0])), (std::vector<double>{9, 6}));
}

TEST(Interp, IotaReplicateReverseTranspose) {
  ProgBuilder pb("f");
  Var n = pb.param("n", i64());
  Builder& b = pb.body();
  Var io = b.iota(n);
  Var rep = b.replicate(ci64(2), io);   // 2 x n
  Var tr = b.transpose(rep);            // n x 2
  Var rv = b.reverse(io);
  Prog p = pb.finish({Atom(tr), Atom(rv)});
  auto r = run(p, {int64_t{3}});
  EXPECT_EQ(as_array(r[0]).shape, (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(to_i64_vec(as_array(r[0])), (std::vector<int64_t>{0, 0, 1, 1, 2, 2}));
  EXPECT_EQ(to_i64_vec(as_array(r[1])), (std::vector<int64_t>{2, 1, 0}));
}

TEST(Interp, KernelStatsCountFastPath) {
  ProgBuilder pb("f");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.tanh(p[0]))};
                        }),
                  {xs});
  Prog p = pb.finish({Atom(ys)});
  typecheck(p);
  Interp in({.parallel = true, .use_kernels = true, .grain = 16});
  auto r = in.run(p, {make_f64_array({0.5, -0.5}, {2})});
  (void)r;
  EXPECT_EQ(in.stats().kernel_maps.load(), 1u);
  EXPECT_EQ(in.stats().general_maps.load(), 0u);
}

} // namespace
