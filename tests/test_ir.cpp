// Unit tests for the IR substrate: builder, printer, free-variable analysis,
// lambda inlining, pattern recognition and the type checker.

#include <gtest/gtest.h>

#include "ir/analysis.hpp"
#include "ir/builder.hpp"
#include "ir/patterns.hpp"
#include "ir/print.hpp"
#include "ir/typecheck.hpp"
#include "ir/visit.hpp"

namespace {

using namespace npad::ir;

Prog make_square_prog() {
  ProgBuilder pb("square");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var y = b.mul(x, x);
  return pb.finish({Atom(y)});
}

TEST(Ir, BuildAndPrintScalarProgram) {
  Prog p = make_square_prog();
  EXPECT_EQ(p.fn.params.size(), 1u);
  EXPECT_EQ(p.fn.rets.size(), 1u);
  EXPECT_EQ(p.fn.rets[0], f64());
  std::string s = to_string(p);
  EXPECT_NE(s.find("square"), std::string::npos);
  EXPECT_NE(s.find("*"), std::string::npos);
}

TEST(Ir, TypecheckAcceptsWellFormed) {
  Prog p = make_square_prog();
  EXPECT_NO_THROW(typecheck(p));
}

TEST(Ir, TypecheckRejectsUnbound) {
  ProgBuilder pb("bad");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var y = b.mul(x, x);
  Prog p = pb.finish({Atom(y)});
  // Corrupt: reference a fresh unbound var.
  Var ghost = p.mod->fresh("ghost");
  p.fn.body.result[0] = Atom(ghost);
  p.fn.rets[0] = f64();
  EXPECT_THROW(typecheck(p), TypeError);
}

TEST(Ir, TypecheckRejectsDtypeMismatch) {
  ProgBuilder pb("bad2");
  Var x = pb.param("x", f64());
  Builder& b = pb.body();
  Var y = b.mul(x, x);
  Prog p = pb.finish({Atom(y)});
  // Corrupt the statement's declared type.
  p.fn.body.stms[0].types[0] = i64();
  EXPECT_THROW(typecheck(p), TypeError);
}

TEST(Ir, MapReduceTypesInferred) {
  ProgBuilder pb("dot");
  Var xs = pb.param("xs", arr_f64(1));
  Var ys = pb.param("ys", arr_f64(1));
  Builder& b = pb.body();
  Var prods = b.map1(b.lam({f64(), f64()},
                           [](Builder& c, const std::vector<Var>& p) {
                             return std::vector<Atom>{Atom(c.mul(p[0], p[1]))};
                           }),
                     {xs, ys});
  Var s = b.reduce1(b.add_op(), cf64(0.0), {prods});
  Prog p = pb.finish({Atom(s)});
  EXPECT_NO_THROW(typecheck(p));
  EXPECT_EQ(p.fn.rets[0], f64());
}

TEST(Ir, FreeVarsOfLambdaExcludeParams) {
  ProgBuilder pb("fv");
  Var xs = pb.param("xs", arr_f64(1));
  Var c = pb.param("c", f64());
  Builder& b = pb.body();
  LambdaPtr f = b.lam({f64()}, [&](Builder& cb, const std::vector<Var>& p) {
    return std::vector<Atom>{Atom(cb.mul(p[0], c))};
  });
  Var ys = b.map1(f, {xs});
  Prog p = pb.finish({Atom(ys)});
  (void)p;
  std::vector<Var> fv = free_vars(*f);
  ASSERT_EQ(fv.size(), 1u);
  EXPECT_EQ(fv[0], c);
}

TEST(Ir, FreeVarsSeeThroughNestedScopes) {
  ProgBuilder pb("fv2");
  Var k = pb.param("k", f64());
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  LambdaPtr f = b.lam({f64()}, [&](Builder& cb, const std::vector<Var>& p) {
    Var cond = cb.lt(p[0], cf64(0.0));
    Var r = cb.if1(
        cond, [&](Builder& tb) { return std::vector<Atom>{Atom(tb.mul(p[0], k))}; },
        [&](Builder& fb) { return std::vector<Atom>{Atom(fb.add(p[0], cf64(1.0)))}; });
    return std::vector<Atom>{Atom(r)};
  });
  std::vector<Var> fv = free_vars(*f);
  ASSERT_EQ(fv.size(), 1u);
  EXPECT_EQ(fv[0], k);
  Var ys = b.map1(f, {xs});
  Prog p = pb.finish({Atom(ys)});
  EXPECT_NO_THROW(typecheck(p));
}

TEST(Ir, InlineLambdaSubstitutesAndRefreshes) {
  ProgBuilder pb("inl");
  Var a = pb.param("a", f64());
  Builder& b = pb.body();
  LambdaPtr f = b.lam({f64(), f64()}, [](Builder& c, const std::vector<Var>& p) {
    Var s = c.add(p[0], p[1]);
    return std::vector<Atom>{Atom(c.mul(s, s))};
  });
  auto [stms, res] = inline_lambda(b.module(), *f, {Atom(a), cf64(3.0)});
  ASSERT_EQ(stms.size(), 2u);
  ASSERT_EQ(res.size(), 1u);
  // Bindings must have been refreshed (different from the lambda's own vars).
  EXPECT_NE(stms[0].vars[0].id, f->body.stms[0].vars[0].id);
  // The add statement must reference `a` and the constant.
  const auto* add = std::get_if<OpBin>(&stms[0].e);
  ASSERT_NE(add, nullptr);
  EXPECT_TRUE(add->a.is_var() && add->a.var() == a);
  EXPECT_TRUE(add->b.is_const());
}

TEST(Ir, RecognizeBinopLambdas) {
  ProgBuilder pb("rec");
  Builder& b = pb.body();
  EXPECT_EQ(recognize_binop(*b.add_op()), BinOp::Add);
  EXPECT_EQ(recognize_binop(*b.mul_op()), BinOp::Mul);
  EXPECT_EQ(recognize_binop(*b.min_op()), BinOp::Min);
  LambdaPtr weird = b.lam({f64(), f64()}, [](Builder& c, const std::vector<Var>& p) {
    Var t = c.mul(p[0], p[1]);
    return std::vector<Atom>{Atom(c.add(t, cf64(1.0)))};
  });
  EXPECT_FALSE(recognize_binop(*weird).has_value());
}

TEST(Ir, CountStmsRecursesNests) {
  ProgBuilder pb("cnt");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var ys = b.map1(b.lam({f64()},
                        [](Builder& c, const std::vector<Var>& p) {
                          Var t = c.mul(p[0], p[0]);
                          return std::vector<Atom>{Atom(c.add(t, cf64(1.0)))};
                        }),
                  {xs});
  Prog p = pb.finish({Atom(ys)});
  EXPECT_EQ(count_stms(p.fn.body), 3u);  // map + two lambda stms
}

TEST(Ir, LoopBuilderProducesTypedLoop) {
  ProgBuilder pb("lp");
  Var x0 = pb.param("x0", f64());
  Var n = pb.param("n", i64());
  Builder& b = pb.body();
  auto outs = b.loop_for({Atom(x0)}, Atom(n), [](Builder& c, Var, const std::vector<Var>& ps) {
    return std::vector<Atom>{Atom(c.mul(ps[0], cf64(1.5)))};
  });
  Prog p = pb.finish({Atom(outs[0])});
  EXPECT_NO_THROW(typecheck(p));
}

TEST(Ir, ScatterAndHistTypecheck) {
  ProgBuilder pb("sc");
  Var dest = pb.param("dest", arr_f64(1));
  Var inds = pb.param("inds", arr(ScalarType::I64, 1));
  Var vals = pb.param("vals", arr_f64(1));
  Builder& b = pb.body();
  Var s = b.scatter(dest, inds, vals);
  Var h = b.hist(b.add_op(), cf64(0.0), s, inds, vals);
  Prog p = pb.finish({Atom(h)});
  EXPECT_NO_THROW(typecheck(p));
}

TEST(Ir, WithAccTypecheck) {
  ProgBuilder pb("wa");
  Var dest = pb.param("dest", arr_f64(1));
  Var is = pb.param("is", arr(ScalarType::I64, 1));
  Builder& b = pb.body();
  auto outs = b.withacc({dest}, [&](Builder& c, const std::vector<Var>& accs) {
    LambdaPtr f = c.lam({i64(), acc_of(arr_f64(1))},
                        [](Builder& cc, const std::vector<Var>& p) {
                          Var a2 = cc.upd_acc(p[1], {Atom(p[0])}, cf64(1.0));
                          return std::vector<Atom>{Atom(a2)};
                        });
    Var acc2 = c.map(f, {is, accs[0]})[0];
    return std::vector<Atom>{Atom(acc2)};
  });
  Prog p = pb.finish({Atom(outs[0])});
  EXPECT_NO_THROW(typecheck(p));
}

} // namespace
