// Cross-implementation agreement tests for the nine benchmark applications:
// every IR objective gradient is checked against finite differences, and the
// manual / eager / tape implementations are checked against the IR AD result.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/ba.hpp"
#include "apps/gmm.hpp"
#include "apps/hand.hpp"
#include "apps/kmeans.hpp"
#include "apps/lstm.hpp"
#include "apps/mc_transport.hpp"
#include "core/ad.hpp"
#include "core/gradcheck.hpp"
#include "ir/analysis.hpp"
#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "opt/loopopt.hpp"
#include "runtime/interp.hpp"

namespace {

using namespace npad;
using rt::Value;

void expect_close(const std::vector<double>& a, const std::vector<double>& b, double tol,
                  const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    const double err = std::fabs(a[i] - b[i]) /
                       std::max(1.0, std::max(std::fabs(a[i]), std::fabs(b[i])));
    ASSERT_LT(err, tol) << what << " index " << i << ": " << a[i] << " vs " << b[i];
  }
}

// ------------------------------------------------------------------ GMM ----

TEST(AppGmm, IrGradMatchesFiniteDifferences) {
  support::Rng rng(1);
  auto g = apps::gmm_gen(rng, 6, 3, 2);
  ir::Prog p = apps::gmm_ir_objective();
  ir::typecheck(p);
  auto r = ad::check_gradients(p, apps::gmm_ir_args(g), 1e-6, 1e-4);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

TEST(AppGmm, ManualAndEagerMatchIrAd) {
  support::Rng rng(2);
  auto g = apps::gmm_gen(rng, 10, 4, 3);
  ir::Prog p = apps::gmm_ir_objective();
  auto grads = ad::reverse_gradients(p, apps::gmm_ir_args(g));
  auto manual = apps::gmm_manual(g);
  auto eagerr = apps::gmm_eager(g);
  // Objective values agree.
  auto obj = rt::run_prog(p, apps::gmm_ir_args(g));
  EXPECT_NEAR(rt::as_f64(obj[0]), manual.objective, 1e-8);
  EXPECT_NEAR(manual.objective, eagerr.objective, 1e-8);
  expect_close(grads[0], manual.d_alphas, 1e-8, "alphas manual");
  expect_close(grads[1], manual.d_means, 1e-8, "means manual");
  expect_close(grads[2], manual.d_qs, 1e-8, "qs manual");
  expect_close(grads[0], eagerr.d_alphas, 1e-8, "alphas eager");
  expect_close(grads[1], eagerr.d_means, 1e-8, "means eager");
  expect_close(grads[2], eagerr.d_qs, 1e-8, "qs eager");
}

// --------------------------------------------------------------- k-means ---

TEST(AppKmeans, DenseAllImplementationsAgree) {
  support::Rng rng(3);
  auto data = apps::kmeans_gen(rng, 30, 3, 4);
  ir::Prog p = apps::kmeans_ir_cost();
  ir::typecheck(p);
  std::vector<Value> args = {rt::make_f64_array(data.centroids, {data.k, data.d}),
                             rt::make_f64_array(data.points, {data.n, data.d})};
  auto grads = ad::reverse_gradients(p, args);
  auto manual = apps::kmeans_manual(data);
  auto eagerr = apps::kmeans_eager(data);
  expect_close(grads[0], manual.grad, 1e-8, "kmeans manual grad");
  expect_close(grads[0], eagerr.grad, 1e-7, "kmeans eager grad");
  auto cost = rt::run_prog(p, args);
  EXPECT_NEAR(rt::as_f64(cost[0]), manual.cost, 1e-8);
}

TEST(AppKmeans, HessianDiagonalViaJvpOfVjpMatchesManual) {
  support::Rng rng(4);
  auto data = apps::kmeans_gen(rng, 20, 2, 3);
  ir::Prog p = apps::kmeans_ir_cost();
  ir::Prog g = ad::vjp(p);   // (C, P, seed) -> (cost, dC, dP)
  ir::Prog h = ad::jvp(g);   // + tangents
  ir::typecheck(h);
  auto manual = apps::kmeans_manual(data);
  // One jvp evaluation per diagonal entry probes H[e,e].
  const int64_t kd = data.k * data.d;
  for (int64_t e = 0; e < kd; e += std::max<int64_t>(1, kd / 4)) {
    std::vector<double> dir(static_cast<size_t>(kd), 0.0);
    dir[static_cast<size_t>(e)] = 1.0;
    std::vector<Value> args = {
        rt::make_f64_array(data.centroids, {data.k, data.d}),
        rt::make_f64_array(data.points, {data.n, data.d}),
        1.0,
        rt::make_f64_array(dir, {data.k, data.d}),
        rt::make_f64_array(std::vector<double>(static_cast<size_t>(data.n * data.d), 0.0),
                           {data.n, data.d}),
        0.0,
    };
    auto out = rt::run_prog(h, args);
    // Outputs: cost, dC, dP, cost_tan, dC_tan, dP_tan.
    auto hcol = rt::to_f64_vec(rt::as_array(out[4]));
    EXPECT_NEAR(hcol[static_cast<size_t>(e)], manual.hess_diag[static_cast<size_t>(e)], 1e-6)
        << e;
  }
}

TEST(AppKmeans, SparseAllImplementationsAgree) {
  support::Rng rng(5);
  auto data = apps::kmeans_sparse_gen(rng, 25, 8, 3, 3);
  ir::Prog p = apps::kmeans_sparse_ir_cost();
  ir::typecheck(p);
  auto args = apps::kmeans_sparse_ir_args(data);
  auto r = ad::check_gradients(p, args, 1e-6, 1e-4);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
  auto grads = ad::reverse_gradients(p, args);
  auto manual = apps::kmeans_sparse_manual(data);
  auto eagerr = apps::kmeans_sparse_eager(data);
  expect_close(grads[0], manual.grad, 1e-8, "sparse manual grad");
  expect_close(grads[0], eagerr.grad, 1e-7, "sparse eager grad");
}

// ------------------------------------------------------------------ LSTM ---

TEST(AppLstm, AllImplementationsAgree) {
  support::Rng rng(6);
  auto L = apps::lstm_gen(rng, 2, 3, 4, 3);
  ir::Prog p = apps::lstm_ir_objective();
  ir::typecheck(p);
  auto args = apps::lstm_ir_args(L);
  auto obj = rt::run_prog(p, args);
  auto manual = apps::lstm_manual(L);
  auto eagerr = apps::lstm_eager(L);
  EXPECT_NEAR(rt::as_f64(obj[0]), manual.objective, 1e-8);
  EXPECT_NEAR(manual.objective, eagerr.objective, 1e-8);
  auto grads = ad::reverse_gradients(p, args);
  expect_close(grads[0], manual.d_wx, 1e-7, "wx manual");
  expect_close(grads[1], manual.d_wh, 1e-7, "wh manual");
  expect_close(grads[2], manual.d_b, 1e-7, "b manual");
  expect_close(grads[0], eagerr.d_wx, 1e-7, "wx eager");
  expect_close(grads[1], eagerr.d_wh, 1e-7, "wh eager");
  expect_close(grads[2], eagerr.d_b, 1e-7, "b eager");
}

TEST(AppLstm, IrGradMatchesFiniteDifferences) {
  support::Rng rng(7);
  auto L = apps::lstm_gen(rng, 1, 2, 3, 2);
  ir::Prog p = apps::lstm_ir_objective();
  auto r = ad::check_gradients(p, apps::lstm_ir_args(L), 1e-6, 2e-4);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

// -------------------------------------------------------------------- BA ---

TEST(AppBa, IrResidualsMatchTemplatedKernel) {
  support::Rng rng(8);
  auto d = apps::ba_gen(rng, 2, 5, 8);
  ir::Prog p = apps::ba_ir_residuals();
  ir::typecheck(p);
  auto out = rt::run_prog(p, apps::ba_ir_args(d));
  auto e0 = rt::to_f64_vec(rt::as_array(out[0]));
  auto e1 = rt::to_f64_vec(rt::as_array(out[1]));
  auto werr = rt::to_f64_vec(rt::as_array(out[2]));
  for (int64_t o = 0; o < d.n_obs; ++o) {
    double proj[2];
    apps::ba_project(d.cams.data() + d.cam_idx[static_cast<size_t>(o)] * 11,
                     d.pts.data() + d.pt_idx[static_cast<size_t>(o)] * 3, proj);
    const double w = d.weights[static_cast<size_t>(o)];
    EXPECT_NEAR(e0[static_cast<size_t>(o)],
                w * (proj[0] - d.feats[static_cast<size_t>(o * 2)]), 1e-9);
    EXPECT_NEAR(e1[static_cast<size_t>(o)],
                w * (proj[1] - d.feats[static_cast<size_t>(o * 2 + 1)]), 1e-9);
    EXPECT_NEAR(werr[static_cast<size_t>(o)], 1.0 - w * w, 1e-12);
  }
}

TEST(AppBa, JvpJacobianColumnMatchesTape) {
  support::Rng rng(9);
  auto d = apps::ba_gen(rng, 1, 2, 3);
  ir::Prog p = apps::ba_ir_residuals();
  ir::Prog j = ad::jvp(p);
  ir::typecheck(j);
  // Seed camera parameter 0 (rotation r0) of all cameras; compare the first
  // residual's derivative against a tape row.
  std::vector<double> cam_tan(static_cast<size_t>(d.n_cams * 11), 0.0);
  for (int64_t c = 0; c < d.n_cams; ++c) cam_tan[static_cast<size_t>(c * 11)] = 1.0;
  auto args = apps::ba_ir_args(d);
  args.push_back(rt::make_f64_array(cam_tan, {d.n_cams, 11}));
  args.push_back(rt::make_f64_array(std::vector<double>(static_cast<size_t>(d.n_pts * 3), 0.0),
                                    {d.n_pts, 3}));
  args.push_back(rt::make_f64_array(std::vector<double>(static_cast<size_t>(d.n_obs), 0.0),
                                    {d.n_obs}));
  args.push_back(rt::make_f64_array(std::vector<double>(static_cast<size_t>(d.n_obs * 2), 0.0),
                                    {d.n_obs, 2}));
  auto out = rt::run_prog(j, args);
  auto de0 = rt::to_f64_vec(rt::as_array(out[3]));  // tangent of e0
  std::vector<double> rows;
  apps::ba_tape_jacobian(d, &rows);
  // Tape rows: per obs, per comp: 11 cam + 3 pt + 1 w entries.
  for (int64_t o = 0; o < d.n_obs; ++o) {
    const double tape_val = rows[static_cast<size_t>((o * 2 + 0) * 15 + 0)];
    EXPECT_NEAR(de0[static_cast<size_t>(o)], tape_val, 1e-7) << o;
  }
}

// ------------------------------------------------------------------ HAND ---

TEST(AppHand, IrResidualsMatchTemplatedKernel) {
  support::Rng rng(10);
  auto d = apps::hand_gen(rng, 3, 6);
  for (bool complicated : {false, true}) {
    ir::Prog p = apps::hand_ir_residuals(complicated);
    ir::typecheck(p);
    auto out = rt::run_prog(p, apps::hand_ir_args(d, complicated));
    std::vector<double> ref(static_cast<size_t>(d.nverts * 3));
    apps::hand_residuals<double>(d, d.theta.data(), complicated ? d.us.data() : nullptr,
                                 ref.data());
    for (int64_t v = 0; v < d.nverts; ++v) {
      for (int i = 0; i < 3; ++i) {
        EXPECT_NEAR(rt::to_f64_vec(rt::as_array(out[static_cast<size_t>(i)]))[static_cast<size_t>(v)],
                    ref[static_cast<size_t>(v * 3 + i)], 1e-9)
            << complicated << " v=" << v << " i=" << i;
      }
    }
  }
}

TEST(AppHand, VjpGradChecksOnScalarizedObjective) {
  support::Rng rng(11);
  auto d = apps::hand_gen(rng, 2, 4);
  // Wrap the residuals into sum-of-squares to gradcheck theta.
  ir::Prog p = apps::hand_ir_residuals(true);
  // Append a reduction over residuals.
  {
    ir::TypeMap tm = ir::collect_types(p.fn);
    ir::Builder b(*p.mod, tm);
    for (auto& s : p.fn.body.stms) b.push(s);
    std::vector<ir::Var> sums;
    for (auto& res : p.fn.body.result) {
      ir::Var sq = b.map1(b.lam({ir::f64()},
                                [](ir::Builder& c, const std::vector<ir::Var>& q) {
                                  return std::vector<ir::Atom>{ir::Atom(c.mul(q[0], q[0]))};
                                }),
                          {res.var()});
      sums.push_back(b.reduce1(b.add_op(), ir::cf64(0.0), {sq}));
    }
    ir::Var t = b.add(ir::Atom(sums[0]), ir::Atom(sums[1]));
    ir::Var total = b.add(ir::Atom(t), ir::Atom(sums[2]));
    p.fn.body = ir::Body{b.take_stms(), {ir::Atom(total)}};
    p.fn.rets = {ir::f64()};
  }
  ir::typecheck(p);
  auto r = ad::check_gradients(p, apps::hand_ir_args(d, true), 1e-6, 2e-4);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

// ------------------------------------------------------- XSBench/RSBench ---

TEST(AppXs, PrimalMatchesAndGradChecks) {
  support::Rng rng(12);
  auto d = apps::xs_gen(rng, 3, 16, 5);
  ir::Prog p = apps::xs_ir_objective();
  ir::typecheck(p);
  auto out = rt::run_prog(p, apps::xs_ir_args(d));
  EXPECT_NEAR(rt::as_f64(out[0]), apps::xs_primal(d), 1e-8);
  auto r = ad::check_gradients(p, apps::xs_ir_args(d), 1e-6, 1e-4);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
  // Tape gradient agrees with IR vjp on the xs data.
  std::vector<double> tape_grad;
  apps::xs_tape_gradient(d, &tape_grad);
  auto grads = ad::reverse_gradients(p, apps::xs_ir_args(d));
  expect_close(grads[1], tape_grad, 1e-8, "xs tape grad");
}

TEST(AppRs, PrimalMatchesAndGradChecks) {
  support::Rng rng(13);
  auto d = apps::rs_gen(rng, 3, 8, 6);
  ir::Prog p = apps::rs_ir_objective();
  ir::typecheck(p);
  auto out = rt::run_prog(p, apps::rs_ir_args(d));
  EXPECT_NEAR(rt::as_f64(out[0]), apps::rs_primal(d), 1e-8);
  auto r = ad::check_gradients(p, apps::rs_ir_args(d), 1e-6, 1e-4);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

// ------------------------------------------------------------------ tape ---

TEST(TapeBaseline, GradientMatchesClosedForm) {
  auto g = tape::gradient({1.5, -2.0}, [](const std::vector<tape::Adouble>& x) {
    return tape::exp(x[0]) * tape::sin(x[1]) + x[0] * x[1];
  });
  EXPECT_NEAR(g[0], std::exp(1.5) * std::sin(-2.0) + (-2.0), 1e-12);
  EXPECT_NEAR(g[1], std::exp(1.5) * std::cos(-2.0) + 1.5, 1e-12);
}

} // namespace
