// Compiled execution plans (runtime/plan.hpp): conformance and counters.
//
// The contract under test is the one plan.hpp states: plans never change
// results. For each workload we run the program planned (the default) and
// plan-disabled (InterpOptions::use_plans = false) and require the outputs to
// be bit-exact — scalars compared as raw bit patterns, arrays as shape plus
// per-element bits. On top of the conformance sweep:
//
//   * counter plumbing: plans_compiled / plan_launches / plan_scalar_blocks /
//     plan_hoisted_buffers fire on a hand-built program that exercises every
//     step kind;
//   * the LSTM launch-count acceptance: one objective+gradient evaluation at
//     the bench D0 shape stays far below the pre-plan launch level;
//   * steady-state pool traffic: once a planned loop's buffer ring is warm,
//     extra iterations cost (almost) no pool round-trips;
//   * fallback coverage: while-free loops with data-dependent extents or
//     OpIf bodies, empty loops, and one-iteration loops all take the general
//     path (or degenerate planned paths) and still match bit-exact.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/gmm.hpp"
#include "apps/kmeans.hpp"
#include "apps/lstm.hpp"
#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "opt/pipeline.hpp"
#include "runtime/interp.hpp"
#include "runtime/plan.hpp"
#include "support/rng.hpp"

namespace {

using namespace npad::ir;
using namespace npad::rt;

// Plans pinned on regardless of NPAD_USE_PLANS (the CI plan-disabled leg
// must not turn these tests into no-ops).
InterpOptions plans_on() {
  InterpOptions o;
  o.use_plans = true;
  return o;
}

uint64_t bits_of(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::vector<uint64_t> fingerprint(const std::vector<Value>& vals) {
  std::vector<uint64_t> fp;
  for (const auto& v : vals) {
    if (std::holds_alternative<double>(v)) {
      fp.push_back(bits_of(std::get<double>(v)));
    } else if (std::holds_alternative<int64_t>(v)) {
      fp.push_back(static_cast<uint64_t>(std::get<int64_t>(v)));
    } else if (std::holds_alternative<bool>(v)) {
      fp.push_back(std::get<bool>(v) ? 1 : 0);
    } else if (is_array(v)) {
      const ArrayVal& a = as_array(v);
      for (int64_t s : a.shape) fp.push_back(static_cast<uint64_t>(s));
      const int64_t ne = a.elems();
      for (int64_t i = 0; i < ne; ++i) {
        if (a.elem == ScalarType::F64) {
          fp.push_back(bits_of(a.get_f64(i)));
        } else {
          fp.push_back(static_cast<uint64_t>(a.get_i64(i)));
        }
      }
    }
  }
  return fp;
}

// Runs `p` planned and plan-disabled and asserts bit-exact agreement.
// Returns the planned result for further checks.
std::vector<Value> expect_plan_conformant(const Prog& p, const std::vector<Value>& args,
                                          const char* what) {
  InterpOptions planned;
  planned.use_plans = true;  // pinned: tests must not depend on NPAD_USE_PLANS
  InterpOptions general;
  general.use_plans = false;
  auto a = run_prog(p, args, planned);
  auto b = run_prog(p, args, general);
  EXPECT_EQ(fingerprint(a), fingerprint(b)) << what << ": planned vs plan-disabled diverged";
  // And planned execution itself is deterministic across runs.
  EXPECT_EQ(fingerprint(a), fingerprint(run_prog(p, args, planned)))
      << what << ": planned execution is not deterministic";
  return a;
}

// ------------------------------------------------- app conformance (fwd+rev)

TEST(PlanConformance, GmmObjectiveAndGradient) {
  npad::support::Rng rng(31);
  auto g = npad::apps::gmm_gen(rng, 64, 4, 5);
  Prog p = npad::apps::gmm_ir_objective();
  typecheck(p);
  auto args = npad::apps::gmm_ir_args(g);
  expect_plan_conformant(p, args, "gmm objective");

  Prog grad = npad::ad::vjp(p);
  typecheck(grad);
  args.emplace_back(1.0);
  expect_plan_conformant(grad, args, "gmm gradient");
}

TEST(PlanConformance, LstmObjectiveAndGradientOptimized) {
  npad::support::Rng rng(32);
  auto L = npad::apps::lstm_gen(rng, 4, 6, 8, 10);
  // Same preparation as bench_table6_lstm: differentiate, then fuse+flatten.
  Prog obj = npad::apps::lstm_ir_objective();
  typecheck(obj);
  Prog grad = npad::ad::vjp(obj);
  obj = npad::opt::optimize(obj);
  grad = npad::opt::optimize(grad);
  typecheck(obj);
  typecheck(grad);
  auto args = npad::apps::lstm_ir_args(L);
  expect_plan_conformant(obj, args, "lstm objective");
  args.emplace_back(1.0);
  expect_plan_conformant(grad, args, "lstm gradient");
}

TEST(PlanConformance, KmeansCostAndGradient) {
  npad::support::Rng rng(33);
  auto d = npad::apps::kmeans_gen(rng, 48, 3, 4);
  Prog p = npad::apps::kmeans_ir_cost();
  typecheck(p);
  std::vector<Value> args = {make_f64_array(d.centroids, {d.k, d.d}),
                             make_f64_array(d.points, {d.n, d.d})};
  expect_plan_conformant(p, args, "kmeans cost");

  Prog grad = npad::ad::vjp(p);
  typecheck(grad);
  args.emplace_back(1.0);
  expect_plan_conformant(grad, args, "kmeans gradient");
}

// --------------------------------------------------------- step counters ---

// A planned loop whose body exercises every plan step kind: a scalar-glue
// run (folds into one Scalars block), a kernelizable rank-1 map (MapLaunch
// with the kernel pre-bound), and a carried array (hoisted launch buffers).
Prog all_steps_prog(int64_t iters) {
  ProgBuilder pb("steps");
  Var x = pb.param("x", f64());
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  // Top-level scalar glue: two consecutive pure scalar bindings.
  Var a = b.mul(x, cf64(2.0));
  Var c = b.add(a, cf64(3.0));
  auto outs = b.loop_for(
      {Atom(xs)}, Atom(ci64(iters)),
      [&](Builder& lb, Var, const std::vector<Var>& st) {
        // In-loop scalar glue run.
        Var s1 = lb.mul(c, cf64(0.5));
        Var s2 = lb.add(s1, cf64(1.0));
        Var next = lb.map1(lb.lam({f64()},
                                  [&](Builder& cc, const std::vector<Var>& p) {
                                    Var t = cc.mul(p[0], cf64(0.999));
                                    return std::vector<Atom>{Atom(cc.add(t, Atom(s2)))};
                                  }),
                           {st[0]});
        return std::vector<Atom>{Atom(next)};
      });
  return pb.finish({Atom(outs[0])});
}

TEST(PlanCounters, EveryStepKindFires) {
  Prog p = all_steps_prog(10);
  typecheck(p);
  npad::support::Rng rng(34);
  std::vector<Value> args = {0.7,
                             make_f64_array(rng.uniform_vec(4096, -1.0, 1.0), {4096})};
  Interp in{plans_on()};
  auto r = in.run(p, args);
  ASSERT_EQ(r.size(), 1u);
  const auto& st = in.stats();
  // Top-level plan + the loop-body plan.
  EXPECT_GE(st.plans_compiled.load(), 2u);
  // One MapLaunch per iteration.
  EXPECT_GE(st.plan_launches.load(), 10u);
  // One Scalars block per iteration plus the top-level run.
  EXPECT_GE(st.plan_scalar_blocks.load(), 11u);
  // Double-buffered carry: after a two-iteration warm-up every iteration's
  // launch buffer comes from the loop ring, not the pool.
  EXPECT_GE(st.plan_hoisted_buffers.load(), 7u);

  // The counters describe a real execution: conformance still holds.
  expect_plan_conformant(p, args, "all-steps program");
}

// -------------------------------------------------------------- fallbacks --

// Data-dependent extent: the body materializes iota(carry), so the launch
// extent changes across iterations — loop_extents_invariant must reject it
// and the loop stays on the general evaluator (no hoisting ring).
TEST(PlanFallback, DataDependentExtentLoop) {
  ProgBuilder pb("dyn");
  Builder& b = pb.body();
  auto outs = b.loop_for(
      {Atom(ci64(1))}, Atom(ci64(6)),
      [](Builder& lb, Var, const std::vector<Var>& st) {
        Var ys = lb.iota(Atom(st[0]));
        Var n = lb.length(ys);
        return std::vector<Atom>{Atom(lb.add(n, ci64(1)))};
      });
  Prog p = pb.finish({Atom(outs[0])});
  typecheck(p);

  Interp in{plans_on()};
  auto r = in.run(p, {});
  EXPECT_EQ(std::get<int64_t>(r[0]), 7);  // 1 -> 2 -> 3 -> ... -> 7
  // The loop was not planned: no buffers were hoisted.
  EXPECT_EQ(in.stats().plan_hoisted_buffers.load(), 0u);
  expect_plan_conformant(p, {}, "data-dependent extent loop");
}

// OpIf in the body keeps the loop on the general path (branch-dependent
// extents are not provable), but results still agree bit-exact.
TEST(PlanFallback, OpIfInLoopBody) {
  ProgBuilder pb("br");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  auto outs = b.loop_for(
      {Atom(xs)}, Atom(ci64(8)),
      [](Builder& lb, Var i, const std::vector<Var>& st) {
        Var even = lb.eq(Atom(lb.mod(i, ci64(2))), ci64(0));
        std::vector<Var> picked = lb.if_(
            Atom(even),
            [&](Builder& tb) {
              Var next = tb.map1(tb.lam({f64()},
                                        [](Builder& cc, const std::vector<Var>& p) {
                                          return std::vector<Atom>{
                                              Atom(cc.mul(p[0], cf64(1.01)))};
                                        }),
                                 {st[0]});
              return std::vector<Atom>{Atom(next)};
            },
            [&](Builder& eb) {
              Var next = eb.map1(eb.lam({f64()},
                                        [](Builder& cc, const std::vector<Var>& p) {
                                          return std::vector<Atom>{
                                              Atom(cc.add(p[0], cf64(0.01)))};
                                        }),
                                 {st[0]});
              return std::vector<Atom>{Atom(next)};
            });
        return std::vector<Atom>{Atom(picked[0])};
      });
  Prog p = pb.finish({Atom(outs[0])});
  typecheck(p);
  npad::support::Rng rng(35);
  std::vector<Value> args = {make_f64_array(rng.uniform_vec(512, -1.0, 1.0), {512})};
  expect_plan_conformant(p, args, "OpIf loop body");
}

TEST(PlanFallback, EmptyAndSingleIterationLoops) {
  for (int64_t iters : {int64_t{0}, int64_t{1}}) {
    Prog p = all_steps_prog(iters);
    typecheck(p);
    npad::support::Rng rng(36);
    std::vector<Value> args = {0.3,
                               make_f64_array(rng.uniform_vec(256, -1.0, 1.0), {256})};
    auto r = expect_plan_conformant(p, args, iters == 0 ? "empty loop" : "one-iteration loop");
    ASSERT_TRUE(is_array(r[0]));
    EXPECT_EQ(as_array(r[0]).shape, (std::vector<int64_t>{256}));
  }
}

// ------------------------------------------------ LSTM launch acceptance ---

TEST(PlanAcceptance, LstmLaunchCountStaysLow) {
  npad::support::Rng rng(19);  // same seed/shape as bench_table6_lstm D0
  auto L = npad::apps::lstm_gen(rng, 16, 10, 24, 16);
  Prog obj = npad::apps::lstm_ir_objective();
  typecheck(obj);
  Prog grad = npad::ad::vjp(obj);
  obj = npad::opt::optimize(obj);
  grad = npad::opt::optimize(grad);
  auto args = npad::apps::lstm_ir_args(L);
  auto gargs = args;
  gargs.emplace_back(1.0);

  Interp in{plans_on()};
  in.run(obj, args);
  in.run(grad, gargs);
  // Before this PR one objective+gradient evaluation at this shape issued
  // tens of thousands of batched kernel spans (~60k: per-timestep per-gate
  // row launches); inlined inner SOACs plus planned launches cut that by
  // ~40x (measured ~1.5k). The ceiling leaves 2x headroom over the measured
  // level — still >10x below the old level — so a regression that undoes the
  // win fails loudly without the test being brittle.
  EXPECT_LE(in.stats().batched_launches.load(), 3000u)
      << "LSTM launch count regressed: batched_launches="
      << in.stats().batched_launches.load();
}

// --------------------------------------------------- steady-state pooling --

// Pool round-trips per iteration in the planned steady state are ~0: compare
// fresh-interpreter runs at n and 4n iterations — the extra 3n iterations
// must not add pool traffic beyond a small warm-up slack.
TEST(PlanSteadyState, ExtraIterationsAddNoPoolTraffic) {
  npad::support::Rng rng(37);
  std::vector<Value> args = {0.9,
                             make_f64_array(rng.uniform_vec(4096, -1.0, 1.0), {4096})};
  auto traffic = [&](int64_t iters) {
    Prog p = all_steps_prog(iters);
    typecheck(p);
    Interp in{plans_on()};
    in.run(p, args);
    return in.stats().pool_hits.load() + in.stats().pool_misses.load();
  };
  const uint64_t t10 = traffic(10);
  const uint64_t t40 = traffic(40);
  EXPECT_LE(t40, t10 + 2) << "planned loop iterations still round-trip the pool: "
                          << t10 << " @10 iters vs " << t40 << " @40 iters";
}

// ----------------------------------------- applied lambdas and OpIf arms ---

// A general-path rows map whose lambda body carries its own tabled plan: the
// inner map + reduce are launches, and the OpIf keeps the body off the
// kernel tier (row-stream params would otherwise compile the whole lambda),
// so every row crosses the planned apply() path and the If plan step.
Prog rows_sum_prog() {
  ProgBuilder pb("rows");
  Var xss = pb.param("xss", arr_f64(2));
  Builder& b = pb.body();
  Var sums = b.map1(
      b.lam({arr_f64(1)},
            [](Builder& c, const std::vector<Var>& row) {
              Var scaled = c.map1(c.lam({f64()},
                                        [](Builder& cc, const std::vector<Var>& p) {
                                          Var t = cc.mul(p[0], cf64(0.5));
                                          return std::vector<Atom>{Atom(cc.add(t, cf64(1.0)))};
                                        }),
                                  {row[0]});
              Var s = c.reduce1(c.add_op(), cf64(0.0), {scaled});
              // Arms with their own launches: the If compiles to a plan
              // step (trivial scalar arms would stay general).
              std::vector<Var> picked = c.if_(
                  Atom(c.gt(s, cf64(0.0))),
                  [&](Builder& tb) {
                    Var m = tb.map1(tb.lam({f64()},
                                           [](Builder& cc, const std::vector<Var>& p) {
                                             return std::vector<Atom>{
                                                 Atom(cc.mul(p[0], cf64(0.5)))};
                                           }),
                                    {scaled});
                    return std::vector<Atom>{Atom(tb.reduce1(tb.add_op(), cf64(0.0), {m}))};
                  },
                  [&](Builder& eb) {
                    Var m = eb.map1(eb.lam({f64()},
                                           [](Builder& cc, const std::vector<Var>& p) {
                                             return std::vector<Atom>{
                                                 Atom(cc.add(p[0], cf64(-1.0)))};
                                           }),
                                    {scaled});
                    return std::vector<Atom>{Atom(eb.reduce1(eb.add_op(), cf64(0.0), {m}))};
                  });
              return std::vector<Atom>{Atom(picked[0])};
            }),
      {xss});
  Var t = b.reduce1(b.add_op(), cf64(0.0), {sums});
  return pb.finish({Atom(t)});
}

TEST(PlanCounters, AppliedLambdaBodiesAndIfArms) {
  Prog p = rows_sum_prog();
  typecheck(p);
  npad::support::Rng rng(40);
  // Mixed-sign rows: both OpIf arms execute across the map, so the
  // conformance check covers both planned arm bodies.
  std::vector<Value> args = {make_f64_array(rng.uniform_vec(32 * 16, -3.0, 1.0), {32, 16})};
  Interp in{plans_on()};
  auto r = in.run(p, args);
  ASSERT_EQ(r.size(), 1u);
  const auto& st = in.stats();
  // Every row applies its lambda through the tabled body plan...
  EXPECT_GE(st.plan_lambda_bodies.load(), 32u);
  // ...and runs the body's OpIf as an If plan step.
  EXPECT_GE(st.plan_if_arms.load(), 32u);
  // The inner map's per-row launch buffers recycle through the launch arena.
  EXPECT_GT(st.arena_reuses.load(), 0u);
  expect_plan_conformant(p, args, "general rows map with planned lambda body");
}

// Both arms of a top-level OpIf, each a planned arm body, stay bit-exact
// against the plan-disabled path.
TEST(PlanConformance, IfBothArmsBitExact) {
  ProgBuilder pb("toplevel_if");
  Var x = pb.param("x", f64());
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  Var pos = b.gt(x, cf64(0.0));
  // Arms carry their own map launches so the If compiles to a plan step.
  std::vector<Var> picked = b.if_(
      Atom(pos),
      [&](Builder& tb) {
        Var m = tb.map1(tb.lam({f64()},
                               [](Builder& cc, const std::vector<Var>& p) {
                                 return std::vector<Atom>{Atom(cc.mul(p[0], cf64(2.0)))};
                               }),
                        {xs});
        return std::vector<Atom>{Atom(m)};
      },
      [&](Builder& eb) {
        Var m = eb.map1(eb.lam({f64()},
                               [](Builder& cc, const std::vector<Var>& p) {
                                 return std::vector<Atom>{Atom(cc.add(p[0], cf64(2.0)))};
                               }),
                        {xs});
        return std::vector<Atom>{Atom(m)};
      });
  Var s = b.reduce1(b.add_op(), cf64(0.0), {picked[0]});
  Prog p = pb.finish({Atom(s)});
  typecheck(p);
  npad::support::Rng rng(42);
  auto xs_val = make_f64_array(rng.uniform_vec(256, -1.0, 1.0), {256});
  for (double x0 : {0.7, -0.7}) {
    std::vector<Value> args = {Value(x0), xs_val};
    Interp in{plans_on()};
    in.run(p, args);
    EXPECT_GE(in.stats().plan_if_arms.load(), 1u) << "x=" << x0;
    expect_plan_conformant(p, args, x0 > 0 ? "if true arm" : "if false arm");
  }
}

// Launch arenas absorb per-row buffer churn: once the per-thread ring is
// warm, extra rows of the general map must not add pool round-trips — the
// inner map's launch buffers are recycled in place of pool traffic.
TEST(PlanSteadyState, ArenaAbsorbsPerRowPoolTraffic) {
  Prog p = rows_sum_prog();
  typecheck(p);
  auto traffic = [&](int64_t rows, uint64_t* reuses) {
    npad::support::Rng rng(41);
    std::vector<Value> args = {
        make_f64_array(rng.uniform_vec(rows * 16, -1.0, 1.0), {rows, 16})};
    Interp in{plans_on()};
    in.run(p, args);
    *reuses = in.stats().arena_reuses.load();
    return in.stats().pool_hits.load() + in.stats().pool_misses.load();
  };
  uint64_t reuse_small = 0, reuse_big = 0;
  const uint64_t t_small = traffic(8, &reuse_small);
  const uint64_t t_big = traffic(64, &reuse_big);
  // 56 extra rows: pool traffic stays flat up to per-thread warm-up slack
  // (each worker's arena primes its own ring)...
  EXPECT_LE(t_big, t_small + 32)
      << "per-row buffers still round-trip the pool: " << t_small << " @8 rows vs " << t_big
      << " @64 rows";
  // ...because the extra rows were fed from the arena instead.
  EXPECT_GT(reuse_big, reuse_small);
}

// Plan cache behavior: repeated runs of the same resolved program compile
// the plan once (process-wide), like the kernel cache.
TEST(PlanCache, CompilesOncePerProgram) {
  Prog p = all_steps_prog(4);
  typecheck(p);
  npad::support::Rng rng(38);
  std::vector<Value> args = {0.5,
                             make_f64_array(rng.uniform_vec(128, -1.0, 1.0), {128})};
  Interp first{plans_on()};
  first.run(p, args);
  const uint64_t compiled_first = first.stats().plans_compiled.load();
  EXPECT_GE(compiled_first, 2u);  // top-level + loop body
  Interp second{plans_on()};
  second.run(p, args);
  EXPECT_EQ(second.stats().plans_compiled.load(), 0u)
      << "second run recompiled a cached plan";
}

} // namespace
