// Compiled execution plans (runtime/plan.hpp): conformance and counters.
//
// The contract under test is the one plan.hpp states: plans never change
// results. For each workload we run the program planned (the default) and
// plan-disabled (InterpOptions::use_plans = false) and require the outputs to
// be bit-exact — scalars compared as raw bit patterns, arrays as shape plus
// per-element bits. On top of the conformance sweep:
//
//   * counter plumbing: plans_compiled / plan_launches / plan_scalar_blocks /
//     plan_hoisted_buffers fire on a hand-built program that exercises every
//     step kind;
//   * the LSTM launch-count acceptance: one objective+gradient evaluation at
//     the bench D0 shape stays far below the pre-plan launch level;
//   * steady-state pool traffic: once a planned loop's buffer ring is warm,
//     extra iterations cost (almost) no pool round-trips;
//   * fallback coverage: while-free loops with data-dependent extents or
//     OpIf bodies, empty loops, and one-iteration loops all take the general
//     path (or degenerate planned paths) and still match bit-exact.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/gmm.hpp"
#include "apps/kmeans.hpp"
#include "apps/lstm.hpp"
#include "core/ad.hpp"
#include "ir/builder.hpp"
#include "ir/typecheck.hpp"
#include "opt/pipeline.hpp"
#include "runtime/interp.hpp"
#include "runtime/plan.hpp"
#include "support/rng.hpp"

namespace {

using namespace npad::ir;
using namespace npad::rt;

uint64_t bits_of(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::vector<uint64_t> fingerprint(const std::vector<Value>& vals) {
  std::vector<uint64_t> fp;
  for (const auto& v : vals) {
    if (std::holds_alternative<double>(v)) {
      fp.push_back(bits_of(std::get<double>(v)));
    } else if (std::holds_alternative<int64_t>(v)) {
      fp.push_back(static_cast<uint64_t>(std::get<int64_t>(v)));
    } else if (std::holds_alternative<bool>(v)) {
      fp.push_back(std::get<bool>(v) ? 1 : 0);
    } else if (is_array(v)) {
      const ArrayVal& a = as_array(v);
      for (int64_t s : a.shape) fp.push_back(static_cast<uint64_t>(s));
      const int64_t ne = a.elems();
      for (int64_t i = 0; i < ne; ++i) {
        if (a.elem == ScalarType::F64) {
          fp.push_back(bits_of(a.get_f64(i)));
        } else {
          fp.push_back(static_cast<uint64_t>(a.get_i64(i)));
        }
      }
    }
  }
  return fp;
}

// Runs `p` planned and plan-disabled and asserts bit-exact agreement.
// Returns the planned result for further checks.
std::vector<Value> expect_plan_conformant(const Prog& p, const std::vector<Value>& args,
                                          const char* what) {
  InterpOptions planned;  // use_plans defaults to true
  InterpOptions general;
  general.use_plans = false;
  auto a = run_prog(p, args, planned);
  auto b = run_prog(p, args, general);
  EXPECT_EQ(fingerprint(a), fingerprint(b)) << what << ": planned vs plan-disabled diverged";
  // And planned execution itself is deterministic across runs.
  EXPECT_EQ(fingerprint(a), fingerprint(run_prog(p, args, planned)))
      << what << ": planned execution is not deterministic";
  return a;
}

// ------------------------------------------------- app conformance (fwd+rev)

TEST(PlanConformance, GmmObjectiveAndGradient) {
  npad::support::Rng rng(31);
  auto g = npad::apps::gmm_gen(rng, 64, 4, 5);
  Prog p = npad::apps::gmm_ir_objective();
  typecheck(p);
  auto args = npad::apps::gmm_ir_args(g);
  expect_plan_conformant(p, args, "gmm objective");

  Prog grad = npad::ad::vjp(p);
  typecheck(grad);
  args.emplace_back(1.0);
  expect_plan_conformant(grad, args, "gmm gradient");
}

TEST(PlanConformance, LstmObjectiveAndGradientOptimized) {
  npad::support::Rng rng(32);
  auto L = npad::apps::lstm_gen(rng, 4, 6, 8, 10);
  // Same preparation as bench_table6_lstm: differentiate, then fuse+flatten.
  Prog obj = npad::apps::lstm_ir_objective();
  typecheck(obj);
  Prog grad = npad::ad::vjp(obj);
  obj = npad::opt::optimize(obj);
  grad = npad::opt::optimize(grad);
  typecheck(obj);
  typecheck(grad);
  auto args = npad::apps::lstm_ir_args(L);
  expect_plan_conformant(obj, args, "lstm objective");
  args.emplace_back(1.0);
  expect_plan_conformant(grad, args, "lstm gradient");
}

TEST(PlanConformance, KmeansCostAndGradient) {
  npad::support::Rng rng(33);
  auto d = npad::apps::kmeans_gen(rng, 48, 3, 4);
  Prog p = npad::apps::kmeans_ir_cost();
  typecheck(p);
  std::vector<Value> args = {make_f64_array(d.centroids, {d.k, d.d}),
                             make_f64_array(d.points, {d.n, d.d})};
  expect_plan_conformant(p, args, "kmeans cost");

  Prog grad = npad::ad::vjp(p);
  typecheck(grad);
  args.emplace_back(1.0);
  expect_plan_conformant(grad, args, "kmeans gradient");
}

// --------------------------------------------------------- step counters ---

// A planned loop whose body exercises every plan step kind: a scalar-glue
// run (folds into one Scalars block), a kernelizable rank-1 map (MapLaunch
// with the kernel pre-bound), and a carried array (hoisted launch buffers).
Prog all_steps_prog(int64_t iters) {
  ProgBuilder pb("steps");
  Var x = pb.param("x", f64());
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  // Top-level scalar glue: two consecutive pure scalar bindings.
  Var a = b.mul(x, cf64(2.0));
  Var c = b.add(a, cf64(3.0));
  auto outs = b.loop_for(
      {Atom(xs)}, Atom(ci64(iters)),
      [&](Builder& lb, Var, const std::vector<Var>& st) {
        // In-loop scalar glue run.
        Var s1 = lb.mul(c, cf64(0.5));
        Var s2 = lb.add(s1, cf64(1.0));
        Var next = lb.map1(lb.lam({f64()},
                                  [&](Builder& cc, const std::vector<Var>& p) {
                                    Var t = cc.mul(p[0], cf64(0.999));
                                    return std::vector<Atom>{Atom(cc.add(t, Atom(s2)))};
                                  }),
                           {st[0]});
        return std::vector<Atom>{Atom(next)};
      });
  return pb.finish({Atom(outs[0])});
}

TEST(PlanCounters, EveryStepKindFires) {
  Prog p = all_steps_prog(10);
  typecheck(p);
  npad::support::Rng rng(34);
  std::vector<Value> args = {0.7,
                             make_f64_array(rng.uniform_vec(4096, -1.0, 1.0), {4096})};
  Interp in;  // plans on by default
  auto r = in.run(p, args);
  ASSERT_EQ(r.size(), 1u);
  const auto& st = in.stats();
  // Top-level plan + the loop-body plan.
  EXPECT_GE(st.plans_compiled.load(), 2u);
  // One MapLaunch per iteration.
  EXPECT_GE(st.plan_launches.load(), 10u);
  // One Scalars block per iteration plus the top-level run.
  EXPECT_GE(st.plan_scalar_blocks.load(), 11u);
  // Double-buffered carry: after a two-iteration warm-up every iteration's
  // launch buffer comes from the loop ring, not the pool.
  EXPECT_GE(st.plan_hoisted_buffers.load(), 7u);

  // The counters describe a real execution: conformance still holds.
  expect_plan_conformant(p, args, "all-steps program");
}

// -------------------------------------------------------------- fallbacks --

// Data-dependent extent: the body materializes iota(carry), so the launch
// extent changes across iterations — loop_extents_invariant must reject it
// and the loop stays on the general evaluator (no hoisting ring).
TEST(PlanFallback, DataDependentExtentLoop) {
  ProgBuilder pb("dyn");
  Builder& b = pb.body();
  auto outs = b.loop_for(
      {Atom(ci64(1))}, Atom(ci64(6)),
      [](Builder& lb, Var, const std::vector<Var>& st) {
        Var ys = lb.iota(Atom(st[0]));
        Var n = lb.length(ys);
        return std::vector<Atom>{Atom(lb.add(n, ci64(1)))};
      });
  Prog p = pb.finish({Atom(outs[0])});
  typecheck(p);

  Interp in;
  auto r = in.run(p, {});
  EXPECT_EQ(std::get<int64_t>(r[0]), 7);  // 1 -> 2 -> 3 -> ... -> 7
  // The loop was not planned: no buffers were hoisted.
  EXPECT_EQ(in.stats().plan_hoisted_buffers.load(), 0u);
  expect_plan_conformant(p, {}, "data-dependent extent loop");
}

// OpIf in the body keeps the loop on the general path (branch-dependent
// extents are not provable), but results still agree bit-exact.
TEST(PlanFallback, OpIfInLoopBody) {
  ProgBuilder pb("br");
  Var xs = pb.param("xs", arr_f64(1));
  Builder& b = pb.body();
  auto outs = b.loop_for(
      {Atom(xs)}, Atom(ci64(8)),
      [](Builder& lb, Var i, const std::vector<Var>& st) {
        Var even = lb.eq(Atom(lb.mod(i, ci64(2))), ci64(0));
        std::vector<Var> picked = lb.if_(
            Atom(even),
            [&](Builder& tb) {
              Var next = tb.map1(tb.lam({f64()},
                                        [](Builder& cc, const std::vector<Var>& p) {
                                          return std::vector<Atom>{
                                              Atom(cc.mul(p[0], cf64(1.01)))};
                                        }),
                                 {st[0]});
              return std::vector<Atom>{Atom(next)};
            },
            [&](Builder& eb) {
              Var next = eb.map1(eb.lam({f64()},
                                        [](Builder& cc, const std::vector<Var>& p) {
                                          return std::vector<Atom>{
                                              Atom(cc.add(p[0], cf64(0.01)))};
                                        }),
                                 {st[0]});
              return std::vector<Atom>{Atom(next)};
            });
        return std::vector<Atom>{Atom(picked[0])};
      });
  Prog p = pb.finish({Atom(outs[0])});
  typecheck(p);
  npad::support::Rng rng(35);
  std::vector<Value> args = {make_f64_array(rng.uniform_vec(512, -1.0, 1.0), {512})};
  expect_plan_conformant(p, args, "OpIf loop body");
}

TEST(PlanFallback, EmptyAndSingleIterationLoops) {
  for (int64_t iters : {int64_t{0}, int64_t{1}}) {
    Prog p = all_steps_prog(iters);
    typecheck(p);
    npad::support::Rng rng(36);
    std::vector<Value> args = {0.3,
                               make_f64_array(rng.uniform_vec(256, -1.0, 1.0), {256})};
    auto r = expect_plan_conformant(p, args, iters == 0 ? "empty loop" : "one-iteration loop");
    ASSERT_TRUE(is_array(r[0]));
    EXPECT_EQ(as_array(r[0]).shape, (std::vector<int64_t>{256}));
  }
}

// ------------------------------------------------ LSTM launch acceptance ---

TEST(PlanAcceptance, LstmLaunchCountStaysLow) {
  npad::support::Rng rng(19);  // same seed/shape as bench_table6_lstm D0
  auto L = npad::apps::lstm_gen(rng, 16, 10, 24, 16);
  Prog obj = npad::apps::lstm_ir_objective();
  typecheck(obj);
  Prog grad = npad::ad::vjp(obj);
  obj = npad::opt::optimize(obj);
  grad = npad::opt::optimize(grad);
  auto args = npad::apps::lstm_ir_args(L);
  auto gargs = args;
  gargs.emplace_back(1.0);

  Interp in;
  in.run(obj, args);
  in.run(grad, gargs);
  // Before this PR one objective+gradient evaluation at this shape issued
  // tens of thousands of batched kernel spans (~60k: per-timestep per-gate
  // row launches); inlined inner SOACs plus planned launches cut that by
  // ~40x (measured ~1.5k). The ceiling leaves 2x headroom over the measured
  // level — still >10x below the old level — so a regression that undoes the
  // win fails loudly without the test being brittle.
  EXPECT_LE(in.stats().batched_launches.load(), 3000u)
      << "LSTM launch count regressed: batched_launches="
      << in.stats().batched_launches.load();
}

// --------------------------------------------------- steady-state pooling --

// Pool round-trips per iteration in the planned steady state are ~0: compare
// fresh-interpreter runs at n and 4n iterations — the extra 3n iterations
// must not add pool traffic beyond a small warm-up slack.
TEST(PlanSteadyState, ExtraIterationsAddNoPoolTraffic) {
  npad::support::Rng rng(37);
  std::vector<Value> args = {0.9,
                             make_f64_array(rng.uniform_vec(4096, -1.0, 1.0), {4096})};
  auto traffic = [&](int64_t iters) {
    Prog p = all_steps_prog(iters);
    typecheck(p);
    Interp in;
    in.run(p, args);
    return in.stats().pool_hits.load() + in.stats().pool_misses.load();
  };
  const uint64_t t10 = traffic(10);
  const uint64_t t40 = traffic(40);
  EXPECT_LE(t40, t10 + 2) << "planned loop iterations still round-trip the pool: "
                          << t10 << " @10 iters vs " << t40 << " @40 iters";
}

// Plan cache behavior: repeated runs of the same resolved program compile
// the plan once (process-wide), like the kernel cache.
TEST(PlanCache, CompilesOncePerProgram) {
  Prog p = all_steps_prog(4);
  typecheck(p);
  npad::support::Rng rng(38);
  std::vector<Value> args = {0.5,
                             make_f64_array(rng.uniform_vec(128, -1.0, 1.0), {128})};
  Interp first;
  first.run(p, args);
  const uint64_t compiled_first = first.stats().plans_compiled.load();
  EXPECT_GE(compiled_first, 2u);  // top-level + loop body
  Interp second;
  second.run(p, args);
  EXPECT_EQ(second.stats().plans_compiled.load(), 0u)
      << "second run recompiled a cached plan";
}

} // namespace
