#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace npad::serve {

const Json* Json::get(const std::string& key) const {
  if (kind != Kind::Obj) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(const std::string& key, Json v) {
  kind = Kind::Obj;
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  obj.emplace_back(key, std::move(v));
  return obj.back().second;
}

// -------------------------------------------------------------------- parse --

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& why) const {
    throw TypeError("JSON parse error at byte " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool literal(const char* word) {
    const size_t n = std::char_traits<char>::length(word);
    if (s_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    if (depth_ > 64) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json::string(string_lit());
    if (c == 't') { if (literal("true")) return Json::boolean(true); fail("bad literal"); }
    if (c == 'f') { if (literal("false")) return Json::boolean(false); fail("bad literal"); }
    if (c == 'n') { if (literal("null")) return Json::null(); fail("bad literal"); }
    return number_lit();
  }

  Json object() {
    ++depth_;
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') { ++pos_; --depth_; return out; }
    for (;;) {
      skip_ws();
      std::string key = string_lit();
      skip_ws();
      expect(':');
      out.obj.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      break;
    }
    --depth_;
    return out;
  }

  Json array() {
    ++depth_;
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') { ++pos_; --depth_; return out; }
    for (;;) {
      out.arr.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      break;
    }
    --depth_;
    return out;
  }

  std::string string_lit() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // UTF-8 encode (no surrogate-pair recombination; BMP is enough
            // for the serving payloads, lone surrogates pass through).
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json number_lit() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("malformed number '" + tok + "'");
    return Json::number(v);
  }

  const std::string& s_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void dump_to(const Json& j, std::string& out) {
  switch (j.kind) {
    case Json::Kind::Null: out += "null"; break;
    case Json::Kind::Bool: out += j.b ? "true" : "false"; break;
    case Json::Kind::Num: {
      const double v = j.num;
      if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
        out += buf;
      } else if (std::isfinite(v)) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        out += buf;
      } else {
        out += "null";  // JSON has no inf/nan
      }
      break;
    }
    case Json::Kind::Str: {
      out += '"';
      for (char c : j.str) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char buf[8];
              std::snprintf(buf, sizeof buf, "\\u%04x", c);
              out += buf;
            } else {
              out += c;
            }
        }
      }
      out += '"';
      break;
    }
    case Json::Kind::Arr: {
      out += '[';
      for (size_t i = 0; i < j.arr.size(); ++i) {
        if (i) out += ',';
        dump_to(j.arr[i], out);
      }
      out += ']';
      break;
    }
    case Json::Kind::Obj: {
      out += '{';
      for (size_t i = 0; i < j.obj.size(); ++i) {
        if (i) out += ',';
        dump_to(Json::string(j.obj[i].first), out);
        out += ':';
        dump_to(j.obj[i].second, out);
      }
      out += '}';
      break;
    }
  }
}

} // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

std::string Json::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

} // namespace npad::serve
