#include "serve/registry.hpp"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <tuple>
#include <unordered_map>
#include <variant>

#include "apps/ba.hpp"
#include "apps/gmm.hpp"
#include "apps/hand.hpp"
#include "apps/kmeans.hpp"
#include "apps/lstm.hpp"
#include "apps/mc_transport.hpp"
#include "core/ad.hpp"
#include "ir/typecheck.hpp"
#include "opt/pipeline.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace npad::serve {

using rt::ArrayVal;
using rt::Value;

bool parse_mode(const std::string& s, Mode* out) {
  if (s == "objective") { *out = Mode::Objective; return true; }
  if (s == "jacobian") { *out = Mode::Jacobian; return true; }
  return false;
}

// ---------------------------------------------------------------- registry --

struct Registry::Impl {
  mutable std::shared_mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const ProgramEntry>> by_name;
  std::vector<std::string> order;  // registration order, for listings
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::global() {
  static Registry* reg = new Registry();  // immortal
  return *reg;
}

void Registry::add(ProgramEntry e) {
  auto entry = std::make_shared<const ProgramEntry>(std::move(e));
  std::unique_lock lk(impl_->mu);
  if (!impl_->by_name.emplace(entry->name, entry).second) {
    throw TypeError("serve registry: duplicate program '" + entry->name + "'");
  }
  impl_->order.push_back(entry->name);
}

std::shared_ptr<const ProgramEntry> Registry::find(const std::string& name) const {
  std::shared_lock lk(impl_->mu);
  auto it = impl_->by_name.find(name);
  return it == impl_->by_name.end() ? nullptr : it->second;
}

std::vector<std::string> Registry::names() const {
  std::shared_lock lk(impl_->mu);
  return impl_->order;
}

size_t Registry::size() const {
  std::shared_lock lk(impl_->mu);
  return impl_->by_name.size();
}

// ---------------------------------------------------------- builtin programs --

namespace {

int64_t sz(const SizeMap& size, const SizeMap& defaults, const char* key) {
  auto it = size.find(key);
  int64_t v = 0;
  if (it != size.end()) {
    v = it->second;
  } else {
    auto dit = defaults.find(key);
    if (dit == defaults.end()) throw TypeError(std::string("no default for size key '") + key + "'");
    v = dit->second;
  }
  // Serving guard: requests pick workload sizes, so clamp them to a sane
  // band instead of letting one request allocate the process away.
  if (v < 1) v = 1;
  if (v > 16384) v = 16384;
  return v;
}

// AD prep mirrors the paper-table benches: differentiate the *pre-fusion*
// primal (the AD passes reject fused/flattened forms), then optimize both.
std::pair<ir::Prog, ir::Prog> build_vjp(ir::Prog primal) {
  ir::typecheck(primal);
  ir::Prog grad = ad::vjp(primal);
  primal = opt::optimize(primal);
  grad = opt::optimize(grad);
  ir::typecheck(primal);
  ir::typecheck(grad);
  return {std::move(primal), std::move(grad)};
}

std::pair<ir::Prog, ir::Prog> build_jvp(ir::Prog primal) {
  ir::typecheck(primal);
  ir::Prog tan = ad::jvp(primal);
  primal = opt::optimize(primal);
  tan = opt::optimize(tan);
  ir::typecheck(primal);
  ir::typecheck(tan);
  return {std::move(primal), std::move(tan)};
}

// Appends one tangent per differentiable (f64) argument, in argument order:
// ones for the "parameter" positions in `ones_idx`, zeros for the data
// positions — a fixed directional derivative, like the benches' seed-vector
// Jacobian columns.
void append_jvp_tangents(std::vector<Value>& args, std::initializer_list<size_t> ones_idx) {
  const size_t n = args.size();
  for (size_t i = 0; i < n; ++i) {
    const bool one = std::find(ones_idx.begin(), ones_idx.end(), i) != ones_idx.end();
    Value v = args[i];  // copy: push_back below may reallocate
    if (std::holds_alternative<double>(v)) {
      args.push_back(one ? 1.0 : 0.0);
    } else if (rt::is_array(v) && rt::as_array(v).elem == ir::ScalarType::F64) {
      const ArrayVal& a = rt::as_array(v);
      ArrayVal t = ArrayVal::alloc(a.elem, a.shape);  // zero-filled
      if (one) {
        for (int64_t j = 0; j < t.elems(); ++j) t.set_f64(j, 1.0);
      }
      args.push_back(std::move(t));
    }
    // non-f64 args (index arrays, flags) carry no tangent
  }
}

void register_builtins_once() {
  Registry& reg = Registry::global();

  {  // GMM log-likelihood: (alphas, means, qs, x) -> f64; vjp seed 1.0.
    ProgramEntry e;
    e.name = "gmm";
    std::tie(e.objective, e.jacobian) = build_vjp(apps::gmm_ir_objective());
    e.jacobian_kind = "vjp";
    e.default_size = {{"n", 64}, {"d", 4}, {"k", 5}};
    e.make_args = [defaults = e.default_size](Mode m, uint64_t seed, const SizeMap& size) {
      support::Rng rng(seed ^ 0x676d6d5f73727600ull);
      apps::GmmData data = apps::gmm_gen(rng, sz(size, defaults, "n"),
                                         sz(size, defaults, "d"), sz(size, defaults, "k"));
      std::vector<Value> args = apps::gmm_ir_args(data);
      if (m == Mode::Jacobian) args.push_back(1.0);
      return args;
    };
    reg.add(std::move(e));
  }

  {  // LSTM sequence objective: (wx, wh, b, x) -> f64; vjp seed 1.0.
    ProgramEntry e;
    e.name = "lstm";
    std::tie(e.objective, e.jacobian) = build_vjp(apps::lstm_ir_objective());
    e.jacobian_kind = "vjp";
    e.default_size = {{"bs", 2}, {"n", 4}, {"d", 8}, {"h", 8}};
    e.make_args = [defaults = e.default_size](Mode m, uint64_t seed, const SizeMap& size) {
      support::Rng rng(seed ^ 0x6c73746d5f737276ull);
      apps::LstmData data = apps::lstm_gen(rng, sz(size, defaults, "bs"),
                                           sz(size, defaults, "n"), sz(size, defaults, "d"),
                                           sz(size, defaults, "h"));
      std::vector<Value> args = apps::lstm_ir_args(data);
      if (m == Mode::Jacobian) args.push_back(1.0);
      return args;
    };
    reg.add(std::move(e));
  }

  {  // k-means cost: (C, P) -> f64; vjp seed 1.0.
    ProgramEntry e;
    e.name = "kmeans";
    std::tie(e.objective, e.jacobian) = build_vjp(apps::kmeans_ir_cost());
    e.jacobian_kind = "vjp";
    e.default_size = {{"n", 128}, {"d", 4}, {"k", 8}};
    e.make_args = [defaults = e.default_size](Mode m, uint64_t seed, const SizeMap& size) {
      support::Rng rng(seed ^ 0x6b6d65616e730000ull);
      const int64_t n = sz(size, defaults, "n");
      const int64_t d = sz(size, defaults, "d");
      const int64_t k = sz(size, defaults, "k");
      apps::KmeansData data = apps::kmeans_gen(rng, n, d, k);
      std::vector<Value> args = {rt::make_f64_array(data.centroids, {k, d}),
                                 rt::make_f64_array(data.points, {n, d})};
      if (m == Mode::Jacobian) args.push_back(1.0);
      return args;
    };
    reg.add(std::move(e));
  }

  {  // Bundle adjustment residuals -> (reproj, werr); jvp over cams/pts/w.
    ProgramEntry e;
    e.name = "ba";
    std::tie(e.objective, e.jacobian) = build_jvp(apps::ba_ir_residuals());
    e.jacobian_kind = "jvp";
    e.default_size = {{"cams", 4}, {"pts", 16}, {"obs", 32}};
    e.make_args = [defaults = e.default_size](Mode m, uint64_t seed, const SizeMap& size) {
      support::Rng rng(seed ^ 0x62615f7372760000ull);
      apps::BaData data = apps::ba_gen(rng, sz(size, defaults, "cams"),
                                       sz(size, defaults, "pts"), sz(size, defaults, "obs"));
      std::vector<Value> args = apps::ba_ir_args(data);
      // params: cams(0), pts(1), w(2), camIdx(3:i64), ptIdx(4:i64), feats(5)
      if (m == Mode::Jacobian) append_jvp_tangents(args, {0, 1, 2});
      return args;
    };
    reg.add(std::move(e));
  }

  {  // Hand-tracking residuals (simple model); jvp over theta.
    ProgramEntry e;
    e.name = "hand";
    std::tie(e.objective, e.jacobian) = build_jvp(apps::hand_ir_residuals(/*complicated=*/false));
    e.jacobian_kind = "jvp";
    e.default_size = {{"bones", 6}, {"verts", 32}};
    e.make_args = [defaults = e.default_size](Mode m, uint64_t seed, const SizeMap& size) {
      support::Rng rng(seed ^ 0x68616e645f737276ull);
      apps::HandData data = apps::hand_gen(rng, sz(size, defaults, "bones"),
                                           sz(size, defaults, "verts"));
      std::vector<Value> args = apps::hand_ir_args(data, /*complicated=*/false);
      // params: theta(0), base(1), dirs(2), boneOf(3:i64), targets(4)
      if (m == Mode::Jacobian) append_jvp_tangents(args, {0});
      return args;
    };
    reg.add(std::move(e));
  }

  {  // XSBench-like macro cross-section sum: -> f64; vjp seed 1.0.
    ProgramEntry e;
    e.name = "mc_transport";
    std::tie(e.objective, e.jacobian) = build_vjp(apps::xs_ir_objective());
    e.jacobian_kind = "vjp";
    e.default_size = {{"nuclides", 4}, {"grid", 32}, {"lookups", 128}};
    e.make_args = [defaults = e.default_size](Mode m, uint64_t seed, const SizeMap& size) {
      support::Rng rng(seed ^ 0x78735f7372760000ull);
      apps::XsData data = apps::xs_gen(rng, sz(size, defaults, "nuclides"),
                                       sz(size, defaults, "grid"), sz(size, defaults, "lookups"));
      std::vector<Value> args = apps::xs_ir_args(data);
      if (m == Mode::Jacobian) args.push_back(1.0);
      return args;
    };
    reg.add(std::move(e));
  }
}

} // namespace

void register_builtin_programs() {
  static std::once_flag once;
  std::call_once(once, register_builtins_once);
}

} // namespace npad::serve
