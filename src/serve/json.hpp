#pragma once

// Minimal dependency-free JSON value: recursive-descent parser and
// serializer, just enough for the serving front-end's request/response
// bodies. Object keys keep insertion order; numbers are doubles (integral
// values serialize without a fractional part). Parse errors throw
// npad::TypeError with position information.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace npad::serve {

struct Json {
  enum class Kind : uint8_t { Null, Bool, Num, Str, Arr, Obj };

  Kind kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool v) { Json j; j.kind = Kind::Bool; j.b = v; return j; }
  static Json number(double v) { Json j; j.kind = Kind::Num; j.num = v; return j; }
  static Json string(std::string v) { Json j; j.kind = Kind::Str; j.str = std::move(v); return j; }
  static Json array() { Json j; j.kind = Kind::Arr; return j; }
  static Json object() { Json j; j.kind = Kind::Obj; return j; }

  bool is_null() const { return kind == Kind::Null; }
  bool is_num() const { return kind == Kind::Num; }
  bool is_str() const { return kind == Kind::Str; }
  bool is_arr() const { return kind == Kind::Arr; }
  bool is_obj() const { return kind == Kind::Obj; }

  // Object member lookup; nullptr when absent or not an object.
  const Json* get(const std::string& key) const;
  Json& set(const std::string& key, Json v);  // add/replace member
  void push(Json v) { arr.push_back(std::move(v)); }

  int64_t as_i64() const { return static_cast<int64_t>(num); }

  // Throws npad::TypeError on malformed input (with byte position).
  static Json parse(const std::string& text);

  std::string dump() const;
};

} // namespace npad::serve
