#pragma once

// Dependency-free blocking-socket HTTP/1.1 front-end for the batcher, plus
// the matching minimal client used by the load-generator bench and the CI
// smoke. One thread per accepted connection (keep-alive), requests decode to
// serve::Request, responses encode Response + per-request stats as JSON.
//
// Routes:
//   GET  /healthz      -> {"ok": true}
//   GET  /v1/programs  -> registered programs, modes, default sizes
//   GET  /v1/stats     -> ServeStats + InterpStats counters
//   POST /v1/run       -> {"program", "mode"?, "seed"?, "size"?, "args"?,
//                          "return": "summary"|"full"}
//
// Request arguments are either synthesized server-side from (seed, size) via
// the registry's deterministic generators, or supplied inline in "args":
// numbers are f64 scalars, {"elem": "i64", "value": n} typed scalars, and
// {"shape": [...], "data": [...], "elem": "f64"|"i64"|"bool"} arrays.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/json.hpp"

namespace npad::serve {

struct HttpOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0: ephemeral, read back with port()
  int backlog = 128;
  int recv_timeout_ms = 10000;   // per-read socket timeout
  size_t max_body = 8u << 20;    // request body cap
  size_t max_connections = 256;  // concurrent connection-handler threads
};

class HttpServer {
public:
  // Binds and listens immediately (throws npad::ResourceError on failure);
  // start() begins accepting.
  HttpServer(Batcher& batcher, HttpOptions opts = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void start();
  void stop();  // closes the listener and every live connection, joins

  int port() const { return port_; }

private:
  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_locked();  // joins handler threads that have exited
  // Routing: returns (status, body). Never throws.
  std::pair<int, std::string> handle(const std::string& method, const std::string& path,
                                     const std::string& body);
  std::pair<int, std::string> handle_run(const std::string& body);

  Batcher& batcher_;
  HttpOptions opts_;
  // Atomic: stop() tears the listener down while accept_loop() reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<std::thread::id> finished_ids_;  // exited handlers awaiting join
  std::vector<int> conn_fds_;
  bool started_ = false;
};

// Blocking keep-alive HTTP/1.1 client. Methods throw npad::ResourceError on
// connect/IO failures (after one transparent reconnect attempt).
class HttpClient {
public:
  HttpClient(std::string host, int port);
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Returns the HTTP status code; *resp_body receives the response body.
  int get(const std::string& path, std::string* resp_body);
  int post(const std::string& path, const std::string& body, std::string* resp_body);

private:
  int request(const std::string& method, const std::string& path, const std::string& body,
              std::string* resp_body);
  int request_once(const std::string& method, const std::string& path,
                   const std::string& body, std::string* resp_body);
  void ensure_connected();
  void close_fd();

  std::string host_;
  int port_;
  int fd_ = -1;
};

// ------------------------------------------------- value <-> JSON encoding --

// "full" array encoding: {"elem","shape","data"}; scalars encode as numbers
// (f64/i64) or booleans. "summary" replaces array data with l2 norm + head.
Json value_to_json(const rt::Value& v, bool full);
rt::Value value_from_json(const Json& j);

} // namespace npad::serve
