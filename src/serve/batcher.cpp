#include "serve/batcher.hpp"

#include <algorithm>
#include <variant>

#include "support/error.hpp"
#include "support/fault.hpp"

namespace npad::serve {

using rt::Value;

namespace {

char scalar_char(ir::ScalarType t) {
  switch (t) {
    case ir::ScalarType::F64: return 'f';
    case ir::ScalarType::I64: return 'i';
    case ir::ScalarType::Bool: return 'b';
  }
  return '?';
}

ir::ScalarType value_scalar_type(const Value& v) {
  if (std::holds_alternative<double>(v)) return ir::ScalarType::F64;
  if (std::holds_alternative<int64_t>(v)) return ir::ScalarType::I64;
  return ir::ScalarType::Bool;
}

// Validates `args` against the program's parameter list (arity, scalar vs
// array, element type, rank) and builds the grouping key: requests stack
// only when program, mode and every argument signature (including concrete
// shapes) agree, so a shape mismatch forms its own group instead of
// poisoning a batch.
std::string validate_and_key(const ProgramEntry& entry, const Request& r) {
  const ir::Prog& prog = entry.prog(r.mode);
  const auto& params = prog.fn.params;
  if (r.args.size() != params.size()) {
    throw TypeError("program '" + entry.name + "' (" + mode_name(r.mode) + ") takes " +
                    std::to_string(params.size()) + " argument(s), got " +
                    std::to_string(r.args.size()));
  }
  std::string key = entry.name;
  key += r.mode == Mode::Objective ? "|o" : "|j";
  for (size_t i = 0; i < params.size(); ++i) {
    const ir::Type& t = params[i].type;
    const Value& v = r.args[i];
    if (rt::is_acc(v) || t.is_acc) {
      throw TypeError("program '" + entry.name + "': accumulator argument " +
                      std::to_string(i) + " cannot be served");
    }
    if (t.rank == 0) {
      if (rt::is_array(v)) {
        throw TypeError("program '" + entry.name + "': argument " + std::to_string(i) +
                        " expects a scalar, got a rank-" +
                        std::to_string(rt::as_array(v).rank()) + " array");
      }
      if (value_scalar_type(v) != t.elem) {
        throw TypeError("program '" + entry.name + "': argument " + std::to_string(i) +
                        " scalar type mismatch");
      }
      key += '|';
      key += scalar_char(t.elem);
    } else {
      if (!rt::is_array(v)) {
        throw TypeError("program '" + entry.name + "': argument " + std::to_string(i) +
                        " expects a rank-" + std::to_string(t.rank) + " array, got a scalar");
      }
      const rt::ArrayVal& a = rt::as_array(v);
      if (a.elem != t.elem) {
        throw TypeError("program '" + entry.name + "': argument " + std::to_string(i) +
                        " element type mismatch");
      }
      if (a.rank() != t.rank) {
        throw ShapeError("program '" + entry.name + "': argument " + std::to_string(i) +
                         " expects rank " + std::to_string(t.rank) + ", got rank " +
                         std::to_string(a.rank()));
      }
      key += '|';
      key += scalar_char(t.elem);
      for (int64_t d : a.shape) {
        key += 'x';
        key += std::to_string(d);
      }
    }
  }
  return key;
}

} // namespace

Batcher::Batcher(BatcherOptions opts) : opts_(opts), interp_(opts.interp) {
  if (opts_.max_batch < 1) opts_.max_batch = 1;
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.start) start();
}

Batcher::~Batcher() { stop(); }

void Batcher::start() {
  std::lock_guard lk(mu_);
  if (started_ || stop_) return;
  started_ = true;
  threads_.reserve(static_cast<size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void Batcher::stop() {
  {
    std::lock_guard lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  threads_.clear();
  // Never-started batcher (or a race straggler): reject what is left.
  std::deque<Pending> leftovers;
  {
    std::lock_guard lk(mu_);
    leftovers.swap(queue_);
  }
  for (auto& p : leftovers) {
    Response resp;
    resp.error_kind = "ResourceError";
    resp.error = "ResourceError: batcher stopped before the request executed";
    stats_.responses_error.fetch_add(1, std::memory_order_relaxed);
    p.prom.set_value(std::move(resp));
  }
}

std::future<Response> Batcher::submit(Request r) {
  std::promise<Response> prom;
  std::future<Response> fut = prom.get_future();
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  try {
    NPAD_FAULT_SITE("serve.enqueue", FaultKind::Alloc);
    auto entry = Registry::global().find(r.program);
    if (!entry) throw TypeError("unknown program '" + r.program + "'");
    Pending p;
    p.key = validate_and_key(*entry, r);
    p.entry = std::move(entry);
    p.req = std::move(r);
    p.t_enq = Clock::now();
    {
      std::lock_guard lk(mu_);
      if (stop_) throw ResourceError("batcher is stopped");
      p.prom = std::move(prom);
      queue_.push_back(std::move(p));
      ++submit_seq_;
    }
    cv_.notify_all();
  } catch (const npad::Error& e) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    stats_.responses_error.fetch_add(1, std::memory_order_relaxed);
    Response resp;
    resp.error_kind = e.kind();
    resp.error = e.what();
    prom.set_value(std::move(resp));
  }
  return fut;
}

void Batcher::take_matching_locked(std::vector<Pending>& batch, const std::string& key) {
  for (auto it = queue_.begin();
       it != queue_.end() && static_cast<int>(batch.size()) < opts_.max_batch;) {
    if (it->key == key) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void Batcher::worker_loop() {
  std::unique_lock lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::vector<Pending> batch;
    const std::string key = queue_.front().key;
    const Clock::time_point first_enq = queue_.front().t_enq;
    take_matching_locked(batch, key);
    if (opts_.stack && opts_.window_us > 0 && !stop_) {
      // Hold the group open until it fills or the window (measured from its
      // FIRST request's enqueue) expires. Waits key on submit_seq_, so other
      // workers freely drain non-matching groups in the meantime.
      const auto deadline = first_enq + std::chrono::microseconds(opts_.window_us);
      while (static_cast<int>(batch.size()) < opts_.max_batch && !stop_) {
        const uint64_t seq = submit_seq_;
        if (!cv_.wait_until(lk, deadline, [&] { return stop_ || submit_seq_ != seq; })) {
          break;  // window expired
        }
        take_matching_locked(batch, key);
      }
    }
    lk.unlock();
    exec_batch(std::move(batch));
    lk.lock();
  }
}

void Batcher::exec_batch(std::vector<Pending> batch) {
  const int b = static_cast<int>(batch.size());
  if (b == 0) return;
  const Clock::time_point t_start = Clock::now();

  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  uint64_t prev_max = stats_.max_batch.load(std::memory_order_relaxed);
  while (static_cast<uint64_t>(b) > prev_max &&
         !stats_.max_batch.compare_exchange_weak(prev_max, static_cast<uint64_t>(b),
                                                 std::memory_order_relaxed)) {
  }

  std::vector<Response> resps(static_cast<size_t>(b));
  uint64_t wait_us_total = 0;
  for (int i = 0; i < b; ++i) {
    const auto wait =
        std::chrono::duration_cast<std::chrono::microseconds>(t_start - batch[i].t_enq);
    resps[i].queue_wait_ms = static_cast<double>(wait.count()) / 1e3;
    resps[i].batch_size = b;
    wait_us_total += static_cast<uint64_t>(wait.count());
  }
  stats_.queue_wait_us.fetch_add(wait_us_total, std::memory_order_relaxed);

  const ProgramEntry& entry = *batch[0].entry;
  const ir::Prog& prog = entry.prog(batch[0].req.mode);

  auto fail = [&](int i, const npad::Error& err) {
    resps[i].results.clear();
    resps[i].error_kind = err.kind();
    resps[i].error = err.what();
  };

  if (b == 1 || !opts_.stack) {
    stats_.single_requests.fetch_add(static_cast<uint64_t>(b), std::memory_order_relaxed);
    for (int i = 0; i < b; ++i) {
      try {
        resps[i].results = interp_.run(prog, batch[i].req.args);
      } catch (const npad::Error& err) {
        fail(i, err);
      }
    }
  } else {
    std::vector<std::vector<Value>> argsv;
    argsv.reserve(static_cast<size_t>(b));
    for (auto& p : batch) argsv.push_back(std::move(p.req.args));

    bool stacked_ok = false;
    std::vector<std::vector<Value>> outs;
    std::string batch_err_kind, batch_err;
    try {
      outs = interp_.run_batched(prog, argsv);
      stacked_ok = true;
    } catch (const npad::Error& err) {
      batch_err_kind = err.kind();
      batch_err = err.what();
    }

    if (stacked_ok) {
      stats_.stacked_batches.fetch_add(1, std::memory_order_relaxed);
      stats_.stacked_requests.fetch_add(static_cast<uint64_t>(b), std::memory_order_relaxed);
      for (int i = 0; i < b; ++i) {
        try {
          // Per-request de-stacking failure point: an injected fault here
          // must hit THIS request only, never its batchmates.
          NPAD_FAULT_SITE("serve.batch_exec", FaultKind::Chunk);
          resps[i].results = std::move(outs[static_cast<size_t>(i)]);
        } catch (const npad::Error& err) {
          fail(i, err);
        }
      }
    } else {
      // A stacked failure cannot be attributed to one request: re-run each
      // request alone so the typed error lands on the request that caused it
      // and its batchmates still succeed (bit-exact, same interpreter).
      stats_.fallback_requests.fetch_add(static_cast<uint64_t>(b), std::memory_order_relaxed);
      for (int i = 0; i < b; ++i) {
        try {
          resps[i].results = interp_.run(prog, argsv[static_cast<size_t>(i)]);
        } catch (const npad::Error& err) {
          fail(i, err);
        }
      }
    }
  }

  const auto exec =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t_start);
  stats_.exec_us.fetch_add(static_cast<uint64_t>(exec.count()), std::memory_order_relaxed);
  for (int i = 0; i < b; ++i) {
    resps[i].exec_ms = static_cast<double>(exec.count()) / 1e3;
    if (resps[i].ok()) {
      stats_.responses_ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.responses_error.fetch_add(1, std::memory_order_relaxed);
    }
    batch[i].prom.set_value(std::move(resps[i]));
  }
}

} // namespace npad::serve
