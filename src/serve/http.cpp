#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <variant>

#include "support/error.hpp"

namespace npad::serve {

using rt::ArrayVal;
using rt::Value;

// ----------------------------------------------------- value <-> JSON ------

namespace {

const char* elem_name(ir::ScalarType t) {
  switch (t) {
    case ir::ScalarType::F64: return "f64";
    case ir::ScalarType::I64: return "i64";
    case ir::ScalarType::Bool: return "bool";
  }
  return "?";
}

bool parse_elem(const std::string& s, ir::ScalarType* out) {
  if (s == "f64") { *out = ir::ScalarType::F64; return true; }
  if (s == "i64") { *out = ir::ScalarType::I64; return true; }
  if (s == "bool") { *out = ir::ScalarType::Bool; return true; }
  return false;
}

} // namespace

Json value_to_json(const Value& v, bool full) {
  if (std::holds_alternative<double>(v)) return Json::number(std::get<double>(v));
  if (std::holds_alternative<int64_t>(v)) {
    Json j = Json::object();
    j.set("elem", Json::string("i64"));
    j.set("value", Json::number(static_cast<double>(std::get<int64_t>(v))));
    return j;
  }
  if (std::holds_alternative<bool>(v)) return Json::boolean(std::get<bool>(v));
  if (rt::is_acc(v)) {
    Json j = Json::object();
    j.set("elem", Json::string("acc"));
    return j;
  }
  const ArrayVal& a = rt::as_array(v);
  Json j = Json::object();
  j.set("elem", Json::string(elem_name(a.elem)));
  Json shape = Json::array();
  for (int64_t d : a.shape) shape.push(Json::number(static_cast<double>(d)));
  j.set("shape", std::move(shape));
  const int64_t n = a.elems();
  if (full) {
    Json data = Json::array();
    data.arr.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) data.push(Json::number(a.get_f64(i)));
    j.set("data", std::move(data));
  } else {
    double l2 = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double x = a.get_f64(i);
      l2 += x * x;
    }
    j.set("l2", Json::number(std::sqrt(l2)));
    Json head = Json::array();
    for (int64_t i = 0; i < std::min<int64_t>(n, 8); ++i) {
      head.push(Json::number(a.get_f64(i)));
    }
    j.set("head", std::move(head));
  }
  return j;
}

Value value_from_json(const Json& j) {
  if (j.kind == Json::Kind::Num) return j.num;
  if (j.kind == Json::Kind::Bool) return j.b;
  if (j.kind == Json::Kind::Obj) {
    ir::ScalarType elem = ir::ScalarType::F64;
    if (const Json* e = j.get("elem")) {
      if (!e->is_str() || !parse_elem(e->str, &elem)) {
        throw TypeError("args: bad \"elem\" (want f64|i64|bool)");
      }
    }
    if (const Json* val = j.get("value")) {  // typed scalar
      if (!val->is_num() && val->kind != Json::Kind::Bool) {
        throw TypeError("args: scalar \"value\" must be a number or boolean");
      }
      const double x = val->is_num() ? val->num : (val->b ? 1.0 : 0.0);
      switch (elem) {
        case ir::ScalarType::F64: return x;
        case ir::ScalarType::I64: return static_cast<int64_t>(x);
        case ir::ScalarType::Bool: return x != 0.0;
      }
    }
    const Json* shape = j.get("shape");
    const Json* data = j.get("data");
    if (!shape || !shape->is_arr() || !data || !data->is_arr()) {
      throw TypeError("args: array values need \"shape\" and \"data\" lists");
    }
    std::vector<int64_t> shp;
    int64_t n = 1;
    for (const Json& d : shape->arr) {
      if (!d.is_num() || d.num < 0) throw TypeError("args: bad shape entry");
      shp.push_back(d.as_i64());
      n *= d.as_i64();
    }
    if (static_cast<int64_t>(data->arr.size()) != n) {
      throw ShapeError("args: data length " + std::to_string(data->arr.size()) +
                       " does not match shape product " + std::to_string(n));
    }
    ArrayVal a = ArrayVal::alloc(elem, std::move(shp));
    for (int64_t i = 0; i < n; ++i) {
      const Json& d = data->arr[static_cast<size_t>(i)];
      if (!d.is_num() && d.kind != Json::Kind::Bool) {
        throw TypeError("args: array data must be numeric");
      }
      const double x = d.is_num() ? d.num : (d.b ? 1.0 : 0.0);
      rt::store_scalar(a, i, x);
    }
    return a;
  }
  throw TypeError("args: unsupported JSON value for an argument");
}

// ------------------------------------------------------------ raw sockets --

namespace {

void set_recv_timeout(int fd, int ms) {
  if (ms <= 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

bool send_all(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w <= 0) return false;
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

// Reads one HTTP message (request or response) off `fd`: start line, headers
// and a Content-Length body. Returns false on EOF/timeout/garbage.
struct HttpMessage {
  std::string start_line;
  std::vector<std::pair<std::string, std::string>> headers;  // lower-case keys
  std::string body;

  std::string header(const std::string& key) const {
    for (const auto& [k, v] : headers) {
      if (k == key) return v;
    }
    return "";
  }
};

bool read_message(int fd, std::string& buf, HttpMessage* out, size_t max_body) {
  // Accumulate until the blank line.
  size_t header_end = std::string::npos;
  for (;;) {
    header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (buf.size() > (64u << 10)) return false;  // oversized header block
    char chunk[4096];
    const ssize_t r = ::recv(fd, chunk, sizeof chunk, 0);
    if (r <= 0) return false;
    buf.append(chunk, static_cast<size_t>(r));
  }
  const std::string head = buf.substr(0, header_end);
  size_t line_start = 0;
  bool first = true;
  out->headers.clear();
  while (line_start <= head.size()) {
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(line_start, line_end - line_start);
    if (first) {
      out->start_line = line;
      first = false;
    } else if (!line.empty()) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::string k = line.substr(0, colon);
        std::transform(k.begin(), k.end(), k.begin(),
                       [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
        size_t vs = colon + 1;
        while (vs < line.size() && line[vs] == ' ') ++vs;
        out->headers.emplace_back(std::move(k), line.substr(vs));
      }
    }
    if (line_end == head.size()) break;
    line_start = line_end + 2;
  }

  size_t content_length = 0;
  const std::string cl = out->header("content-length");
  if (!cl.empty()) content_length = static_cast<size_t>(std::strtoull(cl.c_str(), nullptr, 10));
  if (content_length > max_body) return false;

  const size_t body_start = header_end + 4;
  while (buf.size() - body_start < content_length) {
    char chunk[8192];
    const ssize_t r = ::recv(fd, chunk, sizeof chunk, 0);
    if (r <= 0) return false;
    buf.append(chunk, static_cast<size_t>(r));
  }
  out->body = buf.substr(body_start, content_length);
  buf.erase(0, body_start + content_length);  // keep any pipelined tail
  return true;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "OK";
  }
}

} // namespace

// ---------------------------------------------------------------- server ---

HttpServer::HttpServer(Batcher& batcher, HttpOptions opts)
    : batcher_(batcher), opts_(std::move(opts)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw ResourceError("http: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ResourceError("http: bad listen address '" + opts_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ResourceError("http: bind to " + opts_.host + ":" + std::to_string(opts_.port) +
                        " failed: " + std::strerror(errno));
  }
  if (::listen(listen_fd_, opts_.backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ResourceError("http: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (started_ || listen_fd_ < 0) return;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (stopping_.exchange(true)) return;
  // Wake the blocked accept() first; close only after the accept thread has
  // joined so it can never race a recycled fd number.
  const int lfd = listen_fd_.load();
  if (lfd >= 0) ::shutdown(lfd, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (lfd >= 0) {
    ::close(lfd);
    listen_fd_.store(-1);
  }
  std::vector<std::thread> conns;
  {
    std::lock_guard lk(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conns.swap(conn_threads_);
  }
  for (auto& t : conns) t.join();
}

void HttpServer::reap_finished_locked() {
  for (std::thread::id id : finished_ids_) {
    for (auto it = conn_threads_.begin(); it != conn_threads_.end(); ++it) {
      if (it->get_id() == id) {
        it->join();
        conn_threads_.erase(it);
        break;
      }
    }
  }
  finished_ids_.clear();
}

void HttpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;  // transient accept failure
    }
    std::lock_guard lk(conn_mu_);
    reap_finished_locked();
    if (stopping_.load() || conn_threads_.size() >= opts_.max_connections) {
      ::close(fd);
      if (stopping_.load()) return;
      continue;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void HttpServer::serve_connection(int fd) {
  set_recv_timeout(fd, opts_.recv_timeout_ms);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  std::string buf;
  for (;;) {
    HttpMessage msg;
    if (!read_message(fd, buf, &msg, opts_.max_body)) break;
    // "METHOD /path HTTP/1.1"
    std::string method, path;
    {
      const size_t sp1 = msg.start_line.find(' ');
      const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                  : msg.start_line.find(' ', sp1 + 1);
      if (sp2 == std::string::npos) break;
      method = msg.start_line.substr(0, sp1);
      path = msg.start_line.substr(sp1 + 1, sp2 - sp1 - 1);
      if (const size_t q = path.find('?'); q != std::string::npos) path.resize(q);
    }
    const bool close_conn = msg.header("connection") == "close";
    auto [status, body] = handle(method, path, msg.body);
    std::string resp = "HTTP/1.1 " + std::to_string(status) + " " + status_text(status) +
                       "\r\nContent-Type: application/json\r\nContent-Length: " +
                       std::to_string(body.size()) +
                       (close_conn ? "\r\nConnection: close" : "\r\nConnection: keep-alive") +
                       "\r\n\r\n" + body;
    if (!send_all(fd, resp.data(), resp.size())) break;
    if (close_conn) break;
  }
  ::close(fd);
  std::lock_guard lk(conn_mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd), conn_fds_.end());
  finished_ids_.push_back(std::this_thread::get_id());
}

std::pair<int, std::string> HttpServer::handle(const std::string& method,
                                               const std::string& path,
                                               const std::string& body) {
  try {
    if (path == "/healthz") {
      Json j = Json::object();
      j.set("ok", Json::boolean(true));
      return {200, j.dump()};
    }
    if (path == "/v1/programs" && method == "GET") {
      Json j = Json::object();
      Json progs = Json::array();
      for (const std::string& name : Registry::global().names()) {
        auto entry = Registry::global().find(name);
        if (!entry) continue;
        Json p = Json::object();
        p.set("name", Json::string(name));
        p.set("jacobian_kind", Json::string(entry->jacobian_kind));
        Json modes = Json::array();
        modes.push(Json::string("objective"));
        modes.push(Json::string("jacobian"));
        p.set("modes", std::move(modes));
        Json size = Json::object();
        for (const auto& [k, v] : entry->default_size) {
          size.set(k, Json::number(static_cast<double>(v)));
        }
        p.set("default_size", std::move(size));
        progs.push(std::move(p));
      }
      j.set("programs", std::move(progs));
      return {200, j.dump()};
    }
    if (path == "/v1/stats" && method == "GET") {
      Json j = Json::object();
      for (const auto& [k, v] : batcher_.stats().counters()) {
        j.set(k, Json::number(static_cast<double>(v)));
      }
      for (const auto& [k, v] : batcher_.interp().stats().counters()) {
        j.set(k, Json::number(static_cast<double>(v)));
      }
      return {200, j.dump()};
    }
    if (path == "/v1/run") {
      if (method != "POST") return {405, R"({"ok":false,"error":"POST required"})"};
      return handle_run(body);
    }
    return {404, R"({"ok":false,"error":"no such route"})"};
  } catch (const npad::Error& e) {
    Json j = Json::object();
    j.set("ok", Json::boolean(false));
    j.set("error_kind", Json::string(e.kind()));
    j.set("error", Json::string(e.what()));
    const bool client_fault =
        std::string(e.kind()) == "TypeError" || std::string(e.kind()) == "ShapeError";
    return {client_fault ? 400 : 500, j.dump()};
  } catch (const std::exception& e) {
    Json j = Json::object();
    j.set("ok", Json::boolean(false));
    j.set("error", Json::string(e.what()));
    return {500, j.dump()};
  }
}

std::pair<int, std::string> HttpServer::handle_run(const std::string& body) {
  const Json req = Json::parse(body);
  const Json* prog_j = req.get("program");
  if (!prog_j || !prog_j->is_str()) throw TypeError("run: missing \"program\"");

  Request r;
  r.program = prog_j->str;
  if (const Json* m = req.get("mode")) {
    if (!m->is_str() || !parse_mode(m->str, &r.mode)) {
      throw TypeError("run: bad \"mode\" (want objective|jacobian)");
    }
  }
  bool full = false;
  if (const Json* ret = req.get("return")) {
    if (ret->is_str() && ret->str == "full") full = true;
  }

  if (const Json* args_j = req.get("args")) {
    if (!args_j->is_arr()) throw TypeError("run: \"args\" must be a list");
    for (const Json& a : args_j->arr) r.args.push_back(value_from_json(a));
  } else {
    auto entry = Registry::global().find(r.program);
    if (!entry) throw TypeError("unknown program '" + r.program + "'");
    uint64_t seed = 0;
    if (const Json* s = req.get("seed"); s && s->is_num()) {
      seed = static_cast<uint64_t>(s->num);
    }
    SizeMap size;
    if (const Json* sz = req.get("size"); sz && sz->is_obj()) {
      for (const auto& [k, v] : sz->obj) {
        if (v.is_num()) size[k] = v.as_i64();
      }
    }
    r.args = entry->make_args(r.mode, seed, size);
  }

  const std::string program = r.program;
  const Mode mode = r.mode;
  Response resp = batcher_.execute(std::move(r));

  Json j = Json::object();
  j.set("ok", Json::boolean(resp.ok()));
  j.set("program", Json::string(program));
  j.set("mode", Json::string(mode_name(mode)));
  j.set("batch_size", Json::number(resp.batch_size));
  j.set("queue_wait_ms", Json::number(resp.queue_wait_ms));
  j.set("exec_ms", Json::number(resp.exec_ms));
  if (resp.ok()) {
    Json results = Json::array();
    for (const Value& v : resp.results) results.push(value_to_json(v, full));
    j.set("results", std::move(results));
    return {200, j.dump()};
  }
  j.set("error_kind", Json::string(resp.error_kind));
  j.set("error", Json::string(resp.error));
  const bool client_fault = resp.error_kind == "TypeError" || resp.error_kind == "ShapeError";
  return {client_fault ? 400 : 500, j.dump()};
}

// ---------------------------------------------------------------- client ---

HttpClient::HttpClient(std::string host, int port) : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { close_fd(); }

void HttpClient::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void HttpClient::ensure_connected() {
  if (fd_ >= 0) return;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw ResourceError("http client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    close_fd();
    throw ResourceError("http client: bad address '" + host_ + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close_fd();
    throw ResourceError("http client: connect to " + host_ + ":" + std::to_string(port_) +
                        " failed: " + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  set_recv_timeout(fd_, 30000);
}

int HttpClient::request_once(const std::string& method, const std::string& path,
                             const std::string& body, std::string* resp_body) {
  ensure_connected();
  std::string msg = method + " " + path + " HTTP/1.1\r\nHost: " + host_ +
                    "\r\nContent-Type: application/json\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\nConnection: keep-alive\r\n\r\n" + body;
  if (!send_all(fd_, msg.data(), msg.size())) {
    close_fd();
    throw ResourceError("http client: send failed");
  }
  HttpMessage resp;
  std::string buf;
  if (!read_message(fd_, buf, &resp, 64u << 20)) {
    close_fd();
    throw ResourceError("http client: read failed (connection closed?)");
  }
  if (resp_body) *resp_body = std::move(resp.body);
  // "HTTP/1.1 200 OK"
  const size_t sp = resp.start_line.find(' ');
  if (sp == std::string::npos) throw ResourceError("http client: malformed status line");
  return std::atoi(resp.start_line.c_str() + sp + 1);
}

int HttpClient::request(const std::string& method, const std::string& path,
                        const std::string& body, std::string* resp_body) {
  try {
    return request_once(method, path, body, resp_body);
  } catch (const npad::Error&) {
    // Server may have dropped an idle keep-alive connection: retry once on a
    // fresh socket.
    close_fd();
    return request_once(method, path, body, resp_body);
  }
}

int HttpClient::get(const std::string& path, std::string* resp_body) {
  return request("GET", path, "", resp_body);
}

int HttpClient::post(const std::string& path, const std::string& body,
                     std::string* resp_body) {
  return request("POST", path, body, resp_body);
}

} // namespace npad::serve
