#pragma once

// Cross-request batching executor. Clients submit objective/jacobian
// requests for registered programs and get a future<Response>; worker
// threads group compatible requests (same program, mode and argument
// shapes), wait up to a configurable window from the group's FIRST enqueue
// for the batch to fill, and execute the group as ONE stacked outer-map
// launch through rt::Interp::run_batched (runtime/batch.hpp). Results are
// de-stacked per request, and errors are isolated per request: a failing
// stacked launch falls back to per-request execution so the typed
// npad::Error lands on the request that caused it and its batchmates still
// succeed.
//
// Window semantics: a batch launches when it reaches max_batch OR when
// window_us has elapsed since its first request was enqueued, whichever
// comes first. A lone closed-loop client therefore pays the full window per
// request — that is the explicit latency-for-throughput trade; window_us=0
// disables waiting (pass-through for single requests).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/interp.hpp"
#include "serve/registry.hpp"

namespace npad::serve {

struct Request {
  std::string program;
  Mode mode = Mode::Objective;
  std::vector<rt::Value> args;
};

struct Response {
  std::vector<rt::Value> results;
  std::string error_kind;  // empty <=> success ("TypeError", "KernelError", ...)
  std::string error;       // full message incl. IR context trace
  int batch_size = 0;      // size of the executed group this request rode in
  double queue_wait_ms = 0.0;  // enqueue -> batch execution start
  double exec_ms = 0.0;        // execution time of the whole group

  bool ok() const { return error_kind.empty(); }
};

// InterpStats-style counters for the serving layer (atomics; counters() maps
// into bench JSON / the /v1/stats endpoint).
struct ServeStats {
  std::atomic<uint64_t> requests{0};           // submitted requests
  std::atomic<uint64_t> responses_ok{0};
  std::atomic<uint64_t> responses_error{0};
  std::atomic<uint64_t> rejected{0};           // failed validation at submit
  std::atomic<uint64_t> batches{0};            // executed groups (any size)
  std::atomic<uint64_t> stacked_batches{0};    // groups run as one stacked launch (B>1)
  std::atomic<uint64_t> stacked_requests{0};   // requests that rode a stacked launch
  std::atomic<uint64_t> single_requests{0};    // pass-through single executions
  std::atomic<uint64_t> fallback_requests{0};  // per-request re-runs after a stacked error
  std::atomic<uint64_t> max_batch{0};          // largest group observed
  std::atomic<uint64_t> queue_wait_us{0};      // summed per-request queue wait
  std::atomic<uint64_t> exec_us{0};            // summed per-group execution time

  std::map<std::string, uint64_t> counters() const {
    return {
        {"serve_requests", requests.load()},
        {"serve_responses_ok", responses_ok.load()},
        {"serve_responses_error", responses_error.load()},
        {"serve_rejected", rejected.load()},
        {"serve_batches", batches.load()},
        {"serve_stacked_batches", stacked_batches.load()},
        {"serve_stacked_requests", stacked_requests.load()},
        {"serve_single_requests", single_requests.load()},
        {"serve_fallback_requests", fallback_requests.load()},
        {"serve_max_batch", max_batch.load()},
        {"serve_queue_wait_us", queue_wait_us.load()},
        {"serve_exec_us", exec_us.load()},
    };
  }
};

struct BatcherOptions {
  int max_batch = 16;      // N: largest stacked group
  int64_t window_us = 1000;  // collection window from a group's first enqueue
  int workers = 2;         // batch-executing worker threads
  bool stack = true;       // false: execute every request individually
  bool start = true;       // false: construct paused; call start() explicitly
  rt::InterpOptions interp;
};

class Batcher {
public:
  explicit Batcher(BatcherOptions opts = {});
  ~Batcher();
  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  void start();
  // Signals workers, drains the queue (remaining requests still execute),
  // joins. Requests submitted after stop() are rejected with ResourceError.
  void stop();

  // Never throws npad errors: validation or execution failures come back as
  // an error Response through the future.
  std::future<Response> submit(Request r);

  // submit + get.
  Response execute(Request r) { return submit(std::move(r)).get(); }

  const ServeStats& stats() const { return stats_; }
  const rt::Interp& interp() const { return interp_; }
  const BatcherOptions& options() const { return opts_; }

private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request req;
    std::shared_ptr<const ProgramEntry> entry;
    std::promise<Response> prom;
    Clock::time_point t_enq;
    std::string key;  // grouping key: program | mode | arg signature
  };

  void worker_loop();
  // Moves up to (max_batch - batch.size()) queued requests with `key` into
  // `batch`. Caller holds mu_.
  void take_matching_locked(std::vector<Pending>& batch, const std::string& key);
  void exec_batch(std::vector<Pending> batch);

  BatcherOptions opts_;
  rt::Interp interp_;
  ServeStats stats_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  uint64_t submit_seq_ = 0;  // bumped per enqueue; wakes window waiters
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool stop_ = false;
};

} // namespace npad::serve
