#pragma once

// Registry of AD-compiled programs for the serving front-end: each entry
// holds an optimized objective program and an optimized derivative program
// (reverse-mode vjp for the scalar objectives, forward-mode jvp for the
// residual Jacobians, mirroring how the paper-table benches evaluate each
// workload). Programs are built once per process — the registry shares the
// immortal ProgCache/KernelCache/PlanCache entries across every serving
// tenant, so a request never pays compilation after first touch.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/ast.hpp"
#include "runtime/value.hpp"

namespace npad::serve {

enum class Mode : uint8_t { Objective, Jacobian };

inline const char* mode_name(Mode m) {
  return m == Mode::Objective ? "objective" : "jacobian";
}
bool parse_mode(const std::string& s, Mode* out);

// Request workload dimensions ("n", "d", "k", ...); entries missing from a
// request fall back to the program's default_size.
using SizeMap = std::map<std::string, int64_t>;

struct ProgramEntry {
  std::string name;
  ir::Prog objective;  // optimized primal
  ir::Prog jacobian;   // optimized derivative program
  const char* jacobian_kind = "vjp";  // "vjp" | "jvp"
  SizeMap default_size;
  // Deterministic synthetic request arguments for (mode, seed, size); the
  // derivative program's extra seed/tangent arguments are included for
  // Mode::Jacobian. Same (mode, seed, size) always yields the same data.
  std::function<std::vector<rt::Value>(Mode, uint64_t, const SizeMap&)> make_args;

  const ir::Prog& prog(Mode m) const {
    return m == Mode::Objective ? objective : jacobian;
  }
};

class Registry {
public:
  // Process-wide registry (immortal, like the runtime caches).
  static Registry& global();

  // Throws npad::TypeError on a duplicate name.
  void add(ProgramEntry e);

  // nullptr when absent.
  std::shared_ptr<const ProgramEntry> find(const std::string& name) const;

  std::vector<std::string> names() const;
  size_t size() const;

private:
  struct Impl;
  Impl* impl_;
  Registry();
};

// Builds and registers the built-in AD-compiled programs (gmm, lstm, kmeans,
// ba, hand, mc_transport) into the global registry. Thread-safe and
// idempotent; heavy on first call (runs vjp/jvp + the optimizer pipeline per
// program), free afterwards.
void register_builtin_programs();

} // namespace npad::serve
