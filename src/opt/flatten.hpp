#pragma once

// Flattening of regular nested parallelism (the classic Futhark-style
// transformation, specialized to the perfect nests our apps and vjp adjoints
// actually produce): annotates maps whose lambda is exactly one inner SOAC
// over the row params so the runtime can execute the nest as a single
// launch instead of one inner launch per row.
//
//   map(λrow. map(g, row…))            →  @flat   (FlatForm::Inner)
//     one compiled kernel over the fused n·m extent: rank-2 contiguous
//     inputs viewed as rank-1, outputs written rank-2 in place.
//
//   map(λrow. reduce/redomap(op, ne, row…))  →  @segred (FlatForm::SegRed)
//     one segmented reduction launch, parallel over segments, reusing the
//     compiled reduce artifact (KernelCache::get_reduce) — per-segment fold
//     into the accumulator registers, one store per segment, no per-row
//     launch setup.
//
// The matcher is ir/patterns.hpp::flatten_form (shared with typecheck,
// which validates annotations against structure). The pass only annotates;
// it never restructures, so a runtime that cannot honor the annotation
// (non-rank-2 inputs, non-kernelizable inner lambda, threaded accumulators
// at launch) falls back to the general nested path unchanged.
//
// Run it *after* fusion (pipeline order: simplify → accopt → fuse →
// simplify → flatten): fusion is what turns map(λrow. reduce(op, map(h,
// row))) into the single-statement redomap nest this pass accepts. The AD
// passes refuse annotated maps ("differentiate before flattening"), same as
// they refuse redomap/histomap forms.

#include "ir/ast.hpp"

namespace npad::opt {

struct FlattenStats {
  int flattened_maps = 0;     // maps annotated FlatForm::Inner
  int flattened_redomaps = 0; // maps annotated FlatForm::SegRed
};

ir::Prog flatten_nested(const ir::Prog& p, FlattenStats* stats = nullptr);

} // namespace npad::opt
