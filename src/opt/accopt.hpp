#pragma once

// Accumulator specialization (Section 6.1): rewrites common accumulator
// access patterns produced by reverse AD into constructs with specialized,
// contention-free execution:
//
//  Rule R (accumulator -> reduction): an upd_acc whose indices are invariant
//    to the surrounding map's parallel dimension is split out; the map
//    produces the per-iteration values, a reduce(+) sums them, and a single
//    read-modify-write lands the sum.
//
//  Rule H (accumulator -> histogram): an upd_acc whose (single) index is a
//    per-iteration bin becomes a reduce_by_index over the map's outputs.
//
// Both rules fire for upd_acc statements directly inside the top-level map
// of a withacc. The paper additionally splits and interchanges deeper
// map-nests to expose invariance (the matrix-multiplication case); that
// reorganization is only partially covered here and is recorded as a
// limitation in DESIGN.md/EXPERIMENTS.md.

#include "ir/ast.hpp"

namespace npad::opt {

struct AccOptStats {
  int to_reduction = 0;
  int to_histogram = 0;
};

ir::Prog optimize_accumulators(const ir::Prog& p, AccOptStats* stats = nullptr);

} // namespace npad::opt
