#include "opt/pipeline.hpp"

#include "opt/simplify.hpp"

namespace npad::opt {

ir::Prog optimize(const ir::Prog& p, const OptOptions& opts, PipelineStats* stats) {
  ir::Prog cur = p;
  if (opts.simplify) cur = simplify(cur);
  if (opts.accopt) cur = optimize_accumulators(cur, stats != nullptr ? &stats->accopt : nullptr);
  if (opts.fuse_maps) cur = fuse_maps(cur, stats != nullptr ? &stats->fuse : nullptr);
  if (opts.simplify) cur = simplify(cur);
  if (opts.flatten_nested) {
    cur = flatten_nested(cur, stats != nullptr ? &stats->flatten : nullptr);
  }
  return cur;
}

} // namespace npad::opt
