#include "opt/simplify.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "ir/analysis.hpp"
#include "ir/patterns.hpp"
#include "ir/print.hpp"
#include "ir/visit.hpp"

namespace npad::opt {

namespace {

using namespace ir;

// ------------------------------------------------------------------ DCE ----

class Dce {
public:
  Body body(const Body& in, std::unordered_set<uint32_t> live) {
    for (const auto& a : in.result) {
      if (a.is_var()) live.insert(a.var().id);
    }
    std::vector<Stm> kept;
    for (size_t i = in.stms.size(); i-- > 0;) {
      const Stm& st = in.stms[i];
      bool needed = false;
      for (Var v : st.vars) needed = needed || live.count(v.id) > 0;
      // Accumulator updates mutate shared buffers in place: a statement
      // whose nested bodies upd_acc a free accumulator is observable even
      // when it binds nothing (vjp adjoint sweeps emit zero-result maps of
      // exactly this shape), so it can never be dropped.
      if (!needed && has_acc_effects(st.e)) needed = true;
      if (!needed) continue;
      Stm ns = st;
      ns.e = prune_exp(st.e);
      // Bindings kill liveness; uses (incl. free vars of nests) generate it.
      for (Var v : ns.vars) live.erase(v.id);
      for_each_atom(ns.e, [&](const Atom& a) {
        if (a.is_var()) live.insert(a.var().id);
      });
      for_each_nested(ns.e, [&](const NestedScope& s) {
        for (Var v : free_vars(*s.body, s.bound)) live.insert(v.id);
      });
      kept.push_back(std::move(ns));
    }
    Body out;
    out.result = in.result;
    out.stms.assign(kept.rbegin(), kept.rend());
    return out;
  }

private:
  // Prunes nested scopes with their own result liveness.
  Exp prune_exp(const Exp& e) {
    auto prune_lambda = [&](const LambdaPtr& l) -> LambdaPtr {
      if (!l) return nullptr;
      Lambda nl = *l;
      nl.body = body(l->body, {});
      return make_lambda(std::move(nl));
    };
    return std::visit(
        Overload{
            [&](const OpIf& o) -> Exp {
              return OpIf{o.c, make_body(body(*o.tb, {})), make_body(body(*o.fb, {}))};
            },
            [&](const OpLoop& o) -> Exp {
              OpLoop n = o;
              n.body = make_body(body(*o.body, {}));
              n.while_cond = prune_lambda(o.while_cond);
              return n;
            },
            [&](const OpMap& o) -> Exp { return OpMap{prune_lambda(o.f), o.args, o.fused, o.flat}; },
            [&](const OpReduce& o) -> Exp {
              return OpReduce{prune_lambda(o.op), o.neutral, o.args, prune_lambda(o.pre),
                              o.fused};
            },
            [&](const OpScan& o) -> Exp {
              return OpScan{prune_lambda(o.op), o.neutral, o.args, prune_lambda(o.pre), o.fused};
            },
            [&](const OpHist& o) -> Exp {
              return OpHist{prune_lambda(o.op), o.neutral, o.dest, o.inds, o.vals,
                            prune_lambda(o.pre), o.fused};
            },
            [&](const OpWithAcc& o) -> Exp { return OpWithAcc{o.arrs, prune_lambda(o.f)}; },
            [&](const auto& o) -> Exp { return o; },
        },
        e);
  }
};

// ------------------------------------------------- copy-prop + cfold -------

class Folder {
public:
  struct Env {
    std::unordered_map<uint32_t, Atom> alias;  // var -> var or const
  };

  // A (re-)binding of `v` invalidates aliases *from* v and aliases *to* v:
  // keeping an X -> v entry across a shadowing re-binding of v would
  // capture uses of X (the AD passes re-install forward sweeps re-using
  // ids, so same-id re-binding is routine, including inside nested scopes).
  // The target scan is linear in the live-alias count per binding —
  // quadratic in pathological bodies, accepted like fuse_once's per-step
  // table rebuild; a reverse index would restore O(1) at the cost of a
  // second structure to keep consistent here and in Cloner::bind.
  static void kill_alias(Env& env, Var v) {
    env.alias.erase(v.id);
    for (auto it = env.alias.begin(); it != env.alias.end();) {
      if (it->second.is_var() && it->second.var() == v) {
        it = env.alias.erase(it);
      } else {
        ++it;
      }
    }
  }

  Body body(const Body& in, Env env) {
    Body out;
    for (const auto& st : in.stms) {
      Stm ns = st;
      ns.e = rewrite(st.e, env);
      // Shadowing: a re-binding invalidates aliases of and to that id.
      for (Var v : ns.vars) kill_alias(env, v);
      // Record folding opportunities for single-binding statements.
      if (ns.vars.size() == 1) {
        if (auto folded = fold(ns.e)) {
          ns.e = OpAtom{*folded};
          env.alias[ns.vars[0].id] = *folded;
        } else if (const auto* oa = std::get_if<OpAtom>(&ns.e)) {
          env.alias[ns.vars[0].id] = oa->a;
        }
      }
      out.stms.push_back(std::move(ns));
    }
    out.result.reserve(in.result.size());
    for (const auto& a : in.result) out.result.push_back(subst(a, env));
    return out;
  }

private:
  static Atom subst(const Atom& a, const Env& env) {
    if (!a.is_var()) return a;
    auto it = env.alias.find(a.var().id);
    if (it == env.alias.end()) return a;
    return it->second;
  }

  static Var subst_var(Var v, const Env& env) {
    auto it = env.alias.find(v.id);
    if (it != env.alias.end() && it->second.is_var()) return it->second.var();
    return v;
  }

  Exp rewrite(const Exp& e, const Env& env) {
    // Substitute aliases in atom positions; var positions only accept vars.
    Module dummy;  // Cloner needs a module only when refreshing bindings
    Subst s;
    for (const auto& [id, a] : env.alias) s[id] = a;
    Cloner c(dummy, /*refresh=*/false);
    Subst s2 = s;
    Exp ne = c.exp(e, s2);
    // Recurse into nested scopes with a copy of the environment.
    return std::visit(
        Overload{
            [&](const OpIf& o) -> Exp {
              return OpIf{o.c, make_body(body(*o.tb, env)), make_body(body(*o.fb, env))};
            },
            [&](const OpLoop& o) -> Exp {
              OpLoop n = o;
              Env inner = env;
              for (const auto& p : o.params) kill_alias(inner, p.var);
              if (o.idx.valid()) kill_alias(inner, o.idx);
              n.body = make_body(body(*o.body, inner));
              if (o.while_cond) {
                Lambda wl = *o.while_cond;
                Env wenv = env;
                for (const auto& p : wl.params) kill_alias(wenv, p.var);
                wl.body = body(wl.body, wenv);
                n.while_cond = make_lambda(std::move(wl));
              }
              return n;
            },
            [&](const OpMap& o) -> Exp { return OpMap{sub_lambda(o.f, env), o.args, o.fused, o.flat}; },
            [&](const OpReduce& o) -> Exp {
              return OpReduce{sub_lambda(o.op, env), o.neutral, o.args, sub_lambda(o.pre, env),
                              o.fused};
            },
            [&](const OpScan& o) -> Exp {
              return OpScan{sub_lambda(o.op, env), o.neutral, o.args, sub_lambda(o.pre, env),
                            o.fused};
            },
            [&](const OpHist& o) -> Exp {
              return OpHist{sub_lambda(o.op, env), o.neutral, o.dest, o.inds, o.vals,
                            sub_lambda(o.pre, env), o.fused};
            },
            [&](const OpWithAcc& o) -> Exp { return OpWithAcc{o.arrs, sub_lambda(o.f, env)}; },
            [&](const auto& o) -> Exp { return o; },
        },
        ne);
  }

  LambdaPtr sub_lambda(const LambdaPtr& l, const Env& env) {
    if (!l) return nullptr;
    Lambda nl = *l;
    Env inner = env;
    for (const auto& p : nl.params) kill_alias(inner, p.var);
    nl.body = body(nl.body, inner);
    return make_lambda(std::move(nl));
  }

  static bool is_c(const Atom& a, double v) {
    return a.is_const() && a.cval().t == ScalarType::F64 && a.cval().f == v;
  }

  std::optional<Atom> fold(const Exp& e) {
    const auto* bin = std::get_if<OpBin>(&e);
    if (bin != nullptr) {
      const Atom &a = bin->a, &b = bin->b;
      if (a.is_const() && b.is_const() && a.cval().t == ScalarType::F64 &&
          b.cval().t == ScalarType::F64) {
        const double x = a.cval().f, y = b.cval().f;
        switch (bin->op) {
          case BinOp::Add: return cf64(x + y);
          case BinOp::Sub: return cf64(x - y);
          case BinOp::Mul: return cf64(x * y);
          case BinOp::Div: return cf64(x / y);
          case BinOp::Pow: return cf64(std::pow(x, y));
          case BinOp::Min: return cf64(std::min(x, y));
          case BinOp::Max: return cf64(std::max(x, y));
          default: return std::nullopt;
        }
      }
      if (a.is_const() && b.is_const() && a.cval().t == ScalarType::I64 &&
          b.cval().t == ScalarType::I64) {
        const int64_t x = a.cval().i, y = b.cval().i;
        switch (bin->op) {
          case BinOp::Add: return ci64(x + y);
          case BinOp::Sub: return ci64(x - y);
          case BinOp::Mul: return ci64(x * y);
          default: return std::nullopt;
        }
      }
      switch (bin->op) {
        case BinOp::Add:
          if (is_c(a, 0.0)) return b;
          if (is_c(b, 0.0)) return a;
          break;
        case BinOp::Sub:
          if (is_c(b, 0.0)) return a;
          break;
        case BinOp::Mul:
          if (is_c(a, 1.0)) return b;
          if (is_c(b, 1.0)) return a;
          if (is_c(a, 0.0) || is_c(b, 0.0)) return cf64(0.0);
          break;
        case BinOp::Div:
          if (is_c(b, 1.0)) return a;
          break;
        case BinOp::Pow:
          if (is_c(b, 1.0)) return a;
          break;
        default: break;
      }
      return std::nullopt;
    }
    if (const auto* sel = std::get_if<OpSelect>(&e)) {
      if (sel->c.is_const()) return sel->c.cval().i != 0 ? sel->t : sel->f;
      if (sel->t == sel->f) return sel->t;
      return std::nullopt;
    }
    if (const auto* un = std::get_if<OpUn>(&e)) {
      if (!un->a.is_const()) return std::nullopt;
      if (un->a.cval().t == ScalarType::F64) {
        const double x = un->a.cval().f;
        switch (un->op) {
          case UnOp::Neg: return cf64(-x);
          case UnOp::Exp: return cf64(std::exp(x));
          case UnOp::Log: return cf64(std::log(x));
          case UnOp::Sqrt: return cf64(std::sqrt(x));
          case UnOp::Sin: return cf64(std::sin(x));
          case UnOp::Cos: return cf64(std::cos(x));
          case UnOp::Tanh: return cf64(std::tanh(x));
          case UnOp::Abs: return cf64(std::fabs(x));
          case UnOp::ToI64: return ci64(static_cast<int64_t>(x));
          default: return std::nullopt;
        }
      }
      if (un->a.cval().t == ScalarType::I64 && un->op == UnOp::ToF64) {
        return cf64(static_cast<double>(un->a.cval().i));
      }
      return std::nullopt;
    }
    return std::nullopt;
  }
};

} // namespace

Prog dead_code_elim(const Prog& p) {
  Prog out = p;
  Dce d;
  out.fn.body = d.body(p.fn.body, {});
  return out;
}

Prog fold_constants(const Prog& p) {
  Prog out = p;
  Folder f;
  out.fn.body = f.body(p.fn.body, {});
  return out;
}

Prog simplify(const Prog& p) {
  Prog cur = p;
  size_t prev = SIZE_MAX;
  for (int iter = 0; iter < 8; ++iter) {
    cur = fold_constants(cur);
    cur = dead_code_elim(cur);
    const size_t n = count_stms(cur.fn.body);
    if (n == prev) break;
    prev = n;
  }
  return cur;
}

} // namespace npad::opt
