#pragma once

// The simplification engine (Section 6): copy propagation, constant folding
// with algebraic identities, and dead-code elimination. DCE is what removes
// the redundant forward sweeps of perfectly-nested scopes after reverse AD
// (Fig. 2) — the tests assert the statement-count property.

#include "ir/ast.hpp"

namespace npad::opt {

// Removes statements none of whose bindings are live. Recurses into nested
// scopes. All IR constructs are pure (accumulators are threaded through
// results), so liveness alone is sufficient.
ir::Prog dead_code_elim(const ir::Prog& p);

// Copy propagation + constant folding (x+0, x*1, x*0, const ops, constant
// selects), applied in one top-down walk per scope.
ir::Prog fold_constants(const ir::Prog& p);

// fold + DCE iterated to a (bounded) fixpoint.
ir::Prog simplify(const ir::Prog& p);

} // namespace npad::opt
