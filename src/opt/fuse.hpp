#pragma once

// Producer→consumer fusion: when a map's result is consumed only
// element-wise — exclusively as an argument of one later map, reduce,
// scan, or as the vals stream of one reduce_by_index, over the same
// iteration space — the producer is folded into the consumer and the
// intermediate array is never materialized. Chains fuse transitively (a
// 3-map element-wise chain becomes one map), including the
// zeros/elementwise-add adjoint map chains emitted by core/vjp.cpp.
//
// Map consumers fuse lambda-into-lambda as before. Reduce/scan consumers
// take the *redomap* form: the producer folds into the consumer's optional
// element-wise pre-lambda (OpReduce::pre / OpScan::pre, created from the
// identity on first fusion), so reduce(+, map(f, xs)) — the dominant
// pattern in vjp adjoints that contract a gradient — runs load→map→fold in
// one pass with no intermediate. Redomap pre-lambdas are themselves fusion
// consumers, so whole map chains feeding a reduction collapse. Hist
// consumers take the analogous *histomap* form (OpHist::pre) for their
// vals stream — hist(op, dest, is, map(f, vs)), the shape the vjp hist
// rules emit — restricted to single-input producers (OpHist has one vals
// slot); dest and inds are not candidates (dest is consumed whole, inds
// select bins).
//
// Reduce/scan/hist consumers additionally require a *scalar* producer
// (rank-0 params and results): a row-level producer would make the
// pre-lambda non-scalar, which cannot kernel-compile and destroys the
// perfectly nested map(λrow. reduce…) shape opt/flatten.cpp collapses into
// a segmented launch.
//
// A producer is fusable when it binds a single result, its lambda threads no
// accumulators, and every use of the result is an argument position of the
// one consumer. The consumer map may thread accumulators; its threading is
// preserved verbatim in the fused lambda. Anything else — results gathered
// at arbitrary indices (the result appears free in the consumer lambda),
// used twice by different statements, or re-bound in between — is left
// alone.
//
// Fused consumers carry a `fused` annotation (the number of producers folded
// in) which the runtime adds to InterpStats::fused_maps /
// fused_reduces / fused_scans per launch.

#include "ir/ast.hpp"

namespace npad::opt {

struct FuseStats {
  int fused_maps = 0;      // producer maps folded into consumer maps
  int fused_redomaps = 0;  // producer maps folded into reduce/scan consumers
  int fused_hists = 0;     // producer maps folded into hist consumers
};

ir::Prog fuse_maps(const ir::Prog& p, FuseStats* stats = nullptr);

} // namespace npad::opt
