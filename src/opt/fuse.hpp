#pragma once

// Producer→consumer map fusion: when a map's result is consumed only
// element-wise — i.e. exclusively as an argument of one later map over the
// same iteration space — the two lambdas are fused into a single map and the
// intermediate array is never materialized. Chains fuse transitively
// (a 3-map element-wise chain becomes one map), including the
// zeros/elementwise-add adjoint map chains emitted by core/vjp.cpp.
//
// A producer is fusable when it binds a single result, its lambda threads no
// accumulators, and every use of the result is an argument position of the
// one consumer map. The consumer may thread accumulators; its threading is
// preserved verbatim in the fused lambda. Anything else — results consumed
// by reduce/index/length, gathered at arbitrary indices (the result appears
// free in the consumer lambda), used twice by different statements, or
// re-bound in between — is left alone.
//
// Fused maps carry an `OpMap::fused` annotation (the number of producers
// folded in) which the runtime adds to InterpStats::fused_maps per launch.

#include "ir/ast.hpp"

namespace npad::opt {

struct FuseStats {
  int fused_maps = 0;  // producer maps eliminated
};

ir::Prog fuse_maps(const ir::Prog& p, FuseStats* stats = nullptr);

} // namespace npad::opt
