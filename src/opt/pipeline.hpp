#pragma once

// The standard post-AD optimization pipeline. Individual passes stay usable
// on their own; this composes them in the canonical order:
//
//   simplify  →  accumulator specialization (accopt)  →  map fusion  →
//   final simplify  →  flattening
//
// Fusion runs after simplify/accopt because they expose chains (dead
// forward sweeps removed, copy-propagated aliases collapsed, withacc
// rewrites producing fresh map→map sequences) that only then become
// fusable. Flattening runs last: fusion is what collapses map(λrow.
// reduce(op, map(h, row))) bodies into the single-statement redomap nests
// the flattener annotates (opt/flatten.hpp).

#include "ir/ast.hpp"
#include "opt/accopt.hpp"
#include "opt/flatten.hpp"
#include "opt/fuse.hpp"

namespace npad::opt {

struct OptOptions {
  bool simplify = true;        // copy-prop + constant folding + DCE, to fixpoint
  bool accopt = true;          // §6.1 accumulator → reduction/histogram rewrites
  bool fuse_maps = true;       // producer→consumer map fusion (opt/fuse.hpp)
  bool flatten_nested = true;  // regular-nest flattening annotations (opt/flatten.hpp)
};

struct PipelineStats {
  AccOptStats accopt;
  FuseStats fuse;
  FlattenStats flatten;
};

ir::Prog optimize(const ir::Prog& p, const OptOptions& opts = {},
                  PipelineStats* stats = nullptr);

} // namespace npad::opt
