#include "opt/flatten.hpp"

#include "ir/patterns.hpp"
#include "ir/visit.hpp"

namespace npad::opt {

namespace {

using namespace ir;

class Flattener {
public:
  explicit Flattener(FlattenStats& stats) : stats_(&stats) {}

  Body body(const Body& in) {
    Body out;
    out.result = in.result;
    out.stms.reserve(in.stms.size());
    for (const auto& st : in.stms) {
      Stm ns = st;
      ns.e = exp(st.e);
      out.stms.push_back(std::move(ns));
    }
    return out;
  }

private:
  LambdaPtr sub_lambda(const LambdaPtr& l) {
    if (!l) return nullptr;
    Lambda nl = *l;
    nl.body = body(l->body);
    return make_lambda(std::move(nl));
  }

  // Rewrites nested scopes first (deeper nests annotate at their own level),
  // then matches this map. A rank-3 nest map(λslab. map(λrow. map(g, row)))
  // thus annotates the middle map @flat; the outer stays general (its inner
  // lambda is row-level, not scalar) but each of its rows now runs one
  // collapsed launch instead of m inner launches.
  Exp exp(const Exp& e) {
    return std::visit(
        Overload{
            [&](const OpIf& o) -> Exp {
              return OpIf{o.c, make_body(body(*o.tb)), make_body(body(*o.fb))};
            },
            [&](const OpLoop& o) -> Exp {
              OpLoop n = o;
              n.body = make_body(body(*o.body));
              n.while_cond = sub_lambda(o.while_cond);
              return n;
            },
            [&](const OpMap& o) -> Exp {
              OpMap n{sub_lambda(o.f), o.args, o.fused, o.flat};
              const FlatForm form = flatten_form(n);
              if (form != n.flat) {
                // Annotate fresh matches; also clears a stale annotation
                // whose structure no longer qualifies (idempotent re-runs).
                n.flat = form;
              }
              if (n.flat == FlatForm::Inner) ++stats_->flattened_maps;
              if (n.flat == FlatForm::SegRed) ++stats_->flattened_redomaps;
              return n;
            },
            [&](const OpReduce& o) -> Exp {
              return OpReduce{sub_lambda(o.op), o.neutral, o.args, sub_lambda(o.pre), o.fused};
            },
            [&](const OpScan& o) -> Exp {
              return OpScan{sub_lambda(o.op), o.neutral, o.args, sub_lambda(o.pre), o.fused};
            },
            [&](const OpHist& o) -> Exp {
              return OpHist{sub_lambda(o.op), o.neutral, o.dest, o.inds, o.vals,
                            sub_lambda(o.pre), o.fused};
            },
            [&](const OpWithAcc& o) -> Exp { return OpWithAcc{o.arrs, sub_lambda(o.f)}; },
            [&](const auto& x) -> Exp { return x; },
        },
        e);
  }

  FlattenStats* stats_;
};

} // namespace

Prog flatten_nested(const Prog& p, FlattenStats* stats) {
  FlattenStats local;
  Flattener fl(stats != nullptr ? *stats : local);
  Prog out = p;
  out.fn.body = fl.body(p.fn.body);
  return out;
}

} // namespace npad::opt
