#pragma once

// Loop transformations applied before reverse AD (Sections 4.3 and 6.2):
//
//  - bound_whiles: while loops cannot be checkpointed directly because the
//    trip count is unknown. With a user `while_bound` annotation the loop
//    becomes a bounded for-loop whose body is guarded by the condition;
//    without one, an inspector (a cloned counting loop) computes the exact
//    trip count first and the loop becomes an unguarded for-loop.
//
//  - apply_stripmining: a loop annotated `stripmine = f` of count n is split
//    into an outer loop of ceil(n/f) and a guarded inner loop of f, reducing
//    checkpoint memory from O(n) to O(n/f + f) at the cost of one extra
//    re-execution level (the paper's time-space trade-off, Fig. 4).

#include "ir/ast.hpp"

namespace npad::opt {

ir::Prog bound_whiles(const ir::Prog& p);
ir::Prog apply_stripmining(const ir::Prog& p);

// Both passes; run this before ad::vjp.
ir::Prog prepare_for_ad(const ir::Prog& p);

} // namespace npad::opt
