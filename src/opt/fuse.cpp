#include "opt/fuse.hpp"

#include <unordered_map>
#include <unordered_set>

#include "ir/analysis.hpp"
#include "ir/visit.hpp"

namespace npad::opt {

namespace {

using namespace ir;

class Fuser {
public:
  Fuser(Module& mod, FuseStats& stats) : mod_(mod), stats_(stats) {}

  Body body(const Body& in) {
    Body cur;
    cur.result = in.result;
    cur.stms.reserve(in.stms.size());
    // Fuse inside nested scopes first, then at this level to a fixpoint so
    // chains collapse transitively.
    for (const auto& st : in.stms) {
      Stm ns = st;
      ns.e = rewrite_nested(st.e);
      cur.stms.push_back(std::move(ns));
    }
    while (fuse_once(cur)) {
    }
    return cur;
  }

private:
  LambdaPtr sub_lambda(const LambdaPtr& l) {
    if (!l) return nullptr;
    Lambda nl = *l;
    nl.body = body(l->body);
    return make_lambda(std::move(nl));
  }

  Exp rewrite_nested(const Exp& e) {
    return std::visit(
        Overload{
            [&](const OpIf& o) -> Exp {
              return OpIf{o.c, make_body(body(*o.tb)), make_body(body(*o.fb))};
            },
            [&](const OpLoop& o) -> Exp {
              OpLoop n = o;
              n.body = make_body(body(*o.body));
              n.while_cond = sub_lambda(o.while_cond);
              return n;
            },
            [&](const OpMap& o) -> Exp { return OpMap{sub_lambda(o.f), o.args, o.fused}; },
            [&](const OpReduce& o) -> Exp { return OpReduce{sub_lambda(o.op), o.neutral, o.args}; },
            [&](const OpScan& o) -> Exp { return OpScan{sub_lambda(o.op), o.neutral, o.args}; },
            [&](const OpHist& o) -> Exp {
              return OpHist{sub_lambda(o.op), o.neutral, o.dest, o.inds, o.vals};
            },
            [&](const OpWithAcc& o) -> Exp { return OpWithAcc{o.arrs, sub_lambda(o.f)}; },
            [&](const auto& o) -> Exp { return o; },
        },
        e);
  }

  // A lambda is a fusable producer when it threads no accumulators: its
  // computation is purely per-element, so it can be replayed inside the
  // consumer at the same iteration index.
  static bool pure_elementwise(const Lambda& f) {
    for (const auto& p : f.params) {
      if (p.type.is_acc) return false;
    }
    for (const auto& t : f.rets) {
      if (t.is_acc) return false;
    }
    return true;
  }

  // True when `e` (or any statement nested inside it, at any depth) consumes
  // an array in `needed` via an in-place-mutating construct.
  static bool consumes_needed(const Exp& e, const std::unordered_set<uint32_t>& needed) {
    bool bad = false;
    std::visit(Overload{
                   [&](const OpUpdate& o) { bad = needed.count(o.arr.id) > 0; },
                   [&](const OpScatter& o) { bad = needed.count(o.dest.id) > 0; },
                   [&](const OpHist& o) { bad = needed.count(o.dest.id) > 0; },
                   [&](const OpWithAcc& o) {
                     for (Var a : o.arrs) bad = bad || needed.count(a.id) > 0;
                   },
                   [&](const auto&) {},
               },
               e);
    if (bad) return true;
    for_each_nested(e, [&](const NestedScope& s) {
      for (const auto& st : s.body->stms) bad = bad || consumes_needed(st.e, needed);
    });
    return bad;
  }

  // One fusion step over `b`; returns true when a producer was folded in.
  // The bind/use tables are recomputed per step — quadratic in the length of
  // a fusable chain, accepted because real chains (vjp adjoint plumbing) are
  // a handful of maps while table reuse across mutations is easy to get
  // subtly wrong.
  bool fuse_once(Body& b) {
    // Binding multiplicity (shadowed ids are never fused) and use counts.
    // free_vars() deduplicates per nested scope, but any nonzero extra use
    // already disqualifies exclusivity, so dedup does not matter here.
    std::unordered_map<uint32_t, int> bind_count;
    for (const auto& st : b.stms) {
      for (Var v : st.vars) ++bind_count[v.id];
    }
    std::unordered_map<uint32_t, int> uses;
    for (const auto& st : b.stms) {
      for_each_atom(st.e, [&](const Atom& a) {
        if (a.is_var()) ++uses[a.var().id];
      });
      for_each_nested(st.e, [&](const NestedScope& s) {
        for (Var v : free_vars(*s.body, s.bound)) ++uses[v.id];
      });
    }
    for (const auto& a : b.result) {
      if (a.is_var()) ++uses[a.var().id];
    }

    for (size_t j = 0; j < b.stms.size(); ++j) {
      const auto* cons = std::get_if<OpMap>(&b.stms[j].e);
      if (cons == nullptr) continue;
      for (Var v : cons->args) {
        if (bind_count[v.id] != 1) continue;
        // The producer's result must be used only as argument positions of
        // this consumer (no gathers from it inside the lambda, no other
        // statement, no body result).
        int occurrences = 0;
        for (Var a : cons->args) occurrences += a == v ? 1 : 0;
        if (uses[v.id] != occurrences) continue;
        // Locate the producing statement.
        size_t i = b.stms.size();
        for (size_t s = 0; s < j; ++s) {
          if (b.stms[s].vars.size() == 1 && b.stms[s].vars[0] == v) {
            i = s;
            break;
          }
        }
        if (i == b.stms.size()) continue;
        const auto* prod = std::get_if<OpMap>(&b.stms[i].e);
        if (prod == nullptr || prod->args.empty()) continue;
        if (!pure_elementwise(*prod->f)) continue;
        // Everything the producer references must still mean the same thing
        // at the consumer: no statement in between may re-bind its arguments
        // or its lambda's free variables, and none may consume one of them —
        // update/scatter/hist/withacc mutate their array's buffer in place
        // when it is uniquely owned, so deferring the producer's reads past
        // such a statement would observe post-mutation data. (Pure renames
        // that alias a needed array are collapsed by simplify's copy
        // propagation before fusion runs in the pipeline.)
        std::unordered_set<uint32_t> needed;
        for (Var a : prod->args) needed.insert(a.id);
        for (Var fv : free_vars(*prod->f)) needed.insert(fv.id);
        bool blocked = false;
        for (size_t s = i + 1; s < j && !blocked; ++s) {
          for (Var bound : b.stms[s].vars) blocked = blocked || needed.count(bound.id) > 0;
          blocked = blocked || consumes_needed(b.stms[s].e, needed);
        }
        if (blocked) continue;

        fuse_pair(b, i, j, v);
        return true;
      }
    }
    return false;
  }

  // Folds producer statement `i` (binding `v`) into consumer map `j`.
  void fuse_pair(Body& b, size_t i, size_t j, Var v) {
    const OpMap prod = std::get<OpMap>(b.stms[i].e);
    const OpMap cons = std::get<OpMap>(b.stms[j].e);

    Lambda fused;
    std::vector<Var> fargs;
    std::vector<Atom> prod_param_atoms;
    for (size_t k = 0; k < prod.args.size(); ++k) {
      Var p = mod_.fresh(mod_.name(prod.f->params[k].var));
      fused.params.push_back(Param{p, prod.f->params[k].type});
      fargs.push_back(prod.args[k]);
      prod_param_atoms.push_back(Atom(p));
    }
    auto [stms1, res1] = inline_lambda(mod_, *prod.f, prod_param_atoms);
    Atom fused_elem = res1[0];
    if (fused_elem.is_const()) {
      // Bind the constant so array/binding positions in the consumer body
      // can still be substituted by a variable.
      Var t = mod_.fresh("fe");
      stms1.push_back(stm1(t, prod.f->rets[0], OpAtom{fused_elem}));
      fused_elem = Atom(t);
    }
    std::vector<Atom> cons_args;
    for (size_t k = 0; k < cons.args.size(); ++k) {
      if (cons.args[k] == v) {
        cons_args.push_back(fused_elem);
        continue;
      }
      Var p = mod_.fresh(mod_.name(cons.f->params[k].var));
      fused.params.push_back(Param{p, cons.f->params[k].type});
      fargs.push_back(cons.args[k]);
      cons_args.push_back(Atom(p));
    }
    auto [stms2, res2] = inline_lambda(mod_, *cons.f, cons_args);
    fused.body.stms = std::move(stms1);
    fused.body.stms.insert(fused.body.stms.end(), std::make_move_iterator(stms2.begin()),
                           std::make_move_iterator(stms2.end()));
    fused.body.result = std::move(res2);
    fused.rets = cons.f->rets;

    b.stms[j].e = OpMap{make_lambda(std::move(fused)), std::move(fargs),
                        prod.fused + cons.fused + 1};
    b.stms.erase(b.stms.begin() + static_cast<long>(i));
    ++stats_.fused_maps;
  }

  Module& mod_;
  FuseStats& stats_;
};

} // namespace

Prog fuse_maps(const Prog& p, FuseStats* stats) {
  FuseStats local;
  FuseStats& st = stats != nullptr ? *stats : local;
  Prog out = p;
  Fuser f(*out.mod, st);
  out.fn.body = f.body(p.fn.body);
  return out;
}

} // namespace npad::opt
