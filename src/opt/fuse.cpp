#include "opt/fuse.hpp"

#include <unordered_map>
#include <unordered_set>

#include "ir/analysis.hpp"
#include "ir/patterns.hpp"
#include "ir/visit.hpp"

namespace npad::opt {

namespace {

using namespace ir;

class Fuser {
public:
  Fuser(Module& mod, FuseStats& stats) : mod_(mod), stats_(stats) {}

  Body body(const Body& in) {
    Body cur;
    cur.result = in.result;
    cur.stms.reserve(in.stms.size());
    // Fuse inside nested scopes first, then at this level to a fixpoint so
    // chains collapse transitively.
    for (const auto& st : in.stms) {
      Stm ns = st;
      ns.e = rewrite_nested(st.e);
      cur.stms.push_back(std::move(ns));
    }
    redirect_lengths(cur);
    while (fuse_once(cur)) {
    }
    return cur;
  }

  // length(map f xs..) == length(xs): redirects length statements from a
  // map's result to the map's first array argument, so a measured producer
  // can still fuse into its one real consumer. The reverse-mode reduce rule
  // emits exactly this shape — the adjoint replicate needs the reduce
  // argument's extent — and without the redirect every vjp adjoint chain
  // ending in a reduce would keep its intermediate alive just to measure it.
  void redirect_lengths(Body& b) {
    std::unordered_map<uint32_t, int> bind_count;
    for (const auto& st : b.stms) {
      for (Var v : st.vars) ++bind_count[v.id];
    }
    std::unordered_map<uint32_t, Var> len_src;
    for (const auto& st : b.stms) {
      const auto* mp = std::get_if<OpMap>(&st.e);
      if (mp == nullptr || st.vars.size() != 1 || bind_count[st.vars[0].id] != 1) continue;
      for (size_t i = 0; i < mp->args.size(); ++i) {
        if (mp->f->params[i].type.is_acc) continue;
        // The source must not be shadowed anywhere in this body: a unique
        // (or param) binding is the one the map itself read.
        if (bind_count[mp->args[i].id] <= 1) len_src[st.vars[0].id] = mp->args[i];
        break;
      }
    }
    if (len_src.empty()) return;
    for (auto& st : b.stms) {
      auto* ln = std::get_if<OpLength>(&st.e);
      if (ln == nullptr) continue;
      // Chase map-of-map chains to the root argument so every intermediate
      // of the chain stays single-consumer (cycles are impossible: each
      // source is bound strictly before its map).
      auto it = len_src.find(ln->arr.id);
      while (it != len_src.end()) {
        ln->arr = it->second;
        it = len_src.find(ln->arr.id);
      }
    }
  }

private:
  LambdaPtr sub_lambda(const LambdaPtr& l) {
    if (!l) return nullptr;
    Lambda nl = *l;
    nl.body = body(l->body);
    return make_lambda(std::move(nl));
  }

  Exp rewrite_nested(const Exp& e) {
    return std::visit(
        Overload{
            [&](const OpIf& o) -> Exp {
              return OpIf{o.c, make_body(body(*o.tb)), make_body(body(*o.fb))};
            },
            [&](const OpLoop& o) -> Exp {
              OpLoop n = o;
              n.body = make_body(body(*o.body));
              n.while_cond = sub_lambda(o.while_cond);
              return n;
            },
            [&](const OpMap& o) -> Exp { return OpMap{sub_lambda(o.f), o.args, o.fused, o.flat}; },
            [&](const OpReduce& o) -> Exp {
              return OpReduce{sub_lambda(o.op), o.neutral, o.args, sub_lambda(o.pre), o.fused};
            },
            [&](const OpScan& o) -> Exp {
              return OpScan{sub_lambda(o.op), o.neutral, o.args, sub_lambda(o.pre), o.fused};
            },
            [&](const OpHist& o) -> Exp {
              return OpHist{sub_lambda(o.op), o.neutral, o.dest, o.inds, o.vals,
                            sub_lambda(o.pre), o.fused};
            },
            [&](const OpWithAcc& o) -> Exp { return OpWithAcc{o.arrs, sub_lambda(o.f)}; },
            [&](const auto& o) -> Exp { return o; },
        },
        e);
  }

  // A lambda is a fusable producer when it threads no accumulators: its
  // computation is purely per-element, so it can be replayed inside the
  // consumer at the same iteration index.
  static bool pure_elementwise(const Lambda& f) {
    for (const auto& p : f.params) {
      if (p.type.is_acc) return false;
    }
    for (const auto& t : f.rets) {
      if (t.is_acc) return false;
    }
    return true;
  }

  // True when `e` (or any statement nested inside it, at any depth) consumes
  // an array in `needed` via an in-place-mutating construct.
  static bool consumes_needed(const Exp& e, const std::unordered_set<uint32_t>& needed) {
    bool bad = false;
    std::visit(Overload{
                   [&](const OpUpdate& o) { bad = needed.count(o.arr.id) > 0; },
                   [&](const OpScatter& o) { bad = needed.count(o.dest.id) > 0; },
                   [&](const OpHist& o) { bad = needed.count(o.dest.id) > 0; },
                   [&](const OpWithAcc& o) {
                     for (Var a : o.arrs) bad = bad || needed.count(a.id) > 0;
                   },
                   [&](const auto&) {},
               },
               e);
    if (bad) return true;
    for_each_nested(e, [&](const NestedScope& s) {
      for (const auto& st : s.body->stms) bad = bad || consumes_needed(st.e, needed);
    });
    return bad;
  }

  // One fusion step over `b`; returns true when a producer was folded in.
  // The bind/use tables are recomputed per step — quadratic in the length of
  // a fusable chain, accepted because real chains (vjp adjoint plumbing) are
  // a handful of maps while table reuse across mutations is easy to get
  // subtly wrong.
  bool fuse_once(Body& b) {
    // Binding multiplicity (shadowed ids are never fused) and use counts.
    // free_vars() deduplicates per nested scope, but any nonzero extra use
    // already disqualifies exclusivity, so dedup does not matter here.
    std::unordered_map<uint32_t, int> bind_count;
    for (const auto& st : b.stms) {
      for (Var v : st.vars) ++bind_count[v.id];
    }
    std::unordered_map<uint32_t, int> uses;
    for (const auto& st : b.stms) {
      for_each_atom(st.e, [&](const Atom& a) {
        if (a.is_var()) ++uses[a.var().id];
      });
      for_each_nested(st.e, [&](const NestedScope& s) {
        for (Var v : free_vars(*s.body, s.bound)) ++uses[v.id];
      });
    }
    for (const auto& a : b.result) {
      if (a.is_var()) ++uses[a.var().id];
    }

    for (size_t j = 0; j < b.stms.size(); ++j) {
      // Consumers: maps (classic fusion), reduce/scan (redomap form) and
      // hist (histomap form) — the producer folds into the consumer's
      // element-wise pre-lambda. For hist only the `vals` stream is
      // element-wise (dest is consumed whole, inds select bins), so it is
      // the single fusion candidate.
      const auto* cmap = std::get_if<OpMap>(&b.stms[j].e);
      const auto* cred = std::get_if<OpReduce>(&b.stms[j].e);
      const auto* cscan = std::get_if<OpScan>(&b.stms[j].e);
      const auto* chist = std::get_if<OpHist>(&b.stms[j].e);
      std::vector<Var> hist_cand;
      if (chist != nullptr) hist_cand.push_back(chist->vals);
      const std::vector<Var>* cargs = cmap   ? &cmap->args
                                     : cred  ? &cred->args
                                     : cscan ? &cscan->args
                                     : chist ? &hist_cand
                                             : nullptr;
      if (cargs == nullptr) continue;
      for (Var v : *cargs) {
        if (bind_count[v.id] != 1) continue;
        // The producer's result must be used only as argument positions of
        // this consumer (no gathers from it inside the lambda, no other
        // statement, no body result).
        int occurrences = 0;
        for (Var a : *cargs) occurrences += a == v ? 1 : 0;
        if (uses[v.id] != occurrences) continue;
        // Locate the producing statement.
        size_t i = b.stms.size();
        for (size_t s = 0; s < j; ++s) {
          if (b.stms[s].vars.size() == 1 && b.stms[s].vars[0] == v) {
            i = s;
            break;
          }
        }
        if (i == b.stms.size()) continue;
        const auto* prod = std::get_if<OpMap>(&b.stms[i].e);
        if (prod == nullptr || prod->args.empty()) continue;
        if (!pure_elementwise(*prod->f)) continue;
        // Reduce/scan/hist consumers only take *scalar* producers into their
        // element-wise pre-lambda: a row-level producer (rank>=1 params or
        // results) would make the pre non-scalar, which cannot
        // kernel-compile (runtime/kernel.cpp) AND destroys the perfectly
        // nested map(λrow. reduce…) shape opt/flatten.cpp turns into a
        // segmented launch — strictly worse than leaving the nest alone.
        if (cmap == nullptr && !lambda_scalar(*prod->f)) continue;
        // OpHist has a single vals slot, so only single-input producers can
        // fold into its pre-lambda.
        if (chist != nullptr && prod->args.size() != 1) continue;
        // Everything the producer references must still mean the same thing
        // at the consumer: no statement in between may re-bind its arguments
        // or its lambda's free variables, and none may consume one of them —
        // update/scatter/hist/withacc mutate their array's buffer in place
        // when it is uniquely owned, so deferring the producer's reads past
        // such a statement would observe post-mutation data. (Pure renames
        // that alias a needed array are collapsed by simplify's copy
        // propagation before fusion runs in the pipeline.)
        std::unordered_set<uint32_t> needed;
        for (Var a : prod->args) needed.insert(a.id);
        for (Var fv : free_vars(*prod->f)) needed.insert(fv.id);
        bool blocked = false;
        // The scan includes the consumer statement itself (s == j): a hist
        // consumer mutates its dest in place, so a producer that reads that
        // same array must not be deferred into it — fused, the pre-lambda
        // would observe bins earlier iterations already updated.
        for (size_t s = i + 1; s <= j && !blocked; ++s) {
          if (s < j) {
            for (Var bound : b.stms[s].vars) blocked = blocked || needed.count(bound.id) > 0;
          }
          blocked = blocked || consumes_needed(b.stms[s].e, needed);
        }
        if (blocked) continue;

        if (cmap) {
          fuse_pair(b, i, j, v);
        } else if (chist) {
          fuse_hist_pair(b, i, j, v);
        } else {
          fuse_red_pair(b, i, j, v);
        }
        return true;
      }
    }
    return false;
  }

  // Folds producer map `prod` into the element-wise consumer lambda `f`
  // applied over `cargs`, substituting every occurrence of `v` (the
  // producer's result) by the producer's computed element. Shared by map
  // consumers (f = the consumer map's lambda) and reduce/scan consumers
  // (f = the redomap pre-lambda). Returns the fused lambda and its new
  // argument list (producer inputs spliced in place of v).
  std::pair<LambdaPtr, std::vector<Var>> fuse_into(const OpMap& prod, const Lambda& f,
                                                   const std::vector<Var>& cargs, Var v) {
    Lambda fused;
    std::vector<Var> fargs;
    std::vector<Atom> prod_param_atoms;
    for (size_t k = 0; k < prod.args.size(); ++k) {
      Var p = mod_.fresh(mod_.name(prod.f->params[k].var));
      fused.params.push_back(Param{p, prod.f->params[k].type});
      fargs.push_back(prod.args[k]);
      prod_param_atoms.push_back(Atom(p));
    }
    auto [stms1, res1] = inline_lambda(mod_, *prod.f, prod_param_atoms);
    Atom fused_elem = res1[0];
    if (fused_elem.is_const()) {
      // Bind the constant so array/binding positions in the consumer body
      // can still be substituted by a variable.
      Var t = mod_.fresh("fe");
      stms1.push_back(stm1(t, prod.f->rets[0], OpAtom{fused_elem}));
      fused_elem = Atom(t);
    }
    std::vector<Atom> cons_args;
    for (size_t k = 0; k < cargs.size(); ++k) {
      if (cargs[k] == v) {
        cons_args.push_back(fused_elem);
        continue;
      }
      Var p = mod_.fresh(mod_.name(f.params[k].var));
      fused.params.push_back(Param{p, f.params[k].type});
      fargs.push_back(cargs[k]);
      cons_args.push_back(Atom(p));
    }
    auto [stms2, res2] = inline_lambda(mod_, f, cons_args);
    fused.body.stms = std::move(stms1);
    fused.body.stms.insert(fused.body.stms.end(), std::make_move_iterator(stms2.begin()),
                           std::make_move_iterator(stms2.end()));
    fused.body.result = std::move(res2);
    fused.rets = f.rets;
    return {make_lambda(std::move(fused)), std::move(fargs)};
  }

  // Folds producer statement `i` (binding `v`) into consumer map `j`.
  void fuse_pair(Body& b, size_t i, size_t j, Var v) {
    const OpMap prod = std::get<OpMap>(b.stms[i].e);
    const OpMap cons = std::get<OpMap>(b.stms[j].e);
    auto [fused, fargs] = fuse_into(prod, *cons.f, cons.args, v);
    b.stms[j].e = OpMap{std::move(fused), std::move(fargs), prod.fused + cons.fused + 1};
    b.stms.erase(b.stms.begin() + static_cast<long>(i));
    ++stats_.fused_maps;
  }

  // The trivial pre-lambda a plain reduce/scan starts from before producers
  // fold in: \e1..ek -> (e1..ek) with the fold operator's element param
  // types (op params k..2k-1, which typecheck pins to the arg element
  // types).
  Lambda identity_pre(const Lambda& op) {
    const size_t k = op.params.size() / 2;
    Lambda id;
    for (size_t i = 0; i < k; ++i) {
      Var p = mod_.fresh("e");
      id.params.push_back(Param{p, op.params[k + i].type});
      id.body.result.push_back(Atom(p));
      id.rets.push_back(op.params[k + i].type);
    }
    return id;
  }

  // Folds producer statement `i` (binding `v`) into hist consumer `j`: the
  // producer disappears into the hist's pre-lambda (created from the
  // identity on first fusion — identity_pre on the binary combine op yields
  // exactly the unary \e -> e over elem_of(dest)), turning the consumer
  // into histomap form — hist(op, dest, is, map(f, vs)) scatters f(v) per
  // element with no intermediate array.
  void fuse_hist_pair(Body& b, size_t i, size_t j, Var v) {
    const OpMap prod = std::get<OpMap>(b.stms[i].e);
    const auto& h = std::get<OpHist>(b.stms[j].e);
    const Lambda pre = h.pre ? *h.pre : identity_pre(*h.op);
    auto [npre, nargs] = fuse_into(prod, pre, {v}, v);
    b.stms[j].e = OpHist{h.op,     h.neutral,       h.dest, h.inds, nargs[0],
                         std::move(npre), prod.fused + h.fused + 1};
    b.stms.erase(b.stms.begin() + static_cast<long>(i));
    ++stats_.fused_hists;
  }

  // Folds producer statement `i` (binding `v`) into reduce/scan consumer
  // `j`: the producer disappears into the consumer's pre-lambda (created
  // from the identity on first fusion), turning the consumer into redomap
  // form — the intermediate array is never materialized.
  void fuse_red_pair(Body& b, size_t i, size_t j, Var v) {
    const OpMap prod = std::get<OpMap>(b.stms[i].e);
    if (const auto* red = std::get_if<OpReduce>(&b.stms[j].e)) {
      const Lambda pre = red->pre ? *red->pre : identity_pre(*red->op);
      auto [npre, nargs] = fuse_into(prod, pre, red->args, v);
      b.stms[j].e = OpReduce{red->op, red->neutral, std::move(nargs), std::move(npre),
                             prod.fused + red->fused + 1};
    } else {
      const auto& sc = std::get<OpScan>(b.stms[j].e);
      const Lambda pre = sc.pre ? *sc.pre : identity_pre(*sc.op);
      auto [npre, nargs] = fuse_into(prod, pre, sc.args, v);
      b.stms[j].e = OpScan{sc.op, sc.neutral, std::move(nargs), std::move(npre),
                           prod.fused + sc.fused + 1};
    }
    b.stms.erase(b.stms.begin() + static_cast<long>(i));
    ++stats_.fused_redomaps;
  }

  Module& mod_;
  FuseStats& stats_;
};

} // namespace

Prog fuse_maps(const Prog& p, FuseStats* stats) {
  FuseStats local;
  FuseStats& st = stats != nullptr ? *stats : local;
  Prog out = p;
  Fuser f(*out.mod, st);
  out.fn.body = f.body(p.fn.body);
  return out;
}

} // namespace npad::opt
