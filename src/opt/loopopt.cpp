#include "opt/loopopt.hpp"

#include "ir/analysis.hpp"
#include "ir/builder.hpp"
#include "ir/visit.hpp"

namespace npad::opt {

namespace {

using namespace ir;

// Rewrites every statement of every scope with a per-statement callback;
// the callback may emit replacement statements into the builder.
class StmRewriter {
public:
  using Fn = std::function<bool(Builder&, const Stm&)>;  // true = handled

  StmRewriter(Module& mod, TypeMap& tm, Fn fn) : mod_(mod), tm_(tm), fn_(std::move(fn)) {}

  Body body(const Body& in) {
    Builder b(mod_, tm_);
    for (const auto& st : in.stms) {
      Stm ns = st;
      ns.e = sub_exp(st.e);
      if (!fn_(b, ns)) b.push(std::move(ns));
    }
    return Body{b.take_stms(), in.result};
  }

private:
  LambdaPtr sub_lambda(const LambdaPtr& l) {
    if (!l) return nullptr;
    Lambda nl = *l;
    nl.body = body(l->body);
    return make_lambda(std::move(nl));
  }

  Exp sub_exp(const Exp& e) {
    return std::visit(
        Overload{
            [&](const OpIf& o) -> Exp {
              return OpIf{o.c, make_body(body(*o.tb)), make_body(body(*o.fb))};
            },
            [&](const OpLoop& o) -> Exp {
              OpLoop n = o;
              n.body = make_body(body(*o.body));
              n.while_cond = sub_lambda(o.while_cond);
              return n;
            },
            [&](const OpMap& o) -> Exp { return OpMap{sub_lambda(o.f), o.args, o.fused, o.flat}; },
            [&](const OpReduce& o) -> Exp {
              return OpReduce{sub_lambda(o.op), o.neutral, o.args, sub_lambda(o.pre), o.fused};
            },
            [&](const OpScan& o) -> Exp {
              return OpScan{sub_lambda(o.op), o.neutral, o.args, sub_lambda(o.pre), o.fused};
            },
            [&](const OpHist& o) -> Exp {
              return OpHist{sub_lambda(o.op), o.neutral, o.dest, o.inds, o.vals,
                            sub_lambda(o.pre), o.fused};
            },
            [&](const OpWithAcc& o) -> Exp { return OpWithAcc{o.arrs, sub_lambda(o.f)}; },
            [&](const auto& o) -> Exp { return o; },
        },
        e);
  }

  Module& mod_;
  TypeMap& tm_;
  Fn fn_;
};

// --------------------------------------------------------- while-bounding --

bool rewrite_while(Builder& b, const Stm& st, Module& mod, TypeMap& tm) {
  const auto* lp = std::get_if<OpLoop>(&st.e);
  if (lp == nullptr || !lp->while_cond) return false;
  const OpLoop& o = *lp;
  const size_t np = o.params.size();

  Atom count = cf64(0.0);
  bool guarded = false;
  if (o.while_bound) {
    // §6.2: user-annotated iteration bound; the body runs under an if-guard.
    count = *o.while_bound;
    guarded = true;
  } else {
    // Inspector: a cloned counting loop computes the exact trip count, so the
    // bounded loop needs no guard (the condition holds for all i < count).
    OpLoop insp;
    std::vector<Atom> cond_args;
    Var cparam = mod.fresh("cnt");
    tm.bind(cparam, i64());
    insp.params.push_back(Param{cparam, i64()});
    insp.init.push_back(ci64(0));
    Subst s;
    Cloner cl(mod, /*refresh=*/true);
    for (size_t j = 0; j < np; ++j) {
      Var pv = cl.bind_in(o.params[j].var, s);
      tm.bind(pv, o.params[j].type);
      insp.params.push_back(Param{pv, o.params[j].type});
      insp.init.push_back(o.init[j]);
      cond_args.emplace_back(pv);
    }
    // Condition over the cloned params.
    Lambda wc;
    Var wcnt = mod.fresh("w");
    tm.bind(wcnt, i64());
    wc.params.push_back(Param{wcnt, i64()});
    std::vector<Atom> cargs;
    for (size_t j = 0; j < np; ++j) {
      Var wv = mod.fresh("w");
      tm.bind(wv, o.params[j].type);
      wc.params.push_back(Param{wv, o.params[j].type});
      cargs.emplace_back(wv);
    }
    auto [cstms, cres] = inline_lambda(mod, *o.while_cond, cargs);
    wc.body = Body{std::move(cstms), std::move(cres)};
    wc.rets = {boolean()};
    insp.while_cond = make_lambda(std::move(wc));
    // Body: increment the counter, run a refreshed clone of the body.
    Builder ib(mod, tm);
    Var c1 = ib.add(Atom(cparam), ci64(1));
    Body cloned = cl.body(*o.body, s);
    for (auto& cs : cloned.stms) ib.push(std::move(cs));
    Body ibody;
    ibody.stms = ib.take_stms();
    ibody.result.emplace_back(c1);
    for (auto& r : cloned.result) ibody.result.push_back(r);
    insp.body = make_body(std::move(ibody));

    Stm is;
    Var cnt_out = mod.fresh("trip");
    tm.bind(cnt_out, i64());
    is.vars.push_back(cnt_out);
    is.types.push_back(i64());
    for (size_t j = 0; j < np; ++j) {
      Var dv = mod.fresh("insp");
      tm.bind(dv, o.params[j].type);
      is.vars.push_back(dv);
      is.types.push_back(o.params[j].type);
    }
    is.e = std::move(insp);
    b.push(std::move(is));
    count = Atom(cnt_out);
  }

  // The bounded for-loop.
  OpLoop fl;
  fl.params = o.params;
  fl.init = o.init;
  fl.idx = mod.fresh("i");
  tm.bind(fl.idx, i64());
  fl.count = count;
  fl.stripmine = o.stripmine;
  fl.checkpoint_entry = o.checkpoint_entry;
  if (guarded) {
    Builder gb(mod, tm);
    std::vector<Atom> cargs;
    for (const auto& p : o.params) cargs.emplace_back(p.var);
    auto [cstms, cres] = inline_lambda(mod, *o.while_cond, cargs);
    gb.splice(std::move(cstms));
    Var cond = cres[0].is_var() ? cres[0].var() : gb.rebind(cres[0], "c");
    std::vector<Type> rets;
    for (const auto& p : o.params) rets.push_back(p.type);
    Stm ifs;
    ifs.e = OpIf{Atom(cond), o.body,
                 make_body(Body{{}, [&] {
                             std::vector<Atom> id;
                             for (const auto& p : o.params) id.emplace_back(p.var);
                             return id;
                           }()})};
    std::vector<Atom> res;
    for (const auto& t : rets) {
      Var v = mod.fresh("g");
      tm.bind(v, t);
      ifs.vars.push_back(v);
      ifs.types.push_back(t);
      res.emplace_back(v);
    }
    gb.push(std::move(ifs));
    fl.body = make_body(Body{gb.take_stms(), std::move(res)});
  } else {
    fl.body = o.body;
  }
  Stm ns;
  ns.vars = st.vars;
  ns.types = st.types;
  ns.e = std::move(fl);
  b.push(std::move(ns));
  return true;
}

// ----------------------------------------------------------- strip-mining --

bool rewrite_stripmine(Builder& b, const Stm& st, Module& mod, TypeMap& tm) {
  const auto* lp = std::get_if<OpLoop>(&st.e);
  if (lp == nullptr || lp->while_cond || lp->stripmine <= 1) return false;
  const OpLoop& o = *lp;
  const int64_t f = o.stripmine;

  // n_outer = ceil(n / f); i = io*f + ii, body guarded by i < n.
  Var n = b.rebind(o.count, "n");
  Var no = b.div(b.add(Atom(n), ci64(f - 1)), ci64(f));

  OpLoop outer;
  outer.params = o.params;
  outer.init = o.init;
  outer.idx = mod.fresh("io");
  tm.bind(outer.idx, i64());
  outer.count = Atom(no);

  Builder ob(mod, tm);
  OpLoop inner;
  // Inner params mirror the outer ones (same types) with fresh ids.
  std::vector<Atom> inner_res_id;
  Subst s;
  Cloner cl(mod, /*refresh=*/true);
  for (size_t j = 0; j < o.params.size(); ++j) {
    Var pv = cl.bind_in(o.params[j].var, s);
    tm.bind(pv, o.params[j].type);
    inner.params.push_back(Param{pv, o.params[j].type});
    inner.init.emplace_back(o.params[j].var);
    inner_res_id.emplace_back(pv);
  }
  inner.idx = mod.fresh("ii");
  tm.bind(inner.idx, i64());
  inner.count = ci64(f);

  Builder ib(mod, tm);
  Var i_full = ib.add(ib.mul(Atom(outer.idx), ci64(f)), Atom(inner.idx));
  // Rebind the original index var so the cloned body sees it.
  Var orig_idx_clone = cl.bind_in(o.idx, s);
  tm.bind(orig_idx_clone, i64());
  ib.push(stm1(orig_idx_clone, i64(), OpAtom{Atom(i_full)}));
  Var guard = ib.lt(Atom(i_full), Atom(n));
  Body cloned = cl.body(*o.body, s);
  Stm ifs;
  ifs.e = OpIf{Atom(guard), make_body(std::move(cloned)),
               make_body(Body{{}, inner_res_id})};
  std::vector<Atom> ires;
  for (const auto& p : inner.params) {
    Var v = mod.fresh("sm");
    tm.bind(v, p.type);
    ifs.vars.push_back(v);
    ifs.types.push_back(p.type);
    ires.emplace_back(v);
  }
  ib.push(std::move(ifs));
  inner.body = make_body(Body{ib.take_stms(), std::move(ires)});

  Stm is;
  std::vector<Atom> ores;
  for (const auto& p : inner.params) {
    Var v = mod.fresh("smo");
    tm.bind(v, p.type);
    is.vars.push_back(v);
    is.types.push_back(p.type);
    ores.emplace_back(v);
  }
  is.e = std::move(inner);
  ob.push(std::move(is));
  outer.body = make_body(Body{ob.take_stms(), std::move(ores)});

  Stm ns;
  ns.vars = st.vars;
  ns.types = st.types;
  ns.e = std::move(outer);
  b.push(std::move(ns));
  return true;
}

Prog run_rewriter(const Prog& p, const StmRewriter::Fn& fn, TypeMap& tm) {
  StmRewriter rw(*p.mod, tm, fn);
  Prog out = p;
  out.fn.body = rw.body(p.fn.body);
  return out;
}

} // namespace

Prog bound_whiles(const Prog& p) {
  TypeMap tm = collect_types(p.fn);
  return run_rewriter(
      p, [&](Builder& b, const Stm& st) { return rewrite_while(b, st, *p.mod, tm); }, tm);
}

Prog apply_stripmining(const Prog& p) {
  TypeMap tm = collect_types(p.fn);
  return run_rewriter(
      p, [&](Builder& b, const Stm& st) { return rewrite_stripmine(b, st, *p.mod, tm); }, tm);
}

Prog prepare_for_ad(const Prog& p) { return apply_stripmining(bound_whiles(p)); }

} // namespace npad::opt
