#include "opt/accopt.hpp"

#include <unordered_map>
#include <unordered_set>

#include "ir/analysis.hpp"
#include "ir/builder.hpp"
#include "ir/visit.hpp"

namespace npad::opt {

namespace {

using namespace ir;

// One rewritable accumulation site: the position of an upd_acc statement
// directly inside the top-level map of a withacc.
struct Site {
  size_t stm_index = 0;        // index in the map lambda's body
  size_t acc_param = 0;        // which lambda param is the accumulator
  bool invariant = false;      // true: Rule R; false (1 index): Rule H
};

class AccOpt {
public:
  AccOpt(Module& mod, TypeMap& tm, AccOptStats& stats) : mod_(mod), tm_(tm), stats_(stats) {}

  Body body(const Body& in) {
    Builder b(mod_, tm_);
    for (const auto& st : in.stms) {
      Stm ns = st;
      ns.e = sub_exp(st.e);
      if (!try_withacc(b, ns)) b.push(std::move(ns));
    }
    return Body{b.take_stms(), in.result};
  }

private:
  LambdaPtr sub_lambda(const LambdaPtr& l) {
    if (!l) return nullptr;
    Lambda nl = *l;
    nl.body = body(l->body);
    return make_lambda(std::move(nl));
  }

  Exp sub_exp(const Exp& e) {
    return std::visit(
        Overload{
            [&](const OpIf& o) -> Exp {
              return OpIf{o.c, make_body(body(*o.tb)), make_body(body(*o.fb))};
            },
            [&](const OpLoop& o) -> Exp {
              OpLoop n = o;
              n.body = make_body(body(*o.body));
              n.while_cond = sub_lambda(o.while_cond);
              return n;
            },
            [&](const OpMap& o) -> Exp { return OpMap{sub_lambda(o.f), o.args, o.fused, o.flat}; },
            [&](const OpReduce& o) -> Exp {
              return OpReduce{sub_lambda(o.op), o.neutral, o.args, sub_lambda(o.pre), o.fused};
            },
            [&](const OpScan& o) -> Exp {
              return OpScan{sub_lambda(o.op), o.neutral, o.args, sub_lambda(o.pre), o.fused};
            },
            [&](const OpHist& o) -> Exp {
              return OpHist{sub_lambda(o.op), o.neutral, o.dest, o.inds, o.vals,
                            sub_lambda(o.pre), o.fused};
            },
            [&](const OpWithAcc& o) -> Exp { return OpWithAcc{o.arrs, sub_lambda(o.f)}; },
            [&](const auto& o) -> Exp { return o; },
        },
        e);
  }

  // Attempts to rewrite `withacc (A..) (\accs -> let outs = map f (..accs..)
  // in (..))` by peeling accumulators whose updates follow Rule R or Rule H.
  bool try_withacc(Builder& b, const Stm& st) {
    const auto* wa = std::get_if<OpWithAcc>(&st.e);
    if (wa == nullptr || !wa->f) return false;
    const Lambda& wl = *wa->f;
    // Expect the canonical reverse-map shape: exactly one map statement whose
    // args include the accumulator params, with the lambda results first
    // returning the accs.
    if (wl.body.stms.size() != 1) return false;
    const auto* mp = std::get_if<OpMap>(&wl.body.stms[0].e);
    if (mp == nullptr || !mp->f) return false;
    const Lambda& mf = *mp->f;

    // Map withacc params (accs) -> map arg position and map lambda param.
    std::unordered_map<uint32_t, size_t> acc_arg_pos;
    for (size_t i = 0; i < mp->args.size(); ++i) {
      for (size_t w = 0; w < wl.params.size(); ++w) {
        if (mp->args[i] == wl.params[w].var) acc_arg_pos[wl.params[w].var.id] = i;
      }
    }

    // Find rewritable sites: a single upd_acc per accumulator, directly in
    // the map lambda's body, whose threaded result is only returned.
    std::vector<std::pair<size_t, Site>> rewrites;  // (withacc param idx, site)
    for (size_t w = 0; w < wl.params.size(); ++w) {
      auto site = find_site(mf, wl, mp->args, w);
      if (site) rewrites.emplace_back(w, *site);
    }
    if (rewrites.empty()) return false;

    // Everything from here on emits statements into the enclosing builder,
    // so ALL feasibility checks must pass first: bailing out after emission
    // would leave the half-built peel map behind, referencing the withacc's
    // accumulator params out of scope (a withacc mixing rule-R/H accs with
    // non-matching ones — e.g. the LSTM adjoint's 3-acc sweeps — used to
    // trip exactly this).
    if (rewrites.size() != wl.params.size()) return false;  // partial peel unsupported
    if (st.vars.size() != wl.body.result.size()) return false;
    {
      std::unordered_set<uint32_t> acc_vars;
      for (auto& [w, s] : rewrites) {
        for (Var v : mf.body.stms[s.stm_index].vars) acc_vars.insert(v.id);
        acc_vars.insert(mf.params[s.acc_param].var.id);
      }
      std::unordered_set<size_t> kept;  // non-acc map-lambda result indices
      for (size_t r = 0; r < mf.body.result.size(); ++r) {
        const Atom& a = mf.body.result[r];
        if (!(a.is_var() && acc_vars.count(a.var().id))) kept.insert(r);
      }
      std::unordered_map<uint32_t, size_t> mop;  // map output var -> position
      const Stm& mstm0 = wl.body.stms[0];
      for (size_t i = 0; i < mstm0.vars.size(); ++i) mop[mstm0.vars[i].id] = i;
      // Every extra withacc output must be a kept map output, or the final
      // rebinding below cannot be expressed.
      for (size_t oi = wa->arrs.size(); oi < st.vars.size(); ++oi) {
        const Atom& a = wl.body.result[oi];
        if (!a.is_var() || !mop.count(a.var().id)) return false;
        if (!kept.count(mop[a.var().id])) return false;
      }
    }

    // Build the new map lambda: drop the upd_acc statements and the acc
    // plumbing, return (ix.., v) extras per site.
    std::unordered_set<size_t> dropped_stms;
    std::unordered_set<size_t> dropped_params;
    for (auto& [w, s] : rewrites) {
      dropped_stms.insert(s.stm_index);
      dropped_params.insert(s.acc_param);
    }
    Lambda nf;
    std::vector<Var> nargs;
    for (size_t i = 0; i < mf.params.size(); ++i) {
      if (dropped_params.count(i)) continue;
      nf.params.push_back(mf.params[i]);
      nargs.push_back(mp->args[i]);
    }
    Body nb;
    for (size_t i = 0; i < mf.body.stms.size(); ++i) {
      if (dropped_stms.count(i)) continue;
      nb.stms.push_back(mf.body.stms[i]);
    }
    // Results: keep non-acc results; append (idx.., value) per site.
    std::unordered_set<uint32_t> acc_result_vars;
    for (auto& [w, s] : rewrites) {
      const auto* ua = std::get_if<OpUpdAcc>(&mf.body.stms[s.stm_index].e);
      (void)ua;
      for (Var v : mf.body.stms[s.stm_index].vars) acc_result_vars.insert(v.id);
      acc_result_vars.insert(mf.params[s.acc_param].var.id);
    }
    std::vector<size_t> kept_results;
    for (size_t r = 0; r < mf.body.result.size(); ++r) {
      const Atom& a = mf.body.result[r];
      if (a.is_var() && acc_result_vars.count(a.var().id)) continue;
      kept_results.push_back(r);
      nb.result.push_back(a);
    }
    struct Extra {
      size_t w;
      Site site;
      size_t first_out;  // index of the first extra output (indices then value)
      size_t n_idx;
    };
    std::vector<Extra> extras;
    for (auto& [w, s] : rewrites) {
      const auto* ua = std::get_if<OpUpdAcc>(&mf.body.stms[s.stm_index].e);
      Extra ex{w, s, nb.result.size(), ua->idx.size()};
      if (!s.invariant) {
        for (const auto& ix : ua->idx) nb.result.push_back(ix);
      }
      nb.result.push_back(ua->v);
      extras.push_back(ex);
    }
    nf.body = std::move(nb);
    // Ret types.
    TypeMap& tm = tm_;
    for (const auto& a : nf.body.result) nf.rets.push_back(tm.at(a));

    // Emit the new map.
    std::vector<Var> mres = b.map(make_lambda(std::move(nf)), nargs, "peel");

    // Per site: Rule H -> hist into the initial array; Rule R -> reduce + rmw.
    std::unordered_map<size_t, Var> replaced;  // withacc param idx -> new array
    for (const auto& ex : extras) {
      const auto* ua = std::get_if<OpUpdAcc>(&mf.body.stms[ex.site.stm_index].e);
      Var a0 = wa->arrs[ex.w];
      if (ex.site.invariant) {
        Var vs = mres[ex.first_out];
        Var s = b.reduce1(b.add_op(), cf64(0.0), {vs}, "accsum");
        Var old = b.index(a0, ua->idx, "accold");
        Var nv = b.add(Atom(old), Atom(s));
        replaced[ex.w] = b.update(a0, ua->idx, Atom(nv));
        ++stats_.to_reduction;
      } else {
        Var ixs = mres[ex.first_out];
        Var vs = mres[ex.first_out + 1];
        replaced[ex.w] = b.hist(b.add_op(), cf64(0.0), a0, ixs, vs);
        ++stats_.to_histogram;
      }
    }

    // Every accumulator was peeled (validated before emission), so the
    // withacc construct disappears entirely. Map original withacc outputs to
    // new values. Original outputs: [per-acc arrays][extras = non-acc map
    // results in original order]. The kept (non-acc) map results must also
    // flow through.
    assert(replaced.size() == wl.params.size() && "partial peel emitted");
    std::unordered_map<size_t, Var> kept_res_var;  // original result idx -> var
    for (size_t i = 0; i < kept_results.size(); ++i) {
      kept_res_var[kept_results[i]] = mres[i];
    }
    // Rebind the withacc statement outputs: first |arrs| arrays, then extras
    // (the map's non-acc results, which the withacc lambda returned).
    // Original wl results: accs first, then extras referencing map outputs.
    // We require that extras reference the map statement's outputs directly.
    const Stm& mstm = wl.body.stms[0];
    std::unordered_map<uint32_t, size_t> map_out_pos;
    for (size_t i = 0; i < mstm.vars.size(); ++i) map_out_pos[mstm.vars[i].id] = i;
    // Map original map-output position -> original lambda result position.
    // mf results (non-acc) correspond to map outputs in order.
    std::vector<size_t> out_to_res(mstm.vars.size(), SIZE_MAX);
    for (size_t r = 0; r < mf.body.result.size(); ++r) out_to_res[r] = r;

    for (size_t oi = 0; oi < st.vars.size(); ++oi) {
      Var target = st.vars[oi];
      Exp e;
      if (oi < wa->arrs.size()) {
        e = OpAtom{Atom(replaced.at(oi))};
      } else {
        // Extra output: a kept map output (validated before emission).
        const Atom& a = wl.body.result[oi];
        assert(a.is_var() && map_out_pos.count(a.var().id) && "unvalidated extra output");
        const size_t mo = map_out_pos[a.var().id];
        // Which original lambda result does output `mo` correspond to?
        const size_t orig_res = out_to_res[mo];
        auto it = kept_res_var.find(orig_res);
        assert(it != kept_res_var.end() && "unvalidated extra output");
        e = OpAtom{Atom(it->second)};
      }
      b.push(stm1(target, tm_.at(target), std::move(e)));
    }
    return true;
  }

  // A site qualifies when the upd_acc targets the given withacc accumulator
  // (as a lambda param), its value is a scalar computed per iteration, and
  // either (R) every index is invariant to the lambda params, or (H) there
  // is exactly one index and it varies per iteration.
  std::optional<Site> find_site(const Lambda& mf, const Lambda& wl,
                                const std::vector<Var>& margs, size_t w) {
    // Locate the lambda param bound to this accumulator.
    size_t acc_param = SIZE_MAX;
    for (size_t i = 0; i < mf.params.size(); ++i) {
      if (mf.params[i].type.is_acc && margs[i] == wl.params[w].var) acc_param = i;
    }
    if (acc_param == SIZE_MAX) return std::nullopt;
    // Exactly one direct upd_acc on it; no other uses (incl. nested scopes).
    std::optional<size_t> site;
    const Var acc_var = mf.params[acc_param].var;
    std::unordered_set<uint32_t> acc_ids{acc_var.id};
    for (size_t i = 0; i < mf.body.stms.size(); ++i) {
      const Stm& s = mf.body.stms[i];
      const auto* ua = std::get_if<OpUpdAcc>(&s.e);
      bool uses = false;
      for_each_atom(s.e, [&](const Atom& a) {
        if (a.is_var() && acc_ids.count(a.var().id)) uses = true;
      });
      bool nested_uses = false;
      for_each_nested(s.e, [&](const NestedScope& ns) {
        for (Var v : free_vars(*ns.body, ns.bound)) {
          if (acc_ids.count(v.id)) nested_uses = true;
        }
      });
      if (nested_uses) return std::nullopt;
      if (ua != nullptr && acc_ids.count(ua->acc.id)) {
        if (site) return std::nullopt;  // multiple updates: leave alone
        if (!ua->v.is_var() && !ua->v.is_const()) return std::nullopt;
        if (tm_.at(ua->v).rank != 0) return std::nullopt;
        site = i;
        acc_ids.insert(s.vars[0].id);  // threaded result
        continue;
      }
      if (uses) return std::nullopt;
    }
    if (!site) return std::nullopt;
    const auto* ua = std::get_if<OpUpdAcc>(&mf.body.stms[*site].e);
    // Classify index dependence on the lambda's per-iteration bindings: a
    // variable defined inside the lambda body (or a param) varies.
    std::unordered_set<uint32_t> varying;
    for (const auto& p : mf.params) varying.insert(p.var.id);
    for (const auto& s : mf.body.stms) {
      bool dep = false;
      for_each_atom(s.e, [&](const Atom& a) {
        if (a.is_var() && varying.count(a.var().id)) dep = true;
      });
      for_each_nested(s.e, [&](const NestedScope& ns) {
        for (Var v : free_vars(*ns.body, ns.bound)) {
          if (varying.count(v.id)) dep = true;
        }
      });
      if (dep) {
        for (Var v : s.vars) varying.insert(v.id);
      }
    }
    bool any_varying = false;
    for (const auto& ix : ua->idx) {
      if (ix.is_var() && varying.count(ix.var().id)) any_varying = true;
    }
    Site out;
    out.stm_index = *site;
    out.acc_param = acc_param;
    out.invariant = !any_varying;
    if (!out.invariant && (ua->idx.size() != 1 || tm_.at(acc_var).rank != 1)) {
      return std::nullopt;
    }
    // The value must vary per iteration for these rewrites to be profitable;
    // either way they are correct, so no further checks.
    return out;
  }

  Module& mod_;
  TypeMap& tm_;
  AccOptStats& stats_;
};

} // namespace

Prog optimize_accumulators(const Prog& p, AccOptStats* stats) {
  TypeMap tm = collect_types(p.fn);
  AccOptStats local;
  AccOpt pass(*p.mod, tm, stats ? *stats : local);
  Prog out = p;
  out.fn.body = pass.body(p.fn.body);
  return out;
}

} // namespace npad::opt
