#include "apps/gmm.hpp"

#include <cmath>

#include "eager/autograd.hpp"
#include "ir/builder.hpp"

namespace npad::apps {

using namespace ir;

GmmData gmm_gen(support::Rng& rng, int64_t n, int64_t d, int64_t k) {
  GmmData g;
  g.n = n;
  g.d = d;
  g.k = k;
  g.x = rng.normal_vec(static_cast<size_t>(n * d));
  g.alphas = rng.normal_vec(static_cast<size_t>(k), 0.0, 0.5);
  g.means = rng.normal_vec(static_cast<size_t>(k * d), 0.0, 0.5);
  g.qs = rng.normal_vec(static_cast<size_t>(k * d), 0.0, 0.2);
  return g;
}

namespace {

// logsumexp of a rank-1 array, numerically stabilized.
Var build_lse(Builder& b, Var xs) {
  Var mx = b.reduce1(b.max_op(), cf64(-1e300), {xs}, "mx");
  Var ex = b.map1(b.lam({f64()},
                        [&](Builder& c, const std::vector<Var>& p) {
                          return std::vector<Atom>{Atom(c.exp(c.sub(p[0], mx)))};
                        }),
                  {xs}, "ex");
  Var s = b.reduce1(b.add_op(), cf64(0.0), {ex}, "s");
  return b.add(mx, b.log(s));
}

} // namespace

ir::Prog gmm_ir_objective() {
  ProgBuilder pb("gmm_objective");
  Var alphas = pb.param("alphas", arr_f64(1));
  Var means = pb.param("means", arr_f64(2));
  Var qs = pb.param("qs", arr_f64(2));
  Var x = pb.param("x", arr_f64(2));
  Builder& b = pb.body();
  Var k = b.length(alphas);

  // Per-component sum of qs (log-determinant of the inverse sigma).
  Var qsum = b.map1(b.lam({arr_f64(1)},
                          [&](Builder& c, const std::vector<Var>& row) {
                            return std::vector<Atom>{
                                Atom(c.reduce1(c.add_op(), cf64(0.0), {row[0]}))};
                          }),
                    {qs}, "qsum");

  // Main term: per point, logsumexp over components.
  Var per_point = b.map1(
      b.lam({arr_f64(1)},
            [&](Builder& c1, const std::vector<Var>& xi) {
              Var ik = c1.iota(Atom(k));
              Var inner = c1.map1(
                  c1.lam({i64()},
                         [&](Builder& c2, const std::vector<Var>& kk) {
                           Var murow = c2.index(means, {Atom(kk[0])});
                           Var qrow = c2.index(qs, {Atom(kk[0])});
                           Var terms = c2.map(
                               c2.lam({f64(), f64(), f64()},
                                      [](Builder& c3, const std::vector<Var>& p) {
                                        // ((x - mu) * e^q)^2
                                        Var diff = c3.sub(p[0], p[1]);
                                        Var w = c3.mul(diff, c3.exp(p[2]));
                                        return std::vector<Atom>{Atom(c3.mul(w, w))};
                                      }),
                               {xi[0], murow, qrow})[0];
                           Var sq = c2.reduce1(c2.add_op(), cf64(0.0), {terms});
                           Var av = c2.index(alphas, {Atom(kk[0])});
                           Var qv = c2.index(qsum, {Atom(kk[0])});
                           Var t = c2.add(Atom(c2.add(av, Atom(qv))),
                                          Atom(c2.mul(cf64(-0.5), Atom(sq))));
                           return std::vector<Atom>{Atom(t)};
                         }),
                  {ik});
              return std::vector<Atom>{Atom(build_lse(c1, inner))};
            }),
      {x}, "pp");
  Var main_term = b.reduce1(b.add_op(), cf64(0.0), {per_point});

  // - n * lse(alphas)
  Var n = b.length(x);
  Var lse_a = build_lse(b, alphas);
  Var norm = b.mul(b.to_f64(Atom(n)), lse_a);

  // Wishart-style prior on qs: sum(0.5 g^2 e^{2q} - m q).
  Var prior_rows = b.map1(
      b.lam({arr_f64(1)},
            [&](Builder& c, const std::vector<Var>& row) {
              Var terms = c.map1(c.lam({f64()},
                                       [](Builder& cc, const std::vector<Var>& p) {
                                         Var e2 = cc.exp(cc.mul(cf64(2.0), p[0]));
                                         Var t = cc.sub(Atom(cc.mul(cf64(0.5), Atom(e2))), p[0]);
                                         return std::vector<Atom>{Atom(t)};
                                       }),
                                 {row[0]});
              return std::vector<Atom>{Atom(c.reduce1(c.add_op(), cf64(0.0), {terms}))};
            }),
      {qs}, "prior");
  Var prior = b.reduce1(b.add_op(), cf64(0.0), {prior_rows});

  Var obj = b.add(b.sub(main_term, norm), prior);
  return pb.finish({Atom(obj)});
}

std::vector<rt::Value> gmm_ir_args(const GmmData& g) {
  return {rt::make_f64_array(g.alphas, {g.k}), rt::make_f64_array(g.means, {g.k, g.d}),
          rt::make_f64_array(g.qs, {g.k, g.d}), rt::make_f64_array(g.x, {g.n, g.d})};
}

GmmManualResult gmm_manual(const GmmData& g) {
  const int64_t n = g.n, d = g.d, k = g.k;
  GmmManualResult r;
  r.d_alphas.assign(static_cast<size_t>(k), 0.0);
  r.d_means.assign(static_cast<size_t>(k * d), 0.0);
  r.d_qs.assign(static_cast<size_t>(k * d), 0.0);
  std::vector<double> inner(static_cast<size_t>(k));
  std::vector<double> eq(static_cast<size_t>(k * d));
  std::vector<double> qsum(static_cast<size_t>(k), 0.0);
  for (int64_t c = 0; c < k; ++c) {
    for (int64_t j = 0; j < d; ++j) {
      eq[static_cast<size_t>(c * d + j)] = std::exp(g.qs[static_cast<size_t>(c * d + j)]);
      qsum[static_cast<size_t>(c)] += g.qs[static_cast<size_t>(c * d + j)];
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    const double* xi = g.x.data() + i * d;
    double mx = -1e300;
    for (int64_t c = 0; c < k; ++c) {
      double sq = 0;
      for (int64_t j = 0; j < d; ++j) {
        const double w = (xi[j] - g.means[static_cast<size_t>(c * d + j)]) *
                         eq[static_cast<size_t>(c * d + j)];
        sq += w * w;
      }
      inner[static_cast<size_t>(c)] = g.alphas[static_cast<size_t>(c)] +
                                      qsum[static_cast<size_t>(c)] - 0.5 * sq;
      mx = std::max(mx, inner[static_cast<size_t>(c)]);
    }
    double den = 0;
    for (int64_t c = 0; c < k; ++c) den += std::exp(inner[static_cast<size_t>(c)] - mx);
    r.objective += mx + std::log(den);
    // Responsibilities drive all gradients.
    for (int64_t c = 0; c < k; ++c) {
      const double resp = std::exp(inner[static_cast<size_t>(c)] - mx) / den;
      r.d_alphas[static_cast<size_t>(c)] += resp;
      for (int64_t j = 0; j < d; ++j) {
        const size_t ix = static_cast<size_t>(c * d + j);
        const double diff = xi[j] - g.means[ix];
        const double w = diff * eq[ix];
        r.d_means[ix] += resp * w * eq[ix];
        r.d_qs[ix] += resp * (1.0 - w * w);
      }
    }
  }
  // Normalization: - n * lse(alphas).
  double amx = -1e300;
  for (int64_t c = 0; c < k; ++c) amx = std::max(amx, g.alphas[static_cast<size_t>(c)]);
  double aden = 0;
  for (int64_t c = 0; c < k; ++c) aden += std::exp(g.alphas[static_cast<size_t>(c)] - amx);
  r.objective -= static_cast<double>(n) * (amx + std::log(aden));
  for (int64_t c = 0; c < k; ++c) {
    r.d_alphas[static_cast<size_t>(c)] -=
        static_cast<double>(n) * std::exp(g.alphas[static_cast<size_t>(c)] - amx) / aden;
  }
  // Prior.
  for (int64_t c = 0; c < k; ++c) {
    for (int64_t j = 0; j < d; ++j) {
      const size_t ix = static_cast<size_t>(c * d + j);
      const double e2 = std::exp(2.0 * g.qs[ix]);
      r.objective += 0.5 * e2 - g.qs[ix];
      r.d_qs[ix] += e2 - 1.0;
    }
  }
  return r;
}

GmmManualResult gmm_eager(const GmmData& g, bool with_grad) {
  using namespace eager;
  const int64_t n = g.n, d = g.d, k = g.k;
  eager::Var alphas(Tensor::from(g.alphas, {1, k}), true);
  eager::Var means(Tensor::from(g.means, {k, d}), true);
  eager::Var qs(Tensor::from(g.qs, {k, d}), true);
  eager::Var x(Tensor::from(g.x, {n, d}), false);
  // Weighted pairwise distances via expanded quadratics:
  //   sum_j ((x_ij - mu_kj) e^{q_kj})^2
  //     = sum_j x^2 e^{2q} - 2 sum_j x (mu e^{2q}) + sum_j mu^2 e^{2q}
  eager::Var e2q = exp(scale(qs, 2.0));                 // [k,d]
  eager::Var x2 = square(x);                            // [n,d]
  eager::Var termA = matmul(x2, transpose(e2q));        // [n,k]
  eager::Var termB = scale(matmul(x, transpose(mul(means, e2q))), -2.0);  // [n,k]
  eager::Var mu2e = sum_rows(mul(square(means), e2q));  // [k]
  eager::Var sq = add_rowvec(add(termA, termB), mu2e);  // [n,k]
  eager::Var qsum = sum_rows(qs);                       // [k]
  eager::Var base = add_rowvec(scale(sq, -0.5), qsum);  // [n,k]
  // + alpha_k broadcast over rows.
  eager::Var arow = alphas;  // [1,k]
  eager::Var inner = add_rowvec(base, sum_cols(arow));  // sum_cols of [1,k] = [k]
  eager::Var pp = logsumexp_rows(inner);                // [n]
  eager::Var main_term = sum(pp);
  eager::Var lse_a = logsumexp_rows(arow);              // [1]
  eager::Var norm = scale(lse_a, static_cast<double>(n));
  eager::Var prior = sum(sub(scale(exp(scale(qs, 2.0)), 0.5), qs));
  eager::Var obj = add(sub(main_term, norm), prior);
  GmmManualResult r;
  r.objective = obj.value().item();
  if (with_grad) {
    backward(obj);
    r.d_alphas = alphas.grad().data();
    r.d_means = means.grad().data();
    r.d_qs = qs.grad().data();
  }
  return r;
}

} // namespace npad::apps
