#pragma once

// Gaussian Mixture Model log-likelihood (ADBench GMM; Sections 7.1 and 7.6).
//
// Substitution note (DESIGN.md): ADBench parameterizes covariances with a
// full inverse Cholesky factor; we use the diagonal parameterization
// (q = log inverse sigma per dimension) plus the same logsumexp/prior
// structure. This keeps identical map/reduce/logsumexp shape and the same
// dominant pairwise (point x component x dimension) computation while
// avoiding the triangular-index bookkeeping that adds nothing to the AD
// evaluation.
//
// Objective:
//   L(alpha, mu, q) = sum_i lse_k[ alpha_k + sum_j q_kj
//                                  - 0.5 sum_j ((x_ij - mu_kj) e^{q_kj})^2 ]
//                     - n * lse_k[alpha_k] + prior(q)
//   prior(q) = sum_k sum_j ( 0.5 gamma^2 e^{2 q_kj} - m_w q_kj )

#include <vector>

#include "ir/ast.hpp"
#include "runtime/value.hpp"
#include "support/rng.hpp"

namespace npad::apps {

struct GmmData {
  int64_t n = 0, d = 0, k = 0;
  std::vector<double> x;       // n*d
  std::vector<double> alphas;  // k
  std::vector<double> means;   // k*d
  std::vector<double> qs;      // k*d (log inverse sigmas)
  double wishart_gamma = 1.0;
  double wishart_m = 1.0;
};

GmmData gmm_gen(support::Rng& rng, int64_t n, int64_t d, int64_t k);

// IR program: params (alphas:[k], means:[k][d], qs:[k][d], x:[n][d]) -> f64.
ir::Prog gmm_ir_objective();

std::vector<rt::Value> gmm_ir_args(const GmmData& data);

// Reference objective + analytic gradient (the "manual" column).
struct GmmManualResult {
  double objective = 0;
  std::vector<double> d_alphas, d_means, d_qs;
};
GmmManualResult gmm_manual(const GmmData& data);

// Eager (PyTorch-style) objective + gradient via autograd (vectorized with
// expanded quadratics, as the paper's improved PyTorch implementation).
GmmManualResult gmm_eager(const GmmData& data, bool with_grad = true);

} // namespace npad::apps
