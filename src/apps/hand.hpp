#pragma once

// Hand tracking (ADBench HAND, Section 7.1), reduced kinematic model
// (substitution documented in DESIGN.md): a chain of `nbones` Euler-angle
// rotations is composed sequentially (the kinematic chain); every vertex is
// attached to one bone (gather) and transformed by that bone's cumulative
// rotation; residuals are the 3 coordinate differences to target positions.
// The "complicated" variant adds two per-vertex displacement parameters
// (us) applied along fixed direction vectors before skinning, mirroring
// ADBench's theta+us parameterization and its sparse Jacobian columns.

#include <vector>

#include "ir/ast.hpp"
#include "runtime/value.hpp"
#include "support/rng.hpp"
#include "tape/tape.hpp"

namespace npad::apps {

struct HandData {
  int64_t nbones = 0, nverts = 0;
  std::vector<double> theta;    // 3*nbones
  std::vector<double> us;       // 2*nverts (complicated variant)
  std::vector<double> base;     // nverts*3
  std::vector<double> dirs;     // nverts*6 (two direction vectors)
  std::vector<int64_t> bone_of; // nverts
  std::vector<double> targets;  // nverts*3
};

HandData hand_gen(support::Rng& rng, int64_t nbones, int64_t nverts);

// IR residual program. complicated=false: params (theta, base, dirs, boneOf,
// targets) -> residuals [nverts][3]; complicated=true adds us:[2*nverts].
ir::Prog hand_ir_residuals(bool complicated);

std::vector<rt::Value> hand_ir_args(const HandData& data, bool complicated);

// Templated scalar kernel (tape baseline + primal). Writes residuals (3 per
// vertex) to out.
template <class Real>
void hand_residuals(const HandData& d, const Real* theta, const Real* us, Real* out) {
  using std::cos;
  using std::sin;
  const int64_t nb = d.nbones, nv = d.nverts;
  // Cumulative rotations along the chain.
  std::vector<Real> R(static_cast<size_t>(nb * 9));
  Real prev[9] = {Real(1.0), Real(0.0), Real(0.0), Real(0.0), Real(1.0),
                  Real(0.0), Real(0.0), Real(0.0), Real(1.0)};
  for (int64_t b = 0; b < nb; ++b) {
    const Real& ax = theta[3 * b];
    const Real& ay = theta[3 * b + 1];
    const Real& az = theta[3 * b + 2];
    Real cx = cos(ax), sx = sin(ax), cy = cos(ay), sy = sin(ay), cz = cos(az), sz = sin(az);
    // R = Rz * Ry * Rx
    Real rot[9] = {cz * cy,
                   cz * sy * sx - sz * cx,
                   cz * sy * cx + sz * sx,
                   sz * cy,
                   sz * sy * sx + cz * cx,
                   sz * sy * cx - cz * sx,
                   Real(0.0) - sy,
                   cy * sx,
                   cy * cx};
    Real cur[9];
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        Real s(0.0);
        for (int k = 0; k < 3; ++k) s = s + prev[i * 3 + k] * rot[k * 3 + j];
        cur[i * 3 + j] = s;
      }
    }
    for (int i = 0; i < 9; ++i) {
      R[static_cast<size_t>(b * 9 + i)] = cur[i];
      prev[i] = cur[i];
    }
  }
  for (int64_t v = 0; v < nv; ++v) {
    Real pos[3];
    for (int i = 0; i < 3; ++i) pos[i] = Real(d.base[static_cast<size_t>(v * 3 + i)]);
    if (us != nullptr) {
      for (int i = 0; i < 3; ++i) {
        pos[i] = pos[i] + us[2 * v] * d.dirs[static_cast<size_t>(v * 6 + i)] +
                 us[2 * v + 1] * d.dirs[static_cast<size_t>(v * 6 + 3 + i)];
      }
    }
    const Real* Rb = R.data() + d.bone_of[static_cast<size_t>(v)] * 9;
    for (int i = 0; i < 3; ++i) {
      Real s = Rb[i * 3] * pos[0] + Rb[i * 3 + 1] * pos[1] + Rb[i * 3 + 2] * pos[2];
      out[v * 3 + i] = s - d.targets[static_cast<size_t>(v * 3 + i)];
    }
  }
}

// Tape-baseline full Jacobian: one tape reversal per residual row.
size_t hand_tape_jacobian(const HandData& d, bool complicated);

} // namespace npad::apps
