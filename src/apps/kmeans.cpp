#include "apps/kmeans.hpp"

#include <cmath>

#include "eager/autograd.hpp"
#include "ir/builder.hpp"

namespace npad::apps {

using namespace ir;

KmeansData kmeans_gen(support::Rng& rng, int64_t n, int64_t d, int64_t k) {
  KmeansData data;
  data.n = n;
  data.d = d;
  data.k = k;
  data.points = rng.normal_vec(static_cast<size_t>(n * d));
  // Centroids: perturbed copies of random points.
  data.centroids.resize(static_cast<size_t>(k * d));
  for (int64_t c = 0; c < k; ++c) {
    const int64_t src = rng.uniform_int(n);
    for (int64_t j = 0; j < d; ++j) {
      data.centroids[static_cast<size_t>(c * d + j)] =
          data.points[static_cast<size_t>(src * d + j)] + 0.1 * rng.normal();
    }
  }
  return data;
}

ir::Prog kmeans_ir_cost() {
  ProgBuilder pb("kmeans_cost");
  Var C = pb.param("C", arr_f64(2));
  Var P = pb.param("P", arr_f64(2));
  Builder& b = pb.body();
  Var k = b.length(C);
  Var dists = b.map1(
      b.lam({arr_f64(1)},
            [&](Builder& c1, const std::vector<Var>& p) {
              // For one point: min over centroids of squared distance.
              Var ik = c1.iota(Atom(k));
              Var per = c1.map1(
                  c1.lam({i64()},
                         [&](Builder& c2, const std::vector<Var>& kk) {
                           Var crow = c2.index(C, {Atom(kk[0])});
                           Var diffs = c2.map(
                               c2.lam({f64(), f64()},
                                      [](Builder& c3, const std::vector<Var>& q) {
                                        Var dd = c3.sub(q[0], q[1]);
                                        return std::vector<Atom>{Atom(c3.mul(dd, dd))};
                                      }),
                               {p[0], crow})[0];
                           return std::vector<Atom>{
                               Atom(c2.reduce1(c2.add_op(), cf64(0.0), {diffs}))};
                         }),
                  {ik});
              return std::vector<Atom>{Atom(c1.reduce1(c1.min_op(), cf64(1e300), {per}))};
            }),
      {P});
  Var cost = b.reduce1(b.add_op(), cf64(0.0), {dists});
  return pb.finish({Atom(cost)});
}

KmeansManualResult kmeans_manual(const KmeansData& data) {
  const int64_t n = data.n, d = data.d, k = data.k;
  KmeansManualResult r;
  r.grad.assign(static_cast<size_t>(k * d), 0.0);
  r.hess_diag.assign(static_cast<size_t>(k * d), 0.0);
  std::vector<double> counts(static_cast<size_t>(k), 0.0);
  std::vector<double> sums(static_cast<size_t>(k * d), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const double* p = data.points.data() + i * d;
    double best = 1e300;
    int64_t bi = 0;
    for (int64_t c = 0; c < k; ++c) {
      const double* cc = data.centroids.data() + c * d;
      double s = 0;
      for (int64_t j = 0; j < d; ++j) {
        const double t = p[j] - cc[j];
        s += t * t;
      }
      if (s < best) {
        best = s;
        bi = c;
      }
    }
    r.cost += best;
    counts[static_cast<size_t>(bi)] += 1.0;  // histogram of assignments
    for (int64_t j = 0; j < d; ++j) sums[static_cast<size_t>(bi * d + j)] += p[j];
  }
  for (int64_t c = 0; c < k; ++c) {
    for (int64_t j = 0; j < d; ++j) {
      const size_t ix = static_cast<size_t>(c * d + j);
      r.grad[ix] = 2.0 * (counts[static_cast<size_t>(c)] * data.centroids[ix] - sums[ix]);
      r.hess_diag[ix] = 2.0 * counts[static_cast<size_t>(c)];
    }
  }
  return r;
}

KmeansEagerResult kmeans_eager(const KmeansData& data, bool with_grad) {
  using namespace eager;
  const int64_t n = data.n, d = data.d, k = data.k;
  eager::Var P(Tensor::from(data.points, {n, d}), false);
  eager::Var C(Tensor::from(data.centroids, {k, d}), true);
  // dist[i,c] = |p_i|^2 + |c|^2 - 2 p_i . c  (expanded quadratics as the
  // paper's PyTorch implementation does to avoid broadcast blowup).
  eager::Var p2 = sum_rows(square(P));                       // [n]
  eager::Var c2 = sum_rows(square(C));                       // [k]
  eager::Var cross = scale(matmul(P, transpose(C)), -2.0);   // [n,k]
  eager::Var dist = add_rowvec(add_colvec(cross, p2), c2);   // [n,k]
  eager::Var mins = min_rows(dist);                          // [n]
  eager::Var cost = sum(mins);
  KmeansEagerResult r;
  r.cost = cost.value().item();
  if (with_grad) {
    backward(cost);
    r.grad = C.grad().data();
  }
  return r;
}

// ------------------------------------------------------------- sparse ------

KmeansSparseData kmeans_sparse_gen(support::Rng& rng, int64_t n, int64_t d, int64_t k,
                                   int64_t nnz_per_row) {
  KmeansSparseData data;
  data.points = eager::random_csr(rng, n, d, nnz_per_row);
  data.k = k;
  data.centroids = rng.normal_vec(static_cast<size_t>(k * d), 0.0, 0.3);
  return data;
}

ir::Prog kmeans_sparse_ir_cost() {
  ProgBuilder pb("kmeans_sparse_cost");
  Var C = pb.param("C", arr_f64(2));
  Var vals = pb.param("vals", arr_f64(1));
  Var cols = pb.param("cols", arr(ScalarType::I64, 1));
  Var rowptr = pb.param("rowptr", arr(ScalarType::I64, 1));
  Var psq = pb.param("psq", arr_f64(1));
  Builder& b = pb.body();
  Var k = b.length(C);
  // Per-centroid squared norms.
  Var c2 = b.map1(b.lam({arr_f64(1)},
                        [&](Builder& c1, const std::vector<Var>& row) {
                          Var sq = c1.map1(c1.lam({f64()},
                                                  [](Builder& c2b, const std::vector<Var>& q) {
                                                    return std::vector<Atom>{
                                                        Atom(c2b.mul(q[0], q[0]))};
                                                  }),
                                           {row[0]});
                          return std::vector<Atom>{
                              Atom(c1.reduce1(c1.add_op(), cf64(0.0), {sq}))};
                        }),
                  {C});
  Var n = b.length(psq);
  Var in = b.iota(Atom(n));
  Var dists = b.map1(
      b.lam({i64()},
            [&](Builder& c1, const std::vector<Var>& pi) {
              Var lo = c1.index(rowptr, {Atom(pi[0])});
              Var hi = c1.index(rowptr, {Atom(c1.add(pi[0], ci64(1)))});
              Var nnz = c1.sub(Atom(hi), Atom(lo));
              Var p2 = c1.index(psq, {Atom(pi[0])});
              Var ik = c1.iota(Atom(k));
              Var per = c1.map1(
                  c1.lam({i64()},
                         [&](Builder& cb, const std::vector<Var>& kk) {
                           // dot(p_i, c_k) over the CSR row segment.
                           auto dot = cb.loop_for(
                               {cf64(0.0)}, Atom(nnz),
                               [&](Builder& c3, Var e, const std::vector<Var>& acc) {
                                 Var ofs = c3.add(Atom(lo), Atom(e));
                                 Var col = c3.index(cols, {Atom(ofs)});
                                 Var v = c3.index(vals, {Atom(ofs)});
                                 Var cv = c3.index(C, {Atom(kk[0]), Atom(col)});
                                 return std::vector<Atom>{
                                     Atom(c3.add(acc[0], Atom(c3.mul(v, cv))))};
                               });
                           Var ck2 = cb.index(c2, {Atom(kk[0])});
                           Var t = cb.sub(Atom(cb.add(p2, Atom(ck2))),
                                          Atom(cb.mul(cf64(2.0), Atom(dot[0]))));
                           return std::vector<Atom>{Atom(t)};
                         }),
                  {ik});
              return std::vector<Atom>{Atom(c1.reduce1(c1.min_op(), cf64(1e300), {per}))};
            }),
      {in});
  Var cost = b.reduce1(b.add_op(), cf64(0.0), {dists});
  return pb.finish({Atom(cost)});
}

std::vector<rt::Value> kmeans_sparse_ir_args(const KmeansSparseData& data) {
  const auto& A = data.points;
  return {rt::make_f64_array(data.centroids, {data.k, A.cols}),
          rt::make_f64_array(A.values, {A.nnz()}),
          rt::make_i64_array(A.col_idx, {A.nnz()}),
          rt::make_i64_array(A.row_ptr, {A.rows + 1}),
          rt::make_f64_array(eager::csr_row_sqnorms(A), {A.rows})};
}

KmeansManualResult kmeans_sparse_manual(const KmeansSparseData& data) {
  const auto& A = data.points;
  const int64_t n = A.rows, d = A.cols, k = data.k;
  std::vector<double> c2(static_cast<size_t>(k), 0.0);
  for (int64_t c = 0; c < k; ++c) {
    for (int64_t j = 0; j < d; ++j) {
      const double v = data.centroids[static_cast<size_t>(c * d + j)];
      c2[static_cast<size_t>(c)] += v * v;
    }
  }
  std::vector<double> p2 = eager::csr_row_sqnorms(A);
  KmeansManualResult r;
  r.grad.assign(static_cast<size_t>(k * d), 0.0);
  r.hess_diag.assign(static_cast<size_t>(k * d), 0.0);
  std::vector<double> counts(static_cast<size_t>(k), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double best = 1e300;
    int64_t bi = 0;
    for (int64_t c = 0; c < k; ++c) {
      double dot = 0;
      for (int64_t e = A.row_ptr[static_cast<size_t>(i)]; e < A.row_ptr[static_cast<size_t>(i) + 1];
           ++e) {
        dot += A.values[static_cast<size_t>(e)] *
               data.centroids[static_cast<size_t>(c * d + A.col_idx[static_cast<size_t>(e)])];
      }
      const double dist = p2[static_cast<size_t>(i)] + c2[static_cast<size_t>(c)] - 2 * dot;
      if (dist < best) {
        best = dist;
        bi = c;
      }
    }
    r.cost += best;
    counts[static_cast<size_t>(bi)] += 1.0;
    // grad contribution (sparse point): accumulated below via counts & sums.
    for (int64_t e = A.row_ptr[static_cast<size_t>(i)]; e < A.row_ptr[static_cast<size_t>(i) + 1];
         ++e) {
      r.grad[static_cast<size_t>(bi * d + A.col_idx[static_cast<size_t>(e)])] -=
          2.0 * A.values[static_cast<size_t>(e)];
    }
  }
  for (int64_t c = 0; c < k; ++c) {
    for (int64_t j = 0; j < d; ++j) {
      const size_t ix = static_cast<size_t>(c * d + j);
      r.grad[ix] += 2.0 * counts[static_cast<size_t>(c)] * data.centroids[ix];
      r.hess_diag[ix] = 2.0 * counts[static_cast<size_t>(c)];
    }
  }
  return r;
}

KmeansEagerResult kmeans_sparse_eager(const KmeansSparseData& data, bool with_grad) {
  using namespace eager;
  const auto& A = data.points;
  const int64_t n = A.rows, d = A.cols, k = data.k;
  Coo coo = to_coo(A);
  eager::Var C(Tensor::from(data.centroids, {k, d}), true);
  eager::Var p2(Tensor::from(csr_row_sqnorms(A), {n}), false);
  eager::Var c2 = sum_rows(square(C));
  eager::Var cross = scale(coo_matmul(coo, transpose(C)), -2.0);  // [n,k]
  eager::Var dist = add_rowvec(add_colvec(cross, p2), c2);
  eager::Var cost = sum(min_rows(dist));
  KmeansEagerResult r;
  r.cost = cost.value().item();
  if (with_grad) {
    backward(cost);
    r.grad = C.grad().data();
  }
  return r;
}

} // namespace npad::apps
