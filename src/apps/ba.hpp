#pragma once

// Bundle Adjustment (ADBench BA, Section 7.1). Residuals per observation:
// reprojection error (2 components) of point X through camera cam[11]
// (Rodrigues rotation r[3], center C[3], focal f, principal point x0[2],
// radial distortion k1 k2), plus a weight-regularization residual 1 - w^2.
//
// The Jacobian is block-sparse: each row depends on one camera (11), one
// point (3) and one weight (1). Like the paper, the harness exploits this
// with seed vectors: 15 jvp passes recover the whole Jacobian (all blocks
// in parallel), versus the tape baseline which re-tapes per row.

#include <vector>

#include "ir/ast.hpp"
#include "runtime/value.hpp"
#include "support/rng.hpp"
#include "tape/tape.hpp"

namespace npad::apps {

struct BaData {
  int64_t n_cams = 0, n_pts = 0, n_obs = 0;
  std::vector<double> cams;     // n_cams * 11
  std::vector<double> pts;      // n_pts * 3
  std::vector<double> weights;  // n_obs
  std::vector<int64_t> cam_idx, pt_idx;  // n_obs
  std::vector<double> feats;    // n_obs * 2 (measurements)
};

BaData ba_gen(support::Rng& rng, int64_t n_cams, int64_t n_pts, int64_t n_obs);

// IR program computing all residuals:
// params (cams:[nc][11], pts:[np][3], w:[p], camIdx:[p]i64, ptIdx:[p]i64,
//         feats:[p][2]) -> (reproj:[p][2], werr:[p]).
ir::Prog ba_ir_residuals();

std::vector<rt::Value> ba_ir_args(const BaData& data);

// Templated scalar kernel shared by the plain-double primal and the tape
// baseline (the Tapenade stand-in differentiates exactly this code).
template <class Real>
void ba_project(const Real cam[11], const Real X[3], Real out[2]) {
  using std::cos;
  using std::sin;
  using std::sqrt;
  // Rodrigues rotation of (X - C) ... ADBench rotates X then translates; we
  // follow ADBench: Xcam = R(r) * (X - C).
  Real d0 = X[0] - cam[3], d1 = X[1] - cam[4], d2 = X[2] - cam[5];
  const Real &r0 = cam[0], &r1 = cam[1], &r2 = cam[2];
  Real theta2 = r0 * r0 + r1 * r1 + r2 * r2 + Real(1e-12);
  Real theta = sqrt(theta2);
  Real c = cos(theta), s = sin(theta);
  Real it = 1.0 / theta;
  Real w0 = r0 * it, w1 = r1 * it, w2 = r2 * it;
  Real wd = w0 * d0 + w1 * d1 + w2 * d2;
  Real cx0 = w1 * d2 - w2 * d1, cx1 = w2 * d0 - w0 * d2, cx2 = w0 * d1 - w1 * d0;
  Real p0 = d0 * c + cx0 * s + w0 * wd * (1.0 - c);
  Real p1 = d1 * c + cx1 * s + w1 * wd * (1.0 - c);
  Real p2 = d2 * c + cx2 * s + w2 * wd * (1.0 - c);
  // Perspective divide + radial distortion + focal/principal point.
  Real ix = p0 / p2, iy = p1 / p2;
  Real rr = ix * ix + iy * iy;
  Real distort = 1.0 + cam[9] * rr + cam[10] * rr * rr;
  out[0] = cam[6] * distort * ix + cam[7];
  out[1] = cam[6] * distort * iy + cam[8];
}

// Full Jacobian via the tape baseline: one tape reversal per residual row.
// Returns the number of nonzero entries written (for sanity checking).
size_t ba_tape_jacobian(const BaData& data, std::vector<double>* out_rows);

// Objective-only evaluation with plain doubles (for ratio baselines).
double ba_primal_sum(const BaData& data);

} // namespace npad::apps
