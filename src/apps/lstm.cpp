#include "apps/lstm.hpp"

#include <cmath>

#include "eager/autograd.hpp"
#include "ir/builder.hpp"

namespace npad::apps {

using namespace ir;

LstmData lstm_gen(support::Rng& rng, int64_t bs, int64_t n, int64_t d, int64_t h) {
  LstmData L;
  L.bs = bs;
  L.n = n;
  L.d = d;
  L.h = h;
  const double sx = 1.0 / std::sqrt(static_cast<double>(d));
  const double sh = 1.0 / std::sqrt(static_cast<double>(h));
  L.wx = rng.normal_vec(static_cast<size_t>(4 * h * d), 0.0, sx);
  L.wh = rng.normal_vec(static_cast<size_t>(4 * h * h), 0.0, sh);
  L.b = rng.normal_vec(static_cast<size_t>(4 * h), 0.0, 0.1);
  L.x = rng.normal_vec(static_cast<size_t>(n * bs * d), 0.0, 1.0);
  return L;
}

ir::Prog lstm_ir_objective() {
  ProgBuilder pb("lstm_objective");
  Var wx = pb.param("wx", arr_f64(2));  // [4h, d]
  Var wh = pb.param("wh", arr_f64(2));  // [4h, h]
  Var bb = pb.param("b", arr_f64(1));   // [4h]
  Var x = pb.param("x", arr_f64(3));    // [n, bs, d]
  Builder& b = pb.body();
  Var n = b.length(x);
  Var fourh = b.length(bb);
  Var h = b.div(Atom(fourh), ci64(4));
  // Initial h, c: zeros [bs, h] — build by mapping over one x slice.
  Var x0 = b.index(x, {ci64(0)});
  Var zrow = b.map1(b.lam({arr_f64(1)},
                          [&](Builder& c, const std::vector<Var>& p) {
                            (void)p;
                            Var ih = c.iota(Atom(h));
                            Var z = c.map1(c.lam({i64()},
                                                 [](Builder& cc, const std::vector<Var>& q) {
                                                   (void)q;
                                                   return std::vector<Atom>{cf64(0.0)};
                                                 }),
                                           {ih});
                            return std::vector<Atom>{Atom(z)};
                          }),
                    {x0}, "zeros_bh");
  // Sequential time loop carrying (h_state, c_state, loss).
  auto outs = b.loop_for(
      {Atom(zrow), Atom(zrow), cf64(0.0)}, Atom(n),
      [&](Builder& lb, Var t, const std::vector<Var>& st) {
        Var hprev = st[0], cprev = st[1], loss = st[2];
        Var xt = lb.index(x, {Atom(t)});  // [bs, d]
        // Per batch row: compute gates and new (h, c), plus row loss.
        auto hc = lb.map(
            lb.lam({arr_f64(1), arr_f64(1), arr_f64(1)},
                   [&](Builder& c1, const std::vector<Var>& row) {
                     Var xr = row[0], hr = row[1], cr = row[2];
                     Var ih = c1.iota(Atom(h));
                     auto newhc = c1.map(
                         c1.lam({i64()},
                                [&](Builder& c2, const std::vector<Var>& jj) {
                                  auto dotrow = [&](Var W, Atom grow, Var vec, Var len) {
                                    Var il = c2.iota(Atom(len));
                                    Var prods = c2.map1(
                                        c2.lam({i64()},
                                               [&](Builder& c3, const std::vector<Var>& q) {
                                                 Var wv = c3.index(W, {grow, Atom(q[0])});
                                                 Var xv = c3.index(vec, {Atom(q[0])});
                                                 return std::vector<Atom>{
                                                     Atom(c3.mul(wv, xv))};
                                               }),
                                        {il});
                                    return c2.reduce1(c2.add_op(), cf64(0.0), {prods});
                                  };
                                  Var d_ = c2.length(xr);
                                  auto pre = [&](int g) {
                                    Var grow = c2.add(Atom(jj[0]),
                                                      Atom(c2.mul(ci64(g), Atom(h))));
                                    Var s1 = dotrow(wx, Atom(grow), xr, d_);
                                    Var s2 = dotrow(wh, Atom(grow), hr, h);
                                    Var bv = c2.index(bb, {Atom(grow)});
                                    return c2.add(Atom(c2.add(s1, Atom(s2))), Atom(bv));
                                  };
                                  Var ig = c2.sigmoid(Atom(pre(0)));
                                  Var fg = c2.sigmoid(Atom(pre(1)));
                                  Var og = c2.sigmoid(Atom(pre(2)));
                                  Var cg = c2.tanh(Atom(pre(3)));
                                  Var cold = c2.index(cr, {Atom(jj[0])});
                                  Var cnew = c2.add(Atom(c2.mul(fg, cold)),
                                                    Atom(c2.mul(ig, cg)));
                                  Var hnew = c2.mul(og, c2.tanh(cnew));
                                  return std::vector<Atom>{Atom(hnew), Atom(cnew)};
                                }),
                         {ih});
                     Var hn = newhc[0], cn = newhc[1];
                     Var sq = c1.map1(c1.lam({f64()},
                                             [](Builder& cc, const std::vector<Var>& q) {
                                               return std::vector<Atom>{
                                                   Atom(cc.mul(q[0], q[0]))};
                                             }),
                                      {hn});
                     Var rl = c1.reduce1(c1.add_op(), cf64(0.0), {sq});
                     return std::vector<Atom>{Atom(hn), Atom(cn), Atom(rl)};
                   }),
            {xt, hprev, cprev});
        Var lsum = lb.reduce1(lb.add_op(), cf64(0.0), {hc[2]});
        return std::vector<Atom>{Atom(hc[0]), Atom(hc[1]), Atom(lb.add(loss, Atom(lsum)))};
      });
  return pb.finish({Atom(outs[2])});
}

std::vector<rt::Value> lstm_ir_args(const LstmData& L) {
  return {rt::make_f64_array(L.wx, {4 * L.h, L.d}), rt::make_f64_array(L.wh, {4 * L.h, L.h}),
          rt::make_f64_array(L.b, {4 * L.h}), rt::make_f64_array(L.x, {L.n, L.bs, L.d})};
}

LstmResult lstm_eager(const LstmData& L, bool with_grad) {
  using namespace eager;
  const int64_t bs = L.bs, n = L.n, d = L.d, h = L.h;
  eager::Var wxT(Tensor::from([&] {  // store transposed for [bs,d] x [d,4h]
           std::vector<double> t(static_cast<size_t>(d * 4 * h));
           for (int64_t i = 0; i < 4 * h; ++i)
             for (int64_t j = 0; j < d; ++j) t[static_cast<size_t>(j * 4 * h + i)] = L.wx[static_cast<size_t>(i * d + j)];
           return t;
         }(), {d, 4 * h}),
          true);
  eager::Var whT(Tensor::from([&] {
           std::vector<double> t(static_cast<size_t>(h * 4 * h));
           for (int64_t i = 0; i < 4 * h; ++i)
             for (int64_t j = 0; j < h; ++j) t[static_cast<size_t>(j * 4 * h + i)] = L.wh[static_cast<size_t>(i * h + j)];
           return t;
         }(), {h, 4 * h}),
          true);
  eager::Var bias(Tensor::from(L.b, {4 * h}), true);
  eager::Var hS(Tensor::zeros({bs, h}), false);
  eager::Var cS(Tensor::zeros({bs, h}), false);
  eager::Var loss;
  for (int64_t t = 0; t < n; ++t) {
    std::vector<double> xt(L.x.begin() + t * bs * d, L.x.begin() + (t + 1) * bs * d);
    eager::Var xv(Tensor::from(std::move(xt), {bs, d}), false);
    eager::Var pre = add_rowvec(add(matmul(xv, wxT), matmul(hS, whT)), bias);  // [bs,4h]
    // Split gates by slicing columns: emulate with elementwise masks is
    // wasteful; instead compute per-gate matmuls on column blocks.
    // Simpler: build gate tensors by copying column ranges.
    auto slice_cols = [&](const eager::Var& m, int64_t c0, int64_t c1) {
      const int64_t rows = m.value().dim(0), cols = m.value().dim(1);
      Tensor out({rows, c1 - c0});
      for (int64_t i = 0; i < rows; ++i)
        for (int64_t j = c0; j < c1; ++j)
          out.ptr()[i * (c1 - c0) + (j - c0)] = m.value().ptr()[i * cols + j];
      auto node = std::make_shared<Node>();
      node->value = std::move(out);
      node->requires_grad = m.requires_grad();
      node->parents.push_back(m.node());
      node->backward_fn = [c0, c1, cols, rows](Node& nd) {
        Tensor g({rows, cols});
        for (int64_t i = 0; i < rows; ++i)
          for (int64_t j = c0; j < c1; ++j)
            g.ptr()[i * cols + j] = nd.grad.ptr()[i * (c1 - c0) + (j - c0)];
        nd.parents[0]->accumulate(g);
      };
      return eager::Var::from_node(std::move(node));
    };
    eager::Var ig = sigmoid(slice_cols(pre, 0, h));
    eager::Var fg = sigmoid(slice_cols(pre, h, 2 * h));
    eager::Var og = sigmoid(slice_cols(pre, 2 * h, 3 * h));
    eager::Var cg = tanh(slice_cols(pre, 3 * h, 4 * h));
    cS = add(mul(fg, cS), mul(ig, cg));
    hS = mul(og, tanh(cS));
    eager::Var l = sum(square(hS));
    loss = loss.defined() ? add(loss, l) : l;
  }
  LstmResult r;
  r.objective = loss.value().item();
  if (!with_grad) return r;
  backward(loss);
  // Transpose gradients back to [4h, d] layout.
  r.d_wx.resize(static_cast<size_t>(4 * h * d));
  for (int64_t i = 0; i < 4 * h; ++i)
    for (int64_t j = 0; j < d; ++j)
      r.d_wx[static_cast<size_t>(i * d + j)] = wxT.grad().ptr()[j * 4 * h + i];
  r.d_wh.resize(static_cast<size_t>(4 * h * h));
  for (int64_t i = 0; i < 4 * h; ++i)
    for (int64_t j = 0; j < h; ++j)
      r.d_wh[static_cast<size_t>(i * h + j)] = whT.grad().ptr()[j * 4 * h + i];
  r.d_b = bias.grad().data();
  return r;
}

namespace {

struct LstmActs {
  // Per time step: gates and states, each bs*h.
  std::vector<std::vector<double>> ig, fg, og, cg, c, h, cprev, hprev;
};

double lstm_forward_manual(const LstmData& L, LstmActs* acts) {
  const int64_t bs = L.bs, n = L.n, d = L.d, h = L.h;
  std::vector<double> hS(static_cast<size_t>(bs * h), 0.0), cS(static_cast<size_t>(bs * h), 0.0);
  double loss = 0;
  for (int64_t t = 0; t < n; ++t) {
    std::vector<double> ig(static_cast<size_t>(bs * h)), fg(ig), og(ig), cg(ig);
    std::vector<double> hprev = hS, cprev = cS;
    const double* xt = L.x.data() + t * bs * d;
    for (int64_t r = 0; r < bs; ++r) {
      for (int64_t j = 0; j < h; ++j) {
        double pre[4];
        for (int g = 0; g < 4; ++g) {
          const int64_t row = g * h + j;
          double s = L.b[static_cast<size_t>(row)];
          const double* wxr = L.wx.data() + row * d;
          for (int64_t q = 0; q < d; ++q) s += wxr[q] * xt[r * d + q];
          const double* whr = L.wh.data() + row * h;
          for (int64_t q = 0; q < h; ++q) s += whr[q] * hprev[static_cast<size_t>(r * h + q)];
          pre[g] = s;
        }
        const size_t ix = static_cast<size_t>(r * h + j);
        ig[ix] = 1.0 / (1.0 + std::exp(-pre[0]));
        fg[ix] = 1.0 / (1.0 + std::exp(-pre[1]));
        og[ix] = 1.0 / (1.0 + std::exp(-pre[2]));
        cg[ix] = std::tanh(pre[3]);
        cS[ix] = fg[ix] * cprev[ix] + ig[ix] * cg[ix];
        hS[ix] = og[ix] * std::tanh(cS[ix]);
        loss += hS[ix] * hS[ix];
      }
    }
    if (acts) {
      acts->ig.push_back(ig);
      acts->fg.push_back(fg);
      acts->og.push_back(og);
      acts->cg.push_back(cg);
      acts->c.push_back(cS);
      acts->h.push_back(hS);
      acts->cprev.push_back(cprev);
      acts->hprev.push_back(hprev);
    }
  }
  return loss;
}

} // namespace

double lstm_manual_objective_only(const LstmData& L) { return lstm_forward_manual(L, nullptr); }

LstmResult lstm_manual(const LstmData& L) {
  const int64_t bs = L.bs, n = L.n, d = L.d, h = L.h;
  LstmActs acts;
  LstmResult r;
  r.objective = lstm_forward_manual(L, &acts);
  r.d_wx.assign(static_cast<size_t>(4 * h * d), 0.0);
  r.d_wh.assign(static_cast<size_t>(4 * h * h), 0.0);
  r.d_b.assign(static_cast<size_t>(4 * h), 0.0);
  std::vector<double> dh(static_cast<size_t>(bs * h), 0.0), dc(static_cast<size_t>(bs * h), 0.0);
  for (int64_t t = n - 1; t >= 0; --t) {
    const double* xt = L.x.data() + t * bs * d;
    const auto& ig = acts.ig[static_cast<size_t>(t)];
    const auto& fg = acts.fg[static_cast<size_t>(t)];
    const auto& og = acts.og[static_cast<size_t>(t)];
    const auto& cg = acts.cg[static_cast<size_t>(t)];
    const auto& cS = acts.c[static_cast<size_t>(t)];
    const auto& hS = acts.h[static_cast<size_t>(t)];
    const auto& cprev = acts.cprev[static_cast<size_t>(t)];
    const auto& hprev = acts.hprev[static_cast<size_t>(t)];
    std::vector<double> dh_next(static_cast<size_t>(bs * h), 0.0);
    std::vector<double> dc_next(static_cast<size_t>(bs * h), 0.0);
    for (int64_t rr = 0; rr < bs; ++rr) {
      for (int64_t j = 0; j < h; ++j) {
        const size_t ix = static_cast<size_t>(rr * h + j);
        const double dht = dh[ix] + 2.0 * hS[ix];  // loss contributes 2h each step
        const double tc = std::tanh(cS[ix]);
        const double dog = dht * tc;
        const double dct = dht * og[ix] * (1.0 - tc * tc) + dc[ix];
        const double dig = dct * cg[ix];
        const double dfg = dct * cprev[ix];
        const double dcg = dct * ig[ix];
        dc_next[ix] = dct * fg[ix];
        const double dpre[4] = {dig * ig[ix] * (1 - ig[ix]), dfg * fg[ix] * (1 - fg[ix]),
                                dog * og[ix] * (1 - og[ix]), dcg * (1 - cg[ix] * cg[ix])};
        for (int g = 0; g < 4; ++g) {
          const int64_t row = g * h + j;
          r.d_b[static_cast<size_t>(row)] += dpre[g];
          double* dwxr = r.d_wx.data() + row * d;
          for (int64_t q = 0; q < d; ++q) dwxr[q] += dpre[g] * xt[rr * d + q];
          double* dwhr = r.d_wh.data() + row * h;
          const double* whr = L.wh.data() + row * h;
          for (int64_t q = 0; q < h; ++q) {
            dwhr[q] += dpre[g] * hprev[static_cast<size_t>(rr * h + q)];
            dh_next[static_cast<size_t>(rr * h + q)] += dpre[g] * whr[q];
          }
        }
      }
    }
    dh = std::move(dh_next);
    dc = std::move(dc_next);
  }
  return r;
}

} // namespace npad::apps
