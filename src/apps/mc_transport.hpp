#pragma once

// Monte Carlo neutron-transport cross-section lookup kernels: ports of the
// computational cores of XSBench (unionized energy grid lookup + linear
// interpolation over 5 reaction channels) and RSBench (multipole resonance
// evaluation), the two Enzyme comparison applications of Section 7.3. Both
// are one large map over lookups with inner loops, control flow and indirect
// indexing — exactly the structure the paper highlights.
//
// Synthetic data stands in for the benchmarks' generated inputs (the
// originals also generate synthetic cross sections). The differentiated
// quantity is the total macroscopic cross section summed over all lookups,
// with gradients flowing to the nuclide data (XSBench) / pole parameters
// (RSBench).

#include <vector>

#include "ir/ast.hpp"
#include "runtime/value.hpp"
#include "support/rng.hpp"
#include "tape/tape.hpp"

namespace npad::apps {

// ----------------------------------------------------------- XSBench-like --

struct XsData {
  int64_t n_nuclides = 0, n_grid = 0, n_lookups = 0;
  std::vector<double> egrid;    // n_grid, sorted in (0,1)
  std::vector<double> xs;       // n_nuclides * n_grid * 5
  std::vector<double> conc;     // n_nuclides
  std::vector<double> queries;  // n_lookups in (0,1)
};

XsData xs_gen(support::Rng& rng, int64_t n_nuclides, int64_t n_grid, int64_t n_lookups);

// IR program: params (egrid:[G], xs:[N][G][5]... flattened as [N*G*5],
// conc:[N], queries:[L]) -> f64 (sum of macro xs over lookups and channels).
ir::Prog xs_ir_objective();
std::vector<rt::Value> xs_ir_args(const XsData& data);

// Templated kernel for the primal / tape baselines.
template <class Real>
Real xs_objective(const XsData& d, const Real* xsdata, const Real* conc) {
  Real total(0.0);
  const int64_t G = d.n_grid, N = d.n_nuclides;
  for (int64_t q = 0; q < d.n_lookups; ++q) {
    const double e = d.queries[static_cast<size_t>(q)];
    // Binary search on the (constant) energy grid.
    int64_t lo = 0, hi = G - 1;
    while (hi - lo > 1) {
      const int64_t mid = (lo + hi) / 2;
      if (d.egrid[static_cast<size_t>(mid)] <= e) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const double e0 = d.egrid[static_cast<size_t>(lo)], e1 = d.egrid[static_cast<size_t>(hi)];
    const double f = (e - e0) / (e1 - e0 + 1e-30);
    for (int64_t n = 0; n < N; ++n) {
      for (int ch = 0; ch < 5; ++ch) {
        const Real& x0 = xsdata[(n * G + lo) * 5 + ch];
        const Real& x1 = xsdata[(n * G + hi) * 5 + ch];
        total = total + conc[n] * (x0 + (x1 - x0) * f);
      }
    }
  }
  return total;
}

double xs_primal(const XsData& d);
double xs_tape_gradient(const XsData& d, std::vector<double>* grad_xs);

// ----------------------------------------------------------- RSBench-like --

struct RsData {
  int64_t n_nuclides = 0, n_poles = 0, n_lookups = 0;
  std::vector<double> pole_e;   // N*P resonance energies
  std::vector<double> pole_w;   // N*P widths
  std::vector<double> pole_a;   // N*P amplitudes
  std::vector<double> conc;     // N
  std::vector<double> queries;  // L
};

RsData rs_gen(support::Rng& rng, int64_t n_nuclides, int64_t n_poles, int64_t n_lookups);

ir::Prog rs_ir_objective();
std::vector<rt::Value> rs_ir_args(const RsData& data);

template <class Real>
Real rs_objective(const RsData& d, const Real* pe, const Real* pw, const Real* pa,
                  const Real* conc) {
  using std::sqrt;
  Real total(0.0);
  const int64_t P = d.n_poles, N = d.n_nuclides;
  for (int64_t q = 0; q < d.n_lookups; ++q) {
    const double e = d.queries[static_cast<size_t>(q)];
    for (int64_t n = 0; n < N; ++n) {
      Real sig(0.0);
      for (int64_t p = 0; p < P; ++p) {
        const int64_t ix = n * P + p;
        // Lorentzian resonance with a 1/sqrt(E) potential-scattering term.
        Real de = pe[ix] - e;
        Real denom = de * de + pw[ix] * pw[ix];
        sig = sig + pa[ix] * pw[ix] / denom;
      }
      total = total + conc[n] * sig / sqrt(Real(e));
    }
  }
  return total;
}

double rs_primal(const RsData& d);
double rs_tape_gradient(const RsData& d);

} // namespace npad::apps
