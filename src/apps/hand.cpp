#include "apps/hand.hpp"

#include <cmath>

#include "ir/builder.hpp"

namespace npad::apps {

using namespace ir;

HandData hand_gen(support::Rng& rng, int64_t nbones, int64_t nverts) {
  HandData d;
  d.nbones = nbones;
  d.nverts = nverts;
  d.theta = rng.normal_vec(static_cast<size_t>(3 * nbones), 0.0, 0.3);
  d.us = rng.normal_vec(static_cast<size_t>(2 * nverts), 0.0, 0.1);
  d.base = rng.normal_vec(static_cast<size_t>(nverts * 3));
  d.dirs = rng.normal_vec(static_cast<size_t>(nverts * 6), 0.0, 0.5);
  d.bone_of = rng.index_vec(static_cast<size_t>(nverts), nbones);
  d.targets = rng.normal_vec(static_cast<size_t>(nverts * 3));
  return d;
}

ir::Prog hand_ir_residuals(bool complicated) {
  ProgBuilder pb(complicated ? "hand_complicated" : "hand_simple");
  Var theta = pb.param("theta", arr_f64(1));     // [3*nb]
  Var us = complicated ? pb.param("us", arr_f64(1)) : Var{};
  Var base = pb.param("base", arr_f64(2));       // [nv][3]
  Var dirs = pb.param("dirs", arr_f64(2));       // [nv][6]
  Var boneOf = pb.param("boneOf", arr(ScalarType::I64, 1));
  Var targets = pb.param("targets", arr_f64(2));  // [nv][3]
  Builder& b = pb.body();
  Var nb3 = b.length(theta);
  Var nb = b.div(Atom(nb3), ci64(3));
  // Identity 3x3 flattened, as the initial cumulative rotation.
  Var i9 = b.iota(ci64(9));
  Var ident = b.map1(b.lam({i64()},
                           [](Builder& c, const std::vector<Var>& p) {
                             Var r = c.div(p[0], ci64(3));
                             Var cc = c.mod(p[0], ci64(3));
                             Var one = c.eq(r, cc);
                             return std::vector<Atom>{
                                 Atom(c.select(one, cf64(1.0), cf64(0.0)))};
                           }),
                     {i9}, "ident");
  // Sequential composition of bone rotations; Rs[b] = cumulative rotation.
  Var rs0 = b.scratch(Atom(nb), ident);
  auto chain = b.loop_for(
      {Atom(ident), Atom(rs0)}, Atom(nb),
      [&](Builder& lb, Var bi, const std::vector<Var>& st) {
        Var prev = st[0], rs = st[1];
        Var b3 = lb.mul(Atom(bi), ci64(3));
        Var ax = lb.index(theta, {Atom(b3)});
        Var ay = lb.index(theta, {Atom(lb.add(Atom(b3), ci64(1)))});
        Var az = lb.index(theta, {Atom(lb.add(Atom(b3), ci64(2)))});
        Var cx = lb.cos(ax), sx = lb.sin(ax);
        Var cy = lb.cos(ay), sy = lb.sin(ay);
        Var cz = lb.cos(az), sz = lb.sin(az);
        // rot = Rz*Ry*Rx flattened.
        std::vector<Var> rot(9);
        rot[0] = lb.mul(cz, cy);
        rot[1] = lb.sub(Atom(lb.mul(cz, lb.mul(sy, sx))), Atom(lb.mul(sz, cx)));
        rot[2] = lb.add(Atom(lb.mul(cz, lb.mul(sy, cx))), Atom(lb.mul(sz, sx)));
        rot[3] = lb.mul(sz, cy);
        rot[4] = lb.add(Atom(lb.mul(sz, lb.mul(sy, sx))), Atom(lb.mul(cz, cx)));
        rot[5] = lb.sub(Atom(lb.mul(sz, lb.mul(sy, cx))), Atom(lb.mul(cz, sx)));
        rot[6] = lb.neg(sy);
        rot[7] = lb.mul(cy, sx);
        rot[8] = lb.mul(cy, cx);
        // cur = prev * rot, elementwise over the 9 outputs.
        Var cur = ident;  // placeholder var for typing; rebuilt below
        {
          Var i9b = lb.iota(ci64(9));
          cur = lb.map1(
              lb.lam({i64()},
                     [&](Builder& c2, const std::vector<Var>& q) {
                       Var i = c2.div(q[0], ci64(3));
                       Var j = c2.mod(q[0], ci64(3));
                       Var s = c2.rebind(cf64(0.0), "acc");
                       for (int kk = 0; kk < 3; ++kk) {
                         Var pik = c2.index(prev, {Atom(c2.add(Atom(c2.mul(i, ci64(3))),
                                                               ci64(kk)))});
                         // rot[k*3+j]: select from the 9 scalars via nested selects
                         Var k3j = c2.add(Atom(c2.mul(ci64(kk), ci64(3))), Atom(j));
                         // Build rot lookup: rot is 9 scalars; select chain.
                         Var rv = c2.rebind(cf64(0.0), "rv");
                         for (int e = 0; e < 9; ++e) {
                           Var hit = c2.eq(k3j, ci64(e));
                           rv = c2.select(hit, rot[static_cast<size_t>(e)], rv);
                         }
                         s = c2.add(s, Atom(c2.mul(pik, rv)));
                       }
                       return std::vector<Atom>{Atom(s)};
                     }),
              {i9b}, "cur");
        }
        Var rs2 = lb.update(rs, {Atom(bi)}, Atom(cur));
        return std::vector<Atom>{Atom(cur), Atom(rs2)};
      });
  Var Rs = chain[1];  // [nb][9]
  // Per-vertex residuals.
  Var nv = b.length(base);
  Var iv = b.iota(Atom(nv));
  auto res = b.map(
      b.lam({i64()},
            [&](Builder& c, const std::vector<Var>& vi) {
              Var bi = c.index(boneOf, {Atom(vi[0])});
              std::vector<Var> pos(3);
              for (int i = 0; i < 3; ++i) {
                pos[static_cast<size_t>(i)] = c.index(base, {Atom(vi[0]), ci64(i)});
              }
              if (complicated) {
                Var u0 = c.index(us, {Atom(c.mul(Atom(vi[0]), ci64(2)))});
                Var u1 = c.index(
                    us, {Atom(c.add(Atom(c.mul(Atom(vi[0]), ci64(2))), ci64(1)))});
                for (int i = 0; i < 3; ++i) {
                  Var d1 = c.index(dirs, {Atom(vi[0]), ci64(i)});
                  Var d2 = c.index(dirs, {Atom(vi[0]), ci64(3 + i)});
                  pos[static_cast<size_t>(i)] =
                      c.add(Atom(pos[static_cast<size_t>(i)]),
                            Atom(c.add(Atom(c.mul(u0, d1)), Atom(c.mul(u1, d2)))));
                }
              }
              std::vector<Atom> out;
              for (int i = 0; i < 3; ++i) {
                Var s = c.rebind(cf64(0.0), "acc");
                for (int j = 0; j < 3; ++j) {
                  Var rij = c.index(Rs, {Atom(bi), ci64(i * 3 + j)});
                  s = c.add(s, Atom(c.mul(rij, pos[static_cast<size_t>(j)])));
                }
                Var t = c.index(targets, {Atom(vi[0]), ci64(i)});
                out.emplace_back(c.sub(Atom(s), Atom(t)));
              }
              return out;
            }),
      {iv}, "res");
  return pb.finish({Atom(res[0]), Atom(res[1]), Atom(res[2])});
}

std::vector<rt::Value> hand_ir_args(const HandData& d, bool complicated) {
  std::vector<rt::Value> args;
  args.push_back(rt::make_f64_array(d.theta, {3 * d.nbones}));
  if (complicated) args.push_back(rt::make_f64_array(d.us, {2 * d.nverts}));
  args.push_back(rt::make_f64_array(d.base, {d.nverts, 3}));
  args.push_back(rt::make_f64_array(d.dirs, {d.nverts, 6}));
  args.push_back(rt::make_i64_array(d.bone_of, {d.nverts}));
  args.push_back(rt::make_f64_array(d.targets, {d.nverts, 3}));
  return args;
}

size_t hand_tape_jacobian(const HandData& d, bool complicated) {
  using tape::Adouble;
  const int64_t rows = d.nverts * 3;
  size_t nnz = 0;
  std::vector<double> out_row;
  for (int64_t row = 0; row < rows; ++row) {
    tape::Tape::active().clear();
    std::vector<Adouble> th;
    for (double t : d.theta) th.emplace_back(t);
    std::vector<Adouble> uvars;
    if (complicated) {
      for (double u : d.us) uvars.emplace_back(u);
    }
    std::vector<Adouble> out(static_cast<size_t>(rows), Adouble(0.0));
    hand_residuals<Adouble>(d, th.data(), complicated ? uvars.data() : nullptr, out.data());
    out[static_cast<size_t>(row)].seed(1.0);
    tape::Tape::active().reverse();
    for (const auto& t : th) {
      (void)t.adjoint();
      ++nnz;
    }
    for (const auto& u : uvars) {
      (void)u.adjoint();
      ++nnz;
    }
  }
  return nnz;
}

} // namespace npad::apps
