#pragma once

// K-means clustering cost function (case studies 1 and 2, Sections 7.4/7.5):
//   f(C) = sum_i min_k ||p_i - c_k||^2
// in four implementations: npad IR (differentiated with vjp, Hessian diagonal
// with jvp-of-vjp), manual (histogram-based, the paper's [17] formulation),
// eager autograd (PyTorch stand-in, expanded-quadratic distances), and a
// sparse (CSR/COO) variant of each.

#include <vector>

#include "eager/sparse.hpp"
#include "ir/ast.hpp"
#include "runtime/value.hpp"
#include "support/rng.hpp"

namespace npad::apps {

struct KmeansData {
  int64_t n = 0, d = 0, k = 0;
  std::vector<double> points;     // n*d
  std::vector<double> centroids;  // k*d
};

KmeansData kmeans_gen(support::Rng& rng, int64_t n, int64_t d, int64_t k);

// IR cost program: params (C : [k][d]f64, P : [n][d]f64) -> f64.
ir::Prog kmeans_ir_cost();

// Manual implementation: cost, gradient and Hessian diagonal in one pass
// (assign each point to its nearest centroid; grad = 2*(count_k*c_k - sum_k);
// Hessian diagonal = 2*count_k), the histogram formulation of [17].
struct KmeansManualResult {
  double cost = 0;
  std::vector<double> grad;      // k*d
  std::vector<double> hess_diag; // k*d
};
KmeansManualResult kmeans_manual(const KmeansData& data);

// Eager (PyTorch-style) cost + gradient via autograd, expanded quadratics.
struct KmeansEagerResult {
  double cost = 0;
  std::vector<double> grad;  // k*d
};
KmeansEagerResult kmeans_eager(const KmeansData& data, bool with_grad = true);

// --------------------------------------------------------------- sparse ----

struct KmeansSparseData {
  eager::Csr points;              // n x d sparse
  int64_t k = 0;
  std::vector<double> centroids;  // k*d dense
};

KmeansSparseData kmeans_sparse_gen(support::Rng& rng, int64_t n, int64_t d, int64_t k,
                                   int64_t nnz_per_row);

// IR sparse cost program:
// params (C:[k][d], vals:[nnz], cols:[nnz]i64, rowptr:[n+1]i64, psq:[n]) -> f64
// using ||p-c||^2 = ||p||^2 + ||c||^2 - 2 p.c with a sequential loop over the
// CSR row segment (dynamic trip count).
ir::Prog kmeans_sparse_ir_cost();

std::vector<rt::Value> kmeans_sparse_ir_args(const KmeansSparseData& data);

KmeansManualResult kmeans_sparse_manual(const KmeansSparseData& data);
KmeansEagerResult kmeans_sparse_eager(const KmeansSparseData& data, bool with_grad = true);

} // namespace npad::apps
