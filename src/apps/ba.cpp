#include "apps/ba.hpp"

#include <cmath>

#include "ir/builder.hpp"

namespace npad::apps {

using namespace ir;

BaData ba_gen(support::Rng& rng, int64_t n_cams, int64_t n_pts, int64_t n_obs) {
  BaData d;
  d.n_cams = n_cams;
  d.n_pts = n_pts;
  d.n_obs = n_obs;
  d.cams.resize(static_cast<size_t>(n_cams * 11));
  for (int64_t c = 0; c < n_cams; ++c) {
    double* cam = d.cams.data() + c * 11;
    for (int j = 0; j < 3; ++j) cam[j] = 0.2 * rng.normal();   // rotation
    for (int j = 3; j < 6; ++j) cam[j] = rng.normal();          // center
    cam[6] = 500.0 + 10.0 * rng.normal();                       // focal
    cam[7] = rng.normal();
    cam[8] = rng.normal();
    cam[9] = 1e-3 * rng.normal();
    cam[10] = 1e-4 * rng.normal();
  }
  d.pts.resize(static_cast<size_t>(n_pts * 3));
  for (auto& v : d.pts) v = rng.normal() + 5.0;  // keep in front of cameras
  d.weights = rng.uniform_vec(static_cast<size_t>(n_obs), 0.5, 1.5);
  d.cam_idx = rng.index_vec(static_cast<size_t>(n_obs), n_cams);
  d.pt_idx = rng.index_vec(static_cast<size_t>(n_obs), n_pts);
  d.feats = rng.normal_vec(static_cast<size_t>(n_obs * 2), 0.0, 100.0);
  return d;
}

ir::Prog ba_ir_residuals() {
  ProgBuilder pb("ba_residuals");
  Var cams = pb.param("cams", arr_f64(2));
  Var pts = pb.param("pts", arr_f64(2));
  Var w = pb.param("w", arr_f64(1));
  Var camIdx = pb.param("camIdx", arr(ScalarType::I64, 1));
  Var ptIdx = pb.param("ptIdx", arr(ScalarType::I64, 1));
  Var feats = pb.param("feats", arr_f64(2));
  Builder& b = pb.body();
  Var p = b.length(w);
  Var io = b.iota(Atom(p));
  auto outs = b.map(
      b.lam({i64()},
            [&](Builder& c, const std::vector<Var>& oi) {
              Var ci = c.index(camIdx, {Atom(oi[0])});
              Var pi = c.index(ptIdx, {Atom(oi[0])});
              auto cam = [&](int j) { return c.index(cams, {Atom(ci), ci64(j)}); };
              auto X = [&](int j) { return c.index(pts, {Atom(pi), ci64(j)}); };
              // Rodrigues rotation of (X - C), matching ba_project<Real>.
              Var d0 = c.sub(X(0), cam(3)), d1 = c.sub(X(1), cam(4)), d2 = c.sub(X(2), cam(5));
              Var r0 = cam(0), r1 = cam(1), r2 = cam(2);
              Var th2 = c.add(Atom(c.add(Atom(c.mul(r0, r0)), Atom(c.mul(r1, r1)))),
                              Atom(c.add(Atom(c.mul(r2, r2)), cf64(1e-12))));
              Var th = c.sqrt(th2);
              Var cth = c.cos(th), sth = c.sin(th);
              Var it = c.div(cf64(1.0), th);
              Var w0 = c.mul(r0, it), w1 = c.mul(r1, it), w2 = c.mul(r2, it);
              Var wd = c.add(Atom(c.add(Atom(c.mul(w0, d0)), Atom(c.mul(w1, d1)))),
                             Atom(c.mul(w2, d2)));
              Var cx0 = c.sub(Atom(c.mul(w1, d2)), Atom(c.mul(w2, d1)));
              Var cx1 = c.sub(Atom(c.mul(w2, d0)), Atom(c.mul(w0, d2)));
              Var cx2 = c.sub(Atom(c.mul(w0, d1)), Atom(c.mul(w1, d0)));
              Var omc = c.sub(cf64(1.0), cth);
              auto rot = [&](Var dd, Var cx, Var ww) {
                return c.add(Atom(c.add(Atom(c.mul(dd, cth)), Atom(c.mul(cx, sth)))),
                             Atom(c.mul(ww, c.mul(wd, omc))));
              };
              Var p0 = rot(d0, cx0, w0), p1 = rot(d1, cx1, w1), p2 = rot(d2, cx2, w2);
              Var ix = c.div(p0, p2), iy = c.div(p1, p2);
              Var rr = c.add(Atom(c.mul(ix, ix)), Atom(c.mul(iy, iy)));
              Var distort = c.add(cf64(1.0), Atom(c.add(Atom(c.mul(cam(9), rr)),
                                                        Atom(c.mul(cam(10), c.mul(rr, rr))))));
              Var u = c.add(Atom(c.mul(cam(6), c.mul(distort, ix))), Atom(cam(7)));
              Var v = c.add(Atom(c.mul(cam(6), c.mul(distort, iy))), Atom(cam(8)));
              Var wi = c.index(w, {Atom(oi[0])});
              Var e0 = c.mul(wi, c.sub(Atom(u), Atom(c.index(feats, {Atom(oi[0]), ci64(0)}))));
              Var e1 = c.mul(wi, c.sub(Atom(v), Atom(c.index(feats, {Atom(oi[0]), ci64(1)}))));
              Var werr = c.sub(cf64(1.0), Atom(c.mul(wi, wi)));
              return std::vector<Atom>{Atom(e0), Atom(e1), Atom(werr)};
            }),
      {io}, "res");
  // Pack reprojection errors as a [p][2]-shaped pair of arrays is awkward;
  // return them as separate rank-1 results (e0, e1, werr).
  return pb.finish({Atom(outs[0]), Atom(outs[1]), Atom(outs[2])});
}

std::vector<rt::Value> ba_ir_args(const BaData& d) {
  return {rt::make_f64_array(d.cams, {d.n_cams, 11}), rt::make_f64_array(d.pts, {d.n_pts, 3}),
          rt::make_f64_array(d.weights, {d.n_obs}),   rt::make_i64_array(d.cam_idx, {d.n_obs}),
          rt::make_i64_array(d.pt_idx, {d.n_obs}),    rt::make_f64_array(d.feats, {d.n_obs, 2})};
}

double ba_primal_sum(const BaData& d) {
  double s = 0;
  for (int64_t o = 0; o < d.n_obs; ++o) {
    double out[2];
    ba_project(d.cams.data() + d.cam_idx[static_cast<size_t>(o)] * 11,
               d.pts.data() + d.pt_idx[static_cast<size_t>(o)] * 3, out);
    const double w = d.weights[static_cast<size_t>(o)];
    s += w * (out[0] - d.feats[static_cast<size_t>(o * 2)]) +
         w * (out[1] - d.feats[static_cast<size_t>(o * 2 + 1)]) + (1.0 - w * w);
  }
  return s;
}

size_t ba_tape_jacobian(const BaData& d, std::vector<double>* out_rows) {
  using tape::Adouble;
  size_t nnz = 0;
  if (out_rows) out_rows->clear();
  for (int64_t o = 0; o < d.n_obs; ++o) {
    for (int comp = 0; comp < 2; ++comp) {
      // Re-tape the full residual for every Jacobian row (the classic
      // tape-based approach whose cost Table 1 compares against).
      tape::Tape::active().clear();
      std::vector<Adouble> cam, X;
      for (int j = 0; j < 11; ++j) {
        cam.emplace_back(d.cams[static_cast<size_t>(d.cam_idx[static_cast<size_t>(o)] * 11 + j)]);
      }
      for (int j = 0; j < 3; ++j) {
        X.emplace_back(d.pts[static_cast<size_t>(d.pt_idx[static_cast<size_t>(o)] * 3 + j)]);
      }
      Adouble wv(d.weights[static_cast<size_t>(o)]);
      Adouble out[2];
      ba_project(cam.data(), X.data(), out);
      Adouble res = wv * (out[comp] - d.feats[static_cast<size_t>(o * 2 + comp)]);
      res.seed(1.0);
      tape::Tape::active().reverse();
      for (int j = 0; j < 11; ++j) {
        if (out_rows) out_rows->push_back(cam[static_cast<size_t>(j)].adjoint());
        ++nnz;
      }
      for (int j = 0; j < 3; ++j) {
        if (out_rows) out_rows->push_back(X[static_cast<size_t>(j)].adjoint());
        ++nnz;
      }
      if (out_rows) out_rows->push_back(wv.adjoint());
      ++nnz;
    }
  }
  return nnz;
}

} // namespace npad::apps
