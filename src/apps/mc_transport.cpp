#include "apps/mc_transport.hpp"

#include <algorithm>
#include <cmath>

#include "ir/builder.hpp"

namespace npad::apps {

using namespace ir;

XsData xs_gen(support::Rng& rng, int64_t n_nuclides, int64_t n_grid, int64_t n_lookups) {
  XsData d;
  d.n_nuclides = n_nuclides;
  d.n_grid = n_grid;
  d.n_lookups = n_lookups;
  d.egrid = rng.uniform_vec(static_cast<size_t>(n_grid), 0.0, 1.0);
  std::sort(d.egrid.begin(), d.egrid.end());
  d.egrid.front() = 0.0;
  d.egrid.back() = 1.0;
  d.xs = rng.uniform_vec(static_cast<size_t>(n_nuclides * n_grid * 5), 0.1, 1.0);
  d.conc = rng.uniform_vec(static_cast<size_t>(n_nuclides), 0.1, 1.0);
  d.queries = rng.uniform_vec(static_cast<size_t>(n_lookups), 0.01, 0.99);
  return d;
}

ir::Prog xs_ir_objective() {
  ProgBuilder pb("xsbench");
  Var egrid = pb.param("egrid", arr_f64(1));
  Var xs = pb.param("xs", arr_f64(3));  // [N][G][5]
  Var conc = pb.param("conc", arr_f64(1));
  Var queries = pb.param("queries", arr_f64(1));
  Builder& b = pb.body();
  Var G = b.length(egrid);
  Var N = b.length(conc);
  // Number of binary-search steps: ceil(log2 G) computed by a counting loop.
  auto nsteps = b.loop_while(
      {ci64(1), ci64(0)},
      [&](Builder& c, const std::vector<Var>& ps) {
        return std::vector<Atom>{Atom(c.lt(ps[0], G))};
      },
      [](Builder& c, Var, const std::vector<Var>& ps) {
        return std::vector<Atom>{Atom(c.mul(ps[0], ci64(2))),
                                 Atom(c.add(ps[1], ci64(1)))};
      });
  Var steps = nsteps[1];
  Var per = b.map1(
      b.lam({f64()},
            [&](Builder& c, const std::vector<Var>& qq) {
              // Binary search (bounded loop over `steps` iterations).
              auto lohi = c.loop_for(
                  {ci64(0), Atom(c.sub(G, ci64(1)))}, Atom(steps),
                  [&](Builder& c2, Var, const std::vector<Var>& ps) {
                    Var gap = c2.sub(ps[1], ps[0]);
                    Var mid = c2.div(Atom(c2.add(ps[0], ps[1])), ci64(2));
                    Var ev = c2.index(egrid, {Atom(mid)});
                    Var go_up = c2.le(ev, qq[0]);
                    Var done = c2.le(Atom(gap), ci64(1));
                    Var nlo = c2.select(done, ps[0], Atom(c2.select(go_up, mid, ps[0])));
                    Var nhi = c2.select(done, ps[1], Atom(c2.select(go_up, ps[1], mid)));
                    return std::vector<Atom>{Atom(nlo), Atom(nhi)};
                  });
              Var lo = lohi[0], hi = lohi[1];
              Var e0 = c.index(egrid, {Atom(lo)});
              Var e1 = c.index(egrid, {Atom(hi)});
              Var f = c.div(c.sub(qq[0], e0), c.add(c.sub(e1, Atom(e0)), cf64(1e-30)));
              Var in = c.iota(Atom(N));
              Var per_nuc = c.map1(
                  c.lam({i64()},
                        [&](Builder& c2, const std::vector<Var>& nn) {
                          Var cv = c2.index(conc, {Atom(nn[0])});
                          Var i5 = c2.iota(ci64(5));
                          Var chans = c2.map1(
                              c2.lam({i64()},
                                     [&](Builder& c3, const std::vector<Var>& ch) {
                                       Var x0 = c3.index(xs, {Atom(nn[0]), Atom(lo), Atom(ch[0])});
                                       Var x1 = c3.index(xs, {Atom(nn[0]), Atom(hi), Atom(ch[0])});
                                       Var interp = c3.add(
                                           Atom(x0), Atom(c3.mul(c3.sub(Atom(x1), Atom(x0)), f)));
                                       return std::vector<Atom>{Atom(interp)};
                                     }),
                              {i5});
                          Var s = c2.reduce1(c2.add_op(), cf64(0.0), {chans});
                          return std::vector<Atom>{Atom(c2.mul(cv, s))};
                        }),
                  {in});
              return std::vector<Atom>{Atom(c.reduce1(c.add_op(), cf64(0.0), {per_nuc}))};
            }),
      {queries}, "macro");
  Var total = b.reduce1(b.add_op(), cf64(0.0), {per});
  return pb.finish({Atom(total)});
}

std::vector<rt::Value> xs_ir_args(const XsData& d) {
  return {rt::make_f64_array(d.egrid, {d.n_grid}),
          rt::make_f64_array(d.xs, {d.n_nuclides, d.n_grid, 5}),
          rt::make_f64_array(d.conc, {d.n_nuclides}),
          rt::make_f64_array(d.queries, {d.n_lookups})};
}

double xs_primal(const XsData& d) { return xs_objective<double>(d, d.xs.data(), d.conc.data()); }

double xs_tape_gradient(const XsData& d, std::vector<double>* grad_xs) {
  using tape::Adouble;
  tape::Tape::active().clear();
  std::vector<Adouble> xsv, concv;
  xsv.reserve(d.xs.size());
  for (double v : d.xs) xsv.emplace_back(v);
  for (double v : d.conc) concv.emplace_back(v);
  Adouble total = xs_objective<Adouble>(d, xsv.data(), concv.data());
  total.seed(1.0);
  tape::Tape::active().reverse();
  if (grad_xs) {
    grad_xs->resize(d.xs.size());
    for (size_t i = 0; i < d.xs.size(); ++i) (*grad_xs)[i] = xsv[i].adjoint();
  }
  return total.value();
}

// ------------------------------------------------------------- RSBench -----

RsData rs_gen(support::Rng& rng, int64_t n_nuclides, int64_t n_poles, int64_t n_lookups) {
  RsData d;
  d.n_nuclides = n_nuclides;
  d.n_poles = n_poles;
  d.n_lookups = n_lookups;
  d.pole_e = rng.uniform_vec(static_cast<size_t>(n_nuclides * n_poles), 0.0, 1.0);
  d.pole_w = rng.uniform_vec(static_cast<size_t>(n_nuclides * n_poles), 0.01, 0.1);
  d.pole_a = rng.uniform_vec(static_cast<size_t>(n_nuclides * n_poles), 0.1, 1.0);
  d.conc = rng.uniform_vec(static_cast<size_t>(n_nuclides), 0.1, 1.0);
  d.queries = rng.uniform_vec(static_cast<size_t>(n_lookups), 0.05, 0.95);
  return d;
}

ir::Prog rs_ir_objective() {
  ProgBuilder pb("rsbench");
  Var pe = pb.param("pole_e", arr_f64(2));  // [N][P]
  Var pw = pb.param("pole_w", arr_f64(2));
  Var pa = pb.param("pole_a", arr_f64(2));
  Var conc = pb.param("conc", arr_f64(1));
  Var queries = pb.param("queries", arr_f64(1));
  Builder& b = pb.body();
  Var N = b.length(conc);
  Var per = b.map1(
      b.lam({f64()},
            [&](Builder& c, const std::vector<Var>& qq) {
              Var in = c.iota(Atom(N));
              Var per_nuc = c.map1(
                  c.lam({i64()},
                        [&](Builder& c2, const std::vector<Var>& nn) {
                          Var perow = c2.index(pe, {Atom(nn[0])});
                          Var pwrow = c2.index(pw, {Atom(nn[0])});
                          Var parow = c2.index(pa, {Atom(nn[0])});
                          Var terms = c2.map(
                              c2.lam({f64(), f64(), f64()},
                                     [&](Builder& c3, const std::vector<Var>& pp) {
                                       Var de = c3.sub(pp[0], qq[0]);
                                       Var denom = c3.add(Atom(c3.mul(de, de)),
                                                          Atom(c3.mul(pp[1], pp[1])));
                                       Var t = c3.div(c3.mul(pp[2], pp[1]), denom);
                                       return std::vector<Atom>{Atom(t)};
                                     }),
                              {perow, pwrow, parow})[0];
                          Var sig = c2.reduce1(c2.add_op(), cf64(0.0), {terms});
                          Var cv = c2.index(conc, {Atom(nn[0])});
                          Var scaled = c2.div(c2.mul(cv, sig), c2.sqrt(qq[0]));
                          return std::vector<Atom>{Atom(scaled)};
                        }),
                  {in});
              return std::vector<Atom>{Atom(c.reduce1(c.add_op(), cf64(0.0), {per_nuc}))};
            }),
      {queries}, "sig");
  Var total = b.reduce1(b.add_op(), cf64(0.0), {per});
  return pb.finish({Atom(total)});
}

std::vector<rt::Value> rs_ir_args(const RsData& d) {
  return {rt::make_f64_array(d.pole_e, {d.n_nuclides, d.n_poles}),
          rt::make_f64_array(d.pole_w, {d.n_nuclides, d.n_poles}),
          rt::make_f64_array(d.pole_a, {d.n_nuclides, d.n_poles}),
          rt::make_f64_array(d.conc, {d.n_nuclides}),
          rt::make_f64_array(d.queries, {d.n_lookups})};
}

double rs_primal(const RsData& d) {
  return rs_objective<double>(d, d.pole_e.data(), d.pole_w.data(), d.pole_a.data(),
                              d.conc.data());
}

double rs_tape_gradient(const RsData& d) {
  using tape::Adouble;
  tape::Tape::active().clear();
  std::vector<Adouble> pev, pwv, pav, concv;
  for (double v : d.pole_e) pev.emplace_back(v);
  for (double v : d.pole_w) pwv.emplace_back(v);
  for (double v : d.pole_a) pav.emplace_back(v);
  for (double v : d.conc) concv.emplace_back(v);
  Adouble total = rs_objective<Adouble>(d, pev.data(), pwv.data(), pav.data(), concv.data());
  total.seed(1.0);
  tape::Tape::active().reverse();
  return total.value();
}

} // namespace npad::apps
