#pragma once

// LSTM sequence model (Sections 7.1 D-LSTM and 7.7). One cell following the
// standard architecture of [40]:
//   g = [i f o c~] = sigma/tanh( x_t Wx^T + h Wh^T + b )
//   c = f*c + i*c~ ;  h = o * tanh(c)
// Objective: sum over time of sum(h_t^2) (an MSE-style scalar objective;
// substitution for ADBench's sequence NLL documented in DESIGN.md).
//
// Implementations: npad IR (time loop + batched maps), eager autograd
// (matmul-based BPTT, the PyTorch baseline), and a fused manual
// implementation with a hand-derived backward pass (the cuDNN stand-in).

#include <vector>

#include "ir/ast.hpp"
#include "runtime/value.hpp"
#include "support/rng.hpp"

namespace npad::apps {

struct LstmData {
  int64_t bs = 0, n = 0, d = 0, h = 0;  // batch, seq len, input dim, hidden
  std::vector<double> wx;  // 4h * d
  std::vector<double> wh;  // 4h * h
  std::vector<double> b;   // 4h
  std::vector<double> x;   // n * bs * d
};

LstmData lstm_gen(support::Rng& rng, int64_t bs, int64_t n, int64_t d, int64_t h);

// IR program: params (wx:[4h][d], wh:[4h][h], b:[4h], x:[n][bs][d]) -> f64.
ir::Prog lstm_ir_objective();

std::vector<rt::Value> lstm_ir_args(const LstmData& data);

struct LstmResult {
  double objective = 0;
  std::vector<double> d_wx, d_wh, d_b;
};

// Eager autograd implementation (PyTorch stand-in).
LstmResult lstm_eager(const LstmData& data, bool with_grad = true);

// Fused manual forward + analytic backward (cuDNN stand-in).
LstmResult lstm_manual(const LstmData& data);
double lstm_manual_objective_only(const LstmData& data);

} // namespace npad::apps
