#pragma once

// Classic operator-overloading, tape-based reverse AD (the ADOL-C / Adept /
// Tapenade-style baseline the paper compares against in Tables 1 and 2).
// Every arithmetic operation on `Adouble` appends one record to a global
// per-thread tape holding the operation's partials; `Tape::reverse` then
// interprets the tape backwards to accumulate adjoints. This is exactly the
// "store all intermediates" strategy whose memory traffic the paper's
// redundant-execution technique eliminates.

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

namespace npad::tape {

class Tape {
public:
  struct Record {
    int32_t lhs = -1;      // adjoint slot of the result
    int32_t rhs1 = -1;     // adjoint slot of operand 1 (-1: constant)
    int32_t rhs2 = -1;     // adjoint slot of operand 2 (-1: none/constant)
    double d1 = 0.0;       // partial wrt operand 1
    double d2 = 0.0;       // partial wrt operand 2
  };

  int32_t new_slot() {
    adjoints_.push_back(0.0);
    return static_cast<int32_t>(adjoints_.size() - 1);
  }

  void record(int32_t lhs, int32_t r1, double d1, int32_t r2 = -1, double d2 = 0.0) {
    records_.push_back(Record{lhs, r1, r2, d1, d2});
  }

  void seed(int32_t slot, double v) { adjoints_[static_cast<size_t>(slot)] = v; }
  double adjoint(int32_t slot) const { return adjoints_[static_cast<size_t>(slot)]; }

  // Interprets the tape in reverse, accumulating adjoints.
  void reverse() {
    for (size_t i = records_.size(); i-- > 0;) {
      const Record& r = records_[i];
      const double a = adjoints_[static_cast<size_t>(r.lhs)];
      if (a == 0.0) continue;
      if (r.rhs1 >= 0) adjoints_[static_cast<size_t>(r.rhs1)] += r.d1 * a;
      if (r.rhs2 >= 0) adjoints_[static_cast<size_t>(r.rhs2)] += r.d2 * a;
    }
  }

  void clear() {
    records_.clear();
    adjoints_.clear();
  }

  size_t size() const { return records_.size(); }
  size_t memory_bytes() const {
    return records_.size() * sizeof(Record) + adjoints_.size() * sizeof(double);
  }

  static Tape& active();

private:
  std::vector<Record> records_;
  std::vector<double> adjoints_;
};

// Differentiable scalar recorded on the active tape.
class Adouble {
public:
  Adouble() : Adouble(0.0) {}
  Adouble(double v) : v_(v), slot_(Tape::active().new_slot()) {}  // NOLINT

  double value() const { return v_; }
  int32_t slot() const { return slot_; }
  double adjoint() const { return Tape::active().adjoint(slot_); }
  void seed(double a) const { Tape::active().seed(slot_, a); }

  static Adouble binary(double v, int32_t s1, double d1, int32_t s2, double d2) {
    Adouble r(v);
    Tape::active().record(r.slot_, s1, d1, s2, d2);
    return r;
  }

  static Adouble unary(double v, int32_t s, double d) {
    Adouble r(v);
    Tape::active().record(r.slot_, s, d);
    return r;
  }

private:
  double v_;
  int32_t slot_;
};

inline Adouble operator+(const Adouble& a, const Adouble& b) {
  return Adouble::binary(a.value() + b.value(), a.slot(), 1.0, b.slot(), 1.0);
}
inline Adouble operator-(const Adouble& a, const Adouble& b) {
  return Adouble::binary(a.value() - b.value(), a.slot(), 1.0, b.slot(), -1.0);
}
inline Adouble operator*(const Adouble& a, const Adouble& b) {
  return Adouble::binary(a.value() * b.value(), a.slot(), b.value(), b.slot(), a.value());
}
inline Adouble operator/(const Adouble& a, const Adouble& b) {
  const double inv = 1.0 / b.value();
  return Adouble::binary(a.value() * inv, a.slot(), inv, b.slot(),
                         -a.value() * inv * inv);
}
inline Adouble operator-(const Adouble& a) { return Adouble::unary(-a.value(), a.slot(), -1.0); }

inline Adouble operator+(const Adouble& a, double c) {
  return Adouble::unary(a.value() + c, a.slot(), 1.0);
}
inline Adouble operator+(double c, const Adouble& a) { return a + c; }
inline Adouble operator-(const Adouble& a, double c) {
  return Adouble::unary(a.value() - c, a.slot(), 1.0);
}
inline Adouble operator-(double c, const Adouble& a) {
  return Adouble::unary(c - a.value(), a.slot(), -1.0);
}
inline Adouble operator*(const Adouble& a, double c) {
  return Adouble::unary(a.value() * c, a.slot(), c);
}
inline Adouble operator*(double c, const Adouble& a) { return a * c; }
inline Adouble operator/(const Adouble& a, double c) { return a * (1.0 / c); }
inline Adouble operator/(double c, const Adouble& a) {
  const double inv = 1.0 / a.value();
  return Adouble::unary(c * inv, a.slot(), -c * inv * inv);
}

inline bool operator<(const Adouble& a, const Adouble& b) { return a.value() < b.value(); }
inline bool operator>(const Adouble& a, const Adouble& b) { return a.value() > b.value(); }
inline bool operator<=(const Adouble& a, const Adouble& b) { return a.value() <= b.value(); }
inline bool operator>=(const Adouble& a, const Adouble& b) { return a.value() >= b.value(); }

inline Adouble exp(const Adouble& a) {
  const double e = std::exp(a.value());
  return Adouble::unary(e, a.slot(), e);
}
inline Adouble log(const Adouble& a) {
  return Adouble::unary(std::log(a.value()), a.slot(), 1.0 / a.value());
}
inline Adouble sqrt(const Adouble& a) {
  const double s = std::sqrt(a.value());
  return Adouble::unary(s, a.slot(), 0.5 / s);
}
inline Adouble sin(const Adouble& a) {
  return Adouble::unary(std::sin(a.value()), a.slot(), std::cos(a.value()));
}
inline Adouble cos(const Adouble& a) {
  return Adouble::unary(std::cos(a.value()), a.slot(), -std::sin(a.value()));
}
inline Adouble tanh(const Adouble& a) {
  const double t = std::tanh(a.value());
  return Adouble::unary(t, a.slot(), 1.0 - t * t);
}
inline Adouble pow(const Adouble& a, double p) {
  return Adouble::unary(std::pow(a.value(), p), a.slot(), p * std::pow(a.value(), p - 1));
}
inline Adouble max(const Adouble& a, const Adouble& b) {
  return a.value() >= b.value() ? Adouble::unary(a.value(), a.slot(), 1.0)
                                : Adouble::unary(b.value(), b.slot(), 1.0);
}
inline Adouble min(const Adouble& a, const Adouble& b) {
  return a.value() <= b.value() ? Adouble::unary(a.value(), a.slot(), 1.0)
                                : Adouble::unary(b.value(), b.slot(), 1.0);
}
inline Adouble abs(const Adouble& a) {
  return a.value() >= 0 ? Adouble::unary(a.value(), a.slot(), 1.0)
                        : Adouble::unary(-a.value(), a.slot(), -1.0);
}
inline Adouble sigmoid(const Adouble& a) {
  const double s = 1.0 / (1.0 + std::exp(-a.value()));
  return Adouble::unary(s, a.slot(), s * (1.0 - s));
}

// Convenience: gradient of f : R^n -> Adouble at x.
std::vector<double> gradient(const std::vector<double>& x,
                             const std::function<Adouble(const std::vector<Adouble>&)>& f);

} // namespace npad::tape
