#include "tape/tape.hpp"

#include <functional>

namespace npad::tape {

Tape& Tape::active() {
  static thread_local Tape t;
  return t;
}

std::vector<double> gradient(const std::vector<double>& x,
                             const std::function<Adouble(const std::vector<Adouble>&)>& f) {
  Tape& t = Tape::active();
  t.clear();
  std::vector<Adouble> ax;
  ax.reserve(x.size());
  for (double v : x) ax.emplace_back(v);
  Adouble y = f(ax);
  y.seed(1.0);
  t.reverse();
  std::vector<double> g(x.size());
  for (size_t i = 0; i < x.size(); ++i) g[i] = ax[i].adjoint();
  return g;
}

} // namespace npad::tape
