#include "runtime/batch.hpp"

#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "ir/analysis.hpp"
#include "ir/typecheck.hpp"
#include "ir/visit.hpp"
#include "opt/flatten.hpp"
#include "runtime/interp.hpp"
#include "support/error.hpp"

namespace npad::rt {

using ir::ScalarType;

// ------------------------------------------------------- program lifting ---

ir::Prog make_batched_prog(const ir::Prog& p) {
  const ir::Function& fn = p.fn;
  if (fn.params.empty()) {
    throw TypeError("cannot batch zero-argument program '" + fn.name + "'");
  }
  for (const auto& pr : fn.params) {
    if (pr.type.is_acc) {
      throw TypeError("cannot batch program '" + fn.name +
                      "' with accumulator-typed parameters");
    }
  }
  for (const auto& rt : fn.rets) {
    if (rt.is_acc) {
      throw TypeError("cannot batch program '" + fn.name +
                      "' with accumulator-typed results");
    }
  }

  ir::Prog out;
  // Copy the module: old vars keep their names, lifted params get fresh ones.
  out.mod = std::make_shared<ir::Module>(*p.mod);
  ir::Module& m = *out.mod;

  // The original body becomes the map lambda; refresh so its bindings cannot
  // collide with the stacked-parameter vars introduced below.
  ir::Cloner cloner(m, /*refresh=*/true);
  ir::Subst subst;
  ir::Lambda lam;
  lam.rets = fn.rets;
  lam.params.reserve(fn.params.size());
  for (const auto& pr : fn.params) {
    lam.params.push_back(ir::Param{cloner.bind_in(pr.var, subst), pr.type});
  }
  lam.body = cloner.body(fn.body, std::move(subst));

  ir::Function bf;
  bf.name = fn.name + "__batched";
  std::vector<ir::Var> margs;
  bf.params.reserve(fn.params.size());
  margs.reserve(fn.params.size());
  for (const auto& pr : fn.params) {
    const std::string base = m.name(pr.var) + "_stk";
    ir::Var bv = m.fresh(base);
    bf.params.push_back(ir::Param{bv, ir::lift(pr.type)});
    margs.push_back(bv);
  }
  bf.rets.reserve(fn.rets.size());
  for (const auto& rt : fn.rets) bf.rets.push_back(ir::lift(rt));

  ir::OpMap mp;
  mp.f = ir::make_lambda(std::move(lam));
  mp.args = std::move(margs);

  ir::Stm st;
  st.types = bf.rets;
  st.vars.reserve(bf.rets.size());
  for (size_t i = 0; i < bf.rets.size(); ++i) {
    st.vars.push_back(m.fresh("bres" + std::to_string(i)));
  }
  bf.body.result.reserve(st.vars.size());
  for (ir::Var v : st.vars) bf.body.result.push_back(ir::Atom(v));
  st.e = std::move(mp);
  bf.body.stms.push_back(std::move(st));

  out.fn = std::move(bf);
  ir::typecheck(out);
  // Re-derive flattening over the new outer map: a program whose whole body
  // is one SOAC becomes a single collapsed/segmented launch over the stacked
  // axis instead of one inner launch per request.
  out = opt::flatten_nested(out);
  ir::typecheck(out);
  return out;
}

// ------------------------------------------------------------------ cache --

struct BatchedProgCache::Impl {
  struct Entry {
    std::vector<uint64_t> sig;
    std::shared_ptr<const ir::Prog> batched;
  };
  mutable std::shared_mutex mu;
  std::unordered_multimap<uint64_t, Entry> by_sig;
};

BatchedProgCache::BatchedProgCache() : impl_(new Impl) {}

BatchedProgCache& BatchedProgCache::global() {
  static BatchedProgCache* cache = new BatchedProgCache();  // immortal
  return *cache;
}

size_t BatchedProgCache::size() const {
  std::shared_lock lk(impl_->mu);
  return impl_->by_sig.size();
}

std::shared_ptr<const ir::Prog> BatchedProgCache::get(const ir::Prog& p) {
  std::vector<uint64_t> sig = ir::structural_sig(p.fn);
  const uint64_t h = ir::structural_hash(sig);
  {
    std::shared_lock lk(impl_->mu);
    auto [lo, hi] = impl_->by_sig.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.sig == sig) return it->second.batched;
    }
  }
  auto bp = std::make_shared<const ir::Prog>(make_batched_prog(p));
  std::unique_lock lk(impl_->mu);
  auto [lo, hi] = impl_->by_sig.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.sig == sig) return it->second.batched;  // lost the race
  }
  impl_->by_sig.emplace(h, Impl::Entry{std::move(sig), bp});
  return bp;
}

// -------------------------------------------------------- stack / unstack --

namespace {

ScalarType value_scalar_type(const Value& v) {
  if (std::holds_alternative<double>(v)) return ScalarType::F64;
  if (std::holds_alternative<int64_t>(v)) return ScalarType::I64;
  return ScalarType::Bool;
}

std::string shape_str(const std::vector<int64_t>& s) {
  std::string out = "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(s[i]);
  }
  return out + "]";
}

} // namespace

std::vector<Value> stack_args(const std::vector<std::vector<Value>>& batch) {
  const int64_t b = static_cast<int64_t>(batch.size());
  if (b == 0) throw TypeError("stack_args: empty batch");
  const size_t arity = batch[0].size();
  for (const auto& req : batch) {
    if (req.size() != arity) {
      throw TypeError("stack_args: request arity mismatch (" +
                      std::to_string(req.size()) + " vs " + std::to_string(arity) + ")");
    }
  }

  std::vector<Value> out;
  out.reserve(arity);
  for (size_t j = 0; j < arity; ++j) {
    const Value& v0 = batch[0][j];
    if (is_acc(v0)) {
      throw TypeError("stack_args: accumulator arguments cannot batch (arg " +
                      std::to_string(j) + ")");
    }
    if (is_array(v0)) {
      const ArrayVal& a0 = as_array(v0);
      std::vector<int64_t> shape;
      shape.reserve(a0.shape.size() + 1);
      shape.push_back(b);
      shape.insert(shape.end(), a0.shape.begin(), a0.shape.end());
      ArrayVal stk = ArrayVal::alloc_uninit(a0.elem, std::move(shape));
      const int64_t row = a0.elems();
      for (int64_t i = 0; i < b; ++i) {
        if (!is_array(batch[i][j])) {
          throw TypeError("stack_args: arg " + std::to_string(j) +
                          " is an array in request 0 but a scalar in request " +
                          std::to_string(i));
        }
        const ArrayVal& ai = as_array(batch[i][j]);
        if (ai.elem != a0.elem) {
          throw TypeError("stack_args: arg " + std::to_string(j) +
                          " element type differs across requests");
        }
        if (ai.shape != a0.shape) {
          throw ShapeError("stack_args: arg " + std::to_string(j) + " shape " +
                           shape_str(ai.shape) + " in request " + std::to_string(i) +
                           " differs from " + shape_str(a0.shape));
        }
        copy_into(stk, i * row, ai);
      }
      out.push_back(std::move(stk));
    } else {
      const ScalarType t = value_scalar_type(v0);
      // Scalars must be zero-filled only when never read before write —
      // every lane is written below, so uninit is fine.
      ArrayVal stk = ArrayVal::alloc_uninit(t, {b});
      for (int64_t i = 0; i < b; ++i) {
        const Value& vi = batch[i][j];
        if (is_array(vi) || is_acc(vi) || value_scalar_type(vi) != t) {
          throw TypeError("stack_args: arg " + std::to_string(j) +
                          " scalar type differs across requests");
        }
        store_scalar(stk, i, vi);
      }
      out.push_back(std::move(stk));
    }
  }
  return out;
}

std::vector<std::vector<Value>> unstack_results(const std::vector<Value>& stacked,
                                                int64_t batch,
                                                const std::vector<ir::Type>& orig_rets) {
  if (stacked.size() != orig_rets.size()) {
    throw TypeError("unstack_results: " + std::to_string(stacked.size()) +
                    " stacked results for " + std::to_string(orig_rets.size()) +
                    " declared result types");
  }
  std::vector<std::vector<Value>> out(static_cast<size_t>(batch));
  for (auto& req : out) req.reserve(stacked.size());
  for (size_t j = 0; j < stacked.size(); ++j) {
    if (!is_array(stacked[j])) {
      throw TypeError("unstack_results: stacked result " + std::to_string(j) +
                      " is not an array");
    }
    const ArrayVal& sa = as_array(stacked[j]);
    if (sa.outer() != batch) {
      throw ShapeError("unstack_results: stacked result " + std::to_string(j) +
                       " has outer extent " + std::to_string(sa.outer()) +
                       " for batch of " + std::to_string(batch));
    }
    if (orig_rets[j].rank == 0) {
      for (int64_t i = 0; i < batch; ++i) {
        out[static_cast<size_t>(i)].push_back(scalar_value(sa.elem, sa, i));
      }
    } else {
      // Compact per-request copies: responses must not alias the shared
      // stacked buffer (it returns to the pool when the batch completes).
      for (int64_t i = 0; i < batch; ++i) {
        out[static_cast<size_t>(i)].push_back(compact_copy(row_view(sa, i)));
      }
    }
  }
  return out;
}

// ------------------------------------------------------ batched execution --

std::vector<std::vector<Value>> Interp::run_batched(
    const ir::Prog& p, const std::vector<std::vector<Value>>& batch) const {
  stats_.batched_prog_requests.fetch_add(batch.size(), std::memory_order_relaxed);
  if (batch.empty()) return {};
  if (batch.size() == 1) return {run(p, batch[0])};

  std::shared_ptr<const ir::Prog> bp = BatchedProgCache::global().get(p);
  std::vector<Value> stacked = stack_args(batch);
  std::vector<Value> outs = run(*bp, stacked);
  stats_.batched_prog_runs.fetch_add(1, std::memory_order_relaxed);
  return unstack_results(outs, static_cast<int64_t>(batch.size()), p.fn.rets);
}

} // namespace npad::rt
