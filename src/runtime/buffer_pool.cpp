#include "runtime/buffer_pool.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "runtime/value.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"

// ASan integration: poison blocks while they are retained in the pool so
// dangling views into released buffers trap instead of silently reading a
// recycled block. Without ASan these are no-ops.
#if defined(__SANITIZE_ADDRESS__)
#define NPAD_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NPAD_ASAN 1
#endif
#endif
#ifdef NPAD_ASAN
#include <sanitizer/asan_interface.h>
#define NPAD_POISON(p, n) ASAN_POISON_MEMORY_REGION(p, n)
#define NPAD_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION(p, n)
#else
#define NPAD_POISON(p, n) ((void)0)
#define NPAD_UNPOISON(p, n) ((void)0)
#endif

namespace npad::rt {

BufferPool::BufferPool() {
  if (const char* env = std::getenv("NPAD_POOL_BUDGET_BYTES")) {
    const long long v = std::atoll(env);
    if (v > 0) budget_bytes_.store(static_cast<size_t>(v), std::memory_order_relaxed);
  }
}

void BufferPool::admit(size_t cap) {
  NPAD_FAULT_SITE("pool.acquire", FaultKind::Alloc);
  const size_t budget = budget_bytes_.load(std::memory_order_relaxed);
  if (budget == 0) return;
  const size_t live = outstanding_bytes_.load(std::memory_order_relaxed);
  if (live + cap > budget) {
    budget_rejections_.fetch_add(1, std::memory_order_relaxed);
    throw npad::ResourceError("buffer pool budget exceeded: allocation of " +
                              std::to_string(cap) + " bytes would raise the live footprint (" +
                              std::to_string(live) + " bytes) past NPAD_POOL_BUDGET_BYTES=" +
                              std::to_string(budget));
  }
}

BufferPool& BufferPool::global() {
  // Intentionally leaked: blocks retained at exit stay reachable through this
  // pointer (not a leak under LSan) and release() never races teardown.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

size_t BufferPool::bucket_of(size_t bytes) {
  const size_t rounded = std::bit_ceil(bytes < kMinBytes ? kMinBytes : bytes);
  return static_cast<size_t>(std::countr_zero(rounded));
}

void* BufferPool::acquire(size_t bytes, size_t* cap_bytes, bool* hit) {
  if (bytes > kMaxBytes) {  // too large to retain: plain heap block
    admit(bytes);
    *cap_bytes = bytes;
    if (hit) *hit = false;
    misses_.fetch_add(1, std::memory_order_relaxed);
    void* p = ::operator new(bytes);
    outstanding_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    outstanding_buffers_.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  const size_t b = bucket_of(bytes);
  const size_t cap = size_t{1} << b;
  admit(cap);
  *cap_bytes = cap;
  {
    Bucket& bucket = buckets_[b];
    std::lock_guard lk(bucket.mu);
    if (!bucket.blocks.empty()) {
      void* p = bucket.blocks.back();
      bucket.blocks.pop_back();
      retained_bytes_.fetch_sub(cap, std::memory_order_relaxed);
      NPAD_UNPOISON(p, cap);
      if (hit) *hit = true;
      hits_.fetch_add(1, std::memory_order_relaxed);
      outstanding_bytes_.fetch_add(cap, std::memory_order_relaxed);
      outstanding_buffers_.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
  }
  if (hit) *hit = false;
  misses_.fetch_add(1, std::memory_order_relaxed);
  void* p = ::operator new(cap);
  outstanding_bytes_.fetch_add(cap, std::memory_order_relaxed);
  outstanding_buffers_.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void BufferPool::release(void* p, size_t cap_bytes) noexcept {
  if (p == nullptr) return;
  outstanding_bytes_.fetch_sub(cap_bytes, std::memory_order_relaxed);
  outstanding_buffers_.fetch_sub(1, std::memory_order_relaxed);
  // Only bucket-rounded blocks within pooling range are retained.
  if (cap_bytes <= kMaxBytes && std::has_single_bit(cap_bytes) && cap_bytes >= kMinBytes) {
    // Reserve the bytes with a compare-exchange so concurrent releases
    // cannot collectively overshoot the retention cap.
    size_t cur = retained_bytes_.load(std::memory_order_relaxed);
    bool reserved = true;
    do {
      if (cur + cap_bytes > kMaxRetainedBytes) {
        reserved = false;
        break;
      }
    } while (!retained_bytes_.compare_exchange_weak(cur, cur + cap_bytes,
                                                    std::memory_order_relaxed));
    if (reserved) {
      Bucket& bucket = buckets_[bucket_of(cap_bytes)];
      std::lock_guard lk(bucket.mu);
      if (bucket.blocks.size() < kMaxPerBucket) {
        bucket.blocks.push_back(p);
        NPAD_POISON(p, cap_bytes);
        return;
      }
      retained_bytes_.fetch_sub(cap_bytes, std::memory_order_relaxed);
    }
  }
  ::operator delete(p);
}

BufferPool::Counters BufferPool::counters() const {
  Counters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.retained_bytes = retained_bytes_.load(std::memory_order_relaxed);
  c.outstanding_bytes = outstanding_bytes_.load(std::memory_order_relaxed);
  c.outstanding_buffers = outstanding_buffers_.load(std::memory_order_relaxed);
  c.budget_bytes = budget_bytes_.load(std::memory_order_relaxed);
  c.budget_rejections = budget_rejections_.load(std::memory_order_relaxed);
  c.arena_parked_buffers = arena_parked_buffers_.load(std::memory_order_relaxed);
  c.arena_parked_bytes = arena_parked_bytes_.load(std::memory_order_relaxed);
  return c;
}

void BufferPool::trim() {
  for (size_t b = 0; b < kNumBuckets; ++b) {
    Bucket& bucket = buckets_[b];
    std::lock_guard lk(bucket.mu);
    for (void* p : bucket.blocks) {
      NPAD_UNPOISON(p, size_t{1} << b);
      ::operator delete(p);
      retained_bytes_.fetch_sub(size_t{1} << b, std::memory_order_relaxed);
    }
    bucket.blocks.clear();
  }
}

// ------------------------------------------------- Buffer pooled storage ----

Buffer::~Buffer() {
  if (raw != nullptr) BufferPool::global().release(raw, cap_bytes);
}

std::shared_ptr<Buffer> Buffer::make_uninit(ScalarType t, size_t n, bool* pool_hit) {
  auto b = std::make_shared<Buffer>();
  b->type = t;
  b->elems = n;
  if (n > 0) {
    b->raw = BufferPool::global().acquire(n * scalar_bytes(t), &b->cap_bytes, pool_hit);
  } else if (pool_hit) {
    *pool_hit = false;
  }
  return b;
}

std::shared_ptr<Buffer> Buffer::make(ScalarType t, size_t n, bool* pool_hit) {
  auto b = make_uninit(t, n, pool_hit);
  if (n > 0) std::memset(b->raw, 0, n * scalar_bytes(t));
  return b;
}

} // namespace npad::rt
