#include "runtime/interp.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "ir/patterns.hpp"
#include "ir/visit.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/kernel.hpp"
#include "runtime/kernel_cache.hpp"
#include "runtime/plan.hpp"
#include "runtime/resolve.hpp"
#include "runtime/vexec.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/thread_pool.hpp"

namespace npad::rt {

int default_max_eval_depth() {
  static const int depth = [] {
    if (const char* env = std::getenv("NPAD_MAX_EVAL_DEPTH")) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
    return 512;
  }();
  return depth;
}

bool default_use_vexec() {
  static const bool on = [] {
    if (const char* env = std::getenv("NPAD_VEXEC")) {
      if (std::strcmp(env, "0") == 0) return false;
    }
    return true;
  }();
  return on;
}

bool default_vexec_portable() {
  static const bool portable = [] {
    const char* env = std::getenv("NPAD_VEXEC");
    return env != nullptr && std::strcmp(env, "portable") == 0;
  }();
  return portable;
}

bool default_use_plans() {
  static const bool on = [] {
    if (const char* env = std::getenv("NPAD_USE_PLANS")) {
      if (std::strcmp(env, "0") == 0) return false;
    }
    return true;
  }();
  return on;
}

namespace {
using namespace ir;
using support::FaultKind;

// Current lambda/loop-frame nesting depth on this thread, bounded by
// InterpOptions::max_eval_depth so runaway recursion surfaces as a typed
// ResourceError long before the C++ stack overflows. Thread-local because
// parallel workers evaluate lambda bodies concurrently.
thread_local int tl_eval_depth = 0;

struct EvalDepthGuard {
  explicit EvalDepthGuard(int limit) {
    if (++tl_eval_depth > limit && limit > 0) {
      --tl_eval_depth;  // ctor throws -> dtor never runs; rebalance here
      throw ResourceError("evaluation depth limit exceeded (NPAD_MAX_EVAL_DEPTH=" +
                          std::to_string(limit) + ")");
    }
  }
  ~EvalDepthGuard() { --tl_eval_depth; }
  EvalDepthGuard(const EvalDepthGuard&) = delete;
  EvalDepthGuard& operator=(const EvalDepthGuard&) = delete;
};

// Statement-kind tag for error context frames ("in map binding %ys_12").
const char* exp_kind(const Exp& e) {
  return std::visit(
      Overload{
          [](const OpAtom&) { return "atom"; }, [](const OpBin&) { return "binop"; },
          [](const OpUn&) { return "unop"; }, [](const OpSelect&) { return "select"; },
          [](const OpIndex&) { return "index"; }, [](const OpUpdate&) { return "update"; },
          [](const OpUpdAcc&) { return "upd_acc"; }, [](const OpIota&) { return "iota"; },
          [](const OpReplicate&) { return "replicate"; },
          [](const OpZerosLike&) { return "zeros_like"; },
          [](const OpScratch&) { return "scratch"; }, [](const OpLength&) { return "length"; },
          [](const OpReverse&) { return "reverse"; },
          [](const OpTranspose&) { return "transpose"; }, [](const OpCopy&) { return "copy"; },
          [](const OpIf&) { return "if"; }, [](const OpLoop&) { return "loop"; },
          [](const OpMap&) { return "map"; }, [](const OpReduce&) { return "reduce"; },
          [](const OpScan&) { return "scan"; }, [](const OpHist&) { return "hist"; },
          [](const OpScatter&) { return "scatter"; },
          [](const OpWithAcc&) { return "with_acc"; },
      },
      e);
}

double digamma_approx(double x) {
  double result = 0.0;
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x, inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12 - inv2 * (1.0 / 120 - inv2 * (1.0 / 252 - inv2 / 240)));
  return result;
}

// The recognized-binop fast paths of reduce, scan and hist share one combine
// helper (previously three copies of the same switch). Only the four
// operators with useful scalar identities are combinable; everything else
// goes through the kernel or general paths.
inline bool combinable_f64(BinOp op) {
  return op == BinOp::Add || op == BinOp::Mul || op == BinOp::Min || op == BinOp::Max;
}

inline double combine_f64(BinOp op, double a, double b) {
  switch (op) {
    case BinOp::Add: return a + b;
    case BinOp::Mul: return a * b;
    case BinOp::Min: return std::min(a, b);
    case BinOp::Max: return std::max(a, b);
    default: return a + b;  // unreachable for combinable_f64 operators
  }
}

// Atomic *p = combine(*p, v) for the combinable binops: Add lowers to the
// native fetch_add, the rest run a relaxed CAS loop. All four operators are
// commutative and associative, so concurrent updates in any interleaving
// converge to the same bins (float adds/muls regroup — tolerance, not
// bitwise; min/max are exact).
inline void atomic_combine_f64(BinOp op, double* p, double v) {
  std::atomic_ref<double> ref(*p);
  if (op == BinOp::Add) {
    ref.fetch_add(v, std::memory_order_relaxed);
    return;
  }
  double cur = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(cur, combine_f64(op, cur, v),
                                    std::memory_order_relaxed)) {
  }
}

// Tree-merges per-chunk private accumulator buffers (pairwise, levels in
// parallel when the pool allows), then adds the surviving buffer into the
// destination element-parallel.
void merge_private(std::vector<ArrayVal>& bufs, ArrayVal& dst, int64_t grain) {
  NPAD_FAULT_SITE("acc.merge", FaultKind::Chunk);
  const int64_t m = dst.elems();
  for (size_t stride = 1; stride < bufs.size(); stride *= 2) {
    const auto pairs = static_cast<int64_t>((bufs.size() + 2 * stride - 1) / (2 * stride));
    support::parallel_for(pairs, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t p = lo; p < hi; ++p) {
        const size_t i = static_cast<size_t>(p) * 2 * stride;
        if (i + stride >= bufs.size()) continue;
        double* d = bufs[i].buf->f64() + bufs[i].offset;
        const double* s = bufs[i + stride].buf->f64() + bufs[i + stride].offset;
        for (int64_t j = 0; j < m; ++j) d[j] += s[j];
      }
    });
  }
  double* d = dst.buf->f64() + dst.offset;
  const double* s = bufs[0].buf->f64() + bufs[0].offset;
  support::parallel_for(m, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t j = lo; j < hi; ++j) d[j] += s[j];
  });
}

// Loop-buffer ring (execution plans, runtime/plan.hpp): the outermost planned
// loop with loop-invariant body extents installs a per-thread ring of parked
// launch buffers. alloc_launch_buf hands a parked buffer back out whenever it
// is the sole owner (use_count 1: every evaluator reference was dropped) and
// the requested element type and shape match — steady-state iterations then
// acquire all their scratch from the ring with zero pool traffic. A buffer
// still referenced by the environment (a carried array, or last iteration's
// value feeding this one) has use_count > 1 and is never handed out, which is
// exactly the double-buffering the loop carry needs. The ring's own reference
// is inert (never read or written through), and the ring dies with the loop —
// on completion or unwind its buffers release to the global pool, restoring
// the pre-loop pool footprint (the fault-injection retry contract).
//
// The same structure doubles as the plan-scoped *launch arena* (ISSUE 10):
// planned runs install an `arena` ring around the whole top-level body, and
// the general map path installs one per parallel chunk, so straight-line and
// branchy plan regions recycle their non-escaping launch intermediates too —
// the liveness release lists (runtime/plan.hpp) are what drop the frame
// references that make use_count()==1 reuse possible mid-body. The `arena`
// flag only affects stats attribution (arena_reuses vs plan_hoisted_buffers)
// and the buffer pool's parked-bytes gauge; the reuse discipline is
// identical.
struct LoopBufRing {
  std::vector<ArrayVal> bufs;
  bool arena = false;
};

thread_local LoopBufRing* tl_loop_ring = nullptr;

// Dynamic extent of a planned hoisted loop on this thread: ring handouts
// inside it count as plan_hoisted_buffers (the PR 7 loop-ring contract);
// handouts outside it came from a plan arena and count as arena_reuses.
thread_local int tl_hoisted_loop_depth = 0;

struct HoistedLoopScope {
  bool on;
  explicit HoistedLoopScope(bool enable) : on(enable) {
    if (on) ++tl_hoisted_loop_depth;
  }
  ~HoistedLoopScope() {
    if (on) --tl_hoisted_loop_depth;
  }
  HoistedLoopScope(const HoistedLoopScope&) = delete;
  HoistedLoopScope& operator=(const HoistedLoopScope&) = delete;
};

// Number of inert ring references on `a`'s buffer (0 or 1). The in-place
// consumption tests (update/hist/scatter/with_acc destinations) budget their
// use_count threshold for real consumers only; a parked ring reference must
// not force a defensive copy.
inline int64_t ring_refs(const ArrayVal& a) {
  const LoopBufRing* r = tl_loop_ring;
  if (r == nullptr) return 0;
  for (const ArrayVal& e : r->bufs) {
    if (e.buf == a.buf) return 1;
  }
  return 0;
}

// Installs a ring for the dynamic extent of a planned loop or a plan arena.
// By default only the outermost scope on this thread owns a ring: nested
// planned loops park their scratch in the enclosing ring (their iteration
// counts multiply, so hoisting to the outermost scope recycles across the
// whole nest). `scoped` guards instead shadow any enclosing ring for their
// extent and restore it afterwards — per-chunk launch arenas use this so a
// chunk recycles identically whether it lands on a worker (no enclosing
// ring) or on the caller thread (run/loop ring present); without it, reuse
// would depend on thread scheduling and pool traffic would be
// nondeterministic. On destruction — completion or unwind — the parked
// buffers release to the global pool and the arena gauge is rebalanced, so
// the pre-scope pool footprint is restored (the fault-injection contract).
struct HoistRingGuard {
  LoopBufRing ring;
  LoopBufRing* prev = nullptr;
  bool installed = false;

  explicit HoistRingGuard(bool enable, bool arena = false, bool scoped = false) {
    if (enable && (scoped || tl_loop_ring == nullptr)) {
      ring.arena = arena;
      prev = tl_loop_ring;
      tl_loop_ring = &ring;
      installed = true;
    }
  }
  ~HoistRingGuard() {
    if (!installed) return;
    tl_loop_ring = prev;
    uint64_t bytes = 0;
    for (const ArrayVal& e : ring.bufs) {
      if (e.buf) bytes += e.buf->cap_bytes;
    }
    if (!ring.bufs.empty()) {
      BufferPool::global().note_arena_unpark(ring.bufs.size(), bytes);
    }
  }
  HoistRingGuard(const HoistRingGuard&) = delete;
  HoistRingGuard& operator=(const HoistRingGuard&) = delete;
};

// Slot-resolved environment: one flat frame per activation (function entry,
// lambda application, loop), chained by static links. Variable access is
// precomputed (level, slot) indexing — no hashing, no per-scope rehash churn
// (see runtime/resolve.hpp). Frames of enclosing activations are read-only
// while parallel workers build their own child frames.
class Env {
public:
  Env(const ResolvedProg& rp, uint32_t act)
      : parent_(nullptr),
        rp_(&rp),
        level_(rp.activations[act].level),
        slots_(rp.activations[act].num_slots) {}

  Env(const Env& parent, uint32_t act)
      : parent_(&parent),
        rp_(parent.rp_),
        level_(rp_->activations[act].level),
        slots_(rp_->activations[act].num_slots) {
    assert(level_ == parent.level_ + 1 && "activation entered from a non-lexical parent");
  }

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  void bind(ir::Var v, Value val) {
    const SlotRef r = rp_->slots[v.id];
    assert(r.valid() && r.level == level_ && "binding outside its own activation");
    slots_[r.slot] = std::move(val);
  }

  const Value& lookup(ir::Var v) const {
    const SlotRef r = v.id < rp_->slots.size() ? rp_->slots[v.id] : SlotRef{};
    if (!r.valid() || r.level > level_) {
      throw TypeError("unbound variable %" + rp_->mod->name(v) + "_" + std::to_string(v.id));
    }
    const Env* e = this;
    while (e->level_ > r.level) e = e->parent_;
    return e->slots_[r.slot];
  }

  // Binding names for error context frames ("%ys_12").
  std::string name_of(ir::Var v) const {
    return "%" + rp_->mod->name(v) + "_" + std::to_string(v.id);
  }

  // Plan-directed slot release (ir/liveness.hpp via PlanStep::releases):
  // drops this frame's reference to a binding past its statically-proven
  // last use, so a sole-owner launch buffer becomes reclaimable by the
  // per-thread arena while the plan is still running. Only vars bound by
  // this activation's own statements ever appear in a release list.
  void release(ir::Var v) {
    const SlotRef r = rp_->slots[v.id];
    assert(r.valid() && r.level == level_ && "releasing outside its own activation");
    slots_[r.slot] = Value{};
  }

private:
  const Env* parent_;
  const ResolvedProg* rp_;
  uint32_t level_;
  std::vector<Value> slots_;
};

class EvalCtx {
public:
  explicit EvalCtx(const Interp& host)
      : opts_(host.options()), stats_(const_cast<InterpStats*>(&host.stats())) {}

  Value eval_atom(const Atom& a, const Env& env) const {
    if (a.is_var()) return env.lookup(a.var());
    const ConstVal& c = a.cval();
    switch (c.t) {
      case ScalarType::F64: return c.f;
      case ScalarType::I64: return c.i;
      case ScalarType::Bool: return c.i != 0;
    }
    return 0.0;
  }

  // Statements execute in the caller's frame: nested bodies (if branches) are
  // not activations — their bindings have dedicated slots in the enclosing
  // frame (binding ids are unique after alpha-renaming).
  std::vector<Value> eval_body(const Body& b, Env& env) const {
    for (const auto& st : b.stms) exec_stm(st, env);
    std::vector<Value> out;
    out.reserve(b.result.size());
    for (const auto& a : b.result) out.push_back(eval_atom(a, env));
    return out;
  }

  // Lambda application. When the enclosing resolved program's compiled
  // schedule tabled a plan for this body (runtime/plan.hpp), the application
  // routes through the planned evaluator — same frames, same results, plus
  // scalar-block/map-launch fast steps and liveness releases; everything
  // else stays on plain eval_body.
  std::vector<Value> apply(const Lambda& f, std::vector<Value> args, const Env& captured) const {
    assert(args.size() == f.params.size());
    EvalDepthGuard depth_guard(opts_.max_eval_depth);
    Env env(captured, f.activation_id);
    for (size_t i = 0; i < args.size(); ++i) env.bind(f.params[i].var, std::move(args[i]));
    if (lambda_plans_ != nullptr) {
      auto it = lambda_plans_->find(&f);
      if (it != lambda_plans_->end()) {
        NPAD_FAULT_SITE("plan.apply_body", FaultKind::Chunk);
        stats_->plan_lambda_bodies.fetch_add(1, std::memory_order_relaxed);
        return eval_body_planned(f.body, *it->second, env);
      }
    }
    return eval_body(f.body, env);
  }

  void exec_stm(const Stm& st, Env& env) const {
    try {
      std::vector<Value> vals = eval_exp(st.e, env);
      assert(vals.size() == st.vars.size());
      for (size_t i = 0; i < vals.size(); ++i) env.bind(st.vars[i], std::move(vals[i]));
    } catch (npad::Error& err) {
      // Accumulate IR context as the unwind crosses this frame: the final
      // what() reads like a stack trace through the evaluated program.
      std::string frame = "in ";
      frame += exp_kind(st.e);
      if (!st.vars.empty()) frame += " binding " + env.name_of(st.vars[0]);
      err.add_context(std::move(frame));
      throw;
    }
  }

  // ------------------------------------------------------ execution plans ---
  //
  // Step dispatch for compiled plans (runtime/plan.hpp). Each step either
  // executes its pre-lowered fast form or falls back to exec_stm for that one
  // statement, so planned evaluation is a strict refinement of eval_body:
  // identical bindings, identical results, identical error context frames.
  std::vector<Value> eval_body_planned(const Body& b, const Plan& plan, Env& env) const {
    for (const PlanStep& s : plan.steps) {
      switch (s.kind) {
        case PlanStep::Kind::General: exec_stm(b.stms[s.stm], env); break;
        case PlanStep::Kind::Scalars: run_scalar_step(b, s, env); break;
        case PlanStep::Kind::MapLaunch: run_map_step(b, s, env); break;
        case PlanStep::Kind::Loop: run_loop_step(b, s, env); break;
        case PlanStep::Kind::If: run_if_step(b, s, env); break;
      }
      // Liveness releases run between steps on the calling thread — every
      // launch of the step has completed, so no in-flight reader exists and
      // the dropped reference can make an arena buffer sole-owner.
      for (ir::Var v : s.releases) env.release(v);
    }
    std::vector<Value> out;
    out.reserve(b.result.size());
    for (const auto& a : b.result) out.push_back(eval_atom(a, env));
    return out;
  }

  // If step: the planned mirror of eval_exp's OpIf — the condition evaluates
  // as a plan step and the taken arm runs its own nested plan in the
  // enclosing frame (if-arm bodies are not activations; their bindings have
  // slots in this frame). Error frames replicate the general path exactly:
  // arm statements add their own exec_stm frames, and this step adds the
  // same "in if binding" frame exec_stm would.
  void run_if_step(const Body& b, const PlanStep& s, Env& env) const {
    const Stm& st = b.stms[s.stm];
    const auto& o = std::get<OpIf>(st.e);
    try {
      NPAD_FAULT_SITE("plan.if_arm", FaultKind::Chunk);
      const bool c = as_bool(eval_atom(o.c, env));
      stats_->plan_if_arms.fetch_add(1, std::memory_order_relaxed);
      std::vector<Value> vals = c ? eval_body_planned(*o.tb, *s.if_true, env)
                                  : eval_body_planned(*o.fb, *s.if_false, env);
      assert(vals.size() == st.vars.size());
      for (size_t i = 0; i < vals.size(); ++i) env.bind(st.vars[i], std::move(vals[i]));
    } catch (npad::Error& err) {
      std::string frame = "in if";
      if (!st.vars.empty()) frame += " binding " + env.name_of(st.vars[0]);
      err.add_context(std::move(frame));
      throw;
    }
  }

  // Scalars step: one extent-1 kernel execution replaces the folded run of
  // scalar bindings — no eval_exp dispatch, no per-statement Env traffic, no
  // Value variant churn for the intermediates. Falls back to per-statement
  // evaluation if a free variable turns out not to be scalar.
  void run_scalar_step(const Body& b, const PlanStep& s, Env& env) const {
    bool ok = true;
    try {
      NPAD_FAULT_SITE("plan.step", FaultKind::Chunk);
      const Kernel& k = *s.scalars;
      thread_local std::vector<double> frees, regs, outs;
      frees.clear();
      for (ir::Var v : k.free_scalars) {
        const Value& val = env.lookup(v);
        if (is_array(val) || is_acc(val)) {
          ok = false;
          break;
        }
        frees.push_back(as_f64(val));
      }
      if (ok) {
        outs.assign(s.out_vars.size(), 0.0);
        // Plan-owned kernels are immortal (the plan cache never evicts), so
        // the vexec tier applies to scalar blocks too — same pre-decoded
        // schedule, scalar width.
        const vexec::Entry* ve = opts_.use_vexec ? vexec::lookup(k, 1) : nullptr;
        if (ve != nullptr) {
          stats_->vexec_launches.fetch_add(1, std::memory_order_relaxed);
          vexec::select_ops(opts_.vexec_portable)->run_scalar(*ve, k, frees.data(),
                                                              outs.data());
        } else {
          regs.assign(static_cast<size_t>(k.num_regs), 0.0);
          run_scalar_kernel(k, frees.data(), regs.data(), outs.data());
        }
        for (size_t j = 0; j < s.out_vars.size(); ++j) {
          env.bind(s.out_vars[j], partial_value(s.out_types[j], outs[j]));
        }
        stats_->plan_scalar_blocks.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (npad::Error& err) {
      err.add_context("in scalar block binding " + env.name_of(s.out_vars[0]));
      throw;
    }
    if (!ok) {
      for (uint32_t i = 0; i < s.count; ++i) exec_stm(b.stms[s.stm + i], env);
    }
  }

  // MapLaunch step: re-binds arguments against the pre-resolved kernel and
  // launches — no cache lookup, no compile-or-not dispatch. Any precondition
  // the plan could not prove statically (rank-1 inputs, equal extents, free
  // binding shapes) re-checks here; a mismatch hands the whole statement to
  // the general evaluator, which reproduces the exact error/semantics.
  std::optional<std::vector<Value>> try_map_step(const OpMap& o, const PlanStep& s,
                                                 Env& env) const {
    const Lambda& f = *o.f;
    std::vector<ArrayVal> inputs;
    int64_t n = -1;
    for (size_t i = 0; i < o.args.size(); ++i) {
      if (f.params[i].type.is_acc) continue;  // bound below via the kernel's acc table
      const Value& v = env.lookup(o.args[i]);
      if (!is_array(v)) return std::nullopt;
      const ArrayVal& a = as_array(v);
      // Ranks are validated by bind_map_launch (rank-1 elements, rank-2 row
      // arguments); only the shared outer extent is checked here.
      if (n < 0) {
        n = a.outer();
      } else if (a.outer() != n) {
        return std::nullopt;  // general path throws the proper ShapeError
      }
      inputs.push_back(a);
    }
    if (n < 0) return std::nullopt;
    auto L = bind_map_launch(s.kernel, nullptr, o, inputs, env);
    if (!L) return std::nullopt;
    if (o.fused > 0) stats_->fused_maps.fetch_add(o.fused, std::memory_order_relaxed);
    stats_->kernel_maps.fetch_add(1, std::memory_order_relaxed);
    stats_->plan_launches.fetch_add(1, std::memory_order_relaxed);
    return run_kernel(*L, f, o, n, env);
  }

  void run_map_step(const Body& b, const PlanStep& s, Env& env) const {
    const Stm& st = b.stms[s.stm];
    const auto& o = std::get<OpMap>(st.e);
    std::optional<std::vector<Value>> r;
    try {
      NPAD_FAULT_SITE("plan.step", FaultKind::Chunk);
      r = try_map_step(o, s, env);
    } catch (npad::Error& err) {
      // Same frames the general path accumulates (eval_exp + exec_stm).
      err.add_context(launch_frame("map", args_extent(o.args, env)));
      if (!st.vars.empty()) err.add_context("in map binding " + env.name_of(st.vars[0]));
      throw;
    }
    if (!r) {
      exec_stm(st, env);
      return;
    }
    for (size_t i = 0; i < r->size(); ++i) env.bind(st.vars[i], std::move((*r)[i]));
  }

  // Loop step: the planned mirror of eval_loop's for-form. The nested body
  // plan executes every iteration, and the outermost planned loop installs
  // the loop-buffer ring (extents are provably loop-invariant, so iteration
  // 2+ scratch acquisitions all hit the ring).
  void run_loop_step(const Body& b, const PlanStep& s, Env& env) const {
    const Stm& st = b.stms[s.stm];
    const auto& o = std::get<OpLoop>(st.e);
    try {
      NPAD_FAULT_SITE("plan.step", FaultKind::Chunk);
      std::vector<Value> state;
      state.reserve(o.init.size());
      for (const auto& a : o.init) state.push_back(eval_atom(a, env));
      const int64_t n = as_i64(eval_atom(o.count, env));
      if (n > 0) {
        HoistRingGuard ring(s.hoist_buffers);
        HoistedLoopScope hoisted(s.hoist_buffers);
        Env it_env(env, o.activation_id);
        for (int64_t i = 0; i < n; ++i) {
          if (o.idx.valid()) it_env.bind(o.idx, i);
          for (size_t k = 0; k < o.params.size(); ++k)
            it_env.bind(o.params[k].var, std::move(state[k]));
          try {
            NPAD_FAULT_SITE("loop.iter", FaultKind::Chunk);
            NPAD_FAULT_SITE("plan.loop_iter", FaultKind::Chunk);
            state = eval_body_planned(*o.body, *s.loop_body, it_env);
          } catch (npad::Error& err) {
            err.add_context("in loop iteration " + std::to_string(i) + " of " +
                            std::to_string(n));
            throw;
          }
        }
      }
      for (size_t k = 0; k < st.vars.size(); ++k) env.bind(st.vars[k], std::move(state[k]));
    } catch (npad::Error& err) {
      if (!st.vars.empty()) err.add_context("in loop binding " + env.name_of(st.vars[0]));
      throw;
    }
  }

  std::vector<Value> eval_exp(const Exp& e, Env& env) const {
    return std::visit(
        Overload{
            [&](const OpAtom& o) -> std::vector<Value> { return {eval_atom(o.a, env)}; },
            [&](const OpBin& o) -> std::vector<Value> {
              return {eval_bin(o.op, eval_atom(o.a, env), eval_atom(o.b, env))};
            },
            [&](const OpUn& o) -> std::vector<Value> {
              return {eval_un(o.op, eval_atom(o.a, env))};
            },
            [&](const OpSelect& o) -> std::vector<Value> {
              return {as_bool(eval_atom(o.c, env)) ? eval_atom(o.t, env) : eval_atom(o.f, env)};
            },
            [&](const OpIndex& o) -> std::vector<Value> { return {eval_index(o, env)}; },
            [&](const OpUpdate& o) -> std::vector<Value> { return {eval_update(o, env)}; },
            [&](const OpUpdAcc& o) -> std::vector<Value> { return {eval_updacc(o, env)}; },
            [&](const OpIota& o) -> std::vector<Value> {
              const int64_t n = as_i64(eval_atom(o.n, env));
              ArrayVal a = ArrayVal::alloc(ScalarType::I64, {n});
              for (int64_t i = 0; i < n; ++i) a.set_i64(i, i);
              return {a};
            },
            [&](const OpReplicate& o) -> std::vector<Value> {
              const int64_t n = as_i64(eval_atom(o.n, env));
              Value v = eval_atom(o.v, env);
              if (is_array(v)) {
                const ArrayVal& row = as_array(v);
                std::vector<int64_t> shp{n};
                shp.insert(shp.end(), row.shape.begin(), row.shape.end());
                ArrayVal out = ArrayVal::alloc(row.elem, std::move(shp));
                for (int64_t i = 0; i < n; ++i) copy_into(out, i * row.elems(), row);
                return {out};
              }
              ScalarType t = std::holds_alternative<double>(v)    ? ScalarType::F64
                             : std::holds_alternative<int64_t>(v) ? ScalarType::I64
                                                                  : ScalarType::Bool;
              ArrayVal out = ArrayVal::alloc(t, {n});
              for (int64_t i = 0; i < n; ++i) store_scalar(out, i, v);
              return {out};
            },
            [&](const OpZerosLike& o) -> std::vector<Value> {
              const Value& v = env.lookup(o.v);
              if (is_array(v)) {
                const ArrayVal& a = as_array(v);
                return {ArrayVal::alloc(a.elem, a.shape)};
              }
              if (std::holds_alternative<int64_t>(v)) return {int64_t{0}};
              if (std::holds_alternative<bool>(v)) return {false};
              return {0.0};
            },
            [&](const OpScratch& o) -> std::vector<Value> {
              const int64_t n = as_i64(eval_atom(o.n, env));
              const Value& like = env.lookup(o.like);
              std::vector<int64_t> shp{n};
              ScalarType t = ScalarType::F64;
              if (is_array(like)) {
                const ArrayVal& a = as_array(like);
                shp.insert(shp.end(), a.shape.begin(), a.shape.end());
                t = a.elem;
              } else if (std::holds_alternative<int64_t>(like)) {
                t = ScalarType::I64;
              } else if (std::holds_alternative<bool>(like)) {
                t = ScalarType::Bool;
              }
              return {ArrayVal::alloc(t, std::move(shp))};
            },
            [&](const OpLength& o) -> std::vector<Value> {
              return {as_array(env.lookup(o.arr)).outer()};
            },
            [&](const OpReverse& o) -> std::vector<Value> {
              const ArrayVal& a = as_array(env.lookup(o.arr));
              ArrayVal out = ArrayVal::alloc(a.elem, a.shape);
              const int64_t n = a.outer(), row = a.row_elems();
              for (int64_t i = 0; i < n; ++i) copy_into(out, (n - 1 - i) * row, row_view(a, i));
              return {out};
            },
            [&](const OpTranspose& o) -> std::vector<Value> {
              const ArrayVal& a = as_array(env.lookup(o.arr));
              assert(a.rank() >= 2);
              std::vector<int64_t> shp = a.shape;
              std::swap(shp[0], shp[1]);
              ArrayVal out = ArrayVal::alloc(a.elem, shp);
              const int64_t r = a.shape[0], c = a.shape[1];
              int64_t inner = 1;
              for (size_t d = 2; d < a.shape.size(); ++d) inner *= a.shape[d];
              for (int64_t i = 0; i < r; ++i) {
                for (int64_t j = 0; j < c; ++j) {
                  for (int64_t k = 0; k < inner; ++k) {
                    const int64_t src = (i * c + j) * inner + k;
                    const int64_t dst = (j * r + i) * inner + k;
                    switch (a.elem) {
                      case ScalarType::F64: out.set_f64(dst, a.get_f64(src)); break;
                      case ScalarType::I64: out.set_i64(dst, a.get_i64(src)); break;
                      case ScalarType::Bool: out.set_b8(dst, a.get_i64(src) != 0); break;
                    }
                  }
                }
              }
              return {out};
            },
            [&](const OpCopy& o) -> std::vector<Value> {
              const Value& v = env.lookup(o.v);
              if (is_array(v)) return {compact_copy(as_array(v))};
              return {v};
            },
            [&](const OpIf& o) -> std::vector<Value> {
              return eval_body(as_bool(eval_atom(o.c, env)) ? *o.tb : *o.fb, env);
            },
            [&](const OpLoop& o) -> std::vector<Value> { return eval_loop(o, env); },
            [&](const OpMap& o) -> std::vector<Value> {
              try {
                return eval_map(o, env);
              } catch (npad::Error& err) {
                err.add_context(launch_frame("map", args_extent(o.args, env)));
                throw;
              }
            },
            [&](const OpReduce& o) -> std::vector<Value> {
              try {
                return eval_reduce(o, env);
              } catch (npad::Error& err) {
                err.add_context(launch_frame("reduce", args_extent(o.args, env)));
                throw;
              }
            },
            [&](const OpScan& o) -> std::vector<Value> {
              try {
                return eval_scan(o, env);
              } catch (npad::Error& err) {
                err.add_context(launch_frame("scan", args_extent(o.args, env)));
                throw;
              }
            },
            [&](const OpHist& o) -> std::vector<Value> {
              try {
                return {eval_hist(o, env)};
              } catch (npad::Error& err) {
                err.add_context(launch_frame("hist", var_extent(o.inds, env)));
                throw;
              }
            },
            [&](const OpScatter& o) -> std::vector<Value> {
              try {
                return {eval_scatter(o, env)};
              } catch (npad::Error& err) {
                err.add_context(launch_frame("scatter", var_extent(o.inds, env)));
                throw;
              }
            },
            [&](const OpWithAcc& o) -> std::vector<Value> {
              try {
                return eval_withacc(o, env);
              } catch (npad::Error& err) {
                err.add_context("in with_acc body");
                throw;
              }
            },
        },
        e);
  }

  // Best-effort launch extent for error frames; lookup failures yield -1
  // (frames must never mask the original error with a second throw).
  int64_t var_extent(Var v, const Env& env) const noexcept {
    try {
      const Value& val = env.lookup(v);
      if (is_array(val)) return as_array(val).outer();
    } catch (...) {
    }
    return -1;
  }

  int64_t args_extent(const std::vector<Var>& args, const Env& env) const noexcept {
    for (Var v : args) {
      const int64_t n = var_extent(v, env);
      if (n >= 0) return n;
    }
    return -1;
  }

  static std::string launch_frame(const char* kind, int64_t extent) {
    std::string s = "in ";
    s += kind;
    s += " launch";
    if (extent >= 0) s += " (extent " + std::to_string(extent) + ")";
    return s;
  }

  // ------------------------------------------------------------- scalars ---
  static Value eval_bin(BinOp op, const Value& va, const Value& vb) {
    switch (op) {
      case BinOp::Eq: case BinOp::Ne: case BinOp::Lt: case BinOp::Le:
      case BinOp::Gt: case BinOp::Ge: {
        if (std::holds_alternative<int64_t>(va)) {
          const int64_t a = as_i64(va), b = as_i64(vb);
          switch (op) {
            case BinOp::Eq: return a == b;
            case BinOp::Ne: return a != b;
            case BinOp::Lt: return a < b;
            case BinOp::Le: return a <= b;
            case BinOp::Gt: return a > b;
            default: return a >= b;
          }
        }
        const double a = as_f64(va), b = as_f64(vb);
        switch (op) {
          case BinOp::Eq: return a == b;
          case BinOp::Ne: return a != b;
          case BinOp::Lt: return a < b;
          case BinOp::Le: return a <= b;
          case BinOp::Gt: return a > b;
          default: return a >= b;
        }
      }
      case BinOp::And: return as_bool(va) && as_bool(vb);
      case BinOp::Or: return as_bool(va) || as_bool(vb);
      case BinOp::Mod: {
        const int64_t b = as_i64(vb);
        return b == 0 ? int64_t{0} : as_i64(va) % b;
      }
      default: break;
    }
    if (std::holds_alternative<int64_t>(va)) {
      const int64_t a = as_i64(va), b = as_i64(vb);
      switch (op) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::Div: return b == 0 ? int64_t{0} : a / b;
        case BinOp::Min: return std::min(a, b);
        case BinOp::Max: return std::max(a, b);
        case BinOp::Pow: return static_cast<int64_t>(std::pow(static_cast<double>(a), static_cast<double>(b)));
        default: throw KernelError("binary operator not defined on i64 operands");
      }
    }
    const double a = as_f64(va), b = as_f64(vb);
    switch (op) {
      case BinOp::Add: return a + b;
      case BinOp::Sub: return a - b;
      case BinOp::Mul: return a * b;
      case BinOp::Div: return a / b;
      case BinOp::Pow: return std::pow(a, b);
      case BinOp::Min: return std::min(a, b);
      case BinOp::Max: return std::max(a, b);
      default: throw KernelError("binary operator not defined on f64 operands");
    }
  }

  static Value eval_un(UnOp op, const Value& va) {
    switch (op) {
      case UnOp::Not: return !as_bool(va);
      case UnOp::ToF64: return as_f64(va);
      case UnOp::ToI64: return as_i64(va);
      case UnOp::Neg:
        if (std::holds_alternative<int64_t>(va)) return -as_i64(va);
        return -as_f64(va);
      case UnOp::Abs:
        if (std::holds_alternative<int64_t>(va)) return std::abs(as_i64(va));
        return std::fabs(as_f64(va));
      case UnOp::Sign: {
        const double x = as_f64(va);
        return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0);
      }
      default: break;
    }
    const double a = as_f64(va);
    switch (op) {
      case UnOp::Exp: return std::exp(a);
      case UnOp::Log: return std::log(a);
      case UnOp::Sqrt: return std::sqrt(a);
      case UnOp::Sin: return std::sin(a);
      case UnOp::Cos: return std::cos(a);
      case UnOp::Tanh: return std::tanh(a);
      case UnOp::LGamma: return std::lgamma(a);
      case UnOp::Digamma: return digamma_approx(a);
      default: throw KernelError("unary operator not defined on this operand");
    }
  }

  // -------------------------------------------------------- array access ---
  Value eval_index(const OpIndex& o, const Env& env) const {
    const ArrayVal* a = &as_array(env.lookup(o.arr));
    ArrayVal view = *a;
    for (size_t k = 0; k < o.idx.size(); ++k) {
      const int64_t i = as_i64(eval_atom(o.idx[k], env));
      if (i < 0 || i >= view.shape[0]) {
        throw ShapeError("index " + std::to_string(i) + " out of bounds for " +
                         env.name_of(o.arr) + " axis " + std::to_string(k) + " of extent " +
                         std::to_string(view.shape[0]));
      }
      if (view.rank() == 1) {
        // Final scalar element.
        assert(k + 1 == o.idx.size());
        return scalar_value(view.elem, view, i);
      }
      view = row_view(view, i);
    }
    return view;
  }

  Value eval_update(const OpUpdate& o, const Env& env) const {
    ArrayVal a = as_array(env.lookup(o.arr));  // +1 ref (env keeps one)
    ArrayVal dst = (a.whole() && a.buf.use_count() <= 2 + ring_refs(a)) ? a : compact_copy(a);
    int64_t off = 0;
    int64_t rows = dst.elems();
    for (size_t k = 0; k < o.idx.size(); ++k) {
      rows /= dst.shape[k];
      const int64_t i = as_i64(eval_atom(o.idx[k], env));
      if (i < 0 || i >= dst.shape[k]) {
        throw ShapeError("update index " + std::to_string(i) + " out of bounds for " +
                         env.name_of(o.arr) + " axis " + std::to_string(k) + " of extent " +
                         std::to_string(dst.shape[k]));
      }
      off += i * rows;
    }
    Value v = eval_atom(o.v, env);
    if (is_array(v)) {
      copy_into(dst, off, as_array(v));
    } else {
      store_scalar(dst, off, v);
    }
    return dst;
  }

  Value eval_updacc(const OpUpdAcc& o, const Env& env) const {
    AccVal acc = as_acc(env.lookup(o.acc));
    ArrayVal& a = acc.arr;
    int64_t off = 0;
    int64_t rows = a.elems();
    for (size_t k = 0; k < o.idx.size(); ++k) {
      rows /= a.shape[k];
      const int64_t i = as_i64(eval_atom(o.idx[k], env));
      if (i < 0 || i >= a.shape[k]) return acc;  // out-of-bounds updates ignored
      off += i * rows;
    }
    Value v = eval_atom(o.v, env);
    uint64_t count = 1;
    if (is_array(v)) {
      const ArrayVal& src = as_array(v);
      count = static_cast<uint64_t>(src.elems());
      if (acc.atomic) {
        for (int64_t k = 0; k < src.elems(); ++k) atomic_add_f64(a, off + k, src.get_f64(k));
      } else {
        for (int64_t k = 0; k < src.elems(); ++k) plain_add_f64(a, off + k, src.get_f64(k));
      }
    } else if (acc.atomic) {
      atomic_add_f64(a, off, as_f64(v));
    } else {
      plain_add_f64(a, off, as_f64(v));
    }
    (acc.atomic ? stats_->atomic_updates : stats_->privatized_updates)
        .fetch_add(count, std::memory_order_relaxed);
    return acc;
  }

  // ---------------------------------------------------------------- loop ---
  std::vector<Value> eval_loop(const OpLoop& o, Env& env) const {
    std::vector<Value> state;
    state.reserve(o.init.size());
    for (const auto& a : o.init) state.push_back(eval_atom(a, env));
    // One frame per loop, reused across iterations: params are rebound each
    // round and body bindings simply overwrite last round's slots.
    if (o.while_cond) {
      for (int64_t i = 0;; ++i) {
        std::vector<Value> c = apply(*o.while_cond, state, env);
        if (!as_bool(c[0])) break;
        Env it_env(env, o.activation_id);
        for (size_t k = 0; k < o.params.size(); ++k)
          it_env.bind(o.params[k].var, std::move(state[k]));
        try {
          NPAD_FAULT_SITE("loop.iter", FaultKind::Chunk);
          state = eval_body(*o.body, it_env);
        } catch (npad::Error& err) {
          err.add_context("in while-loop iteration " + std::to_string(i));
          throw;
        }
      }
      return state;
    }
    const int64_t n = as_i64(eval_atom(o.count, env));
    if (n <= 0) return state;
    Env it_env(env, o.activation_id);
    for (int64_t i = 0; i < n; ++i) {
      if (o.idx.valid()) it_env.bind(o.idx, i);
      for (size_t k = 0; k < o.params.size(); ++k)
        it_env.bind(o.params[k].var, std::move(state[k]));
      try {
        NPAD_FAULT_SITE("loop.iter", FaultKind::Chunk);
        state = eval_body(*o.body, it_env);
      } catch (npad::Error& err) {
        err.add_context("in loop iteration " + std::to_string(i) + " of " + std::to_string(n));
        throw;
      }
    }
    return state;
  }

  // Launch-buffer allocation with pool accounting: buffers for kernel
  // outputs and map results are fully overwritten by the launch, so they take
  // the uninitialized path; privatized accumulators need the zero-fill.
  // Inside a planned loop or plan arena (tl_loop_ring set) buffers are
  // recycled from the thread-local ring instead of round-tripping the global
  // pool; the counter ticked records which mechanism earned the reuse.
  ArrayVal alloc_launch_buf(ScalarType t, std::vector<int64_t> shp, bool uninit) const {
    if (LoopBufRing* ring = tl_loop_ring) {
      if (ring->arena) {
        // Arena acquisitions are their own fault site: the arena is new
        // control flow whose unwind must restore the pool footprint.
        NPAD_FAULT_SITE("plan.arena_acquire", FaultKind::Alloc);
      }
      for (ArrayVal& e : ring->bufs) {
        if (e.elem == t && e.shape == shp && e.buf.use_count() == 1) {
          (tl_hoisted_loop_depth > 0 ? stats_->plan_hoisted_buffers : stats_->arena_reuses)
              .fetch_add(1, std::memory_order_relaxed);
          if (!uninit) {
            std::memset(e.buf->raw, 0, static_cast<size_t>(e.elems()) * scalar_bytes(t));
          }
          return e;
        }
      }
      bool hit = false;
      ArrayVal a = uninit ? ArrayVal::alloc_uninit(t, std::move(shp), &hit)
                          : ArrayVal::alloc(t, std::move(shp), &hit);
      (hit ? stats_->pool_hits : stats_->pool_misses).fetch_add(1, std::memory_order_relaxed);
      // Park a reference for later acquisitions (bounded: a runaway shape
      // mix must not pin unbounded memory for the ring's whole lifetime).
      if (ring->bufs.size() < 64) {
        ring->bufs.push_back(a);
        BufferPool::global().note_arena_park(1, a.buf ? a.buf->cap_bytes : 0);
      }
      return a;
    }
    bool hit = false;
    ArrayVal a = uninit ? ArrayVal::alloc_uninit(t, std::move(shp), &hit)
                        : ArrayVal::alloc(t, std::move(shp), &hit);
    (hit ? stats_->pool_hits : stats_->pool_misses).fetch_add(1, std::memory_order_relaxed);
    return a;
  }

  // ----------------------------------------------------------------- map ---
  std::vector<Value> eval_map(const OpMap& o, Env& env) const {
    const Lambda& f = *o.f;
    if (o.fused > 0) stats_->fused_maps.fetch_add(o.fused, std::memory_order_relaxed);
    // Element inputs (non-acc) and threaded accumulator args.
    std::vector<ArrayVal> inputs;
    std::vector<Value> acc_args;
    int64_t n = -1;
    for (size_t i = 0; i < o.args.size(); ++i) {
      const Value& v = env.lookup(o.args[i]);
      if (f.params[i].type.is_acc) {
        acc_args.push_back(v);
      } else {
        const ArrayVal& a = as_array(v);
        if (n < 0) n = a.outer();
        if (a.outer() != n) {
          throw ShapeError("map arguments of unequal length: " + env.name_of(o.args[i]) +
                           " has extent " + std::to_string(a.outer()) + ", expected " +
                           std::to_string(n));
        }
        inputs.push_back(a);
      }
    }
    if (n < 0) throw TypeError("map without array argument");

    // Flattened nested execution (opt/flatten.cpp annotations): run the
    // whole nest as ONE launch instead of one inner launch per row. Empty
    // outer extents fall through so result shapes match the general path's
    // shape discovery; any other mismatch (non-rank-2 input, irregular
    // inner extent, non-kernelizable inner lambda, unbindable fold) also
    // falls through to the general nested path.
    if (o.flat != ir::FlatForm::None && acc_args.empty() && n > 0) {
      if (o.flat == ir::FlatForm::Inner && opts_.use_kernels) {
        if (auto r = run_flat_map(o, inputs, n, env)) return *r;
      } else if (o.flat == ir::FlatForm::SegRed) {
        if (auto r = run_segred(o, inputs, n, env)) return *r;
      }
    }

    if (opts_.use_kernels) {
      if (auto kopt = try_kernel(o, inputs, env)) {
        stats_->kernel_maps.fetch_add(1, std::memory_order_relaxed);
        return run_kernel(*kopt, f, o, n, env);
      }
    }
    stats_->general_maps.fetch_add(1, std::memory_order_relaxed);

    // General path: evaluate element 0 to learn result shapes.
    std::vector<Value> outs(f.rets.size());
    std::vector<ArrayVal> out_arrays(f.rets.size());
    auto elem_args = [&](int64_t i, const std::vector<Value>& accs) {
      std::vector<Value> args;
      args.reserve(f.params.size());
      size_t ai = 0, ci = 0;
      for (size_t k = 0; k < f.params.size(); ++k) {
        if (f.params[k].type.is_acc) {
          args.push_back(accs[ci++]);
        } else {
          const ArrayVal& a = inputs[ai++];
          if (a.rank() == 1) {
            args.push_back(scalar_value(a.elem, a, i));
          } else {
            args.push_back(row_view(a, i));
          }
        }
      }
      return args;
    };
    auto store_result = [&](int64_t i, std::vector<Value>& vals) {
      for (size_t r = 0; r < f.rets.size(); ++r) {
        if (f.rets[r].is_acc) continue;
        ArrayVal& dst = out_arrays[r];
        if (is_array(vals[r])) {
          const ArrayVal& src = as_array(vals[r]);
          copy_into(dst, i * src.elems(), src);
        } else {
          store_scalar(dst, i, vals[r]);
        }
      }
    };
    if (n == 0) {
      // Threaded accumulators pass through untouched (the lambda never ran);
      // they are returned in parameter order, the paper's threading
      // convention for accumulator results.
      size_t ci = 0;
      for (size_t r = 0; r < f.rets.size(); ++r) {
        if (f.rets[r].is_acc) {
          if (ci < acc_args.size()) outs[r] = acc_args[ci++];
          continue;
        }
        std::vector<int64_t> shp{0};
        for (int d = 0; d < f.rets[r].rank; ++d) shp.push_back(0);
        out_arrays[r] = ArrayVal::alloc(f.rets[r].elem, std::move(shp));
      }
    } else {
      const auto threads = static_cast<int64_t>(support::ThreadPool::global().thread_count());
      const bool nested = support::ThreadPool::in_parallel_region();
      const bool fanout = opts_.parallel && threads > 1 && n > opts_.grain && !nested;
      // Accumulator atomicity for this launch: a fanned-out launch must use
      // atomic updates on every shared accumulator (even one privatized by an
      // enclosing sequential launch), while a launch that provably runs on
      // this thread alone can use plain adds throughout.
      std::vector<Value> base_accs = acc_args;
      for (auto& a : base_accs) {
        if (!is_acc(a)) continue;
        AccVal av = as_acc(a);
        if (fanout) {
          av.atomic = true;
        } else if (!nested && opts_.privatize_accs) {
          av.atomic = false;
        }
        a = av;
      }

      std::vector<Value> first = apply(f, elem_args(0, base_accs), env);
      for (size_t r = 0; r < f.rets.size(); ++r) {
        if (f.rets[r].is_acc) {
          // Return the caller's accumulator value (original atomicity), not
          // the launch-local flagged copy the lambda threaded through.
          outs[r] = first[r];
          if (is_acc(first[r])) {
            for (const auto& a : acc_args) {
              if (is_acc(a) && as_acc(a).arr.buf == as_acc(first[r]).arr.buf) {
                outs[r] = a;
                break;
              }
            }
          }
          continue;
        }
        std::vector<int64_t> shp{n};
        if (is_array(first[r])) {
          const auto& a = as_array(first[r]);
          shp.insert(shp.end(), a.shape.begin(), a.shape.end());
          out_arrays[r] = alloc_launch_buf(a.elem, std::move(shp), /*uninit=*/true);
        } else {
          ScalarType t = std::holds_alternative<double>(first[r])    ? ScalarType::F64
                         : std::holds_alternative<int64_t>(first[r]) ? ScalarType::I64
                                                                     : ScalarType::Bool;
          out_arrays[r] = alloc_launch_buf(t, std::move(shp), /*uninit=*/true);
        }
      }
      store_result(0, first);

      // Accumulator privatization: small accumulators get per-chunk private
      // zero-initialized copies updated with plain adds, tree-merged into the
      // destination after the launch; the rest stay atomic.
      std::vector<size_t> priv;
      const int64_t chunks =
          fanout ? std::min<int64_t>(threads, (n + opts_.grain - 1) / opts_.grain) : 1;
      if (fanout && opts_.privatize_accs && n >= opts_.privatize_min_iters) {
        int64_t budget = opts_.privatize_budget;
        for (size_t j = 0; j < base_accs.size(); ++j) {
          if (!is_acc(base_accs[j])) continue;
          const ArrayVal& a = as_acc(base_accs[j]).arr;
          if (a.elem != ScalarType::F64) continue;
          const int64_t cost = a.elems() * chunks;
          if (cost <= budget) {
            budget -= cost;
            priv.push_back(j);
          }
        }
      }
      if (priv.empty()) {
        const auto body = [&](int64_t lo, int64_t hi) {
          NPAD_FAULT_SITE("map.general_chunk", FaultKind::Chunk);
          // Per-chunk launch arena: each element's apply() drops its frame
          // when it returns, so per-element launch intermediates become
          // sole-owner and the next element reuses them instead of
          // round-tripping the pool once per element. On the caller thread
          // an enclosing ring (run arena or loop ring) already absorbs them.
          HoistRingGuard arena(opts_.use_plans, /*arena=*/true, /*scoped=*/true);
          for (int64_t i = std::max<int64_t>(lo, 1); i < hi; ++i) {
            std::vector<Value> vals = apply(f, elem_args(i, base_accs), env);
            store_result(i, vals);
          }
        };
        // Dispatch on the same `fanout` decision that chose the accumulator
        // atomicity above: a launch flagged non-atomic (no fan-out) must
        // never reach the pool, and a launch parallel_for would split must
        // always have been flagged atomic.
        if (fanout) {
          support::parallel_for(n, opts_.grain, body);
        } else {
          body(0, n);
        }
      } else {
        stats_->privatized_launches.fetch_add(1, std::memory_order_relaxed);
        std::vector<std::vector<Value>> chunk_accs(static_cast<size_t>(chunks), base_accs);
        std::vector<std::vector<ArrayVal>> priv_bufs(priv.size());
        for (size_t pj = 0; pj < priv.size(); ++pj) {
          const ArrayVal& dst = as_acc(base_accs[priv[pj]]).arr;
          priv_bufs[pj].reserve(static_cast<size_t>(chunks));
          for (int64_t c = 0; c < chunks; ++c) {
            ArrayVal buf = alloc_launch_buf(ScalarType::F64, dst.shape, /*uninit=*/false);
            chunk_accs[static_cast<size_t>(c)][priv[pj]] = AccVal{buf, /*atomic=*/false};
            priv_bufs[pj].push_back(std::move(buf));
          }
        }
        const int64_t per = (n + chunks - 1) / chunks;
        support::parallel_for(chunks, 1, [&](int64_t clo, int64_t chi) {
          for (int64_t c = clo; c < chi; ++c) {
            NPAD_FAULT_SITE("map.general_priv_chunk", FaultKind::Chunk);
            HoistRingGuard arena(opts_.use_plans, /*arena=*/true, /*scoped=*/true);
            const int64_t lo = std::max<int64_t>(c * per, 1);
            const int64_t hi = std::min(n, (c + 1) * per);
            for (int64_t i = lo; i < hi; ++i) {
              std::vector<Value> vals = apply(f, elem_args(i, chunk_accs[static_cast<size_t>(c)]), env);
              store_result(i, vals);
            }
          }
        });
        for (size_t pj = 0; pj < priv.size(); ++pj) {
          ArrayVal dst = as_acc(base_accs[priv[pj]]).arr;
          merge_private(priv_bufs[pj], dst, opts_.grain);
        }
      }
    }
    for (size_t r = 0; r < f.rets.size(); ++r) {
      if (!f.rets[r].is_acc) outs[r] = out_arrays[r];
    }
    return outs;
  }

  // Stream guards (runtime/kernel.hpp): a kernel whose inline SOACs consume
  // stream arguments assumed shape facts the builder could not verify — the
  // rank of a bare free array, length agreement between the streams of one
  // fold. A binding that violates them must not launch: the general path
  // both raises the exact shape error for genuinely mismatched rows and
  // handles shape-polymorphic reuse of the lambda correctly.
  static bool stream_guards_ok(const Kernel& k, const std::vector<ArrayVal>& arrs) {
    for (const auto& g : k.stream_rank_guards) {
      if (static_cast<int32_t>(arrs[static_cast<size_t>(g.slot)].shape.size()) != g.rank) {
        return false;
      }
    }
    for (const auto& g : k.stream_len_guards) {
      const auto& a = arrs[static_cast<size_t>(g.slot_a)].shape;
      const auto& b = arrs[static_cast<size_t>(g.slot_b)].shape;
      if (static_cast<size_t>(g.dim_a) >= a.size() ||
          static_cast<size_t>(g.dim_b) >= b.size()) {
        return false;
      }
      if (a[static_cast<size_t>(g.dim_a)] != b[static_cast<size_t>(g.dim_b)]) return false;
    }
    return true;
  }

  std::optional<KernelLaunch> try_kernel(const OpMap& o, const std::vector<ArrayVal>& inputs,
                                         const Env& env) const {
    // Input ranks are validated in bind_map_launch against the kernel's
    // row-param table: rank-1 element inputs, rank-2 row-stream arguments.
    // The kernel is owned by the process-wide cache (immortal entries) or,
    // with caching disabled, by the launch itself — either way it outlives
    // every use, including launches from nested maps.
    const Kernel* k = nullptr;
    std::shared_ptr<const Kernel> owned;
    if (opts_.use_kernel_cache) {
      bool hit = false;
      k = KernelCache::global().get(o.f, &hit);
      (hit ? stats_->kernel_cache_hits : stats_->kernel_cache_misses)
          .fetch_add(1, std::memory_order_relaxed);
      if (!k) return std::nullopt;
    } else {
      auto kopt = compile_kernel(*o.f);
      if (!kopt) return std::nullopt;
      owned = std::make_shared<const Kernel>(std::move(*kopt));
      k = owned.get();
    }
    return bind_map_launch(k, std::move(owned), o, inputs, env);
  }

  // Binds a map kernel's free variables and accumulators against the
  // environment; nullopt when any binding has the wrong shape. Shared by the
  // per-launch path (try_kernel) and the plan executor, whose MapLaunch steps
  // carry a pre-resolved kernel and only re-bind arguments per execution.
  std::optional<KernelLaunch> bind_map_launch(const Kernel* k, std::shared_ptr<const Kernel> owned,
                                              const OpMap& o, const std::vector<ArrayVal>& inputs,
                                              const Env& env) const {
    KernelLaunch L;
    L.k = k;
    L.owned = std::move(owned);
    // Partition the non-acc arguments: rank-1 element inputs take LoadElem
    // slots in order; rank-2 row arguments bind into the free-array slots
    // reserved by their row-stream params. Any other rank falls back.
    const auto& rows = k->row_param_slots;
    if (!rows.empty() && rows.size() != inputs.size()) return std::nullopt;
    std::vector<uint8_t> from_row(k->free_arrays.size(), 0);
    for (int32_t s : rows) {
      if (s >= 0) from_row[static_cast<size_t>(s)] = 1;
    }
    L.free_array_vals.resize(k->free_arrays.size());
    for (size_t j = 0; j < inputs.size(); ++j) {
      const int32_t s = rows.empty() ? -1 : rows[j];
      if (s < 0) {
        if (inputs[j].rank() != 1) return std::nullopt;
        L.inputs.push_back(inputs[j]);
      } else {
        if (inputs[j].rank() != 2) return std::nullopt;
        L.free_array_vals[static_cast<size_t>(s)] = inputs[j];
      }
    }
    for (ir::Var v : k->free_scalars) {
      const Value& val = env.lookup(v);
      if (is_array(val) || is_acc(val)) return std::nullopt;
      L.free_scalar_vals.push_back(as_f64(val));
    }
    for (size_t i = 0; i < k->free_arrays.size(); ++i) {
      if (from_row[i] != 0) continue;  // filled from the row arguments above
      const Value& val = env.lookup(k->free_arrays[i]);
      if (!is_array(val)) return std::nullopt;
      L.free_array_vals[i] = as_array(val);
    }
    if (!stream_guards_ok(*k, L.free_array_vals)) return std::nullopt;
    for (const auto& ab : k->accs) {
      Value val;
      if (ab.param_index >= 0) {
        val = env.lookup(o.args[static_cast<size_t>(ab.param_index)]);
      } else {
        val = env.lookup(ab.var);
      }
      if (!is_acc(val)) return std::nullopt;
      if (as_acc(val).arr.elem != ScalarType::F64) return std::nullopt;
      L.acc_array_vals.push_back(as_acc(val).arr);
    }
    return L;
  }

  // Attaches the vectorized-tier schedule to a bound launch (after lanes are
  // set — entries are keyed per (kernel, lane width)). Only for immortal
  // kernels: the vexec cache keys by kernel address, so a launch-owned
  // kernel (use_kernel_cache off) must stay on the register machine. A null
  // lookup (unsupported width, failed lowering) is the same no-op.
  void attach_vexec(KernelLaunch& L) const {
    if (!opts_.use_vexec || L.owned != nullptr) return;
    const vexec::Entry* e = vexec::lookup(*L.k, L.lanes);
    if (e == nullptr) return;
    L.vx = e;
    L.vops = vexec::select_ops(opts_.vexec_portable);
    L.vexec_spans = &stats_->vexec_launches;
    stats_->vexec_superinstrs.fetch_add(static_cast<uint64_t>(e->superinstrs),
                                        std::memory_order_relaxed);
  }

  std::vector<Value> run_kernel(KernelLaunch& L, const Lambda& f, const OpMap& o, int64_t n,
                                const Env& env) const {
    const Kernel& k = *L.k;
    // Kernel outputs are fully overwritten (every iteration stores its
    // element), so they take the uninitialized pooled-allocation path.
    for (ScalarType t : k.out_elems) {
      L.outputs.push_back(alloc_launch_buf(t, {n}, /*uninit=*/true));
    }
    L.lanes = std::max(1, opts_.kernel_lanes);
    L.batched_spans = &stats_->batched_launches;
    attach_vexec(L);

    const auto threads = static_cast<int64_t>(support::ThreadPool::global().thread_count());
    const bool nested = support::ThreadPool::in_parallel_region();
    const bool fanout = opts_.parallel && threads > 1 && n > opts_.grain && !nested;
    const size_t naccs = k.accs.size();
    auto updates_of = [&](size_t s) {
      return static_cast<uint64_t>(k.acc_upd_counts[s]) * static_cast<uint64_t>(n);
    };

    if (!fanout) {
      // The whole launch runs on the calling thread. Outside any parallel
      // region no other worker can race on the accumulators, so updates can
      // be plain adds straight into the destination.
      if (naccs > 0) {
        const bool direct = !nested && opts_.privatize_accs;
        if (direct) L.acc_atomic.assign(naccs, 0);
        for (size_t s = 0; s < naccs; ++s) {
          (direct ? stats_->privatized_updates : stats_->atomic_updates)
              .fetch_add(updates_of(s), std::memory_order_relaxed);
        }
      }
      if (opts_.parallel) {
        support::parallel_for(n, opts_.grain, [&](int64_t lo, int64_t hi) {
          NPAD_FAULT_SITE("map.kernel_chunk", FaultKind::Chunk);
          L.run(lo, hi);
        });
      } else {
        NPAD_FAULT_SITE("map.kernel_chunk", FaultKind::Chunk);
        L.run(0, n);
      }
    } else {
      const int64_t chunks = std::min<int64_t>(threads, (n + opts_.grain - 1) / opts_.grain);
      std::vector<uint8_t> priv(naccs, 0);
      bool any_priv = false;
      if (opts_.privatize_accs && n >= opts_.privatize_min_iters) {
        int64_t budget = opts_.privatize_budget;
        for (size_t s = 0; s < naccs; ++s) {
          if (k.acc_upd_counts[s] == 0) continue;
          const int64_t cost = L.acc_array_vals[s].elems() * chunks;
          if (cost <= budget) {
            budget -= cost;
            priv[s] = 1;
            any_priv = true;
          }
        }
      }
      for (size_t s = 0; s < naccs; ++s) {
        if (k.acc_upd_counts[s] == 0) continue;
        (priv[s] ? stats_->privatized_updates : stats_->atomic_updates)
            .fetch_add(updates_of(s), std::memory_order_relaxed);
      }
      if (!any_priv) {
        support::parallel_for(n, opts_.grain, [&](int64_t lo, int64_t hi) {
          NPAD_FAULT_SITE("map.kernel_chunk", FaultKind::Chunk);
          L.run(lo, hi);
        });
      } else {
        stats_->privatized_launches.fetch_add(1, std::memory_order_relaxed);
        std::vector<uint8_t> atomic_flags(naccs);
        for (size_t s = 0; s < naccs; ++s) atomic_flags[s] = priv[s] ? 0 : 1;
        std::vector<KernelLaunch> launches(static_cast<size_t>(chunks), L);
        std::vector<std::vector<ArrayVal>> priv_bufs(naccs);
        for (size_t s = 0; s < naccs; ++s) {
          if (!priv[s]) continue;
          priv_bufs[s].reserve(static_cast<size_t>(chunks));
          for (int64_t c = 0; c < chunks; ++c) {
            ArrayVal buf = alloc_launch_buf(ScalarType::F64, L.acc_array_vals[s].shape,
                                            /*uninit=*/false);
            launches[static_cast<size_t>(c)].acc_array_vals[s] = buf;
            priv_bufs[s].push_back(std::move(buf));
          }
        }
        const int64_t per = (n + chunks - 1) / chunks;
        support::parallel_for(chunks, 1, [&](int64_t clo, int64_t chi) {
          for (int64_t c = clo; c < chi; ++c) {
            NPAD_FAULT_SITE("map.kernel_priv_chunk", FaultKind::Chunk);
            auto& Lc = launches[static_cast<size_t>(c)];
            Lc.acc_atomic = atomic_flags;
            Lc.run(c * per, std::min(n, (c + 1) * per));
          }
        });
        for (size_t s = 0; s < naccs; ++s) {
          if (priv[s]) merge_private(priv_bufs[s], L.acc_array_vals[s], opts_.grain);
        }
      }
    }

    std::vector<Value> outs;
    size_t oi = 0;
    for (size_t r = 0; r < f.rets.size(); ++r) {
      const int32_t slot = k.ret_acc_slot[r];
      if (slot >= 0) {
        const auto& ab = k.accs[static_cast<size_t>(slot)];
        if (ab.param_index >= 0) {
          outs.push_back(env.lookup(o.args[static_cast<size_t>(ab.param_index)]));
        } else {
          outs.push_back(env.lookup(ab.var));
        }
      } else {
        outs.push_back(L.outputs[oi++]);
      }
    }
    return outs;
  }

  // ---------------------------------------------------- flattened nests ---
  //
  // Execution of the opt/flatten.cpp annotations (ir/ast.hpp FlatForm). The
  // flattener guarantees the *structure* (perfect nest, scalar inner lambda,
  // args = outer row params, free variables from the enclosing scope only);
  // the runtime still re-checks everything value-dependent — input ranks,
  // inner-extent regularity, kernel compilability, free-variable binding —
  // and returns nullopt to fall back to the general nested path.

  // Shared by both flat drivers: validates that every launch input is
  // rank-2 with a common inner extent, then routes each inner-SOAC argument
  // (an outer row param) to the rank-1 flat view of the corresponding
  // launch input. Returns the common inner extent m, or nullopt to fall
  // back to the general nested path.
  static std::optional<int64_t> flatten_inputs(const Lambda& f,
                                               const std::vector<Var>& inner_args,
                                               const std::vector<ArrayVal>& inputs,
                                               int64_t n, std::vector<ArrayVal>& flat) {
    int64_t m = -1;
    for (const auto& a : inputs) {
      if (a.rank() != 2) return std::nullopt;
      if (m < 0) m = a.shape[1];
      if (a.shape[1] != m) return std::nullopt;
    }
    if (m < 0) return std::nullopt;
    flat.reserve(inner_args.size());
    for (Var q : inner_args) {
      size_t pi = f.params.size();
      for (size_t i = 0; i < f.params.size(); ++i) {
        if (f.params[i].var == q) {
          pi = i;
          break;
        }
      }
      if (pi >= inputs.size()) return std::nullopt;
      ArrayVal v = inputs[pi];
      v.shape = {n * m};
      flat.push_back(std::move(v));
    }
    return m;
  }

  // FlatForm::Inner: map(λrow. map(g, row…)) over rank-2 inputs runs as one
  // compiled-kernel launch over the fused n·m extent. Rank-2 inputs are
  // dense row-major views, so the rank-1 reinterpretation is free; outputs
  // are allocated flat and reshaped to rank-2 in place. Map kernels are
  // element-wise pure, so batch boundaries straddling rows cannot change
  // results: parallel-off output is bit-identical to per-row launches.
  std::optional<std::vector<Value>> run_flat_map(const OpMap& o,
                                                 const std::vector<ArrayVal>& inputs,
                                                 int64_t n, const Env& env) const {
    const Lambda& f = *o.f;
    const auto* im = std::get_if<OpMap>(&f.body.stms[0].e);
    if (im == nullptr) return std::nullopt;
    std::vector<ArrayVal> flat;
    const std::optional<int64_t> mo = flatten_inputs(f, im->args, inputs, n, flat);
    if (!mo) return std::nullopt;
    const int64_t m = *mo;
    // Compile/bind the inner scalar lambda exactly like a rank-1 map launch
    // (same cache, so a previously-launched inner map reuses its kernel).
    const Kernel* k = nullptr;
    std::shared_ptr<const Kernel> owned;
    if (opts_.use_kernel_cache) {
      bool hit = false;
      k = KernelCache::global().get(im->f, &hit);
      (hit ? stats_->kernel_cache_hits : stats_->kernel_cache_misses)
          .fetch_add(1, std::memory_order_relaxed);
    } else {
      auto kopt = compile_kernel(*im->f);
      if (kopt) {
        owned = std::make_shared<const Kernel>(std::move(*kopt));
        k = owned.get();
      }
    }
    if (k == nullptr || !k->accs.empty() || !k->row_param_slots.empty() ||
        flat.size() != k->num_inputs) {
      return std::nullopt;
    }
    KernelLaunch L;
    L.k = k;
    L.owned = std::move(owned);
    L.inputs = std::move(flat);
    for (ir::Var v : k->free_scalars) {
      const Value& val = env.lookup(v);
      if (is_array(val) || is_acc(val)) return std::nullopt;
      L.free_scalar_vals.push_back(as_f64(val));
    }
    for (ir::Var v : k->free_arrays) {
      const Value& val = env.lookup(v);
      if (!is_array(val)) return std::nullopt;
      L.free_array_vals.push_back(as_array(val));
    }
    if (!stream_guards_ok(*k, L.free_array_vals)) return std::nullopt;
    const int64_t total = n * m;
    for (ScalarType t : k->out_elems) {
      L.outputs.push_back(alloc_launch_buf(t, {total}, /*uninit=*/true));
    }
    L.lanes = std::max(1, opts_.kernel_lanes);
    L.batched_spans = &stats_->batched_launches;
    attach_vexec(L);
    const auto threads = static_cast<int64_t>(support::ThreadPool::global().thread_count());
    const bool fanout = opts_.parallel && threads > 1 && total > opts_.grain &&
                        !support::ThreadPool::in_parallel_region();
    if (fanout) {
      support::parallel_for(total, opts_.grain, [&](int64_t lo, int64_t hi) {
        NPAD_FAULT_SITE("map.flat_chunk", FaultKind::Chunk);
        L.run(lo, hi);
      });
    } else {
      NPAD_FAULT_SITE("map.flat_chunk", FaultKind::Chunk);
      L.run(0, total);
    }
    stats_->flattened_maps.fetch_add(1, std::memory_order_relaxed);
    if (im->fused > 0) stats_->fused_maps.fetch_add(im->fused, std::memory_order_relaxed);
    std::vector<Value> outs;
    outs.reserve(f.rets.size());
    for (size_t r = 0; r < f.rets.size(); ++r) {
      ArrayVal a = L.outputs[r];
      a.shape = {n, m};
      outs.push_back(std::move(a));
    }
    return outs;
  }

  // FlatForm::SegRed: map(λrow. reduce/redomap(op, ne, row…)) runs as a
  // segmented reduction, parallel over segments. A combinable single-input
  // f64 fold takes a hand-rolled segmented loop that mirrors eval_reduce's
  // tier 1 exactly (so parallel-off results are bit-identical to per-row
  // hand folds); every other kernelizable fold reuses the compiled reduce
  // artifact (KernelCache::get_reduce — the same cache entry the per-row
  // path would use) through KernelLaunch::run_segred_chunk, whose
  // per-segment folding replicates run_reduce's lane blocking for the same
  // bit-exactness guarantee.
  std::optional<std::vector<Value>> run_segred(const OpMap& o,
                                               const std::vector<ArrayVal>& inputs,
                                               int64_t n, const Env& env) const {
    const Lambda& f = *o.f;
    const auto* red = std::get_if<OpReduce>(&f.body.stms[0].e);
    if (red == nullptr) return std::nullopt;
    std::vector<ArrayVal> flat;
    const std::optional<int64_t> mo = flatten_inputs(f, red->args, inputs, n, flat);
    if (!mo) return std::nullopt;
    const int64_t m = *mo;

    const auto threads = static_cast<int64_t>(support::ThreadPool::global().thread_count());
    const int64_t total = n * m;
    const bool fanout = opts_.parallel && threads > 1 && total > opts_.grain &&
                        !support::ThreadPool::in_parallel_region();
    // Segmented parallelism is across segments only. A tall-skinny nest —
    // fewer segments than workers, each wide enough to chunk — would cap
    // the launch at n workers, losing the intra-row parallelism the
    // per-row kernel reduces of the general path fan out with; let the
    // general path keep it. (Parallel-off execution never gets here, so
    // the bit-exactness contract is unaffected.)
    if (fanout && n < threads && m >= 2 * opts_.grain) return std::nullopt;
    std::vector<Value> neutral;
    neutral.reserve(red->neutral.size());
    for (const auto& a : red->neutral) neutral.push_back(eval_atom(a, env));

    // grain is calibrated in elements; segments carry m elements each.
    const int64_t seg_grain = std::max<int64_t>(1, opts_.grain / std::max<int64_t>(1, m));

    // Hand tier: the same recognizer and combine loop as eval_reduce tier 1,
    // one segment at a time.
    const std::optional<BinOp> bop =
        red->pre ? std::optional<BinOp>{} : recognize_binop(*red->op);
    if (bop && combinable_f64(*bop) && flat.size() == 1 &&
        flat[0].elem == ScalarType::F64 && neutral.size() == 1 && !is_array(neutral[0]) &&
        !is_acc(neutral[0])) {
      const BinOp cb = *bop;
      const double ne = as_f64(neutral[0]);
      ArrayVal out = alloc_launch_buf(ScalarType::F64, {n}, /*uninit=*/true);
      const double* in = flat[0].buf->f64() + flat[0].offset;
      double* op = out.buf->f64();
      const int64_t seg = m;
      auto body = [&](int64_t slo, int64_t shi) {
        NPAD_FAULT_SITE("segred.hand_chunk", FaultKind::Chunk);
        for (int64_t s = slo; s < shi; ++s) {
          double acc = ne;
          const double* p = in + s * seg;
          for (int64_t i = 0; i < seg; ++i) acc = combine_f64(cb, acc, p[i]);
          op[s] = acc;
        }
      };
      if (fanout) {
        support::parallel_for(n, seg_grain, body);
      } else {
        body(0, n);
      }
      stats_->segred_launches.fetch_add(1, std::memory_order_relaxed);
      stats_->segred_segments.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      return std::vector<Value>{out};
    }

    // Kernel tier.
    if (!opts_.use_kernels) return std::nullopt;
    std::shared_ptr<const Kernel> owned;
    const Kernel* k = reduce_kernel_for(red->op, red->pre, /*scan=*/false, owned);
    auto L = bind_reduce_launch(k, flat, neutral, std::move(owned), env);
    if (!L) return std::nullopt;
    for (size_t j = 0; j < k->reds.size(); ++j) {
      L->outputs.push_back(alloc_launch_buf(red->op->rets[j].elem, {n}, /*uninit=*/true));
    }
    if (fanout) {
      support::parallel_for(n, seg_grain, [&](int64_t lo, int64_t hi) {
        NPAD_FAULT_SITE("segred.kernel_chunk", FaultKind::Chunk);
        L->run_segred_chunk(lo, hi, m);
      });
    } else {
      NPAD_FAULT_SITE("segred.kernel_chunk", FaultKind::Chunk);
      L->run_segred_chunk(0, n, m);
    }
    stats_->segred_launches.fetch_add(1, std::memory_order_relaxed);
    stats_->segred_segments.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
    if (red->fused > 0) stats_->fused_reduces.fetch_add(red->fused, std::memory_order_relaxed);
    std::vector<Value> outs;
    outs.reserve(L->outputs.size());
    for (auto& a : L->outputs) outs.push_back(a);
    return outs;
  }

  // -------------------------------------------------------------- reduce ---
  //
  // Three tiers, fastest first:
  //  1. hand-rolled loop for a plain single rank-1 f64 reduce with a
  //     combinable operator (no VM dispatch beats the register machine);
  //  2. compiled reduction kernel — arbitrary kernelizable scalar fold
  //     bodies, with a redomap pre-lambda compiled into the same program so
  //     fused reduce(op, map(f, xs)) runs load→map→fold in one batched
  //     loop with zero intermediate arrays;
  //  3. the general interpreter (now also the redomap fallback: the
  //     pre-lambda is applied per element before the fold).

  // Binds a reduction/scan kernel's free variables against the environment;
  // nullopt when a free variable has the wrong shape. Reduction kernels are
  // acc-free by construction (runtime/kernel.cpp).
  std::optional<KernelLaunch> bind_reduce_launch(const Kernel* k,
                                                 const std::vector<ArrayVal>& inputs,
                                                 const std::vector<Value>& neutral,
                                                 std::shared_ptr<const Kernel> owned,
                                                 const Env& env) const {
    if (k == nullptr || inputs.size() != k->num_inputs) return std::nullopt;
    KernelLaunch L;
    L.k = k;
    L.owned = std::move(owned);
    L.inputs = inputs;
    for (ir::Var v : k->free_scalars) {
      const Value& val = env.lookup(v);
      if (is_array(val) || is_acc(val)) return std::nullopt;
      L.free_scalar_vals.push_back(as_f64(val));
    }
    for (ir::Var v : k->free_arrays) {
      const Value& val = env.lookup(v);
      if (!is_array(val)) return std::nullopt;
      L.free_array_vals.push_back(as_array(val));
    }
    if (!stream_guards_ok(*k, L.free_array_vals)) return std::nullopt;
    L.red_neutral.reserve(neutral.size());
    for (const auto& v : neutral) {
      if (is_array(v) || is_acc(v)) return std::nullopt;
      L.red_neutral.push_back(as_f64(v));
    }
    L.lanes = std::max(1, opts_.kernel_lanes);
    L.batched_spans = &stats_->batched_launches;
    attach_vexec(L);
    return L;
  }

  // Looks up / compiles the reduction kernel for (op, pre, scan) through the
  // process-wide cache (or privately when caching is off).
  const Kernel* reduce_kernel_for(const LambdaPtr& op, const LambdaPtr& pre, bool scan,
                                  std::shared_ptr<const Kernel>& owned) const {
    if (opts_.use_kernel_cache) {
      bool hit = false;
      const Kernel* k = KernelCache::global().get_reduce(op, pre, scan, &hit);
      (hit ? stats_->kernel_cache_hits : stats_->kernel_cache_misses)
          .fetch_add(1, std::memory_order_relaxed);
      return k;
    }
    auto kopt = compile_reduce_kernel(*op, pre.get(), scan);
    if (!kopt) return nullptr;
    owned = std::make_shared<const Kernel>(std::move(*kopt));
    return owned.get();
  }

  // Converts a kernel partial back to a typed scalar Value.
  static Value partial_value(ScalarType t, double v) {
    switch (t) {
      case ScalarType::F64: return v;
      case ScalarType::I64: return static_cast<int64_t>(v);
      case ScalarType::Bool: return v != 0.0;
    }
    return v;
  }

  std::vector<Value> eval_reduce(const OpReduce& o, Env& env) const {
    const Lambda& op = *o.op;
    std::vector<ArrayVal> arrs;
    arrs.reserve(o.args.size());
    for (auto v : o.args) arrs.push_back(as_array(env.lookup(v)));
    const int64_t n = arrs[0].outer();
    for (size_t j = 0; j < arrs.size(); ++j) {
      if (arrs[j].outer() != n) {
        throw ShapeError("reduce arguments of unequal length: " + env.name_of(o.args[j]) +
                         " has extent " + std::to_string(arrs[j].outer()) + ", expected " +
                         std::to_string(n));
      }
    }
    std::vector<Value> neutral;
    for (const auto& a : o.neutral) neutral.push_back(eval_atom(a, env));
    if (o.fused > 0) stats_->fused_reduces.fetch_add(o.fused, std::memory_order_relaxed);

    const auto threads = static_cast<int64_t>(support::ThreadPool::global().thread_count());
    const bool fanout = opts_.parallel && n >= 2 * opts_.grain && threads > 1 &&
                        !support::ThreadPool::in_parallel_region();
    const int64_t chunks =
        fanout ? std::min<int64_t>(threads, (n + opts_.grain - 1) / opts_.grain) : 1;
    const int64_t per = (n + chunks - 1) / chunks;

    // Tier 1: the hand-rolled combinable-binop loop already runs at memory
    // speed; do not route it through the register machine.
    const std::optional<BinOp> plain_bop =
        o.pre ? std::optional<BinOp>{} : recognize_binop(op);
    const bool hand_fast = plain_bop && combinable_f64(*plain_bop) && o.args.size() == 1 &&
                           arrs[0].rank() == 1 && arrs[0].elem == ScalarType::F64;

    // Tier 2: compiled reduction kernel.
    bool rank1 = true;
    for (const auto& a : arrs) rank1 = rank1 && a.rank() == 1;
    if (opts_.use_kernels && !hand_fast && rank1) {
      std::shared_ptr<const Kernel> owned;
      const Kernel* k = reduce_kernel_for(o.op, o.pre, /*scan=*/false, owned);
      if (auto L = bind_reduce_launch(k, arrs, neutral, std::move(owned), env)) {
        stats_->kernel_reduces.fetch_add(1, std::memory_order_relaxed);
        const size_t nred = k->reds.size();
        std::vector<double> partials = L->red_neutral;
        if (chunks <= 1) {
          NPAD_FAULT_SITE("reduce.kernel_chunk", FaultKind::Chunk);
          L->run_reduce(0, n, partials.data());
        } else {
          std::vector<std::vector<double>> cp(static_cast<size_t>(chunks), partials);
          support::parallel_for(chunks, 1, [&](int64_t clo, int64_t chi) {
            for (int64_t c = clo; c < chi; ++c) {
              NPAD_FAULT_SITE("reduce.kernel_chunk", FaultKind::Chunk);
              L->run_reduce(c * per, std::min(n, (c + 1) * per),
                            cp[static_cast<size_t>(c)].data());
            }
          });
          // Chunk partials tree-merge pairwise through the fold subprogram,
          // the same shape as merge_private — but each partial is only k
          // scalars, so the merge runs on the calling thread.
          NPAD_FAULT_SITE("reduce.partial_merge", FaultKind::Chunk);
          for (size_t stride = 1; stride < cp.size(); stride *= 2) {
            for (size_t i = 0; i + stride < cp.size(); i += 2 * stride) {
              L->combine_partials(cp[i].data(), cp[i + stride].data());
            }
          }
          partials = std::move(cp[0]);
        }
        std::vector<Value> outs;
        outs.reserve(nred);
        for (size_t j = 0; j < nred; ++j) {
          outs.push_back(partial_value(op.rets[j].elem, partials[j]));
        }
        return outs;
      }
    }

    // Tier 3: general interpreter fold (and tier 1's hand loop per chunk).
    // The hand tier reports its own counter so bench JSON can tell the
    // hand / kernel / general tiers apart.
    (hand_fast ? stats_->hand_reduces : stats_->general_reduces)
        .fetch_add(1, std::memory_order_relaxed);
    auto elem = [&](size_t j, int64_t i) -> Value {
      const ArrayVal& a = arrs[j];
      if (a.rank() == 1) return scalar_value(a.elem, a, i);
      return row_view(a, i);
    };
    auto fold_range = [&](int64_t lo, int64_t hi, std::vector<Value> acc) {
      NPAD_FAULT_SITE("reduce.general_chunk", FaultKind::Chunk);
      if (hand_fast) {
        double acc0 = as_f64(acc[0]);
        const double* p = arrs[0].buf->f64() + arrs[0].offset;
        for (int64_t i = lo; i < hi; ++i) acc0 = combine_f64(*plain_bop, acc0, p[i]);
        acc[0] = acc0;
        return acc;
      }
      for (int64_t i = lo; i < hi; ++i) {
        // Move the accumulator through the argument list (no per-iteration
        // vector copy) and reserve the full fold arity once per iteration.
        std::vector<Value> args = std::move(acc);
        args.reserve(op.params.size());
        if (o.pre) {
          std::vector<Value> pargs;
          pargs.reserve(arrs.size());
          for (size_t j = 0; j < arrs.size(); ++j) pargs.push_back(elem(j, i));
          std::vector<Value> es = apply(*o.pre, std::move(pargs), env);
          for (auto& e : es) args.push_back(std::move(e));
        } else {
          for (size_t j = 0; j < arrs.size(); ++j) args.push_back(elem(j, i));
        }
        acc = apply(op, std::move(args), env);
      }
      return acc;
    };

    if (chunks <= 1) return fold_range(0, n, std::move(neutral));
    std::vector<std::vector<Value>> partial(static_cast<size_t>(chunks));
    support::parallel_for(chunks, 1, [&](int64_t clo, int64_t chi) {
      for (int64_t c = clo; c < chi; ++c) {
        const int64_t lo = c * per, hi = std::min(n, lo + per);
        partial[static_cast<size_t>(c)] = fold_range(lo, hi, neutral);
      }
    });
    std::vector<Value> acc = std::move(partial[0]);
    for (size_t c = 1; c < partial.size(); ++c) {
      std::vector<Value> args = std::move(acc);
      for (auto& v : partial[c]) args.push_back(std::move(v));
      acc = apply(op, std::move(args), env);
    }
    return acc;
  }

  // ---------------------------------------------------------------- scan ---
  //
  // Same tiering as eval_reduce. The blocked three-phase structure is shared:
  // phase 1 scans each chunk sequentially (seeded with the neutral element)
  // and records its carry, phase 2 prefix-folds the carries, phase 3
  // rescales every non-first chunk by its prefix. The kernel tier runs
  // phases 1 and 3 through the compiled program (phase 1 is the full
  // program on the strictly sequential scalar engine; phase 3 re-enters the
  // fold subprogram per element), so fused scan-of-map never materializes
  // the mapped intermediate either.
  std::vector<Value> eval_scan(const OpScan& o, Env& env) const {
    const Lambda& op = *o.op;
    std::vector<ArrayVal> arrs;
    arrs.reserve(o.args.size());
    for (auto v : o.args) arrs.push_back(as_array(env.lookup(v)));
    const int64_t n = arrs[0].outer();
    for (size_t j = 0; j < arrs.size(); ++j) {
      if (arrs[j].outer() != n) {
        throw ShapeError("scan arguments of unequal length: " + env.name_of(o.args[j]) +
                         " has extent " + std::to_string(arrs[j].outer()) + ", expected " +
                         std::to_string(n));
      }
    }
    std::vector<Value> neutral;
    for (const auto& a : o.neutral) neutral.push_back(eval_atom(a, env));
    const size_t kres = neutral.size();  // fold results (= outputs)
    if (o.fused > 0) stats_->fused_scans.fetch_add(o.fused, std::memory_order_relaxed);

    const auto threads = static_cast<int64_t>(support::ThreadPool::global().thread_count());
    const bool blocked = opts_.parallel && threads > 1 && n >= 4 * opts_.grain &&
                         !support::ThreadPool::in_parallel_region();
    const int64_t chunks =
        blocked ? std::min<int64_t>(threads, (n + opts_.grain - 1) / opts_.grain) : 1;
    const int64_t per = (n + chunks - 1) / chunks;

    // Tier 1: hand-rolled blocked scan for a single rank-1 f64 array with a
    // combinable operator. Every element of the output is written, so the
    // launch buffer takes the uninitialized pooled-allocation path.
    const std::optional<BinOp> plain_bop =
        o.pre ? std::optional<BinOp>{} : recognize_binop(op);
    if (plain_bop && combinable_f64(*plain_bop) && o.args.size() == 1 &&
        arrs[0].rank() == 1 && arrs[0].elem == ScalarType::F64) {
      stats_->hand_scans.fetch_add(1, std::memory_order_relaxed);
      ArrayVal outv = alloc_launch_buf(ScalarType::F64, {n}, /*uninit=*/true);
      const double* in = arrs[0].buf->f64() + arrs[0].offset;
      double* out = outv.buf->f64();
      const BinOp bop = *plain_bop;
      if (blocked) {
        std::vector<double> sums(static_cast<size_t>(chunks));
        support::parallel_for(chunks, 1, [&](int64_t clo, int64_t chi) {
          for (int64_t c = clo; c < chi; ++c) {
            NPAD_FAULT_SITE("scan.hand_chunk", FaultKind::Chunk);
            const int64_t lo = c * per, hi = std::min(n, lo + per);
            if (lo >= hi) {  // empty trailing chunk (tiny grain): contribute ne
              sums[static_cast<size_t>(c)] = as_f64(neutral[0]);
              continue;
            }
            double acc = in[lo];
            out[lo] = acc;
            for (int64_t i = lo + 1; i < hi; ++i) {
              acc = combine_f64(bop, acc, in[i]);
              out[i] = acc;
            }
            sums[static_cast<size_t>(c)] = acc;
          }
        });
        std::vector<double> pre(static_cast<size_t>(chunks));
        double run = as_f64(neutral[0]);
        for (int64_t c = 0; c < chunks; ++c) {
          pre[static_cast<size_t>(c)] = run;
          run = combine_f64(bop, run, sums[static_cast<size_t>(c)]);
        }
        support::parallel_for(chunks, 1, [&](int64_t clo, int64_t chi) {
          for (int64_t c = clo; c < chi; ++c) {
            if (c == 0) continue;
            NPAD_FAULT_SITE("scan.hand_rescale", FaultKind::Chunk);
            const int64_t lo = c * per, hi = std::min(n, lo + per);
            const double p = pre[static_cast<size_t>(c)];
            for (int64_t i = lo; i < hi; ++i) out[i] = combine_f64(bop, p, out[i]);
          }
        });
      } else {
        NPAD_FAULT_SITE("scan.hand_chunk", FaultKind::Chunk);
        double acc = as_f64(neutral[0]);
        for (int64_t i = 0; i < n; ++i) {
          acc = combine_f64(bop, acc, in[i]);
          out[i] = acc;
        }
      }
      return {outv};
    }

    // Tier 2: compiled scan kernel (phase 1 + phase 3 on the register
    // machine; strictly sequential per chunk — scans are order-dependent).
    bool rank1 = true;
    for (const auto& a : arrs) rank1 = rank1 && a.rank() == 1;
    if (opts_.use_kernels && rank1) {
      std::shared_ptr<const Kernel> owned;
      const Kernel* k = reduce_kernel_for(o.op, o.pre, /*scan=*/true, owned);
      if (auto L = bind_reduce_launch(k, arrs, neutral, std::move(owned), env)) {
        stats_->kernel_scans.fetch_add(1, std::memory_order_relaxed);
        for (ScalarType t : k->out_elems) {
          L->outputs.push_back(alloc_launch_buf(t, {n}, /*uninit=*/true));
        }
        if (chunks <= 1) {
          NPAD_FAULT_SITE("scan.kernel_chunk", FaultKind::Chunk);
          std::vector<double> carry = L->red_neutral;
          L->run_scan_chunk(0, n, carry.data());
        } else {
          std::vector<std::vector<double>> carries(static_cast<size_t>(chunks),
                                                   L->red_neutral);
          support::parallel_for(chunks, 1, [&](int64_t clo, int64_t chi) {
            for (int64_t c = clo; c < chi; ++c) {
              NPAD_FAULT_SITE("scan.kernel_chunk", FaultKind::Chunk);
              L->run_scan_chunk(c * per, std::min(n, (c + 1) * per),
                                carries[static_cast<size_t>(c)].data());
            }
          });
          std::vector<std::vector<double>> prefixes(static_cast<size_t>(chunks));
          std::vector<double> run = L->red_neutral;
          for (int64_t c = 0; c < chunks; ++c) {
            prefixes[static_cast<size_t>(c)] = run;
            L->combine_partials(run.data(), carries[static_cast<size_t>(c)].data());
          }
          support::parallel_for(chunks, 1, [&](int64_t clo, int64_t chi) {
            for (int64_t c = clo; c < chi; ++c) {
              if (c == 0) continue;  // chunk 0 already started from neutral
              NPAD_FAULT_SITE("scan.kernel_rescale", FaultKind::Chunk);
              L->scan_rescale(c * per, std::min(n, (c + 1) * per),
                              prefixes[static_cast<size_t>(c)].data());
            }
          });
        }
        std::vector<Value> res;
        for (auto& a : L->outputs) res.push_back(a);
        return res;
      }
    }

    // Tier 3: general sequential scan (redomap fallback applies the
    // pre-lambda per element). Output buffers are allocated from the first
    // computed accumulator — with a pre-lambda the result types need not
    // match the argument types — and are fully overwritten, so they take
    // the uninitialized pooled path.
    stats_->general_scans.fetch_add(1, std::memory_order_relaxed);
    NPAD_FAULT_SITE("scan.general", FaultKind::Chunk);
    std::vector<ArrayVal> outs(kres);
    if (n == 0) {
      for (size_t j = 0; j < kres; ++j) {
        if (!o.pre) {
          // Plain form: the output mirrors the argument's shape (inner
          // extents included) even when empty.
          outs[j] = ArrayVal::alloc(arrs[j].elem, arrs[j].shape);
          continue;
        }
        // Redomap form: the fold-result inner extents are unobservable with
        // no elements; zero them.
        std::vector<int64_t> shp{0};
        for (int d = 0; d < op.rets[j].rank; ++d) shp.push_back(0);
        outs[j] = ArrayVal::alloc(op.rets[j].elem, std::move(shp));
      }
    }
    std::vector<Value> acc = std::move(neutral);
    for (int64_t i = 0; i < n; ++i) {
      std::vector<Value> args = std::move(acc);
      args.reserve(op.params.size());
      if (o.pre) {
        std::vector<Value> pargs;
        pargs.reserve(arrs.size());
        for (size_t j = 0; j < arrs.size(); ++j) {
          const ArrayVal& a = arrs[j];
          pargs.push_back(a.rank() == 1 ? scalar_value(a.elem, a, i) : Value(row_view(a, i)));
        }
        std::vector<Value> es = apply(*o.pre, std::move(pargs), env);
        for (auto& e : es) args.push_back(std::move(e));
      } else {
        for (size_t j = 0; j < arrs.size(); ++j) {
          const ArrayVal& a = arrs[j];
          args.push_back(a.rank() == 1 ? scalar_value(a.elem, a, i) : Value(row_view(a, i)));
        }
      }
      acc = apply(op, std::move(args), env);
      for (size_t j = 0; j < kres; ++j) {
        if (i == 0) {
          std::vector<int64_t> shp{n};
          if (is_array(acc[j])) {
            const auto& a = as_array(acc[j]);
            shp.insert(shp.end(), a.shape.begin(), a.shape.end());
            outs[j] = alloc_launch_buf(a.elem, std::move(shp), /*uninit=*/true);
          } else {
            outs[j] = alloc_launch_buf(op.rets[j].elem, std::move(shp), /*uninit=*/true);
          }
        }
        if (is_array(acc[j])) {
          copy_into(outs[j], i * as_array(acc[j]).elems(), as_array(acc[j]));
        } else {
          store_scalar(outs[j], i, acc[j]);
        }
      }
    }
    std::vector<Value> res;
    for (auto& a : outs) res.push_back(a);
    return res;
  }

  // ---------------------------------------------------------------- hist ---
  //
  // Generalized histograms (reduce_by_index), tiered like reduce:
  //  1. hand-rolled combinable-binop loop over scalar f64 bins. Sequential
  //     when the launch must not fan out (opts_.parallel off, one worker,
  //     nested region, small n); per-chunk private subhistograms seeded with
  //     the neutral element and merged into the destination in chunk order
  //     (each chunk is a contiguous element block, so per-bin update order
  //     is preserved — associativity suffices) when the m x chunks
  //     footprint fits privatize_budget; atomic-CAS updates straight into
  //     the shared destination otherwise (combinable binops are
  //     commutative, so arbitrary interleaving is sound).
  //  2. compiled kernel for arbitrary kernelizable combine lambdas and the
  //     fused histomap pre-lambda — the same compiled artifact (and cache
  //     entry) as the reduce form of the fold. Privatized subhistograms
  //     merge bin-wise through the fold subprogram. There is no atomic
  //     fallback here: an arbitrary fold is not known to be commutative, so
  //     an over-budget destination runs the strictly sequential kernel loop.
  //  3. the strictly sequential general interpreter for everything else
  //     (vector bins, non-f64 destinations, non-kernelizable operators),
  //     applying the pre-lambda per element when present.
  Value eval_hist(const OpHist& o, Env& env) const {
    const Lambda& op = *o.op;
    ArrayVal dest0 = as_array(env.lookup(o.dest));
    ArrayVal dest = (dest0.whole() && dest0.buf.use_count() <= 2 + ring_refs(dest0))
                        ? dest0
                        : compact_copy(dest0);
    const ArrayVal inds = as_array(env.lookup(o.inds));
    const ArrayVal vals = as_array(env.lookup(o.vals));
    const int64_t n = inds.outer();
    const int64_t m = dest.outer();
    const int64_t row = dest.rank() > 1 ? dest.row_elems() : 1;
    if (o.fused > 0) stats_->fused_hists.fetch_add(o.fused, std::memory_order_relaxed);

    const auto threads = static_cast<int64_t>(support::ThreadPool::global().thread_count());
    const bool fanout = opts_.parallel && threads > 1 && n > opts_.grain &&
                        !support::ThreadPool::in_parallel_region();
    const int64_t chunks =
        fanout ? std::min<int64_t>(threads, (n + opts_.grain - 1) / opts_.grain) : 1;
    const int64_t per = (n + chunks - 1) / chunks;
    const bool privat = fanout && opts_.privatize_accs && n >= opts_.privatize_min_iters &&
                        m * row * chunks <= opts_.privatize_budget;

    // Allocates the per-chunk private subhistograms, every bin seeded with
    // the fold's neutral element (pool buffers are recycled, so the fill is
    // always explicit).
    auto alloc_subhists = [&](double neutral) {
      std::vector<ArrayVal> subs;
      subs.reserve(static_cast<size_t>(chunks));
      for (int64_t c = 0; c < chunks; ++c) {
        ArrayVal s = alloc_launch_buf(ScalarType::F64, dest.shape, /*uninit=*/true);
        std::fill_n(s.buf->f64(), m, neutral);
        subs.push_back(std::move(s));
      }
      return subs;
    };

    // Tier 1: hand-rolled combinable binop over scalar f64 bins.
    const std::optional<BinOp> bop = o.pre ? std::optional<BinOp>{} : recognize_binop(op);
    if (bop && combinable_f64(*bop) && dest.rank() == 1 && dest.elem == ScalarType::F64 &&
        vals.elem == ScalarType::F64) {
      stats_->general_hists.fetch_add(1, std::memory_order_relaxed);
      const BinOp cb = *bop;
      double* d = dest.buf->f64() + dest.offset;
      auto fold_range = [&](double* bins, int64_t lo, int64_t hi) {
        NPAD_FAULT_SITE("hist.hand_chunk", FaultKind::Chunk);
        int64_t performed = 0;
        for (int64_t i = lo; i < hi; ++i) {
          const int64_t b = inds.get_i64(i);
          if (b < 0 || b >= m) continue;
          bins[b] = combine_f64(cb, bins[b], vals.get_f64(i));
          ++performed;
        }
        return performed;
      };
      if (!fanout) {
        // Bit-exact sequential semantics: the W=1 / parallel-off contract.
        stats_->privatized_hist_updates.fetch_add(static_cast<uint64_t>(fold_range(d, 0, n)),
                                                  std::memory_order_relaxed);
        return dest;
      }
      if (privat) {
        std::vector<ArrayVal> subs = alloc_subhists(as_f64(eval_atom(o.neutral, env)));
        std::atomic<int64_t> performed{0};
        support::parallel_for(chunks, 1, [&](int64_t clo, int64_t chi) {
          for (int64_t c = clo; c < chi; ++c) {
            performed.fetch_add(fold_range(subs[static_cast<size_t>(c)].buf->f64(), c * per,
                                           std::min(n, (c + 1) * per)),
                                std::memory_order_relaxed);
          }
        });
        stats_->privatized_hist_updates.fetch_add(
            static_cast<uint64_t>(performed.load()), std::memory_order_relaxed);
        // Bin-parallel merge; per bin the chunks combine in element order.
        NPAD_FAULT_SITE("hist.merge", FaultKind::Chunk);
        support::parallel_for(m, opts_.grain, [&](int64_t lo, int64_t hi) {
          for (int64_t b = lo; b < hi; ++b) {
            double acc = d[b];
            for (const auto& s : subs) acc = combine_f64(cb, acc, s.buf->f64()[b]);
            d[b] = acc;
          }
        });
        return dest;
      }
      // Atomic-CAS fallback for destinations too large to privatize.
      std::atomic<int64_t> performed{0};
      support::parallel_for(n, opts_.grain, [&](int64_t lo, int64_t hi) {
        NPAD_FAULT_SITE("hist.atomic_chunk", FaultKind::Chunk);
        int64_t local = 0;
        for (int64_t i = lo; i < hi; ++i) {
          const int64_t b = inds.get_i64(i);
          if (b < 0 || b >= m) continue;
          atomic_combine_f64(cb, d + b, vals.get_f64(i));
          ++local;
        }
        performed.fetch_add(local, std::memory_order_relaxed);
      });
      stats_->atomic_hist_updates.fetch_add(static_cast<uint64_t>(performed.load()),
                                            std::memory_order_relaxed);
      return dest;
    }

    // Tier 2: compiled combine kernel (scalar f64 bins, []i64 inds).
    if (opts_.use_kernels && dest.rank() == 1 && dest.elem == ScalarType::F64 &&
        vals.rank() == 1 && inds.elem == ScalarType::I64) {
      std::shared_ptr<const Kernel> owned;
      const Kernel* k = reduce_kernel_for(o.op, o.pre, /*scan=*/false, owned);
      std::vector<Value> neutral{eval_atom(o.neutral, env)};
      if (auto L = bind_reduce_launch(k, {vals}, neutral, std::move(owned), env)) {
        stats_->kernel_hists.fetch_add(1, std::memory_order_relaxed);
        double* d = dest.buf->f64() + dest.offset;
        const int64_t* ip = inds.buf->i64() + inds.offset;
        if (!privat) {
          // Sequential kernel loop (also the over-budget path: arbitrary
          // folds have no atomic fallback).
          NPAD_FAULT_SITE("hist.kernel_chunk", FaultKind::Chunk);
          stats_->privatized_hist_updates.fetch_add(
              static_cast<uint64_t>(L->run_hist_chunk(0, n, d, m, ip)),
              std::memory_order_relaxed);
          return dest;
        }
        std::vector<ArrayVal> subs = alloc_subhists(L->red_neutral[0]);
        std::atomic<int64_t> performed{0};
        support::parallel_for(chunks, 1, [&](int64_t clo, int64_t chi) {
          for (int64_t c = clo; c < chi; ++c) {
            NPAD_FAULT_SITE("hist.kernel_chunk", FaultKind::Chunk);
            performed.fetch_add(L->run_hist_chunk(c * per, std::min(n, (c + 1) * per),
                                                  subs[static_cast<size_t>(c)].buf->f64(), m,
                                                  ip),
                                std::memory_order_relaxed);
          }
        });
        stats_->privatized_hist_updates.fetch_add(
            static_cast<uint64_t>(performed.load()), std::memory_order_relaxed);
        // Bin-parallel merge through the fold subprogram, chunks in order.
        NPAD_FAULT_SITE("hist.kernel_merge", FaultKind::Chunk);
        support::parallel_for(m, opts_.grain, [&](int64_t lo, int64_t hi) {
          for (const auto& s : subs) L->fold_bins(d + lo, s.buf->f64() + lo, hi - lo);
        });
        return dest;
      }
    }

    // Tier 3: strictly sequential general path (applies the histomap
    // pre-lambda per element when present).
    stats_->general_hists.fetch_add(1, std::memory_order_relaxed);
    NPAD_FAULT_SITE("hist.general", FaultKind::Chunk);
    int64_t performed = 0;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t b = inds.get_i64(i);
      if (b < 0 || b >= m) continue;
      Value cur = dest.rank() == 1 ? scalar_value(dest.elem, dest, b) : Value(row_view(dest, b));
      Value v = vals.rank() == 1 ? scalar_value(vals.elem, vals, i) : Value(row_view(vals, i));
      if (o.pre) v = apply(*o.pre, {std::move(v)}, env)[0];
      std::vector<Value> r = apply(op, {cur, v}, env);
      if (is_array(r[0])) {
        copy_into(dest, b * row, as_array(r[0]));
      } else {
        store_scalar(dest, b, r[0]);
      }
      ++performed;
    }
    stats_->privatized_hist_updates.fetch_add(static_cast<uint64_t>(performed),
                                              std::memory_order_relaxed);
    return dest;
  }

  // ------------------------------------------------------------- scatter ---
  Value eval_scatter(const OpScatter& o, Env& env) const {
    ArrayVal dest0 = as_array(env.lookup(o.dest));
    ArrayVal dest = (dest0.whole() && dest0.buf.use_count() <= 2 + ring_refs(dest0))
                        ? dest0
                        : compact_copy(dest0);
    const ArrayVal inds = as_array(env.lookup(o.inds));
    const ArrayVal vals = as_array(env.lookup(o.vals));
    const int64_t n = inds.outer();
    const int64_t m = dest.outer();
    const int64_t row = dest.rank() > 1 ? dest.row_elems() : 1;
    const auto body = [&](int64_t lo, int64_t hi) {
      NPAD_FAULT_SITE("scatter.chunk", FaultKind::Chunk);
      for (int64_t i = lo; i < hi; ++i) {
        const int64_t b = inds.get_i64(i);
        if (b < 0 || b >= m) continue;
        if (dest.rank() == 1) {
          store_scalar(dest, b, scalar_value(vals.elem, vals, i));
        } else {
          copy_into(dest, b * row, row_view(vals, i));
        }
      }
    };
    if (opts_.parallel) {
      support::parallel_for(n, opts_.grain, body);
    } else {
      body(0, n);
    }
    return dest;
  }

  // ------------------------------------------------------------- withacc ---
  std::vector<Value> eval_withacc(const OpWithAcc& o, Env& env) const {
    NPAD_FAULT_SITE("withacc.body", FaultKind::Chunk);
    const Lambda& f = *o.f;
    std::vector<Value> args;
    for (Var a : o.arrs) {
      ArrayVal arr = as_array(env.lookup(a));
      ArrayVal owned =
          (arr.whole() && arr.buf.use_count() <= 2 + ring_refs(arr)) ? arr : compact_copy(arr);
      args.push_back(AccVal{std::move(owned)});
    }
    std::vector<Value> res = apply(f, std::move(args), env);
    std::vector<Value> out;
    for (size_t i = 0; i < res.size(); ++i) {
      if (i < o.arrs.size()) {
        out.push_back(as_acc(res[i]).arr);
      } else {
        out.push_back(std::move(res[i]));
      }
    }
    return out;
  }

  // Lambda-body plan table of the resolved program being run (nullptr when
  // plans are off): set once by Interp::run before evaluation starts, read
  // by apply() on every application. The table is immutable after plan
  // compilation, so concurrent readers need no synchronization.
  void set_lambda_plans(const ProgPlans* plans) {
    lambda_plans_ = plans != nullptr ? &plans->lambdas : nullptr;
  }

private:
  InterpOptions opts_;
  InterpStats* stats_;
  const std::unordered_map<const Lambda*, std::unique_ptr<const Plan>>* lambda_plans_ = nullptr;
};

} // namespace

std::vector<Value> Interp::run(const ir::Prog& p, const std::vector<Value>& args) const {
  if (args.size() != p.fn.params.size()) {
    throw TypeError("program expects " + std::to_string(p.fn.params.size()) +
                    " arguments, got " + std::to_string(args.size()));
  }
  // Slot-resolve (cached process-wide): the interpreter evaluates the
  // alpha-renamed clone, whose variables index flat frames.
  std::shared_ptr<const ResolvedProg> rp = ProgCache::global().get(p);
  EvalCtx ctx(*this);
  Env env(*rp, rp->root_activation);
  for (size_t i = 0; i < args.size(); ++i) env.bind(rp->fn.params[i].var, args[i]);
  // Compiled execution plans (runtime/plan.hpp): lowered once per resolved
  // program, cached process-wide. Plans pre-bind map kernels from the kernel
  // cache, so they are only sound to execute when kernels are enabled.
  if (opts_.use_plans && opts_.use_kernels) {
    uint64_t compiled = 0;
    const ProgPlans* plans = PlanCache::global().get(rp, &compiled);
    if (compiled > 0) stats_.plans_compiled.fetch_add(compiled, std::memory_order_relaxed);
    ctx.set_lambda_plans(plans);
    // The run-level launch arena: liveness releases make straight-line and
    // branchy plan intermediates sole-owner mid-run, so this ring recycles
    // them exactly like the loop ring recycles loop scratch. Installed
    // inside the run (not around it): an unwinding fault tears it down and
    // restores the pool footprint before the error reaches the caller.
    HoistRingGuard arena(/*enable=*/true, /*arena=*/true);
    return ctx.eval_body_planned(rp->fn.body, *plans->top, env);
  }
  return ctx.eval_body(rp->fn.body, env);
}

std::vector<Value> run_prog(const ir::Prog& p, const std::vector<Value>& args,
                            InterpOptions opts) {
  Interp in(opts);
  return in.run(p, args);
}

} // namespace npad::rt
