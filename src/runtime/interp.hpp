#pragma once

// Parallel interpreter for npad IR: the execution substrate standing in for
// the paper's GPU backend. SOACs execute on the global thread pool; scalar
// map lambdas take the kernel-compiled fast path (runtime/kernel.hpp);
// accumulators lower to atomic adds.

#include <atomic>
#include <cstdint>
#include <vector>

#include "ir/ast.hpp"
#include "runtime/value.hpp"

namespace npad::rt {

struct InterpOptions {
  bool parallel = true;      // use the thread pool for SOACs
  bool use_kernels = true;   // enable the kernel-compiled map fast path
  int64_t grain = 2048;      // minimum elements per parallel chunk
};

struct InterpStats {
  std::atomic<uint64_t> kernel_maps{0};    // maps run through compiled kernels
  std::atomic<uint64_t> general_maps{0};   // maps run through the interpreter
};

class Env;

class Interp {
public:
  explicit Interp(InterpOptions opts = {}) : opts_(opts) {}

  std::vector<Value> run(const ir::Prog& p, const std::vector<Value>& args) const;

  const InterpStats& stats() const { return stats_; }
  const InterpOptions& options() const { return opts_; }

private:
  friend class EvalCtx;
  InterpOptions opts_;
  mutable InterpStats stats_;
};

// One-shot convenience entry point.
std::vector<Value> run_prog(const ir::Prog& p, const std::vector<Value>& args,
                            InterpOptions opts = {});

} // namespace npad::rt
