#pragma once

// Parallel interpreter for npad IR: the execution substrate standing in for
// the paper's GPU backend. SOACs execute on the global thread pool; scalar
// map lambdas take the kernel-compiled fast path (runtime/kernel.hpp), with
// compiled kernels cached process-wide (runtime/kernel_cache.hpp); regular
// nested SOACs annotated by opt/flatten.cpp run as single collapsed or
// segmented launches instead of one inner launch per row; variable
// environments are slot-resolved flat frames (runtime/resolve.hpp); and
// accumulator updates are privatized into per-worker buffers when profitable,
// falling back to atomic adds. See src/runtime/README.md.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/ast.hpp"
#include "runtime/value.hpp"

namespace npad::rt {

// Default eval recursion-depth limit: NPAD_MAX_EVAL_DEPTH if set, else 512 —
// deep enough for any real program the front end emits, shallow enough that a
// runaway recursive structure throws npad::ResourceError long before the C++
// stack overflows.
int default_max_eval_depth();

// Vectorized-tier defaults from the environment: NPAD_VEXEC=0 disables the
// tier (register machine everywhere), NPAD_VEXEC=portable keeps it on but
// pins the portable (non-AVX2) handler build. Unset/any other value: on,
// with runtime CPU detection choosing the ISA.
bool default_use_vexec();
bool default_vexec_portable();

// Execution-plan default from the environment: NPAD_USE_PLANS=0 disables
// compiled execution plans (per-statement eval dispatch everywhere). Unset
// or any other value: on.
bool default_use_plans();

struct InterpOptions {
  bool parallel = true;         // use the thread pool for SOACs
  bool use_kernels = true;      // enable the kernel-compiled map fast path
  bool use_kernel_cache = true; // reuse compiled kernels across launches
  bool privatize_accs = true;   // per-worker accumulator buffers + merge
  // Compiled execution plans (runtime/plan.hpp): route the top-level body
  // and plannable OpLoop bodies through cached straight-line step schedules
  // (pre-bound kernels, folded scalar glue, hoisted loop buffers) instead of
  // per-statement eval dispatch. Requires use_kernels; anything
  // non-plannable falls back to the general interpreter per statement.
  // NPAD_USE_PLANS=0 disables the default.
  bool use_plans = default_use_plans();
  // Kernel lane width W: compiled maps execute in batches of W iterations
  // over an SoA register file (amortized dispatch, contiguous element
  // loads/stores), with a scalar tail loop. 1 = scalar execution.
  int kernel_lanes = 8;
  int64_t grain = 2048;         // minimum elements per parallel chunk
  // Privatization threshold: an accumulator is privatized only while the
  // total private footprint of the launch (sum over privatized accumulators
  // of elems x chunks) stays within this many f64 elements.
  int64_t privatize_budget = int64_t{1} << 22;
  // Minimum map extent before privatization is considered; smaller launches
  // keep atomic updates (contention is bounded by the extent anyway).
  int64_t privatize_min_iters = 4096;
  // Resource governance: maximum nesting depth of lambda/loop-body frames
  // before evaluation aborts with npad::ResourceError (<= 0 disables).
  int max_eval_depth = default_max_eval_depth();
  // Vectorized execution tier (runtime/vexec.hpp): lower cached kernels to
  // pre-decoded SIMD schedules and dispatch launches through them. Bit-exact
  // vs the register machine by contract; the register machine remains the
  // fallback for kernels that do not lower. Only applies to cache- or
  // plan-owned kernels (use_kernel_cache launches or plan steps).
  bool use_vexec = default_use_vexec();
  // Pin the portable (auto-vectorized, no AVX2) vexec handler build even
  // when the CPU supports AVX2 — conformance coverage for non-SIMD hosts.
  bool vexec_portable = default_vexec_portable();
};

struct InterpStats {
  std::atomic<uint64_t> kernel_maps{0};          // maps run through compiled kernels
  std::atomic<uint64_t> general_maps{0};         // maps run through the interpreter
  std::atomic<uint64_t> kernel_cache_hits{0};    // launches that skipped compilation
  std::atomic<uint64_t> kernel_cache_misses{0};  // launches that compiled (or analyzed)
  std::atomic<uint64_t> privatized_updates{0};   // non-atomic accumulator updates
  std::atomic<uint64_t> atomic_updates{0};       // atomic RMW accumulator updates
  std::atomic<uint64_t> privatized_launches{0};  // launches that privatized >=1 acc
  std::atomic<uint64_t> pool_hits{0};            // launch buffers recycled from the pool
  std::atomic<uint64_t> pool_misses{0};          // launch buffers freshly heap-allocated
  std::atomic<uint64_t> fused_maps{0};           // producer maps eliminated by fusion (per launch)
  std::atomic<uint64_t> batched_launches{0};     // kernel spans that ran >=1 full lane batch
  std::atomic<uint64_t> kernel_reduces{0};       // reduces run through compiled kernels
  std::atomic<uint64_t> hand_reduces{0};         // reduces run through the hand binop loop
  std::atomic<uint64_t> general_reduces{0};      // reduces run through the interpreter
  std::atomic<uint64_t> fused_reduces{0};        // producer maps folded into reduce launches
  std::atomic<uint64_t> kernel_scans{0};         // scans run through compiled kernels
  std::atomic<uint64_t> hand_scans{0};           // scans run through the hand binop loop
  std::atomic<uint64_t> general_scans{0};        // scans run through the interpreter
  std::atomic<uint64_t> fused_scans{0};          // producer maps folded into scan launches
  std::atomic<uint64_t> flattened_maps{0};       // nested maps run as one collapsed launch
  std::atomic<uint64_t> segred_launches{0};      // map-of-reduce nests run segmented
  std::atomic<uint64_t> segred_segments{0};      // total segments folded by segred launches
  std::atomic<uint64_t> kernel_hists{0};         // hists run through compiled kernels
  std::atomic<uint64_t> general_hists{0};        // hists run through the interpreter
  std::atomic<uint64_t> fused_hists{0};          // producer maps folded into hist launches
  std::atomic<uint64_t> privatized_hist_updates{0};  // non-atomic hist bin updates
  std::atomic<uint64_t> atomic_hist_updates{0};      // atomic RMW hist bin updates
  std::atomic<uint64_t> plans_compiled{0};       // execution plans lowered (incl. loop bodies)
  std::atomic<uint64_t> plan_launches{0};        // SOAC launches issued from plan steps
  std::atomic<uint64_t> plan_scalar_blocks{0};   // kernelized scalar-glue block executions
  std::atomic<uint64_t> plan_hoisted_buffers{0}; // launch buffers reused via loop hoisting
  std::atomic<uint64_t> plan_lambda_bodies{0};   // apply() calls routed through lambda-body plans
  std::atomic<uint64_t> plan_if_arms{0};         // OpIf arms executed as nested plan steps
  std::atomic<uint64_t> arena_reuses{0};         // launch buffers recycled by arenas outside hoisted loops
  std::atomic<uint64_t> vexec_launches{0};       // spans dispatched through the vexec tier
  std::atomic<uint64_t> vexec_superinstrs{0};    // fused superinstrs in programs bound to launches
  std::atomic<uint64_t> batched_prog_runs{0};    // stacked multi-request runs (run_batched, B>1)
  std::atomic<uint64_t> batched_prog_requests{0};// requests entering run_batched (any B)

  // Snapshot for machine-readable reporting (bench JSON).
  std::map<std::string, uint64_t> counters() const {
    return {
        {"kernel_maps", kernel_maps.load()},
        {"general_maps", general_maps.load()},
        {"kernel_cache_hits", kernel_cache_hits.load()},
        {"kernel_cache_misses", kernel_cache_misses.load()},
        {"privatized_updates", privatized_updates.load()},
        {"atomic_updates", atomic_updates.load()},
        {"privatized_launches", privatized_launches.load()},
        {"pool_hits", pool_hits.load()},
        {"pool_misses", pool_misses.load()},
        {"fused_maps", fused_maps.load()},
        {"batched_launches", batched_launches.load()},
        {"kernel_reduces", kernel_reduces.load()},
        {"hand_reduces", hand_reduces.load()},
        {"general_reduces", general_reduces.load()},
        {"fused_reduces", fused_reduces.load()},
        {"kernel_scans", kernel_scans.load()},
        {"hand_scans", hand_scans.load()},
        {"general_scans", general_scans.load()},
        {"fused_scans", fused_scans.load()},
        {"flattened_maps", flattened_maps.load()},
        {"segred_launches", segred_launches.load()},
        {"segred_segments", segred_segments.load()},
        {"kernel_hists", kernel_hists.load()},
        {"general_hists", general_hists.load()},
        {"fused_hists", fused_hists.load()},
        {"privatized_hist_updates", privatized_hist_updates.load()},
        {"atomic_hist_updates", atomic_hist_updates.load()},
        {"plans_compiled", plans_compiled.load()},
        {"plan_launches", plan_launches.load()},
        {"plan_scalar_blocks", plan_scalar_blocks.load()},
        {"plan_hoisted_buffers", plan_hoisted_buffers.load()},
        {"plan_lambda_bodies", plan_lambda_bodies.load()},
        {"plan_if_arms", plan_if_arms.load()},
        {"arena_reuses", arena_reuses.load()},
        {"vexec_launches", vexec_launches.load()},
        {"vexec_superinstrs", vexec_superinstrs.load()},
        {"batched_prog_runs", batched_prog_runs.load()},
        {"batched_prog_requests", batched_prog_requests.load()},
    };
  }
};

class Interp {
public:
  explicit Interp(InterpOptions opts = {}) : opts_(opts) {}

  std::vector<Value> run(const ir::Prog& p, const std::vector<Value>& args) const;

  // Batched entry point (runtime/batch.cpp): executes B same-program request
  // argument lists as one launch of the program's batched form — every param
  // lifted one rank and the original body mapped over the stacked axis — and
  // de-stacks the results back into per-request vectors. B == 1 passes
  // through to run(). With parallelism off this is bit-exact against running
  // the B requests sequentially through run().
  std::vector<std::vector<Value>> run_batched(
      const ir::Prog& p, const std::vector<std::vector<Value>>& batch) const;

  const InterpStats& stats() const { return stats_; }
  const InterpOptions& options() const { return opts_; }

private:
  friend class EvalCtx;
  InterpOptions opts_;
  mutable InterpStats stats_;
};

// One-shot convenience entry point.
std::vector<Value> run_prog(const ir::Prog& p, const std::vector<Value>& args,
                            InterpOptions opts = {});

} // namespace npad::rt
