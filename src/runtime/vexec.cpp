// vexec lowering: KInstr program -> pre-decoded VInstr schedule (prologue
// extraction, superinstruction fusion, fused loop forms), plus the immortal
// (kernel, lanes) entry cache and runtime ISA dispatch. All transforms here
// are value-preserving per lane: fused handlers execute the same IEEE
// operation sequence with the same operand order (see vexec_engine.inc), so
// the lowered program is bit-exact against the register machine.

#include "runtime/vexec.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

namespace npad::rt::vexec {

namespace {

// ---- usage analysis -------------------------------------------------------

// Per-register read/write counts over the whole program, plus the `special`
// set: registers the launch mechanics seed or read from outside the
// instruction stream (free scalars, reduction acc/elem registers, loop
// trip/ivar/acc/neutral). Fusion may only coalesce away plain temporaries —
// reads == 1 && writes == 1 && !special.
struct Usage {
  std::vector<int> reads, writes;
  std::vector<uint8_t> special;

  bool ok_temp(int32_t r) const {
    return r >= 0 && reads[static_cast<size_t>(r)] == 1 &&
           writes[static_cast<size_t>(r)] == 1 && special[static_cast<size_t>(r)] == 0;
  }
};

Usage analyze(const Kernel& k) {
  Usage u;
  const auto n = static_cast<size_t>(k.num_regs);
  u.reads.assign(n, 0);
  u.writes.assign(n, 0);
  u.special.assign(n, 0);
  for (int32_t r : k.free_scalar_regs) u.special[static_cast<size_t>(r)] = 1;
  for (const auto& rs : k.reds) {
    u.special[static_cast<size_t>(rs.acc_reg)] = 1;
    u.special[static_cast<size_t>(rs.elem_reg)] = 1;
  }
  for (const auto& il : k.loops) {
    u.special[static_cast<size_t>(il.trip_reg)] = 1;
    u.special[static_cast<size_t>(il.ivar_reg)] = 1;
    if (il.acc_reg >= 0) u.special[static_cast<size_t>(il.acc_reg)] = 1;
    if (il.neutral_reg >= 0) u.special[static_cast<size_t>(il.neutral_reg)] = 1;
    for (int32_t a : il.more_accs) u.special[static_cast<size_t>(a)] = 1;
    for (int32_t n2 : il.more_neutrals) u.special[static_cast<size_t>(n2)] = 1;
  }
  auto rd = [&](int32_t r) {
    if (r >= 0) ++u.reads[static_cast<size_t>(r)];
  };
  for (const auto& in : k.instrs) {
    switch (in.op) {
      case KOp::InlineLoop: break;  // mechanics touch only special registers
      case KOp::StoreOut:
        rd(in.a);
        break;
      case KOp::UpdAcc:
        rd(in.a);
        for (int32_t d = 0; d < in.nidx; ++d) rd(in.idx[d]);
        break;
      case KOp::Gather:
        ++u.writes[static_cast<size_t>(in.dst)];
        for (int32_t d = 0; d < in.nidx; ++d) rd(in.idx[d]);
        break;
      case KOp::LoadLen:
        // `b` holds the shape dimension, not a register operand.
        ++u.writes[static_cast<size_t>(in.dst)];
        break;
      default:
        ++u.writes[static_cast<size_t>(in.dst)];
        rd(in.a);
        rd(in.b);
        rd(in.c);
        break;
    }
  }
  return u;
}

// ---- straight-line op mapping ---------------------------------------------

// ConstF/LoadLen/InlineLoop are handled by the caller; everything else is a
// 1:1 rename.
VOp map_op(KOp op) {
  switch (op) {
    case KOp::Mov: return VOp::Mov;
    case KOp::Add: return VOp::Add;
    case KOp::Sub: return VOp::Sub;
    case KOp::Mul: return VOp::Mul;
    case KOp::Div: return VOp::Div;
    case KOp::IDiv: return VOp::IDiv;
    case KOp::Pow: return VOp::Pow;
    case KOp::Min: return VOp::Min;
    case KOp::Max: return VOp::Max;
    case KOp::Mod: return VOp::Mod;
    case KOp::Eq: return VOp::Eq;
    case KOp::Ne: return VOp::Ne;
    case KOp::Lt: return VOp::Lt;
    case KOp::Le: return VOp::Le;
    case KOp::Gt: return VOp::Gt;
    case KOp::Ge: return VOp::Ge;
    case KOp::And: return VOp::And;
    case KOp::Or: return VOp::Or;
    case KOp::Neg: return VOp::Neg;
    case KOp::Exp: return VOp::Exp;
    case KOp::Log: return VOp::Log;
    case KOp::Sqrt: return VOp::Sqrt;
    case KOp::Sin: return VOp::Sin;
    case KOp::Cos: return VOp::Cos;
    case KOp::Tanh: return VOp::Tanh;
    case KOp::Abs: return VOp::Abs;
    case KOp::Sign: return VOp::Sign;
    case KOp::LGamma: return VOp::LGamma;
    case KOp::Digamma: return VOp::Digamma;
    case KOp::Not: return VOp::Not;
    case KOp::Trunc: return VOp::Trunc;
    case KOp::Select: return VOp::Select;
    case KOp::LoadElem: return VOp::LoadElem;
    case KOp::LoadIdx: return VOp::LoadIdx;
    case KOp::Gather: return VOp::Gather;
    case KOp::UpdAcc: return VOp::UpdAcc;
    case KOp::StoreOut: return VOp::StoreOut;
    default: return VOp::Mov;  // unreachable
  }
}

// ---- fused loop-form analysis ---------------------------------------------

// Register-space lowering result (offsets baked per width afterwards).
struct Lowered {
  std::vector<VInstr> code;
  std::vector<VInit> prologue;
  std::vector<VLoop> loops;
  uint32_t fold_begin = 0, fold_end = 0;
  std::vector<int32_t> red_acc, red_elem;
  int num_regs = 0;
  int superinstrs = 0;
};

// True when `reg` is written by any instruction of the body, or is the loop
// variable (rewritten by the loop mechanics each trip).
bool body_writes(const Kernel& k, const Kernel::InlineLoop& il, int32_t reg) {
  if (reg == il.ivar_reg) return true;
  for (uint32_t i = il.body_begin; i < il.body_end; ++i) {
    const KInstr& in = k.instrs[i];
    if (in.op == KOp::StoreOut || in.op == KOp::UpdAcc || in.op == KOp::InlineLoop) continue;
    if (in.dst == reg) return true;
  }
  return false;
}

// Validates a full-indexing gather/scatter whose trailing index is the loop
// variable and whose leading indexes are body-invariant; copies the leading
// indexes out. Returns false when the access does not form a stride-1 stream.
bool stream_access(const Kernel& k, const Kernel::InlineLoop& il, const KInstr& in,
                   int32_t* lead, int32_t& nlead) {
  if (in.nidx < 1 || in.nidx > 4) return false;
  if (in.idx[in.nidx - 1] != il.ivar_reg) return false;
  nlead = in.nidx - 1;
  for (int32_t d = 0; d < nlead; ++d) {
    if (body_writes(k, il, in.idx[d])) return false;
    lead[d] = in.idx[d];
  }
  return true;
}

// Recognizes the two dominant InlineLoop shapes and fills the fused VLoop
// fields (register space). Returns the marker op to emit: DotLoop /
// Axpy2Loop when fused, Loop otherwise.
VOp classify_loop(const Kernel& k, const Kernel::InlineLoop& il, const Usage& u, VLoop& vl) {
  // Multi-accumulator folds never match the single-acc fused forms.
  if (!il.more_accs.empty()) return VOp::Loop;
  // Collect the significant body instructions (ConstF/LoadLen leave the
  // stream via the prologue and are transparent to the patterns).
  std::vector<const KInstr*> sig;
  for (uint32_t i = il.body_begin; i < il.body_end; ++i) {
    const KInstr& in = k.instrs[i];
    if (in.op == KOp::ConstF || in.op == KOp::LoadLen) continue;
    sig.push_back(&in);
  }

  // Dot-product fold: Gather, Gather, Mul, Add(with acc), Mov(-> acc).
  if (sig.size() == 5 && il.acc_reg >= 0 && il.neutral_reg >= 0 &&
      sig[0]->op == KOp::Gather && sig[1]->op == KOp::Gather && sig[2]->op == KOp::Mul &&
      sig[3]->op == KOp::Add && sig[4]->op == KOp::Mov) {
    const int32_t t1 = sig[0]->dst, t2 = sig[1]->dst, t3 = sig[2]->dst, t4 = sig[3]->dst;
    const bool temps = u.ok_temp(t1) && u.ok_temp(t2) && u.ok_temp(t3) && u.ok_temp(t4);
    const bool mul_fw = sig[2]->a == t1 && sig[2]->b == t2;
    const bool mul_bw = sig[2]->a == t2 && sig[2]->b == t1;
    const bool add_pa = sig[3]->a == t3 && sig[3]->b == il.acc_reg;
    const bool add_ap = sig[3]->a == il.acc_reg && sig[3]->b == t3;
    const bool wb = sig[4]->dst == il.acc_reg && sig[4]->a == t4;
    if (temps && (mul_fw || mul_bw) && (add_pa || add_ap) && wb &&
        stream_access(k, il, *sig[0], vl.a_idx, vl.a_nidx) &&
        stream_access(k, il, *sig[1], vl.b_idx, vl.b_nidx)) {
      vl.a_slot = sig[0]->slot;
      vl.b_slot = sig[1]->slot;
      vl.dot_flags = static_cast<uint8_t>((mul_bw ? 1 : 0) | (add_pa ? 2 : 0));
      return VOp::DotLoop;
    }
  }

  // Dual-scatter map: Gather, Gather, Mul, Mul, UpdAcc, UpdAcc.
  if (sig.size() == 6 && il.acc_reg < 0 && sig[0]->op == KOp::Gather &&
      sig[1]->op == KOp::Gather && sig[2]->op == KOp::Mul && sig[3]->op == KOp::Mul &&
      sig[4]->op == KOp::UpdAcc && sig[5]->op == KOp::UpdAcc) {
    const int32_t t1 = sig[0]->dst, t2 = sig[1]->dst;
    const int32_t p1 = sig[2]->dst, p2 = sig[3]->dst;
    const bool temps = u.ok_temp(t1) && u.ok_temp(t2) && u.ok_temp(p1) && u.ok_temp(p2);
    // Each Mul reads exactly one gathered stream; the other operand is a
    // body-invariant scalar.
    auto mul_form = [&](const KInstr& m, bool& reads_t1, bool& s_first, int32_t& s) {
      const bool a_g = m.a == t1 || m.a == t2;
      const bool b_g = m.b == t1 || m.b == t2;
      if (a_g == b_g) return false;  // exactly one stream operand
      const int32_t g = a_g ? m.a : m.b;
      s = a_g ? m.b : m.a;
      reads_t1 = g == t1;
      s_first = !a_g;  // stream operand second => scalar first
      if (body_writes(k, il, s)) return false;
      return true;
    };
    bool m1_t1 = false, m1_sf = false, m2_t1 = false, m2_sf = false;
    int32_t s1 = -1, s2 = -1;
    if (temps && mul_form(*sig[2], m1_t1, m1_sf, s1) && mul_form(*sig[3], m2_t1, m2_sf, s2) &&
        m1_t1 != m2_t1 && ((sig[4]->a == p1 && sig[5]->a == p2) ||
                           (sig[4]->a == p2 && sig[5]->a == p1)) &&
        stream_access(k, il, *sig[0], vl.a_idx, vl.a_nidx) &&
        stream_access(k, il, *sig[1], vl.b_idx, vl.b_nidx) &&
        stream_access(k, il, *sig[4], vl.u1_idx, vl.u1_nidx) &&
        stream_access(k, il, *sig[5], vl.u2_idx, vl.u2_nidx)) {
      vl.a_slot = sig[0]->slot;
      vl.b_slot = sig[1]->slot;
      vl.s1 = s1;
      vl.s2 = s2;
      vl.u1_slot = sig[4]->slot;
      vl.u2_slot = sig[5]->slot;
      vl.ax_flags = static_cast<uint8_t>((m1_t1 ? 1 : 0) | (m1_sf ? 2 : 0) |
                                         (m2_t1 ? 4 : 0) | (m2_sf ? 8 : 0) |
                                         (sig[4]->a == p1 ? 16 : 0));
      return VOp::Axpy2Loop;
    }
  }

  return VOp::Loop;
}

// ---- lowering pass 1: prologue extraction + 1:1 translation ---------------

bool lower_pass1(const Kernel& k, const Usage& u, Lowered& out) {
  out.num_regs = k.num_regs;
  for (size_t i = 0; i < k.free_scalar_regs.size(); ++i) {
    out.prologue.push_back({k.free_scalar_regs[i], VInit::Kind::FreeScalar,
                            static_cast<int32_t>(i), 0.0});
  }
  out.loops.resize(k.loops.size());
  std::vector<VOp> loop_ops(k.loops.size(), VOp::Loop);
  for (size_t s = 0; s < k.loops.size(); ++s) {
    VLoop& vl = out.loops[s];
    vl.trip = k.loops[s].trip_reg;
    vl.ivar = k.loops[s].ivar_reg;
    vl.acc = k.loops[s].acc_reg;
    vl.neutral = k.loops[s].neutral_reg;
    vl.accs2 = k.loops[s].more_accs;
    vl.neutrals2 = k.loops[s].more_neutrals;
    loop_ops[s] = classify_loop(k, k.loops[s], u, vl);
  }

  const size_t n = k.instrs.size();
  std::vector<uint32_t> posmap(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    posmap[i] = static_cast<uint32_t>(out.code.size());
    const KInstr& in = k.instrs[i];
    if (in.op == KOp::ConstF || in.op == KOp::LoadLen) {
      // Prologue-extracted; sound only for single-writer destinations (the
      // builder's invariant-register contract — verified, not assumed).
      if (u.writes[static_cast<size_t>(in.dst)] != 1) return false;
      if (in.op == KOp::ConstF) {
        out.prologue.push_back({in.dst, VInit::Kind::Imm, -1, in.imm});
      } else {
        out.prologue.push_back(
            {in.dst, VInit::Kind::ArrayLen, in.slot, 0.0, in.b > 0 ? in.b : 0});
      }
      continue;
    }
    VInstr v;
    v.op = in.op == KOp::InlineLoop ? loop_ops[static_cast<size_t>(in.slot)] : map_op(in.op);
    v.slot = in.slot;
    v.d = in.dst;
    v.a = in.a;
    v.b = in.b;
    v.c = in.c;
    v.nidx = in.nidx;
    for (int32_t d = 0; d < in.nidx; ++d) v.idx[d] = in.idx[d];
    out.code.push_back(v);
  }
  posmap[n] = static_cast<uint32_t>(out.code.size());

  out.fold_begin = posmap[k.fold_begin];
  out.fold_end = posmap[k.fold_end];
  for (size_t s = 0; s < k.loops.size(); ++s) {
    out.loops[s].body_begin = posmap[k.loops[s].body_begin];
    out.loops[s].body_end = posmap[k.loops[s].body_end];
  }
  for (const auto& rs : k.reds) {
    out.red_acc.push_back(rs.acc_reg);
    out.red_elem.push_back(rs.elem_reg);
  }
  return true;
}

// ---- lowering pass 2: peephole fusion -------------------------------------

bool instr_reads(const VInstr& in, int32_t reg) {
  if (in.op == VOp::Loop || in.op == VOp::DotLoop || in.op == VOp::Axpy2Loop) return false;
  if (in.a == reg || in.b == reg || in.c == reg) return true;
  for (int32_t d = 0; d < in.nidx; ++d) {
    if (in.idx[d] == reg) return true;
  }
  return false;
}

void subst_read(VInstr& in, int32_t from, int32_t to) {
  if (in.a == from) { in.a = to; return; }
  if (in.b == from) { in.b = to; return; }
  if (in.c == from) { in.c = to; return; }
  for (int32_t d = 0; d < in.nidx; ++d) {
    if (in.idx[d] == from) { in.idx[d] = to; return; }
  }
}

bool produces_value(const VInstr& in) {
  switch (in.op) {
    case VOp::StoreOut: case VOp::UpdAcc: case VOp::MulStore: case VOp::AddStore:
    case VOp::Loop: case VOp::DotLoop: case VOp::Axpy2Loop:
      return false;
    default:
      return in.d >= 0;
  }
}

// Adjacent-pair superinstruction selection: prev's destination is a plain
// temporary consumed (once) by cur. Returns true and writes the fused
// replacement to `fused`.
bool try_pair(const VInstr& prev, const VInstr& cur, int32_t t, VInstr& fused) {
  fused = VInstr{};
  fused.d = cur.d;
  if (prev.op == VOp::Mul || prev.op == VOp::Add) {
    // arith + store
    if (cur.op == VOp::StoreOut && cur.a == t) {
      fused.op = prev.op == VOp::Mul ? VOp::MulStore : VOp::AddStore;
      fused.slot = cur.slot;
      fused.d = -1;
      fused.a = prev.a;
      fused.b = prev.b;
      return true;
    }
    // arith + arith second-stage
    const bool second_add = cur.op == VOp::Add, second_sub = cur.op == VOp::Sub,
               second_mul = cur.op == VOp::Mul;
    if ((second_add || second_sub || second_mul) && (cur.a == t) != (cur.b == t)) {
      if (prev.op == VOp::Mul && second_add) fused.op = VOp::MulAdd;
      else if (prev.op == VOp::Mul && second_sub) fused.op = VOp::MulSub;
      else if (prev.op == VOp::Mul && second_mul) fused.op = VOp::MulMul;
      else if (prev.op == VOp::Add && second_add) fused.op = VOp::AddAdd;
      else return false;
      fused.a = prev.a;
      fused.b = prev.b;
      fused.c = cur.a == t ? cur.b : cur.a;
      fused.flags = cur.a == t ? 0 : 1;  // flag: t is the second operand
      return true;
    }
    return false;
  }
  if (prev.op == VOp::Neg && cur.op == VOp::Exp && cur.a == t) {
    fused.op = VOp::NegExp;
    fused.a = prev.a;
    return true;
  }
  if (prev.op == VOp::Gather && (cur.op == VOp::Mul || cur.op == VOp::Add) &&
      (cur.a == t) != (cur.b == t)) {
    fused.op = cur.op == VOp::Mul ? VOp::GatherMul : VOp::GatherAdd;
    fused.slot = prev.slot;
    fused.nidx = prev.nidx;
    for (int32_t d = 0; d < prev.nidx; ++d) fused.idx[d] = prev.idx[d];
    fused.b = cur.a == t ? cur.b : cur.a;
    fused.flags = cur.a == t ? 0 : 1;  // flag: gathered value is second operand
    return true;
  }
  return false;
}

void lower_pass2(const Kernel& k, Usage& u, Lowered& low) {
  const size_t n = low.code.size();
  // Fusion barriers: positions the launch mechanics re-enter or re-seed at
  // (fold subprogram bounds, loop body bounds) — no pair may straddle one.
  // Bodies of fused loop forms are fully barred: their VLoop stream/scalar
  // fields reference the registers the *original* body reads, so rewriting
  // the fallback body must not change them.
  std::vector<uint8_t> barrier(n + 1, 0);
  barrier[low.fold_begin] = 1;
  barrier[low.fold_end] = 1;
  for (size_t s = 0; s < low.loops.size(); ++s) {
    const VLoop& vl = low.loops[s];
    const bool fused_form = vl.a_slot >= 0;
    for (uint32_t i = vl.body_begin; i <= vl.body_end; ++i) {
      if (fused_form || i == vl.body_begin || i == vl.body_end) barrier[i] = 1;
    }
  }

  std::vector<VInstr> out;
  std::vector<int> seg;  // per emitted instr: barrier-segment id
  std::vector<uint32_t> posmap(n + 1, 0);
  out.reserve(n);
  seg.reserve(n);
  int cur_seg = 0;
  auto kill = [&](int32_t r) {
    u.reads[static_cast<size_t>(r)] = 0;
    u.writes[static_cast<size_t>(r)] = 0;
  };
  for (size_t i = 0; i < n; ++i) {
    if (barrier[i]) ++cur_seg;
    posmap[i] = static_cast<uint32_t>(out.size());
    VInstr cur = low.code[i];
    bool emitted = false;
    while (!out.empty() && seg.back() == cur_seg) {
      const VInstr& prev = out.back();
      // Copy propagation: prev is `Mov t, x` with t a plain temporary read
      // (exactly once) by cur — drop the Mov, read x directly.
      if (prev.op == VOp::Mov && u.ok_temp(prev.d) && instr_reads(cur, prev.d)) {
        const int32_t t = prev.d, x = prev.a;
        subst_read(cur, t, x);
        kill(t);
        out.pop_back();
        seg.pop_back();
        continue;  // cur may now combine with the newly exposed predecessor
      }
      // Pair fusion into a superinstruction.
      VInstr fused;
      if (produces_value(prev) && u.ok_temp(prev.d) && instr_reads(cur, prev.d) &&
          try_pair(prev, cur, prev.d, fused)) {
        kill(prev.d);
        out.back() = fused;
        ++low.superinstrs;
        emitted = true;
        break;
      }
      // Mov retarget: cur is `Mov d2, t` with t = prev's plain-temporary
      // result — make prev write d2 directly (fold write-backs collapse).
      if (cur.op == VOp::Mov && produces_value(prev) && cur.a == prev.d &&
          u.ok_temp(prev.d)) {
        kill(prev.d);
        out.back().d = cur.d;
        emitted = true;
        break;
      }
      break;
    }
    if (!emitted) {
      out.push_back(cur);
      seg.push_back(cur_seg);
    }
  }
  posmap[n] = static_cast<uint32_t>(out.size());

  low.fold_begin = posmap[low.fold_begin];
  low.fold_end = posmap[low.fold_end];
  for (auto& vl : low.loops) {
    vl.body_begin = posmap[vl.body_begin];
    vl.body_end = posmap[vl.body_end];
  }
  (void)k;
  low.code = std::move(out);
}

// ---- width baking ---------------------------------------------------------

int32_t scale(int32_t reg, int W) { return reg >= 0 ? reg * W : reg; }

VProgram bake(const Lowered& low, int W) {
  VProgram p;
  p.W = W;
  p.num_regs = low.num_regs;
  p.fold_begin = low.fold_begin;
  p.fold_end = low.fold_end;
  p.code = low.code;
  for (auto& in : p.code) {
    in.d = scale(in.d, W);
    in.a = scale(in.a, W);
    in.b = scale(in.b, W);
    in.c = scale(in.c, W);
    for (int32_t d = 0; d < in.nidx; ++d) in.idx[d] = scale(in.idx[d], W);
  }
  p.loops = low.loops;
  for (auto& vl : p.loops) {
    vl.trip = scale(vl.trip, W);
    vl.ivar = scale(vl.ivar, W);
    vl.acc = scale(vl.acc, W);
    vl.neutral = scale(vl.neutral, W);
    for (auto& a : vl.accs2) a = scale(a, W);
    for (auto& n2 : vl.neutrals2) n2 = scale(n2, W);
    vl.s1 = scale(vl.s1, W);
    vl.s2 = scale(vl.s2, W);
    for (int d = 0; d < 3; ++d) {
      vl.a_idx[d] = scale(vl.a_idx[d], W);
      vl.b_idx[d] = scale(vl.b_idx[d], W);
      vl.u1_idx[d] = scale(vl.u1_idx[d], W);
      vl.u2_idx[d] = scale(vl.u2_idx[d], W);
    }
  }
  p.prologue = low.prologue;
  for (auto& in : p.prologue) in.off = scale(in.off, W);
  for (int32_t r : low.red_acc) p.red_acc_off.push_back(scale(r, W));
  for (int32_t r : low.red_elem) p.red_elem_off.push_back(scale(r, W));
  return p;
}

// ---- entry cache ----------------------------------------------------------

struct Key {
  const Kernel* k;
  int lanes;
  bool operator==(const Key& o) const { return k == o.k && lanes == o.lanes; }
};
struct KeyHash {
  size_t operator()(const Key& x) const {
    return std::hash<const void*>()(x.k) * 31u ^ static_cast<size_t>(x.lanes);
  }
};

std::shared_mutex cache_mu;
// Process-wide and immortal, like the kernel cache the keys point into. A
// null value records a kernel that failed to lower (never re-attempted).
std::unordered_map<Key, std::unique_ptr<Entry>, KeyHash>& cache() {
  static auto* c = new std::unordered_map<Key, std::unique_ptr<Entry>, KeyHash>();
  return *c;
}

} // namespace

const Entry* lookup(const Kernel& k, int lanes) {
  // Wide programs exist for the compile-time lane counts only; other widths
  // stay on the register machine (they share its `default:` runtime-W path,
  // which vexec does not replicate).
  if (lanes != 1 && lanes != 4 && lanes != 8 && lanes != 16) return nullptr;
  const Key key{&k, lanes};
  {
    std::shared_lock lk(cache_mu);
    auto it = cache().find(key);
    if (it != cache().end()) return it->second.get();
  }
  std::unique_ptr<Entry> e;
  Usage u = analyze(k);
  Lowered low;
  if (lower_pass1(k, u, low)) {
    lower_pass2(k, u, low);
    e = std::make_unique<Entry>();
    e->narrow = bake(low, 1);
    if (lanes > 1) e->wide = bake(low, lanes);
    e->superinstrs = low.superinstrs;
  }
  std::unique_lock lk(cache_mu);
  auto [it, inserted] = cache().emplace(key, std::move(e));
  return it->second.get();
}

const Ops* select_ops(bool force_portable) {
#ifdef NPAD_VEXEC_HAVE_AVX2
  if (!force_portable) {
    static const bool have_avx2 = __builtin_cpu_supports("avx2");
    if (have_avx2) return avx2::ops();
  }
#else
  (void)force_portable;
#endif
  return portable::ops();
}

} // namespace npad::rt::vexec
