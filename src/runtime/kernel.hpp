#pragma once

// The kernel compiler: lowers a scalar map-lambda — or a reduce/scan fold
// operator plus optional redomap pre-lambda — to a small register-machine
// program executed in a tight loop over the iteration space. This is the
// CPU stand-in for the paper's GPU code generation — scalar intermediates
// live in (virtual) registers rather than being fetched from a tape in
// global memory, and accumulator updates lower to atomic adds.
//
// A lambda is kernel-compilable when its parameters and results are scalars
// (or threaded accumulators) and its body consists only of scalar operations,
// full indexing into free arrays, and upd_acc side effects. Everything else
// falls back to the general interpreter.
//
// Reduction kernels (compile_reduce_kernel) additionally hold *reduction
// registers*: per fold result, an accumulator register (a per-lane partial
// in the batched engine) and an element register fed either by LoadElem or
// by the redomap pre-lambda compiled into the same program — fused reduce
// runs load→map→fold in one batched loop with no intermediate array.
//
// Inline SOACs: a lambda whose body binds `iota n` / `replicate n v` (scalar
// v) with a *launch-uniform* extent (derived only from constants, free
// scalars and free-array lengths) and consumes them exclusively as the
// domain of a scalar-result redomap or a unit-result upd_acc map compiles
// those nested SOACs into the same program as InlineLoop blocks: a
// sequential per-iteration subprogram run in lockstep across the outer
// lanes, with no per-row launch, no environment frame and no materialized
// iota/replicate array. This is what turns a dot-product row lambda (8
// fused redomaps + glue) into ONE kernel launch per row.
//
// Stream arguments: inline SOACs also accept *real* rank-1 arrays as
// arguments — a row view `index(A, leads…)` of a free array, or a whole
// free rank-1 array — consumed element-by-element inside the inline loop
// via full-indexing Gathers ([leads…, ivar]). The trip count is the first
// stream's length (a LoadLen of the base array's dim `nlead`, launch-
// invariant). Shape facts the builder cannot see statically — the rank of
// a bare free array, length agreement between the streams of one fold —
// are recorded as stream guards on the Kernel and validated when the free
// arrays are bound: a violating binding makes the launch fall back to the
// general interpreter, which raises the exact shape error (or handles the
// shapes generically). Mixing virtual domains and streams in one SOAC is
// rejected — an iota extent cannot be checked against a stream length at
// bind time.

#include <atomic>
#include <optional>
#include <vector>

#include "ir/ast.hpp"
#include "runtime/value.hpp"

namespace npad::rt {

namespace vexec {
struct Entry;
struct Ops;
} // namespace vexec

enum class KOp : uint8_t {
  ConstF, Mov,
  Add, Sub, Mul, Div, IDiv, Pow, Min, Max, Mod,
  Eq, Ne, Lt, Le, Gt, Ge, And, Or,
  Neg, Exp, Log, Sqrt, Sin, Cos, Tanh, Abs, Sign, LGamma, Digamma, Not, Trunc,
  Select,
  LoadElem,   // dst = input[slot] element at current iteration
  Gather,     // dst = free_array[slot][flatten(idx regs)]
  UpdAcc,     // acc_array[slot][flatten(idx regs)] += reg a (atomic)
  StoreOut,   // output[slot] element at current iteration = reg a
  LoadLen,    // dst = extent of free_array[slot] along dim max(b, 0) (launch-invariant)
  LoadIdx,    // dst = current iteration index (per lane; row-stream params)
  InlineLoop, // run Kernel::loops[slot] body, then skip past it
};

struct KInstr {
  KOp op = KOp::Mov;
  int32_t dst = -1, a = -1, b = -1, c = -1;
  int32_t slot = -1;
  double imm = 0.0;
  int32_t nidx = 0;
  int32_t idx[4] = {-1, -1, -1, -1};
};

struct Kernel {
  // Accumulator bindings: param_index >= 0 means the acc comes from that map
  // argument position; -1 means a free accumulator variable in scope.
  struct AccBinding {
    ir::Var var;
    int32_t param_index = -1;
  };

  // Reduction register pair (reduce/scan kernels; empty for map kernels).
  // acc_reg carries the running accumulator — one partial per lane in the
  // SoA register file — and elem_reg carries the iteration's element (a
  // LoadElem destination, or a fresh register the redomap pre-lambda's
  // result is moved into). Both are guaranteed single-purpose registers, so
  // the fold subprogram [fold_begin, fold_end) can be executed standalone
  // by seeding them directly: that is how lane partials are combined at
  // span end, chunk partials are merged, and blocked-scan prefixes are
  // applied (phase 3) without re-touching the inputs.
  struct RedSlot {
    int32_t acc_reg = -1;
    int32_t elem_reg = -1;
  };

  // Inline SOAC block: instructions [body_begin, body_end) — placed directly
  // after the InlineLoop marker that owns this entry — run trip_reg times
  // with ivar_reg broadcast to the inner index. trip_reg is launch-uniform
  // by construction (extents built only from invariant registers). The fold
  // form (acc_reg >= 0) seeds acc_reg from neutral_reg and folds in element
  // order — the same order as the general interpreter's sequential reduce,
  // so kernelizing a lambda this way never changes float grouping. The map
  // form (acc_reg < 0) is a pure side-effect loop (upd_acc bodies). Bodies
  // contain no LoadElem/StoreOut; nested InlineLoop markers are allowed.
  // Multi-result folds (the jvp programs' (primal, tangent) reduce pairs)
  // carry results 1..k-1 in more_accs/more_neutrals, seeded on loop entry
  // exactly like acc_reg.
  struct InlineLoop {
    uint32_t body_begin = 0, body_end = 0;
    int32_t trip_reg = -1;
    int32_t ivar_reg = -1;
    int32_t acc_reg = -1;     // fold result register, -1 for map form
    int32_t neutral_reg = -1; // fold seed, -1 for map form
    std::vector<int32_t> more_accs, more_neutrals;  // parallel; results 1..
  };

  // Stream guards: shape facts a stream-consuming inline SOAC assumed at
  // compile time but that only the bound arrays can confirm. Checked against
  // free_array_vals at every bind (interp's stream_guards_ok); any failure
  // falls the launch back to the general path.
  struct StreamRankGuard {
    int32_t slot = -1;   // free-array slot
    int32_t rank = 0;    // required rank of the bound array
  };
  struct StreamLenGuard {
    int32_t slot_a = -1, dim_a = 0;  // shape[dim_a] of free_array[slot_a]
    int32_t slot_b = -1, dim_b = 0;  // must equal shape[dim_b] of free_array[slot_b]
  };

  std::vector<KInstr> instrs;
  int num_regs = 0;
  std::vector<ir::Var> free_scalars;     // resolved to registers at launch
  std::vector<int32_t> free_scalar_regs;
  // Gather sources, resolved from the environment at bind time — except the
  // slots named by row_param_slots, whose entries are placeholders filled
  // from the launch's rank-2 map arguments instead.
  std::vector<ir::Var> free_arrays;
  std::vector<AccBinding> accs;          // accumulator targets
  std::vector<int32_t> acc_upd_counts;   // UpdAcc instructions per acc slot
  std::vector<int32_t> ret_acc_slot;     // per lambda result: acc slot or -1
  std::vector<ScalarType> out_elems;     // one per scalar output
  size_t num_inputs = 0;                 // element-wise inputs (non-acc args)
  std::vector<RedSlot> reds;             // reduction registers (fold results)
  size_t fold_begin = 0, fold_end = 0;   // fold-body subprogram bounds
  std::vector<InlineLoop> loops;         // inline SOAC blocks (marker order)
  std::vector<StreamRankGuard> stream_rank_guards;
  std::vector<StreamLenGuard> stream_len_guards;
  // Row-stream parameters (map kernels): one entry per non-acc argument
  // position. -1 = element input (rank-1, LoadElem slot in order); >= 0 =
  // the free-array slot the rank-2 argument binds into, with the param
  // compiled as a stream over the current row ([LoadIdx, i] Gathers). Empty
  // means all-element (the common case). This is what lets a lambda taking
  // a row of a rank-2 array — per-point kmeans/GMM bodies — compile into a
  // single launch over all rows instead of one inner launch per row.
  std::vector<int32_t> row_param_slots;
};

// Attempts to compile `f` applied element-wise over non-acc `args`.
std::optional<Kernel> compile_kernel(const ir::Lambda& f);

// Attempts to compile the fold operator `op` (2k scalar params → k scalar
// results; no accumulators) plus the optional redomap pre-lambda `pre`
// (scalar params matching the launch inputs, k scalar results feeding the
// fold) into a reduction kernel. With `scan` set, the program additionally
// stores each iteration's updated accumulator to the outputs — the
// sequential blocked-scan phase-1 program.
std::optional<Kernel> compile_reduce_kernel(const ir::Lambda& op, const ir::Lambda* pre,
                                            bool scan);

// Bound kernel ready to run: free variables resolved against an environment.
// `k` points either into the process-wide kernel cache (immortal entries,
// runtime/kernel_cache.hpp) or at `owned` when caching is disabled — either
// way the kernel cannot outlive the launch.
struct KernelLaunch {
  const Kernel* k = nullptr;
  std::shared_ptr<const Kernel> owned;  // set when the launch owns its kernel
  std::vector<double> free_scalar_vals;
  std::vector<ArrayVal> free_array_vals;
  std::vector<ArrayVal> acc_array_vals;
  // Per acc slot: nonzero = atomic RMW updates (default); zero = plain adds,
  // valid when the slot's backing array is private to one executing thread
  // (privatized accumulators, or a launch that provably runs sequentially).
  // Empty means all-atomic.
  std::vector<uint8_t> acc_atomic;
  std::vector<ArrayVal> inputs;   // rank-1, one per element input
  std::vector<ArrayVal> outputs;  // rank-1, one per scalar output
  // Lane width W: iterations execute in batches of W over a structure-of-
  // arrays register file (regs[reg*W + lane]), amortizing the per-instruction
  // dispatch across the batch and turning LoadElem/StoreOut into contiguous
  // strip accesses. 1 = the scalar machine; a scalar tail loop covers the
  // remainder of non-divisible extents (InterpOptions::kernel_lanes).
  int32_t lanes = 1;
  // When set, incremented once per run() span that executes at least one
  // full W-wide batch — the accurate signal behind
  // InterpStats::batched_launches (a span split too finely by the scheduler
  // runs scalar and is not counted).
  std::atomic<uint64_t>* batched_spans = nullptr;
  // Reduction kernels: the fold's neutral element per reduction slot, used
  // to seed the per-lane partial accumulators.
  std::vector<double> red_neutral;

  // Extent-1 scalar-block mode (execution plans): when set, StoreOut writes
  // result j to scalar_out[j] instead of an output array — no output
  // buffers, no iteration space, one lane.
  double* scalar_out = nullptr;

  // Vectorized execution tier (runtime/vexec.hpp): when `vx` and `vops` are
  // both set, run/run_reduce/run_segred_chunk/run_scan_chunk/run_hist_chunk
  // dispatch to the pre-decoded SIMD schedule instead of the register
  // machine — bit-exact by contract, so binding it is purely a speed choice.
  // Only attached for cache- or plan-owned kernels (`owned == nullptr`):
  // vexec entries are keyed by kernel address and must never outlive `k`.
  // `vexec_spans` feeds InterpStats::vexec_launches, one tick per
  // dispatched span.
  const vexec::Entry* vx = nullptr;
  const vexec::Ops* vops = nullptr;
  std::atomic<uint64_t>* vexec_spans = nullptr;

  // Executes iterations [lo, hi) (map kernels).
  void run(int64_t lo, int64_t hi) const;

  // Reduction kernels: folds elements [lo, hi) into `partials` (seeded by
  // the caller, normally with the neutral element). Lane widths > 1 give
  // each lane one contiguous block of the span, accumulate per-lane
  // partials in the SoA register file, and combine them in block order
  // through the fold subprogram at span end — element order is preserved
  // (associative folds suffice) but float-add grouping changes relative to
  // a sequential fold (see runtime/README.md).
  void run_reduce(int64_t lo, int64_t hi, double* partials) const;

  // Segmented reduction driver (flattened map-of-reduce, FlatForm::SegRed):
  // inputs are the rank-1 *flattened* views of the nest's rank-2 arguments
  // (segment s occupies elements [s*seg_len, (s+1)*seg_len)); for each
  // segment in [seg_lo, seg_hi) the fold runs into the accumulator
  // registers seeded with the neutral element and stores one result per
  // fold slot into outputs[j][s]. Register files and invariant broadcasts
  // are prepared once per chunk — no per-segment (per-row) launch setup.
  // Each segment folds exactly like run_reduce over the same extent with
  // the same lane width (lane-blocked when seg_len >= lanes, scalar tail),
  // so parallel-off results are bit-identical to per-row kernel reduces.
  void run_segred_chunk(int64_t seg_lo, int64_t seg_hi, int64_t seg_len) const;

  // Scan kernels: sequentially scans [lo, hi), writing each updated
  // accumulator to the outputs; `carry` is the running accumulator in/out.
  void run_scan_chunk(int64_t lo, int64_t hi, double* carry) const;

  // Scan kernels, blocked-scan phase 3: outputs[i] = op(prefix, outputs[i])
  // for i in [lo, hi), via the fold subprogram.
  void scan_rescale(int64_t lo, int64_t hi, const double* prefix) const;

  // acc = op(acc, other) via the fold subprogram (chunk-partial merges).
  void combine_partials(double* acc, const double* other) const;

  // Hist drivers over a single-result reduction kernel (k->reds.size() == 1;
  // the same compiled artifact as the reduce form of the combine operator,
  // so hist shares cache entries with reduce): for each element i in
  // [lo, hi) with an in-range index, bins[inds[i]] =
  // op(bins[inds[i]], pre(vals[i])) — the pre subprogram [0, fold_begin)
  // computes the element register, the fold subprogram is re-entered with
  // the bin's current value seeded into the accumulator register. Strictly
  // sequential in element order (the generalized-histogram contract needs
  // associativity only across the privatized-merge boundaries). Returns the
  // number of in-range updates performed.
  int64_t run_hist_chunk(int64_t lo, int64_t hi, double* bins, int64_t m,
                         const int64_t* inds) const;

  // acc[j] = op(acc[j], other[j]) for j in [0, count): the bin-wise
  // subhistogram merge, one fold-subprogram entry per bin.
  void fold_bins(double* acc, const double* other, int64_t count) const;
};

// Runs a zero-input scalar-block kernel (compiled from a run of scalar
// bindings by the plan compiler: no LoadElem/Gather/UpdAcc, every result a
// scalar) exactly once. `frees` holds the free-scalar values in
// k.free_scalars order, `regs` is caller-provided scratch of k.num_regs
// doubles, and result j lands in out[j] as a raw double (convert with the
// result's scalar type, exactly like StoreOut would). Allocation-free.
void run_scalar_kernel(const Kernel& k, const double* frees, double* regs, double* out);

} // namespace npad::rt
