#include "runtime/resolve.hpp"

#include <cassert>
#include <mutex>

#include "ir/analysis.hpp"
#include "ir/visit.hpp"

namespace npad::rt {

namespace {

using namespace ir;

// Walks an alpha-renamed function and assigns every binding a slot in its
// enclosing activation. Activations are opened at the function root, at each
// lambda, and at each loop body; if-branch bodies (and any other nested
// bodies) share the enclosing activation's frame — their binding ids are
// unique after renaming, so slots never collide.
class Resolver {
public:
  explicit Resolver(ResolvedProg& rp) : rp_(rp) {}

  void run() {
    rp_.slots.assign(rp_.mod->num_vars(), SlotRef{});
    rp_.root_activation = push_activation();
    for (const auto& p : rp_.fn.params) bind(p.var);
    body(rp_.fn.body);
    pop_activation();
  }

private:
  struct Act {
    uint32_t id = 0;
    uint32_t next_slot = 0;
  };

  uint32_t push_activation() {
    const auto id = static_cast<uint32_t>(rp_.activations.size());
    rp_.activations.push_back(ActivationInfo{static_cast<uint32_t>(stack_.size()), 0});
    stack_.push_back(Act{id, 0});
    return id;
  }

  void pop_activation() {
    rp_.activations[stack_.back().id].num_slots = stack_.back().next_slot;
    stack_.pop_back();
  }

  void bind(Var v) {
    assert(v.valid() && v.id < rp_.slots.size());
    assert(!rp_.slots[v.id].valid() && "binding id not unique after alpha-renaming");
    rp_.slots[v.id] =
        SlotRef{rp_.activations[stack_.back().id].level, stack_.back().next_slot++};
  }

  void lambda(const Lambda& l) {
    l.activation_id = push_activation();
    for (const auto& p : l.params) bind(p.var);
    body(l.body);
    pop_activation();
  }

  void body(const Body& b) {
    for (const auto& st : b.stms) {
      exp(st.e);
      for (Var v : st.vars) bind(v);
    }
  }

  void exp(const Exp& e) {
    std::visit(Overload{
                   [&](const OpIf& o) {
                     body(*o.tb);
                     body(*o.fb);
                   },
                   [&](const OpLoop& o) {
                     if (o.while_cond) lambda(*o.while_cond);
                     o.activation_id = push_activation();
                     for (const auto& p : o.params) bind(p.var);
                     if (o.idx.valid()) bind(o.idx);
                     body(*o.body);
                     pop_activation();
                   },
                   [&](const OpMap& o) { lambda(*o.f); },
                   [&](const OpReduce& o) {
                     lambda(*o.op);
                     if (o.pre) lambda(*o.pre);
                   },
                   [&](const OpScan& o) {
                     lambda(*o.op);
                     if (o.pre) lambda(*o.pre);
                   },
                   [&](const OpHist& o) {
                     lambda(*o.op);
                     if (o.pre) lambda(*o.pre);
                   },
                   [&](const OpWithAcc& o) { lambda(*o.f); },
                   [&](const auto&) {},
               },
               e);
  }

  ResolvedProg& rp_;
  std::vector<Act> stack_;
};

} // namespace

std::shared_ptr<const ResolvedProg> resolve_prog(const ir::Prog& p) {
  auto rp = std::make_shared<ResolvedProg>();
  // Clone into a private module copy: Cloner::bind allocates fresh ids there,
  // and the original module stays untouched (it may be shared by callers).
  rp->mod = std::make_shared<ir::Module>(*p.mod);
  ir::Cloner c(*rp->mod, /*refresh=*/true);
  ir::Subst s;
  rp->fn.name = p.fn.name;
  rp->fn.rets = p.fn.rets;
  rp->fn.params.reserve(p.fn.params.size());
  for (const auto& pr : p.fn.params) {
    rp->fn.params.push_back(ir::Param{c.bind_in(pr.var, s), pr.type});
  }
  rp->fn.body = c.body(p.fn.body, std::move(s));
  Resolver(*rp).run();
  return rp;
}

ProgCache& ProgCache::global() {
  static ProgCache cache;
  return cache;
}

size_t ProgCache::size() const {
  std::shared_lock lk(mu_);
  return by_sig_.size();
}

std::shared_ptr<const ResolvedProg> ProgCache::get(const ir::Prog& p, bool* was_hit) {
  std::vector<uint64_t> sig = ir::structural_sig(p.fn);
  const uint64_t h = ir::structural_hash(sig);
  {
    std::shared_lock lk(mu_);
    auto [lo, hi] = by_sig_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.sig == sig) {
        if (was_hit) *was_hit = true;
        return it->second.rp;
      }
    }
  }
  // Resolve outside the lock; a racing thread may do the same work, but the
  // first insert wins and the duplicate is discarded.
  auto rp = resolve_prog(p);
  std::unique_lock lk(mu_);
  auto [lo, hi] = by_sig_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.sig == sig) {
      if (was_hit) *was_hit = true;
      return it->second.rp;
    }
  }
  by_sig_.emplace(h, Entry{std::move(sig), rp});
  if (was_hit) *was_hit = false;
  return rp;
}

} // namespace npad::rt
