// Portable vexec engine build: plain auto-vectorized lane loops, no ISA
// flags beyond the project baseline — the always-available handler set that
// select_ops() falls back to (and NPAD_VEXEC=portable pins).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "runtime/vexec.hpp"
#include "support/error.hpp"

namespace npad::rt::vexec::portable {
#define NPAD_VEXEC_NAME "portable"
#include "runtime/vexec_engine.inc"
#undef NPAD_VEXEC_NAME
} // namespace npad::rt::vexec::portable
