#pragma once

// Process-wide cache of compiled map kernels, keyed by the structural hash of
// the lambda (ir::structural_hash). Entries are immortal: a KernelLaunch can
// never outlive its Kernel, which fixes the per-launch thread_local lifetime
// hazard the interpreter used to have with nested maps.
//
// Two levels:
//  - a pointer-keyed fast path (the cache pins every LambdaPtr it has seen,
//    so a Lambda address can never be reused by a different lambda while the
//    entry lives — pointer identity is a sound key);
//  - a structural-signature path that lets structurally identical lambdas
//    from different programs share one compiled kernel, and that negatively
//    caches non-kernelizable lambdas so they are not re-analyzed per launch.
//
// Reads take a shared lock, so parallel outer loops hitting the cache do not
// serialize; the exclusive lock is only taken to insert.

#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ir/ast.hpp"
#include "runtime/kernel.hpp"

namespace npad::rt {

class KernelCache {
public:
  static KernelCache& global();

  // Returns the cached kernel for `f`, compiling on first sight; nullptr when
  // `f` is not kernel-compilable (also cached). `was_hit` (optional) reports
  // whether compilation/analysis was skipped.
  const Kernel* get(const ir::LambdaPtr& f, bool* was_hit = nullptr);

  // Reduction kernels: the cached kernel for fold operator `op` plus the
  // optional redomap pre-lambda `pre` (may be null), in reduce or scan
  // (`scan`) form. Keys combine both lambdas and the form — the same fold
  // op compiles separately as reduce and as scan — with the same two-level
  // pointer/structural lookup and the same immortal-entry policy as map
  // kernels.
  const Kernel* get_reduce(const ir::LambdaPtr& op, const ir::LambdaPtr& pre, bool scan,
                           bool* was_hit = nullptr);

  // Number of distinct (structural) entries; for tests and diagnostics.
  size_t size() const;

private:
  struct Entry {
    std::vector<uint64_t> sig;
    ir::LambdaPtr lam;  // pinned: keeps pointer keys unambiguous
    ir::LambdaPtr pre;  // pinned too for reduction entries (may be null)
    std::unique_ptr<const std::optional<Kernel>> kern;
  };

  // Pointer-identity key for reduction entries.
  struct RedKey {
    const ir::Lambda* op = nullptr;
    const ir::Lambda* pre = nullptr;
    bool scan = false;
    bool operator==(const RedKey&) const = default;
  };
  struct RedKeyHash {
    size_t operator()(const RedKey& k) const noexcept {
      size_t h = std::hash<const void*>{}(k.op);
      h ^= std::hash<const void*>{}(k.pre) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return h ^ (k.scan ? 0x85ebca6bu : 0u);
    }
  };

  const Kernel* kernel_of(const Entry& e) const {
    return e.kern->has_value() ? &**e.kern : nullptr;
  }

  mutable std::shared_mutex mu_;
  std::unordered_multimap<uint64_t, Entry> by_sig_;
  // Values point into by_sig_ entries' heap-allocated optionals (stable across
  // rehash). Presence in the map is the "known" signal; the value may be null
  // for non-kernelizable lambdas.
  std::unordered_map<const ir::Lambda*, const Kernel*> by_ptr_;
  std::vector<ir::LambdaPtr> pinned_;  // aliases resolved via the sig path
  // Reduction entries (separate namespace: a lambda's map kernel and fold
  // kernel are different programs).
  std::unordered_multimap<uint64_t, Entry> by_sig_red_;
  std::unordered_map<RedKey, const Kernel*, RedKeyHash> by_ptr_red_;
};

} // namespace npad::rt
