#include "runtime/plan.hpp"

#include "ir/analysis.hpp"
#include "ir/liveness.hpp"
#include "ir/visit.hpp"
#include "runtime/kernel_cache.hpp"
#include "support/fault.hpp"

namespace npad::rt {

namespace {

using namespace ir;
using support::FaultKind;

// A statement foldable into a scalar-glue block: binds exactly one scalar
// (non-acc) result through a pure scalar operation. OpIndex is deliberately
// excluded — its bounds check must keep throwing ShapeError with the exact
// general-path message, and a Gather in a folded block would bypass it.
bool scalar_glue(const Stm& st) {
  if (st.vars.size() != 1) return false;
  const Type& t = st.types[0];
  if (t.rank != 0 || t.is_acc) return false;
  return std::holds_alternative<OpAtom>(st.e) || std::holds_alternative<OpBin>(st.e) ||
         std::holds_alternative<OpUn>(st.e) || std::holds_alternative<OpSelect>(st.e);
}

std::unique_ptr<const Plan> compile_body_plan(const Body& body, uint64_t* nplans);

// A plan worth routing through the planned evaluator: it either compiled
// real structure (any non-General step) or its release lists reclaim frame
// slots mid-body. All-General, release-free plans behave exactly like
// eval_body and are not worth the indirection.
bool plan_earns_keep(const Plan& plan) {
  for (const PlanStep& s : plan.steps) {
    if (s.kind != PlanStep::Kind::General || !s.releases.empty()) return true;
  }
  return false;
}

// Attaches the liveness release lists of stms [begin, end) to `step`.
void attach_releases(const ir::BodyLiveness& lv, size_t begin, size_t end, PlanStep& step) {
  for (size_t i = begin; i < end && i < lv.releases.size(); ++i) {
    step.releases.insert(step.releases.end(), lv.releases[i].begin(), lv.releases[i].end());
  }
}

// Folds stms [begin, end) — a run of >= 2 scalar-glue bindings — into one
// extent-1 kernel step. Falls back to per-statement General steps when the
// kernel compiler rejects the synthetic lambda (it never should for the ops
// scalar_glue admits, but plans must not be load-bearing for correctness).
void add_scalar_run(const Body& body, const ir::BodyLiveness& lv, size_t begin, size_t end,
                    Plan& plan) {
  Lambda glue;
  glue.body.stms.assign(body.stms.begin() + static_cast<ptrdiff_t>(begin),
                        body.stms.begin() + static_cast<ptrdiff_t>(end));
  // Every binding in the run is an output: later statements (and the body
  // result) may consume any of them.
  for (size_t i = begin; i < end; ++i) {
    glue.body.result.emplace_back(body.stms[i].vars[0]);
    glue.rets.push_back(body.stms[i].types[0]);
  }
  auto kopt = compile_kernel(glue);
  if (!kopt || !kopt->accs.empty() || kopt->num_inputs != 0 || !kopt->free_arrays.empty()) {
    for (size_t i = begin; i < end; ++i) {
      PlanStep s;
      s.kind = PlanStep::Kind::General;
      s.stm = static_cast<uint32_t>(i);
      attach_releases(lv, i, i + 1, s);
      plan.steps.push_back(std::move(s));
    }
    return;
  }
  PlanStep s;
  s.kind = PlanStep::Kind::Scalars;
  s.stm = static_cast<uint32_t>(begin);
  s.count = static_cast<uint32_t>(end - begin);
  s.scalars = std::make_shared<const Kernel>(std::move(*kopt));
  for (size_t i = begin; i < end; ++i) {
    s.out_vars.push_back(body.stms[i].vars[0]);
    s.out_types.push_back(body.stms[i].types[0].elem);
  }
  attach_releases(lv, begin, end, s);
  plan.steps.push_back(std::move(s));
}

std::unique_ptr<const Plan> compile_body_plan(const Body& body, uint64_t* nplans) {
  auto plan = std::make_unique<Plan>();
  const ir::BodyLiveness lv = ir::body_liveness(body);
  const auto& stms = body.stms;
  size_t i = 0;
  while (i < stms.size()) {
    // Runs of scalar glue fold into one kernelized block.
    if (scalar_glue(stms[i])) {
      size_t j = i + 1;
      while (j < stms.size() && scalar_glue(stms[j])) ++j;
      if (j - i >= 2) {
        add_scalar_run(body, lv, i, j, *plan);
        i = j;
        continue;
      }
    }
    // Kernelizable rank-1 maps pre-resolve their kernel from the immortal
    // process-wide cache; steady-state iterations skip the lookup entirely.
    // A map whose lambda takes array rows (rank > 0 non-acc params) can never
    // launch over rank-1 inputs, so it is statically General — no point
    // re-attempting the kernel binding every iteration.
    if (const auto* m = std::get_if<OpMap>(&stms[i].e)) {
      bool scalar_params = true;
      for (const auto& p : m->f->params) {
        if (!p.type.is_acc && p.type.rank != 0) scalar_params = false;
      }
      if (m->flat == FlatForm::None && scalar_params) {
        if (const Kernel* k = KernelCache::global().get(m->f)) {
          PlanStep s;
          s.kind = PlanStep::Kind::MapLaunch;
          s.stm = static_cast<uint32_t>(i);
          s.kernel = k;
          attach_releases(lv, i, i + 1, s);
          plan->steps.push_back(std::move(s));
          ++i;
          continue;
        }
      }
    }
    // For-loops with provably loop-invariant body extents get a nested plan
    // and the hoisted loop-buffer ring. While-loops and data-dependent
    // extents stay on the general evaluator.
    if (const auto* lp = std::get_if<OpLoop>(&stms[i].e)) {
      if (!lp->while_cond && loop_extents_invariant(*lp)) {
        PlanStep s;
        s.kind = PlanStep::Kind::Loop;
        s.stm = static_cast<uint32_t>(i);
        s.loop_body = compile_body_plan(*lp->body, nplans);
        s.hoist_buffers = true;
        attach_releases(lv, i, i + 1, s);
        plan->steps.push_back(std::move(s));
        ++i;
        continue;
      }
    }
    // OpIf arms get nested plans run in the enclosing frame when at least
    // one arm carries structure worth planning; trivial scalar ifs stay on
    // the general evaluator (same results, less indirection).
    if (const auto* br = std::get_if<OpIf>(&stms[i].e)) {
      auto tb = compile_body_plan(*br->tb, nplans);
      auto fb = compile_body_plan(*br->fb, nplans);
      if (plan_earns_keep(*tb) || plan_earns_keep(*fb)) {
        PlanStep s;
        s.kind = PlanStep::Kind::If;
        s.stm = static_cast<uint32_t>(i);
        s.if_true = std::move(tb);
        s.if_false = std::move(fb);
        attach_releases(lv, i, i + 1, s);
        plan->steps.push_back(std::move(s));
        ++i;
        continue;
      }
    }
    PlanStep s;
    s.kind = PlanStep::Kind::General;
    s.stm = static_cast<uint32_t>(i);
    attach_releases(lv, i, i + 1, s);
    plan->steps.push_back(std::move(s));
    ++i;
  }
  if (nplans != nullptr) ++*nplans;
  return plan;
}

// Collects every lambda reachable from `b` (SOAC lambdas, redomap
// pre-lambdas, while conditions), recursing through nested bodies and the
// collected lambdas' own bodies. Pointer identity dedups shared subtrees.
void collect_lambdas(const Body& b, std::vector<const Lambda*>& out);

void collect_lambdas_exp(const Exp& e, std::vector<const Lambda*>& out) {
  auto lam = [&](const LambdaPtr& l) {
    if (!l) return;
    out.push_back(l.get());
    collect_lambdas(l->body, out);
  };
  std::visit(Overload{
                 [&](const OpIf& o) {
                   collect_lambdas(*o.tb, out);
                   collect_lambdas(*o.fb, out);
                 },
                 [&](const OpLoop& o) {
                   collect_lambdas(*o.body, out);
                   lam(o.while_cond);
                 },
                 [&](const OpMap& o) { lam(o.f); },
                 [&](const OpReduce& o) { lam(o.op); lam(o.pre); },
                 [&](const OpScan& o) { lam(o.op); lam(o.pre); },
                 [&](const OpHist& o) { lam(o.op); lam(o.pre); },
                 [&](const OpWithAcc& o) { lam(o.f); },
                 [&](const auto&) {},
             },
             e);
}

void collect_lambdas(const Body& b, std::vector<const Lambda*>& out) {
  for (const Stm& st : b.stms) collect_lambdas_exp(st.e, out);
}

} // namespace

std::unique_ptr<const Plan> compile_plan(const ir::Body& body, uint64_t* nplans) {
  return compile_body_plan(body, nplans);
}

PlanCache& PlanCache::global() {
  // Leaked singleton, same lifetime policy as KernelCache/ProgCache: plans
  // hand out raw pointers that must stay valid on every thread until exit.
  static PlanCache* cache = new PlanCache();
  return *cache;
}

const ProgPlans* PlanCache::get(const std::shared_ptr<const ResolvedProg>& rp,
                                uint64_t* compiled) {
  // Crossed on every lookup (not just the compiling one) so the fault sweep
  // exercises the acquisition path deterministically despite the cache being
  // immortal: the site's crossing count is per run, not per process.
  NPAD_FAULT_SITE("plan.compile", FaultKind::Alloc);
  {
    std::shared_lock lk(mu_);
    auto it = by_rp_.find(rp.get());
    if (it != by_rp_.end()) return it->second.get();
  }
  uint64_t n = 0;
  auto plans = std::make_unique<ProgPlans>();
  plans->top = compile_plan(rp->fn.body, &n);
  // Lambda bodies entered via apply() compile alongside the top-level plan;
  // only plans that earn their keep are tabled (see plan.hpp).
  std::vector<const ir::Lambda*> lams;
  collect_lambdas(rp->fn.body, lams);
  for (const ir::Lambda* l : lams) {
    if (plans->lambdas.count(l)) continue;
    auto lp = compile_body_plan(l->body, &n);
    if (plan_earns_keep(*lp)) plans->lambdas.emplace(l, std::move(lp));
  }
  std::unique_lock lk(mu_);
  auto [it, fresh] = by_rp_.try_emplace(rp.get(), nullptr);
  if (fresh) {
    it->second = std::move(plans);
    pinned_.push_back(rp);
    if (compiled != nullptr) *compiled = n;
  }
  // A losing race discards this thread's plans; the winner's are equivalent
  // (compilation is deterministic) and already published.
  return it->second.get();
}

size_t PlanCache::size() const {
  std::shared_lock lk(mu_);
  return by_rp_.size();
}

} // namespace npad::rt
