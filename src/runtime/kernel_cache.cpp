#include "runtime/kernel_cache.hpp"

#include <mutex>

#include "ir/analysis.hpp"

namespace npad::rt {

KernelCache& KernelCache::global() {
  static KernelCache cache;
  return cache;
}

size_t KernelCache::size() const {
  std::shared_lock lk(mu_);
  return by_sig_.size() + by_sig_red_.size();
}

const Kernel* KernelCache::get(const ir::LambdaPtr& f, bool* was_hit) {
  {
    std::shared_lock lk(mu_);
    auto it = by_ptr_.find(f.get());
    if (it != by_ptr_.end()) {
      if (was_hit) *was_hit = true;
      return it->second;
    }
  }

  // Unknown pointer: try to alias a structurally identical entry.
  std::vector<uint64_t> sig = ir::structural_sig(*f);
  const uint64_t h = ir::structural_hash(sig);
  {
    std::unique_lock lk(mu_);
    auto pit = by_ptr_.find(f.get());  // raced with another thread?
    if (pit != by_ptr_.end()) {
      if (was_hit) *was_hit = true;
      return pit->second;
    }
    auto [lo, hi] = by_sig_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.sig == sig) {
        const Kernel* k = kernel_of(it->second);
        by_ptr_.emplace(f.get(), k);
        pinned_.push_back(f);
        if (was_hit) *was_hit = true;  // compilation was skipped
        return k;
      }
    }
  }

  // Compile outside the lock; on a race the first insert wins.
  auto compiled = std::make_unique<const std::optional<Kernel>>(compile_kernel(*f));
  std::unique_lock lk(mu_);
  auto pit = by_ptr_.find(f.get());
  if (pit != by_ptr_.end()) {
    if (was_hit) *was_hit = true;
    return pit->second;
  }
  auto [lo, hi] = by_sig_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.sig == sig) {
      const Kernel* k = kernel_of(it->second);
      by_ptr_.emplace(f.get(), k);
      pinned_.push_back(f);
      if (was_hit) *was_hit = true;
      return k;
    }
  }
  auto it = by_sig_.emplace(h, Entry{std::move(sig), f, nullptr, std::move(compiled)});
  const Kernel* k = kernel_of(it->second);
  by_ptr_.emplace(f.get(), k);
  if (was_hit) *was_hit = false;
  return k;
}

const Kernel* KernelCache::get_reduce(const ir::LambdaPtr& op, const ir::LambdaPtr& pre,
                                      bool scan, bool* was_hit) {
  const RedKey key{op.get(), pre.get(), scan};
  {
    std::shared_lock lk(mu_);
    auto it = by_ptr_red_.find(key);
    if (it != by_ptr_red_.end()) {
      if (was_hit) *was_hit = true;
      return it->second;
    }
  }

  // Structural signature: form marker, fold op, then the pre-lambda when
  // present (an absent pre is distinguished by the marker payload).
  std::vector<uint64_t> sig;
  sig.push_back(scan ? 0x7B00000000000000ull : 0x7A00000000000000ull);
  ir::detail::SigBuilder b(sig);
  b.lambda(*op);
  sig.push_back(pre != nullptr);
  if (pre) b.lambda(*pre);
  const uint64_t h = ir::structural_hash(sig);

  auto lookup_sig = [&]() -> std::optional<const Kernel*> {
    auto [lo, hi] = by_sig_red_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.sig == sig) return kernel_of(it->second);
    }
    return std::nullopt;
  };
  {
    std::unique_lock lk(mu_);
    auto pit = by_ptr_red_.find(key);  // raced with another thread?
    if (pit != by_ptr_red_.end()) {
      if (was_hit) *was_hit = true;
      return pit->second;
    }
    if (auto found = lookup_sig()) {
      by_ptr_red_.emplace(key, *found);
      pinned_.push_back(op);
      if (pre) pinned_.push_back(pre);
      if (was_hit) *was_hit = true;  // compilation was skipped
      return *found;
    }
  }

  // Compile outside the lock; on a race the first insert wins.
  auto compiled = std::make_unique<const std::optional<Kernel>>(
      compile_reduce_kernel(*op, pre.get(), scan));
  std::unique_lock lk(mu_);
  auto pit = by_ptr_red_.find(key);
  if (pit != by_ptr_red_.end()) {
    if (was_hit) *was_hit = true;
    return pit->second;
  }
  if (auto found = lookup_sig()) {
    by_ptr_red_.emplace(key, *found);
    pinned_.push_back(op);
    if (pre) pinned_.push_back(pre);
    if (was_hit) *was_hit = true;
    return *found;
  }
  auto it = by_sig_red_.emplace(h, Entry{std::move(sig), op, pre, std::move(compiled)});
  const Kernel* kn = kernel_of(it->second);
  by_ptr_red_.emplace(key, kn);
  if (was_hit) *was_hit = false;
  return kn;
}

} // namespace npad::rt
