#include "runtime/kernel_cache.hpp"

#include <mutex>

#include "ir/analysis.hpp"

namespace npad::rt {

KernelCache& KernelCache::global() {
  static KernelCache cache;
  return cache;
}

size_t KernelCache::size() const {
  std::shared_lock lk(mu_);
  return by_sig_.size();
}

const Kernel* KernelCache::get(const ir::LambdaPtr& f, bool* was_hit) {
  {
    std::shared_lock lk(mu_);
    auto it = by_ptr_.find(f.get());
    if (it != by_ptr_.end()) {
      if (was_hit) *was_hit = true;
      return it->second;
    }
  }

  // Unknown pointer: try to alias a structurally identical entry.
  std::vector<uint64_t> sig = ir::structural_sig(*f);
  const uint64_t h = ir::structural_hash(sig);
  {
    std::unique_lock lk(mu_);
    auto pit = by_ptr_.find(f.get());  // raced with another thread?
    if (pit != by_ptr_.end()) {
      if (was_hit) *was_hit = true;
      return pit->second;
    }
    auto [lo, hi] = by_sig_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.sig == sig) {
        const Kernel* k = kernel_of(it->second);
        by_ptr_.emplace(f.get(), k);
        pinned_.push_back(f);
        if (was_hit) *was_hit = true;  // compilation was skipped
        return k;
      }
    }
  }

  // Compile outside the lock; on a race the first insert wins.
  auto compiled = std::make_unique<const std::optional<Kernel>>(compile_kernel(*f));
  std::unique_lock lk(mu_);
  auto pit = by_ptr_.find(f.get());
  if (pit != by_ptr_.end()) {
    if (was_hit) *was_hit = true;
    return pit->second;
  }
  auto [lo, hi] = by_sig_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.sig == sig) {
      const Kernel* k = kernel_of(it->second);
      by_ptr_.emplace(f.get(), k);
      pinned_.push_back(f);
      if (was_hit) *was_hit = true;
      return k;
    }
  }
  auto it = by_sig_.emplace(h, Entry{std::move(sig), f, std::move(compiled)});
  const Kernel* k = kernel_of(it->second);
  by_ptr_.emplace(f.get(), k);
  if (was_hit) *was_hit = false;
  return k;
}

} // namespace npad::rt
