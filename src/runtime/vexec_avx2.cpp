// AVX2 vexec engine build: the same engine body compiled with
// -mavx2 -mfma so the constexpr lane loops vectorize to 4-wide ymm ops
// (gathers and atomics stay scalar). -ffp-contract=off still applies —
// mul+add pairs must NOT contract to vfmadd, or results would diverge from
// the portable/scalar tiers. The TU compiles to nothing unless CMake
// detected x86-64 AVX2 support and defined NPAD_VEXEC_HAVE_AVX2 for it;
// select_ops() additionally checks the running CPU before dispatching here.

#ifdef NPAD_VEXEC_HAVE_AVX2

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "runtime/vexec.hpp"
#include "support/error.hpp"

namespace npad::rt::vexec::avx2 {
#define NPAD_VEXEC_NAME "avx2"
#include "runtime/vexec_engine.inc"
#undef NPAD_VEXEC_NAME
} // namespace npad::rt::vexec::avx2

#endif // NPAD_VEXEC_HAVE_AVX2
