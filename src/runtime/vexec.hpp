#pragma once

// Vectorized execution tier for the kernel machine (ROADMAP item 1, the
// "JIT tier"): at first launch, a compiled kernel's KInstr program is
// lowered — once per (kernel, lane width), cached alongside the immortal
// KernelCache entry it came from — into a dense pre-decoded schedule of
// VInstrs whose handlers are compiled per ISA (a portable auto-vectorized
// build, plus an AVX2 build selected by runtime CPU detection). The
// lowering does three things the per-KInstr switch cannot:
//
//  1. Prologue extraction: ConstF/LoadLen/free-scalar broadcasts leave the
//     instruction stream entirely (a compact init list applied once per
//     register file), so the per-batch loop dispatches only real work, and
//     every operand is a precomputed element offset (reg * W) instead of a
//     per-instruction multiply.
//  2. Superinstruction fusion: dominant adjacent pairs collapse into one
//     handler (mul+add, add+add, mul+mul, neg+exp, gather+arith,
//     arith+store), and copy chains (Mov glue, fold write-backs) are
//     coalesced away. Every fused handler keeps each intermediate's own
//     IEEE rounding — fusion amortizes dispatch, it NEVER contracts to a
//     hardware FMA (the engine TUs build with -ffp-contract=off).
//  3. Whole-loop micro-kernels: the two dominant InlineLoop shapes — the
//     dot-product fold (gather·gather → mul → fold-add) and the backward
//     dual-scatter (two gathers, two scaled products, two UpdAcc streams)
//     — run as single handlers over precomputed per-lane streams, instead
//     of per-trip dispatch through a recursive span. Any other loop body
//     runs through a generic in-place trip loop.
//
// Bit-exactness contract: for any launch, the vexec tier produces the same
// bits as the W-lane register machine at the same lane width. Lane/batch
// splits, fold lane-blocking, combine order, UpdAcc instruction-major lane
// order, and scalar tails all mirror runtime/kernel.cpp exactly; per-lane
// elementwise SIMD is bit-identical by IEEE; fused pairs preserve operand
// order and intermediate roundings. The scalar register machine remains
// the always-available fallback (InterpOptions::use_vexec, NPAD_VEXEC).

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/kernel.hpp"

namespace npad::rt::vexec {

enum class VOp : uint8_t {
  // straight-line ops, 1:1 with the KOp they lower from
  Mov, Add, Sub, Mul, Div, IDiv, Pow, Min, Max, Mod,
  Eq, Ne, Lt, Le, Gt, Ge, And, Or,
  Neg, Exp, Log, Sqrt, Sin, Cos, Tanh, Abs, Sign, LGamma, Digamma, Not, Trunc,
  Select,
  LoadElem, LoadIdx, Gather, UpdAcc, StoreOut,
  // superinstructions (fused adjacent pairs; flags bit 0 = swapped operand
  // order of the second op, preserving IEEE NaN-propagation order)
  MulAdd,     // d = (a*b) + c     [flag: d = c + (a*b)]
  MulSub,     // d = (a*b) - c     [flag: d = c - (a*b)]
  AddAdd,     // d = (a+b) + c     [flag: d = c + (a+b)]
  MulMul,     // d = (a*b) * c     [flag: d = c * (a*b)]
  NegExp,     // d = exp(-a)
  GatherMul,  // g = free[slot][idx...]; d = g * b   [flag: d = b * g]
  GatherAdd,  // g = free[slot][idx...]; d = g + b   [flag: d = b + g]
  MulStore,   // output[slot] element = a * b
  AddStore,   // output[slot] element = a + b
  // inline SOAC blocks (slot = VProgram::loops index)
  Loop,       // generic: run [body_begin, body_end) trip times
  DotLoop,    // fused dot-product fold (falls back to the body on non-f64)
  Axpy2Loop,  // fused dual-scatter map loop (same fallback)
};

struct VInstr {
  VOp op = VOp::Mov;
  uint8_t flags = 0;
  int32_t slot = -1;                 // array slot, or loops[] index
  int32_t d = -1, a = -1, b = -1, c = -1;  // register-file element offsets
  int32_t idx[4] = {-1, -1, -1, -1};       // gather/UpdAcc index offsets
  int32_t nidx = 0;
};

// Lowered InlineLoop block. All register references are element offsets.
struct VLoop {
  uint32_t body_begin = 0, body_end = 0;  // VInstr range (generic/fallback)
  int32_t trip = -1, ivar = -1, acc = -1, neutral = -1;
  // Multi-result folds: accumulators 1..k-1, seeded on entry like acc.
  std::vector<int32_t> accs2, neutrals2;
  // DotLoop: acc folds A[baseA(l)+t] * B[baseB(l)+t] over t in [0, trip).
  // a_/b_idx hold the leading (loop-invariant) gather index offsets; the
  // trailing index is the loop variable, stride 1 by full-indexing.
  int32_t a_slot = -1, b_slot = -1;
  int32_t a_idx[3] = {-1, -1, -1}, b_idx[3] = {-1, -1, -1};
  int32_t a_nidx = 0, b_nidx = 0;
  uint8_t dot_flags = 0;  // bit0: product computed as B*A; bit1: fold is prod+acc
  // Axpy2Loop: p1 = mul1, p2 = mul2 (each an invariant scalar times one of
  // the gathered streams), then acc[u1_slot][u1_idx...,t] += {p1|p2} and
  // acc[u2_slot][...] += the other, in instruction-major lane order.
  int32_t s1 = -1, s2 = -1;  // invariant multiplier offsets
  // ax_flags: bit0 m1 reads g1 (else g2); bit1 m1 computes s*g (else g*s);
  //           bit2/bit3 same for m2; bit4 u1 adds m1's product (else m2's).
  uint8_t ax_flags = 0;
  int32_t u1_slot = -1, u2_slot = -1;
  int32_t u1_idx[3] = {-1, -1, -1}, u2_idx[3] = {-1, -1, -1};
  int32_t u1_nidx = 0, u2_nidx = 0;
};

// Prologue init: one launch-invariant register broadcast.
struct VInit {
  enum class Kind : uint8_t { Imm, FreeScalar, ArrayLen };
  int32_t off = 0;  // register-file element offset (reg * W)
  Kind kind = Kind::Imm;
  int32_t src = -1;  // free-scalar index / free-array slot
  double imm = 0.0;
  int32_t dim = 0;   // ArrayLen: shape dimension to read (stream lengths)
};

// One lowered program at a fixed lane width W (operand offsets are baked
// for that width, so wide and narrow variants are separate programs).
struct VProgram {
  int W = 0;  // 0 = absent
  int num_regs = 0;
  std::vector<VInstr> code;
  std::vector<VInit> prologue;
  std::vector<VLoop> loops;              // parallel to Kernel::loops
  uint32_t fold_begin = 0, fold_end = 0; // remapped fold-subprogram bounds
  std::vector<int32_t> red_acc_off, red_elem_off;
};

// Cached vexec artifact for one (kernel, lane width): the wide program (W =
// lanes; absent when lanes == 1) plus the W=1 program driving scalar tails,
// scans, hist chunks, scalar blocks and fold combines.
struct Entry {
  VProgram wide;
  VProgram narrow;
  int superinstrs = 0;  // fused superinstructions in one program's code
};

// Per-ISA driver table. Each function mirrors the corresponding
// KernelLaunch method on runtime/kernel.cpp bit-exactly.
struct Ops {
  void (*run)(const Entry&, const KernelLaunch&, int64_t lo, int64_t hi);
  void (*run_reduce)(const Entry&, const KernelLaunch&, int64_t lo, int64_t hi,
                     double* partials);
  void (*run_segred_chunk)(const Entry&, const KernelLaunch&, int64_t seg_lo, int64_t seg_hi,
                           int64_t seg_len);
  void (*run_scan_chunk)(const Entry&, const KernelLaunch&, int64_t lo, int64_t hi,
                         double* carry);
  int64_t (*run_hist_chunk)(const Entry&, const KernelLaunch&, int64_t lo, int64_t hi,
                            double* bins, int64_t m, const int64_t* inds);
  void (*run_scalar)(const Entry&, const Kernel&, const double* frees, double* out);
  const char* name;
};

// Lazily lowers (and caches process-wide, immortal) the vexec entry for `k`
// at lane width `lanes`. `k` must itself be immortal — owned by the kernel
// cache or an execution plan, never by the launch. Returns nullptr when the
// width is unsupported (wide programs exist for W in {4, 8, 16} only) or
// the program does not lower; the caller then stays on the register machine.
const Entry* lookup(const Kernel& k, int lanes);

// ISA dispatch: the AVX2 table when compiled in and the CPU reports
// avx2+fma support, else the portable table. `force_portable` pins the
// portable handlers (NPAD_VEXEC=portable, conformance fallback row).
const Ops* select_ops(bool force_portable);

// Engine entry tables defined by the per-ISA TUs (vexec_engine.inc).
namespace portable {
const Ops* ops();
}
#ifdef NPAD_VEXEC_HAVE_AVX2
namespace avx2 {
const Ops* ops();
}
#endif

} // namespace npad::rt::vexec
