#pragma once

// Slot resolution: turns the interpreter's per-scope hash-map environments
// into flat vector frames. A program is alpha-renamed so every binding id is
// unique, then every variable is resolved once to an (activation level, slot)
// pair. At runtime an activation (function entry, lambda application, loop
// iteration) allocates one flat frame; variable lookup walks a static-link
// chain of frames and indexes — no hashing, no per-scope rehash churn.
//
// Resolution is cached process-wide, keyed by the structural hash of the
// entry function (ir::structural_hash), so iterative drivers that re-run the
// same Prog pay the cost once. Entries are immortal.

#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ir/ast.hpp"

namespace npad::rt {

// (activation level, slot index) of a variable's unique binding site.
struct SlotRef {
  uint32_t level = UINT32_MAX;
  uint32_t slot = 0;
  bool valid() const { return level != UINT32_MAX; }
};

struct ActivationInfo {
  uint32_t level = 0;      // static nesting depth (function body = 0)
  uint32_t num_slots = 0;  // frame size: params + all bindings in the scope
};

struct ResolvedProg {
  std::shared_ptr<ir::Module> mod;         // private module copy (owns fresh ids)
  ir::Function fn;                         // alpha-renamed: binding ids unique
  std::vector<SlotRef> slots;              // var id -> (level, slot)
  std::vector<ActivationInfo> activations; // indexed by activation id
  uint32_t root_activation = 0;
};

// Alpha-renames `p` into a private module copy and computes the slot table.
std::shared_ptr<const ResolvedProg> resolve_prog(const ir::Prog& p);

// Process-wide immortal cache of resolved programs.
class ProgCache {
public:
  static ProgCache& global();

  // Returns the resolved form of `p`, resolving on first sight. Structurally
  // identical programs share one entry. `was_hit` (optional) reports whether
  // resolution was skipped.
  std::shared_ptr<const ResolvedProg> get(const ir::Prog& p, bool* was_hit = nullptr);

  size_t size() const;

private:
  struct Entry {
    std::vector<uint64_t> sig;
    std::shared_ptr<const ResolvedProg> rp;
  };

  mutable std::shared_mutex mu_;
  std::unordered_multimap<uint64_t, Entry> by_sig_;
};

} // namespace npad::rt
