#pragma once

// Process-wide, thread-safe, size-bucketed pool of raw buffer storage.
//
// Every `Buffer` allocation (runtime/value.hpp) acquires its storage here and
// returns it on destruction. Blocks are bucketed by power-of-two byte size;
// an acquire pops a block from the matching bucket (a *hit* — no malloc, no
// page faults, warm cache lines) or falls back to the heap (a *miss*). The
// pool is bounded: each bucket keeps a fixed number of blocks and the total
// retained footprint is capped, so long-running drivers cannot hoard memory.
//
// Locking is sharded per bucket, so concurrent workers allocating different
// sizes never contend, and same-size contention is a short push/pop critical
// section. Under AddressSanitizer retained blocks are poisoned while they
// sit in the pool, so a stale view into a released buffer still traps even
// though the memory was never returned to the system allocator.
//
// The zero-fill policy lives with the caller: `Buffer::make` clears the
// requested range after acquiring, while `Buffer::make_uninit` hands the
// recycled block back as-is for buffers that are provably fully overwritten
// (kernel outputs) — eliminating the memset that used to accompany every
// fresh intermediate.
//
// Resource governance: the pool tracks live (acquired, not yet released)
// bytes and buffer counts, and an optional byte *budget* (set via
// `set_budget_bytes` or the NPAD_POOL_BUDGET_BYTES env var). An acquire that
// would push the live footprint past the budget throws `npad::ResourceError`
// instead of letting the process walk into the OOM killer; the interpreter
// unwinds, releasing everything it acquired, and the caller gets a typed,
// recoverable error. Tests use `outstanding_bytes()` / `outstanding_buffers()`
// to assert zero leaks after an unwind (tests/test_fault.cpp).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace npad::rt {

class BufferPool {
public:
  // Smallest pooled block; requests below this round up to it.
  static constexpr size_t kMinBytes = 64;
  // Largest pooled block; bigger requests bypass the pool entirely.
  static constexpr size_t kMaxBytes = size_t{1} << 30;
  // Retention bounds: per-bucket block count and total retained bytes.
  static constexpr size_t kMaxPerBucket = 16;
  static constexpr size_t kMaxRetainedBytes = size_t{256} << 20;

  // Leaked singleton: never destroyed, so buffers freed during static
  // teardown can still return their storage safely.
  static BufferPool& global();

  // Returns a block of capacity >= `bytes` (bucket-rounded, reported via
  // `cap_bytes`). `hit` is set when the block was recycled from the pool.
  // Throws npad::ResourceError when a budget is set and the live footprint
  // would exceed it.
  void* acquire(size_t bytes, size_t* cap_bytes, bool* hit);

  // Returns a block obtained from acquire(); retains it for reuse when within
  // bounds, frees it otherwise.
  void release(void* p, size_t cap_bytes) noexcept;

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t retained_bytes = 0;
    uint64_t outstanding_bytes = 0;    // live: acquired and not yet released
    uint64_t outstanding_buffers = 0;  // live block count
    uint64_t budget_bytes = 0;         // 0 = unlimited
    uint64_t budget_rejections = 0;    // acquires refused by the budget
    uint64_t arena_parked_buffers = 0; // live blocks currently parked in launch arenas
    uint64_t arena_parked_bytes = 0;   // their total capacity
  };
  Counters counters() const;
  // Alias of counters(); the name tests and benches use.
  Counters stats() const { return counters(); }

  // Live footprint: bytes / blocks acquired and not yet released.
  size_t outstanding_bytes() const {
    return outstanding_bytes_.load(std::memory_order_relaxed);
  }
  size_t outstanding_buffers() const {
    return outstanding_buffers_.load(std::memory_order_relaxed);
  }

  // Byte budget on the live footprint; 0 disables enforcement. Initialized
  // from NPAD_POOL_BUDGET_BYTES (if set) on first use of global().
  void set_budget_bytes(size_t budget) {
    budget_bytes_.store(budget, std::memory_order_relaxed);
  }
  size_t budget_bytes() const { return budget_bytes_.load(std::memory_order_relaxed); }

  // Launch-arena accounting (runtime/interp.cpp): arenas park sole-owner
  // launch buffers in per-thread rings for recycling instead of releasing
  // them here; these gauges keep the parked share of the live footprint
  // visible in stats(). Parked buffers are still `outstanding` — they unpark
  // (and decrement) when the arena is torn down and the rings' references
  // drop.
  void note_arena_park(uint64_t n, uint64_t bytes) {
    arena_parked_buffers_.fetch_add(n, std::memory_order_relaxed);
    arena_parked_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_arena_unpark(uint64_t n, uint64_t bytes) {
    arena_parked_buffers_.fetch_sub(n, std::memory_order_relaxed);
    arena_parked_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  // Frees every retained block (diagnostics/tests).
  void trim();

private:
  BufferPool();

  static constexpr size_t kNumBuckets = 32;
  static size_t bucket_of(size_t bytes);

  struct Bucket {
    std::mutex mu;
    std::vector<void*> blocks;
  };

  // Fault site + budget admission, shared by all acquire paths; throws
  // npad::ResourceError on refusal. Accounting is committed only after the
  // block is actually obtained.
  void admit(size_t cap);

  Bucket buckets_[kNumBuckets];
  std::atomic<size_t> retained_bytes_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<size_t> outstanding_bytes_{0};
  std::atomic<size_t> outstanding_buffers_{0};
  std::atomic<size_t> budget_bytes_{0};
  std::atomic<uint64_t> budget_rejections_{0};
  std::atomic<uint64_t> arena_parked_buffers_{0};
  std::atomic<uint64_t> arena_parked_bytes_{0};
};

} // namespace npad::rt
