#pragma once

// Compiled execution plans: the whole-program analogue of the kernel cache.
//
// Between slot resolution (runtime/resolve.hpp) and evaluation, the plan
// compiler lowers a resolved program's top-level body — and, transitively,
// each plannable OpLoop body — ONCE into a straight-line schedule of steps:
//
//   Scalars   a run of >= 2 consecutive pure scalar bindings folded into a
//             single extent-1 kernel program (runtime/kernel.hpp) — executed
//             allocation-free with results written straight back to slots;
//   MapLaunch a kernelizable rank-1 OpMap with its kernel pre-bound from the
//             process-wide KernelCache at plan time — steady-state loop
//             iterations re-bind arguments but never re-derive the kernel;
//   Loop      a for-loop whose body extents are provably loop-invariant
//             (ir::loop_extents_invariant): the body gets its own nested
//             plan, and the outermost planned loop installs a per-thread
//             loop-buffer ring so launch scratch is acquired once and
//             recycled across iterations (double-buffered across the carry)
//             instead of round-tripping the global pool;
//   General   everything else — the step evaluates that one statement
//             through the ordinary interpreter (eval_exp), preserving exact
//             semantics for anything non-plannable (OpIf bodies, while
//             loops, data-dependent extents, reduces/scans/hists, ...).
//
// Plans never change results: MapLaunch runs the identical kernel the
// evaluator would pick, Scalars blocks compute the identical double-precision
// values the scalar evaluator produces for the folded ops, and planned loops
// execute iterations in the same order over the same frames — planned vs.
// plan-disabled execution is bit-exact (tests/test_plan.cpp). If a step's
// preconditions fail at runtime (an unexpected binding shape), it falls back
// to the general evaluator for that statement.
//
// PlanCache is process-wide and immortal like KernelCache/ProgCache, keyed
// by the ResolvedProg entry (resolved programs are themselves structurally
// deduplicated, so pointer identity is a sound structural key).

#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ir/ast.hpp"
#include "runtime/kernel.hpp"
#include "runtime/resolve.hpp"

namespace npad::rt {

struct Plan;

struct PlanStep {
  enum class Kind : uint8_t { General, Scalars, MapLaunch, Loop };

  Kind kind = Kind::General;
  uint32_t stm = 0;    // index into the planned body's stms
  uint32_t count = 1;  // Scalars: number of statements folded

  // Scalars: the extent-1 kernel program plus writeback slots. Free scalars
  // are read from the environment in kernel free_scalars order; result j is
  // converted with out_types[j] and bound to out_vars[j].
  std::shared_ptr<const Kernel> scalars;
  std::vector<ir::Var> out_vars;
  std::vector<ScalarType> out_types;

  // MapLaunch: pinned by the process-wide kernel cache (immortal).
  const Kernel* kernel = nullptr;

  // Loop: the nested body plan. hoist_buffers records that extents are
  // loop-invariant, enabling the loop-buffer ring.
  std::unique_ptr<const Plan> loop_body;
  bool hoist_buffers = false;
};

struct Plan {
  std::vector<PlanStep> steps;
};

// Lowers `body` into a plan (recursing into plannable loop bodies). `nplans`,
// when set, is incremented once per plan object compiled (including nested
// loop-body plans) — the InterpStats::plans_compiled feed.
std::unique_ptr<const Plan> compile_plan(const ir::Body& body, uint64_t* nplans = nullptr);

// Process-wide immortal cache of execution plans for resolved programs.
class PlanCache {
public:
  static PlanCache& global();

  // Returns the plan for `rp`'s top-level function body, compiling on first
  // sight. `compiled`, when set, receives the number of plan objects
  // compiled by this call (0 on a cache hit). Carries the fault site
  // "plan.compile" (FaultKind::Alloc), crossed once per lookup so the sweep
  // exercises the acquisition path deterministically.
  const Plan* get(const std::shared_ptr<const ResolvedProg>& rp, uint64_t* compiled = nullptr);

  size_t size() const;

private:
  mutable std::shared_mutex mu_;
  std::unordered_map<const ResolvedProg*, std::unique_ptr<const Plan>> by_rp_;
  std::vector<std::shared_ptr<const ResolvedProg>> pinned_;  // keep keys alive
};

} // namespace npad::rt
