#pragma once

// Compiled execution plans: the whole-program analogue of the kernel cache.
//
// Between slot resolution (runtime/resolve.hpp) and evaluation, the plan
// compiler lowers a resolved program's top-level body — and, transitively,
// each plannable OpLoop body — ONCE into a straight-line schedule of steps:
//
//   Scalars   a run of >= 2 consecutive pure scalar bindings folded into a
//             single extent-1 kernel program (runtime/kernel.hpp) — executed
//             allocation-free with results written straight back to slots;
//   MapLaunch a kernelizable rank-1 OpMap with its kernel pre-bound from the
//             process-wide KernelCache at plan time — steady-state loop
//             iterations re-bind arguments but never re-derive the kernel;
//   Loop      a for-loop whose body extents are provably loop-invariant
//             (ir::loop_extents_invariant): the body gets its own nested
//             plan, and the outermost planned loop installs a per-thread
//             loop-buffer ring so launch scratch is acquired once and
//             recycled across iterations (double-buffered across the carry)
//             instead of round-tripping the global pool;
//   If        an OpIf whose arms carry plannable structure: the condition is
//             evaluated as a plan step and each arm gets its own nested plan
//             running in the enclosing frame (if-arms are not activations),
//             so planned regions no longer shatter at every branch;
//   General   everything else — the step evaluates that one statement
//             through the ordinary interpreter (eval_exp), preserving exact
//             semantics for anything non-plannable (while loops,
//             data-dependent extents, reduces/scans/hists, ...).
//
// Beyond the top-level body, plans are also compiled for every lambda body
// the evaluator enters through EvalCtx::apply() (general-path map elements,
// reduce/scan operators, withacc bodies, ...): ProgPlans carries an
// immutable pointer-keyed table of lambda-body plans built eagerly alongside
// the top-level plan, so apply() routes hot inner bodies through the same
// compiled schedule. Only lambdas whose plan earns its keep (a non-General
// step or a nonempty release list) are tabled; everything else stays on
// plain eval_body.
//
// Each step additionally carries a *release list* (ir/liveness.hpp): the
// variables bound by the planned body whose last use falls inside the step's
// statement range. The evaluator clears their frame slots after the step
// completes, dropping the frame's reference so sole-owner (use_count()==1)
// launch buffers become reclaimable by the per-thread launch arena while the
// plan is still running — the memory-planning half of this layer. Releases
// are plan metadata only: the plan-disabled path never sees them, and
// clearing a slot is unobservable to a correct program (liveness proves no
// later read).
//
// Plans never change results: MapLaunch runs the identical kernel the
// evaluator would pick, Scalars blocks compute the identical double-precision
// values the scalar evaluator produces for the folded ops, and planned loops
// execute iterations in the same order over the same frames — planned vs.
// plan-disabled execution is bit-exact (tests/test_plan.cpp). If a step's
// preconditions fail at runtime (an unexpected binding shape), it falls back
// to the general evaluator for that statement.
//
// PlanCache is process-wide and immortal like KernelCache/ProgCache, keyed
// by the ResolvedProg entry (resolved programs are themselves structurally
// deduplicated, so pointer identity is a sound structural key). Lambda keys
// are pointers into the pinned resolved program, so they share its lifetime.

#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ir/ast.hpp"
#include "runtime/kernel.hpp"
#include "runtime/resolve.hpp"

namespace npad::rt {

struct Plan;

struct PlanStep {
  enum class Kind : uint8_t { General, Scalars, MapLaunch, Loop, If };

  Kind kind = Kind::General;
  uint32_t stm = 0;    // index into the planned body's stms
  uint32_t count = 1;  // Scalars: number of statements folded

  // Scalars: the extent-1 kernel program plus writeback slots. Free scalars
  // are read from the environment in kernel free_scalars order; result j is
  // converted with out_types[j] and bound to out_vars[j].
  std::shared_ptr<const Kernel> scalars;
  std::vector<ir::Var> out_vars;
  std::vector<ScalarType> out_types;

  // MapLaunch: pinned by the process-wide kernel cache (immortal).
  const Kernel* kernel = nullptr;

  // Loop: the nested body plan. hoist_buffers records that extents are
  // loop-invariant, enabling the loop-buffer ring.
  std::unique_ptr<const Plan> loop_body;
  bool hoist_buffers = false;

  // If: per-arm nested plans, run in the enclosing frame.
  std::unique_ptr<const Plan> if_true, if_false;

  // Liveness release list (ir/liveness.hpp): vars bound by the planned body
  // whose last use falls in this step's statement range; the evaluator
  // clears their slots after the step completes.
  std::vector<ir::Var> releases;
};

struct Plan {
  std::vector<PlanStep> steps;
};

// The compiled schedule for one resolved program: the top-level body plan
// plus the eagerly-built, immutable table of lambda-body plans reached via
// EvalCtx::apply() (see file comment). Lookups are lock-free once published.
struct ProgPlans {
  std::unique_ptr<const Plan> top;
  std::unordered_map<const ir::Lambda*, std::unique_ptr<const Plan>> lambdas;
};

// Lowers `body` into a plan (recursing into plannable loop bodies and OpIf
// arms). `nplans`, when set, is incremented once per plan object compiled
// (including nested loop-body and if-arm plans) — the
// InterpStats::plans_compiled feed.
std::unique_ptr<const Plan> compile_plan(const ir::Body& body, uint64_t* nplans = nullptr);

// Process-wide immortal cache of execution plans for resolved programs.
class PlanCache {
public:
  static PlanCache& global();

  // Returns the compiled schedule for `rp` (top-level body plan + lambda
  // table), compiling on first sight. `compiled`, when set, receives the
  // number of plan objects compiled by this call (0 on a cache hit).
  // Carries the fault site "plan.compile" (FaultKind::Alloc), crossed once
  // per lookup so the sweep exercises the acquisition path deterministically.
  const ProgPlans* get(const std::shared_ptr<const ResolvedProg>& rp,
                       uint64_t* compiled = nullptr);

  size_t size() const;

private:
  mutable std::shared_mutex mu_;
  std::unordered_map<const ResolvedProg*, std::unique_ptr<const ProgPlans>> by_rp_;
  std::vector<std::shared_ptr<const ResolvedProg>> pinned_;  // keep keys alive
};

} // namespace npad::rt
