#pragma once

// Runtime value model: scalars, contiguous arrays (with cheap row views via
// buffer offsets) and accumulators (write-only views with atomic updates).

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <numeric>
#include <variant>
#include <vector>

#include "ir/ast.hpp"

namespace npad::rt {

using ir::ScalarType;

inline size_t scalar_bytes(ScalarType t) { return t == ScalarType::Bool ? 1 : 8; }

// Raw typed storage. Allocation is routed through the process-wide
// size-bucketed buffer pool (runtime/buffer_pool.hpp): freed buffers return
// their storage to the pool, and `make_uninit` skips the zero-fill for
// buffers that are provably fully overwritten (kernel outputs).
struct Buffer {
  void* raw = nullptr;      // owned storage (pool bucket or heap block)
  size_t elems = 0;         // element count
  size_t cap_bytes = 0;     // actual allocation size (bucket-rounded)
  ScalarType type = ScalarType::F64;

  Buffer() = default;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  ~Buffer();  // returns storage to the pool (buffer_pool.cpp)

  // Zero-filled allocation. `pool_hit`, when non-null, reports whether the
  // storage was recycled from the pool (for InterpStats accounting).
  static std::shared_ptr<Buffer> make(ScalarType t, size_t n, bool* pool_hit = nullptr);
  // Uninitialized allocation: contents are unspecified. Only valid when every
  // element is overwritten before it is read.
  static std::shared_ptr<Buffer> make_uninit(ScalarType t, size_t n, bool* pool_hit = nullptr);

  size_t size() const { return elems; }

  // Typed accessors assert the buffer's element type in debug builds — the
  // loud-failure guard the old std::variant storage provided for free.
  double* f64() { assert(type == ScalarType::F64); return static_cast<double*>(raw); }
  const double* f64() const { assert(type == ScalarType::F64); return static_cast<const double*>(raw); }
  int64_t* i64() { assert(type == ScalarType::I64); return static_cast<int64_t*>(raw); }
  const int64_t* i64() const { assert(type == ScalarType::I64); return static_cast<const int64_t*>(raw); }
  uint8_t* b8() { assert(type == ScalarType::Bool); return static_cast<uint8_t*>(raw); }
  const uint8_t* b8() const { assert(type == ScalarType::Bool); return static_cast<const uint8_t*>(raw); }
};

using BufferPtr = std::shared_ptr<Buffer>;

// A (possibly offset) dense view into a buffer. Row views share the buffer.
struct ArrayVal {
  BufferPtr buf;
  int64_t offset = 0;
  std::vector<int64_t> shape;
  ScalarType elem = ScalarType::F64;

  int rank() const { return static_cast<int>(shape.size()); }
  int64_t elems() const {
    return std::accumulate(shape.begin(), shape.end(), int64_t{1}, std::multiplies<>());
  }
  int64_t outer() const { return shape.empty() ? 0 : shape[0]; }
  int64_t row_elems() const {
    assert(!shape.empty());
    if (shape[0] == 0) return 0;  // empty array: no rows, no row extent
    return elems() / shape[0];
  }

  static ArrayVal alloc(ScalarType t, std::vector<int64_t> shp, bool* pool_hit = nullptr) {
    ArrayVal a;
    a.elem = t;
    a.shape = std::move(shp);
    a.buf = Buffer::make(t, static_cast<size_t>(a.elems()), pool_hit);
    return a;
  }

  // Uninitialized allocation; only for arrays whose every element is written
  // before being read (e.g. kernel launch outputs).
  static ArrayVal alloc_uninit(ScalarType t, std::vector<int64_t> shp, bool* pool_hit = nullptr) {
    ArrayVal a;
    a.elem = t;
    a.shape = std::move(shp);
    a.buf = Buffer::make_uninit(t, static_cast<size_t>(a.elems()), pool_hit);
    return a;
  }

  // Whole-buffer, offset-zero view test: safe to mutate in place when unique.
  bool whole() const { return offset == 0 && buf && elems() == static_cast<int64_t>(buf->size()); }

  double get_f64(int64_t i) const {
    switch (elem) {
      case ScalarType::F64: return buf->f64()[offset + i];
      case ScalarType::I64: return static_cast<double>(buf->i64()[offset + i]);
      case ScalarType::Bool: return static_cast<double>(buf->b8()[offset + i]);
    }
    return 0.0;
  }

  int64_t get_i64(int64_t i) const {
    switch (elem) {
      case ScalarType::F64: return static_cast<int64_t>(buf->f64()[offset + i]);
      case ScalarType::I64: return buf->i64()[offset + i];
      case ScalarType::Bool: return buf->b8()[offset + i];
    }
    return 0;
  }

  void set_f64(int64_t i, double v) { buf->f64()[offset + i] = v; }
  void set_i64(int64_t i, int64_t v) { buf->i64()[offset + i] = v; }
  void set_b8(int64_t i, bool v) { buf->b8()[offset + i] = v ? 1 : 0; }
};

// Accumulator: write-only view of an array; updates are adds (F64). When
// `atomic` is false the backing array is private to one executing thread
// (a privatized per-worker copy) and updates may be plain stores.
struct AccVal {
  ArrayVal arr;
  bool atomic = true;
};

using Value = std::variant<double, int64_t, bool, ArrayVal, AccVal>;

inline bool is_array(const Value& v) { return std::holds_alternative<ArrayVal>(v); }
inline bool is_acc(const Value& v) { return std::holds_alternative<AccVal>(v); }

inline double as_f64(const Value& v) {
  return std::visit(ir::Overload{[](double x) { return x; },
                                 [](int64_t x) { return static_cast<double>(x); },
                                 [](bool x) { return x ? 1.0 : 0.0; },
                                 [](const auto&) -> double {
                                   assert(false && "scalar expected");
                                   return 0.0;
                                 }},
                    v);
}

inline int64_t as_i64(const Value& v) {
  return std::visit(ir::Overload{[](double x) { return static_cast<int64_t>(x); },
                                 [](int64_t x) { return x; },
                                 [](bool x) { return static_cast<int64_t>(x); },
                                 [](const auto&) -> int64_t {
                                   assert(false && "scalar expected");
                                   return 0;
                                 }},
                    v);
}

inline bool as_bool(const Value& v) {
  return std::visit(ir::Overload{[](double x) { return x != 0.0; }, [](int64_t x) { return x != 0; },
                                 [](bool x) { return x; },
                                 [](const auto&) -> bool {
                                   assert(false && "scalar expected");
                                   return false;
                                 }},
                    v);
}

inline const ArrayVal& as_array(const Value& v) { return std::get<ArrayVal>(v); }
inline const AccVal& as_acc(const Value& v) { return std::get<AccVal>(v); }

// Scalar element <-> Value.
inline Value scalar_value(ScalarType t, const ArrayVal& a, int64_t i) {
  switch (t) {
    case ScalarType::F64: return a.get_f64(i);
    case ScalarType::I64: return a.get_i64(i);
    case ScalarType::Bool: return a.buf->b8()[a.offset + i] != 0;
  }
  return 0.0;
}

inline void store_scalar(ArrayVal& a, int64_t i, const Value& v) {
  switch (a.elem) {
    case ScalarType::F64: a.set_f64(i, as_f64(v)); break;
    case ScalarType::I64: a.set_i64(i, as_i64(v)); break;
    case ScalarType::Bool: a.set_b8(i, as_bool(v)); break;
  }
}

// Row view a[i] (shares buffer).
inline ArrayVal row_view(const ArrayVal& a, int64_t i) {
  assert(a.rank() >= 1 && i >= 0 && i < a.shape[0]);
  ArrayVal r;
  r.buf = a.buf;
  r.elem = a.elem;
  r.offset = a.offset + i * a.row_elems();
  r.shape.assign(a.shape.begin() + 1, a.shape.end());
  return r;
}

// Compacts a view into its own buffer (deep copy).
inline ArrayVal compact_copy(const ArrayVal& a) {
  ArrayVal out = ArrayVal::alloc(a.elem, a.shape);
  const int64_t n = a.elems();
  switch (a.elem) {
    case ScalarType::F64:
      std::copy_n(a.buf->f64() + a.offset, n, out.buf->f64());
      break;
    case ScalarType::I64:
      std::copy_n(a.buf->i64() + a.offset, n, out.buf->i64());
      break;
    case ScalarType::Bool:
      std::copy_n(a.buf->b8() + a.offset, n, out.buf->b8());
      break;
  }
  return out;
}

// For in-place consumption: reuse the buffer when uniquely owned and whole,
// otherwise copy. The caller must own `a` (moved-from value).
inline ArrayVal ensure_unique(ArrayVal a) {
  if (a.whole() && a.buf.use_count() == 1) return a;
  return compact_copy(a);
}

// Copies the contents of `src` into `dst` starting at element offset `at`.
inline void copy_into(ArrayVal& dst, int64_t at, const ArrayVal& src) {
  const int64_t n = src.elems();
  assert(dst.elem == src.elem);
  switch (dst.elem) {
    case ScalarType::F64:
      std::copy_n(src.buf->f64() + src.offset, n, dst.buf->f64() + dst.offset + at);
      break;
    case ScalarType::I64:
      std::copy_n(src.buf->i64() + src.offset, n, dst.buf->i64() + dst.offset + at);
      break;
    case ScalarType::Bool:
      std::copy_n(src.buf->b8() + src.offset, n, dst.buf->b8() + dst.offset + at);
      break;
  }
}

// Atomic a[i] += v for accumulators (F64 payloads).
inline void atomic_add_f64(ArrayVal& a, int64_t i, double v) {
  std::atomic_ref<double> ref(a.buf->f64()[a.offset + i]);
  ref.fetch_add(v, std::memory_order_relaxed);
}

// Non-atomic a[i] += v; only valid when `a` is private to this thread.
inline void plain_add_f64(ArrayVal& a, int64_t i, double v) { a.buf->f64()[a.offset + i] += v; }

// ------------------------------------------------- host data conversion ----

inline ArrayVal make_f64_array(const std::vector<double>& data, std::vector<int64_t> shape) {
  ArrayVal a = ArrayVal::alloc(ScalarType::F64, std::move(shape));
  assert(static_cast<int64_t>(data.size()) == a.elems());
  std::copy(data.begin(), data.end(), a.buf->f64());
  return a;
}

inline ArrayVal make_i64_array(const std::vector<int64_t>& data, std::vector<int64_t> shape) {
  ArrayVal a = ArrayVal::alloc(ScalarType::I64, std::move(shape));
  assert(static_cast<int64_t>(data.size()) == a.elems());
  std::copy(data.begin(), data.end(), a.buf->i64());
  return a;
}

inline std::vector<double> to_f64_vec(const ArrayVal& a) {
  std::vector<double> out(static_cast<size_t>(a.elems()));
  for (int64_t i = 0; i < a.elems(); ++i) out[static_cast<size_t>(i)] = a.get_f64(i);
  return out;
}

inline std::vector<int64_t> to_i64_vec(const ArrayVal& a) {
  std::vector<int64_t> out(static_cast<size_t>(a.elems()));
  for (int64_t i = 0; i < a.elems(); ++i) out[static_cast<size_t>(i)] = a.get_i64(i);
  return out;
}

} // namespace npad::rt
