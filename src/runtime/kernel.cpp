#include "runtime/kernel.hpp"

#include <cmath>
#include <type_traits>
#include <unordered_map>

#include "ir/visit.hpp"
#include "runtime/vexec.hpp"
#include "support/fault.hpp"

namespace npad::rt {

namespace {

using namespace ir;

// Digamma via the standard asymptotic series with recurrence shift;
// accurate to ~1e-12 for x > 0 (sufficient for the GMM prior terms).
double digamma(double x) {
  double result = 0.0;
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x, inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12 - inv2 * (1.0 / 120 - inv2 * (1.0 / 252 - inv2 / 240)));
  return result;
}

class KernelBuilder {
public:
  explicit KernelBuilder(const Lambda& f) : f_(f) {}

  // Reduction form: f_ is the fold operator (2k scalar params -> k scalar
  // results, acc-free), `pre` the optional redomap pre-lambda whose results
  // feed the fold. Layout of the emitted program:
  //   [LoadElem inputs][pre body][Mov pre-results -> elem regs]   (redomap)
  //   or [LoadElem -> elem regs]                                  (plain)
  //   [fold_begin: fold body][writeback Movs -> acc regs :fold_end]
  //   [StoreOut acc regs]                                         (scan)
  // elem/acc registers are always fresh single-purpose registers so the
  // fold subprogram can be re-entered standalone with seeded values.
  std::optional<Kernel> build_reduce(const Lambda* pre, bool scan) {
    allow_accs_ = false;
    const Lambda& op = f_;
    if (op.params.size() % 2 != 0) return std::nullopt;
    const size_t k = op.params.size() / 2;
    if (k == 0 || op.rets.size() != k || op.body.result.size() != k) return std::nullopt;
    for (const auto& p : op.params) {
      if (p.type.rank != 0 || p.type.is_acc) return std::nullopt;
    }
    for (const auto& t : op.rets) {
      if (t.rank != 0 || t.is_acc) return std::nullopt;
    }

    std::vector<int32_t> elem_regs(k, -1);
    if (pre != nullptr) {
      if (pre->rets.size() != k || pre->body.result.size() != k) return std::nullopt;
      for (const auto& t : pre->rets) {
        if (t.rank != 0 || t.is_acc) return std::nullopt;
      }
      for (const auto& p : pre->params) {
        if (p.type.rank != 0 || p.type.is_acc) return std::nullopt;
        const int r = new_reg();
        reg_[p.var.id] = r;
        KInstr in;
        in.op = KOp::LoadElem;
        in.dst = r;
        in.slot = static_cast<int32_t>(k_.num_inputs++);
        k_.instrs.push_back(in);
      }
      for (const auto& st : pre->body.stms) {
        if (!stm(st)) return std::nullopt;
      }
      // Pin each pre result into a fresh register: the fold subprogram
      // seeds element registers directly, which must never alias a
      // constant or another iteration-invariant register.
      for (size_t j = 0; j < k; ++j) {
        const int r = new_reg();
        KInstr mv;
        mv.op = KOp::Mov;
        mv.dst = r;
        mv.a = use(pre->body.result[j]);
        k_.instrs.push_back(mv);
        elem_regs[j] = r;
      }
    } else {
      for (size_t j = 0; j < k; ++j) {
        const int r = new_reg();
        KInstr in;
        in.op = KOp::LoadElem;
        in.dst = r;
        in.slot = static_cast<int32_t>(k_.num_inputs++);
        k_.instrs.push_back(in);
        elem_regs[j] = r;
      }
    }

    // Fold: acc params get dedicated registers (the per-lane partial
    // accumulators); elem params alias the element registers.
    std::vector<int32_t> acc_regs(k);
    for (size_t j = 0; j < k; ++j) {
      acc_regs[j] = new_reg();
      reg_[op.params[j].var.id] = acc_regs[j];
      reg_[op.params[k + j].var.id] = elem_regs[j];
    }
    k_.fold_begin = k_.instrs.size();
    for (const auto& st : op.body.stms) {
      if (!stm(st)) return std::nullopt;
    }
    // Writeback acc_j <- result_j, through temporaries when k > 1 so a fold
    // returning a permutation of its accumulators cannot clobber a
    // not-yet-moved one.
    std::vector<int32_t> res_regs(k);
    for (size_t j = 0; j < k; ++j) res_regs[j] = use(op.body.result[j]);
    if (k > 1) {
      for (size_t j = 0; j < k; ++j) {
        const int t = new_reg();
        KInstr mv;
        mv.op = KOp::Mov;
        mv.dst = t;
        mv.a = res_regs[j];
        k_.instrs.push_back(mv);
        res_regs[j] = t;
      }
    }
    for (size_t j = 0; j < k; ++j) {
      if (res_regs[j] == acc_regs[j]) continue;
      KInstr mv;
      mv.op = KOp::Mov;
      mv.dst = acc_regs[j];
      mv.a = res_regs[j];
      k_.instrs.push_back(mv);
    }
    k_.fold_end = k_.instrs.size();
    if (failed_) return std::nullopt;
    if (scan) {
      for (size_t j = 0; j < k; ++j) {
        KInstr out;
        out.op = KOp::StoreOut;
        out.a = acc_regs[j];
        out.slot = static_cast<int32_t>(k_.out_elems.size());
        k_.instrs.push_back(out);
        k_.out_elems.push_back(op.rets[j].elem);
        k_.ret_acc_slot.push_back(-1);
      }
    }
    for (size_t j = 0; j < k; ++j) {
      k_.reds.push_back(Kernel::RedSlot{acc_regs[j], elem_regs[j]});
    }
    k_.num_regs = next_reg_;
    k_.acc_upd_counts.assign(k_.accs.size(), 0);
    return std::move(k_);
  }

  std::optional<Kernel> build() {
    // Parameters: scalars become element inputs; accumulators become slots;
    // rank-1 params become row streams over a rank-2 argument.
    int32_t param_index = 0;
    int32_t idx_reg = -1;
    bool any_rows = false;
    for (const auto& p : f_.params) {
      if (p.type.is_acc) {
        acc_slot_[p.var.id] = add_acc(p.var, param_index++);
      } else if (p.type.rank == 0) {
        ++param_index;
        const int r = new_reg();
        reg_[p.var.id] = r;
        KInstr in;
        in.op = KOp::LoadElem;
        in.dst = r;
        in.slot = static_cast<int32_t>(k_.num_inputs++);
        k_.instrs.push_back(in);
        k_.row_param_slots.push_back(-1);
      } else if (p.type.rank == 1) {
        // Row-stream param: the launch iterates the rows of a rank-2
        // argument (the general path's row_view slicing); the param becomes
        // a stream over the current row, read via [LoadIdx, i] Gathers. The
        // argument array binds into a reserved free-array slot — bind_map_
        // launch enforces rank 2 and eval_map has already checked that its
        // outer extent matches the launch extent.
        ++param_index;
        if (idx_reg < 0) {
          idx_reg = new_reg();
          KInstr in;
          in.op = KOp::LoadIdx;
          in.dst = idx_reg;
          k_.instrs.push_back(in);
        }
        const auto slot = static_cast<int32_t>(k_.free_arrays.size());
        k_.free_arrays.push_back(Var{});  // placeholder, bound from the argument
        Stream s;
        s.slot = slot;
        s.nlead = 1;
        s.lead[0] = idx_reg;
        s.len_reg = load_len(slot, 1);
        stream_.emplace(p.var.id, s);
        k_.row_param_slots.push_back(slot);
        any_rows = true;
      } else {
        return std::nullopt;  // higher-rank params are not kernelizable
      }
    }
    if (!any_rows) k_.row_param_slots.clear();
    for (const auto& st : f_.body.stms) {
      if (!stm(st)) return std::nullopt;
    }
    for (size_t ri = 0; ri < f_.body.result.size(); ++ri) {
      const Atom& a = f_.body.result[ri];
      if (a.is_var() && acc_slot_.count(a.var().id)) {  // threaded acc result
        k_.ret_acc_slot.push_back(acc_slot_[a.var().id]);
        continue;
      }
      Type t = f_.rets[ri];
      if (t.rank != 0) return std::nullopt;
      KInstr out;
      out.op = KOp::StoreOut;
      out.a = use(a);
      out.slot = static_cast<int32_t>(k_.out_elems.size());
      k_.instrs.push_back(out);
      k_.out_elems.push_back(t.elem);
      k_.ret_acc_slot.push_back(-1);
    }
    if (failed_) return std::nullopt;
    k_.num_regs = next_reg_;
    k_.acc_upd_counts.assign(k_.accs.size(), 0);
    for (const auto& in : k_.instrs) {
      if (in.op == KOp::UpdAcc) ++k_.acc_upd_counts[static_cast<size_t>(in.slot)];
    }
    return std::move(k_);
  }

private:
  // Virtual SOAC domain: an in-lambda `iota n` (val_reg < 0) or scalar
  // `replicate n v` that is never materialized — it only names the iteration
  // space (len_reg, launch-uniform) and per-iteration value of an inline
  // loop. Any other use of a domain var poisons the compilation (failed_).
  struct Dom {
    int32_t len_reg = -1;
    int32_t val_reg = -1;  // replicate payload; -1 = iota (value is the index)
  };

  // Stream: a rank-1 view of a free array consumed element-by-element by an
  // inline loop — `index(A, leads…)` (nlead >= 1) or a whole free rank-1
  // array (nlead == 0, rank enforced by a bind-time guard). Element i reads
  // free_array[slot][leads…, i] via a full-indexing Gather; len_reg holds
  // shape[nlead] of the base array (launch-invariant — shapes are uniform
  // across the launch even when the lead indexes vary per lane). Like a
  // Dom, any use outside scalar indexing / OpLength / an inline-SOAC
  // argument position poisons the compilation.
  struct Stream {
    int32_t slot = -1;
    int32_t nlead = 0;
    int32_t lead[3] = {-1, -1, -1};
    int32_t len_reg = -1;
  };

  // Virtual map: a value-producing map over doms/streams/vmaps that is never
  // materialized — its body is re-inlined per element at each consuming site
  // (an inline fold argument or an array-valued upd_acc). Recomputation per
  // consumer is deliberate: the body is scalar glue, and re-running it is
  // cheaper than materializing a per-lane array the register machine cannot
  // hold. Referenced by index into vmap_infos_ (stable across growth).
  struct VmapRef {
    int32_t info = -1;
    int32_t ret = 0;  // which lambda result this var names
  };

  // Inline-SOAC argument source: exactly one member is meaningful. Dom and
  // Stream are held by value — compiling a nested body may grow dom_/stream_
  // and invalidate pointers into them.
  struct ArgSrc {
    enum class K : uint8_t { DomA, StreamA, VmapA };
    K k = K::DomA;
    Dom dom;
    Stream stream;
    VmapRef vm;
  };

  struct VmapInfo {
    const OpMap* op = nullptr;  // IR-owned, stable for the compile
    std::vector<ArgSrc> srcs;   // resolved at registration time
    int32_t trip = -1;
  };

  int new_reg(bool invariant = false) {
    reg_inv_.push_back(invariant ? 1 : 0);
    return next_reg_++;
  }

  // Launch-invariant registers: written once per launch (constants, free
  // scalars, free-array lengths, and pure functions thereof). Inline-loop
  // trip counts must be invariant so every lane agrees on the extent.
  bool inv(int32_t r) const { return r >= 0 && reg_inv_[static_cast<size_t>(r)] != 0; }

  int add_acc(Var v, int32_t param_index) {
    k_.accs.push_back(Kernel::AccBinding{v, param_index});
    return static_cast<int>(k_.accs.size()) - 1;
  }

  // Returns the register holding atom `a`, materializing constants and
  // registering free scalar variables on first use.
  int32_t use(const Atom& a) {
    if (a.is_const()) {
      const ConstVal& c = a.cval();
      const int r = new_reg(true);
      KInstr in;
      in.op = KOp::ConstF;
      in.dst = r;
      in.imm = c.t == ScalarType::F64 ? c.f : static_cast<double>(c.i);
      k_.instrs.push_back(in);
      return r;
    }
    auto it = reg_.find(a.var().id);
    if (it != reg_.end()) return it->second;
    if (dom_.count(a.var().id) || stream_.count(a.var().id) || vmap_.count(a.var().id)) {
      failed_ = true;  // virtual domains, streams and vmaps have no scalar register
      return 0;
    }
    // Free scalar variable: reserve a register filled at launch time.
    const int r = new_reg(true);
    reg_[a.var().id] = r;
    k_.free_scalars.push_back(a.var());
    k_.free_scalar_regs.push_back(r);
    return r;
  }

  // Free array used via Gather; -1 when the var is not a known array yet.
  int32_t array_slot(Var v) {
    auto it = arr_slot_.find(v.id);
    if (it != arr_slot_.end()) return it->second;
    if (reg_.count(v.id) || acc_slot_.count(v.id) || dom_.count(v.id) ||
        stream_.count(v.id) || vmap_.count(v.id)) {
      return -1;
    }
    const auto slot = static_cast<int32_t>(k_.free_arrays.size());
    k_.free_arrays.push_back(v);
    arr_slot_[v.id] = slot;
    return slot;
  }

  // Invariant register holding free_array[slot].shape[dim], deduplicated per
  // (slot, dim) so repeated stream creation does not bloat the register file.
  int32_t load_len(int32_t slot, int32_t dim) {
    const int64_t key = static_cast<int64_t>(slot) * 8 + dim;
    auto it = len_reg_.find(key);
    if (it != len_reg_.end()) return it->second;
    KInstr in;
    in.op = KOp::LoadLen;
    in.slot = slot;
    in.b = dim;
    in.dst = new_reg(true);
    k_.instrs.push_back(in);
    len_reg_[key] = in.dst;
    return in.dst;
  }

  void add_rank_guard(int32_t slot, int32_t rank) {
    for (const auto& g : k_.stream_rank_guards) {
      if (g.slot == slot) return;  // one guard per slot suffices (same rank)
    }
    k_.stream_rank_guards.push_back(Kernel::StreamRankGuard{slot, rank});
  }

  void add_len_guard(const Stream& a, const Stream& b) {
    if (a.slot == b.slot && a.nlead == b.nlead) return;  // statically equal
    for (const auto& g : k_.stream_len_guards) {
      if (g.slot_a == a.slot && g.dim_a == a.nlead && g.slot_b == b.slot &&
          g.dim_b == b.nlead) {
        return;
      }
    }
    k_.stream_len_guards.push_back(Kernel::StreamLenGuard{a.slot, a.nlead, b.slot, b.nlead});
  }

  // Resolves an inline SOAC's arguments to domains (virtual iota/replicate),
  // streams (rank-1 views and whole free rank-1 arrays) and virtual maps,
  // and unifies their extents into one trip register. Iota extents and vmap
  // trips pin the trip exactly (register equality — OpLength aliasing makes
  // `length`-derived extents share registers); without one, the first
  // stream's length defines the trip and bind-time guards tie the other
  // streams to it. A stream whose length register differs from an exactly
  // pinned trip is rejected: the equality cannot be checked until arrays
  // are bound, and there is no guard form tying a register to a shape.
  // Returns the trip register, or -1 when the arguments fit no form.
  int32_t soac_trip(const std::vector<Var>& args, std::vector<ArgSrc>& srcs) {
    if (args.empty()) return -1;
    for (Var a : args) {
      ArgSrc s;
      if (auto it = dom_.find(a.id); it != dom_.end()) {
        s.k = ArgSrc::K::DomA;
        s.dom = it->second;
      } else if (auto sit = stream_.find(a.id); sit != stream_.end()) {
        s.k = ArgSrc::K::StreamA;
        s.stream = sit->second;
      } else if (auto vit = vmap_.find(a.id); vit != vmap_.end()) {
        s.k = ArgSrc::K::VmapA;
        s.vm = vit->second;
      } else {
        // Whole free array consumed as a stream. The builder cannot see its
        // rank, so rank 1 is assumed here and enforced when it is bound.
        const int32_t slot = array_slot(a);
        if (slot < 0) return -1;
        s.k = ArgSrc::K::StreamA;
        s.stream.slot = slot;
        s.stream.nlead = 0;
        s.stream.len_reg = load_len(slot, 0);
        add_rank_guard(slot, 1);
      }
      srcs.push_back(std::move(s));
    }
    int32_t trip = -1;
    bool exact = false;  // trip pinned by an iota extent or a vmap trip
    for (const ArgSrc& s : srcs) {
      int32_t t = -1;
      if (s.k == ArgSrc::K::DomA && s.dom.val_reg < 0) t = s.dom.len_reg;
      if (s.k == ArgSrc::K::VmapA) t = vmap_infos_[static_cast<size_t>(s.vm.info)].trip;
      if (t < 0) continue;
      if (trip >= 0 && trip != t) return -1;
      trip = t;
      exact = true;
    }
    const ArgSrc* trip_stream = nullptr;
    if (trip < 0) {
      for (const ArgSrc& s : srcs) {
        if (s.k == ArgSrc::K::StreamA) {
          trip_stream = &s;
          trip = s.stream.len_reg;
          break;
        }
      }
      if (trip < 0) return -1;  // replicates alone do not pin the space
    }
    for (const ArgSrc& s : srcs) {
      switch (s.k) {
        case ArgSrc::K::DomA:
          if (s.dom.len_reg != trip) return -1;
          break;
        case ArgSrc::K::StreamA:
          if (s.stream.len_reg == trip) break;
          if (exact) return -1;
          add_len_guard(trip_stream->stream, s.stream);
          break;
        case ArgSrc::K::VmapA:
          break;  // unified above
      }
    }
    return trip;
  }

  // Element read for an inline-loop iteration: domains alias ivar or the
  // replicate payload; streams emit a full-indexing Gather [leads…, ivar]
  // inside the loop body; vmaps re-inline their body at the call site.
  int32_t soac_elem(const ArgSrc& s, int32_t ivar) {
    if (s.k == ArgSrc::K::DomA) return s.dom.val_reg < 0 ? ivar : s.dom.val_reg;
    if (s.k == ArgSrc::K::VmapA) return vmap_elem(s.vm, ivar);
    KInstr in;
    in.op = KOp::Gather;
    in.slot = s.stream.slot;
    in.nidx = s.stream.nlead + 1;
    for (int32_t d = 0; d < s.stream.nlead; ++d) in.idx[d] = s.stream.lead[d];
    in.idx[s.stream.nlead] = ivar;
    in.dst = new_reg();
    k_.instrs.push_back(in);
    return in.dst;
  }

  // Inlines a vmap's body for one element: binds the lambda params to the
  // sources' element reads and compiles the body in place (statements land
  // inside whatever loop body is currently open). Re-inlining the same
  // lambda at a second consumer rebinds its vars — reg_/dom_/stream_/vmap_
  // entries are assigned, not emplaced, so each inline sees fresh registers.
  int32_t vmap_elem(VmapRef vm, int32_t ivar) {
    // By value: compiling the body can grow vmap_infos_ and move the entry.
    const VmapInfo vi = vmap_infos_[static_cast<size_t>(vm.info)];
    const Lambda& f = *vi.op->f;
    for (size_t j = 0; j < f.params.size(); ++j) {
      reg_[f.params[j].var.id] = soac_elem(vi.srcs[j], ivar);
    }
    if (failed_) return 0;
    for (const auto& s : f.body.stms) {
      if (!stm(s)) {
        failed_ = true;
        return 0;
      }
    }
    return use(f.body.result[static_cast<size_t>(vm.ret)]);
  }

  // Registers a value-producing map over doms/streams/vmaps as a virtual
  // map: nothing is emitted here; each consumer re-inlines the body per
  // element. Recomputation across consumers is deliberate — the body is
  // scalar glue, and re-running it beats materializing a per-lane array the
  // register machine cannot hold.
  bool vmap_register(const OpMap& o, const Stm& st) {
    const Lambda& f = *o.f;
    if (f.params.size() != o.args.size() || f.rets.size() != st.vars.size()) return false;
    for (const auto& p : f.params) {
      if (p.type.rank != 0 || p.type.is_acc) return false;
    }
    for (size_t r = 0; r < f.rets.size(); ++r) {
      if (f.rets[r].rank != 0 || f.rets[r].is_acc) return false;
      if (st.types[r].rank != 1 || st.types[r].is_acc) return false;
    }
    VmapInfo vi;
    vi.op = &o;
    vi.trip = soac_trip(o.args, vi.srcs);
    if (vi.trip < 0 || failed_) return false;
    const auto idx = static_cast<int32_t>(vmap_infos_.size());
    vmap_infos_.push_back(std::move(vi));
    for (size_t r = 0; r < st.vars.size(); ++r) {
      vmap_[st.vars[r].id] = VmapRef{idx, static_cast<int32_t>(r)};
    }
    return true;
  }

  // Array-valued `upd_acc acc [leads…] += vmap` -> inline loop of scalar
  // UpdAccs at [leads…, i], re-inlining the vmap body per element. Matches
  // the general path's elementwise add of the map result into the acc row.
  bool acc_vmap_loop(const OpUpdAcc& o, VmapRef vm, int32_t slot, Var dst) {
    if (o.idx.size() + 1 > 4) return false;
    int32_t lead[3];
    for (size_t i = 0; i < o.idx.size(); ++i) lead[i] = use(o.idx[i]);
    if (failed_) return false;
    const int32_t trip = vmap_infos_[static_cast<size_t>(vm.info)].trip;
    const int32_t ivar = new_reg();
    const auto lslot = static_cast<int32_t>(k_.loops.size());
    k_.loops.emplace_back();
    KInstr mk;
    mk.op = KOp::InlineLoop;
    mk.slot = lslot;
    k_.instrs.push_back(mk);
    Kernel::InlineLoop il;
    il.trip_reg = trip;
    il.ivar_reg = ivar;
    il.body_begin = static_cast<uint32_t>(k_.instrs.size());
    const int32_t v = vmap_elem(vm, ivar);
    if (failed_) return false;
    KInstr in;
    in.op = KOp::UpdAcc;
    in.slot = slot;
    in.a = v;
    in.nidx = static_cast<int32_t>(o.idx.size()) + 1;
    for (size_t i = 0; i < o.idx.size(); ++i) in.idx[i] = lead[i];
    in.idx[o.idx.size()] = ivar;
    k_.instrs.push_back(in);
    il.body_end = static_cast<uint32_t>(k_.instrs.size());
    k_.loops[static_cast<size_t>(lslot)] = il;
    acc_slot_[dst.id] = slot;
    return true;
  }

  bool stm(const Stm& st) {
    if (st.vars.empty()) {
      // Result-less statements: only the side-effecting inline-map form
      // (unit-result upd_acc map over virtual iota/replicate domains).
      const auto* m = std::get_if<OpMap>(&st.e);
      if (m == nullptr) return false;
      return inline_map(*m) && !failed_;
    }
    // Value-producing maps become virtual maps (consumers inline the body).
    if (const auto* vm = std::get_if<OpMap>(&st.e); vm != nullptr) {
      return vmap_register(*vm, st) && !failed_;
    }
    if (st.vars.size() != 1) {
      // Multi-result reduce (jvp (primal, tangent) pairs, argmin tuples):
      // one inline fold with parallel accumulators.
      if (const auto* rd = std::get_if<OpReduce>(&st.e); rd != nullptr) {
        return inline_fold(*rd, st) && !failed_;
      }
      return false;
    }
    const Var dst = st.vars[0];
    const Type dt = st.types[0];
    auto simple = [&](KOp op, int32_t a, int32_t b = -1, int32_t c = -1) {
      const bool iv = inv(a) && (b < 0 || inv(b)) && (c < 0 || inv(c));
      const int r = new_reg(iv);
      KInstr in;
      in.op = op;
      in.dst = r;
      in.a = a;
      in.b = b;
      in.c = c;
      k_.instrs.push_back(in);
      reg_[dst.id] = r;
      return true;
    };
    const bool ok = std::visit(
        Overload{
            [&](const OpAtom& o) {
              if (dt.is_acc) {
                if (!o.a.is_var()) return false;
                auto it = acc_slot_.find(o.a.var().id);
                if (it == acc_slot_.end()) return false;
                acc_slot_[dst.id] = it->second;
                return true;
              }
              if (dt.rank != 0) return false;
              return simple(KOp::Mov, use(o.a));
            },
            [&](const OpBin& o) {
              static constexpr KOp table[] = {KOp::Add, KOp::Sub, KOp::Mul, KOp::Div,
                                              KOp::Pow, KOp::Min, KOp::Max, KOp::Mod,
                                              KOp::Eq,  KOp::Ne,  KOp::Lt,  KOp::Le,
                                              KOp::Gt,  KOp::Ge,  KOp::And, KOp::Or};
              KOp op = table[static_cast<size_t>(o.op)];
              // Integer division must truncate (registers are doubles).
              if (op == KOp::Div && dt.elem == ScalarType::I64) op = KOp::IDiv;
              return simple(op, use(o.a), use(o.b));
            },
            [&](const OpUn& o) {
              KOp op;
              switch (o.op) {
                case UnOp::Neg: op = KOp::Neg; break;
                case UnOp::Exp: op = KOp::Exp; break;
                case UnOp::Log: op = KOp::Log; break;
                case UnOp::Sqrt: op = KOp::Sqrt; break;
                case UnOp::Sin: op = KOp::Sin; break;
                case UnOp::Cos: op = KOp::Cos; break;
                case UnOp::Tanh: op = KOp::Tanh; break;
                case UnOp::Abs: op = KOp::Abs; break;
                case UnOp::Sign: op = KOp::Sign; break;
                case UnOp::LGamma: op = KOp::LGamma; break;
                case UnOp::Digamma: op = KOp::Digamma; break;
                case UnOp::Not: op = KOp::Not; break;
                case UnOp::ToF64: op = KOp::Mov; break;
                case UnOp::ToI64: op = KOp::Trunc; break;
                default: return false;
              }
              return simple(op, use(o.a));
            },
            [&](const OpSelect& o) { return simple(KOp::Select, use(o.c), use(o.t), use(o.f)); },
            [&](const OpIndex& o) {
              if (o.idx.empty() || o.idx.size() > 4) return false;
              auto sit = stream_.find(o.arr.id);
              if (sit != stream_.end()) {
                // Scalar read through a stream view: compose [leads…, idx].
                if (dt.rank != 0 || o.idx.size() != 1) return false;
                const Stream& s = sit->second;
                KInstr in;
                in.op = KOp::Gather;
                in.slot = s.slot;
                in.nidx = s.nlead + 1;
                for (int32_t d = 0; d < s.nlead; ++d) in.idx[d] = s.lead[d];
                in.idx[s.nlead] = use(o.idx[0]);
                in.dst = new_reg();
                k_.instrs.push_back(in);
                reg_[dst.id] = in.dst;
                return true;
              }
              if (dt.rank == 1 && !dt.is_acc && o.idx.size() <= 3) {
                // Rank-1 row view of a free array: a stream — never
                // materialized, only consumed by inline SOACs, scalar
                // indexing and OpLength. Typecheck pins the base rank at
                // idx.size() + 1, matching the Gather's full indexing.
                const int32_t slot = array_slot(o.arr);
                if (slot < 0) return false;
                Stream s;
                s.slot = slot;
                s.nlead = static_cast<int32_t>(o.idx.size());
                for (size_t i = 0; i < o.idx.size(); ++i) s.lead[i] = use(o.idx[i]);
                s.len_reg = load_len(slot, s.nlead);
                if (failed_) return false;
                stream_[dst.id] = s;  // assign: vmap re-inlining rebinds ids
                return true;
              }
              if (dt.rank != 0) return false;
              const int32_t slot = array_slot(o.arr);
              if (slot < 0) return false;
              KInstr in;
              in.op = KOp::Gather;
              in.slot = slot;
              in.nidx = static_cast<int32_t>(o.idx.size());
              for (size_t i = 0; i < o.idx.size(); ++i) in.idx[i] = use(o.idx[i]);
              in.dst = new_reg();
              k_.instrs.push_back(in);
              reg_[dst.id] = in.dst;
              return true;
            },
            [&](const OpIota& o) {
              // Virtual domain: only legal with a launch-uniform extent.
              if (dt.rank != 1 || dt.is_acc) return false;
              const int32_t n = use(o.n);
              if (failed_ || !inv(n)) return false;
              dom_[dst.id] = Dom{n, -1};  // assign: vmap re-inlining rebinds ids
              return true;
            },
            [&](const OpReplicate& o) {
              if (dt.rank != 1 || dt.is_acc) return false;  // scalar payload only
              const int32_t n = use(o.n);
              const int32_t v = use(o.v);
              if (failed_ || !inv(n)) return false;
              dom_[dst.id] = Dom{n, v};  // assign: vmap re-inlining rebinds ids
              return true;
            },
            [&](const OpLength& o) {
              if (dt.rank != 0) return false;
              auto dit = dom_.find(o.arr.id);
              if (dit != dom_.end()) {
                reg_[dst.id] = dit->second.len_reg;  // alias the domain extent
                return true;
              }
              auto sit = stream_.find(o.arr.id);
              if (sit != stream_.end()) {
                reg_[dst.id] = sit->second.len_reg;  // alias the stream length
                return true;
              }
              auto vit = vmap_.find(o.arr.id);
              if (vit != vmap_.end()) {
                reg_[dst.id] = vmap_infos_[static_cast<size_t>(vit->second.info)].trip;
                return true;
              }
              const int32_t slot = array_slot(o.arr);
              if (slot < 0) return false;
              reg_[dst.id] = load_len(slot, 0);
              return true;
            },
            [&](const OpReduce& o) { return inline_fold(o, st); },
            [&](const OpUpdAcc& o) {
              if (!allow_accs_) return false;  // reduction kernels are acc-free
              auto it = acc_slot_.find(o.acc.id);
              int32_t slot;
              if (it != acc_slot_.end()) {
                slot = it->second;
              } else {
                if (reg_.count(o.acc.id) || arr_slot_.count(o.acc.id) ||
                    dom_.count(o.acc.id) || stream_.count(o.acc.id) ||
                    vmap_.count(o.acc.id)) {
                  return false;
                }
                slot = add_acc(o.acc, -1);
                acc_slot_[o.acc.id] = slot;
              }
              // Array-valued update from a virtual map: inline UpdAcc loop.
              if (o.v.is_var()) {
                auto vit = vmap_.find(o.v.var().id);
                if (vit != vmap_.end()) return acc_vmap_loop(o, vit->second, slot, dst);
              }
              if (o.idx.empty() || o.idx.size() > 4) return false;
              KInstr in;
              in.op = KOp::UpdAcc;
              in.slot = slot;
              in.a = use(o.v);
              in.nidx = static_cast<int32_t>(o.idx.size());
              for (size_t i = 0; i < o.idx.size(); ++i) in.idx[i] = use(o.idx[i]);
              k_.instrs.push_back(in);
              acc_slot_[dst.id] = slot;  // threaded result aliases the slot
              return true;
            },
            [&](const auto&) { return false; },
        },
        st.e);
    return ok && !failed_;
  }

  // Scalar-result redomap/reduce over virtual domains or streams -> inline
  // fold block, with k parallel accumulators for k-result folds (the jvp
  // programs' (primal, tangent) and argmin-style reduce tuples). Sequential
  // element order — identical float grouping to the general interpreter's
  // fold, so kernelizing the enclosing lambda never perturbs results
  // (runtime/README.md).
  bool inline_fold(const OpReduce& o, const Stm& st) {
    const size_t k = st.vars.size();
    for (const auto& t : st.types) {
      if (t.rank != 0 || t.is_acc) return false;
    }
    const Lambda& op = *o.op;
    if (op.params.size() != 2 * k || op.rets.size() != k || op.body.result.size() != k ||
        o.neutral.size() != k || o.args.empty()) {
      return false;
    }
    for (const auto& p : op.params) {
      if (p.type.rank != 0 || p.type.is_acc) return false;
    }
    for (const auto& t : op.rets) {
      if (t.rank != 0 || t.is_acc) return false;
    }
    std::vector<ArgSrc> srcs;
    const int32_t trip = soac_trip(o.args, srcs);
    if (trip < 0) return false;
    if (o.pre != nullptr) {
      if (o.pre->params.size() != o.args.size() || o.pre->rets.size() != k ||
          o.pre->body.result.size() != k) {
        return false;
      }
      for (const auto& p : o.pre->params) {
        if (p.type.rank != 0 || p.type.is_acc) return false;
      }
      for (const auto& t : o.pre->rets) {
        if (t.rank != 0 || t.is_acc) return false;
      }
    } else if (o.args.size() != k) {
      return false;
    }
    std::vector<int32_t> ne(k);
    for (size_t j = 0; j < k; ++j) ne[j] = use(o.neutral[j]);
    if (failed_) return false;
    const int32_t ivar = new_reg();
    const auto lslot = static_cast<int32_t>(k_.loops.size());
    k_.loops.emplace_back();  // reserve now: nested markers keep slot order
    KInstr mk;
    mk.op = KOp::InlineLoop;
    mk.slot = lslot;
    k_.instrs.push_back(mk);
    Kernel::InlineLoop il;
    il.trip_reg = trip;
    il.ivar_reg = ivar;
    il.body_begin = static_cast<uint32_t>(k_.instrs.size());
    std::vector<int32_t> elems(k);
    if (o.pre != nullptr) {
      for (size_t j = 0; j < o.args.size(); ++j) {
        reg_[o.pre->params[j].var.id] = soac_elem(srcs[j], ivar);
      }
      for (const auto& s : o.pre->body.stms) {
        if (!stm(s)) return false;
      }
      for (size_t j = 0; j < k; ++j) elems[j] = use(o.pre->body.result[j]);
    } else {
      for (size_t j = 0; j < k; ++j) elems[j] = soac_elem(srcs[j], ivar);
    }
    std::vector<int32_t> accs(k);
    for (size_t j = 0; j < k; ++j) {
      accs[j] = new_reg();
      reg_[op.params[j].var.id] = accs[j];
      reg_[op.params[k + j].var.id] = elems[j];
    }
    for (const auto& s : op.body.stms) {
      if (!stm(s)) return false;
    }
    std::vector<int32_t> res(k);
    for (size_t j = 0; j < k; ++j) res[j] = use(op.body.result[j]);
    if (failed_) return false;
    // Writeback acc_j <- result_j, through temporaries when k > 1 so a fold
    // returning a permutation of its accumulators cannot clobber a
    // not-yet-moved one (same scheme as build_reduce).
    if (k > 1) {
      for (size_t j = 0; j < k; ++j) {
        const int t = new_reg();
        KInstr mv;
        mv.op = KOp::Mov;
        mv.dst = t;
        mv.a = res[j];
        k_.instrs.push_back(mv);
        res[j] = t;
      }
    }
    for (size_t j = 0; j < k; ++j) {
      if (res[j] == accs[j]) continue;
      KInstr mv;
      mv.op = KOp::Mov;
      mv.dst = accs[j];
      mv.a = res[j];
      k_.instrs.push_back(mv);
    }
    il.body_end = static_cast<uint32_t>(k_.instrs.size());
    il.acc_reg = accs[0];
    il.neutral_reg = ne[0];
    for (size_t j = 1; j < k; ++j) {
      il.more_accs.push_back(accs[j]);
      il.more_neutrals.push_back(ne[j]);
    }
    k_.loops[static_cast<size_t>(lslot)] = il;
    for (size_t j = 0; j < k; ++j) {
      reg_[st.vars[j].id] = accs[j];  // assign: vmap re-inlining rebinds ids
    }
    return true;
  }

  // Unit-result map over virtual domains or streams whose body is scalar
  // glue plus upd_acc side effects -> inline side-effect loop (the reverse
  // sweep's scatter-style accumulation pattern).
  bool inline_map(const OpMap& o) {
    if (!allow_accs_) return false;
    const Lambda& f = *o.f;
    if (!f.rets.empty() || !f.body.result.empty()) return false;
    if (f.params.size() != o.args.size()) return false;
    for (const auto& p : f.params) {
      if (p.type.rank != 0 || p.type.is_acc) return false;
    }
    std::vector<ArgSrc> srcs;
    const int32_t trip = soac_trip(o.args, srcs);
    if (trip < 0) return false;
    const int32_t ivar = new_reg();
    const auto lslot = static_cast<int32_t>(k_.loops.size());
    k_.loops.emplace_back();
    KInstr mk;
    mk.op = KOp::InlineLoop;
    mk.slot = lslot;
    k_.instrs.push_back(mk);
    Kernel::InlineLoop il;
    il.trip_reg = trip;
    il.ivar_reg = ivar;
    il.body_begin = static_cast<uint32_t>(k_.instrs.size());
    for (size_t j = 0; j < f.params.size(); ++j) {
      reg_[f.params[j].var.id] = soac_elem(srcs[j], ivar);
    }
    for (const auto& s : f.body.stms) {
      if (!stm(s)) return false;
    }
    il.body_end = static_cast<uint32_t>(k_.instrs.size());
    k_.loops[static_cast<size_t>(lslot)] = il;
    return !failed_;
  }

  const Lambda& f_;
  Kernel k_;
  bool allow_accs_ = true;
  bool failed_ = false;
  int next_reg_ = 0;
  std::vector<uint8_t> reg_inv_;  // per register: launch-invariant?
  std::unordered_map<uint32_t, int32_t> reg_;
  std::unordered_map<uint32_t, int32_t> arr_slot_;
  std::unordered_map<uint32_t, int32_t> acc_slot_;
  std::unordered_map<uint32_t, Dom> dom_;
  std::unordered_map<uint32_t, Stream> stream_;
  std::unordered_map<uint32_t, VmapRef> vmap_;
  std::vector<VmapInfo> vmap_infos_;
  std::unordered_map<int64_t, int32_t> len_reg_;  // (slot * 8 + dim) -> register
};

// Data-dependent gather/UpdAcc indices must raise the same typed error the
// general interpreter raises, not read out of bounds (streams let arbitrary
// scalar indices reach kernels). Cold path, kept out of the address loops.
[[noreturn]] static void throw_kernel_oob(int64_t i, int32_t axis, int64_t extent) {
  throw ShapeError("index " + std::to_string(i) + " out of bounds for kernel array axis " +
                   std::to_string(axis) + " of extent " + std::to_string(extent));
}

inline int64_t flat_index(const ArrayVal& a, const double* regs, const int32_t* idx,
                          int32_t nidx) {
  int64_t off = 0;
  int64_t stride = 1;
  // idx covers the leading `nidx` dims of a rank-nidx array (full indexing).
  for (int32_t d = nidx - 1; d >= 0; --d) {
    const auto i = static_cast<int64_t>(regs[idx[d]]);
    const auto ext = a.shape[static_cast<size_t>(d)];
    if (i < 0 || i >= ext) throw_kernel_oob(i, d, ext);
    off += i * stride;
    stride *= ext;
  }
  return off;
}

// Per-lane variant over the SoA register file (regs[reg*W + lane]).
inline int64_t flat_index_lane(const ArrayVal& a, const double* regs, int W, int l,
                               const int32_t* idx, int32_t nidx) {
  int64_t off = 0;
  int64_t stride = 1;
  for (int32_t d = nidx - 1; d >= 0; --d) {
    const auto i = static_cast<int64_t>(regs[idx[d] * W + l]);
    const auto ext = a.shape[static_cast<size_t>(d)];
    if (i < 0 || i >= ext) throw_kernel_oob(i, d, ext);
    off += i * stride;
    stride *= ext;
  }
  return off;
}

// Broadcasts the iteration-invariant registers (each register has a single
// writer): free scalars and constants, once per register file.
void init_invariant(const KernelLaunch& L, double* r, int W) {
  const Kernel& k = *L.k;
  for (size_t i = 0; i < k.free_scalar_regs.size(); ++i) {
    for (int l = 0; l < W; ++l) r[k.free_scalar_regs[i] * W + l] = L.free_scalar_vals[i];
  }
  for (const auto& in : k.instrs) {
    if (in.op == KOp::ConstF) {
      for (int l = 0; l < W; ++l) r[in.dst * W + l] = in.imm;
    } else if (in.op == KOp::LoadLen) {
      const ArrayVal& arr = L.free_array_vals[static_cast<size_t>(in.slot)];
      const auto dim = static_cast<size_t>(in.b > 0 ? in.b : 0);
      const double v =
          static_cast<double>(dim < arr.shape.size() ? arr.shape[dim] : 0);
      for (int l = 0; l < W; ++l) r[in.dst * W + l] = v;
    }
  }
}

// Executes full batches of W iterations of the instruction range [ib, ie)
// over a structure-of-arrays register file `r` prepared by init_invariant:
// register x's lane l lives at r[x*W + l]. The per-instruction dispatch runs
// once per batch; each case loops over the W lanes, so the switch cost is
// amortized W-fold and the lane loops are trivially vectorizable. `WT` is
// either std::integral_constant<int, W> (compile-time trip counts for the
// common widths) or plain int (any width). Register state persists across
// calls — reduction drivers seed accumulator/element registers between
// spans and re-enter the fold subprogram standalone.
//
// Lane layout (`lane_stride`):
//  - 1 (maps, scans): lane l of a batch handles element base + l; batches
//    advance by W; requires (hi - lo) % W == 0 (the caller runs a scalar
//    tail loop); LoadElem/StoreOut are contiguous strips.
//  - blk (reductions): lane l handles element base + l*blk; batches advance
//    by 1 over [lo, lo + blk), so lane l folds the *contiguous* block
//    [lo + l*blk, lo + (l+1)*blk). Combining lane partials in lane order
//    then preserves element order — the fold operator only needs to be
//    associative (the reduce contract), never commutative.
template <class WT>
void exec_span(const KernelLaunch& L, double* r, int64_t lo, int64_t hi, size_t ib, size_t ie,
               WT width, int64_t lane_stride = 1) {
  const int W = width;
  const Kernel& k = *L.k;
  const int64_t advance = lane_stride == 1 ? W : 1;
  for (int64_t base = lo; base < hi; base += advance) {
    for (size_t ii = ib; ii < ie; ++ii) {
      const KInstr& in = k.instrs[ii];
      double* d = r + static_cast<int64_t>(in.dst) * W;
      const double* a = in.a >= 0 ? r + static_cast<int64_t>(in.a) * W : nullptr;
      const double* b = in.b >= 0 ? r + static_cast<int64_t>(in.b) * W : nullptr;
      const double* c = in.c >= 0 ? r + static_cast<int64_t>(in.c) * W : nullptr;
      switch (in.op) {
        case KOp::ConstF: break;  // broadcast in the preamble
        case KOp::Mov: for (int l = 0; l < W; ++l) d[l] = a[l]; break;
        case KOp::Add: for (int l = 0; l < W; ++l) d[l] = a[l] + b[l]; break;
        case KOp::Sub: for (int l = 0; l < W; ++l) d[l] = a[l] - b[l]; break;
        case KOp::Mul: for (int l = 0; l < W; ++l) d[l] = a[l] * b[l]; break;
        case KOp::Div: for (int l = 0; l < W; ++l) d[l] = a[l] / b[l]; break;
        case KOp::IDiv:
          for (int l = 0; l < W; ++l) {
            const auto x = static_cast<int64_t>(a[l]), y = static_cast<int64_t>(b[l]);
            d[l] = static_cast<double>(y == 0 ? 0 : x / y);
          }
          break;
        case KOp::Pow: for (int l = 0; l < W; ++l) d[l] = std::pow(a[l], b[l]); break;
        case KOp::Min: for (int l = 0; l < W; ++l) d[l] = std::min(a[l], b[l]); break;
        case KOp::Max: for (int l = 0; l < W; ++l) d[l] = std::max(a[l], b[l]); break;
        case KOp::Mod:
          for (int l = 0; l < W; ++l) {
            const auto x = static_cast<int64_t>(a[l]), y = static_cast<int64_t>(b[l]);
            d[l] = static_cast<double>(y == 0 ? 0 : x % y);
          }
          break;
        case KOp::Eq: for (int l = 0; l < W; ++l) d[l] = a[l] == b[l] ? 1.0 : 0.0; break;
        case KOp::Ne: for (int l = 0; l < W; ++l) d[l] = a[l] != b[l] ? 1.0 : 0.0; break;
        case KOp::Lt: for (int l = 0; l < W; ++l) d[l] = a[l] < b[l] ? 1.0 : 0.0; break;
        case KOp::Le: for (int l = 0; l < W; ++l) d[l] = a[l] <= b[l] ? 1.0 : 0.0; break;
        case KOp::Gt: for (int l = 0; l < W; ++l) d[l] = a[l] > b[l] ? 1.0 : 0.0; break;
        case KOp::Ge: for (int l = 0; l < W; ++l) d[l] = a[l] >= b[l] ? 1.0 : 0.0; break;
        case KOp::And:
          for (int l = 0; l < W; ++l) d[l] = (a[l] != 0.0 && b[l] != 0.0) ? 1.0 : 0.0;
          break;
        case KOp::Or:
          for (int l = 0; l < W; ++l) d[l] = (a[l] != 0.0 || b[l] != 0.0) ? 1.0 : 0.0;
          break;
        case KOp::Neg: for (int l = 0; l < W; ++l) d[l] = -a[l]; break;
        case KOp::Exp: for (int l = 0; l < W; ++l) d[l] = std::exp(a[l]); break;
        case KOp::Log: for (int l = 0; l < W; ++l) d[l] = std::log(a[l]); break;
        case KOp::Sqrt: for (int l = 0; l < W; ++l) d[l] = std::sqrt(a[l]); break;
        case KOp::Sin: for (int l = 0; l < W; ++l) d[l] = std::sin(a[l]); break;
        case KOp::Cos: for (int l = 0; l < W; ++l) d[l] = std::cos(a[l]); break;
        case KOp::Tanh: for (int l = 0; l < W; ++l) d[l] = std::tanh(a[l]); break;
        case KOp::Abs: for (int l = 0; l < W; ++l) d[l] = std::fabs(a[l]); break;
        case KOp::Sign:
          for (int l = 0; l < W; ++l) d[l] = a[l] > 0 ? 1.0 : (a[l] < 0 ? -1.0 : 0.0);
          break;
        case KOp::LGamma: for (int l = 0; l < W; ++l) d[l] = std::lgamma(a[l]); break;
        case KOp::Digamma: for (int l = 0; l < W; ++l) d[l] = digamma(a[l]); break;
        case KOp::Not: for (int l = 0; l < W; ++l) d[l] = a[l] == 0.0 ? 1.0 : 0.0; break;
        case KOp::Trunc: for (int l = 0; l < W; ++l) d[l] = std::trunc(a[l]); break;
        case KOp::Select:
          for (int l = 0; l < W; ++l) d[l] = a[l] != 0.0 ? b[l] : c[l];
          break;
        case KOp::LoadElem: {
          const ArrayVal& arr = L.inputs[static_cast<size_t>(in.slot)];
          if (lane_stride == 1 && arr.elem == ScalarType::F64) {  // contiguous strip
            const double* src = arr.buf->f64() + arr.offset + base;
            for (int l = 0; l < W; ++l) d[l] = src[l];
          } else if (lane_stride == 1) {
            for (int l = 0; l < W; ++l) d[l] = arr.get_f64(base + l);
          } else if (arr.elem == ScalarType::F64) {  // one stream per lane
            const double* src = arr.buf->f64() + arr.offset + base;
            for (int l = 0; l < W; ++l) d[l] = src[static_cast<int64_t>(l) * lane_stride];
          } else {
            for (int l = 0; l < W; ++l) {
              d[l] = arr.get_f64(base + static_cast<int64_t>(l) * lane_stride);
            }
          }
          break;
        }
        case KOp::Gather: {
          const ArrayVal& arr = L.free_array_vals[static_cast<size_t>(in.slot)];
          for (int l = 0; l < W; ++l) {
            d[l] = arr.get_f64(flat_index_lane(arr, r, W, l, in.idx, in.nidx));
          }
          break;
        }
        case KOp::UpdAcc: {
          auto& arr = const_cast<ArrayVal&>(L.acc_array_vals[static_cast<size_t>(in.slot)]);
          const bool atomic =
              L.acc_atomic.empty() || L.acc_atomic[static_cast<size_t>(in.slot)] != 0;
          for (int l = 0; l < W; ++l) {
            const int64_t at = flat_index_lane(arr, r, W, l, in.idx, in.nidx);
            if (atomic) {
              atomic_add_f64(arr, at, a[l]);
            } else {
              plain_add_f64(arr, at, a[l]);
            }
          }
          break;
        }
        case KOp::StoreOut: {
          if (L.scalar_out != nullptr) {  // extent-1 scalar-block mode
            L.scalar_out[in.slot] = a[0];
            break;
          }
          auto& o = const_cast<ArrayVal&>(L.outputs[static_cast<size_t>(in.slot)]);
          switch (o.elem) {
            case ScalarType::F64: {  // contiguous strip
              double* dst = o.buf->f64() + o.offset + base;
              for (int l = 0; l < W; ++l) dst[l] = a[l];
              break;
            }
            case ScalarType::I64: {
              int64_t* dst = o.buf->i64() + o.offset + base;
              for (int l = 0; l < W; ++l) dst[l] = static_cast<int64_t>(a[l]);
              break;
            }
            case ScalarType::Bool: {
              uint8_t* dst = o.buf->b8() + o.offset + base;
              for (int l = 0; l < W; ++l) dst[l] = a[l] != 0.0 ? 1 : 0;
              break;
            }
          }
          break;
        }
        case KOp::LoadLen: break;  // broadcast in the preamble (launch-invariant)
        case KOp::LoadIdx:
          // Current iteration index per lane — same lane layout as LoadElem.
          for (int l = 0; l < W; ++l) {
            d[l] = static_cast<double>(base + static_cast<int64_t>(l) * lane_stride);
          }
          break;
        case KOp::InlineLoop: {
          // Inline SOAC block: run [body_begin, body_end) trip times with the
          // inner index broadcast, then resume past the body. The trip
          // register is launch-invariant, so lane 0's value is every lane's.
          // Bodies have no LoadElem/StoreOut, so the recursive span's
          // iteration range is irrelevant — one batch of the same W lanes.
          const Kernel::InlineLoop& il = k.loops[static_cast<size_t>(in.slot)];
          const auto trip = static_cast<int64_t>(r[static_cast<int64_t>(il.trip_reg) * W]);
          if (il.acc_reg >= 0) {
            double* ac = r + static_cast<int64_t>(il.acc_reg) * W;
            const double* ne = r + static_cast<int64_t>(il.neutral_reg) * W;
            for (int l = 0; l < W; ++l) ac[l] = ne[l];
          }
          for (size_t j = 0; j < il.more_accs.size(); ++j) {
            double* ac = r + static_cast<int64_t>(il.more_accs[j]) * W;
            const double* ne = r + static_cast<int64_t>(il.more_neutrals[j]) * W;
            for (int l = 0; l < W; ++l) ac[l] = ne[l];
          }
          double* iv = r + static_cast<int64_t>(il.ivar_reg) * W;
          for (int64_t t = 0; t < trip; ++t) {
            const auto tv = static_cast<double>(t);
            for (int l = 0; l < W; ++l) iv[l] = tv;
            exec_span(L, r, 0, 1, il.body_begin, il.body_end, width, 1);
          }
          ii = static_cast<size_t>(il.body_end) - 1;  // ++ii lands on body_end
          break;
        }
      }
    }
  }
}

} // namespace

std::optional<Kernel> compile_kernel(const ir::Lambda& f) {
  return KernelBuilder(f).build();
}

std::optional<Kernel> compile_reduce_kernel(const ir::Lambda& op, const ir::Lambda* pre,
                                            bool scan) {
  return KernelBuilder(op).build_reduce(pre, scan);
}

namespace {

// Allocates + prepares a register file and runs the whole program over
// [lo, hi) in W-wide batches (the map-kernel driver body).
template <class WT>
void run_batched(const KernelLaunch& L, int64_t lo, int64_t hi, WT width) {
  const int W = width;
  std::vector<double> regs(static_cast<size_t>(L.k->num_regs) * static_cast<size_t>(W), 0.0);
  init_invariant(L, regs.data(), W);
  exec_span(L, regs.data(), lo, hi, 0, L.k->instrs.size(), width);
}

// acc = op(acc, other) on a prepared scalar register file: seed the
// accumulator and element registers, run the fold subprogram once.
void combine_on(const KernelLaunch& L, double* r1, double* acc, const double* other) {
  const Kernel& k = *L.k;
  for (size_t j = 0; j < k.reds.size(); ++j) {
    r1[k.reds[j].acc_reg] = acc[j];
    r1[k.reds[j].elem_reg] = other[j];
  }
  exec_span(L, r1, 0, 1, k.fold_begin, k.fold_end, std::integral_constant<int, 1>{});
  for (size_t j = 0; j < k.reds.size(); ++j) acc[j] = r1[k.reds[j].acc_reg];
}

// Folds elements [lo, hi) into `partials` on *prepared* register files: r1
// is the scalar file (invariants broadcast), rw the L.lanes-wide file or
// nullptr for scalar-only execution. The body of run_reduce, factored so
// the segmented driver (run_segred_chunk) can fold one segment per call
// without re-allocating files or re-broadcasting invariants. Register state
// may be stale from a previous span: every non-invariant register is
// written before use within an iteration (LoadElem / pre-lambda Movs feed
// the fold), and the accumulator registers are re-seeded here.
void reduce_span(const KernelLaunch& L, double* r1, double* rw, double* lane_scratch,
                 int64_t lo, int64_t hi, double* partials) {
  const Kernel& kk = *L.k;
  const size_t nred = kk.reds.size();
  const size_t iend = kk.instrs.size();
  int64_t cur = lo;
  const int W = L.lanes;
  if (rw != nullptr && W > 1 && hi - lo >= W) {
    // Every lane starts at the neutral element and folds one contiguous
    // block of blk elements (lane_stride mode of exec_span); the caller's
    // carry-in plus the lane partials are then combined in block order
    // through the fold subprogram, so element order is preserved and the
    // fold only needs to be associative. Block boundaries still reorder
    // float-add *grouping* relative to a single sequential fold
    // (runtime/README.md caveat).
    for (size_t j = 0; j < nred; ++j) {
      for (int l = 0; l < W; ++l) rw[kk.reds[j].acc_reg * W + l] = L.red_neutral[j];
    }
    const int64_t blk = (hi - cur) / W;
    switch (W) {
      case 4: exec_span(L, rw, cur, cur + blk, 0, iend, std::integral_constant<int, 4>{}, blk); break;
      case 8: exec_span(L, rw, cur, cur + blk, 0, iend, std::integral_constant<int, 8>{}, blk); break;
      case 16: exec_span(L, rw, cur, cur + blk, 0, iend, std::integral_constant<int, 16>{}, blk); break;
      default: exec_span(L, rw, cur, cur + blk, 0, iend, W, blk); break;
    }
    cur += blk * W;
    for (int l = 0; l < W; ++l) {
      for (size_t j = 0; j < nred; ++j) lane_scratch[j] = rw[kk.reds[j].acc_reg * W + l];
      combine_on(L, r1, partials, lane_scratch);
    }
  }
  if (cur < hi) {
    // Scalar tail: continue the running partial through the full program.
    for (size_t j = 0; j < nred; ++j) r1[kk.reds[j].acc_reg] = partials[j];
    exec_span(L, r1, cur, hi, 0, iend, std::integral_constant<int, 1>{});
    for (size_t j = 0; j < nred; ++j) partials[j] = r1[kk.reds[j].acc_reg];
  }
}

// Shared entry gate for every vexec dispatch (one textual fault site serves
// all five drivers — site names must be unique per location). True when the
// launch carries a vexec attachment and the dispatch should proceed.
bool vexec_gate(const KernelLaunch& L) {
  if (L.vx == nullptr || L.vops == nullptr) return false;
  NPAD_FAULT_SITE("vexec.dispatch", FaultKind::Chunk);
  if (L.vexec_spans != nullptr) L.vexec_spans->fetch_add(1, std::memory_order_relaxed);
  return true;
}

} // namespace

void KernelLaunch::run(int64_t lo, int64_t hi) const {
  if (vexec_gate(*this)) {
    vops->run(*vx, *this, lo, hi);
    return;
  }
  const int W = lanes;
  if (W > 1 && hi - lo >= W) {
    if (batched_spans != nullptr) batched_spans->fetch_add(1, std::memory_order_relaxed);
    // Full W-wide batches, then a scalar tail loop for the remainder.
    const int64_t full = lo + ((hi - lo) / W) * W;
    switch (W) {
      case 4: run_batched(*this, lo, full, std::integral_constant<int, 4>{}); break;
      case 8: run_batched(*this, lo, full, std::integral_constant<int, 8>{}); break;
      case 16: run_batched(*this, lo, full, std::integral_constant<int, 16>{}); break;
      default: run_batched(*this, lo, full, W); break;
    }
    lo = full;
  }
  // Scalar machine (W = 1) and the tail loop: the batched engine with a
  // compile-time lane count of one — a single opcode switch serves both, so
  // the two paths cannot diverge.
  if (lo < hi) run_batched(*this, lo, hi, std::integral_constant<int, 1>{});
}

void KernelLaunch::run_reduce(int64_t lo, int64_t hi, double* partials) const {
  if (vexec_gate(*this)) {
    vops->run_reduce(*vx, *this, lo, hi, partials);
    return;
  }
  const Kernel& kk = *k;
  // Scalar register file reused for the lane combines and the tail loop.
  std::vector<double> r1(static_cast<size_t>(kk.num_regs), 0.0);
  init_invariant(*this, r1.data(), 1);
  std::vector<double> rw;
  if (lanes > 1 && hi - lo >= lanes) {
    if (batched_spans != nullptr) batched_spans->fetch_add(1, std::memory_order_relaxed);
    rw.assign(static_cast<size_t>(kk.num_regs) * static_cast<size_t>(lanes), 0.0);
    init_invariant(*this, rw.data(), lanes);
  }
  std::vector<double> lane(kk.reds.size());
  reduce_span(*this, r1.data(), rw.empty() ? nullptr : rw.data(), lane.data(), lo, hi,
              partials);
}

void KernelLaunch::run_segred_chunk(int64_t seg_lo, int64_t seg_hi, int64_t seg_len) const {
  if (vexec_gate(*this)) {
    vops->run_segred_chunk(*vx, *this, seg_lo, seg_hi, seg_len);
    return;
  }
  const Kernel& kk = *k;
  const size_t nred = kk.reds.size();
  // One register-file setup for the whole chunk of segments — this is the
  // flattening win over per-row launches: no allocation, no invariant
  // broadcast, no environment frame per segment.
  std::vector<double> r1(static_cast<size_t>(kk.num_regs), 0.0);
  init_invariant(*this, r1.data(), 1);
  std::vector<double> rw;
  if (lanes > 1 && seg_len >= lanes) {
    if (batched_spans != nullptr) batched_spans->fetch_add(1, std::memory_order_relaxed);
    rw.assign(static_cast<size_t>(kk.num_regs) * static_cast<size_t>(lanes), 0.0);
    init_invariant(*this, rw.data(), lanes);
  }
  std::vector<double> partials(nred), lane(nred);
  for (int64_t s = seg_lo; s < seg_hi; ++s) {
    for (size_t j = 0; j < nred; ++j) partials[j] = red_neutral[j];
    reduce_span(*this, r1.data(), rw.empty() ? nullptr : rw.data(), lane.data(),
                s * seg_len, (s + 1) * seg_len, partials.data());
    for (size_t j = 0; j < nred; ++j) {
      auto& o = const_cast<ArrayVal&>(outputs[j]);
      switch (o.elem) {
        case ScalarType::F64: o.set_f64(s, partials[j]); break;
        case ScalarType::I64: o.set_i64(s, static_cast<int64_t>(partials[j])); break;
        case ScalarType::Bool: o.set_b8(s, partials[j] != 0.0); break;
      }
    }
  }
}

void KernelLaunch::run_scan_chunk(int64_t lo, int64_t hi, double* carry) const {
  if (vexec_gate(*this)) {
    vops->run_scan_chunk(*vx, *this, lo, hi, carry);
    return;
  }
  const Kernel& kk = *k;
  std::vector<double> r1(static_cast<size_t>(kk.num_regs), 0.0);
  init_invariant(*this, r1.data(), 1);
  // Scans are order-dependent: always the scalar engine, elements in order.
  for (size_t j = 0; j < kk.reds.size(); ++j) r1[kk.reds[j].acc_reg] = carry[j];
  if (lo < hi) {
    exec_span(*this, r1.data(), lo, hi, 0, kk.instrs.size(), std::integral_constant<int, 1>{});
  }
  for (size_t j = 0; j < kk.reds.size(); ++j) carry[j] = r1[kk.reds[j].acc_reg];
}

void KernelLaunch::scan_rescale(int64_t lo, int64_t hi, const double* prefix) const {
  const Kernel& kk = *k;
  const size_t nred = kk.reds.size();
  std::vector<double> r1(static_cast<size_t>(kk.num_regs), 0.0);
  init_invariant(*this, r1.data(), 1);
  for (int64_t i = lo; i < hi; ++i) {
    for (size_t j = 0; j < nred; ++j) {
      r1[kk.reds[j].acc_reg] = prefix[j];
      r1[kk.reds[j].elem_reg] = outputs[j].get_f64(i);
    }
    exec_span(*this, r1.data(), 0, 1, kk.fold_begin, kk.fold_end,
              std::integral_constant<int, 1>{});
    for (size_t j = 0; j < nred; ++j) {
      auto& o = const_cast<ArrayVal&>(outputs[j]);
      const double v = r1[kk.reds[j].acc_reg];
      switch (o.elem) {
        case ScalarType::F64: o.set_f64(i, v); break;
        case ScalarType::I64: o.set_i64(i, static_cast<int64_t>(v)); break;
        case ScalarType::Bool: o.set_b8(i, v != 0.0); break;
      }
    }
  }
}

void KernelLaunch::combine_partials(double* acc, const double* other) const {
  std::vector<double> r1(static_cast<size_t>(k->num_regs), 0.0);
  init_invariant(*this, r1.data(), 1);
  combine_on(*this, r1.data(), acc, other);
}

int64_t KernelLaunch::run_hist_chunk(int64_t lo, int64_t hi, double* bins, int64_t m,
                                     const int64_t* inds) const {
  if (vexec_gate(*this)) {
    return vops->run_hist_chunk(*vx, *this, lo, hi, bins, m, inds);
  }
  const Kernel& kk = *k;
  assert(kk.reds.size() == 1 && "hist kernels are single-result folds");
  const int32_t acc_reg = kk.reds[0].acc_reg;
  std::vector<double> r1(static_cast<size_t>(kk.num_regs), 0.0);
  init_invariant(*this, r1.data(), 1);
  int64_t performed = 0;
  for (int64_t i = lo; i < hi; ++i) {
    const int64_t b = inds[i];
    if (b < 0 || b >= m) continue;  // out-of-range bins ignored (pre is pure)
    // [0, fold_begin): LoadElem (+ the histomap pre-lambda) fills the
    // element register for iteration i.
    exec_span(*this, r1.data(), i, i + 1, 0, kk.fold_begin,
              std::integral_constant<int, 1>{});
    r1[acc_reg] = bins[b];
    exec_span(*this, r1.data(), 0, 1, kk.fold_begin, kk.fold_end,
              std::integral_constant<int, 1>{});
    bins[b] = r1[acc_reg];
    ++performed;
  }
  return performed;
}

void KernelLaunch::fold_bins(double* acc, const double* other, int64_t count) const {
  const Kernel& kk = *k;
  assert(kk.reds.size() == 1 && "hist kernels are single-result folds");
  const int32_t acc_reg = kk.reds[0].acc_reg;
  const int32_t elem_reg = kk.reds[0].elem_reg;
  std::vector<double> r1(static_cast<size_t>(kk.num_regs), 0.0);
  init_invariant(*this, r1.data(), 1);
  for (int64_t j = 0; j < count; ++j) {
    r1[acc_reg] = acc[j];
    r1[elem_reg] = other[j];
    exec_span(*this, r1.data(), 0, 1, kk.fold_begin, kk.fold_end,
              std::integral_constant<int, 1>{});
    acc[j] = r1[acc_reg];
  }
}

void run_scalar_kernel(const Kernel& k, const double* frees, double* regs, double* out) {
  // Scalar blocks have no inputs, free arrays or accumulators (by
  // construction in the plan compiler), so a stack KernelLaunch with empty
  // bindings is sound and the whole call is allocation-free.
  KernelLaunch L;
  L.k = &k;
  L.scalar_out = out;
  for (size_t i = 0; i < k.free_scalar_regs.size(); ++i) regs[k.free_scalar_regs[i]] = frees[i];
  for (const auto& in : k.instrs) {
    if (in.op == KOp::ConstF) regs[in.dst] = in.imm;
  }
  exec_span(L, regs, 0, 1, 0, k.instrs.size(), std::integral_constant<int, 1>{});
}

} // namespace npad::rt
