#include "runtime/kernel.hpp"

#include <cmath>
#include <unordered_map>

#include "ir/visit.hpp"

namespace npad::rt {

namespace {

using namespace ir;

// Digamma via the standard asymptotic series with recurrence shift;
// accurate to ~1e-12 for x > 0 (sufficient for the GMM prior terms).
double digamma(double x) {
  double result = 0.0;
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x, inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12 - inv2 * (1.0 / 120 - inv2 * (1.0 / 252 - inv2 / 240)));
  return result;
}

class KernelBuilder {
public:
  explicit KernelBuilder(const Lambda& f) : f_(f) {}

  std::optional<Kernel> build() {
    // Parameters: scalars become element inputs; accumulators become slots.
    int32_t param_index = 0;
    for (const auto& p : f_.params) {
      if (p.type.is_acc) {
        acc_slot_[p.var.id] = add_acc(p.var, param_index++);
      } else if (p.type.rank == 0) {
        ++param_index;
        const int r = new_reg();
        reg_[p.var.id] = r;
        KInstr in;
        in.op = KOp::LoadElem;
        in.dst = r;
        in.slot = static_cast<int32_t>(k_.num_inputs++);
        k_.instrs.push_back(in);
      } else {
        return std::nullopt;  // array-element params are not kernelizable
      }
    }
    for (const auto& st : f_.body.stms) {
      if (!stm(st)) return std::nullopt;
    }
    for (size_t ri = 0; ri < f_.body.result.size(); ++ri) {
      const Atom& a = f_.body.result[ri];
      if (a.is_var() && acc_slot_.count(a.var().id)) {  // threaded acc result
        k_.ret_acc_slot.push_back(acc_slot_[a.var().id]);
        continue;
      }
      Type t = f_.rets[ri];
      if (t.rank != 0) return std::nullopt;
      KInstr out;
      out.op = KOp::StoreOut;
      out.a = use(a);
      out.slot = static_cast<int32_t>(k_.out_elems.size());
      k_.instrs.push_back(out);
      k_.out_elems.push_back(t.elem);
      k_.ret_acc_slot.push_back(-1);
    }
    k_.num_regs = next_reg_;
    k_.acc_upd_counts.assign(k_.accs.size(), 0);
    for (const auto& in : k_.instrs) {
      if (in.op == KOp::UpdAcc) ++k_.acc_upd_counts[static_cast<size_t>(in.slot)];
    }
    return std::move(k_);
  }

private:
  int new_reg() { return next_reg_++; }

  int add_acc(Var v, int32_t param_index) {
    k_.accs.push_back(Kernel::AccBinding{v, param_index});
    return static_cast<int>(k_.accs.size()) - 1;
  }

  // Returns the register holding atom `a`, materializing constants and
  // registering free scalar variables on first use.
  int32_t use(const Atom& a) {
    if (a.is_const()) {
      const ConstVal& c = a.cval();
      const int r = new_reg();
      KInstr in;
      in.op = KOp::ConstF;
      in.dst = r;
      in.imm = c.t == ScalarType::F64 ? c.f : static_cast<double>(c.i);
      k_.instrs.push_back(in);
      return r;
    }
    auto it = reg_.find(a.var().id);
    if (it != reg_.end()) return it->second;
    // Free scalar variable: reserve a register filled at launch time.
    const int r = new_reg();
    reg_[a.var().id] = r;
    k_.free_scalars.push_back(a.var());
    k_.free_scalar_regs.push_back(r);
    return r;
  }

  // Free array used via Gather; -1 when the var is not a known array yet.
  int32_t array_slot(Var v) {
    auto it = arr_slot_.find(v.id);
    if (it != arr_slot_.end()) return it->second;
    if (reg_.count(v.id) || acc_slot_.count(v.id)) return -1;
    const auto slot = static_cast<int32_t>(k_.free_arrays.size());
    k_.free_arrays.push_back(v);
    arr_slot_[v.id] = slot;
    return slot;
  }

  bool stm(const Stm& st) {
    if (st.vars.size() != 1) return false;
    const Var dst = st.vars[0];
    const Type dt = st.types[0];
    auto simple = [&](KOp op, int32_t a, int32_t b = -1, int32_t c = -1) {
      const int r = new_reg();
      KInstr in;
      in.op = op;
      in.dst = r;
      in.a = a;
      in.b = b;
      in.c = c;
      k_.instrs.push_back(in);
      reg_[dst.id] = r;
      return true;
    };
    return std::visit(
        Overload{
            [&](const OpAtom& o) {
              if (dt.is_acc) {
                if (!o.a.is_var()) return false;
                auto it = acc_slot_.find(o.a.var().id);
                if (it == acc_slot_.end()) return false;
                acc_slot_[dst.id] = it->second;
                return true;
              }
              if (dt.rank != 0) return false;
              return simple(KOp::Mov, use(o.a));
            },
            [&](const OpBin& o) {
              static constexpr KOp table[] = {KOp::Add, KOp::Sub, KOp::Mul, KOp::Div,
                                              KOp::Pow, KOp::Min, KOp::Max, KOp::Mod,
                                              KOp::Eq,  KOp::Ne,  KOp::Lt,  KOp::Le,
                                              KOp::Gt,  KOp::Ge,  KOp::And, KOp::Or};
              KOp op = table[static_cast<size_t>(o.op)];
              // Integer division must truncate (registers are doubles).
              if (op == KOp::Div && dt.elem == ScalarType::I64) op = KOp::IDiv;
              return simple(op, use(o.a), use(o.b));
            },
            [&](const OpUn& o) {
              KOp op;
              switch (o.op) {
                case UnOp::Neg: op = KOp::Neg; break;
                case UnOp::Exp: op = KOp::Exp; break;
                case UnOp::Log: op = KOp::Log; break;
                case UnOp::Sqrt: op = KOp::Sqrt; break;
                case UnOp::Sin: op = KOp::Sin; break;
                case UnOp::Cos: op = KOp::Cos; break;
                case UnOp::Tanh: op = KOp::Tanh; break;
                case UnOp::Abs: op = KOp::Abs; break;
                case UnOp::Sign: op = KOp::Sign; break;
                case UnOp::LGamma: op = KOp::LGamma; break;
                case UnOp::Digamma: op = KOp::Digamma; break;
                case UnOp::Not: op = KOp::Not; break;
                case UnOp::ToF64: op = KOp::Mov; break;
                case UnOp::ToI64: op = KOp::Trunc; break;
                default: return false;
              }
              return simple(op, use(o.a));
            },
            [&](const OpSelect& o) { return simple(KOp::Select, use(o.c), use(o.t), use(o.f)); },
            [&](const OpIndex& o) {
              if (o.idx.empty() || o.idx.size() > 4 || dt.rank != 0) return false;
              const int32_t slot = array_slot(o.arr);
              if (slot < 0) return false;
              KInstr in;
              in.op = KOp::Gather;
              in.slot = slot;
              in.nidx = static_cast<int32_t>(o.idx.size());
              for (size_t i = 0; i < o.idx.size(); ++i) in.idx[i] = use(o.idx[i]);
              in.dst = new_reg();
              k_.instrs.push_back(in);
              reg_[dst.id] = in.dst;
              return true;
            },
            [&](const OpUpdAcc& o) {
              auto it = acc_slot_.find(o.acc.id);
              int32_t slot;
              if (it != acc_slot_.end()) {
                slot = it->second;
              } else {
                if (reg_.count(o.acc.id) || arr_slot_.count(o.acc.id)) return false;
                slot = add_acc(o.acc, -1);
                acc_slot_[o.acc.id] = slot;
              }
              if (o.idx.empty() || o.idx.size() > 4) return false;
              KInstr in;
              in.op = KOp::UpdAcc;
              in.slot = slot;
              in.a = use(o.v);
              in.nidx = static_cast<int32_t>(o.idx.size());
              for (size_t i = 0; i < o.idx.size(); ++i) in.idx[i] = use(o.idx[i]);
              k_.instrs.push_back(in);
              acc_slot_[dst.id] = slot;  // threaded result aliases the slot
              return true;
            },
            [&](const auto&) { return false; },
        },
        st.e);
  }

  const Lambda& f_;
  Kernel k_;
  int next_reg_ = 0;
  std::unordered_map<uint32_t, int32_t> reg_;
  std::unordered_map<uint32_t, int32_t> arr_slot_;
  std::unordered_map<uint32_t, int32_t> acc_slot_;
};

inline int64_t flat_index(const ArrayVal& a, const double* regs, const int32_t* idx,
                          int32_t nidx) {
  int64_t off = 0;
  int64_t stride = 1;
  // idx covers the leading `nidx` dims of a rank-nidx array (full indexing).
  for (int32_t d = nidx - 1; d >= 0; --d) {
    const auto i = static_cast<int64_t>(regs[idx[d]]);
    off += i * stride;
    stride *= a.shape[static_cast<size_t>(d)];
  }
  return off;
}

} // namespace

std::optional<Kernel> compile_kernel(const ir::Lambda& f) {
  return KernelBuilder(f).build();
}

void KernelLaunch::run(int64_t lo, int64_t hi) const {
  std::vector<double> regs(static_cast<size_t>(k->num_regs), 0.0);
  for (size_t i = 0; i < k->free_scalar_regs.size(); ++i) {
    regs[static_cast<size_t>(k->free_scalar_regs[i])] = free_scalar_vals[i];
  }
  for (int64_t it = lo; it < hi; ++it) {
    for (const auto& in : k->instrs) {
      double* r = regs.data();
      switch (in.op) {
        case KOp::ConstF: r[in.dst] = in.imm; break;
        case KOp::Mov: r[in.dst] = r[in.a]; break;
        case KOp::Add: r[in.dst] = r[in.a] + r[in.b]; break;
        case KOp::Sub: r[in.dst] = r[in.a] - r[in.b]; break;
        case KOp::Mul: r[in.dst] = r[in.a] * r[in.b]; break;
        case KOp::Div: r[in.dst] = r[in.a] / r[in.b]; break;
        case KOp::IDiv: {
          const auto x = static_cast<int64_t>(r[in.a]), y = static_cast<int64_t>(r[in.b]);
          r[in.dst] = static_cast<double>(y == 0 ? 0 : x / y);
          break;
        }
        case KOp::Pow: r[in.dst] = std::pow(r[in.a], r[in.b]); break;
        case KOp::Min: r[in.dst] = std::min(r[in.a], r[in.b]); break;
        case KOp::Max: r[in.dst] = std::max(r[in.a], r[in.b]); break;
        case KOp::Mod: {
          const auto x = static_cast<int64_t>(r[in.a]), y = static_cast<int64_t>(r[in.b]);
          r[in.dst] = static_cast<double>(y == 0 ? 0 : x % y);
          break;
        }
        case KOp::Eq: r[in.dst] = r[in.a] == r[in.b] ? 1.0 : 0.0; break;
        case KOp::Ne: r[in.dst] = r[in.a] != r[in.b] ? 1.0 : 0.0; break;
        case KOp::Lt: r[in.dst] = r[in.a] < r[in.b] ? 1.0 : 0.0; break;
        case KOp::Le: r[in.dst] = r[in.a] <= r[in.b] ? 1.0 : 0.0; break;
        case KOp::Gt: r[in.dst] = r[in.a] > r[in.b] ? 1.0 : 0.0; break;
        case KOp::Ge: r[in.dst] = r[in.a] >= r[in.b] ? 1.0 : 0.0; break;
        case KOp::And: r[in.dst] = (r[in.a] != 0.0 && r[in.b] != 0.0) ? 1.0 : 0.0; break;
        case KOp::Or: r[in.dst] = (r[in.a] != 0.0 || r[in.b] != 0.0) ? 1.0 : 0.0; break;
        case KOp::Neg: r[in.dst] = -r[in.a]; break;
        case KOp::Exp: r[in.dst] = std::exp(r[in.a]); break;
        case KOp::Log: r[in.dst] = std::log(r[in.a]); break;
        case KOp::Sqrt: r[in.dst] = std::sqrt(r[in.a]); break;
        case KOp::Sin: r[in.dst] = std::sin(r[in.a]); break;
        case KOp::Cos: r[in.dst] = std::cos(r[in.a]); break;
        case KOp::Tanh: r[in.dst] = std::tanh(r[in.a]); break;
        case KOp::Abs: r[in.dst] = std::fabs(r[in.a]); break;
        case KOp::Sign: r[in.dst] = r[in.a] > 0 ? 1.0 : (r[in.a] < 0 ? -1.0 : 0.0); break;
        case KOp::LGamma: r[in.dst] = std::lgamma(r[in.a]); break;
        case KOp::Digamma: r[in.dst] = digamma(r[in.a]); break;
        case KOp::Not: r[in.dst] = r[in.a] == 0.0 ? 1.0 : 0.0; break;
        case KOp::Trunc: r[in.dst] = std::trunc(r[in.a]); break;
        case KOp::Select: r[in.dst] = r[in.a] != 0.0 ? r[in.b] : r[in.c]; break;
        case KOp::LoadElem: {
          const ArrayVal& a = inputs[static_cast<size_t>(in.slot)];
          r[in.dst] = a.get_f64(it);
          break;
        }
        case KOp::Gather: {
          const ArrayVal& a = free_array_vals[static_cast<size_t>(in.slot)];
          r[in.dst] = a.get_f64(flat_index(a, r, in.idx, in.nidx));
          break;
        }
        case KOp::UpdAcc: {
          ArrayVal& a = const_cast<ArrayVal&>(acc_array_vals[static_cast<size_t>(in.slot)]);
          const int64_t at = flat_index(a, r, in.idx, in.nidx);
          if (acc_atomic.empty() || acc_atomic[static_cast<size_t>(in.slot)]) {
            atomic_add_f64(a, at, r[in.a]);
          } else {
            plain_add_f64(a, at, r[in.a]);
          }
          break;
        }
        case KOp::StoreOut: {
          ArrayVal& o = const_cast<ArrayVal&>(outputs[static_cast<size_t>(in.slot)]);
          switch (o.elem) {
            case ScalarType::F64: o.set_f64(it, r[in.a]); break;
            case ScalarType::I64: o.set_i64(it, static_cast<int64_t>(r[in.a])); break;
            case ScalarType::Bool: o.set_b8(it, r[in.a] != 0.0); break;
          }
          break;
        }
      }
    }
  }
}

} // namespace npad::rt
