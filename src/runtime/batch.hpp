#pragma once

// Cross-request batching support (serving): lifts a program into its batched
// form — every parameter raised one rank, the original body becomes the
// lambda of a single outer map over the stacked request axis — so N
// same-program requests execute as ONE flattened launch instead of N
// interpreter entries. This is exactly the regular-nest shape the flattener
// and kernel tiers were built for; the serving batcher (src/serve) stacks
// request arguments with `stack_args`, runs the cached batched program, and
// splits results back per request with `unstack_results`.
//
// Batched programs are cached process-wide by structural signature of the
// original function (mirroring ProgCache/KernelCache: immortal entries,
// shared across all serving tenants).

#include <memory>
#include <vector>

#include "ir/ast.hpp"
#include "runtime/value.hpp"

namespace npad::rt {

// Returns P_batched: params lift(t_i), body = one OpMap of P's body over the
// stacked params, rets lift(r_j). Throws npad::TypeError for programs that
// cannot batch (no parameters, or accumulator-typed parameters/results).
ir::Prog make_batched_prog(const ir::Prog& p);

// Process-wide cache of batched forms, keyed by the structural signature of
// the *original* function. Entries are immortal (like ProgCache).
class BatchedProgCache {
public:
  static BatchedProgCache& global();

  // Returns the cached batched form of `p`, building it on first use.
  std::shared_ptr<const ir::Prog> get(const ir::Prog& p);

  size_t size() const;

private:
  struct Impl;
  Impl* impl_;
  BatchedProgCache();
};

// Stacks B per-request argument lists (same arity, same per-position scalar
// type / element type / shape) into batched values: scalars become rank-1
// arrays of extent B, rank-r arrays become rank-(r+1) arrays with outer
// extent B. Throws npad::TypeError on arity/type mismatches and
// npad::ShapeError when a position's array shapes disagree across requests.
std::vector<Value> stack_args(const std::vector<std::vector<Value>>& batch);

// Splits batched results back into per-request result vectors. `orig_rets`
// are the ORIGINAL program's result types: a stacked rank-1 result de-stacks
// to scalars, a stacked rank-(r+1) result to compacted rank-r arrays (each
// request owns its storage — no views into the shared stacked buffer).
std::vector<std::vector<Value>> unstack_results(const std::vector<Value>& stacked,
                                                int64_t batch,
                                                const std::vector<ir::Type>& orig_rets);

} // namespace npad::rt
