#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace npad::support {

namespace {
thread_local bool tl_in_parallel = false;
} // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The caller participates in work execution, so spawn threads-1 workers.
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_parallel_region() noexcept { return tl_in_parallel; }

void ThreadPool::worker_loop() {
  tl_in_parallel = true;
  for (;;) {
    Task t;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      t = queue_.back();
      queue_.pop_back();
    }
    t.body(t.lo, t.hi);
    {
      std::lock_guard lk(mu_);
      if (--outstanding_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(int64_t n, int64_t grain, ForBody body) {
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  const auto threads = static_cast<int64_t>(thread_count());
  // Run inline when nested, single-threaded, or too small to split.
  if (tl_in_parallel || threads == 1 || n <= grain) {
    body(0, n);
    return;
  }
  const int64_t chunks = std::min<int64_t>((n + grain - 1) / grain, threads * 4);
  const int64_t chunk = (n + chunks - 1) / chunks;
  {
    std::lock_guard lk(mu_);
    for (int64_t lo = 0; lo < n; lo += chunk) {
      queue_.push_back(Task{body, lo, std::min(lo + chunk, n)});
      ++outstanding_;
    }
  }
  cv_work_.notify_all();
  // The caller helps drain the queue, then waits for stragglers.
  tl_in_parallel = true;
  for (;;) {
    Task t;
    if (!pop_task(t)) break;
    t.body(t.lo, t.hi);
    std::lock_guard lk(mu_);
    if (--outstanding_ == 0) cv_done_.notify_all();
  }
  tl_in_parallel = false;
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return outstanding_ == 0; });
}

bool ThreadPool::pop_task(Task& out) {
  std::lock_guard lk(mu_);
  if (queue_.empty()) return false;
  out = queue_.back();
  queue_.pop_back();
  return true;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("NPAD_NUM_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return static_cast<unsigned>(v);
    }
    return 0u;
  }());
  return pool;
}

void parallel_for(int64_t n, int64_t grain, ThreadPool::ForBody body) {
  ThreadPool::global().parallel_for(n, grain, body);
}

} // namespace npad::support
