#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/fault.hpp"

namespace npad::support {

namespace {
thread_local bool tl_in_parallel = false;

// Restores tl_in_parallel even when the caller's drain loop unwinds, so a
// throwing chunk cannot leave the launching thread permanently "nested"
// (which would force every later parallel_for inline).
struct InParallelGuard {
  bool saved;
  InParallelGuard() : saved(tl_in_parallel) { tl_in_parallel = true; }
  ~InParallelGuard() { tl_in_parallel = saved; }
};
} // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The caller participates in work execution, so spawn threads-1 workers.
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_parallel_region() noexcept { return tl_in_parallel; }

void ThreadPool::exec_task(const Task& t) noexcept {
  if (!t.launch->cancelled.load(std::memory_order_acquire)) {
    try {
      NPAD_FAULT_SITE("threadpool.chunk", FaultKind::Chunk);
      t.launch->body(t.lo, t.hi);
    } catch (...) {
      std::lock_guard lk(mu_);
      if (!t.launch->error) t.launch->error = std::current_exception();
      t.launch->cancelled.store(true, std::memory_order_release);
    }
  }
  std::lock_guard lk(mu_);
  if (--t.launch->outstanding == 0) cv_done_.notify_all();
}

void ThreadPool::worker_loop() {
  tl_in_parallel = true;
  for (;;) {
    Task t;
    {
      std::unique_lock lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      t = queue_.back();
      queue_.pop_back();
    }
    exec_task(t);
  }
}

void ThreadPool::parallel_for(int64_t n, int64_t grain, ForBody body) {
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  const auto threads = static_cast<int64_t>(thread_count());
  // Run inline when nested, single-threaded, or too small to split.
  if (tl_in_parallel || threads == 1 || n <= grain) {
    body(0, n);
    return;
  }
  const int64_t chunks = std::min<int64_t>((n + grain - 1) / grain, threads * 4);
  const int64_t chunk = (n + chunks - 1) / chunks;
  Launch launch;
  launch.body = body;
  {
    std::lock_guard lk(mu_);
    // Reserve before pushing: a mid-enqueue bad_alloc must not leave tasks
    // pointing at a Launch whose join never sees them.
    queue_.reserve(queue_.size() + static_cast<size_t>((n + chunk - 1) / chunk));
    for (int64_t lo = 0; lo < n; lo += chunk) {
      queue_.push_back(Task{&launch, lo, std::min(lo + chunk, n)});
      ++launch.outstanding;
    }
  }
  cv_work_.notify_all();
  // The caller helps drain the queue (possibly executing other launches'
  // chunks — errors land on their owning Launch), then waits for stragglers.
  {
    InParallelGuard guard;
    for (;;) {
      Task t;
      if (!pop_task(t)) break;
      exec_task(t);
    }
  }
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [&] { return launch.outstanding == 0; });
  if (launch.error) {
    std::exception_ptr err = launch.error;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

bool ThreadPool::pop_task(Task& out) {
  std::lock_guard lk(mu_);
  if (queue_.empty()) return false;
  out = queue_.back();
  queue_.pop_back();
  return true;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("NPAD_NUM_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return static_cast<unsigned>(v);
    }
    return 0u;
  }());
  return pool;
}

void parallel_for(int64_t n, int64_t grain, ThreadPool::ForBody body) {
  ThreadPool::global().parallel_for(n, grain, body);
}

} // namespace npad::support
