#pragma once

// A small fixed-size thread pool with blocking parallel-for, used as the
// execution substrate for the parallel SOAC runtime. Nested parallel regions
// run sequentially on the worker that encounters them (the "flattening-lite"
// policy described in src/runtime/README.md, "Scheduling"): only the
// outermost level fans out.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace npad::support {

class ThreadPool {
public:
  // Creates `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const noexcept { return static_cast<unsigned>(workers_.size()) + 1; }

  // Runs body(lo, hi) over [0, n) split into chunks of at least `grain`
  // elements. Blocks until all chunks complete. The calling thread also
  // executes chunks. Re-entrant calls (from inside a chunk) run inline.
  void parallel_for(int64_t n, int64_t grain, const std::function<void(int64_t, int64_t)>& body);

  // True when the current thread is already executing inside a parallel_for.
  static bool in_parallel_region() noexcept;

  // Process-wide pool, sized from NPAD_NUM_THREADS or hardware concurrency.
  static ThreadPool& global();

private:
  struct Task {
    const std::function<void(int64_t, int64_t)>* body = nullptr;
    int64_t lo = 0, hi = 0;
  };

  void worker_loop();
  bool pop_task(Task& out);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Task> queue_;
  int64_t outstanding_ = 0;
  bool stop_ = false;
};

// Convenience wrapper over the global pool.
void parallel_for(int64_t n, int64_t grain, const std::function<void(int64_t, int64_t)>& body);

} // namespace npad::support
