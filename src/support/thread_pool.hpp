#pragma once

// A small fixed-size thread pool with blocking parallel-for, used as the
// execution substrate for the parallel SOAC runtime. Nested parallel regions
// run sequentially on the worker that encounters them (the "flattening-lite"
// policy described in src/runtime/README.md, "Scheduling"): only the
// outermost level fans out.
//
// Exception safety: a chunk body that throws does not take the process down.
// The first exception of a launch is captured via std::exception_ptr, a
// cooperative cancellation flag turns that launch's remaining chunks into
// no-ops, the outstanding-chunk count always drains (workers and the helping
// caller decrement it on every path), and the captured exception is rethrown
// exactly once at the join point in parallel_for. The pool is fully reusable
// after a failed launch.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace npad::support {

// A non-owning, non-allocating reference to a callable — the hot-path
// replacement for std::function in parallel_for. Two words (object pointer +
// trampoline), trivially copyable, never heap-allocates. The referenced
// callable must outlive every invocation; parallel_for blocks until all
// chunks finish, so stack lambdas at the call site are always safe.
template <class Sig>
class function_ref;

template <class R, class... Args>
class function_ref<R(Args...)> {
public:
  function_ref() = default;

  template <class F,
            class = std::enable_if_t<!std::is_same_v<std::remove_cvref_t<F>, function_ref>>>
  function_ref(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::add_pointer_t<std::remove_reference_t<F>>>(obj))(
              static_cast<Args>(args)...);
        }) {}

  explicit operator bool() const noexcept { return call_ != nullptr; }

  R operator()(Args... args) const { return call_(obj_, static_cast<Args>(args)...); }

private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

class ThreadPool {
public:
  // Creates `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const noexcept { return static_cast<unsigned>(workers_.size()) + 1; }

  using ForBody = function_ref<void(int64_t, int64_t)>;

  // Runs body(lo, hi) over [0, n) split into chunks of at least `grain`
  // elements. Blocks until all chunks complete. The calling thread also
  // executes chunks. Re-entrant calls (from inside a chunk) run inline.
  // `body` is a non-owning reference: no per-launch allocation or type
  // erasure through std::function on this hot path.
  //
  // If any chunk throws, the launch is cancelled (queued chunks of this
  // launch become no-ops), all chunks are joined, and the *first* exception
  // is rethrown here. Exceptions never escape worker threads.
  void parallel_for(int64_t n, int64_t grain, ForBody body);

  // True when the current thread is already executing inside a parallel_for.
  static bool in_parallel_region() noexcept;

  // Process-wide pool, sized from NPAD_NUM_THREADS or hardware concurrency.
  static ThreadPool& global();

private:
  // Per-launch join state, living on the launching caller's stack for the
  // duration of its parallel_for. Tasks point back at their launch so errors
  // land on the right join even when a helping caller drains another
  // launch's chunks off the shared queue.
  struct Launch {
    ForBody body;
    std::atomic<bool> cancelled{false};
    std::exception_ptr error;  // first error; guarded by pool mu_
    int64_t outstanding = 0;   // chunks not yet finished; guarded by pool mu_
  };

  struct Task {
    Launch* launch = nullptr;
    int64_t lo = 0, hi = 0;
  };

  void worker_loop();
  bool pop_task(Task& out);
  // Runs one task with full capture: skips the body when the owning launch is
  // cancelled, records the first exception and cancels on throw, and always
  // decrements the launch's outstanding count.
  void exec_task(const Task& t) noexcept;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<Task> queue_;
  bool stop_ = false;
};

// Convenience wrapper over the global pool.
void parallel_for(int64_t n, int64_t grain, ThreadPool::ForBody body);

} // namespace npad::support
