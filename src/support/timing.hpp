#pragma once

// Wall-clock timing helpers for the benchmark harness. The paper reports
// mean-of-10 runtimes including all overheads except host/device transfer;
// `time_mean_ms` mirrors that protocol (warmup + mean of `reps`).

#include <chrono>
#include <cstdint>
#include <functional>

namespace npad::support {

class Timer {
public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Runs `fn` once for warmup, then `reps` times, returning the mean in ms.
inline double time_mean_ms(const std::function<void()>& fn, int reps = 5) {
  fn();
  Timer t;
  for (int i = 0; i < reps; ++i) fn();
  return t.elapsed_ms() / reps;
}

} // namespace npad::support
