#pragma once

// Deterministic fault injection for the execution substrate.
//
// The runtime's robustness contract — a failure anywhere inside a parallel
// launch surfaces as a typed `npad::Error`, all resources unwind, and an
// immediate retry reproduces the fault-free result bit-exact — is only worth
// stating if something *proves* it. This injector instruments every
// interesting failure point (pool allocations, worker chunks, segmented and
// histogram merges, general-interpreter frames) with a named *site*; a test
// driver then sweeps: count the crossings of every site under a workload,
// arm each (site, occurrence) pair in turn, and assert the typed error, the
// zero-leak unwind, and the bit-exact retry (tests/test_fault.cpp).
//
// Determinism: a site's crossing count is a deterministic function of the
// program and the interpreter options (chunk counts, allocation counts and
// loop trip counts do not depend on thread scheduling), so firing at the
// k-th crossing selects the same logical event every run — even when the
// *thread* that performs the crossing varies. Occurrence counters are
// per-site and atomic; the armed fault fires exactly once.
//
// Overhead when disabled: each site costs one relaxed atomic load and a
// predictable branch (`active()`), at launch/chunk/allocation granularity —
// never per element. Sites self-register on their first crossing while the
// injector is active (counting or armed), so `num_sites()` reflects the
// sites an instrumented workload actually reached.
//
//   NPAD_FAULT_SITE("map.kernel_chunk", FaultKind::Chunk);
//
// expands to the gate + registration + fire check; an armed Alloc site
// throws `ResourceError`, an armed Chunk site throws `KernelError`.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "support/error.hpp"

namespace npad::support {

// Which typed error an armed site throws when it fires.
enum class FaultKind : uint8_t {
  Alloc,  // allocation failure -> ResourceError
  Chunk,  // mid-chunk execution fault -> KernelError
};

class FaultInjector {
public:
  enum class Mode : uint8_t { Off = 0, Count = 1, Armed = 2 };

  // Process-wide injector (leaked singleton, like the pools it instruments).
  static FaultInjector& global();

  // Hot-path gate: one relaxed load. False in normal operation.
  bool active() const noexcept { return mode_.load(std::memory_order_relaxed) != Mode::Off; }

  // Registers an instrumented site on its first active crossing; returns a
  // stable index. Site names must be unique per textual location.
  int register_site(const char* name, FaultKind kind);

  // Count mode: every crossing increments its site counter, nothing fires.
  // Clears counts from earlier sessions so crossings() is per-workload.
  void start_counting();

  // Arms site `site` to fire at its `occurrence`-th crossing (0-based).
  // Resets all crossing counters so occurrences are relative to the next run.
  void arm(int site, uint64_t occurrence);

  // Back to zero-overhead Off mode; crossing counts are preserved.
  void stop();

  void reset_counts();

  int num_sites() const;
  std::string site_name(int site) const;
  FaultKind site_kind(int site) const;
  uint64_t crossings(int site) const;
  uint64_t faults_fired() const { return fired_total_.load(std::memory_order_relaxed); }

  // Crossing hook: bumps the site counter; true when the armed fault fires
  // here (at most once per arm()).
  bool crossed(int site) noexcept;

  // Throws the typed error for `site` ("injected fault at <name>").
  [[noreturn]] void fire(int site);

private:
  FaultInjector() = default;

  static constexpr int kMaxSites = 128;
  struct Site {
    const char* name = nullptr;
    FaultKind kind = FaultKind::Chunk;
    std::atomic<uint64_t> count{0};
  };

  mutable std::mutex mu_;                // guards registration
  Site sites_[kMaxSites];
  std::atomic<int> num_sites_{0};
  std::atomic<Mode> mode_{Mode::Off};
  std::atomic<int> armed_site_{-1};
  std::atomic<uint64_t> armed_occurrence_{0};
  std::atomic<bool> armed_fired_{false};
  std::atomic<uint64_t> fired_total_{0};
};

// Instrumented failure point. The static registration runs on the first
// crossing while the injector is active; in Off mode the whole site is one
// relaxed load and an untaken branch.
#define NPAD_FAULT_SITE(site_name, fault_kind)                                         \
  do {                                                                                 \
    auto& npad_fi_ = ::npad::support::FaultInjector::global();                         \
    if (npad_fi_.active()) {                                                           \
      static const int npad_fi_site_ =                                                 \
          ::npad::support::FaultInjector::global().register_site(                      \
              site_name, ::npad::support::fault_kind);                                 \
      if (npad_fi_.crossed(npad_fi_site_)) npad_fi_.fire(npad_fi_site_);               \
    }                                                                                  \
  } while (0)

} // namespace npad::support
