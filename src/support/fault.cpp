#include "support/fault.hpp"

#include <cstring>

namespace npad::support {

FaultInjector& FaultInjector::global() {
  // Leaked singleton: sites may be crossed during static teardown of test
  // fixtures; the injector must outlive everything that can allocate.
  static FaultInjector* fi = new FaultInjector();
  return *fi;
}

int FaultInjector::register_site(const char* name, FaultKind kind) {
  std::lock_guard lk(mu_);
  const int n = num_sites_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    if (std::strcmp(sites_[i].name, name) == 0) return i;
  }
  if (n >= kMaxSites) return kMaxSites - 1;  // saturate; never out-of-bounds
  sites_[n].name = name;
  sites_[n].kind = kind;
  sites_[n].count.store(0, std::memory_order_relaxed);
  // Publish the entry before the index becomes visible to lock-free readers.
  num_sites_.store(n + 1, std::memory_order_release);
  return n;
}

void FaultInjector::start_counting() {
  // A counting session is per-workload: clear counts accumulated by earlier
  // sessions so crossings() reflects only the run about to happen.
  reset_counts();
  armed_site_.store(-1, std::memory_order_relaxed);
  mode_.store(Mode::Count, std::memory_order_relaxed);
}

void FaultInjector::arm(int site, uint64_t occurrence) {
  reset_counts();
  armed_site_.store(site, std::memory_order_relaxed);
  armed_occurrence_.store(occurrence, std::memory_order_relaxed);
  armed_fired_.store(false, std::memory_order_relaxed);
  mode_.store(Mode::Armed, std::memory_order_relaxed);
}

void FaultInjector::stop() {
  mode_.store(Mode::Off, std::memory_order_relaxed);
  armed_site_.store(-1, std::memory_order_relaxed);
}

void FaultInjector::reset_counts() {
  const int n = num_sites_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) sites_[i].count.store(0, std::memory_order_relaxed);
}

int FaultInjector::num_sites() const { return num_sites_.load(std::memory_order_acquire); }

std::string FaultInjector::site_name(int site) const {
  if (site < 0 || site >= num_sites()) return "<invalid site>";
  return sites_[site].name;
}

FaultKind FaultInjector::site_kind(int site) const {
  if (site < 0 || site >= num_sites()) return FaultKind::Chunk;
  return sites_[site].kind;
}

uint64_t FaultInjector::crossings(int site) const {
  if (site < 0 || site >= num_sites()) return 0;
  return sites_[site].count.load(std::memory_order_relaxed);
}

bool FaultInjector::crossed(int site) noexcept {
  const Mode m = mode_.load(std::memory_order_relaxed);
  if (m == Mode::Off) return false;
  const uint64_t n = sites_[site].count.fetch_add(1, std::memory_order_relaxed);
  if (m != Mode::Armed) return false;
  if (armed_site_.load(std::memory_order_relaxed) != site) return false;
  if (n != armed_occurrence_.load(std::memory_order_relaxed)) return false;
  // Exactly-once: concurrent crossings of the same occurrence cannot double-
  // fire (counter values are unique, but belt and braces against re-arming).
  bool expected = false;
  return armed_fired_.compare_exchange_strong(expected, true, std::memory_order_relaxed);
}

void FaultInjector::fire(int site) {
  fired_total_.fetch_add(1, std::memory_order_relaxed);
  const std::string msg = std::string("injected fault at site '") + site_name(site) + "'";
  if (site_kind(site) == FaultKind::Alloc) throw ResourceError(msg);
  throw KernelError(msg);
}

} // namespace npad::support
