#pragma once

// Structured error taxonomy for the whole runtime. Every failure that can
// escape a public entry point (typecheck, AD transforms, interpreter runs,
// buffer allocation) is an `npad::Error` subclass, so callers — and the
// coming serving front-end — can branch on the failure class instead of
// string-matching `what()`:
//
//   TypeError      ill-typed IR or runtime type violations
//   ShapeError     extent/rank mismatches, out-of-bounds indexing
//   KernelError    kernel launch/execution failures (incl. injected faults)
//   ResourceError  resource-governance refusals: pool byte budget exceeded,
//                  eval recursion-depth limit hit, injected alloc failures
//   (ad::ADError   derives from Error too — non-differentiable constructs)
//
// Errors carry *IR context*: as the unwind crosses interpreter eval frames,
// each frame appends a line ("in map launch (extent 4096)", "in reduce
// binding %acc_17") so the final `what()` reads like a stack trace through
// the evaluated program rather than an anonymous one-liner. Frames are
// appended via `add_context` on the in-flight exception object (caught by
// reference, mutated, rethrown with `throw;`), capped so a pathological
// unwind cannot build an unbounded trace.

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace npad {

class Error : public std::runtime_error {
public:
  explicit Error(std::string msg) : std::runtime_error(msg), message_(std::move(msg)) {}

  // Dynamic class name ("TypeError", ...): stable across the taxonomy, used
  // by tests and error reporting without RTTI gymnastics.
  virtual const char* kind() const noexcept { return "Error"; }

  // The original message, without the context trace.
  const std::string& message() const noexcept { return message_; }

  // Innermost-first context frames accumulated during unwind.
  const std::vector<std::string>& context() const noexcept { return context_; }

  // Appends one context frame. Frames beyond the cap collapse into a single
  // truncation marker — deep unwinds must not grow the trace unboundedly.
  void add_context(std::string frame) {
    static constexpr size_t kMaxFrames = 32;
    if (context_.size() > kMaxFrames) return;
    if (context_.size() == kMaxFrames) {
      context_.push_back("... (context truncated)");
    } else {
      context_.push_back(std::move(frame));
    }
    what_.clear();
  }

  // "<kind>: <message>" followed by one indented line per context frame.
  const char* what() const noexcept override {
    try {
      if (what_.empty()) {
        what_.append(kind()).append(": ").append(message_);
        for (const auto& f : context_) what_.append("\n  ").append(f);
      }
      return what_.c_str();
    } catch (...) {
      return std::runtime_error::what();  // allocation failed: plain message
    }
  }

private:
  std::string message_;
  std::vector<std::string> context_;
  mutable std::string what_;  // composed lazily; invalidated by add_context
};

class TypeError : public Error {
public:
  using Error::Error;
  const char* kind() const noexcept override { return "TypeError"; }
};

class ShapeError : public Error {
public:
  using Error::Error;
  const char* kind() const noexcept override { return "ShapeError"; }
};

class KernelError : public Error {
public:
  using Error::Error;
  const char* kind() const noexcept override { return "KernelError"; }
};

class ResourceError : public Error {
public:
  using Error::Error;
  const char* kind() const noexcept override { return "ResourceError"; }
};

} // namespace npad
