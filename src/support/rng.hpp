#pragma once

// Deterministic, seedable RNG used by all data generators and property tests.
// splitmix64 core; uniform/normal helpers. Header-only.

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace npad::support {

class Rng {
public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t next_u64() noexcept {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n).
  int64_t uniform_int(int64_t n) noexcept {
    return static_cast<int64_t>(next_u64() % static_cast<uint64_t>(n));
  }

  // Standard normal via Box-Muller.
  double normal() noexcept {
    const double u1 = uniform() + 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  std::vector<double> uniform_vec(size_t n, double lo = 0.0, double hi = 1.0) {
    std::vector<double> v(n);
    for (auto& x : v) x = uniform(lo, hi);
    return v;
  }

  std::vector<double> normal_vec(size_t n, double mean = 0.0, double stddev = 1.0) {
    std::vector<double> v(n);
    for (auto& x : v) x = mean + stddev * normal();
    return v;
  }

  std::vector<int64_t> index_vec(size_t n, int64_t bound) {
    std::vector<int64_t> v(n);
    for (auto& x : v) x = uniform_int(bound);
    return v;
  }

private:
  uint64_t state_;
};

} // namespace npad::support
