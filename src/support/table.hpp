#pragma once

// Fixed-width text table printer used by the bench binaries to emit the same
// rows the paper's tables report (paper value vs measured value side by side).

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace npad::support {

class Table {
public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  static std::string fmt(double v, int prec = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (size_t c = 0; c < r.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], r[c].size());
    auto line = [&] {
      os << '+';
      for (auto w : widths) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    auto row = [&](const std::vector<std::string>& r) {
      os << '|';
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < r.size() ? r[c] : std::string{};
        os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cell << " |";
      }
      os << '\n';
    };
    line();
    row(headers_);
    line();
    for (const auto& r : rows_) row(r);
    line();
  }

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace npad::support
