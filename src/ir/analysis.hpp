#pragma once

// Program analyses shared by passes: free variables of bodies/lambdas, a
// program-wide variable-type table, and structural signatures/hashes used to
// key the runtime caches.

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/ast.hpp"
#include "ir/visit.hpp"

namespace npad::ir {

namespace detail {

inline void fv_body(const Body& b, std::unordered_set<uint32_t>& bound,
                    std::vector<Var>& out, std::unordered_set<uint32_t>& seen);

inline void fv_use(Var v, const std::unordered_set<uint32_t>& bound, std::vector<Var>& out,
                   std::unordered_set<uint32_t>& seen) {
  if (!v.valid() || bound.count(v.id)) return;
  if (seen.insert(v.id).second) out.push_back(v);
}

inline void fv_exp(const Exp& e, std::unordered_set<uint32_t>& bound, std::vector<Var>& out,
                   std::unordered_set<uint32_t>& seen) {
  for_each_atom(e, [&](const Atom& a) {
    if (a.is_var()) fv_use(a.var(), bound, out, seen);
  });
  for_each_nested(e, [&](const NestedScope& s) {
    std::unordered_set<uint32_t> inner = bound;
    for (Var v : s.bound) inner.insert(v.id);
    fv_body(*s.body, inner, out, seen);
  });
}

inline void fv_body(const Body& b, std::unordered_set<uint32_t>& bound, std::vector<Var>& out,
                    std::unordered_set<uint32_t>& seen) {
  std::unordered_set<uint32_t> local = bound;
  for (const auto& st : b.stms) {
    fv_exp(st.e, local, out, seen);
    for (Var v : st.vars) local.insert(v.id);
  }
  for (const auto& a : b.result) {
    if (a.is_var()) fv_use(a.var(), local, out, seen);
  }
}

} // namespace detail

// Free variables of a body, in first-use order (deterministic).
inline std::vector<Var> free_vars(const Body& b,
                                  const std::vector<Var>& extra_bound = {}) {
  std::vector<Var> out;
  std::unordered_set<uint32_t> bound, seen;
  for (Var v : extra_bound) bound.insert(v.id);
  detail::fv_body(b, bound, out, seen);
  return out;
}

inline std::vector<Var> free_vars(const Lambda& l) {
  std::vector<Var> bound;
  for (const auto& p : l.params) bound.push_back(p.var);
  return free_vars(l.body, bound);
}

// -------------------------------------------------------------- type map ---

// Types of all variables in a program. Shadowed re-bindings must agree in
// type with the original binding (the AD passes only re-bind identical ids
// when re-emitting a forward sweep, so this invariant holds by construction).
class TypeMap {
public:
  void bind(Var v, Type t) {
    if (v.id >= types_.size()) {
      types_.resize(v.id + 1);
      known_.resize(v.id + 1, false);
    }
    types_[v.id] = t;
    known_[v.id] = true;
  }

  bool known(Var v) const { return v.valid() && v.id < known_.size() && known_[v.id]; }

  Type at(Var v) const {
    assert(known(v) && "type queried for unbound variable");
    return types_[v.id];
  }

  Type at(const Atom& a) const {
    if (a.is_const()) return Type{a.cval().t, 0, false};
    return at(a.var());
  }

private:
  std::vector<Type> types_;
  std::vector<bool> known_;
};

namespace detail {

inline void collect_body(const Body& b, TypeMap& tm);

inline void collect_exp(const Exp& e, TypeMap& tm) {
  for_each_nested(e, [&](const NestedScope& s) { collect_body(*s.body, tm); });
  std::visit(Overload{
                 [&](const OpLoop& o) {
                   for (const auto& p : o.params) tm.bind(p.var, p.type);
                   if (o.idx.valid()) tm.bind(o.idx, i64());
                   if (o.while_cond)
                     for (const auto& p : o.while_cond->params) tm.bind(p.var, p.type);
                 },
                 [&](const OpMap& o) {
                   if (o.f)
                     for (const auto& p : o.f->params) tm.bind(p.var, p.type);
                 },
                 [&](const OpReduce& o) {
                   if (o.op)
                     for (const auto& p : o.op->params) tm.bind(p.var, p.type);
                   if (o.pre)
                     for (const auto& p : o.pre->params) tm.bind(p.var, p.type);
                 },
                 [&](const OpScan& o) {
                   if (o.op)
                     for (const auto& p : o.op->params) tm.bind(p.var, p.type);
                   if (o.pre)
                     for (const auto& p : o.pre->params) tm.bind(p.var, p.type);
                 },
                 [&](const OpHist& o) {
                   if (o.op)
                     for (const auto& p : o.op->params) tm.bind(p.var, p.type);
                   if (o.pre)
                     for (const auto& p : o.pre->params) tm.bind(p.var, p.type);
                 },
                 [&](const OpWithAcc& o) {
                   if (o.f)
                     for (const auto& p : o.f->params) tm.bind(p.var, p.type);
                 },
                 [&](const auto&) {},
             },
             e);
}

inline void collect_body(const Body& b, TypeMap& tm) {
  for (const auto& st : b.stms) {
    for (size_t i = 0; i < st.vars.size(); ++i) tm.bind(st.vars[i], st.types[i]);
    collect_exp(st.e, tm);
  }
}

} // namespace detail

inline TypeMap collect_types(const Function& f) {
  TypeMap tm;
  for (const auto& p : f.params) tm.bind(p.var, p.type);
  detail::collect_body(f.body, tm);
  return tm;
}

inline void collect_types_into(const Body& b, TypeMap& tm) { detail::collect_body(b, tm); }

// ---------------------------------------------- structural signature/hash ---
//
// A structural signature of a lambda or function: bound variables are
// numbered positionally (alpha-invariant), free variables keep their raw ids,
// constants contribute their bit patterns. Two nodes with equal signatures
// evaluate identically in any environment that agrees on the free variables,
// which is what the runtime kernel cache (runtime/kernel_cache.hpp) and the
// resolved-program cache (runtime/resolve.hpp) need for safe sharing.
// Equality of cached entries is decided by comparing signatures, so hash
// collisions are harmless.

namespace detail {

class SigBuilder {
public:
  explicit SigBuilder(std::vector<uint64_t>& out) : out_(out) {}

  void lambda(const Lambda& l) {
    const size_t mark = undo_.size();
    t(0x70u, l.params.size());
    for (const auto& p : l.params) {
      type(p.type);
      bind(p.var);
    }
    body_scoped(l.body);
    t(0x71u, l.rets.size());
    for (const auto& tt : l.rets) type(tt);
    unwind(mark);
  }

  void function(const Function& f) {
    const size_t mark = undo_.size();
    t(0x72u, f.params.size());
    for (const auto& p : f.params) {
      type(p.type);
      bind(p.var);
    }
    body_scoped(f.body);
    t(0x73u, f.rets.size());
    for (const auto& tt : f.rets) type(tt);
    unwind(mark);
  }

private:
  void t(uint64_t tag, uint64_t payload = 0) { out_.push_back((tag << 48) ^ payload); }

  void type(Type ty) {
    t(0x01u, static_cast<uint64_t>(ty.elem) | (static_cast<uint64_t>(ty.rank) << 8) |
                 (static_cast<uint64_t>(ty.is_acc) << 24));
  }

  void bind(Var v) {
    auto it = ord_.find(v.id);
    undo_.emplace_back(v.id, it == ord_.end() ? UINT32_MAX : it->second);
    ord_[v.id] = next_++;
  }

  void unwind(size_t mark) {
    while (undo_.size() > mark) {
      auto [id, prev] = undo_.back();
      undo_.pop_back();
      if (prev == UINT32_MAX) {
        ord_.erase(id);
      } else {
        ord_[id] = prev;
      }
    }
  }

  void use(Var v) {
    auto it = ord_.find(v.id);
    if (it != ord_.end()) {
      t(0x02u, it->second);  // bound: positional ordinal
    } else {
      t(0x03u, v.id);        // free: identity matters
    }
  }

  void atom(const Atom& a) {
    if (a.is_var()) {
      use(a.var());
      return;
    }
    const ConstVal& c = a.cval();
    t(0x04u, static_cast<uint64_t>(c.t));
    out_.push_back(c.t == ScalarType::F64 ? std::bit_cast<uint64_t>(c.f)
                                          : static_cast<uint64_t>(c.i));
  }

  // A body is a scope: bindings made inside must not leak to the enclosing
  // signature context (mirrors the interpreter's lexical scoping).
  void body_scoped(const Body& b) {
    const size_t mark = undo_.size();
    t(0x05u, b.stms.size());
    for (const auto& st : b.stms) {
      exp(st.e);
      t(0x06u, st.vars.size());
      for (size_t i = 0; i < st.vars.size(); ++i) {
        type(st.types[i]);
        bind(st.vars[i]);
      }
    }
    t(0x07u, b.result.size());
    for (const auto& a : b.result) atom(a);
    unwind(mark);
  }

  void exp(const Exp& e) {
    t(0x10u, e.index());
    std::visit(
        Overload{
            [&](const OpAtom& o) { atom(o.a); },
            [&](const OpBin& o) {
              t(0x11u, static_cast<uint64_t>(o.op));
              atom(o.a);
              atom(o.b);
            },
            [&](const OpUn& o) {
              t(0x12u, static_cast<uint64_t>(o.op));
              atom(o.a);
            },
            [&](const OpSelect& o) { atom(o.c); atom(o.t); atom(o.f); },
            [&](const OpIndex& o) {
              use(o.arr);
              t(0x13u, o.idx.size());
              for (const auto& i : o.idx) atom(i);
            },
            [&](const OpUpdate& o) {
              use(o.arr);
              t(0x13u, o.idx.size());
              for (const auto& i : o.idx) atom(i);
              atom(o.v);
            },
            [&](const OpUpdAcc& o) {
              use(o.acc);
              t(0x13u, o.idx.size());
              for (const auto& i : o.idx) atom(i);
              atom(o.v);
            },
            [&](const OpIota& o) { atom(o.n); },
            [&](const OpReplicate& o) { atom(o.n); atom(o.v); },
            [&](const OpZerosLike& o) { use(o.v); },
            [&](const OpScratch& o) { atom(o.n); use(o.like); },
            [&](const OpLength& o) { use(o.arr); },
            [&](const OpReverse& o) { use(o.arr); },
            [&](const OpTranspose& o) { use(o.arr); },
            [&](const OpCopy& o) { use(o.v); },
            [&](const OpIf& o) {
              atom(o.c);
              body_scoped(*o.tb);
              body_scoped(*o.fb);
            },
            [&](const OpLoop& o) {
              t(0x14u, o.params.size());
              for (const auto& i : o.init) atom(i);
              if (!o.while_cond) atom(o.count);
              t(0x15u, (static_cast<uint64_t>(o.stripmine) << 2) |
                           (static_cast<uint64_t>(o.checkpoint_entry) << 1) |
                           static_cast<uint64_t>(o.while_cond != nullptr));
              if (o.while_bound) atom(*o.while_bound);
              if (o.while_cond) lambda(*o.while_cond);
              const size_t mark = undo_.size();
              for (const auto& p : o.params) {
                type(p.type);
                bind(p.var);
              }
              if (o.idx.valid()) bind(o.idx);
              body_scoped(*o.body);
              unwind(mark);
            },
            [&](const OpMap& o) {
              lambda(*o.f);
              // The flattening annotation selects the runtime execution
              // strategy (and, under parallelism, float grouping), so it
              // distinguishes signatures — like OpLoop::stripmine, unlike
              // the stats-only `fused`.
              t(0x18u, static_cast<uint64_t>(o.flat));
              t(0x16u, o.args.size());
              for (Var v : o.args) use(v);
            },
            [&](const OpReduce& o) {
              lambda(*o.op);
              // The redomap pre-lambda is semantic (it maps the elements the
              // fold sees) and must distinguish signatures; `fused` is a
              // stats-only annotation and stays out, as with OpMap::fused.
              t(0x17u, o.pre != nullptr);
              if (o.pre) lambda(*o.pre);
              for (const auto& n : o.neutral) atom(n);
              t(0x16u, o.args.size());
              for (Var v : o.args) use(v);
            },
            [&](const OpScan& o) {
              lambda(*o.op);
              t(0x17u, o.pre != nullptr);
              if (o.pre) lambda(*o.pre);
              for (const auto& n : o.neutral) atom(n);
              t(0x16u, o.args.size());
              for (Var v : o.args) use(v);
            },
            [&](const OpHist& o) {
              lambda(*o.op);
              // As with OpReduce: the histomap pre-lambda is semantic and
              // must distinguish signatures; `fused` is stats-only and
              // stays out.
              t(0x17u, o.pre != nullptr);
              if (o.pre) lambda(*o.pre);
              atom(o.neutral);
              use(o.dest);
              use(o.inds);
              use(o.vals);
            },
            [&](const OpScatter& o) { use(o.dest); use(o.inds); use(o.vals); },
            [&](const OpWithAcc& o) {
              t(0x16u, o.arrs.size());
              for (Var v : o.arrs) use(v);
              lambda(*o.f);
            },
        },
        e);
  }

  std::vector<uint64_t>& out_;
  std::unordered_map<uint32_t, uint32_t> ord_;
  std::vector<std::pair<uint32_t, uint32_t>> undo_;
  uint32_t next_ = 0;
};

} // namespace detail

inline std::vector<uint64_t> structural_sig(const Lambda& l) {
  std::vector<uint64_t> sig;
  detail::SigBuilder(sig).lambda(l);
  return sig;
}

inline std::vector<uint64_t> structural_sig(const Function& f) {
  std::vector<uint64_t> sig;
  detail::SigBuilder(sig).function(f);
  return sig;
}

// FNV-1a over the signature words.
inline uint64_t structural_hash(const std::vector<uint64_t>& sig) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint64_t w : sig) {
    for (int b = 0; b < 8; ++b) {
      h ^= (w >> (8 * b)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

inline uint64_t structural_hash(const Lambda& l) { return structural_hash(structural_sig(l)); }
inline uint64_t structural_hash(const Function& f) { return structural_hash(structural_sig(f)); }

// ------------------------------------------- loop extent invariance ---------
//
// Decides whether every launch extent inside a for-loop body is invariant
// across iterations — the precondition for the execution planner
// (runtime/plan.hpp) to hoist launch strategy decisions and loop scratch
// buffers out of the iteration. The analysis is a single forward pass over
// the top-level statements: values bound *outside* the loop are invariant by
// definition (the loop re-reads the same bindings every iteration); loop
// params, the index var and anything derived from them are variant. Two
// derived facts are tracked for body-local bindings:
//   - inv_scalar: a rank-0 value provably identical every iteration
//     (pure function of invariant operands, or the length of an
//     invariant-extent array) — legal as an extent;
//   - inv_extent: an array whose *shape* is identical every iteration even
//     though its contents change (e.g. a map over an invariant domain).
// Anything unproven is conservatively variant; any launch/constructor whose
// extent cannot be proven invariant makes the whole loop non-plannable
// (return false). Nested loops and OpIf arms recurse (each arm must prove
// its launches invariant on its own; the if's results only inherit
// invariance facts when the condition is invariant and both arms agree);
// while-loops are rejected here.

namespace detail {

inline bool loop_extents_invariant_body(const Body& b,
                                        std::unordered_set<uint32_t>& variant,
                                        std::unordered_set<uint32_t>& inv_scalar,
                                        std::unordered_set<uint32_t>& inv_extent);

// Carried arrays are assumed shape-stable (inv_extent) and the assumption is
// discharged against the body's results: result j must itself be proven
// shape-invariant relative to iteration entry, which by induction pins every
// iteration's shape to the init's. Scalar carries stay variant *values* (a
// scalar carry used as an extent is exactly the data-dependent case that must
// reject).
inline bool loop_extents_invariant_nested(const OpLoop& o,
                                          const std::unordered_set<uint32_t>& variant,
                                          const std::unordered_set<uint32_t>& inv_scalar,
                                          const std::unordered_set<uint32_t>& inv_extent) {
  std::unordered_set<uint32_t> v2 = variant, s2 = inv_scalar, e2 = inv_extent;
  for (const auto& p : o.params) {
    v2.insert(p.var.id);
    if (p.type.rank > 0) e2.insert(p.var.id);
  }
  if (o.idx.valid()) v2.insert(o.idx.id);
  if (!loop_extents_invariant_body(*o.body, v2, s2, e2)) return false;
  for (size_t j = 0; j < o.body->result.size(); ++j) {
    if (j < o.params.size() && o.params[j].type.rank == 0) continue;
    const Atom& a = o.body->result[j];
    if (!a.is_var()) continue;
    const uint32_t id = a.var().id;
    if (v2.count(id) && !e2.count(id)) return false;
  }
  return true;
}

inline bool loop_extents_invariant_body(const Body& b,
                                        std::unordered_set<uint32_t>& variant,
                                        std::unordered_set<uint32_t>& inv_scalar,
                                        std::unordered_set<uint32_t>& inv_extent) {
  // A body-local binding is "local" iff it appears in `variant`, inv_scalar
  // or inv_extent; outer vars appear in none and are invariant wholesale.
  auto atom_inv = [&](const Atom& a) {
    if (a.is_const()) return true;
    const uint32_t id = a.var().id;
    return !variant.count(id) || inv_scalar.count(id);
  };
  auto var_shape_inv = [&](Var v) {
    return !variant.count(v.id) || inv_extent.count(v.id);
  };
  auto bind = [&](const Stm& st, bool value_inv, bool shape_inv) {
    for (Var v : st.vars) {
      variant.insert(v.id);
      if (value_inv) inv_scalar.insert(v.id);
      if (shape_inv) inv_extent.insert(v.id);
    }
  };

  for (const auto& st : b.stms) {
    bool ok = true;
    std::visit(
        Overload{
            [&](const OpAtom& o) {
              const bool iv = atom_inv(o.a);
              const bool sh = !o.a.is_var() || var_shape_inv(o.a.var());
              bind(st, iv, sh);
            },
            [&](const OpBin& o) { bind(st, atom_inv(o.a) && atom_inv(o.b), false); },
            [&](const OpUn& o) { bind(st, atom_inv(o.a), false); },
            [&](const OpSelect& o) {
              bind(st, atom_inv(o.c) && atom_inv(o.t) && atom_inv(o.f), false);
            },
            [&](const OpLength& o) { bind(st, var_shape_inv(o.arr), false); },
            [&](const OpIndex& o) {
              // Full scalar read, or a slice of a shape-invariant array:
              // the slice's shape is a suffix of the source's.
              bind(st, false, var_shape_inv(o.arr));
            },
            [&](const OpUpdate& o) { bind(st, false, var_shape_inv(o.arr)); },
            [&](const OpUpdAcc&) { bind(st, false, false); },
            [&](const OpIota& o) {
              ok = atom_inv(o.n);
              bind(st, false, true);
            },
            [&](const OpReplicate& o) {
              ok = atom_inv(o.n) &&
                   (!o.v.is_var() || var_shape_inv(o.v.var()));
              bind(st, false, true);
            },
            [&](const OpScratch& o) {
              ok = atom_inv(o.n) && var_shape_inv(o.like);
              bind(st, false, true);
            },
            [&](const OpZerosLike& o) { bind(st, false, var_shape_inv(o.v)); },
            [&](const OpCopy& o) { bind(st, false, var_shape_inv(o.v)); },
            [&](const OpReverse& o) { bind(st, false, var_shape_inv(o.arr)); },
            [&](const OpTranspose& o) { bind(st, false, var_shape_inv(o.arr)); },
            [&](const OpMap& o) {
              for (Var v : o.args) ok = ok && var_shape_inv(v);
              // Outer extent is the (invariant) arg extent; inner extents
              // come from the lambda's own launches over the same frame.
              bind(st, false, ok);
            },
            [&](const OpReduce& o) {
              for (Var v : o.args) ok = ok && var_shape_inv(v);
              bind(st, false, false);
            },
            [&](const OpScan& o) {
              for (Var v : o.args) ok = ok && var_shape_inv(v);
              bind(st, false, ok);
            },
            [&](const OpHist& o) {
              ok = var_shape_inv(o.dest) && var_shape_inv(o.inds) && var_shape_inv(o.vals);
              bind(st, false, ok);
            },
            [&](const OpScatter& o) {
              ok = var_shape_inv(o.dest) && var_shape_inv(o.inds) && var_shape_inv(o.vals);
              bind(st, false, ok);
            },
            [&](const OpWithAcc& o) {
              for (Var v : o.arrs) ok = ok && var_shape_inv(v);
              // Results mirror the accumulated arrays' shapes.
              bind(st, false, ok);
            },
            [&](const OpLoop& o) {
              if (o.while_cond != nullptr) {
                ok = false;
                return;
              }
              ok = atom_inv(o.count) && loop_extents_invariant_nested(o, variant, inv_scalar,
                                                                      inv_extent);
              // Shape-stable carried arrays (verified by the recursion) give
              // shape-invariant results when the inits are shape-invariant.
              bool sh = ok;
              for (const auto& i : o.init) {
                if (i.is_var()) sh = sh && var_shape_inv(i.var());
              }
              bind(st, false, sh);
            },
            [&](const OpIf& o) {
              // Either arm may run on any iteration, so every launch inside
              // each arm must prove invariant extents on its own (against a
              // copy of the current facts — arm-local bindings stay local).
              // The facts each arm proves for its results are captured so
              // the if's own bindings can inherit them below.
              auto arm = [&](const Body& ab, std::vector<bool>* val_inv,
                             std::vector<bool>* shp_inv) {
                std::unordered_set<uint32_t> v2 = variant, s2 = inv_scalar,
                                             e2 = inv_extent;
                if (!loop_extents_invariant_body(ab, v2, s2, e2)) return false;
                for (const Atom& a : ab.result) {
                  bool vi = true, si = true;
                  if (a.is_var()) {
                    const uint32_t id = a.var().id;
                    vi = !v2.count(id) || s2.count(id);
                    si = !v2.count(id) || e2.count(id);
                  }
                  val_inv->push_back(vi);
                  shp_inv->push_back(si);
                }
                return true;
              };
              std::vector<bool> tv, ts, fv, fs;
              ok = arm(*o.tb, &tv, &ts) && arm(*o.fb, &fv, &fs);
              if (!ok) return;
              // A variant condition may take different arms on different
              // iterations, so results are invariant (in value OR shape)
              // only when the condition is invariant and both arms prove
              // the fact; launches inside the arms need no such guard.
              const bool cinv = atom_inv(o.c);
              for (size_t j = 0; j < st.vars.size(); ++j) {
                const Var v = st.vars[j];
                variant.insert(v.id);
                if (cinv && j < tv.size() && j < fv.size() && tv[j] && fv[j]) {
                  inv_scalar.insert(v.id);
                }
                if (cinv && j < ts.size() && j < fs.size() && ts[j] && fs[j]) {
                  inv_extent.insert(v.id);
                }
              }
            },
        },
        st.e);
    if (!ok) return false;
  }
  return true;
}

} // namespace detail

// True when a for-loop's body provably launches with the same extents every
// iteration (see above). While-loops are not analyzable and return false.
inline bool loop_extents_invariant(const OpLoop& o) {
  if (o.while_cond != nullptr) return false;
  std::unordered_set<uint32_t> variant, inv_scalar, inv_extent;
  return detail::loop_extents_invariant_nested(o, variant, inv_scalar, inv_extent);
}

} // namespace npad::ir
