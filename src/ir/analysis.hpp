#pragma once

// Program analyses shared by passes: free variables of bodies/lambdas and a
// program-wide variable-type table.

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "ir/ast.hpp"
#include "ir/visit.hpp"

namespace npad::ir {

namespace detail {

inline void fv_body(const Body& b, std::unordered_set<uint32_t>& bound,
                    std::vector<Var>& out, std::unordered_set<uint32_t>& seen);

inline void fv_use(Var v, const std::unordered_set<uint32_t>& bound, std::vector<Var>& out,
                   std::unordered_set<uint32_t>& seen) {
  if (!v.valid() || bound.count(v.id)) return;
  if (seen.insert(v.id).second) out.push_back(v);
}

inline void fv_exp(const Exp& e, std::unordered_set<uint32_t>& bound, std::vector<Var>& out,
                   std::unordered_set<uint32_t>& seen) {
  for_each_atom(e, [&](const Atom& a) {
    if (a.is_var()) fv_use(a.var(), bound, out, seen);
  });
  for_each_nested(e, [&](const NestedScope& s) {
    std::unordered_set<uint32_t> inner = bound;
    for (Var v : s.bound) inner.insert(v.id);
    fv_body(*s.body, inner, out, seen);
  });
}

inline void fv_body(const Body& b, std::unordered_set<uint32_t>& bound, std::vector<Var>& out,
                    std::unordered_set<uint32_t>& seen) {
  std::unordered_set<uint32_t> local = bound;
  for (const auto& st : b.stms) {
    fv_exp(st.e, local, out, seen);
    for (Var v : st.vars) local.insert(v.id);
  }
  for (const auto& a : b.result) {
    if (a.is_var()) fv_use(a.var(), local, out, seen);
  }
}

} // namespace detail

// Free variables of a body, in first-use order (deterministic).
inline std::vector<Var> free_vars(const Body& b,
                                  const std::vector<Var>& extra_bound = {}) {
  std::vector<Var> out;
  std::unordered_set<uint32_t> bound, seen;
  for (Var v : extra_bound) bound.insert(v.id);
  detail::fv_body(b, bound, out, seen);
  return out;
}

inline std::vector<Var> free_vars(const Lambda& l) {
  std::vector<Var> bound;
  for (const auto& p : l.params) bound.push_back(p.var);
  return free_vars(l.body, bound);
}

// -------------------------------------------------------------- type map ---

// Types of all variables in a program. Shadowed re-bindings must agree in
// type with the original binding (the AD passes only re-bind identical ids
// when re-emitting a forward sweep, so this invariant holds by construction).
class TypeMap {
public:
  void bind(Var v, Type t) {
    if (v.id >= types_.size()) {
      types_.resize(v.id + 1);
      known_.resize(v.id + 1, false);
    }
    types_[v.id] = t;
    known_[v.id] = true;
  }

  bool known(Var v) const { return v.valid() && v.id < known_.size() && known_[v.id]; }

  Type at(Var v) const {
    assert(known(v) && "type queried for unbound variable");
    return types_[v.id];
  }

  Type at(const Atom& a) const {
    if (a.is_const()) return Type{a.cval().t, 0, false};
    return at(a.var());
  }

private:
  std::vector<Type> types_;
  std::vector<bool> known_;
};

namespace detail {

inline void collect_body(const Body& b, TypeMap& tm);

inline void collect_exp(const Exp& e, TypeMap& tm) {
  for_each_nested(e, [&](const NestedScope& s) { collect_body(*s.body, tm); });
  std::visit(Overload{
                 [&](const OpLoop& o) {
                   for (const auto& p : o.params) tm.bind(p.var, p.type);
                   if (o.idx.valid()) tm.bind(o.idx, i64());
                   if (o.while_cond)
                     for (const auto& p : o.while_cond->params) tm.bind(p.var, p.type);
                 },
                 [&](const OpMap& o) {
                   if (o.f)
                     for (const auto& p : o.f->params) tm.bind(p.var, p.type);
                 },
                 [&](const OpReduce& o) {
                   if (o.op)
                     for (const auto& p : o.op->params) tm.bind(p.var, p.type);
                 },
                 [&](const OpScan& o) {
                   if (o.op)
                     for (const auto& p : o.op->params) tm.bind(p.var, p.type);
                 },
                 [&](const OpHist& o) {
                   if (o.op)
                     for (const auto& p : o.op->params) tm.bind(p.var, p.type);
                 },
                 [&](const OpWithAcc& o) {
                   if (o.f)
                     for (const auto& p : o.f->params) tm.bind(p.var, p.type);
                 },
                 [&](const auto&) {},
             },
             e);
}

inline void collect_body(const Body& b, TypeMap& tm) {
  for (const auto& st : b.stms) {
    for (size_t i = 0; i < st.vars.size(); ++i) tm.bind(st.vars[i], st.types[i]);
    collect_exp(st.e, tm);
  }
}

} // namespace detail

inline TypeMap collect_types(const Function& f) {
  TypeMap tm;
  for (const auto& p : f.params) tm.bind(p.var, p.type);
  detail::collect_body(f.body, tm);
  return tm;
}

inline void collect_types_into(const Body& b, TypeMap& tm) { detail::collect_body(b, tm); }

} // namespace npad::ir
