#pragma once

// The npad intermediate representation: a purely functional, A-normal-form
// array language with second-order array combinators (SOACs), sequential
// loops, and accumulators — the language of Section 2.1 of the paper.
//
// Statements bind typed variables; all operands are atoms (variable or
// constant). Nested bodies (if branches, loop bodies, SOAC lambdas) are held
// by shared_ptr<const ...> so program transformations can share untouched
// subtrees. Re-binding a variable id in a nested scope is shadowing, exactly
// as the paper treats re-definitions.

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace npad::ir {

// ---------------------------------------------------------------- types ----

enum class ScalarType : uint8_t { F64, I64, Bool };

// Ranks, not symbolic shapes: the type system tracks element type, rank and
// accumulator-ness; concrete extents live on runtime values (DESIGN.md §3.2).
struct Type {
  ScalarType elem = ScalarType::F64;
  int rank = 0;
  bool is_acc = false;

  bool operator==(const Type&) const = default;
  bool is_scalar() const { return rank == 0 && !is_acc; }
  bool is_float() const { return elem == ScalarType::F64; }
};

inline Type f64() { return Type{ScalarType::F64, 0, false}; }
inline Type i64() { return Type{ScalarType::I64, 0, false}; }
inline Type boolean() { return Type{ScalarType::Bool, 0, false}; }
inline Type arr(ScalarType e, int rank) { return Type{e, rank, false}; }
inline Type arr_f64(int rank) { return Type{ScalarType::F64, rank, false}; }
inline Type acc_of(Type t) { return Type{t.elem, t.rank, true}; }
inline Type elem_of(Type t) {
  assert(t.rank > 0);
  return Type{t.elem, t.rank - 1, false};
}
inline Type lift(Type t) { return Type{t.elem, t.rank + 1, t.is_acc}; }

// ------------------------------------------------------------- vars/atoms --

struct Var {
  uint32_t id = UINT32_MAX;
  bool valid() const { return id != UINT32_MAX; }
  bool operator==(const Var&) const = default;
};

struct ConstVal {
  ScalarType t = ScalarType::F64;
  double f = 0.0;  // payload for F64
  int64_t i = 0;   // payload for I64 and Bool (0/1)

  static ConstVal of_f64(double v) { return {ScalarType::F64, v, 0}; }
  static ConstVal of_i64(int64_t v) { return {ScalarType::I64, 0.0, v}; }
  static ConstVal of_bool(bool v) { return {ScalarType::Bool, 0.0, v ? 1 : 0}; }
  bool operator==(const ConstVal&) const = default;
};

struct Atom {
  std::variant<Var, ConstVal> v;

  Atom() : v(Var{}) {}
  Atom(Var x) : v(x) {}                 // NOLINT(google-explicit-constructor)
  Atom(ConstVal c) : v(c) {}            // NOLINT(google-explicit-constructor)

  bool is_var() const { return std::holds_alternative<Var>(v); }
  bool is_const() const { return std::holds_alternative<ConstVal>(v); }
  Var var() const { return std::get<Var>(v); }
  const ConstVal& cval() const { return std::get<ConstVal>(v); }
  bool operator==(const Atom&) const = default;
};

inline Atom cf64(double v) { return Atom(ConstVal::of_f64(v)); }
inline Atom ci64(int64_t v) { return Atom(ConstVal::of_i64(v)); }
inline Atom cbool(bool v) { return Atom(ConstVal::of_bool(v)); }

// ------------------------------------------------------------ operations ---

enum class BinOp : uint8_t {
  Add, Sub, Mul, Div, Pow, Min, Max,   // arithmetic (F64 or I64)
  Mod,                                 // I64 only
  Eq, Ne, Lt, Le, Gt, Ge,              // comparisons -> Bool
  And, Or                              // Bool
};

enum class UnOp : uint8_t {
  Neg, Exp, Log, Sqrt, Sin, Cos, Tanh, Abs, Sign,
  LGamma, Digamma,
  Not,          // Bool
  ToF64, ToI64  // casts
};

// ------------------------------------------------------------- structure ---

struct Body;
struct Lambda;
using BodyPtr = std::shared_ptr<const Body>;
using LambdaPtr = std::shared_ptr<const Lambda>;

struct Param {
  Var var;
  Type type;
};

// --- scalar / simple statements ---
struct OpAtom { Atom a; };                                    // copy / rename
struct OpBin { BinOp op; Atom a, b; };
struct OpUn { UnOp op; Atom a; };
struct OpSelect { Atom c, t, f; };                            // scalar select

// --- array access ---
struct OpIndex { Var arr; std::vector<Atom> idx; };           // prefix indexing
struct OpUpdate { Var arr; std::vector<Atom> idx; Atom v; };  // in-place write (consumes arr)
struct OpUpdAcc { Var acc; std::vector<Atom> idx; Atom v; };  // acc[idx] += v; returns acc

// --- array construction / shape ---
struct OpIota { Atom n; };                                    // [0..n-1] : i64
struct OpReplicate { Atom n; Atom v; };                       // n copies of v
struct OpZerosLike { Var v; };                                // zeros, same shape as v
struct OpScratch { Atom n; Var like; };                       // uninit [n] ++ shape(like)
struct OpLength { Var arr; };                                 // outer extent : i64
struct OpReverse { Var arr; };
struct OpTranspose { Var arr; };                              // swap dims 0 and 1
struct OpCopy { Var v; };                                     // deep copy

// --- control flow ---
struct OpIf { Atom c; BodyPtr tb, fb; };

// A sequential loop with loop-variant parameters (tail-recursive semantics,
// Section 2.1). When `while_cond` is set the loop is a while-loop over the
// parameters; otherwise it is a for-loop running `count` iterations with the
// iteration index bound to `idx`. Annotations drive the Section 4.3 / 6.2
// transformations.
struct OpLoop {
  std::vector<Param> params;
  std::vector<Atom> init;
  Var idx;                              // valid for for-loops
  Atom count;                           // for-loop trip count (i64)
  LambdaPtr while_cond;                 // params -> Bool (while form)
  BodyPtr body;                         // yields new values of params
  int stripmine = 0;                    // §4.3: strip-mine factor annotation
  bool checkpoint_entry = false;        // §6.2: no-false-deps annotation
  std::optional<Atom> while_bound;      // §6.2: user iteration bound for while

  // Runtime annotation: index into the owning ResolvedProg's activation table
  // (runtime/resolve.hpp). Written once during slot resolution on a privately
  // owned clone; never meaningful on user-built programs.
  mutable uint32_t activation_id = UINT32_MAX;
};

// --- SOACs ---
// Flattening annotation (opt/flatten.cpp): marks a map as a perfectly nested
// *regular* form the runtime may execute collapsed instead of launching the
// inner SOAC once per row:
//   Inner  — map(λrow. map(g, row…)) with scalar-body g: one kernel launch
//            over the fused n·m extent (rank-2 inputs viewed rank-1, outputs
//            written rank-2 in place);
//   SegRed — map(λrow. reduce/redomap(op, ne, row…)): one segmented
//            reduction, parallel over segments, one store per segment.
// The annotation is *semantic for execution strategy* (it changes which
// driver runs and, under parallelism, float grouping — like
// OpLoop::stripmine it participates in the structural signature, unlike the
// stats-only `fused`). ir/patterns.hpp::flatten_form is the single matcher:
// opt/flatten.cpp annotates forms it accepts, ir/typecheck.cpp rejects
// annotations that do not match their map's structure, and the runtime falls
// back to the general nested path when shapes or kernels do not cooperate.
enum class FlatForm : uint8_t { None = 0, Inner = 1, SegRed = 2 };

// map f xs1..xsk: accumulator-typed args are threaded whole (not indexed) and
// accumulator-typed lambda results collapse back to a single accumulator —
// the paper's "implicit conversion between accumulators and arrays of
// accumulators" (§5.4).
struct OpMap {
  LambdaPtr f;
  std::vector<Var> args;
  // Annotation written by opt::fuse_maps: number of producer maps folded into
  // this one (0 for unfused maps). Not part of the structural signature; the
  // runtime adds it to InterpStats::fused_maps per launch. Every pass that
  // rebuilds OpMap must carry it: ir/visit.hpp (Cloner), opt/simplify.cpp,
  // opt/accopt.cpp, opt/loopopt.cpp, opt/fuse.cpp.
  uint32_t fused = 0;
  // Flattening annotation (see FlatForm above). Carried by the same pass
  // list as `fused`, except opt/fuse.cpp drops it to None when it rebuilds
  // the lambda of a fused consumer (the body shape changed; opt/flatten.cpp
  // runs after fusion in the pipeline and re-derives it).
  FlatForm flat = FlatForm::None;
};
// reduce/scan op ne xs1..xsk, optionally in *redomap* form: when `pre` is
// set the element-wise pre-lambda maps the elements of `args` (its params
// match args positionally) and its results feed the fold operator — the
// paper's map-fused reduction, produced by opt::fuse_maps folding producer
// maps into reduce/scan consumers so the intermediate array never exists.
// Invariants (ir/typecheck.cpp): op has 2k params for k fold results; with
// pre, args.size() == pre->params.size() and pre->rets.size() == k;
// without pre, args.size() == k.
// `fused` mirrors OpMap::fused: number of producer maps folded in, not part
// of the structural signature; the runtime adds it to
// InterpStats::fused_reduces / fused_scans per launch. Every pass that
// rebuilds these ops must carry both fields (same list as OpMap::fused).
struct OpReduce {
  LambdaPtr op;
  std::vector<Atom> neutral;
  std::vector<Var> args;
  LambdaPtr pre;      // optional redomap pre-lambda
  uint32_t fused = 0;
};
struct OpScan {
  LambdaPtr op;
  std::vector<Atom> neutral;
  std::vector<Var> args;
  LambdaPtr pre;      // optional redomap pre-lambda
  uint32_t fused = 0;
};
// reduce_by_index dest op ne inds vals (§5.1.2); out-of-range bins ignored.
// Optionally in *histomap* form, mirroring the redomap form of OpReduce:
// when `pre` is set the element-wise pre-lambda maps each element of `vals`
// (one param, elem_of(vals)) and its single result (elem_of(dest)) feeds the
// combine operator — produced by opt::fuse_maps folding a producer map into
// a hist consumer so the mapped intermediate never exists. `fused` mirrors
// OpMap::fused: number of producer maps folded in, not part of the
// structural signature; the runtime adds it to InterpStats::fused_hists per
// launch. Every pass that rebuilds OpHist must carry both fields (same list
// as OpMap::fused).
struct OpHist {
  LambdaPtr op;
  Atom neutral;
  Var dest;
  Var inds;
  Var vals;
  LambdaPtr pre;      // optional histomap pre-lambda
  uint32_t fused = 0;
};
// scatter dest inds vals (§5.3); duplicate indices unsupported (as paper).
struct OpScatter { Var dest; Var inds; Var vals; };
// withacc arrs f: temporarily turns arrs into write-only accumulators (§5.4).
// f receives one acc per array and must return them (plus optional extras).
struct OpWithAcc { std::vector<Var> arrs; LambdaPtr f; };

using Exp = std::variant<
    OpAtom, OpBin, OpUn, OpSelect,
    OpIndex, OpUpdate, OpUpdAcc,
    OpIota, OpReplicate, OpZerosLike, OpScratch, OpLength,
    OpReverse, OpTranspose, OpCopy,
    OpIf, OpLoop,
    OpMap, OpReduce, OpScan, OpHist, OpScatter, OpWithAcc>;

// A statement binds one or more typed variables to the results of one Exp.
struct Stm {
  std::vector<Var> vars;
  std::vector<Type> types;
  Exp e;
};

inline Stm stm1(Var v, Type t, Exp e) { return Stm{{v}, {t}, std::move(e)}; }

struct Body {
  std::vector<Stm> stms;
  std::vector<Atom> result;
};

struct Lambda {
  std::vector<Param> params;
  Body body;
  std::vector<Type> rets;

  // Runtime annotation (see OpLoop::activation_id).
  mutable uint32_t activation_id = UINT32_MAX;
};

struct Function {
  std::string name;
  std::vector<Param> params;
  std::vector<Type> rets;
  Body body;
};

// ---------------------------------------------------------------- module ---

// Owns the variable name table; passes allocate fresh variables through it.
class Module {
public:
  Var fresh(std::string_view base) {
    names_.emplace_back(base);
    return Var{static_cast<uint32_t>(names_.size() - 1)};
  }

  const std::string& name(Var v) const {
    static const std::string invalid = "<invalid>";
    return v.valid() && v.id < names_.size() ? names_[v.id] : invalid;
  }

  size_t num_vars() const { return names_.size(); }

private:
  std::vector<std::string> names_;
};

// A program: one entry function plus the module that owns its names.
struct Prog {
  std::shared_ptr<Module> mod;
  Function fn;
};

// ------------------------------------------------------------ small utils --

inline BodyPtr make_body(Body b) { return std::make_shared<const Body>(std::move(b)); }
inline LambdaPtr make_lambda(Lambda l) { return std::make_shared<const Lambda>(std::move(l)); }

// Number of values an Exp produces is determined by the binding statement;
// these helpers compute result types where derivable (used by the builder).

template <class... Ts>
struct Overload : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overload(Ts...) -> Overload<Ts...>;

} // namespace npad::ir

// Hash support for Var keys in unordered containers.
template <>
struct std::hash<npad::ir::Var> {
  size_t operator()(const npad::ir::Var& v) const noexcept { return std::hash<uint32_t>{}(v.id); }
};
