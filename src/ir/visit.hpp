#pragma once

// Generic traversal and cloning utilities over the IR. Every pass is built on
// these three primitives:
//   for_each_atom    — visit the atoms an Exp uses directly (no nested bodies)
//   for_each_nested  — visit nested bodies / lambdas of an Exp
//   clone            — deep-copy with variable substitution and optional
//                      alpha-renaming of bindings (used to inline lambdas)

#include <functional>
#include <unordered_map>

#include "ir/ast.hpp"

namespace npad::ir {

// ------------------------------------------------------------- traversal ---

template <class FnAtom>
void for_each_atom(const Exp& e, FnAtom&& fn) {
  auto at = [&](const Atom& a) { fn(a); };
  auto av = [&](Var v) { fn(Atom(v)); };
  std::visit(
      Overload{
          [&](const OpAtom& o) { at(o.a); },
          [&](const OpBin& o) { at(o.a); at(o.b); },
          [&](const OpUn& o) { at(o.a); },
          [&](const OpSelect& o) { at(o.c); at(o.t); at(o.f); },
          [&](const OpIndex& o) { av(o.arr); for (auto& i : o.idx) at(i); },
          [&](const OpUpdate& o) { av(o.arr); for (auto& i : o.idx) at(i); at(o.v); },
          [&](const OpUpdAcc& o) { av(o.acc); for (auto& i : o.idx) at(i); at(o.v); },
          [&](const OpIota& o) { at(o.n); },
          [&](const OpReplicate& o) { at(o.n); at(o.v); },
          [&](const OpZerosLike& o) { av(o.v); },
          [&](const OpScratch& o) { at(o.n); av(o.like); },
          [&](const OpLength& o) { av(o.arr); },
          [&](const OpReverse& o) { av(o.arr); },
          [&](const OpTranspose& o) { av(o.arr); },
          [&](const OpCopy& o) { av(o.v); },
          [&](const OpIf& o) { at(o.c); },
          [&](const OpLoop& o) {
            for (auto& i : o.init) at(i);
            if (!o.while_cond) at(o.count);
            if (o.while_bound) at(*o.while_bound);
          },
          [&](const OpMap& o) { for (auto v : o.args) av(v); },
          [&](const OpReduce& o) { for (auto& n : o.neutral) at(n); for (auto v : o.args) av(v); },
          [&](const OpScan& o) { for (auto& n : o.neutral) at(n); for (auto v : o.args) av(v); },
          [&](const OpHist& o) { at(o.neutral); av(o.dest); av(o.inds); av(o.vals); },
          [&](const OpScatter& o) { av(o.dest); av(o.inds); av(o.vals); },
          [&](const OpWithAcc& o) { for (auto v : o.arrs) av(v); },
      },
      e);
}

// Visits nested scopes: fn_body(body, params_bound_in_that_body).
// The bound-variable list lets free-variable analysis subtract bindings.
struct NestedScope {
  const Body* body;
  std::vector<Var> bound;  // params (and loop index) in scope for this body
};

template <class Fn>
void for_each_nested(const Exp& e, Fn&& fn) {
  auto lam = [&](const LambdaPtr& l) {
    if (!l) return;
    NestedScope s{&l->body, {}};
    for (auto& p : l->params) s.bound.push_back(p.var);
    fn(s);
  };
  std::visit(
      Overload{
          [&](const OpIf& o) {
            fn(NestedScope{o.tb.get(), {}});
            fn(NestedScope{o.fb.get(), {}});
          },
          [&](const OpLoop& o) {
            NestedScope s{o.body.get(), {}};
            for (auto& p : o.params) s.bound.push_back(p.var);
            if (o.idx.valid()) s.bound.push_back(o.idx);
            fn(s);
            if (o.while_cond) lam(o.while_cond);
          },
          [&](const OpMap& o) { lam(o.f); },
          [&](const OpReduce& o) { lam(o.op); lam(o.pre); },
          [&](const OpScan& o) { lam(o.op); lam(o.pre); },
          [&](const OpHist& o) { lam(o.op); lam(o.pre); },
          [&](const OpWithAcc& o) { lam(o.f); },
          [&](const auto&) {},
      },
      e);
}

// ---------------------------------------------------------------- clone ----

// Variable substitution map. Array-position uses (e.g. OpIndex::arr) must be
// substituted by variables; scalar atom positions may receive constants.
using Subst = std::unordered_map<uint32_t, Atom>;

class Cloner {
public:
  // If `refresh` is true every binding introduced inside the cloned tree gets
  // a fresh variable (alpha-renaming); required when inlining a lambda body
  // into a scope where its bindings may collide.
  Cloner(Module& m, bool refresh) : mod_(m), refresh_(refresh) {}

  Atom atom(const Atom& a, const Subst& s) const {
    if (a.is_var()) {
      auto it = s.find(a.var().id);
      if (it != s.end()) return it->second;
    }
    return a;
  }

  Var var(Var v, const Subst& s) const {
    auto it = s.find(v.id);
    if (it == s.end()) return v;
    if (!it->second.is_var()) {
      // Copy-propagation (refresh_ == false) may alias a *scalar* var to a
      // constant; a var-only position (OpScratch::like, OpZerosLike, …) can
      // legally use such a var, so decline the substitution — the original
      // binding still exists and stays live through the remaining use.
      // While inlining (refresh_ == true) the substituted binding no longer
      // exists in the output, so a constant here is a caller bug.
      assert(!refresh_ && "array/binding position substituted by constant while inlining");
      return v;
    }
    return it->second.var();
  }

  Var bind(Var v, Subst& s) {
    if (!refresh_) {
      // Shadowing kills any pending substitution of this id AND any
      // substitution *targeting* it: an alias X -> Y recorded outside this
      // scope must not capture a re-binding of Y (AD passes re-install
      // forward sweeps re-using ids, so same-id re-binding is routine).
      // With refresh on, re-bindings get fresh names, so captures are
      // impossible and targets need no scan.
      s.erase(v.id);
      for (auto it = s.begin(); it != s.end();) {
        if (it->second.is_var() && it->second.var() == v) {
          it = s.erase(it);
        } else {
          ++it;
        }
      }
      return v;
    }
    Var nv = mod_.fresh(mod_.name(v));
    s[v.id] = Atom(nv);
    return nv;
  }

  Body body(const Body& b, Subst s) {
    Body out;
    out.stms.reserve(b.stms.size());
    for (const auto& st : b.stms) {
      Exp ce = exp(st.e, s);  // uses see bindings made so far
      Stm ns;
      ns.types = st.types;
      ns.e = std::move(ce);
      ns.vars.reserve(st.vars.size());
      for (Var v : st.vars) ns.vars.push_back(bind(v, s));
      out.stms.push_back(std::move(ns));
    }
    out.result.reserve(b.result.size());
    for (const auto& a : b.result) out.result.push_back(atom(a, s));
    return out;
  }

  Lambda lambda(const Lambda& l, Subst s) {
    Lambda out;
    out.rets = l.rets;
    out.params.reserve(l.params.size());
    for (const auto& p : l.params) out.params.push_back(Param{bind(p.var, s), p.type});
    out.body = body(l.body, std::move(s));
    return out;
  }

  Exp exp(const Exp& e, Subst& s) {
    auto A = [&](const Atom& a) { return atom(a, s); };
    auto V = [&](Var v) { return var(v, s); };
    auto AS = [&](const std::vector<Atom>& as) {
      std::vector<Atom> r;
      r.reserve(as.size());
      for (auto& a : as) r.push_back(A(a));
      return r;
    };
    auto VS = [&](const std::vector<Var>& vs) {
      std::vector<Var> r;
      r.reserve(vs.size());
      for (auto v : vs) r.push_back(V(v));
      return r;
    };
    auto L = [&](const LambdaPtr& l) -> LambdaPtr {
      return l ? make_lambda(lambda(*l, s)) : nullptr;
    };
    auto B = [&](const BodyPtr& b) -> BodyPtr { return make_body(body(*b, s)); };
    return std::visit(
        Overload{
            [&](const OpAtom& o) -> Exp { return OpAtom{A(o.a)}; },
            [&](const OpBin& o) -> Exp { return OpBin{o.op, A(o.a), A(o.b)}; },
            [&](const OpUn& o) -> Exp { return OpUn{o.op, A(o.a)}; },
            [&](const OpSelect& o) -> Exp { return OpSelect{A(o.c), A(o.t), A(o.f)}; },
            [&](const OpIndex& o) -> Exp { return OpIndex{V(o.arr), AS(o.idx)}; },
            [&](const OpUpdate& o) -> Exp { return OpUpdate{V(o.arr), AS(o.idx), A(o.v)}; },
            [&](const OpUpdAcc& o) -> Exp { return OpUpdAcc{V(o.acc), AS(o.idx), A(o.v)}; },
            [&](const OpIota& o) -> Exp { return OpIota{A(o.n)}; },
            [&](const OpReplicate& o) -> Exp { return OpReplicate{A(o.n), A(o.v)}; },
            [&](const OpZerosLike& o) -> Exp { return OpZerosLike{V(o.v)}; },
            [&](const OpScratch& o) -> Exp { return OpScratch{A(o.n), V(o.like)}; },
            [&](const OpLength& o) -> Exp { return OpLength{V(o.arr)}; },
            [&](const OpReverse& o) -> Exp { return OpReverse{V(o.arr)}; },
            [&](const OpTranspose& o) -> Exp { return OpTranspose{V(o.arr)}; },
            [&](const OpCopy& o) -> Exp { return OpCopy{V(o.v)}; },
            [&](const OpIf& o) -> Exp { return OpIf{A(o.c), B(o.tb), B(o.fb)}; },
            [&](const OpLoop& o) -> Exp {
              OpLoop n;
              n.init = AS(o.init);
              if (!o.while_cond) n.count = A(o.count);
              n.while_cond = L(o.while_cond);
              n.stripmine = o.stripmine;
              n.checkpoint_entry = o.checkpoint_entry;
              if (o.while_bound) n.while_bound = A(*o.while_bound);
              Subst inner = s;
              Cloner c2(mod_, refresh_);
              n.params.reserve(o.params.size());
              for (const auto& p : o.params)
                n.params.push_back(Param{c2.bind_in(p.var, inner), p.type});
              if (o.idx.valid()) n.idx = c2.bind_in(o.idx, inner);
              n.body = make_body(c2.body(*o.body, inner));
              return n;
            },
            [&](const OpMap& o) -> Exp { return OpMap{L(o.f), VS(o.args), o.fused, o.flat}; },
            [&](const OpReduce& o) -> Exp {
              return OpReduce{L(o.op), AS(o.neutral), VS(o.args), L(o.pre), o.fused};
            },
            [&](const OpScan& o) -> Exp {
              return OpScan{L(o.op), AS(o.neutral), VS(o.args), L(o.pre), o.fused};
            },
            [&](const OpHist& o) -> Exp {
              return OpHist{L(o.op), A(o.neutral), V(o.dest), V(o.inds), V(o.vals),
                            L(o.pre), o.fused};
            },
            [&](const OpScatter& o) -> Exp { return OpScatter{V(o.dest), V(o.inds), V(o.vals)}; },
            [&](const OpWithAcc& o) -> Exp { return OpWithAcc{VS(o.arrs), L(o.f)}; },
        },
        e);
  }

  Var bind_in(Var v, Subst& s) { return bind(v, s); }

private:
  Module& mod_;
  bool refresh_;
};

// Inlines a lambda application: alpha-renames the body's bindings and
// substitutes parameters by the argument atoms. Returns the statements to
// splice plus the (substituted) result atoms.
inline std::pair<std::vector<Stm>, std::vector<Atom>> inline_lambda(
    Module& m, const Lambda& l, const std::vector<Atom>& args) {
  assert(l.params.size() == args.size());
  Subst s;
  for (size_t i = 0; i < args.size(); ++i) s[l.params[i].var.id] = args[i];
  Cloner c(m, /*refresh=*/true);
  Body b = c.body(l.body, std::move(s));
  return {std::move(b.stms), std::move(b.result)};
}

} // namespace npad::ir
