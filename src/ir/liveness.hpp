#pragma once

// Statement-level liveness for plan-directed memory reuse (runtime/plan.cpp).
//
// For one Body, computes per-statement *release lists*: the variables bound
// by that body's own statements whose last syntactic use — anywhere in the
// remaining statements, including nested bodies/lambdas, and in the body's
// result atoms — is at statement i. After statement i completes, the
// evaluator may drop its environment reference to those variables, making
// sole-ownership (`use_count() == 1`) launch buffers reclaimable by the
// per-thread arena while the plan is still running.
//
// The analysis is deliberately conservative about aliasing:
//   - it never releases a variable that appears in the body's result atoms
//     (it escapes the body);
//   - uses inside nested scopes count as uses at the enclosing statement,
//     even where an inner re-binding shadows the outer variable (shadowing
//     only ever *extends* a computed lifetime, never shortens it);
//   - a rename (`y = x`) releases x at its last use but y still holds the
//     same underlying value, so shared buffers stay alive through aliases —
//     actual buffer reuse remains gated on the runtime's use_count()==1
//     discipline, which sees every alias.
// Variables bound outside the body (params, loop indices, captures) are
// never in a release list: only this body's evaluator frame owns the slots
// being cleared.

#include <vector>

#include "ir/ast.hpp"

namespace npad::ir {

struct BodyLiveness {
  // releases[i]: vars bound by body.stms[0..i] whose last use is at stm i
  // (a var never used after its binding statement is released right there).
  std::vector<std::vector<Var>> releases;
};

BodyLiveness body_liveness(const Body& body);

} // namespace npad::ir
