#pragma once

// IR well-formedness checker: scoping, dtypes, ranks, accumulator linearity
// (accumulators may only be consumed by upd_acc / map threading / scope
// results). Throws ir::TypeError on the first violation.

#include <stdexcept>
#include <string>

#include "ir/ast.hpp"

namespace npad::ir {

struct TypeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void typecheck(const Prog& p);

} // namespace npad::ir
