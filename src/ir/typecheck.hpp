#pragma once

// IR well-formedness checker: scoping, dtypes, ranks, accumulator linearity
// (accumulators may only be consumed by upd_acc / map threading / scope
// results). Throws ir::TypeError — the npad::TypeError from the structured
// error taxonomy (support/error.hpp) — on the first violation.

#include <string>

#include "ir/ast.hpp"
#include "support/error.hpp"

namespace npad::ir {

using TypeError = ::npad::TypeError;

void typecheck(const Prog& p);

} // namespace npad::ir
