#include "ir/print.hpp"

#include <ostream>
#include <sstream>

#include "ir/visit.hpp"

namespace npad::ir {

namespace {

const char* scalar_name(ScalarType t) {
  switch (t) {
    case ScalarType::F64: return "f64";
    case ScalarType::I64: return "i64";
    case ScalarType::Bool: return "bool";
  }
  return "?";
}

const char* binop_name(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Pow: return "**";
    case BinOp::Min: return "min";
    case BinOp::Max: return "max";
    case BinOp::Mod: return "%";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
  }
  return "?";
}

const char* unop_name(UnOp op) {
  switch (op) {
    case UnOp::Neg: return "neg";
    case UnOp::Exp: return "exp";
    case UnOp::Log: return "log";
    case UnOp::Sqrt: return "sqrt";
    case UnOp::Sin: return "sin";
    case UnOp::Cos: return "cos";
    case UnOp::Tanh: return "tanh";
    case UnOp::Abs: return "abs";
    case UnOp::Sign: return "sign";
    case UnOp::LGamma: return "lgamma";
    case UnOp::Digamma: return "digamma";
    case UnOp::Not: return "!";
    case UnOp::ToF64: return "f64";
    case UnOp::ToI64: return "i64";
  }
  return "?";
}

std::string ind(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

class Printer {
public:
  Printer(std::ostream& os, const Module& m) : os_(os), m_(m) {}

  void atom(const Atom& a) {
    if (a.is_var()) {
      os_ << m_.name(a.var()) << "_" << a.var().id;
      return;
    }
    const ConstVal& c = a.cval();
    switch (c.t) {
      case ScalarType::F64: os_ << c.f; break;
      case ScalarType::I64: os_ << c.i << "i"; break;
      case ScalarType::Bool: os_ << (c.i ? "true" : "false"); break;
    }
  }

  void atoms(const std::vector<Atom>& as) {
    os_ << "(";
    for (size_t i = 0; i < as.size(); ++i) {
      if (i) os_ << ", ";
      atom(as[i]);
    }
    os_ << ")";
  }

  void vars(const std::vector<Var>& vs) {
    os_ << "(";
    for (size_t i = 0; i < vs.size(); ++i) {
      if (i) os_ << ", ";
      atom(Atom(vs[i]));
    }
    os_ << ")";
  }

  void lambda(const Lambda& l, int d) {
    os_ << "(\\";
    for (size_t i = 0; i < l.params.size(); ++i) {
      if (i) os_ << " ";
      atom(Atom(l.params[i].var));
      os_ << ":" << to_string(l.params[i].type);
    }
    os_ << " ->\n";
    body(l.body, d + 1);
    os_ << ind(d) << ")";
  }

  void exp(const Exp& e, int d) {
    std::visit(
        Overload{
            [&](const OpAtom& o) { atom(o.a); },
            [&](const OpBin& o) { atom(o.a); os_ << " " << binop_name(o.op) << " "; atom(o.b); },
            [&](const OpUn& o) { os_ << unop_name(o.op) << " "; atom(o.a); },
            [&](const OpSelect& o) {
              os_ << "select ";
              atom(o.c); os_ << " "; atom(o.t); os_ << " "; atom(o.f);
            },
            [&](const OpIndex& o) {
              atom(Atom(o.arr));
              os_ << "[";
              for (size_t i = 0; i < o.idx.size(); ++i) {
                if (i) os_ << ", ";
                atom(o.idx[i]);
              }
              os_ << "]";
            },
            [&](const OpUpdate& o) {
              atom(Atom(o.arr));
              os_ << " with [";
              for (size_t i = 0; i < o.idx.size(); ++i) {
                if (i) os_ << ", ";
                atom(o.idx[i]);
              }
              os_ << "] <- ";
              atom(o.v);
            },
            [&](const OpUpdAcc& o) {
              os_ << "upd_acc ";
              atom(Atom(o.acc));
              os_ << " [";
              for (size_t i = 0; i < o.idx.size(); ++i) {
                if (i) os_ << ", ";
                atom(o.idx[i]);
              }
              os_ << "] += ";
              atom(o.v);
            },
            [&](const OpIota& o) { os_ << "iota "; atom(o.n); },
            [&](const OpReplicate& o) { os_ << "replicate "; atom(o.n); os_ << " "; atom(o.v); },
            [&](const OpZerosLike& o) { os_ << "zeros_like "; atom(Atom(o.v)); },
            [&](const OpScratch& o) {
              os_ << "scratch "; atom(o.n); os_ << " like "; atom(Atom(o.like));
            },
            [&](const OpLength& o) { os_ << "length "; atom(Atom(o.arr)); },
            [&](const OpReverse& o) { os_ << "reverse "; atom(Atom(o.arr)); },
            [&](const OpTranspose& o) { os_ << "transpose "; atom(Atom(o.arr)); },
            [&](const OpCopy& o) { os_ << "copy "; atom(Atom(o.v)); },
            [&](const OpIf& o) {
              os_ << "if ";
              atom(o.c);
              os_ << " then\n";
              body(*o.tb, d + 1);
              os_ << ind(d) << "else\n";
              body(*o.fb, d + 1);
              os_ << ind(d) << "fi";
            },
            [&](const OpLoop& o) {
              os_ << "loop (";
              for (size_t i = 0; i < o.params.size(); ++i) {
                if (i) os_ << ", ";
                atom(Atom(o.params[i].var));
              }
              os_ << ") = ";
              atoms(o.init);
              if (o.while_cond) {
                os_ << " while\n";
                lambda(*o.while_cond, d + 1);
                os_ << " do\n";
              } else {
                os_ << " for ";
                atom(Atom(o.idx));
                os_ << " < ";
                atom(o.count);
                os_ << " do\n";
              }
              body(*o.body, d + 1);
              os_ << ind(d) << "pool";
              if (o.stripmine > 0) os_ << " @stripmine(" << o.stripmine << ")";
              if (o.checkpoint_entry) os_ << " @checkpoint_entry";
            },
            [&](const OpMap& o) {
              os_ << "map ";
              lambda(*o.f, d);
              os_ << " ";
              vars(o.args);
              if (o.flat == FlatForm::Inner) os_ << " @flat";
              if (o.flat == FlatForm::SegRed) os_ << " @segred";
            },
            [&](const OpReduce& o) {
              os_ << (o.pre ? "redomap " : "reduce ");
              lambda(*o.op, d);
              if (o.pre) {
                os_ << " ";
                lambda(*o.pre, d);
              }
              os_ << " ";
              atoms(o.neutral);
              os_ << " ";
              vars(o.args);
              if (o.fused > 0) os_ << " @fused(" << o.fused << ")";
            },
            [&](const OpScan& o) {
              os_ << (o.pre ? "scanomap " : "scan ");
              lambda(*o.op, d);
              if (o.pre) {
                os_ << " ";
                lambda(*o.pre, d);
              }
              os_ << " ";
              atoms(o.neutral);
              os_ << " ";
              vars(o.args);
              if (o.fused > 0) os_ << " @fused(" << o.fused << ")";
            },
            [&](const OpHist& o) {
              os_ << (o.pre ? "histomap " : "reduce_by_index ");
              atom(Atom(o.dest));
              os_ << " ";
              lambda(*o.op, d);
              if (o.pre) {
                os_ << " ";
                lambda(*o.pre, d);
              }
              os_ << " ";
              atom(o.neutral);
              os_ << " ";
              atom(Atom(o.inds));
              os_ << " ";
              atom(Atom(o.vals));
              if (o.fused > 0) os_ << " @fused(" << o.fused << ")";
            },
            [&](const OpScatter& o) {
              os_ << "scatter ";
              atom(Atom(o.dest));
              os_ << " ";
              atom(Atom(o.inds));
              os_ << " ";
              atom(Atom(o.vals));
            },
            [&](const OpWithAcc& o) {
              os_ << "withacc ";
              vars(o.arrs);
              os_ << " ";
              lambda(*o.f, d);
            },
        },
        e);
  }

  void body(const Body& b, int d) {
    for (const auto& s : b.stms) {
      os_ << ind(d) << "let ";
      for (size_t i = 0; i < s.vars.size(); ++i) {
        if (i) os_ << ", ";
        atom(Atom(s.vars[i]));
        os_ << ": " << to_string(s.types[i]);
      }
      os_ << " = ";
      exp(s.e, d);
      os_ << "\n";
    }
    os_ << ind(d) << "in ";
    atoms(b.result);
    os_ << "\n";
  }

private:
  std::ostream& os_;
  const Module& m_;
};

} // namespace

std::string to_string(const Type& t) {
  std::string s = scalar_name(t.elem);
  for (int i = 0; i < t.rank; ++i) s = "[]" + s;
  if (t.is_acc) s = "acc(" + s + ")";
  return s;
}

std::string to_string(const Module& m, const Atom& a) {
  std::ostringstream os;
  Printer(os, m).atom(a);
  return os.str();
}

void print_body(std::ostream& os, const Module& m, const Body& b, int indent) {
  Printer(os, m).body(b, indent);
}

void print_prog(std::ostream& os, const Prog& p) {
  os << "fn " << p.fn.name << "(";
  for (size_t i = 0; i < p.fn.params.size(); ++i) {
    if (i) os << ", ";
    os << p.mod->name(p.fn.params[i].var) << "_" << p.fn.params[i].var.id << ": "
       << to_string(p.fn.params[i].type);
  }
  os << ") -> (";
  for (size_t i = 0; i < p.fn.rets.size(); ++i) {
    if (i) os << ", ";
    os << to_string(p.fn.rets[i]);
  }
  os << ") {\n";
  print_body(os, *p.mod, p.fn.body, 1);
  os << "}\n";
}

std::string to_string(const Prog& p) {
  std::ostringstream os;
  print_prog(os, p);
  return os.str();
}

size_t count_stms(const Body& b) {
  size_t n = b.stms.size();
  for (const auto& s : b.stms) {
    for_each_nested(s.e, [&](const NestedScope& ns) { n += count_stms(*ns.body); });
  }
  return n;
}

} // namespace npad::ir
