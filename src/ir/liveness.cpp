#include "ir/liveness.hpp"

#include <cstddef>
#include <unordered_map>
#include <unordered_set>

#include "ir/visit.hpp"

namespace npad::ir {

namespace {

// Visits every variable an Exp uses, recursing into nested bodies and
// lambdas. Shadowing inside nested scopes is ignored on purpose: counting a
// shadowed use against the outer variable only lengthens its computed
// lifetime (see header).
template <class Fn>
void for_each_use_deep(const Exp& e, Fn&& fn);

template <class Fn>
void body_uses_deep(const Body& b, Fn&& fn) {
  for (const Stm& st : b.stms) for_each_use_deep(st.e, fn);
  for (const Atom& a : b.result) {
    if (a.is_var()) fn(a.var());
  }
}

template <class Fn>
void for_each_use_deep(const Exp& e, Fn&& fn) {
  for_each_atom(e, [&](const Atom& a) {
    if (a.is_var()) fn(a.var());
  });
  for_each_nested(e, [&](const NestedScope& s) { body_uses_deep(*s.body, fn); });
}

} // namespace

BodyLiveness body_liveness(const Body& body) {
  const size_t n = body.stms.size();
  BodyLiveness lv;
  lv.releases.resize(n);

  // Last use (statement index) per variable bound by this body. A binding
  // with no later use releases at its own statement.
  std::unordered_map<uint32_t, size_t> last_use;
  for (size_t i = 0; i < n; ++i) {
    const Stm& st = body.stms[i];
    for_each_use_deep(st.e, [&](Var v) {
      auto it = last_use.find(v.id);
      if (it != last_use.end()) it->second = i;
    });
    // Bindings register after uses: `x = f(x)`-style re-binding (shadowing
    // within one body) starts a fresh lifetime at i.
    for (Var v : st.vars) last_use[v.id] = i;
  }

  // Escapees — result atoms — are never released.
  std::unordered_set<uint32_t> escaped;
  for (const Atom& a : body.result) {
    if (a.is_var()) escaped.insert(a.var().id);
  }

  for (const auto& [id, i] : last_use) {
    if (escaped.count(id)) continue;
    lv.releases[i].push_back(Var{id});
  }
  return lv;
}

} // namespace npad::ir
