#include "ir/typecheck.hpp"

#include <sstream>
#include <unordered_map>

#include "ir/patterns.hpp"
#include "ir/print.hpp"
#include "ir/visit.hpp"

namespace npad::ir {

namespace {

class Checker {
public:
  explicit Checker(const Module& m) : mod_(m) {}

  using Scope = std::unordered_map<uint32_t, Type>;

  [[noreturn]] void fail(const std::string& msg) const { throw TypeError("typecheck: " + msg); }

  Type at(const Scope& sc, Var v) const {
    auto it = sc.find(v.id);
    if (it == sc.end()) fail("variable not in scope: " + mod_.name(v) + "_" + std::to_string(v.id));
    return it->second;
  }

  Type at(const Scope& sc, const Atom& a) const {
    if (a.is_const()) return Type{a.cval().t, 0, false};
    return at(sc, a.var());
  }

  void expect(bool cond, const std::string& msg) const {
    if (!cond) fail(msg);
  }

  void expect_scalar(const Scope& sc, const Atom& a, ScalarType st, const char* what) const {
    Type t = at(sc, a);
    expect(t.rank == 0 && !t.is_acc && t.elem == st, std::string(what) + ": wrong scalar type");
  }

  std::vector<Type> exp_types(const Scope& sc, const Exp& e) {
    return std::visit(
        Overload{
            [&](const OpAtom& o) -> std::vector<Type> { return {at(sc, o.a)}; },
            [&](const OpBin& o) -> std::vector<Type> {
              Type ta = at(sc, o.a), tb = at(sc, o.b);
              expect(ta.rank == 0 && tb.rank == 0, "binop on non-scalars");
              expect(ta.elem == tb.elem, "binop operand dtype mismatch");
              switch (o.op) {
                case BinOp::Eq: case BinOp::Ne: case BinOp::Lt: case BinOp::Le:
                case BinOp::Gt: case BinOp::Ge:
                  return {boolean()};
                case BinOp::And: case BinOp::Or:
                  expect(ta.elem == ScalarType::Bool, "logic op on non-bool");
                  return {boolean()};
                case BinOp::Mod:
                  expect(ta.elem == ScalarType::I64, "mod on non-int");
                  return {ta};
                default:
                  expect(ta.elem != ScalarType::Bool, "arith on bool");
                  return {ta};
              }
            },
            [&](const OpUn& o) -> std::vector<Type> {
              Type ta = at(sc, o.a);
              expect(ta.rank == 0, "unop on non-scalar");
              switch (o.op) {
                case UnOp::Not:
                  expect(ta.elem == ScalarType::Bool, "not on non-bool");
                  return {boolean()};
                case UnOp::ToF64: return {f64()};
                case UnOp::ToI64: return {i64()};
                case UnOp::Neg: case UnOp::Abs: case UnOp::Sign:
                  return {ta};
                default:
                  expect(ta.elem == ScalarType::F64, "transcendental on non-f64");
                  return {f64()};
              }
            },
            [&](const OpSelect& o) -> std::vector<Type> {
              expect_scalar(sc, o.c, ScalarType::Bool, "select cond");
              Type tt = at(sc, o.t), tf = at(sc, o.f);
              expect(tt == tf, "select branches type mismatch");
              return {tt};
            },
            [&](const OpIndex& o) -> std::vector<Type> {
              Type ta = at(sc, o.arr);
              expect(!ta.is_acc, "index into accumulator");
              expect(static_cast<int>(o.idx.size()) <= ta.rank, "index rank overflow");
              for (const auto& i : o.idx) expect_scalar(sc, i, ScalarType::I64, "index");
              return {Type{ta.elem, ta.rank - static_cast<int>(o.idx.size()), false}};
            },
            [&](const OpUpdate& o) -> std::vector<Type> {
              Type ta = at(sc, o.arr);
              expect(!ta.is_acc, "update on accumulator");
              for (const auto& i : o.idx) expect_scalar(sc, i, ScalarType::I64, "update index");
              Type tv = at(sc, o.v);
              expect(tv.elem == ta.elem &&
                         tv.rank == ta.rank - static_cast<int>(o.idx.size()),
                     "update value shape mismatch");
              return {ta};
            },
            [&](const OpUpdAcc& o) -> std::vector<Type> {
              Type ta = at(sc, o.acc);
              expect(ta.is_acc, "upd_acc on non-accumulator");
              for (const auto& i : o.idx) expect_scalar(sc, i, ScalarType::I64, "upd_acc index");
              Type tv = at(sc, o.v);
              expect(tv.elem == ta.elem &&
                         tv.rank == ta.rank - static_cast<int>(o.idx.size()),
                     "upd_acc value shape mismatch");
              return {ta};
            },
            [&](const OpIota& o) -> std::vector<Type> {
              expect_scalar(sc, o.n, ScalarType::I64, "iota count");
              return {arr(ScalarType::I64, 1)};
            },
            [&](const OpReplicate& o) -> std::vector<Type> {
              expect_scalar(sc, o.n, ScalarType::I64, "replicate count");
              Type tv = at(sc, o.v);
              expect(!tv.is_acc, "replicate of accumulator");
              return {lift(tv)};
            },
            [&](const OpZerosLike& o) -> std::vector<Type> {
              Type t = at(sc, o.v);
              return {Type{t.elem, t.rank, false}};
            },
            [&](const OpScratch& o) -> std::vector<Type> {
              expect_scalar(sc, o.n, ScalarType::I64, "scratch count");
              return {lift(at(sc, o.like))};
            },
            [&](const OpLength& o) -> std::vector<Type> {
              expect(at(sc, o.arr).rank >= 1, "length of scalar");
              return {i64()};
            },
            [&](const OpReverse& o) -> std::vector<Type> {
              Type t = at(sc, o.arr);
              expect(t.rank >= 1 && !t.is_acc, "reverse of non-array");
              return {t};
            },
            [&](const OpTranspose& o) -> std::vector<Type> {
              Type t = at(sc, o.arr);
              expect(t.rank >= 2 && !t.is_acc, "transpose needs rank >= 2");
              return {t};
            },
            [&](const OpCopy& o) -> std::vector<Type> {
              Type t = at(sc, o.v);
              expect(!t.is_acc, "copy of accumulator");
              return {t};
            },
            [&](const OpIf& o) -> std::vector<Type> {
              expect_scalar(sc, o.c, ScalarType::Bool, "if cond");
              auto tt = body_types(sc, *o.tb);
              auto ft = body_types(sc, *o.fb);
              expect(tt == ft, "if branch result types differ");
              return tt;
            },
            [&](const OpLoop& o) -> std::vector<Type> {
              expect(o.params.size() == o.init.size(), "loop arity mismatch");
              Scope inner = sc;
              std::vector<Type> rets;
              for (size_t i = 0; i < o.params.size(); ++i) {
                expect(at(sc, o.init[i]) == o.params[i].type, "loop init type mismatch");
                inner[o.params[i].var.id] = o.params[i].type;
                rets.push_back(o.params[i].type);
              }
              if (o.while_cond) {
                Scope csc = sc;
                expect(o.while_cond->params.size() == o.params.size(),
                       "while cond arity mismatch");
                for (size_t i = 0; i < o.params.size(); ++i)
                  csc[o.while_cond->params[i].var.id] = o.params[i].type;
                auto ct = body_types(csc, o.while_cond->body);
                expect(ct.size() == 1 && ct[0] == boolean(), "while cond must yield bool");
              } else {
                expect_scalar(sc, o.count, ScalarType::I64, "loop count");
                inner[o.idx.id] = i64();
              }
              auto bt = body_types(inner, *o.body);
              expect(bt == rets, "loop body result types mismatch params");
              return rets;
            },
            [&](const OpMap& o) -> std::vector<Type> {
              expect(o.f && o.f->params.size() == o.args.size(), "map arity mismatch");
              Scope inner = sc;
              bool has_arr = false;
              for (size_t i = 0; i < o.args.size(); ++i) {
                Type ta = at(sc, o.args[i]);
                Type pt = o.f->params[i].type;
                if (ta.is_acc) {
                  expect(pt == ta, "map acc param type mismatch");
                } else {
                  expect(ta.rank >= 1, "map over scalar");
                  expect(pt == elem_of(ta), "map param type mismatch");
                  has_arr = true;
                }
                inner[o.f->params[i].var.id] = pt;
              }
              expect(has_arr, "map needs at least one array argument");
              // A flattening annotation must match the structure it claims:
              // a stale @flat/@segred after a pass reshaped the lambda would
              // otherwise silently fall back (or worse, mis-execute).
              expect(o.flat == FlatForm::None || flatten_form(o) == o.flat,
                     "flat annotation does not match map structure");
              auto bt = body_types(inner, o.f->body);
              std::vector<Type> rets;
              for (auto& t : bt) rets.push_back(t.is_acc ? t : lift(t));
              return rets;
            },
            [&](const OpReduce& o) -> std::vector<Type> {
              return red_scan(sc, o.op, o.pre, o.neutral, o.args, false);
            },
            [&](const OpScan& o) -> std::vector<Type> {
              return red_scan(sc, o.op, o.pre, o.neutral, o.args, true);
            },
            [&](const OpHist& o) -> std::vector<Type> {
              Type td = at(sc, o.dest), ti = at(sc, o.inds), tv = at(sc, o.vals);
              expect(td.rank >= 1 && !td.is_acc, "hist dest must be array");
              expect(ti.rank == 1 && ti.elem == ScalarType::I64, "hist inds must be []i64");
              expect(o.op && o.op->params.size() == 2, "hist op must be binary");
              Type et = elem_of(td);
              if (o.pre) {
                // Histomap form: pre maps each element of vals to the
                // combine operator's element side, so vals need not match
                // the destination's type.
                expect(tv.rank >= 1 && !tv.is_acc, "hist vals must be array");
                expect(o.pre->params.size() == 1, "histomap pre must be unary");
                expect(o.pre->params[0].type == elem_of(tv),
                       "histomap pre param type mismatch");
                Scope psc = sc;
                psc[o.pre->params[0].var.id] = o.pre->params[0].type;
                auto pt = body_types(psc, o.pre->body);
                expect(pt.size() == 1 && pt[0] == et, "histomap pre result type mismatch");
              } else {
                expect(tv.rank == td.rank && tv.elem == td.elem, "hist vals type mismatch");
              }
              expect(o.op->params[0].type == et && o.op->params[1].type == et,
                     "hist op param type mismatch");
              Scope inner = sc;
              for (auto& p : o.op->params) inner[p.var.id] = p.type;
              auto bt = body_types(inner, o.op->body);
              expect(bt.size() == 1 && bt[0] == et, "hist op result type mismatch");
              expect(at(sc, o.neutral) == et || et.rank > 0, "hist neutral type mismatch");
              return {td};
            },
            [&](const OpScatter& o) -> std::vector<Type> {
              Type td = at(sc, o.dest), ti = at(sc, o.inds), tv = at(sc, o.vals);
              expect(td.rank >= 1 && !td.is_acc, "scatter dest must be array");
              expect(ti.rank == 1 && ti.elem == ScalarType::I64, "scatter inds must be []i64");
              expect(tv.rank == td.rank && tv.elem == td.elem, "scatter vals type mismatch");
              return {td};
            },
            [&](const OpWithAcc& o) -> std::vector<Type> {
              expect(o.f && o.f->params.size() == o.arrs.size(), "withacc arity mismatch");
              Scope inner = sc;
              for (size_t i = 0; i < o.arrs.size(); ++i) {
                Type ta = at(sc, o.arrs[i]);
                expect(!ta.is_acc, "withacc over accumulator");
                expect(o.f->params[i].type == acc_of(ta), "withacc param must be acc");
                inner[o.f->params[i].var.id] = acc_of(ta);
              }
              auto bt = body_types(inner, o.f->body);
              expect(bt.size() >= o.arrs.size(), "withacc must return its accumulators");
              std::vector<Type> rets;
              for (size_t i = 0; i < bt.size(); ++i) {
                if (i < o.arrs.size()) {
                  expect(bt[i].is_acc, "withacc result must start with accumulators");
                  rets.push_back(Type{bt[i].elem, bt[i].rank, false});
                } else {
                  rets.push_back(bt[i]);
                }
              }
              return rets;
            },
        },
        e);
  }

  // Plain form: k args feed a 2k-ary fold directly. Redomap form (`pre`
  // set): args match pre's params element-wise and pre's k' results feed a
  // 2k'-ary fold — the fold element types come from pre's return types, not
  // from the args.
  std::vector<Type> red_scan(const Scope& sc, const LambdaPtr& op, const LambdaPtr& pre,
                             const std::vector<Atom>& neutral, const std::vector<Var>& args,
                             bool is_scan) {
    std::vector<Type> elems;  // fold element types (= pre rets or arg elems)
    if (pre) {
      expect(pre->params.size() == args.size(), "redomap pre arity mismatch");
      Scope psc = sc;
      for (size_t i = 0; i < args.size(); ++i) {
        Type ta = at(sc, args[i]);
        expect(ta.rank >= 1 && !ta.is_acc, "reduce/scan arg must be array");
        expect(pre->params[i].type == elem_of(ta), "redomap pre param type mismatch");
        psc[pre->params[i].var.id] = pre->params[i].type;
      }
      elems = body_types(psc, pre->body);
      for (const auto& t : elems) expect(!t.is_acc, "redomap pre must not yield accumulators");
    } else {
      for (size_t i = 0; i < args.size(); ++i) {
        Type ta = at(sc, args[i]);
        expect(ta.rank >= 1 && !ta.is_acc, "reduce/scan arg must be array");
        elems.push_back(elem_of(ta));
      }
    }
    const size_t k = elems.size();
    expect(op && op->params.size() == 2 * k, "reduce/scan op arity must be 2k");
    expect(neutral.size() == k, "reduce/scan neutral arity mismatch");
    Scope inner = sc;
    for (size_t i = 0; i < k; ++i) {
      Type et = elems[i];
      expect(op->params[i].type == et && op->params[k + i].type == et,
             "reduce/scan op param type mismatch");
      expect(at(sc, neutral[i]) == et, "reduce/scan neutral type mismatch");
      inner[op->params[i].var.id] = et;
      inner[op->params[k + i].var.id] = et;
    }
    auto bt = body_types(inner, op->body);
    expect(bt.size() == k, "reduce/scan op must return k values");
    std::vector<Type> rets;
    for (size_t i = 0; i < k; ++i) {
      expect(bt[i] == elems[i], "reduce/scan op result type mismatch");
      rets.push_back(is_scan ? lift(bt[i]) : bt[i]);
    }
    return rets;
  }

  std::vector<Type> body_types(Scope sc, const Body& b) {
    for (const auto& s : b.stms) {
      auto ts = exp_types(sc, s.e);
      expect(ts.size() == s.vars.size(), "statement arity mismatch");
      for (size_t i = 0; i < ts.size(); ++i) {
        expect(ts[i] == s.types[i], "statement declared type mismatch for " +
                                        mod_.name(s.vars[i]) + "_" + std::to_string(s.vars[i].id) +
                                        ": declared " + to_string(s.types[i]) + " vs computed " +
                                        to_string(ts[i]));
        sc[s.vars[i].id] = ts[i];
      }
    }
    std::vector<Type> rts;
    for (const auto& a : b.result) rts.push_back(at(sc, a));
    return rts;
  }

private:
  const Module& mod_;
};

} // namespace

void typecheck(const Prog& p) {
  Checker c(*p.mod);
  Checker::Scope sc;
  for (const auto& pr : p.fn.params) sc[pr.var.id] = pr.type;
  auto rts = c.body_types(sc, p.fn.body);
  if (rts != p.fn.rets) c.fail("function result types mismatch declaration");
}

} // namespace npad::ir
