#pragma once

// Human-readable pretty printer for the IR; used by examples (the paper's
// Figures 1/2 reproduced as printed transforms), debugging and golden tests.

#include <iosfwd>
#include <string>

#include "ir/ast.hpp"

namespace npad::ir {

std::string to_string(const Type& t);
std::string to_string(const Module& m, const Atom& a);
void print_body(std::ostream& os, const Module& m, const Body& b, int indent);
void print_prog(std::ostream& os, const Prog& p);
std::string to_string(const Prog& p);

// Counts statements recursively (including nested bodies); used by the
// redundant-execution property tests (Fig. 2: DCE leaves no re-execution).
size_t count_stms(const Body& b);

} // namespace npad::ir
