#pragma once

// Fluent construction API for npad IR. A Builder accumulates the statements
// of one body; nested scopes (if branches, loop bodies, SOAC lambdas) are
// built by callbacks receiving a child Builder. Result types are inferred.
//
//   ProgBuilder pb("dot");
//   Var xs = pb.param("xs", arr_f64(1)), ys = pb.param("ys", arr_f64(1));
//   Builder& b = pb.body();
//   Var prods = b.map1(b.lam({f64(), f64()}, [](Builder& c, auto& p) {
//     return std::vector<Atom>{c.mul(p[0], p[1])};
//   }), {xs, ys});
//   Var s = b.reduce1(b.add_op(), cf64(0.0), {prods});
//   Prog p = pb.finish({s});

#include <functional>
#include <string_view>
#include <utility>

#include "ir/analysis.hpp"
#include "ir/ast.hpp"

namespace npad::ir {

class Builder {
public:
  Builder(Module& m, TypeMap& tm) : mod_(&m), tm_(&tm) {}

  Module& module() { return *mod_; }
  TypeMap& types() { return *tm_; }
  Type type_of(const Atom& a) const { return tm_->at(a); }

  // ----------------------------------------------------------- emission ----
  Var emit(Exp e, Type t, std::string_view nm = "t") {
    Var v = mod_->fresh(nm);
    tm_->bind(v, t);
    stms_.push_back(stm1(v, t, std::move(e)));
    return v;
  }

  std::vector<Var> emit_multi(Exp e, const std::vector<Type>& ts, std::string_view nm = "t") {
    Stm s;
    s.e = std::move(e);
    s.types = ts;
    for (const auto& t : ts) {
      Var v = mod_->fresh(nm);
      tm_->bind(v, t);
      s.vars.push_back(v);
    }
    stms_.push_back(std::move(s));
    return stms_.back().vars;
  }

  void push(Stm s) {
    for (size_t i = 0; i < s.vars.size(); ++i) tm_->bind(s.vars[i], s.types[i]);
    stms_.push_back(std::move(s));
  }

  void splice(std::vector<Stm> stms) {
    for (auto& s : stms) push(std::move(s));
  }

  std::vector<Stm> take_stms() { return std::move(stms_); }

  // Result variables of the most recently emitted statement.
  const std::vector<Var>& last_vars() const {
    assert(!stms_.empty());
    return stms_.back().vars;
  }

  // ------------------------------------------------------------ scalars ----
  Var bin(BinOp op, Atom a, Atom b, std::string_view nm = "t") {
    Type t = result_type(op, a, b);
    return emit(OpBin{op, a, b}, t, nm);
  }

  Var add(Atom a, Atom b) { return bin(BinOp::Add, a, b, "add"); }
  Var sub(Atom a, Atom b) { return bin(BinOp::Sub, a, b, "sub"); }
  Var mul(Atom a, Atom b) { return bin(BinOp::Mul, a, b, "mul"); }
  Var div(Atom a, Atom b) { return bin(BinOp::Div, a, b, "div"); }
  Var pow(Atom a, Atom b) { return bin(BinOp::Pow, a, b, "pow"); }
  Var min(Atom a, Atom b) { return bin(BinOp::Min, a, b, "min"); }
  Var max(Atom a, Atom b) { return bin(BinOp::Max, a, b, "max"); }
  Var mod(Atom a, Atom b) { return bin(BinOp::Mod, a, b, "mod"); }
  Var eq(Atom a, Atom b) { return bin(BinOp::Eq, a, b, "eq"); }
  Var ne(Atom a, Atom b) { return bin(BinOp::Ne, a, b, "ne"); }
  Var lt(Atom a, Atom b) { return bin(BinOp::Lt, a, b, "lt"); }
  Var le(Atom a, Atom b) { return bin(BinOp::Le, a, b, "le"); }
  Var gt(Atom a, Atom b) { return bin(BinOp::Gt, a, b, "gt"); }
  Var ge(Atom a, Atom b) { return bin(BinOp::Ge, a, b, "ge"); }
  Var logical_and(Atom a, Atom b) { return bin(BinOp::And, a, b, "and"); }
  Var logical_or(Atom a, Atom b) { return bin(BinOp::Or, a, b, "or"); }

  Var un(UnOp op, Atom a, std::string_view nm = "t") {
    Type t = tm_->at(a);
    if (op == UnOp::ToF64) t = f64();
    if (op == UnOp::ToI64) t = i64();
    if (op == UnOp::Not) t = boolean();
    return emit(OpUn{op, a}, t, nm);
  }

  Var neg(Atom a) { return un(UnOp::Neg, a, "neg"); }
  Var exp(Atom a) { return un(UnOp::Exp, a, "exp"); }
  Var log(Atom a) { return un(UnOp::Log, a, "log"); }
  Var sqrt(Atom a) { return un(UnOp::Sqrt, a, "sqrt"); }
  Var sin(Atom a) { return un(UnOp::Sin, a, "sin"); }
  Var cos(Atom a) { return un(UnOp::Cos, a, "cos"); }
  Var tanh(Atom a) { return un(UnOp::Tanh, a, "tanh"); }
  Var abs(Atom a) { return un(UnOp::Abs, a, "abs"); }
  Var lgamma(Atom a) { return un(UnOp::LGamma, a, "lgam"); }
  Var to_f64(Atom a) { return un(UnOp::ToF64, a, "tf"); }
  Var to_i64(Atom a) { return un(UnOp::ToI64, a, "ti"); }
  Var logical_not(Atom a) { return un(UnOp::Not, a, "not"); }

  Var select(Atom c, Atom t, Atom f) { return emit(OpSelect{c, t, f}, tm_->at(t), "sel"); }
  Var rebind(Atom a, std::string_view nm = "v") { return emit(OpAtom{a}, tm_->at(a), nm); }

  // Convenience: sigmoid(x) = 1 / (1 + exp(-x)).
  Var sigmoid(Atom a) {
    Var e = exp(neg(a));
    return div(cf64(1.0), add(cf64(1.0), e));
  }

  // ------------------------------------------------------------- arrays ----
  Var index(Var a, std::vector<Atom> idx, std::string_view nm = "elt") {
    Type t = tm_->at(a);
    assert(static_cast<int>(idx.size()) <= t.rank);
    return emit(OpIndex{a, std::move(idx)},
                Type{t.elem, t.rank - static_cast<int>(idx.size()), false}, nm);
  }

  Var update(Var a, std::vector<Atom> idx, Atom v) {
    return emit(OpUpdate{a, std::move(idx), v}, tm_->at(a), "upd");
  }

  Var upd_acc(Var acc, std::vector<Atom> idx, Atom v) {
    return emit(OpUpdAcc{acc, std::move(idx), v}, tm_->at(acc), "acc");
  }

  Var iota(Atom n) { return emit(OpIota{n}, arr(ScalarType::I64, 1), "iota"); }

  Var replicate(Atom n, Atom v) { return emit(OpReplicate{n, v}, lift(tm_->at(v)), "rep"); }

  Var zeros_like(Var v) {
    Type t = tm_->at(v);
    return emit(OpZerosLike{v}, Type{t.elem, t.rank, false}, "zeros");
  }

  Var scratch(Atom n, Var like) { return emit(OpScratch{n, like}, lift(tm_->at(like)), "chk"); }
  Var length(Var a) { return emit(OpLength{a}, i64(), "len"); }
  Var reverse(Var a) { return emit(OpReverse{a}, tm_->at(a), "rev"); }
  Var transpose(Var a) { return emit(OpTranspose{a}, tm_->at(a), "tr"); }
  Var copy(Var a) { return emit(OpCopy{a}, tm_->at(a), "cpy"); }

  // -------------------------------------------------------------- scopes ---
  using BodyFn = std::function<std::vector<Atom>(Builder&)>;
  using LamFn = std::function<std::vector<Atom>(Builder&, const std::vector<Var>&)>;
  using LoopFn = std::function<std::vector<Atom>(Builder&, Var, const std::vector<Var>&)>;

  Body make_body(const BodyFn& fn) {
    Builder c(*mod_, *tm_);
    std::vector<Atom> res = fn(c);
    return Body{c.take_stms(), std::move(res)};
  }

  LambdaPtr lam(const std::vector<Type>& param_types, const LamFn& fn,
                std::string_view nm = "p") {
    Lambda l;
    std::vector<Var> ps;
    for (const auto& t : param_types) {
      Var v = mod_->fresh(nm);
      tm_->bind(v, t);
      l.params.push_back(Param{v, t});
      ps.push_back(v);
    }
    Builder c(*mod_, *tm_);
    std::vector<Atom> res = fn(c, ps);
    l.body = Body{c.take_stms(), res};
    for (const auto& a : res) l.rets.push_back(tm_->at(a));
    return make_lambda(std::move(l));
  }

  // Binary scalar operator lambdas for reduce/scan.
  LambdaPtr binop_lam(BinOp op, Type t = f64()) {
    return lam({t, t}, [&](Builder& c, const std::vector<Var>& p) {
      return std::vector<Atom>{c.bin(op, p[0], p[1])};
    });
  }
  LambdaPtr add_op(Type t = f64()) { return binop_lam(BinOp::Add, t); }
  LambdaPtr mul_op(Type t = f64()) { return binop_lam(BinOp::Mul, t); }
  LambdaPtr min_op(Type t = f64()) { return binop_lam(BinOp::Min, t); }
  LambdaPtr max_op(Type t = f64()) { return binop_lam(BinOp::Max, t); }

  std::vector<Var> if_(Atom c, const BodyFn& then_fn, const BodyFn& else_fn,
                       std::string_view nm = "if") {
    Body tb = make_body(then_fn);
    Body fb = make_body(else_fn);
    std::vector<Type> rets;
    for (const auto& a : tb.result) rets.push_back(tm_->at(a));
    return emit_multi(OpIf{c, ir::make_body(std::move(tb)), ir::make_body(std::move(fb))},
                      rets, nm);
  }

  Var if1(Atom c, const BodyFn& then_fn, const BodyFn& else_fn, std::string_view nm = "if") {
    return if_(c, then_fn, else_fn, nm)[0];
  }

  // loop (params) = (inits) for i < count do body
  std::vector<Var> loop_for(const std::vector<Atom>& inits, Atom count, const LoopFn& fn,
                            int stripmine = 0, bool checkpoint_entry = false) {
    OpLoop lp;
    std::vector<Var> ps;
    std::vector<Type> rets;
    for (const auto& a : inits) {
      Type t = tm_->at(a);
      Var v = mod_->fresh("x");
      tm_->bind(v, t);
      lp.params.push_back(Param{v, t});
      ps.push_back(v);
      rets.push_back(t);
    }
    lp.init = inits;
    lp.idx = mod_->fresh("i");
    tm_->bind(lp.idx, i64());
    lp.count = count;
    lp.stripmine = stripmine;
    lp.checkpoint_entry = checkpoint_entry;
    Builder c(*mod_, *tm_);
    std::vector<Atom> res = fn(c, lp.idx, ps);
    lp.body = ir::make_body(Body{c.take_stms(), std::move(res)});
    return emit_multi(std::move(lp), rets, "loop");
  }

  // loop (params) = (inits) while cond(params) do body
  std::vector<Var> loop_while(const std::vector<Atom>& inits, const LamFn& cond_fn,
                              const LoopFn& fn, std::optional<Atom> bound = std::nullopt) {
    OpLoop lp;
    std::vector<Var> ps;
    std::vector<Type> rets, ptypes;
    for (const auto& a : inits) {
      Type t = tm_->at(a);
      Var v = mod_->fresh("x");
      tm_->bind(v, t);
      lp.params.push_back(Param{v, t});
      ps.push_back(v);
      rets.push_back(t);
      ptypes.push_back(t);
    }
    lp.init = inits;
    lp.while_cond = lam(ptypes, cond_fn, "w");
    lp.while_bound = bound;
    Builder c(*mod_, *tm_);
    std::vector<Atom> res = fn(c, Var{}, ps);
    lp.body = ir::make_body(Body{c.take_stms(), std::move(res)});
    return emit_multi(std::move(lp), rets, "loop");
  }

  // --------------------------------------------------------------- SOACs ---
  std::vector<Var> map(LambdaPtr f, const std::vector<Var>& args, std::string_view nm = "xs") {
    std::vector<Type> rets;
    for (const auto& t : f->rets) rets.push_back(t.is_acc ? t : lift(t));
    return emit_multi(OpMap{std::move(f), args}, rets, nm);
  }

  Var map1(LambdaPtr f, const std::vector<Var>& args, std::string_view nm = "xs") {
    return map(std::move(f), args, nm)[0];
  }

  std::vector<Var> reduce(LambdaPtr op, const std::vector<Atom>& ne,
                          const std::vector<Var>& args, std::string_view nm = "red") {
    std::vector<Type> rets = op->rets;
    return emit_multi(OpReduce{std::move(op), ne, args, nullptr, 0}, rets, nm);
  }

  Var reduce1(LambdaPtr op, Atom ne, const std::vector<Var>& args, std::string_view nm = "red") {
    return reduce(std::move(op), {ne}, args, nm)[0];
  }

  std::vector<Var> scan(LambdaPtr op, const std::vector<Atom>& ne, const std::vector<Var>& args,
                        std::string_view nm = "scan") {
    std::vector<Type> rets;
    for (const auto& t : op->rets) rets.push_back(lift(t));
    return emit_multi(OpScan{std::move(op), ne, args, nullptr, 0}, rets, nm);
  }

  Var scan1(LambdaPtr op, Atom ne, const std::vector<Var>& args, std::string_view nm = "scan") {
    return scan(std::move(op), {ne}, args, nm)[0];
  }

  Var hist(LambdaPtr op, Atom ne, Var dest, Var inds, Var vals) {
    return emit(OpHist{std::move(op), ne, dest, inds, vals, nullptr, 0}, tm_->at(dest), "hist");
  }

  Var scatter(Var dest, Var inds, Var vals) {
    return emit(OpScatter{dest, inds, vals}, tm_->at(dest), "scat");
  }

  // withacc arrs f — f's builder receives accumulator-typed params; its
  // results must start with the accumulators. Returns the underlying arrays
  // followed by any extra results.
  std::vector<Var> withacc(const std::vector<Var>& arrs, const LamFn& fn,
                           std::string_view nm = "wa") {
    std::vector<Type> ptypes;
    for (Var a : arrs) ptypes.push_back(acc_of(tm_->at(a)));
    LambdaPtr f = lam(ptypes, fn, "acc");
    std::vector<Type> rets;
    for (size_t i = 0; i < f->rets.size(); ++i) {
      Type t = f->rets[i];
      rets.push_back(i < arrs.size() ? Type{t.elem, t.rank, false} : t);
    }
    return emit_multi(OpWithAcc{arrs, std::move(f)}, rets, nm);
  }

  // gather xs is = map (\i -> xs[i]) is            (derived form, §5.3)
  Var gather(Var xs, Var is, std::string_view nm = "gath") {
    LambdaPtr f = lam({i64()}, [&](Builder& c, const std::vector<Var>& p) {
      return std::vector<Atom>{c.index(xs, {Atom(p[0])})};
    });
    return map1(std::move(f), {is}, nm);
  }

private:
  static bool is_cmp(BinOp op) {
    return op == BinOp::Eq || op == BinOp::Ne || op == BinOp::Lt || op == BinOp::Le ||
           op == BinOp::Gt || op == BinOp::Ge;
  }

  Type result_type(BinOp op, const Atom& a, const Atom& b) const {
    if (is_cmp(op)) return boolean();
    if (op == BinOp::And || op == BinOp::Or) return boolean();
    Type ta = tm_->at(a), tb = tm_->at(b);
    (void)tb;
    assert(ta.elem == tb.elem && ta.rank == 0 && tb.rank == 0);
    return ta;
  }

  Module* mod_;
  TypeMap* tm_;
  std::vector<Stm> stms_;
};

// Builds a whole program (module + entry function).
class ProgBuilder {
public:
  explicit ProgBuilder(std::string name)
      : mod_(std::make_shared<Module>()), fn_name_(std::move(name)), b_(*mod_, tm_) {}

  Var param(std::string_view nm, Type t) {
    Var v = mod_->fresh(nm);
    tm_.bind(v, t);
    params_.push_back(Param{v, t});
    return v;
  }

  Builder& body() { return b_; }
  TypeMap& types() { return tm_; }
  Module& module() { return *mod_; }

  Prog finish(const std::vector<Atom>& results) {
    Function f;
    f.name = fn_name_;
    f.params = params_;
    for (const auto& a : results) f.rets.push_back(tm_.at(a));
    f.body = Body{b_.take_stms(), results};
    return Prog{mod_, std::move(f)};
  }

private:
  std::shared_ptr<Module> mod_;
  TypeMap tm_;
  std::string fn_name_;
  std::vector<Param> params_;
  Builder b_;
};

} // namespace npad::ir
