#pragma once

// Syntactic pattern recognizers used by the runtime fast paths and by the
// specialized vjp rules of Section 5.1 (plus, multiplication, min/max) and
// the vectorized-operator scan rule of Section 5.2, plus the perfectly
// nested regular-SOAC matcher behind the flattening pass (opt/flatten.cpp).

#include <optional>

#include "ir/analysis.hpp"
#include "ir/ast.hpp"

namespace npad::ir {

// Recognizes \a b -> a `op` b over scalars.
inline std::optional<BinOp> recognize_binop(const Lambda& l) {
  if (l.params.size() != 2 || l.body.stms.size() != 1 || l.body.result.size() != 1) {
    return std::nullopt;
  }
  const auto* bin = std::get_if<OpBin>(&l.body.stms[0].e);
  if (bin == nullptr) return std::nullopt;
  const auto& res = l.body.result[0];
  if (!res.is_var() || !(res.var() == l.body.stms[0].vars[0])) return std::nullopt;
  if (!bin->a.is_var() || !bin->b.is_var()) return std::nullopt;
  if (!(bin->a.var() == l.params[0].var) || !(bin->b.var() == l.params[1].var)) {
    return std::nullopt;
  }
  return bin->op;
}

// Recognizes \xs ys -> map (\a b -> a `op` b) xs ys over rank-1 operands
// (the "vectorized operator" of §5.2).
inline std::optional<BinOp> recognize_vectorized_binop(const Lambda& l) {
  if (l.params.size() != 2 || l.body.stms.size() != 1 || l.body.result.size() != 1) {
    return std::nullopt;
  }
  if (l.params[0].type.rank != 1) return std::nullopt;
  const auto* mp = std::get_if<OpMap>(&l.body.stms[0].e);
  if (mp == nullptr || mp->args.size() != 2) return std::nullopt;
  if (!(mp->args[0] == l.params[0].var) || !(mp->args[1] == l.params[1].var)) {
    return std::nullopt;
  }
  const auto& res = l.body.result[0];
  if (!res.is_var() || !(res.var() == l.body.stms[0].vars[0])) return std::nullopt;
  return recognize_binop(*mp->f);
}

namespace detail {

// True when the lambda's body (at any nesting depth) performs accumulator
// side effects. A collapsed launch replays the lambda outside its original
// per-row activation, so any accumulator traffic disqualifies flattening.
inline bool body_has_acc_effects(const Body& b);
inline bool exp_has_acc_effects(const Exp& e) {
  if (std::holds_alternative<OpUpdAcc>(e) || std::holds_alternative<OpWithAcc>(e)) return true;
  bool bad = false;
  for_each_nested(e, [&](const NestedScope& s) { bad = bad || body_has_acc_effects(*s.body); });
  return bad;
}
inline bool body_has_acc_effects(const Body& b) {
  for (const auto& st : b.stms) {
    if (exp_has_acc_effects(st.e)) return true;
  }
  return false;
}

inline bool lambda_acc_free(const Lambda& l) {
  for (const auto& p : l.params) {
    if (p.type.is_acc) return false;
  }
  for (const auto& t : l.rets) {
    if (t.is_acc) return false;
  }
  return !body_has_acc_effects(l.body);
}

// Is `v` one of the outer lambda's params, and is that param a plain rank-1
// array (a row of a rank-2 launch argument)?
inline bool is_rank1_param(const Lambda& f, Var v) {
  for (const auto& p : f.params) {
    if (p.var == v) return p.type.rank == 1 && !p.type.is_acc;
  }
  return false;
}

// None of `vars` may be an outer param: the collapsed launch never enters
// the outer lambda's activation, so the row params are unavailable to
// anything but the inner SOAC's argument list.
inline bool none_are_params(const Lambda& f, const std::vector<Var>& vars) {
  for (Var v : vars) {
    for (const auto& p : f.params) {
      if (p.var == v) return false;
    }
  }
  return true;
}

} // namespace detail

// All params and results scalar (rank-0, non-acc): the shape the kernel
// compiler accepts and the fusion/flattening passes gate on.
inline bool lambda_scalar(const Lambda& l) {
  for (const auto& p : l.params) {
    if (p.type.rank != 0 || p.type.is_acc) return false;
  }
  for (const auto& t : l.rets) {
    if (t.rank != 0 || t.is_acc) return false;
  }
  return true;
}

// True when `e` (or any body nested inside it) performs accumulator updates
// or opens a withacc scope — observable buffer mutations that make a
// statement live even when it binds nothing (the vjp adjoint sweeps emit
// zero-result maps whose lambdas upd_acc free accumulators).
inline bool has_acc_effects(const Exp& e) { return detail::exp_has_acc_effects(e); }

// Recognizes the perfectly nested regular forms opt/flatten.cpp collapses
// (see FlatForm in ir/ast.hpp). The outer lambda must be a *perfect* nest:
// exactly one statement — the inner SOAC — whose bound variables are
// returned verbatim and in order. The inner SOAC's array arguments must be
// exactly (a selection of) the outer row params; everything else it touches
// — free variables of its lambdas, reduce neutral atoms — must come from
// the scope *enclosing* the outer map, because the collapsed launch
// evaluates them there. Accumulators disqualify throughout.
inline FlatForm flatten_form(const OpMap& o) {
  if (!o.f) return FlatForm::None;
  const Lambda& f = *o.f;
  if (!detail::lambda_acc_free(f)) return FlatForm::None;
  // Perfect nest: one statement, whose bindings are the results in order.
  if (f.body.stms.size() != 1) return FlatForm::None;
  const Stm& st = f.body.stms[0];
  if (f.body.result.size() != st.vars.size()) return FlatForm::None;
  for (size_t i = 0; i < st.vars.size(); ++i) {
    if (!f.body.result[i].is_var() || !(f.body.result[i].var() == st.vars[i])) {
      return FlatForm::None;
    }
  }

  if (const auto* im = std::get_if<OpMap>(&st.e)) {
    // map(λrow. map(g, row…)) with scalar-body g over rank-1 rows.
    if (!im->f || !lambda_scalar(*im->f)) return FlatForm::None;
    if (im->args.empty()) return FlatForm::None;
    for (Var q : im->args) {
      if (!detail::is_rank1_param(f, q)) return FlatForm::None;
    }
    if (!detail::none_are_params(f, free_vars(*im->f))) return FlatForm::None;
    if (detail::body_has_acc_effects(im->f->body)) return FlatForm::None;
    return FlatForm::Inner;
  }

  if (const auto* red = std::get_if<OpReduce>(&st.e)) {
    // map(λrow. reduce/redomap(op, ne, row…)) with a scalar fold.
    if (!red->op || !lambda_scalar(*red->op)) return FlatForm::None;
    if (red->args.empty()) return FlatForm::None;
    for (Var q : red->args) {
      if (!detail::is_rank1_param(f, q)) return FlatForm::None;
    }
    if (!detail::none_are_params(f, free_vars(*red->op))) return FlatForm::None;
    if (detail::body_has_acc_effects(red->op->body)) return FlatForm::None;
    if (red->pre) {
      if (!lambda_scalar(*red->pre)) return FlatForm::None;
      if (!detail::none_are_params(f, free_vars(*red->pre))) return FlatForm::None;
      if (detail::body_has_acc_effects(red->pre->body)) return FlatForm::None;
    }
    // Neutral atoms are evaluated in the enclosing scope at launch time.
    std::vector<Var> ne_vars;
    for (const auto& a : red->neutral) {
      if (a.is_var()) ne_vars.push_back(a.var());
    }
    if (!detail::none_are_params(f, ne_vars)) return FlatForm::None;
    return FlatForm::SegRed;
  }

  return FlatForm::None;
}

inline bool is_commutative(BinOp op) {
  switch (op) {
    case BinOp::Add: case BinOp::Mul: case BinOp::Min: case BinOp::Max:
    case BinOp::And: case BinOp::Or: case BinOp::Eq: case BinOp::Ne:
      return true;
    default:
      return false;
  }
}

} // namespace npad::ir
