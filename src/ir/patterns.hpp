#pragma once

// Syntactic pattern recognizers used by the runtime fast paths and by the
// specialized vjp rules of Section 5.1 (plus, multiplication, min/max) and
// the vectorized-operator scan rule of Section 5.2.

#include <optional>

#include "ir/ast.hpp"

namespace npad::ir {

// Recognizes \a b -> a `op` b over scalars.
inline std::optional<BinOp> recognize_binop(const Lambda& l) {
  if (l.params.size() != 2 || l.body.stms.size() != 1 || l.body.result.size() != 1) {
    return std::nullopt;
  }
  const auto* bin = std::get_if<OpBin>(&l.body.stms[0].e);
  if (bin == nullptr) return std::nullopt;
  const auto& res = l.body.result[0];
  if (!res.is_var() || !(res.var() == l.body.stms[0].vars[0])) return std::nullopt;
  if (!bin->a.is_var() || !bin->b.is_var()) return std::nullopt;
  if (!(bin->a.var() == l.params[0].var) || !(bin->b.var() == l.params[1].var)) {
    return std::nullopt;
  }
  return bin->op;
}

// Recognizes \xs ys -> map (\a b -> a `op` b) xs ys over rank-1 operands
// (the "vectorized operator" of §5.2).
inline std::optional<BinOp> recognize_vectorized_binop(const Lambda& l) {
  if (l.params.size() != 2 || l.body.stms.size() != 1 || l.body.result.size() != 1) {
    return std::nullopt;
  }
  if (l.params[0].type.rank != 1) return std::nullopt;
  const auto* mp = std::get_if<OpMap>(&l.body.stms[0].e);
  if (mp == nullptr || mp->args.size() != 2) return std::nullopt;
  if (!(mp->args[0] == l.params[0].var) || !(mp->args[1] == l.params[1].var)) {
    return std::nullopt;
  }
  const auto& res = l.body.result[0];
  if (!res.is_var() || !(res.var() == l.body.stms[0].vars[0])) return std::nullopt;
  return recognize_binop(*mp->f);
}

inline bool is_commutative(BinOp op) {
  switch (op) {
    case BinOp::Add: case BinOp::Mul: case BinOp::Min: case BinOp::Max:
    case BinOp::And: case BinOp::Or: case BinOp::Eq: case BinOp::Ne:
      return true;
    default:
      return false;
  }
}

} // namespace npad::ir
